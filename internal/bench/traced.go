package bench

import (
	"fmt"
	"strings"

	"prema/internal/trace"
)

// TracedSystem reports whether a named system configuration can record an
// event trace: the PREMA stacks run a real transport through the substrate
// seam where internal/trace hooks in, while the third-party baseline models
// (parmetis, charm*) are simulator cost models with nothing to observe.
func TracedSystem(name string) bool {
	return name == "none" || strings.HasPrefix(name, "prema")
}

// WiredSystem reports whether a named system configuration can run behind
// the serialization loopback (wire.Wrap). The boundary is the same as
// TracedSystem's: wire decorates the substrate transport, and only the
// PREMA stacks have one.
func WiredSystem(name string) bool { return TracedSystem(name) }

// RunSystemTraced executes one named PREMA system configuration on the
// deterministic simulator with event tracing attached, recording into col.
// Tracing is observational (no substrate time is charged), so the result is
// identical to the untraced RunSystem output for the same workload.
func RunSystemTraced(name string, w Workload, col *trace.Collector) (*Result, error) {
	if !TracedSystem(name) {
		return nil, fmt.Errorf("bench: system %q is a cost model without a transport; tracing needs a PREMA configuration", name)
	}
	m := trace.Wrap(w.machine(), col)
	switch name {
	case "prema-diffusion", "prema-multilist", "prema-worksteal":
		return RunPremaPolicyOn(m, w, strings.TrimPrefix(name, "prema-"))
	default:
		return RunSystemOn(name, m, w)
	}
}
