package bench

import (
	"fmt"
	"sort"

	"prema/internal/coll"
	"prema/internal/core"
	"prema/internal/dmcs"
	"prema/internal/graph"
	"prema/internal/ilb"
	"prema/internal/mesh"
	"prema/internal/mol"
	"prema/internal/parmetis"
	"prema/internal/policy"
	"prema/internal/sim"
	"prema/internal/solver"
)

// The hybrid experiment implements the paper's future-work direction (§6):
// "a unified method for solving the load balancing problem for end-to-end
// applications that consist of both asynchronous, highly adaptive
// computation phases, such as parallel mesh refinement, and loosely
// synchronous computation phases such as parallel sparse iterative field
// solvers."
//
// Each of NumPhases phases is: (1) an asynchronous refinement step — each
// subdomain remeshes under the moved crack, with strongly non-uniform,
// unpredictable costs — followed by (2) a loosely synchronous solve step:
// SolveIters sweeps over the refined elements with a global reduction
// (barrier) after each sweep, so a solve sweep runs at the pace of its most
// loaded processor.
//
// Three regimes:
//
//   - "repartition": no balancing during refinement; URA repartition of the
//     subdomain graph between refine and solve (classic stop-and-repartition
//     usage — balances the solver, leaves refinement imbalanced).
//   - "prema": PREMA work stealing during refinement; the solver runs on
//     whatever placement stealing produced (balances refinement, leaves the
//     solver approximately balanced at best).
//   - "unified": work stealing during refinement AND URA repartition before
//     each solve — the paper's proposed end-to-end method.
type HybridConfig struct {
	Procs      int
	Grid       [3]int
	NumPhases  int
	SolveIters int
	// PerTetRefine and PerTetSolve price one tetrahedron's generation and
	// one solver sweep over it.
	PerTetRefine sim.Time
	PerTetSolve  sim.Time
	Seed         int64
}

// DefaultHybridConfig returns the configuration used by the hybrid bench.
func DefaultHybridConfig() HybridConfig {
	return HybridConfig{
		Procs:        16,
		Grid:         [3]int{8, 4, 2},
		NumPhases:    8,
		SolveIters:   10,
		PerTetRefine: 15 * sim.Millisecond,
		PerTetSolve:  2 * sim.Millisecond,
		Seed:         23,
	}
}

// NumSubdomains returns the subdomain count.
func (c HybridConfig) NumSubdomains() int { return c.Grid[0] * c.Grid[1] * c.Grid[2] }

// HybridSystems lists the three regimes.
var HybridSystems = []string{"repartition", "prema", "unified"}

// BuildHybridCosts reuses the mesh-experiment machinery to produce the
// per-(phase, subdomain) element counts.
func BuildHybridCosts(cfg HybridConfig) *MeshCosts {
	m := MeshExpConfig{
		Procs:      cfg.Procs,
		Grid:       cfg.Grid,
		Iterations: cfg.NumPhases,
		Seed:       cfg.Seed,
	}
	return BuildMeshCosts(m)
}

// RunHybrid executes one regime. steal enables work stealing during
// refinement; repart enables the between-phase repartition.
func RunHybrid(system string, cfg HybridConfig, mc *MeshCosts) (*Result, error) {
	var steal, repart bool
	switch system {
	case "repartition":
		repart = true
	case "prema":
		steal = true
	case "unified":
		steal, repart = true, true
	default:
		return nil, fmt.Errorf("bench: unknown hybrid system %q", system)
	}

	nSubs := cfg.NumSubdomains()
	adjacency := mesh.Neighbors(cfg.Grid[0], cfg.Grid[1], cfg.Grid[2])
	meanRefine := 0.0
	for _, row := range mc.Tets {
		for _, tets := range row {
			meanRefine += tets * cfg.PerTetRefine.Seconds()
		}
	}
	meanRefine /= float64(nSubs * cfg.NumPhases)

	e := sim.NewEngine(sim.Config{Seed: cfg.Seed})
	for p := 0; p < cfg.Procs; p++ {
		e.Spawn(fmt.Sprintf("p%03d", p), func(proc *sim.Proc) {
			opts := core.DefaultOptions(ilb.Implicit)
			opts.LB.WaterMark = meanRefine
			if steal {
				ws := policy.DefaultWSConfig()
				ws.MaxObjects = 1
				opts.Policy = policy.NewWorkStealing(ws)
			}
			r := core.NewRuntime(proc, opts)
			cl := coll.New(r.Comm())

			refined := 0 // root: refinements completed this phase
			phaseDone := false
			var hRefined, hPhaseDone dmcs.HandlerID
			hRefined = r.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
				refined++
				if refined == nSubs {
					refined = 0
					for q := 1; q < cfg.Procs; q++ {
						c.SendTagged(q, hPhaseDone, nil, 8, sim.TagSystem)
					}
					phaseDone = true
				}
			})
			hPhaseDone = r.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
				phaseDone = true
			})
			phase := 0
			hRefine := r.RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
				sub := obj.Data.(int)
				r.Compute(sim.Scale(cfg.PerTetRefine, mc.Tets[phase][sub]))
				r.Comm().SendTagged(0, hRefined, nil, 8, sim.TagApp)
			})

			// Initial block placement of subdomain objects.
			for sub := 0; sub < nSubs; sub++ {
				if sub*cfg.Procs/nSubs == proc.ID() {
					r.Register(sub, 64<<10)
				}
			}

			localSubs := func() []int {
				var subs []int
				for _, obj := range r.Mol().Local() {
					subs = append(subs, obj.Data.(int))
				}
				sort.Ints(subs)
				return subs
			}

			for phase = 0; phase < cfg.NumPhases; phase++ {
				// ---- Asynchronous refinement ----
				phaseDone = false
				for _, sub := range localSubs() {
					hint := meanRefine
					if phase > 0 {
						hint = mc.Tets[phase-1][sub] * cfg.PerTetRefine.Seconds()
					}
					r.Message(mol.MobilePtr{Home: sub * cfg.Procs / nSubs, Index: homeIndex(sub, cfg.Procs, nSubs)}, hRefine, nil, 16, hint)
				}
				for !phaseDone {
					r.Scheduler().Step()
				}
				cl.Barrier()

				// ---- Optional repartition before the solve ----
				if repart {
					type rec struct {
						Sub  int
						Tets float64
					}
					var mine []rec
					for _, sub := range localSubs() {
						mine = append(mine, rec{Sub: sub, Tets: mc.Tets[phase][sub]})
					}
					gathered := cl.AllGather(mine, 16*len(mine)+16)
					owner := make([]int, nSubs)
					tets := make([]float64, nSubs)
					for q, raw := range gathered {
						if raw == nil {
							continue
						}
						for _, rc := range raw.([]rec) {
							owner[rc.Sub] = q
							tets[rc.Sub] = rc.Tets
						}
					}
					b := graph.NewBuilder(nSubs)
					for sub := 0; sub < nSubs; sub++ {
						w := int64(tets[sub])
						if w < 1 {
							w = 1
						}
						b.SetVWgt(sub, w)
					}
					for _, pr := range adjacency {
						b.AddEdge(pr[0], pr[1], 1)
					}
					opt := parmetis.DefaultOptions()
					opt.Part.Seed = cfg.Seed + int64(phase)
					proc.Advance(50*sim.Millisecond+sim.Time(nSubs)*sim.Millisecond, sim.CatPartition)
					newPart := parmetis.AdaptiveRepart(b.Build(), cfg.Procs, owner, opt)
					for _, sub := range localSubs() {
						if dst := newPart[sub]; dst != proc.ID() {
							mp := mol.MobilePtr{Home: sub * cfg.Procs / nSubs, Index: homeIndex(sub, cfg.Procs, nSubs)}
							r.Mol().Migrate(mp, dst)
						}
					}
					expected := 0
					for sub := 0; sub < nSubs; sub++ {
						if newPart[sub] == proc.ID() {
							expected++
						}
					}
					for len(r.Mol().Local()) != expected {
						proc.WaitMsg(sim.CatSync)
						r.Comm().PollTag(sim.TagSystem)
					}
					cl.Barrier()
				}

				// ---- Loosely synchronous solve ----
				// A real Jacobi relaxation over this processor's share of the
				// field: one unknown per locally owned tetrahedron (the mesh
				// experiment's cost matrix sizes the system), with the global
				// residual reduction after every sweep. Virtual time per sweep
				// is PerTetSolve per unknown; the numerics are actually run.
				var local float64
				for _, sub := range localSubs() {
					local += mc.Tets[phase][sub]
				}
				dim := int(local)
				if dim < 2 {
					dim = 2
				}
				a := solver.Laplacian1D(dim)
				diag := a.Diag()
				x := make([]float64, dim)
				rhs := make([]float64, dim)
				scratch := make([]float64, dim)
				for i := range rhs {
					rhs[i] = 1
				}
				for it := 0; it < cfg.SolveIters; it++ {
					res := solver.JacobiSweep(a, diag, x, rhs, scratch, 0.8)
					proc.Advance(sim.Scale(cfg.PerTetSolve, local), sim.CatCompute)
					// The solver's convergence test is a global reduction.
					cl.AllReduceFloat(res*res, "sum")
				}
			}
			r.Stop()
		})
	}
	if err := e.Run(); err != nil {
		return nil, fmt.Errorf("hybrid %s: %w", system, err)
	}
	w := Workload{Procs: cfg.Procs, Units: nSubs * cfg.NumPhases, Seed: cfg.Seed}
	return collect(system, w, sim.Machine{Engine: e}), nil
}

// homeIndex returns the registration index of sub on its home processor
// (objects are registered in ascending subdomain order per processor).
func homeIndex(sub, procs, nSubs int) int {
	home := sub * procs / nSubs
	idx := 0
	for s := 0; s < sub; s++ {
		if s*procs/nSubs == home {
			idx++
		}
	}
	return idx
}
