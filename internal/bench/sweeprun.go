package bench

import (
	"fmt"

	"prema/internal/sweep"
)

// This file fans the evaluation campaigns out across cores. Every sweep
// point is an independent simulation (own engine, own seeded RNGs), so the
// only coordination needed is the worker pool; internal/sweep's ordering
// guarantee makes the parallel output byte-identical to the serial one.

// RunFigures runs the full (figure × system) grid for the given specs with
// at most jobs simulations in flight, each on `shards` simulator shards
// partitioned by `partition` (a PartitionStrategies name; "" = roundrobin),
// returning FigureRuns in spec order with Results ordered as SystemNames —
// exactly what serial RunFigure calls would produce. The two parallelism
// levels multiply (jobs × shards goroutines want CPUs at once), so jobs < 1
// selects sweep.JobsFor(shards), which clamps the product to the CPU count;
// jobs == 1, shards == 1 is the fully serial path. wire routes the
// machine-based systems through the serialization loopback (the cost-model
// baselines have no transport and ignore it). None of the four knobs
// changes a single output byte.
func RunFigures(specs []FigureSpec, procs, unitsPerProc, jobs, shards int, partition string, wire bool) ([]*FigureRun, error) {
	if jobs < 1 {
		jobs = sweep.JobsFor(shards)
	}
	nsys := len(SystemNames)
	results, err := sweep.Map(jobs, len(specs)*nsys, func(i int) (*Result, error) {
		spec, name := specs[i/nsys], SystemNames[i%nsys]
		w := PaperWorkload(spec, procs, unitsPerProc)
		w.Shards = shards
		w.Partition = partition
		w.Wire = wire && WiredSystem(name)
		r, err := RunSystem(name, w)
		if err != nil {
			return nil, fmt.Errorf("figure %d: %w", spec.ID, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	runs := make([]*FigureRun, len(specs))
	for fi, spec := range specs {
		runs[fi] = &FigureRun{
			Spec:    spec,
			W:       PaperWorkload(spec, procs, unitsPerProc),
			Results: results[fi*nsys : (fi+1)*nsys],
		}
	}
	return runs, nil
}

// RunSystems runs several named system configurations on the same workload
// with at most jobs simulations in flight, returning results in input order.
func RunSystems(names []string, w Workload, jobs int) ([]*Result, error) {
	return sweep.Map(jobs, len(names), func(i int) (*Result, error) {
		return RunSystem(names[i], w)
	})
}

// RunMeshSystems runs the mesh experiment's regimes over one prebuilt cost
// matrix with at most jobs simulations in flight, returning results in
// input order. The cost matrix is shared read-only across the regimes.
func RunMeshSystems(systems []string, cfg MeshExpConfig, mc *MeshCosts, jobs int) ([]*Result, error) {
	return sweep.Map(jobs, len(systems), func(i int) (*Result, error) {
		return RunMeshSystem(systems[i], cfg, mc)
	})
}
