package bench

import (
	"fmt"
	"math/rand"
	"testing"

	"prema/internal/dmcs"
	"prema/internal/faulty"
	"prema/internal/trace"
)

// TestPartitionStrategiesEquivalence: every named placement strategy yields
// the serial golden hash on every system × figure combination it is thrown
// at. This is the full-stack guarantee behind the CLIs' -partition flag.
func TestPartitionStrategiesEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 4; trial++ {
		spec := FigureSpec{
			ID:        3 + rng.Intn(4),
			Imbalance: 0.1 + 0.8*rng.Float64(),
			Ratio:     1.1 + rng.Float64(),
		}
		procs := 5 + rng.Intn(16)
		upp := 4 + rng.Intn(6)
		system := SystemNames[rng.Intn(len(SystemNames))]
		shards := []int{2, 3, 4, 7}[rng.Intn(4)]
		t.Run(fmt.Sprintf("trial%d_%s_p%d_s%d", trial, system, procs, shards), func(t *testing.T) {
			w := PaperWorkload(spec, procs, upp)
			serial, err := RunSystem(system, w)
			if err != nil {
				t.Fatal(err)
			}
			want := goldenHash(serial)
			for _, strategy := range PartitionStrategies {
				w.Shards = shards
				w.Partition = strategy
				got, err := RunSystem(system, w)
				if err != nil {
					t.Fatalf("%s: %v", strategy, err)
				}
				if h := goldenHash(got); h != want {
					t.Errorf("%s (S=%d): golden hash %x != serial %x\nserial:    %s\npartition: %s",
						strategy, shards, h, want, serial.Summary(), got.Summary())
				}
				if got.Events != serial.Events {
					t.Errorf("%s: fired %d events, serial fired %d", strategy, got.Events, serial.Events)
				}
			}
		})
	}
}

// TestRandomPartitionMapEquivalence: beyond the named strategies, completely
// random processor→shard maps — injected through the same hook the Workload
// plumbing uses — still reproduce the serial golden hash. Random maps cover
// assignments no strategy would produce (empty shards, pathological
// clustering), so this is the strongest full-stack form of the
// partition-invariance property.
func TestRandomPartitionMapEquivalence(t *testing.T) {
	defer func() { testPartition = nil }()
	rng := rand.New(rand.NewSource(7))
	spec := FigureSpec{ID: 4, Imbalance: 0.5, Ratio: 2.0}
	for trial := 0; trial < 4; trial++ {
		procs := 6 + rng.Intn(12)
		upp := 4 + rng.Intn(5)
		system := SystemNames[rng.Intn(len(SystemNames))]
		shards := 2 + rng.Intn(5)
		assign := make([]int, procs)
		for i := range assign {
			assign[i] = rng.Intn(shards)
		}
		t.Run(fmt.Sprintf("trial%d_%s_p%d_s%d", trial, system, procs, shards), func(t *testing.T) {
			testPartition = nil
			w := PaperWorkload(spec, procs, upp)
			serial, err := RunSystem(system, w)
			if err != nil {
				t.Fatal(err)
			}
			testPartition = func(id, _ int) int { return assign[id] }
			defer func() { testPartition = nil }()
			w.Shards = shards
			sharded, err := RunSystem(system, w)
			if err != nil {
				t.Fatal(err)
			}
			if g, s := goldenHash(serial), goldenHash(sharded); g != s {
				t.Errorf("map %v: golden hash diverges: serial %x, sharded %x", assign, g, s)
			}
			for i := range serial.Accounts {
				if serial.Accounts[i] != sharded.Accounts[i] {
					t.Errorf("map %v: proc %d ledger diverges", assign, i)
				}
			}
		})
	}
}

// TestPartitionedChaosAndTraceEquivalence: the partition knob composes with
// the fault injector and the trace recorder — a faulted, traced, sharded,
// load-partitioned run reports the same makespan, ledgers, and per-processor
// trace streams as the serial equivalent. This covers the -fault-plan and
// -trace legs of the byte-identity acceptance criterion.
func TestPartitionedChaosAndTraceEquivalence(t *testing.T) {
	plan, err := faulty.ParsePlan("drop=0.05,dup=0.05,delay=0.2:2ms")
	if err != nil {
		t.Fatal(err)
	}
	w := PaperWorkload(FigureSpec{ID: 3, Imbalance: 0.5, Ratio: 2.0}, 9, 6)
	run := func(shards int, partition string) (*Result, *trace.Collector) {
		w := w
		w.Shards = shards
		w.Partition = partition
		col := trace.NewCollector(0)
		res, _, err := RunChaos(w, ChaosSpec{
			System:    "prema-implicit",
			Plan:      plan,
			FaultSeed: 11,
			Rel:       dmcs.DefaultRelConfig(),
			Trace:     col,
		})
		if err != nil {
			t.Fatalf("shards=%d partition=%q: %v", shards, partition, err)
		}
		return res, col
	}
	serial, serialCol := run(1, "")
	for _, strategy := range PartitionStrategies {
		sharded, shardedCol := run(4, strategy)
		if serial.Makespan != sharded.Makespan {
			t.Errorf("%s: makespan %v != serial %v", strategy, sharded.Makespan, serial.Makespan)
		}
		for i := range serial.Accounts {
			if serial.Accounts[i] != sharded.Accounts[i] {
				t.Errorf("%s: proc %d ledger diverges", strategy, i)
			}
		}
		if err := sharded.CheckConservation(); err != nil {
			t.Errorf("%s: %v", strategy, err)
		}
		for i := 0; i < serialCol.NumProcs(); i++ {
			a := serialCol.Recorder(i).Events()
			b := shardedCol.Recorder(i).Events()
			if len(a) != len(b) {
				t.Errorf("%s: proc %d trace stream length %d != serial %d", strategy, i, len(b), len(a))
				continue
			}
			for j := range a {
				if a[j] != b[j] {
					t.Errorf("%s: proc %d trace event %d diverges", strategy, i, j)
					break
				}
			}
		}
	}
}

// TestLoadedPartitionBalances: on the paper's skewed block distribution the
// LPT strategy must spread expected work across shards strictly better than
// the blocked strategy, which concentrates the heavy prefix on shard 0 —
// the point of having a load-aware placement at all. (Round-robin also
// balances this workload well; blocked is the adversarial case.)
func TestLoadedPartitionBalances(t *testing.T) {
	w := PaperWorkload(FigureSpec{ID: 3, Imbalance: 0.3, Ratio: 10.0}, 32, 8)
	const shards = 4
	perShard := func(strategy string) []float64 {
		w := w
		w.Partition = strategy
		fn := w.partition()
		if fn == nil {
			fn = func(id, shards int) int { return id % shards }
		}
		load := make([]float64, shards)
		for p := 0; p < w.Procs; p++ {
			var wt float64
			for _, u := range w.UnitsOf(p) {
				wt += w.Actual(u).Seconds()
			}
			load[fn(p, shards)] += wt
		}
		return load
	}
	spread := func(load []float64) float64 {
		min, max := load[0], load[0]
		for _, l := range load {
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
		}
		if min == 0 {
			return max
		}
		return max / min
	}
	blocked := spread(perShard(PartitionBlocked))
	loaded := spread(perShard(PartitionLoaded))
	if loaded >= blocked {
		t.Errorf("loaded spread %.3f not better than blocked %.3f", loaded, blocked)
	}
	if loaded > 1.05 {
		t.Errorf("loaded spread %.3f — LPT should be within 5%% of perfect on this workload", loaded)
	}
}

// TestValidPartition: the CLI validation helper accepts exactly the named
// strategies plus the empty default.
func TestValidPartition(t *testing.T) {
	for _, ok := range append([]string{""}, PartitionStrategies...) {
		if !ValidPartition(ok) {
			t.Errorf("ValidPartition(%q) = false", ok)
		}
	}
	for _, bad := range []string{"random", "Loaded", "round-robin"} {
		if ValidPartition(bad) {
			t.Errorf("ValidPartition(%q) = true", bad)
		}
	}
}
