package bench

import (
	"net"
	"reflect"
	"testing"
	"time"

	"prema/internal/dist"
)

const distTestTimeout = 30 * time.Second

// freeAddr reserves a localhost port for a coordinator that has not started
// listening yet, so in-process nodes can be pointed at it up front (Join
// retries the dial until its timeout).
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// runDistInProcess drives a full coordinator+nodes session with the node
// daemons as goroutines (real localhost TCP, shared address space), using
// the exact driver premad runs.
func runDistInProcess(t *testing.T, spec DistSpec, nodes int) *Result {
	t.Helper()
	addr := freeAddr(t)
	errCh := make(chan error, nodes)
	for i := 0; i < nodes; i++ {
		go func(i int) {
			n, err := dist.Join(dist.NodeConfig{
				Coord: addr, Node: i,
				JoinTimeout: distTestTimeout, DrainTimeout: distTestTimeout,
			})
			if err != nil {
				errCh <- err
				return
			}
			defer n.Close()
			errCh <- RunDistNode(n)
		}(i)
	}
	res, err := RunDist(spec, DistOptions{
		Nodes: nodes, Listen: addr, Attach: true,
		JoinTimeout: distTestTimeout, DrainTimeout: distTestTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	return res
}

// TestDistNoneMatchesSim: a distributed 4-node run of the unbalanced
// baseline must produce the same application-level counters and final
// residency as the deterministic simulator — the bench-driver flavor of the
// cross-backend conformance guarantee.
func TestDistNoneMatchesSim(t *testing.T) {
	fig, err := FigureByID(3)
	if err != nil {
		t.Fatal(err)
	}
	w := PaperWorkload(fig, 8, 2)
	simRes, err := RunSystem("none", w)
	if err != nil {
		t.Fatal(err)
	}

	spec := NewDistSpec("none", w)
	spec.TimeScale = 1e-4
	res := runDistInProcess(t, spec, 4)

	if res.System != "none" {
		t.Errorf("merged system = %q, want none", res.System)
	}
	if !reflect.DeepEqual(simRes.Counters, res.Counters) {
		t.Errorf("counters diverge:\n sim:  %v\n dist: %v", simRes.Counters, res.Counters)
	}
	if !reflect.DeepEqual(simRes.Resident, res.Resident) {
		t.Errorf("residency diverges:\n sim:  %v\n dist: %v", simRes.Resident, res.Resident)
	}
	if err := res.CheckConservation(); err != nil {
		t.Error(err)
	}
	if res.Makespan <= 0 {
		t.Errorf("dist makespan = %v, want > 0", res.Makespan)
	}
	if res.WireFrames == 0 {
		t.Error("a 4-node run encoded no wire frames")
	}
	if len(res.Accounts) != w.Procs {
		t.Errorf("merged %d accounts, want %d", len(res.Accounts), w.Procs)
	}
}

// TestDistPremaImplicitConserves: the full PREMA stack (implicit ILB +
// work stealing) over 4 node processes-worth of mesh must conserve work —
// every unit runs exactly once, every object ends resident somewhere —
// even though the stealing pattern itself is timing-dependent.
func TestDistPremaImplicitConserves(t *testing.T) {
	fig, err := FigureByID(3)
	if err != nil {
		t.Fatal(err)
	}
	w := PaperWorkload(fig, 8, 2)
	spec := NewDistSpec("prema-implicit", w)
	spec.TimeScale = 1e-4
	res := runDistInProcess(t, spec, 4)

	if res.System != "prema-implicit" {
		t.Errorf("merged system = %q, want prema-implicit", res.System)
	}
	if err := res.CheckConservation(); err != nil {
		t.Error(err)
	}
	if res.Makespan <= 0 {
		t.Errorf("makespan = %v, want > 0", res.Makespan)
	}
}

// TestDistPingPong: the two-rank transport probe over two node processes
// (in-process here) reports its round count and a positive wall-clock
// total through the partial-result merge.
func TestDistPingPong(t *testing.T) {
	w := Workload{Procs: 2, Units: 50, UnitBytes: 64, Seed: 7}
	spec := NewDistSpec("pingpong", w)
	res := runDistInProcess(t, spec, 2)

	if got := res.Counters["pingpong_rounds"]; got != 50 {
		t.Errorf("pingpong_rounds = %d, want 50", got)
	}
	if res.Counters["pingpong_ns_total"] <= 0 {
		t.Error("pingpong_ns_total not positive")
	}
	if res.WireFrames == 0 {
		t.Error("pingpong encoded no wire frames")
	}
}
