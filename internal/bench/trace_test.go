package bench

import (
	"bytes"
	"testing"

	"prema/internal/dmcs"
	"prema/internal/faulty"
	"prema/internal/trace"
)

// TestTracingIsObservational: attaching the trace decorator must not perturb
// the simulation — same makespan, same per-processor accounts, same counters
// as the untraced run. This is what lets the subsystem claim 0% virtual
// overhead (the repository's analogue of the paper's <1% claim) and keeps
// the determinism goldens valid with tracing on or off.
func TestTracingIsObservational(t *testing.T) {
	w := PaperWorkload(FigureSpec{ID: 3, Imbalance: 0.5, Ratio: 2.0}, 8, 8)
	for _, sys := range []string{"none", "prema-explicit", "prema-implicit"} {
		sys := sys
		t.Run(sys, func(t *testing.T) {
			plain, err := RunSystem(sys, w)
			if err != nil {
				t.Fatal(err)
			}
			col := trace.NewCollector(0)
			traced, err := RunSystemTraced(sys, w, col)
			if err != nil {
				t.Fatal(err)
			}
			if plain.Makespan != traced.Makespan {
				t.Fatalf("tracing changed the makespan: %v vs %v", plain.Makespan, traced.Makespan)
			}
			for i := range plain.Accounts {
				if plain.Accounts[i] != traced.Accounts[i] {
					t.Fatalf("tracing changed proc %d accounts:\n%v\n%v", i, plain.Accounts[i], traced.Accounts[i])
				}
			}
			for k, v := range plain.Counters {
				if traced.Counters[k] != v {
					t.Fatalf("tracing changed counter %s: %d vs %d", k, v, traced.Counters[k])
				}
			}
			if col.Total() == 0 {
				t.Fatal("traced run recorded no events")
			}
		})
	}
}

// TestTraceByteIdentity: two same-seed simulator runs must export
// byte-identical Chrome traces (the guarantee CI's cmp step checks).
func TestTraceByteIdentity(t *testing.T) {
	w := PaperWorkload(FigureSpec{ID: 4, Imbalance: 0.1, Ratio: 2.0}, 6, 6)
	var bufs [2]bytes.Buffer
	for i := range bufs {
		col := trace.NewCollector(0)
		if _, err := RunSystemTraced("prema-implicit", w, col); err != nil {
			t.Fatal(err)
		}
		if err := col.WriteChrome(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatalf("same-seed traces differ (%d vs %d bytes)", bufs[0].Len(), bufs[1].Len())
	}
}

// TestTraceRingOverflowInRun: a deliberately tiny ring must overflow on a
// real run and surface the drop count through the metrics registry.
func TestTraceRingOverflowInRun(t *testing.T) {
	w := PaperWorkload(FigureSpec{ID: 3, Imbalance: 0.5, Ratio: 2.0}, 4, 8)
	col := trace.NewCollector(32)
	res, err := RunSystemTraced("prema-implicit", w, col)
	if err != nil {
		t.Fatal(err)
	}
	if col.Dropped() == 0 {
		t.Fatal("32-event rings did not overflow on a full run")
	}
	reg := trace.Summarize(col, res.Makespan)
	if reg.Counters["trace_dropped_total"] != int64(col.Dropped()) {
		t.Fatalf("metrics drop counter %d != collector %d", reg.Counters["trace_dropped_total"], col.Dropped())
	}
	if reg.Counters["trace_events_total"] != int64(col.Total()) {
		t.Fatalf("metrics event total %d != collector %d", reg.Counters["trace_events_total"], col.Total())
	}
}

// TestTracedSystemRejectsBaselines: the cost models have no transport to
// observe; asking for a trace of one is a user error, not a silent no-op.
func TestTracedSystemRejectsBaselines(t *testing.T) {
	w := PaperWorkload(FigureSpec{ID: 3, Imbalance: 0.5, Ratio: 2.0}, 4, 4)
	for _, sys := range []string{"parmetis", "charm", "charm-sync4"} {
		if TracedSystem(sys) {
			t.Errorf("TracedSystem(%q) = true", sys)
		}
		if _, err := RunSystemTraced(sys, w, trace.NewCollector(0)); err == nil {
			t.Errorf("RunSystemTraced(%q) did not error", sys)
		}
	}
	for _, sys := range []string{"none", "prema-explicit", "prema-implicit", "prema-diffusion"} {
		if !TracedSystem(sys) {
			t.Errorf("TracedSystem(%q) = false", sys)
		}
	}
}

// TestChaosTraceRecordsRetransmits: tracing composed outside the fault
// injector must observe the reliable protocol at work — retransmit events in
// the stream on a lossy network, while the run still conserves all units.
func TestChaosTraceRecordsRetransmits(t *testing.T) {
	w := PaperWorkload(FigureSpec{ID: 3, Imbalance: 0.5, Ratio: 2.0}, 4, 4)
	plan, err := faulty.ParsePlan("drop=0.2")
	if err != nil {
		t.Fatal(err)
	}
	col := trace.NewCollector(0)
	res, _, err := RunChaos(w, ChaosSpec{
		System:    "prema-implicit",
		Plan:      plan,
		FaultSeed: 1,
		Rel:       dmcs.DefaultRelConfig(),
		Trace:     col,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	reg := trace.Summarize(col, res.Makespan)
	if reg.Counters["ev_retransmit_total"] == 0 {
		t.Fatal("no retransmit events traced on a lossy (20% drop) network")
	}
	if int(reg.Counters["ev_retransmit_total"]) != res.Counters["rel_retransmits"] {
		t.Fatalf("traced retransmits %d != protocol counter %d",
			reg.Counters["ev_retransmit_total"], res.Counters["rel_retransmits"])
	}
}
