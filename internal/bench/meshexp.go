package bench

import (
	"fmt"
	"sort"

	"prema/internal/core"
	"prema/internal/dmcs"
	"prema/internal/graph"
	"prema/internal/ilb"
	"prema/internal/mesh"
	"prema/internal/mol"
	"prema/internal/parmetis"
	"prema/internal/policy"
	"prema/internal/sim"
	"prema/internal/sweep"
)

// MeshExpConfig configures the paper's mesh-generation experiment (§5): a
// 3-D advancing front mesher over an octree decomposition, refined around a
// crack that advances through the domain each iteration, run under three
// regimes — no load balancing, PREMA with implicit work stealing, and
// stop-and-repartition. The paper reports PREMA 15% faster than
// stop-and-repartition and 42% faster than no balancing, with <1% overhead.
type MeshExpConfig struct {
	// Procs is the simulated machine size.
	Procs int
	// Grid is the subdomain decomposition (nx, ny, nz).
	Grid [3]int
	// Iterations is the number of crack-growth refinement iterations.
	Iterations int
	// PerTet is the virtual CPU cost of generating one tetrahedron.
	PerTet sim.Time
	// UseMesher selects the real advancing front mesher for the cost matrix
	// (false uses the analytic element estimator — same shape, much faster).
	UseMesher bool
	// Seed drives determinism.
	Seed int64
}

// DefaultMeshExpConfig returns the configuration used by cmd/meshgen.
func DefaultMeshExpConfig() MeshExpConfig {
	return MeshExpConfig{
		Procs:      32,
		Grid:       [3]int{8, 4, 4},
		Iterations: 12,
		PerTet:     15 * sim.Millisecond,
		UseMesher:  false,
		Seed:       42,
	}
}

// NumSubdomains returns the subdomain count.
func (c MeshExpConfig) NumSubdomains() int { return c.Grid[0] * c.Grid[1] * c.Grid[2] }

// crackAt returns the crack at refinement iteration it: it grows along the
// domain diagonal, so the refined band sweeps across subdomains — the
// unpredictable localized spike of the paper's crack-growth application.
func (c MeshExpConfig) crackAt(domain mesh.Box, it int) mesh.Crack {
	diag := domain.Size()
	dir := diag.Scale(1 / diag.Norm())
	full := diag.Norm()
	frac := float64(it+1) / float64(c.Iterations)
	return mesh.Crack{
		Origin: domain.Lo,
		Dir:    dir,
		Length: full * frac * 0.95,
		Radius: 0.16 * full,
		HMin:   0.035,
		HMax:   0.25,
	}
}

// MeshCosts is the per-(iteration, subdomain) workload matrix: tetrahedra
// generated when remeshing that subdomain at that crack position.
type MeshCosts struct {
	Tets [][]float64 // [iteration][subdomain]
	Subs []mesh.Box
}

// Weight returns the virtual compute time for (iteration, subdomain).
func (mc *MeshCosts) Weight(cfg MeshExpConfig, it, sub int) sim.Time {
	return sim.Scale(cfg.PerTet, mc.Tets[it][sub])
}

// TotalWork returns the total virtual compute time of the experiment.
func (mc *MeshCosts) TotalWork(cfg MeshExpConfig) sim.Time {
	var t sim.Time
	for it := range mc.Tets {
		for sub := range mc.Tets[it] {
			t += mc.Weight(cfg, it, sub)
		}
	}
	return t
}

// BuildMeshCosts generates the workload matrix by actually meshing (or
// estimating) every subdomain at every crack position. The same matrix is
// shared by all three system drivers, so the comparison is exact.
func BuildMeshCosts(cfg MeshExpConfig) *MeshCosts { return BuildMeshCostsJobs(cfg, 1) }

// BuildMeshCostsJobs is BuildMeshCosts with up to jobs crack positions
// meshed concurrently. The mesher is deterministic and each iteration's row
// is independent, so the matrix is identical for any worker count.
func BuildMeshCostsJobs(cfg MeshExpConfig, jobs int) *MeshCosts {
	domain := mesh.Box{Lo: mesh.Vec3{X: 0, Y: 0, Z: 0}, Hi: mesh.Vec3{X: 2, Y: 1, Z: 1}}
	subs := mesh.Decompose(domain, cfg.Grid[0], cfg.Grid[1], cfg.Grid[2])
	mc := &MeshCosts{Subs: subs}
	rows, err := sweep.Map(jobs, cfg.Iterations, func(it int) ([]float64, error) {
		crack := cfg.crackAt(domain, it)
		row := make([]float64, len(subs))
		for s, b := range subs {
			if cfg.UseMesher {
				m := mesh.Generate(b, crack, mesh.DefaultMesherConfig())
				row[s] = float64(m.NumTets())
			} else {
				row[s] = mesh.EstimateElements(b, crack, 6)
			}
		}
		return row, nil
	})
	if err != nil { // the row builder never errors; sweep only adds panics
		panic(err)
	}
	mc.Tets = rows
	return mc
}

// MeshSystems lists the experiment's three regimes.
var MeshSystems = []string{"none", "prema-implicit", "repartition"}

// RunMeshSystem runs one regime over a prebuilt cost matrix.
func RunMeshSystem(system string, cfg MeshExpConfig, mc *MeshCosts) (*Result, error) {
	switch system {
	case "none":
		return runMeshPrema(cfg, mc, false)
	case "prema-implicit":
		return runMeshPrema(cfg, mc, true)
	case "repartition":
		return runMeshRepartition(cfg, mc)
	default:
		return nil, fmt.Errorf("bench: unknown mesh system %q", system)
	}
}

type meshIterMsg struct{ Iter int }

// runMeshPrema drives the mesh refinement on the PREMA runtime: every
// subdomain is a mobile object processing its own iteration chain
// asynchronously (no global barriers). The hint for iteration k+1 is the
// measured cost of iteration k — the persistence guess the moving crack
// keeps breaking.
func runMeshPrema(cfg MeshExpConfig, mc *MeshCosts, balance bool) (*Result, error) {
	e := sim.NewEngine(sim.Config{Seed: cfg.Seed})
	nSubs := cfg.NumSubdomains()
	meanW := mc.TotalWork(cfg).Seconds() / float64(nSubs*cfg.Iterations)
	name := "none"
	if balance {
		name = "prema-implicit"
	}
	for p := 0; p < cfg.Procs; p++ {
		e.Spawn(fmt.Sprintf("p%03d", p), func(proc *sim.Proc) {
			lb := ilb.DefaultConfig(ilb.Implicit)
			lb.PollEvery = 1
			lb.WaterMark = meanW
			opts := core.Options{LB: lb, Mol: mol.DefaultConfig()}
			if balance {
				ws := policy.DefaultWSConfig()
				ws.MaxObjects = 1
				opts.Policy = policy.NewWorkStealing(ws)
			}
			r := core.NewRuntime(proc, opts)

			done := 0
			var hDone dmcs.HandlerID
			hDone = r.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
				done++
				if done == nSubs {
					r.StopAll()
				}
			})
			var hWork mol.HandlerID
			hWork = r.RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
				sub := obj.Data.(int)
				it := data.(meshIterMsg).Iter
				w := mc.Weight(cfg, it, sub)
				r.Compute(w)
				if it+1 < cfg.Iterations {
					// Chain the next refinement iteration to the object,
					// hinting with the just-measured cost.
					r.Message(obj.MP, hWork, meshIterMsg{Iter: it + 1}, 16, w.Seconds())
					return
				}
				r.Comm().SendTagged(0, hDone, nil, 8, sim.TagApp)
			})
			for sub := 0; sub < nSubs; sub++ {
				if sub*cfg.Procs/nSubs == proc.ID() {
					mp := r.Register(sub, 64<<10)
					r.Message(mp, hWork, meshIterMsg{Iter: 0}, 16, meanW)
				}
			}
			r.Run()
		})
	}
	if err := e.Run(); err != nil {
		return nil, fmt.Errorf("mesh %s: %w", name, err)
	}
	w := Workload{Procs: cfg.Procs, Units: nSubs * cfg.Iterations, Seed: cfg.Seed}
	return collect(name, w, sim.Machine{Engine: e}), nil
}

// mesh repartition wire payloads.
type meshState struct {
	Sub  int
	Iter int // next iteration to run
	Last float64
}

type meshListMsg struct {
	Proc  int
	Round int
	Subs  []meshState
}

type meshMigrateMsg struct{ Subs []meshState }

// runMeshRepartition drives the refinement under root-coordinated
// stop-and-repartition: processors advance their subdomains round-robin;
// when one goes hungry the machine synchronizes, exchanges per-subdomain
// state, repartitions the subdomain adjacency graph (URA, weighted by the
// persistence-guess costs), and migrates subdomains.
func runMeshRepartition(cfg MeshExpConfig, mc *MeshCosts) (*Result, error) {
	e := sim.NewEngine(sim.Config{Seed: cfg.Seed})
	nSubs := cfg.NumSubdomains()
	meanW := mc.TotalWork(cfg).Seconds() / float64(nSubs*cfg.Iterations)
	adjacency := mesh.Neighbors(cfg.Grid[0], cfg.Grid[1], cfg.Grid[2])
	rounds := 0
	for p := 0; p < cfg.Procs; p++ {
		e.Spawn(fmt.Sprintf("p%03d", p), func(proc *sim.Proc) {
			c := dmcs.New(proc)
			me := proc.ID()
			var pending []meshState
			for sub := 0; sub < nSubs; sub++ {
				if sub*cfg.Procs/nSubs == me {
					pending = append(pending, meshState{Sub: sub, Last: meanW})
				}
			}
			hinted := func() float64 {
				s := 0.0
				for _, st := range pending {
					s += st.Last * float64(cfg.Iterations-st.Iter)
				}
				return s
			}

			completed := 0
			roundActive := false
			var lastRound sim.Time = -1 << 40
			rootRound := 0

			joinRound := 0
			var lastReport sim.Time = -1 << 40
			reported := false
			lists := make(map[int][]meshState)
			arrived := 0
			stopped := false

			var hDone, hUnder, hSync, hList, hMigrate, hStop dmcs.HandlerID
			hDone = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
				completed++
				if completed == nSubs && !roundActive {
					for q := 0; q < cfg.Procs; q++ {
						if q != me {
							c.SendTagged(q, hStop, nil, 8, sim.TagSystem)
						}
					}
					stopped = true
				}
			})
			hUnder = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
				if roundActive || completed >= nSubs || proc.Now() < lastRound+25*sim.Second {
					return
				}
				roundActive = true
				lastRound = proc.Now()
				rootRound++
				for q := 0; q < cfg.Procs; q++ {
					if q != me {
						c.SendTagged(q, hSync, rootRound, 8, sim.TagSystem)
					}
				}
				joinRound = rootRound
			})
			hSync = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
				joinRound = data.(int)
			})
			hList = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
				l := data.(meshListMsg)
				lists[l.Proc] = l.Subs
			})
			hMigrate = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
				subs := data.(meshMigrateMsg).Subs
				pending = append(pending, subs...)
				arrived += len(subs)
			})
			hStop = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
				stopped = true
			})

			doRound := func() {
				round := joinRound
				joinRound = 0
				for q := 0; q < cfg.Procs; q++ {
					if q != me {
						c.SendTagged(q, hList, meshListMsg{Proc: me, Round: round, Subs: pending}, 24*len(pending)+16, sim.TagSystem)
					}
				}
				lists[me] = pending
				for len(lists) < cfg.Procs && !stopped {
					proc.WaitMsg(sim.CatSync)
					c.Poll()
				}
				if stopped {
					return
				}
				var all []meshState
				owner := make(map[int]int)
				for q := 0; q < cfg.Procs; q++ {
					for _, st := range lists[q] {
						all = append(all, st)
						owner[st.Sub] = q
					}
				}
				sort.Slice(all, func(i, j int) bool { return all[i].Sub < all[j].Sub })
				proc.Advance(100*sim.Millisecond+sim.Time(len(all))*sim.Millisecond, sim.CatPartition)

				// URA on the live subdomain adjacency graph, weighted by the
				// persistence guess (last measured iteration cost times
				// remaining iterations).
				newOwner := make(map[int]int, len(all))
				if len(all) > 0 {
					local := make(map[int]int, len(all))
					for i, st := range all {
						local[st.Sub] = i
					}
					b := graph.NewBuilder(len(all))
					oldPart := make([]int, len(all))
					for i, st := range all {
						wgt := int64(st.Last * float64(cfg.Iterations-st.Iter) * 1000)
						if wgt < 1 {
							wgt = 1
						}
						b.SetVWgt(i, wgt)
						oldPart[i] = owner[st.Sub]
					}
					for _, pr := range adjacency {
						i, iok := local[pr[0]]
						j, jok := local[pr[1]]
						if iok && jok {
							b.AddEdge(i, j, 1)
						}
					}
					opt := parmetis.DefaultOptions()
					opt.Part.Seed = cfg.Seed + int64(round)
					newPart := parmetis.AdaptiveRepart(b.Build(), cfg.Procs, oldPart, opt)
					for i, st := range all {
						newOwner[st.Sub] = newPart[i]
					}
					if me == 0 {
						rounds++
					}
				}
				batches := make(map[int][]meshState)
				var keep []meshState
				expect := 0
				for _, st := range pending {
					if q := newOwner[st.Sub]; q != me {
						batches[q] = append(batches[q], st)
					} else {
						keep = append(keep, st)
					}
				}
				for _, st := range all {
					if newOwner[st.Sub] == me && owner[st.Sub] != me {
						expect++
					}
				}
				pending = keep
				dsts := make([]int, 0, len(batches))
				for q := range batches {
					dsts = append(dsts, q)
				}
				sort.Ints(dsts)
				for _, q := range dsts {
					c.SendTagged(q, hMigrate, meshMigrateMsg{Subs: batches[q]}, (64<<10)*len(batches[q]), sim.TagSystem)
				}
				for arrived < expect && !stopped {
					proc.WaitMsg(sim.CatSync)
					c.Poll()
				}
				arrived -= expect
				lists = make(map[int][]meshState)
				reported = false
				if me == 0 {
					roundActive = false
					if completed == nSubs && !stopped {
						for q := 1; q < cfg.Procs; q++ {
							c.SendTagged(q, hStop, nil, 8, sim.TagSystem)
						}
						stopped = true
					}
				}
			}

			for !stopped {
				c.Poll()
				if stopped {
					break
				}
				if joinRound != 0 {
					doRound()
					continue
				}
				if len(pending) > 0 {
					st := pending[0]
					pending = pending[1:]
					w := mc.Weight(cfg, st.Iter, st.Sub)
					proc.Advance(w, sim.CatCompute)
					st.Last = w.Seconds()
					st.Iter++
					if st.Iter < cfg.Iterations {
						pending = append(pending, st) // round-robin progress
					} else {
						c.SendTagged(0, hDone, nil, 8, sim.TagApp)
					}
					if hinted() < meanW*2 && (!reported || proc.Now() >= lastReport+5*sim.Second) {
						reported = true
						lastReport = proc.Now()
						c.SendTagged(0, hUnder, nil, 8, sim.TagSystem)
					}
					continue
				}
				if !reported || proc.Now() >= lastReport+5*sim.Second {
					reported = true
					lastReport = proc.Now()
					c.SendTagged(0, hUnder, nil, 8, sim.TagSystem)
				}
				proc.WaitMsgFor(200*sim.Millisecond, sim.CatIdle)
			}
		})
	}
	if err := e.Run(); err != nil {
		return nil, fmt.Errorf("mesh repartition: %w", err)
	}
	w := Workload{Procs: cfg.Procs, Units: nSubs * cfg.Iterations, Seed: cfg.Seed}
	res := collect("repartition", w, sim.Machine{Engine: e})
	res.Counters["lb_rounds"] = rounds
	return res, nil
}
