package bench

import (
	"fmt"

	"prema/internal/core"
	"prema/internal/dmcs"
	"prema/internal/ilb"
	"prema/internal/mol"
	"prema/internal/policy"
	"prema/internal/substrate"
)

// PolicyNames lists the PREMA policy suite the benchmark can drive beyond
// the paper's featured work stealing.
var PolicyNames = []string{"worksteal", "diffusion", "multilist"}

// RunPremaPolicy executes the synthetic benchmark on the PREMA runtime over
// the deterministic simulator in implicit mode under the named load balancing
// policy — the paper's policy suite (§4: Work Stealing, Diffusion, Multi-list
// Scheduling).
func RunPremaPolicy(w Workload, policyName string) (*Result, error) {
	return RunPremaPolicyOn(w.machine(), w, policyName)
}

// RunPremaPolicyOn is RunPremaPolicy on an arbitrary execution substrate.
func RunPremaPolicyOn(m substrate.Machine, w Workload, policyName string) (*Result, error) {
	mkPolicy := func() (ilb.Policy, error) {
		switch policyName {
		case "worksteal":
			cfg := policy.DefaultWSConfig()
			cfg.MaxObjects = 1
			return policy.NewWorkStealing(cfg), nil
		case "diffusion":
			cfg := policy.DefaultDiffConfig()
			cfg.MinTransfer = w.MeanWeight()
			cfg.MaxObjects = 2
			return policy.NewDiffusion(cfg), nil
		case "multilist":
			cfg := policy.DefaultMLConfig()
			cfg.HighMark = 4 * w.MeanWeight()
			cfg.LowMark = 2 * w.MeanWeight()
			return policy.NewMultiList(cfg), nil
		default:
			return nil, fmt.Errorf("bench: unknown policy %q", policyName)
		}
	}
	if _, err := mkPolicy(); err != nil {
		return nil, err
	}
	for p := 0; p < w.Procs; p++ {
		m.Spawn(fmt.Sprintf("p%03d", p), func(ep substrate.Endpoint) {
			opts := core.DefaultOptions(ilb.Implicit)
			opts.LB.WaterMark = 12
			pol, _ := mkPolicy()
			opts.Policy = pol
			r := core.NewRuntime(ep, opts)
			done := 0
			var hDone dmcs.HandlerID
			hDone = r.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
				done++
				if done == w.Units {
					r.StopAll()
				}
			})
			hWork := r.RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
				r.Compute(w.Actual(obj.Data.(int)))
				r.Comm().SendTagged(0, hDone, nil, 8, substrate.TagApp)
			})
			for _, u := range w.UnitsOf(ep.ID()) {
				mp := r.Register(u, w.UnitBytes)
				r.Message(mp, hWork, nil, 8, w.Hint(u))
			}
			r.Run()
		})
	}
	if err := m.Run(); err != nil {
		return nil, fmt.Errorf("bench policy %s: %w", policyName, err)
	}
	return collect("prema-"+policyName, w, m), nil
}
