package bench

import (
	"reflect"
	"testing"

	"prema/internal/dmcs"
	"prema/internal/faulty"
	"prema/internal/substrate"
)

// chaosWorkload is the small figure-3 scenario the chaos tests run.
func chaosWorkload() Workload {
	return PaperWorkload(FigureSpec{ID: 3, Imbalance: 0.5, Ratio: 2.0}, 8, 8)
}

// chaosPlan is the acceptance-level fault mix: a fifth of all messages
// dropped, a tenth duplicated.
func chaosPlan() faulty.Plan {
	return faulty.Plan{Default: faulty.LinkFaults{Drop: 0.2, Dup: 0.1}}
}

// TestChaosRunSurvives: the paper microbenchmark on a lossy, duplicating
// simulated machine with reliable delivery on must produce the same
// application-level outcome as a clean run — every unit computed exactly
// once, every object on exactly one processor — and must visibly have
// fought the network to get there.
func TestChaosRunSurvives(t *testing.T) {
	w := chaosWorkload()
	for _, sys := range []string{"none", "prema-explicit", "prema-implicit"} {
		sys := sys
		t.Run(sys, func(t *testing.T) {
			clean, _, err := RunChaos(w, ChaosSpec{System: sys})
			if err != nil {
				t.Fatal(err)
			}
			res, st, err := RunChaos(w, ChaosSpec{
				System:    sys,
				Plan:      chaosPlan(),
				FaultSeed: 3,
				Rel:       dmcs.DefaultRelConfig(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := clean.CheckConservation(); err != nil {
				t.Errorf("clean run: %v", err)
			}
			if err := res.CheckConservation(); err != nil {
				t.Errorf("faulted run: %v", err)
			}
			if res.Counters["units_run"] != clean.Counters["units_run"] {
				t.Errorf("faulted run computed %d units, clean run %d",
					res.Counters["units_run"], clean.Counters["units_run"])
			}
			if st.Dropped == 0 || st.Dupped == 0 {
				t.Errorf("fault injection too quiet: %+v", st)
			}
			if res.Counters["rel_retransmits"] == 0 {
				t.Errorf("%d drops but no retransmissions", st.Dropped)
			}
		})
	}
}

// TestChaosRunDeterministic: a faulted simulator run is exactly as
// reproducible as a clean one — same seeds, byte-identical outcome, down to
// per-processor ledgers and protocol counters.
func TestChaosRunDeterministic(t *testing.T) {
	w := chaosWorkload()
	cs := ChaosSpec{
		System:    "prema-implicit",
		Plan:      chaosPlan(),
		FaultSeed: 3,
		Rel:       dmcs.DefaultRelConfig(),
	}
	a, sta, err := RunChaos(w, cs)
	if err != nil {
		t.Fatal(err)
	}
	b, stb, err := RunChaos(w, cs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("makespans differ: %v vs %v", a.Makespan, b.Makespan)
	}
	if sta != stb {
		t.Fatalf("fault stats differ: %+v vs %+v", sta, stb)
	}
	for i := range a.Accounts {
		if a.Accounts[i] != b.Accounts[i] {
			t.Fatalf("proc %d accounts differ:\n%v\n%v", i, a.Accounts[i], b.Accounts[i])
		}
	}
	if !reflect.DeepEqual(a.Counters, b.Counters) {
		t.Fatalf("counters differ:\n%v\n%v", a.Counters, b.Counters)
	}
	if !reflect.DeepEqual(a.Resident, b.Resident) {
		t.Fatalf("residency differs:\n%v\n%v", a.Resident, b.Resident)
	}
}

// TestChaosReliableOverhead: reliable delivery on a fault-free simulated
// network must cost almost nothing — the acceptance bound is <5% of the
// clean makespan (measured: ~0.1%; see EXPERIMENTS.md).
func TestChaosReliableOverhead(t *testing.T) {
	w := chaosWorkload()
	clean, _, err := RunChaos(w, ChaosSpec{System: "prema-implicit"})
	if err != nil {
		t.Fatal(err)
	}
	rel, _, err := RunChaos(w, ChaosSpec{System: "prema-implicit", Rel: dmcs.DefaultRelConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.CheckConservation(); err != nil {
		t.Error(err)
	}
	overhead := 100 * (rel.Makespan.Seconds() - clean.Makespan.Seconds()) / clean.Makespan.Seconds()
	if overhead >= 5 {
		t.Errorf("reliable mode costs %.2f%% of makespan on a clean network, want <5%%", overhead)
	}
	if rel.Counters["rel_retransmits"] != 0 {
		t.Errorf("clean network produced %d retransmits", rel.Counters["rel_retransmits"])
	}
}

// TestChaosRejectsBaselines: the third-party baseline cost models have no
// real transport to fault; RunChaos must refuse them.
func TestChaosRejectsBaselines(t *testing.T) {
	w := chaosWorkload()
	for _, sys := range []string{"parmetis", "charm", "charm-sync4", "nonsense"} {
		if _, _, err := RunChaos(w, ChaosSpec{System: sys, Plan: chaosPlan()}); err == nil {
			t.Errorf("RunChaos accepted system %q", sys)
		}
	}
	if _, _, err := RunChaos(w, ChaosSpec{System: "prema-implicit", Backend: "quantum"}); err == nil {
		t.Error("RunChaos accepted backend \"quantum\"")
	}
}

// TestChaosStallRecovery: a processor frozen for a long window mid-run
// (modeling a GC pause or OS stall) must not lose work — the balancer routes
// around it and every unit still computes.
func TestChaosStallRecovery(t *testing.T) {
	w := chaosWorkload()
	res, st, err := RunChaos(w, ChaosSpec{
		System: "prema-implicit",
		Plan: faulty.Plan{Stalls: []faulty.Stall{
			{Proc: 3, At: 10 * substrate.Second, For: 30 * substrate.Second},
		}},
		FaultSeed: 3,
		Rel:       dmcs.DefaultRelConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Stalls != 1 {
		t.Errorf("stall fired %d times, want 1", st.Stalls)
	}
	if err := res.CheckConservation(); err != nil {
		t.Error(err)
	}
}
