package bench

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"prema/internal/trace"
)

// goldenHash fingerprints everything a Result exposes: the summary line, the
// full per-processor breakdown, the ledgers, and the counters. Two runs with
// equal hashes produced byte-identical reports.
func goldenHash(r *Result) uint64 {
	h := fnv.New64a()
	fmt.Fprint(h, r.Summary())
	fmt.Fprint(h, r.Breakdown(1))
	for i := range r.Accounts {
		fmt.Fprintf(h, "%v", r.Accounts[i])
	}
	keys := make([]string, 0, len(r.Counters))
	for k := range r.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%d;", k, r.Counters[k])
	}
	return h.Sum64()
}

// TestShardEquivalenceProperty is the randomized full-stack half of the
// byte-identity guarantee (the engine-level half lives in
// internal/sim/shard_test.go): random figure scenarios on random systems,
// run serially and on a random shard count — including 7, which divides
// nothing evenly — must produce the same golden hash and the same
// per-processor accounts.
func TestShardEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	shardChoices := []int{2, 4, 7}
	for trial := 0; trial < 6; trial++ {
		spec := FigureSpec{
			ID:        3 + rng.Intn(4),
			Imbalance: 0.1 + 0.8*rng.Float64(),
			Ratio:     1.1 + rng.Float64(),
		}
		procs := 5 + rng.Intn(20)
		upp := 4 + rng.Intn(8)
		system := SystemNames[rng.Intn(len(SystemNames))]
		shards := shardChoices[rng.Intn(len(shardChoices))]
		name := fmt.Sprintf("trial%d_%s_p%d_s%d", trial, system, procs, shards)
		t.Run(name, func(t *testing.T) {
			w := PaperWorkload(spec, procs, upp)
			if rng.Intn(2) == 0 {
				w.Hints = HintAccurate
			}
			serial, err := RunSystem(system, w)
			if err != nil {
				t.Fatal(err)
			}
			w.Shards = shards
			sharded, err := RunSystem(system, w)
			if err != nil {
				t.Fatal(err)
			}
			if g, s := goldenHash(serial), goldenHash(sharded); g != s {
				t.Errorf("golden hash diverges: serial %x, shards=%d %x\nserial:  %s\nsharded: %s",
					g, shards, s, serial.Summary(), sharded.Summary())
			}
			for i := range serial.Accounts {
				if serial.Accounts[i] != sharded.Accounts[i] {
					t.Errorf("proc %d ledger diverges:\nserial:  %v\nsharded: %v",
						i, serial.Accounts[i], sharded.Accounts[i])
				}
			}
		})
	}
}

// TestShardTraceEquivalence: the trace event streams — per-processor
// sequences of every recorded event, which subsume the event multiset — are
// identical between serial and sharded runs of the traced systems.
func TestShardTraceEquivalence(t *testing.T) {
	spec := FigureSpec{ID: 3, Imbalance: 0.5, Ratio: 2.0}
	for _, system := range []string{"none", "prema-explicit", "prema-implicit"} {
		for _, shards := range []int{2, 7} {
			t.Run(fmt.Sprintf("%s_s%d", system, shards), func(t *testing.T) {
				w := PaperWorkload(spec, 9, 6)
				colSerial := trace.NewCollector(0)
				serial, err := RunSystemTraced(system, w, colSerial)
				if err != nil {
					t.Fatal(err)
				}
				w.Shards = shards
				colSharded := trace.NewCollector(0)
				sharded, err := RunSystemTraced(system, w, colSharded)
				if err != nil {
					t.Fatal(err)
				}
				if serial.Makespan != sharded.Makespan {
					t.Fatalf("makespan diverges: %v vs %v", serial.Makespan, sharded.Makespan)
				}
				if a, b := colSerial.NumProcs(), colSharded.NumProcs(); a != b {
					t.Fatalf("recorder count diverges: %d vs %d", a, b)
				}
				for i := 0; i < colSerial.NumProcs(); i++ {
					a := colSerial.Recorder(i).Events()
					b := colSharded.Recorder(i).Events()
					if !reflect.DeepEqual(a, b) {
						t.Errorf("proc %d trace stream diverges (%d vs %d events)", i, len(a), len(b))
					}
				}
			})
		}
	}
}
