package bench

import (
	"fmt"

	"prema/internal/dmcs"
	"prema/internal/faulty"
	"prema/internal/rtm"
	"prema/internal/sim"
	"prema/internal/substrate"
	"prema/internal/trace"
	"prema/internal/wire"
)

// ChaosSpec configures one chaos run: a named PREMA system configuration on
// a (possibly) faulted substrate, with reliable delivery on or off. It is
// the programmatic form of premabench's and chaosbench's fault flags.
type ChaosSpec struct {
	// System names the PREMA configuration ("none", "prema-explicit",
	// "prema-implicit"). The third-party baseline models are simulator cost
	// models without a real transport, so faults do not apply to them.
	System string
	// Plan is the fault schedule; an inactive plan runs the machine bare.
	Plan faulty.Plan
	// FaultSeed seeds the injector's per-endpoint random streams.
	FaultSeed int64
	// Rel configures DMCS reliable delivery. Zero value = classic mode.
	Rel dmcs.RelConfig
	// Backend selects the substrate: "sim" (default, deterministic) or
	// "real" (goroutine-per-processor wall clock).
	Backend string
	// TimeScale and Spin tune the real backend (wall seconds per virtual
	// second; busy-wait instead of sleeping). Zero TimeScale keeps the
	// backend default.
	TimeScale float64
	Spin      bool
	// Trace, when non-nil, attaches the event tracing decorator outermost
	// (outside the fault injector) and records the run into this collector.
	Trace *trace.Collector
	// Recover enables the crash-recovery subsystem so crash (and recover)
	// plan clauses are survivable. Requires Rel.Enabled and a serial
	// simulator (Shards <= 1): cross-shard wall-clock interleaving would
	// make verdict timing nondeterministic.
	Recover bool
	// CheckpointInterval and LeaseTimeout override the recov defaults. On
	// the real backend a zero LeaseTimeout is auto-derived so that the lease
	// spans 250ms of wall clock regardless of timescale (the sim default of
	// 500ms virtual would be mere microseconds of wall time at small
	// timescales — pure false-positive territory).
	CheckpointInterval substrate.Time
	LeaseTimeout       substrate.Time
}

// RunChaos executes the paper microbenchmark under a chaos spec and returns
// the benchmark result plus the injector's machine-wide fault counters
// (zero when the plan is inactive).
func RunChaos(w Workload, cs ChaosSpec) (*Result, faulty.Stats, error) {
	cfg, err := PremaConfigFor(cs.System)
	if err != nil {
		return nil, faulty.Stats{}, err
	}
	cfg.Rel = cs.Rel
	if cs.Recover {
		if !cs.Rel.Enabled {
			return nil, faulty.Stats{}, fmt.Errorf("bench: recovery requires reliable delivery")
		}
		if w.Shards > 1 {
			return nil, faulty.Stats{}, fmt.Errorf("bench: recovery requires a serial simulator (shards <= 1)")
		}
		cfg.Recover = true
		cfg.CheckpointInterval = cs.CheckpointInterval
		cfg.LeaseTimeout = cs.LeaseTimeout
	}
	var m substrate.Machine
	switch cs.Backend {
	case "", "sim":
		m = sim.NewMachine(w.simConfig())
	case "real":
		rc := rtm.DefaultConfig()
		rc.Seed = w.Seed
		if cs.TimeScale > 0 {
			rc.TimeScale = cs.TimeScale
		}
		rc.Spin = cs.Spin
		if cs.Recover && cs.LeaseTimeout <= 0 {
			// Virtual lease sized so it spans 250ms of wall clock at this
			// timescale (wall = virtual * TimeScale).
			cfg.LeaseTimeout = substrate.Time(float64(250*substrate.Millisecond) / rc.TimeScale)
		}
		m = rtm.New(rc)
	default:
		return nil, faulty.Stats{}, fmt.Errorf("bench: unknown chaos backend %q (want sim or real)", cs.Backend)
	}
	if w.Wire {
		// Innermost, so the injector and tracer observe exactly the
		// (decoded) messages a plain run would carry.
		m = wire.Wrap(m)
	}
	var fm *faulty.Machine
	if cs.Plan.Active() {
		fm = faulty.Wrap(m, cs.Plan, cs.FaultSeed)
		m = fm
	}
	if cs.Trace != nil {
		// Outermost, so the stream records what the stack observed — after
		// the injector has dropped, duplicated, or delayed the traffic.
		m = trace.Wrap(m, cs.Trace)
	}
	res, err := RunPremaOn(m, w, cfg)
	if err != nil {
		return nil, faulty.Stats{}, err
	}
	var st faulty.Stats
	if fm != nil {
		st = fm.Stats()
	}
	return res, st, nil
}

// CheckConservation verifies the application-level outcome of a PREMA run:
// every work unit computed exactly once, and every registered mobile object
// resident on exactly one processor at the end — no unit lost to a dropped
// message, none run twice off a duplicated one. This is the invariant the
// chaos experiments assert against a faulted machine.
func (r *Result) CheckConservation() error {
	if r.Resident == nil {
		return fmt.Errorf("%s: no residency data (not a PREMA run)", r.System)
	}
	if got := r.Counters["units_run"]; got != r.W.Units {
		return fmt.Errorf("%s: ran %d units, want %d", r.System, got, r.W.Units)
	}
	objs := 0
	for _, n := range r.Resident {
		objs += n
	}
	if objs != r.W.Units {
		return fmt.Errorf("%s: %d objects resident, want %d", r.System, objs, r.W.Units)
	}
	return nil
}
