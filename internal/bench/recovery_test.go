package bench

import (
	"reflect"
	"sync"
	"testing"

	"prema/internal/core"
	"prema/internal/dmcs"
	"prema/internal/faulty"
	"prema/internal/ilb"
	"prema/internal/mol"
	"prema/internal/recov"
	"prema/internal/rtm"
	"prema/internal/sim"
	"prema/internal/substrate"
)

// TestRecoveryCrashMidRun is the tentpole acceptance scenario: the figure-3
// chaos workload with one processor fail-stopping at 50% of the clean
// makespan must finish with the clean run's application-level outcome —
// every unit computed exactly once, every object resident exactly once —
// with checkpoint overhead below 5% of the clean makespan.
func TestRecoveryCrashMidRun(t *testing.T) {
	w := chaosWorkload()
	clean, _, err := RunChaos(w, ChaosSpec{System: "prema-implicit", Rel: dmcs.DefaultRelConfig()})
	if err != nil {
		t.Fatal(err)
	}
	crashAt := clean.Makespan / 2
	res, st, err := RunChaos(w, ChaosSpec{
		System:    "prema-implicit",
		Plan:      faulty.Plan{Crashes: []faulty.Crash{{Proc: 3, At: crashAt}}},
		FaultSeed: 3,
		Rel:       dmcs.DefaultRelConfig(),
		Recover:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Crashed {
		t.Fatalf("crash never fired: %+v", st)
	}
	if err := res.CheckConservation(); err != nil {
		t.Errorf("crashed run: %v", err)
	}
	if res.Counters["units_run"] != clean.Counters["units_run"] {
		t.Errorf("crashed run computed %d units, clean run %d",
			res.Counters["units_run"], clean.Counters["units_run"])
	}
	if res.Resident[3] != 0 {
		t.Errorf("crashed processor still hosts %d objects", res.Resident[3])
	}
	rs := res.Recov
	if rs == nil {
		t.Fatal("no recovery ledger on a -recover run")
	}
	if rs.Suspects != 1 {
		t.Errorf("suspects = %d, want 1", rs.Suspects)
	}
	if rs.ObjectsRecovered == 0 {
		t.Error("no objects re-homed from checkpoints")
	}
	if rs.Checkpoints == 0 {
		t.Error("no checkpoints taken")
	}
	// Checkpoint overhead: total charged cost averaged over processors,
	// against the clean makespan.
	perProc := rs.Charged.Seconds() / float64(w.Procs)
	if lim := 0.05 * clean.Makespan.Seconds(); perProc >= lim {
		t.Errorf("checkpoint overhead %.3fs/proc >= 5%% of clean makespan (%.1fs)", perProc, clean.Makespan.Seconds())
	}
}

// TestRecoveryNoCrashByteIdentical: enabling recovery without a crash must
// not change a single observable — makespan, every per-processor ledger,
// every counter, every residency count. Checkpoint costs are charged, never
// timed, which is what makes this possible.
func TestRecoveryNoCrashByteIdentical(t *testing.T) {
	w := chaosWorkload()
	for _, sys := range []string{"prema-explicit", "prema-implicit"} {
		sys := sys
		t.Run(sys, func(t *testing.T) {
			base, _, err := RunChaos(w, ChaosSpec{System: sys, Rel: dmcs.DefaultRelConfig()})
			if err != nil {
				t.Fatal(err)
			}
			rec, _, err := RunChaos(w, ChaosSpec{System: sys, Rel: dmcs.DefaultRelConfig(), Recover: true})
			if err != nil {
				t.Fatal(err)
			}
			if base.Makespan != rec.Makespan {
				t.Fatalf("makespans differ: %v vs %v", base.Makespan, rec.Makespan)
			}
			for i := range base.Accounts {
				if base.Accounts[i] != rec.Accounts[i] {
					t.Fatalf("proc %d ledgers differ:\n%v\n%v", i, base.Accounts[i], rec.Accounts[i])
				}
			}
			if !reflect.DeepEqual(base.Counters, rec.Counters) {
				t.Fatalf("counters differ:\n%v\n%v", base.Counters, rec.Counters)
			}
			if !reflect.DeepEqual(base.Resident, rec.Resident) {
				t.Fatalf("residency differs:\n%v\n%v", base.Resident, rec.Resident)
			}
			if rec.Recov == nil || rec.Recov.Checkpoints == 0 {
				t.Error("recovery run took no checkpoints (the identity would be vacuous)")
			}
		})
	}
}

// TestRecoveryCrashDeterministic: a crashed-and-recovered simulator run is
// exactly as reproducible as a clean one.
func TestRecoveryCrashDeterministic(t *testing.T) {
	w := chaosWorkload()
	cs := ChaosSpec{
		System:    "prema-implicit",
		Plan:      faulty.Plan{Crashes: []faulty.Crash{{Proc: 3, At: 35 * substrate.Second}}},
		FaultSeed: 3,
		Rel:       dmcs.DefaultRelConfig(),
		Recover:   true,
	}
	a, _, err := RunChaos(w, cs)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunChaos(w, cs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("makespans differ: %v vs %v", a.Makespan, b.Makespan)
	}
	for i := range a.Accounts {
		if a.Accounts[i] != b.Accounts[i] {
			t.Fatalf("proc %d accounts differ:\n%v\n%v", i, a.Accounts[i], b.Accounts[i])
		}
	}
	if !reflect.DeepEqual(a.Counters, b.Counters) {
		t.Fatalf("counters differ:\n%v\n%v", a.Counters, b.Counters)
	}
}

// TestRecoveryRejoin: a crash:P;recover:P plan re-spawns the processor,
// which re-joins the machine and takes part in the rest of the run. The
// application outcome is still exactly-once.
func TestRecoveryRejoin(t *testing.T) {
	w := chaosWorkload()
	plan, err := faulty.ParsePlan("crash:3@35s;recover:3@50s")
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := RunChaos(w, ChaosSpec{
		System:    "prema-implicit",
		Plan:      plan,
		FaultSeed: 3,
		Rel:       dmcs.DefaultRelConfig(),
		Recover:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Crashed || st.Rejoins != 1 {
		t.Fatalf("faults = %+v, want 1 crash + 1 rejoin", st)
	}
	if err := res.CheckConservation(); err != nil {
		t.Error(err)
	}
	if res.Counters["recov_rejoins"] != 1 {
		t.Errorf("recov_rejoins = %d, want 1", res.Counters["recov_rejoins"])
	}
}

// TestRecoveryRealBackend: the same crash-at-midpoint scenario survives on
// the real-concurrency backend, where failure detection runs on (scaled)
// wall-clock leases instead of deterministic virtual time.
func TestRecoveryRealBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("real backend recovery test in -short mode")
	}
	w := PaperWorkload(FigureSpec{ID: 3, Imbalance: 0.5, Ratio: 2.0}, 4, 2)
	res, st, err := RunChaos(w, ChaosSpec{
		System:    "prema-implicit",
		Plan:      faulty.Plan{Crashes: []faulty.Crash{{Proc: 3, At: 8 * substrate.Second}}},
		FaultSeed: 3,
		Rel:       dmcs.DefaultRelConfig(),
		Backend:   "real",
		TimeScale: 1e-1,
		Recover:   true,
		// 3s of virtual time = 300ms of wall clock at this timescale:
		// comfortably above scheduling jitter, far below the run length.
		LeaseTimeout: 3 * substrate.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Crashed {
		t.Fatal("crash never fired")
	}
	if err := res.CheckConservation(); err != nil {
		t.Error(err)
	}
	if res.Recov == nil || res.Recov.Suspects == 0 {
		t.Error("real backend: crash never detected")
	}
}

// chainTarget is the observed object of the forwarding-chain property test:
// it records every payload delivered to it, in delivery order.
type chainTarget struct {
	mu       sync.Mutex
	received []int
}

// runChainThroughCrash drives the property test: a mobile object is homed on
// processor 1 and migrated to processor 2; processor 0 streams sequenced
// payloads at it through the forwarding chain; processor 2 fail-stops
// mid-stream. After directory repair and orphan re-homing, every payload
// must have been delivered exactly once, in per-origin order.
func runChainThroughCrash(t *testing.T, m substrate.Machine, fm *faulty.Machine, lease substrate.Time) {
	t.Helper()
	const (
		procs    = 4
		payloads = 30
	)
	store := recov.NewStore(recov.Config{LeaseTimeout: lease})
	target := &chainTarget{}
	targetMP := mol.MobilePtr{Home: 1, Index: 0}
	for p := 0; p < procs; p++ {
		m.Spawn("p", func(ep substrate.Endpoint) {
			opts := core.Options{
				LB:       ilb.DefaultConfig(ilb.Implicit),
				Mol:      mol.DefaultConfig(),
				Rel:      dmcs.DefaultRelConfig(),
				Recovery: store,
			}
			r := core.NewRuntime(ep, opts)
			var hPump mol.HandlerID
			hPayload := r.RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
				tg := obj.Data.(*chainTarget)
				tg.mu.Lock()
				tg.received = append(tg.received, data.(int))
				n := len(tg.received)
				tg.mu.Unlock()
				if n == payloads {
					r.StopAll()
				}
			})
			hHop := r.RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
				// Park on processor 1 for a while before hopping to 2, so the
				// stream establishes a forwarding chain first.
				r.Compute(3 * substrate.Second)
				if err := l.Migrate(obj.MP, data.(int)); err != nil {
					t.Errorf("migrate: %v", err)
				}
			})
			hPump = r.RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
				i := data.(int)
				r.Compute(500 * substrate.Millisecond)
				l.Message(targetMP, hPayload, i, 8)
				if i+1 < payloads {
					l.Message(obj.MP, hPump, i+1, 8)
				}
			})
			switch ep.ID() {
			case 0:
				pump := r.Register(struct{}{}, 16)
				r.Message(pump, hPump, 0, 8, 0)
			case 1:
				mp := r.Register(target, 64)
				if mp != targetMP {
					t.Errorf("target registered as %v, want %v", mp, targetMP)
				}
				r.Message(mp, hHop, 2, 8, 0)
			}
			r.Run()
		})
	}
	fm.OnRejoin(func(id int) func(substrate.Endpoint) {
		t.Errorf("unexpected rejoin of processor %d (no recover clause in plan)", id)
		return func(substrate.Endpoint) {}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	target.mu.Lock()
	defer target.mu.Unlock()
	if len(target.received) != payloads {
		t.Fatalf("delivered %d payloads, want %d: %v", len(target.received), payloads, target.received)
	}
	for i, v := range target.received {
		if v != i {
			t.Fatalf("payload %d delivered out of order (or duplicated): got %d\nfull order: %v", i, v, target.received)
		}
	}
	if st := store.Stats(); st.Suspects == 0 || st.ObjectsRecovered == 0 {
		t.Errorf("recovery never engaged: %+v", st)
	}
}

// TestRecoveryChainThroughCrash runs the forwarding-chain property on both
// backends. The object is resident on the crashing processor, so the test
// exercises checkpoint restore, manifest-based re-resolution of a pointer
// whose chain dead-ends in the crash, and per-origin replay dedup at once.
func TestRecoveryChainThroughCrash(t *testing.T) {
	plan, err := faulty.ParsePlan("crash:2@8s")
	if err != nil {
		t.Fatal(err)
	}
	t.Run("sim", func(t *testing.T) {
		fm := faulty.Wrap(sim.NewMachine(sim.Config{Seed: 2}), plan, 7)
		runChainThroughCrash(t, fm, fm, 0)
	})
	t.Run("rtm", func(t *testing.T) {
		if testing.Short() {
			t.Skip("real backend chain test in -short mode")
		}
		cfg := rtm.DefaultConfig()
		cfg.Seed = 2
		cfg.TimeScale = 1e-1
		fm := faulty.Wrap(rtm.New(cfg), plan, 7)
		// 2s virtual = 200ms wall at this timescale.
		runChainThroughCrash(t, fm, fm, 2*substrate.Second)
	})
}
