package bench

import (
	"strings"
	"testing"

	"prema/internal/sim"
)

// TestRunsAreDeterministic: every driver, run twice on the same workload,
// must produce byte-identical results — the repository-wide reproducibility
// guarantee EXPERIMENTS.md relies on.
func TestRunsAreDeterministic(t *testing.T) {
	w := PaperWorkload(FigureSpec{ID: 3, Imbalance: 0.5, Ratio: 2.0}, 8, 8)
	for _, sys := range SystemNames {
		sys := sys
		t.Run(sys, func(t *testing.T) {
			a, err := RunSystem(sys, w)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunSystem(sys, w)
			if err != nil {
				t.Fatal(err)
			}
			if a.Makespan != b.Makespan {
				t.Fatalf("makespans differ: %v vs %v", a.Makespan, b.Makespan)
			}
			for i := range a.Accounts {
				if a.Accounts[i] != b.Accounts[i] {
					t.Fatalf("proc %d accounts differ:\n%v\n%v", i, a.Accounts[i], b.Accounts[i])
				}
			}
			for k, v := range a.Counters {
				if b.Counters[k] != v {
					t.Fatalf("counter %s differs: %d vs %d", k, v, b.Counters[k])
				}
			}
		})
	}
}

func TestMeshExperimentDeterministic(t *testing.T) {
	cfg := quickMeshConfig()
	mc := BuildMeshCosts(cfg)
	a, err := RunMeshSystem("prema-implicit", cfg, mc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMeshSystem("prema-implicit", cfg, mc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("mesh runs differ: %v vs %v", a.Makespan, b.Makespan)
	}
}

func TestFigureRunTiny(t *testing.T) {
	fr, err := RunFigure(FigureSpec{ID: 3, Imbalance: 0.5, Ratio: 2.0}, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Results) != len(SystemNames) {
		t.Fatalf("results = %d", len(fr.Results))
	}
	if fr.Get("prema-implicit") == nil || fr.Get("bogus") != nil {
		t.Fatal("Get lookup")
	}
	report := fr.Report(4)
	for _, frag := range []string{"Figure 3", "prema-implicit vs none", "parmetis sync+partition", "Per-processor breakdowns"} {
		if !strings.Contains(report, frag) {
			t.Fatalf("report missing %q:\n%s", frag, report)
		}
	}
}

func TestResultCSV(t *testing.T) {
	w := PaperWorkload(FigureSpec{ID: 3, Imbalance: 0.5, Ratio: 2.0}, 4, 4)
	r, err := RunSystem("none", w)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 { // header + 4 procs
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "proc,compute,idle") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestWorkloadMoreProcsThanUnits(t *testing.T) {
	w := Workload{Procs: 8, Units: 4, HeavyFrac: 0.5, Heavy: 2 * sim.Second, Light: sim.Second}
	owned := 0
	for p := 0; p < w.Procs; p++ {
		owned += len(w.UnitsOf(p))
	}
	if owned != 4 {
		t.Fatalf("owned %d of 4", owned)
	}
}

func TestResultSummaryContainsKeyMetrics(t *testing.T) {
	w := PaperWorkload(FigureSpec{ID: 5, Imbalance: 0.5, Ratio: 1.2}, 4, 4)
	r, err := RunSystem("prema-implicit", w)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Summary()
	for _, frag := range []string{"prema-implicit", "makespan", "stddev", "overhead"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("summary missing %q: %s", frag, s)
		}
	}
	if r.IdlePct() < 0 || r.IdlePct() > 100 {
		t.Fatalf("idle pct = %v", r.IdlePct())
	}
}
