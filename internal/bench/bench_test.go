package bench

import (
	"testing"

	"prema/internal/sim"
)

func smallSpec() FigureSpec { return FigureSpec{ID: 3, Imbalance: 0.5, Ratio: 2.0} }

// smallWorkload is a 16-processor, 256-unit miniature of the paper setup.
func smallWorkload(spec FigureSpec) Workload {
	return PaperWorkload(spec, 16, 16)
}

func TestWorkloadProperties(t *testing.T) {
	w := smallWorkload(smallSpec())
	if w.NumHeavy() != 128 {
		t.Fatalf("heavy = %d", w.NumHeavy())
	}
	if !w.IsHeavy(0) || w.IsHeavy(128) {
		t.Fatal("heavy units must occupy the lowest indices")
	}
	if w.Actual(0) != 10*sim.Second || w.Actual(200) != 5*sim.Second {
		t.Fatal("weights")
	}
	if w.MeanWeight() != 7.5 {
		t.Fatalf("mean = %v", w.MeanWeight())
	}
	if w.Hint(0) != 7.5 {
		t.Fatalf("mean hint = %v", w.Hint(0))
	}
	w.Hints = HintAccurate
	if w.Hint(0) != 10 {
		t.Fatalf("accurate hint = %v", w.Hint(0))
	}
	// Block ownership covers every unit exactly once.
	seen := make([]bool, w.Units)
	for p := 0; p < w.Procs; p++ {
		for _, u := range w.UnitsOf(p) {
			if seen[u] {
				t.Fatalf("unit %d owned twice", u)
			}
			seen[u] = true
			if w.Owner(u) != p {
				t.Fatalf("owner mismatch for %d", u)
			}
		}
	}
	for u, s := range seen {
		if !s {
			t.Fatalf("unit %d unowned", u)
		}
	}
	if w.IdealMakespan() != w.TotalWork()/16 {
		t.Fatal("ideal")
	}
}

// TestAllSystemsComplete runs every driver at miniature scale and validates
// conservation: total computed seconds must equal the workload total.
func TestAllSystemsComplete(t *testing.T) {
	w := smallWorkload(smallSpec())
	want := w.TotalWork().Seconds()
	for _, name := range SystemNames {
		name := name
		t.Run(name, func(t *testing.T) {
			r, err := RunSystem(name, w)
			if err != nil {
				t.Fatal(err)
			}
			got := r.TotalCompute()
			if got < want*0.999 || got > want*1.001 {
				t.Fatalf("total compute %.1fs, want %.1fs", got, want)
			}
			if r.Makespan < w.IdealMakespan() {
				t.Fatalf("makespan %v below ideal %v", r.Makespan, w.IdealMakespan())
			}
		})
	}
}

// TestPaperOrderingSmall checks the paper's headline ordering at miniature
// scale: implicit PREMA beats no balancing and is at least as good as
// explicit PREMA.
func TestPaperOrderingSmall(t *testing.T) {
	w := smallWorkload(smallSpec())
	none, err := RunSystem("none", w)
	if err != nil {
		t.Fatal(err)
	}
	expl, err := RunSystem("prema-explicit", w)
	if err != nil {
		t.Fatal(err)
	}
	impl, err := RunSystem("prema-implicit", w)
	if err != nil {
		t.Fatal(err)
	}
	if impl.Makespan >= none.Makespan {
		t.Fatalf("implicit %v should beat none %v", impl.Makespan, none.Makespan)
	}
	if impl.Makespan > expl.Makespan {
		t.Fatalf("implicit %v should be <= explicit %v", impl.Makespan, expl.Makespan)
	}
	if impl.ComputeStdDev() >= none.ComputeStdDev() {
		t.Fatalf("implicit stddev %.1f should beat none %.1f", impl.ComputeStdDev(), none.ComputeStdDev())
	}
	// PREMA overhead stays tiny (paper: well under 1%).
	if impl.OverheadPct() > 1.0 {
		t.Fatalf("implicit overhead %.2f%%", impl.OverheadPct())
	}
}

func TestParmetisBalancesWhenWorkRemains(t *testing.T) {
	w := smallWorkload(smallSpec())
	// At miniature scale the absolute outstanding work is small; lower the
	// warrant threshold proportionally so the repartition applies.
	cfg := DefaultParmetisConfig()
	cfg.WarrantPerProc = 5
	pm, err := RunParmetis(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	none, err := RunSystem("none", w)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Makespan >= none.Makespan {
		t.Fatalf("parmetis %v should beat none %v at 50%% imbalance", pm.Makespan, none.Makespan)
	}
	if pm.Counters["lb_rounds"] == 0 {
		t.Fatal("no repartition rounds happened")
	}
	if pm.SyncPct() <= 0 {
		t.Fatal("no synchronization cost recorded")
	}
}

func TestFigureByID(t *testing.T) {
	if _, err := FigureByID(7); err == nil {
		t.Fatal("figure 7 should not exist")
	}
	f, err := FigureByID(5)
	if err != nil || f.Ratio != 1.2 || f.Imbalance != 0.5 {
		t.Fatalf("figure 5 = %+v, err %v", f, err)
	}
}

func TestRunSystemUnknown(t *testing.T) {
	if _, err := RunSystem("bogus", smallWorkload(smallSpec())); err == nil {
		t.Fatal("unknown system should error")
	}
}

// TestParmetisWarrantRule: a high warrant threshold makes every round
// decline ("mandated that work units remain"), leaving the makespan at the
// no-balancing level; a low threshold repartitions and improves it.
func TestParmetisWarrantRule(t *testing.T) {
	w := smallWorkload(smallSpec())
	none, err := RunSystem("none", w)
	if err != nil {
		t.Fatal(err)
	}
	strict := DefaultParmetisConfig()
	strict.WarrantPerProc = 1e9
	rs, err := RunParmetis(w, strict)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Counters["rounds_declined"] != rs.Counters["lb_rounds"] || rs.Counters["lb_rounds"] == 0 {
		t.Fatalf("strict warrant: %v", rs.Counters)
	}
	if rs.Makespan < none.Makespan {
		t.Fatalf("declined rounds should not beat none: %v vs %v", rs.Makespan, none.Makespan)
	}
	loose := DefaultParmetisConfig()
	loose.WarrantPerProc = 1
	rl, err := RunParmetis(w, loose)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Counters["lb_rounds"] == rl.Counters["rounds_declined"] {
		t.Fatalf("loose warrant never applied: %v", rl.Counters)
	}
	if rl.Makespan >= none.Makespan {
		t.Fatalf("applied repartition should beat none: %v vs %v", rl.Makespan, none.Makespan)
	}
}

// TestParmetisSyncCostGrowsWithDeclinedRounds: the Figure 4 mechanism —
// repeated synchronizations that accomplish nothing still cost sync time.
func TestParmetisSyncCostGrowsWithDeclinedRounds(t *testing.T) {
	w := smallWorkload(FigureSpec{ID: 4, Imbalance: 0.1, Ratio: 2.0})
	cfg := DefaultParmetisConfig()
	cfg.WarrantPerProc = 1e9
	cfg.RoundInterval = 10 * sim.Second
	r, err := RunParmetis(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.SyncPct() <= 0.5 {
		t.Fatalf("declined rounds produced almost no sync cost: %.3f%%", r.SyncPct())
	}
}
