package bench

import "testing"

func TestHybridSystemsRunAndConserveWork(t *testing.T) {
	cfg := DefaultHybridConfig()
	cfg.Procs = 8
	cfg.Grid = [3]int{4, 2, 2}
	cfg.NumPhases = 4
	cfg.SolveIters = 4
	mc := BuildHybridCosts(cfg)
	var want float64
	for _, row := range mc.Tets {
		for _, tets := range row {
			want += tets * (cfg.PerTetRefine.Seconds() + float64(cfg.SolveIters)*cfg.PerTetSolve.Seconds())
		}
	}
	for _, sys := range HybridSystems {
		r, err := RunHybrid(sys, cfg, mc)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		got := r.TotalCompute()
		if got < want*0.999 || got > want*1.001 {
			t.Fatalf("%s: compute %.1f want %.1f", sys, got, want)
		}
		t.Logf("%-12s makespan=%8.1fs sync=%5.1f%% overhead=%.2f%%", sys, r.Makespan.Seconds(), r.SyncPct(), r.OverheadPct())
	}
}

// TestHybridUnifiedWins: the paper's proposed end-to-end method should beat
// both single-mechanism regimes.
func TestHybridUnifiedWins(t *testing.T) {
	cfg := DefaultHybridConfig()
	mc := BuildHybridCosts(cfg)
	results := map[string]*Result{}
	for _, sys := range HybridSystems {
		r, err := RunHybrid(sys, cfg, mc)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		results[sys] = r
		t.Logf("%-12s makespan=%8.1fs", sys, r.Makespan.Seconds())
	}
	u := results["unified"].Makespan
	if u >= results["repartition"].Makespan {
		t.Errorf("unified %v should beat repartition-only %v", u, results["repartition"].Makespan)
	}
	if u >= results["prema"].Makespan {
		t.Errorf("unified %v should beat prema-only %v", u, results["prema"].Makespan)
	}
}
