package bench

import (
	"fmt"
	"os"
	"sort"

	"prema/internal/dmcs"
	"prema/internal/graph"
	"prema/internal/parmetis"
	"prema/internal/sim"
)

// ParmetisConfig configures the stop-and-repartition driver (the paper's
// ParMETIS baseline, §5): a root-coordinated protocol in which underloaded
// processors notify the root, the root decides whether outstanding work
// warrants a repartition, and — if so — all processors synchronize, exchange
// load information all-to-all, each compute the same adaptive repartition
// (ParMETIS_V3_AdaptiveRepart's Unified Repartitioning Algorithm), and
// migrate work units accordingly.
type ParmetisConfig struct {
	// WaterMark is the hinted-seconds threshold below which a processor
	// reports itself underloaded to the root.
	WaterMark float64
	// WarrantPerProc: after the information exchange, the repartition is
	// applied only if outstanding hinted work per processor is at least
	// this many seconds; otherwise the round "mandates that work units
	// remain on the processors on which they were originally assigned"
	// (paper §5, the Figure 4 regime).
	WarrantPerProc float64
	// RoundInterval is the minimum spacing between repartition rounds.
	RoundInterval sim.Time
	// ReportInterval is how often an idle processor re-reports underload to
	// the root (each report can trigger another round once RoundInterval
	// has elapsed; in the declined regime this yields the paper's repeated
	// synchronization cost).
	ReportInterval sim.Time
	// Alpha is the URA Relative Cost Factor.
	Alpha float64
	// PartitionBaseCPU + PartitionPerUnitCPU model the virtual CPU cost of
	// one partition calculation over n outstanding units.
	PartitionBaseCPU    sim.Time
	PartitionPerUnitCPU sim.Time
	// IdleTick bounds idle blocking.
	IdleTick sim.Time
}

// DefaultParmetisConfig returns the calibrated configuration for the paper
// figures.
func DefaultParmetisConfig() ParmetisConfig {
	return ParmetisConfig{
		WaterMark:           12,
		WarrantPerProc:      45,
		RoundInterval:       15 * sim.Second,
		ReportInterval:      5 * sim.Second,
		Alpha:               0.1,
		PartitionBaseCPU:    100 * sim.Millisecond,
		PartitionPerUnitCPU: 150 * sim.Microsecond,
		IdleTick:            200 * sim.Millisecond,
	}
}

// wire payloads
type pmList struct {
	Round int
	Proc  int
	Units []int
}

type pmMigrate struct{ Units []int }

// RunParmetis executes the synthetic benchmark under stop-and-repartition.
func RunParmetis(w Workload, cfg ParmetisConfig) (*Result, error) {
	e := w.engine()
	rounds := 0
	migrated := 0
	declined := 0
	for p := 0; p < w.Procs; p++ {
		e.Spawn(fmt.Sprintf("p%03d", p), func(proc *sim.Proc) {
			c := dmcs.New(proc)
			me := proc.ID()
			pending := append([]int(nil), w.UnitsOf(me)...)
			hinted := func() float64 {
				s := 0.0
				for _, u := range pending {
					s += w.Hint(u)
				}
				return s
			}

			// Root-only state.
			completed := 0
			roundActive := false
			var lastRound sim.Time = -1 << 40
			roundID := 0

			// Per-proc round state.
			joinRound := 0 // round id to join, 0 = none
			var lastReport sim.Time = -1 << 40
			lists := make(map[int][]int)
			arrivedUnits := 0
			stopped := false
			reported := false

			var hDone, hUnder, hSyncStart, hList, hMigrate, hStop dmcs.HandlerID
			hDone = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
				completed++
				if completed == w.Units && !roundActive {
					for q := 0; q < w.Procs; q++ {
						if q != me {
							c.SendTagged(q, hStop, nil, 8, sim.TagSystem)
						}
					}
					stopped = true
				}
			})
			hUnder = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
				if roundActive || completed >= w.Units {
					return
				}
				if proc.Now() < lastRound+cfg.RoundInterval {
					return
				}
				roundActive = true
				lastRound = proc.Now()
				roundID++
				for q := 0; q < w.Procs; q++ {
					if q != me {
						c.SendTagged(q, hSyncStart, roundID, 8, sim.TagSystem)
					}
				}
				joinRound = roundID
			})
			hSyncStart = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
				joinRound = data.(int)
			})
			hList = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
				l := data.(pmList)
				lists[l.Proc] = l.Units
			})
			hMigrate = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
				units := data.(pmMigrate).Units
				pending = append(pending, units...)
				arrivedUnits += len(units)
			})
			hStop = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
				stopped = true
			})

			// PM_DEBUG=1 prints per-round protocol tracing (diagnostics only).
			debug := os.Getenv("PM_DEBUG") != ""
			doRound := func() {
				round := joinRound
				if debug {
					fmt.Printf("[%8.3f] p%02d join round %d pending=%d\n", proc.Now().Seconds(), me, round, len(pending))
				}
				joinRound = 0
				// All-to-all information exchange: ship my pending list to
				// every other processor.
				for q := 0; q < w.Procs; q++ {
					if q != me {
						c.SendTagged(q, hList, pmList{Round: round, Proc: me, Units: pending}, 4*len(pending)+16, sim.TagSystem)
					}
				}
				lists[me] = pending
				// Synchronization: wait for everyone's list. The cost of
				// this barrier is the paper's "Synchronization Time".
				for len(lists) < w.Procs && !stopped {
					proc.WaitMsg(sim.CatSync)
					c.Poll()
				}
				if stopped {
					return
				}
				if debug {
					h := 0
					n := 0
					for q := 0; q < w.Procs; q++ {
						for _, u := range lists[q] {
							h = h*31 + u + 7*q
							n++
						}
					}
					fmt.Printf("[%8.3f] p%02d round %d lists complete n=%d hash=%d\n", proc.Now().Seconds(), me, round, n, h)
				}
				// Deterministic global view.
				var all []int
				oldOwner := make(map[int]int)
				for q := 0; q < w.Procs; q++ {
					for _, u := range lists[q] {
						all = append(all, u)
						oldOwner[u] = q
					}
				}
				sort.Ints(all)
				// Partition calculation (every processor computes the same
				// answer, as ParMETIS does in parallel).
				proc.Advance(cfg.PartitionBaseCPU+cfg.PartitionPerUnitCPU*sim.Time(len(all)), sim.CatPartition)
				outstandingHinted := 0.0
				for _, u := range all {
					outstandingHinted += w.Hint(u)
				}
				newOwner := oldOwner
				apply := outstandingHinted/float64(w.Procs) >= cfg.WarrantPerProc && len(all) > 0
				if apply {
					b := graph.NewBuilder(len(all))
					oldPart := make([]int, len(all))
					for i, u := range all {
						b.SetVWgt(i, int64(w.Hint(u)*1000))
						oldPart[i] = oldOwner[u]
					}
					g := b.Build()
					opt := parmetis.DefaultOptions()
					opt.Alpha = cfg.Alpha
					opt.Part.Seed = w.Seed + int64(round)
					newPart := parmetis.AdaptiveRepart(g, w.Procs, oldPart, opt)
					newOwner = make(map[int]int, len(all))
					for i, u := range all {
						newOwner[u] = newPart[i]
					}
					if me == 0 {
						rounds++
						for i, u := range all {
							if newPart[i] != oldOwner[u] {
								migrated++
							}
						}
					}
				} else if me == 0 {
					rounds++
					declined++
				}
				// Migrate: batch my outgoing units per destination.
				batches := make(map[int][]int)
				var keep []int
				expect := 0
				for _, u := range pending {
					if q := newOwner[u]; q != me {
						batches[q] = append(batches[q], u)
					} else {
						keep = append(keep, u)
					}
				}
				for _, u := range all {
					if newOwner[u] == me && oldOwner[u] != me {
						expect++
					}
				}
				pending = keep
				dsts := make([]int, 0, len(batches))
				for q := range batches {
					dsts = append(dsts, q)
				}
				sort.Ints(dsts)
				for _, q := range dsts {
					c.SendTagged(q, hMigrate, pmMigrate{Units: batches[q]}, w.UnitBytes*len(batches[q])+32, sim.TagSystem)
				}
				// Wait for my own immigrants before resuming.
				for arrivedUnits < expect && !stopped {
					proc.WaitMsg(sim.CatSync)
					c.Poll()
				}
				arrivedUnits -= expect
				if debug {
					fmt.Printf("[%8.3f] p%02d round %d done expect=%d pending=%d\n", proc.Now().Seconds(), me, round, expect, len(pending))
				}
				lists = make(map[int][]int)
				reported = false
				// The root re-arms round initiation and handles a
				// completion that landed mid-round.
				if me == 0 {
					roundActive = false
					if completed == w.Units && !stopped {
						for q := 1; q < w.Procs; q++ {
							c.SendTagged(q, hStop, nil, 8, sim.TagSystem)
						}
						stopped = true
					}
				}
			}

			for !stopped {
				c.Poll()
				if stopped {
					break
				}
				if joinRound != 0 {
					doRound()
					continue
				}
				if len(pending) > 0 {
					u := pending[0]
					pending = pending[1:]
					proc.Advance(w.Actual(u), sim.CatCompute)
					c.SendTagged(0, hDone, nil, 8, sim.TagApp)
					if hinted() < cfg.WaterMark && !reported {
						reported = true
						lastReport = proc.Now()
						c.SendTagged(0, hUnder, nil, 8, sim.TagSystem)
					}
					continue
				}
				if !reported || proc.Now() >= lastReport+cfg.ReportInterval {
					reported = true
					lastReport = proc.Now()
					c.SendTagged(0, hUnder, nil, 8, sim.TagSystem)
				}
				proc.WaitMsgFor(cfg.IdleTick, sim.CatIdle)
			}
		})
	}
	if err := e.Run(); err != nil {
		return nil, fmt.Errorf("bench parmetis: %w", err)
	}
	res := collect("parmetis", w, sim.Machine{Engine: e})
	res.Counters["lb_rounds"] = rounds
	res.Counters["rounds_declined"] = declined
	res.Counters["units_migrated_root"] = migrated
	return res, nil
}
