package bench

import (
	"testing"

	"prema/internal/charm"
	"prema/internal/sim"
)

func TestCharmWeightPersistentMapping(t *testing.T) {
	w := PaperWorkload(FigureSpec{ID: 3, Imbalance: 0.5, Ratio: 2.0}, 8, 8)
	cfg := CharmConfig{SyncPoints: 4, Shuffle: false}
	chares := w.Units / 4
	// Persistent: chare c's iteration k weight is unit c*4+k.
	if got := charmWeight(w, cfg, chares, nil, 0, 0); got != w.Actual(0) {
		t.Fatalf("weight(0,0) = %v", got)
	}
	if got := charmWeight(w, cfg, chares, nil, chares-1, 3); got != w.Actual((chares-1)*4+3) {
		t.Fatalf("weight(last,3) = %v", got)
	}
}

func TestCharmWeightShuffleConservesHeavyFraction(t *testing.T) {
	w := PaperWorkload(FigureSpec{ID: 4, Imbalance: 0.1, Ratio: 2.0}, 8, 8)
	cfg := DefaultCharmConfig(4)
	chares := w.Units / 4
	offsets := []int{0, 13, 11, 7}
	for it := 0; it < 4; it++ {
		heavy := 0
		for c := 0; c < chares; c++ {
			if charmWeight(w, cfg, chares, offsets, c, it) == w.Heavy {
				heavy++
			}
		}
		want := int(w.HeavyFrac * float64(chares))
		if heavy != want {
			t.Fatalf("iteration %d: %d heavy chares, want %d", it, heavy, want)
		}
	}
	// Iteration 0 matches the block-imbalanced start (offset 0).
	if charmWeight(w, cfg, chares, offsets, 0, 0) != w.Heavy {
		t.Fatal("iteration 0 must start heavy at chare 0")
	}
}

func TestCharmWeightShuffleIsContiguousSpike(t *testing.T) {
	w := PaperWorkload(FigureSpec{ID: 4, Imbalance: 0.1, Ratio: 2.0}, 8, 8)
	cfg := DefaultCharmConfig(4)
	chares := w.Units / 4
	offsets := []int{0, 7, 0, 0}
	// At offset 7 the heavy block is chares 7..7+heavy-1 (mod C).
	heavySize := int(w.HeavyFrac * float64(chares))
	for c := 0; c < chares; c++ {
		pos := c - 7
		if pos < 0 {
			pos += chares
		}
		want := w.Light
		if pos < heavySize {
			want = w.Heavy
		}
		if got := charmWeight(w, cfg, chares, offsets, c, 1); got != want {
			t.Fatalf("chare %d: %v want %v", c, got, want)
		}
	}
}

// TestCharmSyncAdaptiveVsPersistent: under persistent weights the AtSync
// balancer helps; under the moving spike it cannot (the paper's premise).
func TestCharmSyncAdaptiveVsPersistent(t *testing.T) {
	w := PaperWorkload(FigureSpec{ID: 3, Imbalance: 0.5, Ratio: 2.0}, 16, 16)
	persistent := CharmConfig{SyncPoints: 4, Strategy: charm.GreedyLB{}, Shuffle: false}
	adaptive := CharmConfig{SyncPoints: 4, Strategy: charm.RefineLB{}, Shuffle: true}
	rp, err := RunCharm(w, persistent)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := RunCharm(w, adaptive)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Makespan >= ra.Makespan {
		t.Fatalf("persistent+greedy (%v) should beat adaptive+refine (%v)", rp.Makespan, ra.Makespan)
	}
}

func TestMeshCostsWeightScaling(t *testing.T) {
	mc := &MeshCosts{Tets: [][]float64{{100, 200}}}
	cfg := MeshExpConfig{PerTet: 10 * sim.Millisecond, Iterations: 1, Grid: [3]int{2, 1, 1}, Procs: 1}
	if mc.Weight(cfg, 0, 0) != sim.Second {
		t.Fatalf("weight = %v", mc.Weight(cfg, 0, 0))
	}
	if mc.TotalWork(cfg) != 3*sim.Second {
		t.Fatalf("total = %v", mc.TotalWork(cfg))
	}
}

func TestHintModeString(t *testing.T) {
	if HintMean.String() != "mean" || HintAccurate.String() != "accurate" {
		t.Fatal("hint mode strings")
	}
}

func TestHybridUnknownSystem(t *testing.T) {
	cfg := DefaultHybridConfig()
	if _, err := RunHybrid("bogus", cfg, &MeshCosts{}); err == nil {
		t.Fatal("unknown hybrid system must error")
	}
}

func TestRunMeshSystemUnknown(t *testing.T) {
	if _, err := RunMeshSystem("bogus", DefaultMeshExpConfig(), &MeshCosts{}); err == nil {
		t.Fatal("unknown mesh system must error")
	}
}
