// Package bench implements the paper's synthetic microbenchmark (§5) and
// one driver per evaluated system: no load balancing, PREMA with explicit or
// implicit (preemptive) work stealing, ParMETIS-style stop-and-repartition,
// and the Charm++-style chare runtime with or without AtSync load balancing
// iterations. Each driver runs on the simulated cluster and returns the
// per-processor time breakdowns that Figures 3-6 plot.
package bench

import (
	"prema/internal/sim"
	"prema/internal/substrate"
)

// HintMode controls how the computational weight *hints* handed to the load
// balancers relate to the true weights. The paper intentionally feeds
// hint-reliant balancers inaccurate information, because highly adaptive
// applications cannot predict the weights of pending work (§5).
type HintMode int

const (
	// HintMean tells the balancers every unit weighs the workload mean —
	// the paper's "intentionally inaccurate" regime (default).
	HintMean HintMode = iota
	// HintAccurate gives exact weights (an ablation: how much of the
	// baselines' shortfall is prediction error vs mechanism?).
	HintAccurate
)

func (h HintMode) String() string {
	if h == HintAccurate {
		return "accurate"
	}
	return "mean"
}

// Workload describes one synthetic benchmark configuration (the paper's
// command-line parameters, step 1 of §5).
type Workload struct {
	// Procs is the machine size (the paper's platform: 128).
	Procs int
	// Units is the total number of work units.
	Units int
	// HeavyFrac is the initial imbalance percentage: the fraction of units
	// (lowest global indices) that are computationally heavy.
	HeavyFrac float64
	// Heavy and Light are the true computational weights. The paper's
	// "double" figures use 10s/5s (≈500/250 Mflops at the platform's
	// sustained rate); the "20% heavier" figures use 6s/5s.
	Heavy, Light sim.Time
	// Hints selects hint accuracy (see HintMode).
	Hints HintMode
	// UnitBytes is each work unit's migration payload size.
	UnitBytes int
	// Seed drives all randomized decisions.
	Seed int64
	// Network overrides the interconnect model (zero value = Fast Ethernet
	// defaults).
	Network sim.NetworkConfig
	// Shards is the simulator's parallel event-loop shard count (<= 1 =
	// serial). It is a pure performance knob: every report, hash, and trace
	// is byte-identical for every value (internal/bench/shard_equivalence_test.go
	// guards this). It only applies to the simulator backend.
	Shards int
}

// NumHeavy returns the number of heavy units.
func (w Workload) NumHeavy() int { return int(w.HeavyFrac * float64(w.Units)) }

// IsHeavy reports whether unit u is heavy. Heavy units occupy the lowest
// global indices, so the block distribution concentrates them on the
// low-numbered processors (the staircase of Figures 3a-6a).
func (w Workload) IsHeavy(u int) bool { return u < w.NumHeavy() }

// Actual returns unit u's true computational weight.
func (w Workload) Actual(u int) sim.Time {
	if w.IsHeavy(u) {
		return w.Heavy
	}
	return w.Light
}

// MeanWeight returns the mean true weight in seconds.
func (w Workload) MeanWeight() float64 {
	h := float64(w.NumHeavy())
	l := float64(w.Units) - h
	return (h*w.Heavy.Seconds() + l*w.Light.Seconds()) / float64(w.Units)
}

// Hint returns the weight estimate the load balancers see for unit u.
func (w Workload) Hint(u int) float64 {
	switch w.Hints {
	case HintAccurate:
		return w.Actual(u).Seconds()
	default:
		return w.MeanWeight()
	}
}

// Owner returns unit u's initial processor under the block distribution
// (step 2 of the benchmark algorithm).
func (w Workload) Owner(u int) int { return u * w.Procs / w.Units }

// UnitsOf returns the unit indices initially owned by processor p.
func (w Workload) UnitsOf(p int) []int {
	var out []int
	lo := (p*w.Units + w.Procs - 1) / w.Procs
	for u := lo; u < w.Units && w.Owner(u) == p; u++ {
		out = append(out, u)
	}
	return out
}

// TotalWork returns the sum of true weights.
func (w Workload) TotalWork() sim.Time {
	return sim.Time(w.NumHeavy())*w.Heavy + sim.Time(w.Units-w.NumHeavy())*w.Light
}

// IdealMakespan returns TotalWork/Procs: the perfect-balance lower bound.
func (w Workload) IdealMakespan() sim.Time {
	return w.TotalWork() / sim.Time(w.Procs)
}

// engine builds the simulation engine for this workload.
func (w Workload) engine() *sim.Engine {
	return sim.NewEngine(sim.Config{Network: w.Network, Seed: w.Seed, Shards: w.Shards})
}

// machine builds the default (deterministic simulator) substrate machine for
// this workload. The RunXxxOn drivers accept any substrate.Machine; callers
// wanting real concurrency construct an rtm.Machine themselves.
func (w Workload) machine() substrate.Machine {
	return sim.NewMachine(sim.Config{Network: w.Network, Seed: w.Seed, Shards: w.Shards})
}
