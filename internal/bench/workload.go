// Package bench implements the paper's synthetic microbenchmark (§5) and
// one driver per evaluated system: no load balancing, PREMA with explicit or
// implicit (preemptive) work stealing, ParMETIS-style stop-and-repartition,
// and the Charm++-style chare runtime with or without AtSync load balancing
// iterations. Each driver runs on the simulated cluster and returns the
// per-processor time breakdowns that Figures 3-6 plot.
package bench

import (
	"fmt"
	"sort"

	"prema/internal/sim"
	"prema/internal/substrate"
	"prema/internal/wire"
)

// HintMode controls how the computational weight *hints* handed to the load
// balancers relate to the true weights. The paper intentionally feeds
// hint-reliant balancers inaccurate information, because highly adaptive
// applications cannot predict the weights of pending work (§5).
type HintMode int

const (
	// HintMean tells the balancers every unit weighs the workload mean —
	// the paper's "intentionally inaccurate" regime (default).
	HintMean HintMode = iota
	// HintAccurate gives exact weights (an ablation: how much of the
	// baselines' shortfall is prediction error vs mechanism?).
	HintAccurate
)

func (h HintMode) String() string {
	if h == HintAccurate {
		return "accurate"
	}
	return "mean"
}

// Workload describes one synthetic benchmark configuration (the paper's
// command-line parameters, step 1 of §5).
type Workload struct {
	// Procs is the machine size (the paper's platform: 128).
	Procs int
	// Units is the total number of work units.
	Units int
	// HeavyFrac is the initial imbalance percentage: the fraction of units
	// (lowest global indices) that are computationally heavy.
	HeavyFrac float64
	// Heavy and Light are the true computational weights. The paper's
	// "double" figures use 10s/5s (≈500/250 Mflops at the platform's
	// sustained rate); the "20% heavier" figures use 6s/5s.
	Heavy, Light sim.Time
	// Hints selects hint accuracy (see HintMode).
	Hints HintMode
	// UnitBytes is each work unit's migration payload size.
	UnitBytes int
	// Seed drives all randomized decisions.
	Seed int64
	// Network overrides the interconnect model (zero value = Fast Ethernet
	// defaults).
	Network sim.NetworkConfig
	// Shards is the simulator's parallel event-loop shard count (<= 1 =
	// serial). It is a pure performance knob: every report, hash, and trace
	// is byte-identical for every value (internal/bench/shard_equivalence_test.go
	// guards this). It only applies to the simulator backend.
	Shards int
	// Partition selects the processor→shard placement strategy when Shards
	// > 1: PartitionRoundRobin (default; also the empty string),
	// PartitionBlocked (contiguous ID ranges, which aligns shards with
	// network zones and with the block unit distribution's heavy prefix),
	// or PartitionLoaded (greedy LPT over each processor's expected event
	// weight, so shards start with near-equal work). Like Shards it never
	// changes output, only the shard-level balance and barrier cost.
	Partition string
	// FixedWindows forwards sim.Config.FixedWindows: it pins the sharded
	// engine to one minimum-lookahead window per coordination round so
	// perfbench can measure the rounds adaptive batching saves.
	FixedWindows bool
	// Wire wraps the machine in the serialization loopback (wire.Wrap):
	// every message is encoded to its binary frame at Send and delivered as
	// a freshly decoded copy, auditing modeled sizes along the way. Like
	// Shards it never changes output — wire runs are byte-identical
	// (internal/bench/wire_equivalence_test.go) — it only costs host CPU.
	// It applies to the machine-based drivers (none and the prema-*
	// systems); the engine-level cost models (parmetis, charm*) have no
	// transport to wrap.
	Wire bool
}

// testPartition, when non-nil, overrides every workload's partition strategy
// with an explicit processor→shard map. Only the partition-invariance tests
// set it (and restore nil); it lives outside Workload because Workload must
// stay comparable, so it cannot carry a func field itself.
var testPartition func(id, shards int) int

// Partition strategy names accepted by Workload.Partition and the CLIs'
// -partition flag.
const (
	PartitionRoundRobin = "roundrobin"
	PartitionBlocked    = "blocked"
	PartitionLoaded     = "loaded"
)

// PartitionStrategies lists the valid partition strategy names.
var PartitionStrategies = []string{PartitionRoundRobin, PartitionBlocked, PartitionLoaded}

// ValidPartition reports whether s names a partition strategy ("" counts:
// it means the round-robin default).
func ValidPartition(s string) bool {
	if s == "" {
		return true
	}
	for _, v := range PartitionStrategies {
		if s == v {
			return true
		}
	}
	return false
}

// partition resolves the configured strategy to a sim.Config.Partition
// function (nil = the engine's round-robin default).
func (w Workload) partition() func(id, shards int) int {
	if testPartition != nil {
		return testPartition
	}
	switch w.Partition {
	case "", PartitionRoundRobin:
		return nil
	case PartitionBlocked:
		procs := w.Procs
		return func(id, shards int) int {
			if id >= procs { // defensive: extra spawns fall back to round-robin
				return id % shards
			}
			return id * shards / procs
		}
	case PartitionLoaded:
		return w.loadedPartition()
	default:
		panic(fmt.Sprintf("bench: unknown partition strategy %q (want %v)", w.Partition, PartitionStrategies))
	}
}

// loadedPartition builds the load-aware strategy: each processor's expected
// event weight is the summed true weight of its initial units (the same
// quantity the block distribution skews), and processors are placed on
// shards by greedy LPT — heaviest first, each onto the currently lightest
// shard. Ties break deterministically (lowest processor, lowest shard), so
// the map is a pure function of the workload, as sim.Config.Partition
// requires.
func (w Workload) loadedPartition() func(id, shards int) int {
	weights := make([]sim.Time, w.Procs)
	for p := 0; p < w.Procs; p++ {
		for _, u := range w.UnitsOf(p) {
			weights[p] += w.Actual(u)
		}
	}
	var (
		builtFor int
		assign   []int
	)
	return func(id, shards int) int {
		if assign == nil || builtFor != shards {
			assign = lptAssign(weights, shards)
			builtFor = shards
		}
		if id >= len(assign) { // defensive: extra spawns fall back to round-robin
			return id % shards
		}
		return assign[id]
	}
}

// lptAssign is greedy longest-processing-time placement of weighted items
// onto shards: items in descending weight order (stable on index), each to
// the least-loaded shard (lowest index on ties).
func lptAssign(weights []sim.Time, shards int) []int {
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return weights[order[a]] > weights[order[b]]
	})
	load := make([]sim.Time, shards)
	assign := make([]int, len(weights))
	for _, p := range order {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		assign[p] = best
		load[best] += weights[p]
	}
	return assign
}

// NumHeavy returns the number of heavy units.
func (w Workload) NumHeavy() int { return int(w.HeavyFrac * float64(w.Units)) }

// IsHeavy reports whether unit u is heavy. Heavy units occupy the lowest
// global indices, so the block distribution concentrates them on the
// low-numbered processors (the staircase of Figures 3a-6a).
func (w Workload) IsHeavy(u int) bool { return u < w.NumHeavy() }

// Actual returns unit u's true computational weight.
func (w Workload) Actual(u int) sim.Time {
	if w.IsHeavy(u) {
		return w.Heavy
	}
	return w.Light
}

// MeanWeight returns the mean true weight in seconds.
func (w Workload) MeanWeight() float64 {
	h := float64(w.NumHeavy())
	l := float64(w.Units) - h
	return (h*w.Heavy.Seconds() + l*w.Light.Seconds()) / float64(w.Units)
}

// Hint returns the weight estimate the load balancers see for unit u.
func (w Workload) Hint(u int) float64 {
	switch w.Hints {
	case HintAccurate:
		return w.Actual(u).Seconds()
	default:
		return w.MeanWeight()
	}
}

// Owner returns unit u's initial processor under the block distribution
// (step 2 of the benchmark algorithm).
func (w Workload) Owner(u int) int { return u * w.Procs / w.Units }

// UnitsOf returns the unit indices initially owned by processor p.
func (w Workload) UnitsOf(p int) []int {
	var out []int
	lo := (p*w.Units + w.Procs - 1) / w.Procs
	for u := lo; u < w.Units && w.Owner(u) == p; u++ {
		out = append(out, u)
	}
	return out
}

// TotalWork returns the sum of true weights.
func (w Workload) TotalWork() sim.Time {
	return sim.Time(w.NumHeavy())*w.Heavy + sim.Time(w.Units-w.NumHeavy())*w.Light
}

// IdealMakespan returns TotalWork/Procs: the perfect-balance lower bound.
func (w Workload) IdealMakespan() sim.Time {
	return w.TotalWork() / sim.Time(w.Procs)
}

// simConfig assembles the simulator configuration for this workload —
// network model, seed, shard count, partition map, window mode. Everything
// that builds a sim engine or machine for a workload goes through here so
// the partition plumbing cannot diverge between drivers.
func (w Workload) simConfig() sim.Config {
	return sim.Config{
		Network:      w.Network,
		Seed:         w.Seed,
		Shards:       w.Shards,
		Partition:    w.partition(),
		FixedWindows: w.FixedWindows,
	}
}

// engine builds the simulation engine for this workload.
func (w Workload) engine() *sim.Engine {
	return sim.NewEngine(w.simConfig())
}

// machine builds the default (deterministic simulator) substrate machine for
// this workload, wire-wrapped when w.Wire is set. The RunXxxOn drivers
// accept any substrate.Machine; callers wanting real concurrency construct
// an rtm.Machine themselves (and wrap it with wire.Wrap for parity).
func (w Workload) machine() substrate.Machine {
	var m substrate.Machine = sim.NewMachine(w.simConfig())
	if w.Wire {
		m = wire.Wrap(m)
	}
	return m
}
