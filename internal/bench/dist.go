package bench

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"prema/internal/dist"
	"prema/internal/dmcs"
	"prema/internal/faulty"
	"prema/internal/substrate"
	"prema/internal/trace"
	"prema/internal/wire"
)

// DistSpec is the scenario a coordinator ships to every node of a
// distributed (multi-process) run: the workload, the system to drive, and
// the per-node machine tuning. It travels as the Roster's opaque Spec
// bytes, so every node runs exactly the configuration the coordinator
// decided — SPMD with centrally distributed parameters.
type DistSpec struct {
	// System names the driver: a PREMA configuration ("none",
	// "prema-explicit", "prema-implicit"), a policy-suite system
	// ("prema-worksteal", "prema-diffusion", "prema-multilist"), or
	// "pingpong" (the two-rank transport round-trip probe).
	System string
	// Procs, Units, HeavyFrac, Heavy, Light, Hints, UnitBytes, Seed are the
	// Workload fields (see Workload); sim-only knobs (shards, partition,
	// wire) do not travel.
	Procs     int
	Units     int
	HeavyFrac float64
	Heavy     substrate.Time
	Light     substrate.Time
	Hints     HintMode
	UnitBytes int
	Seed      int64
	// Reliable switches DMCS into reliable-delivery mode with RTO (zero =
	// dmcs default).
	Reliable bool
	RTO      substrate.Time
	// FaultPlan injects faults at each node's substrate seam (internal/faulty
	// syntax; empty = none). Fail-stop clauses are rejected: crash recovery
	// is not supported across processes.
	FaultPlan string
	FaultSeed int64
	// TimeScale and Spin tune each node's machine (rtm semantics; zero
	// TimeScale keeps the dist default).
	TimeScale float64
	Spin      bool
	// TracePath, when non-empty, records each node's timeline and writes a
	// Chrome trace with ".nodeN" suffixed before the extension (the path is
	// interpreted on each node's filesystem). TraceRing sizes the rings.
	TracePath string
	TraceRing int
}

// NewDistSpec builds the spec for a workload and system with default
// machine tuning.
func NewDistSpec(system string, w Workload) DistSpec {
	return DistSpec{
		System:    system,
		Procs:     w.Procs,
		Units:     w.Units,
		HeavyFrac: w.HeavyFrac,
		Heavy:     w.Heavy,
		Light:     w.Light,
		Hints:     w.Hints,
		UnitBytes: w.UnitBytes,
		Seed:      w.Seed,
	}
}

// Workload reconstructs the workload the spec describes.
func (s DistSpec) Workload() Workload {
	return Workload{
		Procs:     s.Procs,
		Units:     s.Units,
		HeavyFrac: s.HeavyFrac,
		Heavy:     s.Heavy,
		Light:     s.Light,
		Hints:     s.Hints,
		UnitBytes: s.UnitBytes,
		Seed:      s.Seed,
	}
}

const distSpecVersion = 1

// Encode serializes the spec for Roster.Spec.
func (s DistSpec) Encode() []byte {
	var w wire.Writer
	w.U8(distSpecVersion)
	w.Bytes([]byte(s.System))
	w.Int(s.Procs)
	w.Int(s.Units)
	w.F64(s.HeavyFrac)
	w.I64(int64(s.Heavy))
	w.I64(int64(s.Light))
	w.U8(uint8(s.Hints))
	w.Int(s.UnitBytes)
	w.I64(s.Seed)
	w.Bool(s.Reliable)
	w.I64(int64(s.RTO))
	w.Bytes([]byte(s.FaultPlan))
	w.I64(s.FaultSeed)
	w.F64(s.TimeScale)
	w.Bool(s.Spin)
	w.Bytes([]byte(s.TracePath))
	w.Int(s.TraceRing)
	return w.Buf()
}

// DecodeDistSpec parses an encoded spec, rejecting corrupt or
// version-mismatched input.
func DecodeDistSpec(b []byte) (DistSpec, error) {
	r := wire.NewReader(b)
	if v := r.U8(); r.Err() == nil && v != distSpecVersion {
		return DistSpec{}, fmt.Errorf("bench: dist spec version %d, want %d", v, distSpecVersion)
	}
	s := DistSpec{
		System:    string(r.Bytes()),
		Procs:     r.Int(),
		Units:     r.Int(),
		HeavyFrac: r.F64(),
		Heavy:     substrate.Time(r.I64()),
		Light:     substrate.Time(r.I64()),
		Hints:     HintMode(r.U8()),
		UnitBytes: r.Int(),
		Seed:      r.I64(),
		Reliable:  r.Bool(),
		RTO:       substrate.Time(r.I64()),
		FaultPlan: string(r.Bytes()),
		FaultSeed: r.I64(),
		TimeScale: r.F64(),
		Spin:      r.Bool(),
		TracePath: string(r.Bytes()),
		TraceRing: r.Int(),
	}
	if err := r.Err(); err != nil {
		return DistSpec{}, fmt.Errorf("bench: corrupt dist spec: %w", err)
	}
	if r.Remaining() != 0 {
		return DistSpec{}, fmt.Errorf("bench: %d trailing bytes after dist spec", r.Remaining())
	}
	return s, nil
}

// RunDistNode is the node-side driver: it decodes the session spec from the
// roster, builds this node's machine, runs the selected system (the same
// driver code the in-process backends run), and reports the node's partial
// result to the coordinator. premad calls it once per session.
func RunDistNode(n *dist.Node) error {
	spec, err := DecodeDistSpec(n.Spec())
	if err != nil {
		return err
	}
	w := spec.Workload()

	mc := dist.DefaultMachineConfig()
	if spec.System == "pingpong" {
		// The round-trip probe measures the raw transport: real time, no
		// injected message costs.
		mc = dist.MachineConfig{TimeScale: 1}
	}
	if spec.TimeScale > 0 {
		mc.TimeScale = spec.TimeScale
	}
	mc.Spin = spec.Spin
	mc.Seed = w.Seed
	dm := n.NewMachine(mc)

	if spec.System == "pingpong" {
		res, err := runPingPong(dm, w)
		if err != nil {
			return err
		}
		return n.Report(encodeDistPartial(res))
	}

	var m substrate.Machine = dm
	plan, err := faulty.ParsePlan(spec.FaultPlan)
	if err != nil {
		return err
	}
	if len(plan.Crashes) > 0 || len(plan.Recovers) > 0 {
		return fmt.Errorf("bench: fail-stop fault clauses are not supported on the dist backend")
	}
	if plan.Active() {
		m = faulty.Wrap(m, plan, spec.FaultSeed)
	}
	var col *trace.Collector
	if spec.TracePath != "" {
		col = trace.NewCollector(spec.TraceRing)
		m = trace.Wrap(m, col)
	}

	var res *Result
	switch spec.System {
	case "prema-worksteal", "prema-diffusion", "prema-multilist":
		res, err = RunPremaPolicyOn(m, w, spec.System[len("prema-"):])
	default:
		cfg, cfgErr := PremaConfigFor(spec.System)
		if cfgErr != nil {
			return cfgErr
		}
		if spec.Reliable {
			cfg.Rel = dmcs.DefaultRelConfig()
			if spec.RTO > 0 {
				cfg.Rel.RTO = spec.RTO
			}
		}
		res, err = RunPremaOn(m, w, cfg)
	}
	if err != nil {
		return err
	}
	if col != nil {
		path := trace.SuffixPath(spec.TracePath, fmt.Sprintf("node%d", n.NodeID()))
		if err := col.WriteChromeFile(path); err != nil {
			return err
		}
	}
	return n.Report(encodeDistPartial(res))
}

// runPingPong is the transport round-trip probe: rank 0 bounces Units
// messages off rank 1 and measures the wall-clock total. With the standard
// two-node split the two ranks live in different processes, so the
// measured time is TCP round trips through the full encode/frame/decode
// path.
func runPingPong(dm *dist.Machine, w Workload) (*Result, error) {
	if w.Procs != 2 {
		return nil, fmt.Errorf("bench: pingpong needs exactly 2 processors, got %d", w.Procs)
	}
	rounds := w.Units
	var nsTotal int64
	dm.Spawn("p000", func(ep substrate.Endpoint) {
		t0 := time.Now()
		for i := 0; i < rounds; i++ {
			ep.Send(&substrate.Msg{Dst: 1, Tag: substrate.TagApp, Data: i, Size: 8}, substrate.CatMessaging)
			ep.Recv(substrate.CatIdle)
		}
		nsTotal = time.Since(t0).Nanoseconds()
	})
	dm.Spawn("p001", func(ep substrate.Endpoint) {
		for i := 0; i < rounds; i++ {
			msg := ep.Recv(substrate.CatIdle)
			ep.Send(&substrate.Msg{Dst: 0, Tag: substrate.TagApp, Data: msg.Data, Size: 8}, substrate.CatMessaging)
		}
	})
	if err := dm.Run(); err != nil {
		return nil, fmt.Errorf("bench pingpong: %w", err)
	}
	res := collect("pingpong", w, dm)
	if lo, _ := dm.Range(); lo == 0 {
		// Only the rank-0 host reports, so the merged counters are not
		// double-counted.
		res.Counters["pingpong_rounds"] = rounds
		res.Counters["pingpong_ns_total"] = int(nsTotal)
	}
	return res, nil
}

const distPartialVersion = 1

// encodeDistPartial serializes the node-local share of a Result: counters,
// residency, and wire telemetry. Makespan and accounts travel separately in
// the session's Done/Fin frames.
func encodeDistPartial(res *Result) []byte {
	var w wire.Writer
	w.U8(distPartialVersion)
	w.Bytes([]byte(res.System))
	keys := make([]string, 0, len(res.Counters))
	for k := range res.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.Bytes([]byte(k))
		w.Int(res.Counters[k])
	}
	w.U32(uint32(len(res.Resident)))
	for _, n := range res.Resident {
		w.Int(n)
	}
	w.U64(res.WireFrames)
	w.U64(res.WireDrift)
	return w.Buf()
}

// distPartial is one node's decoded share.
type distPartial struct {
	system     string
	counters   map[string]int
	resident   []int
	wireFrames uint64
	wireDrift  uint64
}

func decodeDistPartial(b []byte) (*distPartial, error) {
	r := wire.NewReader(b)
	if v := r.U8(); r.Err() == nil && v != distPartialVersion {
		return nil, fmt.Errorf("bench: dist partial version %d, want %d", v, distPartialVersion)
	}
	p := &distPartial{system: string(r.Bytes()), counters: map[string]int{}}
	for i, n := 0, r.Count(5); i < n; i++ { // key length u32 + >=1 byte + int
		k := string(r.Bytes())
		p.counters[k] = r.Int()
	}
	if n := r.Count(1); n > 0 {
		p.resident = make([]int, n)
		for i := range p.resident {
			p.resident[i] = r.Int()
		}
	}
	p.wireFrames = r.U64()
	p.wireDrift = r.U64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("bench: corrupt dist partial: %w", err)
	}
	return p, nil
}

// DistOptions configures the coordinator side of a distributed run.
type DistOptions struct {
	// Nodes is the node process count.
	Nodes int
	// Listen is the coordinator's control listen address (host:port; port 0
	// picks a free one).
	Listen string
	// Premad is the node daemon binary to spawn ("" resolves "premad" next
	// to the running executable, then on PATH). Ignored with Attach.
	Premad string
	// Attach skips spawning: the node daemons were started externally and
	// will dial the coordinator themselves.
	Attach bool
	// JoinTimeout and DrainTimeout bound the session phases (zero = dist
	// defaults).
	JoinTimeout  time.Duration
	DrainTimeout time.Duration
}

// resolvePremad finds the node daemon binary: an explicit path wins, then a
// premad next to the running executable (the common "go build ./..." layout),
// then PATH.
func resolvePremad(explicit string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), "premad")
		if st, err := os.Stat(cand); err == nil && !st.IsDir() {
			return cand, nil
		}
	}
	path, err := exec.LookPath("premad")
	if err != nil {
		return "", fmt.Errorf("bench: premad binary not found (build cmd/premad and pass its path, or put it on PATH): %w", err)
	}
	return path, nil
}

// RunDist executes one distributed run end to end from the coordinator
// side: listen, spawn (or await) the node daemons, run the session, and
// merge the per-node partial results into one Result comparable with the
// in-process backends' (same counters, same residency, summed per-node).
func RunDist(spec DistSpec, opt DistOptions) (*Result, error) {
	c, err := dist.Listen(dist.CoordConfig{
		Listen:       opt.Listen,
		Nodes:        opt.Nodes,
		Procs:        spec.Procs,
		JoinTimeout:  opt.JoinTimeout,
		DrainTimeout: opt.DrainTimeout,
	})
	if err != nil {
		return nil, err
	}

	var cmds []*exec.Cmd
	killAll := func() {
		for _, cmd := range cmds {
			if cmd.Process != nil {
				cmd.Process.Kill()
			}
			cmd.Wait()
		}
	}
	if !opt.Attach {
		premad, err := resolvePremad(opt.Premad)
		if err != nil {
			c.Close()
			return nil, err
		}
		for i := 0; i < opt.Nodes; i++ {
			cmd := exec.Command(premad,
				"-coord", c.Addr(),
				"-listen", "127.0.0.1:0",
				"-node", strconv.Itoa(i))
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				killAll()
				c.Close()
				return nil, fmt.Errorf("bench: spawning premad node %d: %w", i, err)
			}
			cmds = append(cmds, cmd)
		}
	}

	sum, err := c.Run(spec.Encode())
	if err != nil {
		killAll()
		return nil, err
	}
	// The session is complete; the daemons exit on their own after the
	// goodbye. Reap spawned ones and surface any nonzero exits.
	for i, cmd := range cmds {
		if werr := cmd.Wait(); werr != nil {
			return nil, fmt.Errorf("bench: premad node %d: %w", i, werr)
		}
	}

	res := &Result{
		W:        spec.Workload(),
		Makespan: sum.Makespan,
		Accounts: sum.Accounts,
		Counters: map[string]int{},
	}
	for node, blob := range sum.Reports {
		p, err := decodeDistPartial(blob)
		if err != nil {
			return nil, fmt.Errorf("node %d report: %w", node, err)
		}
		if res.System == "" {
			res.System = p.system
		} else if res.System != p.system {
			return nil, fmt.Errorf("bench: node %d ran system %q, node 0 ran %q", node, p.system, res.System)
		}
		for k, v := range p.counters {
			res.Counters[k] += v
		}
		if p.resident != nil {
			if res.Resident == nil {
				res.Resident = make([]int, spec.Procs)
			}
			if len(p.resident) != spec.Procs {
				return nil, fmt.Errorf("bench: node %d reported %d residency slots, want %d", node, len(p.resident), spec.Procs)
			}
			for i, n := range p.resident {
				res.Resident[i] += n
			}
		}
		res.WireFrames += p.wireFrames
		res.WireDrift += p.wireDrift
	}
	return res, nil
}
