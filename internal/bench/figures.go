package bench

import (
	"fmt"
	"strings"

	"prema/internal/ilb"
	"prema/internal/sim"
	"prema/internal/substrate"
)

// FigureSpec identifies one of the paper's benchmark figures by its two
// swept parameters.
type FigureSpec struct {
	// ID is the paper figure number (3-6).
	ID int
	// Imbalance is the initial imbalance percentage (fraction of heavy
	// units).
	Imbalance float64
	// Ratio is heavy/light weight (2.0 = "double", 1.2 = "20% heavier").
	Ratio float64
}

// Figures returns the paper's four benchmark figures.
func Figures() []FigureSpec {
	return []FigureSpec{
		{ID: 3, Imbalance: 0.50, Ratio: 2.0},
		{ID: 4, Imbalance: 0.10, Ratio: 2.0},
		{ID: 5, Imbalance: 0.50, Ratio: 1.2},
		{ID: 6, Imbalance: 0.10, Ratio: 1.2},
	}
}

// FigureByID returns the spec for a paper figure number.
func FigureByID(id int) (FigureSpec, error) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, nil
		}
	}
	return FigureSpec{}, fmt.Errorf("bench: no figure %d (have 3-6)", id)
}

// PaperWorkload builds the workload for a figure spec at a given machine
// scale. Full paper scale is procs=128, units=16384 (128 units per
// processor, heavy ≈ 500 Mflops ≈ 10 s at the platform's sustained rate).
func PaperWorkload(spec FigureSpec, procs, unitsPerProc int) Workload {
	light := 5 * sim.Second
	return Workload{
		Procs:     procs,
		Units:     procs * unitsPerProc,
		HeavyFrac: spec.Imbalance,
		Heavy:     sim.Scale(light, spec.Ratio),
		Light:     light,
		Hints:     HintMean,
		UnitBytes: 4096,
		Seed:      1_000*int64(spec.ID) + 7,
	}
}

// SystemNames lists the six per-figure configurations, in the paper's
// subfigure order (a)-(f).
var SystemNames = []string{
	"none", "prema-explicit", "prema-implicit", "parmetis", "charm", "charm-sync4",
}

// FigureRun holds the six results of one figure.
type FigureRun struct {
	Spec    FigureSpec
	W       Workload
	Results []*Result // ordered as SystemNames
}

// RunSystem executes one named system configuration on w.
func RunSystem(name string, w Workload) (*Result, error) {
	switch name {
	case "none":
		return RunPrema(w, DefaultPremaConfig(ilb.Implicit, false))
	case "prema-explicit":
		return RunPrema(w, DefaultPremaConfig(ilb.Explicit, true))
	case "prema-implicit":
		return RunPrema(w, DefaultPremaConfig(ilb.Implicit, true))
	case "parmetis":
		return RunParmetis(w, DefaultParmetisConfig())
	case "charm":
		return RunCharm(w, DefaultCharmConfig(0))
	case "charm-sync4":
		return RunCharm(w, DefaultCharmConfig(4))
	default:
		return nil, fmt.Errorf("bench: unknown system %q", name)
	}
}

// PremaConfigFor returns the driver configuration behind a PREMA system
// name ("none", "prema-explicit", "prema-implicit"). Chaos harnesses use it
// to customize a named configuration (reliable delivery, fault tolerance
// tuning) before calling RunPremaOn. The third-party baseline models
// (parmetis, charm*) have no PremaConfig and are rejected.
func PremaConfigFor(name string) (PremaConfig, error) {
	switch name {
	case "none":
		return DefaultPremaConfig(ilb.Implicit, false), nil
	case "prema-explicit":
		return DefaultPremaConfig(ilb.Explicit, true), nil
	case "prema-implicit":
		return DefaultPremaConfig(ilb.Implicit, true), nil
	case "parmetis", "charm", "charm-sync4":
		return PremaConfig{}, fmt.Errorf("bench: system %q is simulator-only", name)
	default:
		return PremaConfig{}, fmt.Errorf("bench: unknown system %q", name)
	}
}

// RunSystemOn executes one named PREMA system configuration on an arbitrary
// execution substrate. The third-party baseline models (parmetis, charm*)
// are wired to the simulator's cost model and are rejected here.
func RunSystemOn(name string, m substrate.Machine, w Workload) (*Result, error) {
	cfg, err := PremaConfigFor(name)
	if err != nil {
		return nil, err
	}
	return RunPremaOn(m, w, cfg)
}

// RunFigure runs all six configurations of one figure.
func RunFigure(spec FigureSpec, procs, unitsPerProc int) (*FigureRun, error) {
	w := PaperWorkload(spec, procs, unitsPerProc)
	fr := &FigureRun{Spec: spec, W: w}
	for _, name := range SystemNames {
		r, err := RunSystem(name, w)
		if err != nil {
			return nil, fmt.Errorf("figure %d: %w", spec.ID, err)
		}
		fr.Results = append(fr.Results, r)
	}
	return fr, nil
}

// Get returns the named result of a figure run.
func (fr *FigureRun) Get(name string) *Result {
	for i, n := range SystemNames {
		if n == name {
			return fr.Results[i]
		}
	}
	return nil
}

// Report renders the whole figure: one summary line per system plus the
// paper's derived claims.
func (fr *FigureRun) Report(breakdownStride int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Figure %d: imbalance %.0f%%, heavy = %.1fx light (procs=%d, units=%d, ideal=%.0fs) ===\n",
		fr.Spec.ID, fr.Spec.Imbalance*100, fr.Spec.Ratio, fr.W.Procs, fr.W.Units, fr.W.IdealMakespan().Seconds())
	for _, r := range fr.Results {
		b.WriteString("  " + r.Summary() + "\n")
	}
	none := fr.Get("none")
	impl := fr.Get("prema-implicit")
	pm := fr.Get("parmetis")
	if none != nil && impl != nil && pm != nil {
		fmt.Fprintf(&b, "  prema-implicit vs none:     %+.1f%%\n", 100*(impl.Makespan.Seconds()-none.Makespan.Seconds())/none.Makespan.Seconds())
		fmt.Fprintf(&b, "  prema-implicit vs parmetis: %+.1f%%\n", 100*(impl.Makespan.Seconds()-pm.Makespan.Seconds())/pm.Makespan.Seconds())
		fmt.Fprintf(&b, "  parmetis sync+partition:    %.2f%% of useful compute (%d rounds, %d declined)\n",
			pm.SyncPct(), pm.Counters["lb_rounds"], pm.Counters["rounds_declined"])
		fmt.Fprintf(&b, "  prema-implicit overhead:    %.4f%% of useful compute\n", impl.OverheadPct())
	}
	if breakdownStride > 0 {
		b.WriteString("\nPer-processor breakdowns (paper's stacked bars):\n")
		for _, r := range fr.Results {
			b.WriteString(r.Breakdown(breakdownStride))
			b.WriteByte('\n')
		}
	}
	return b.String()
}
