package bench

import (
	"testing"
)

// TestSweepMatchesSerial: the parallel sweep runner must produce exactly the
// results of serial RunFigure calls — same ordering, same summaries, same
// per-processor ledgers — for any worker count. This is the repository's
// guarantee that -jobs only changes wall-clock time, never output.
func TestSweepMatchesSerial(t *testing.T) {
	specs := Figures()
	const procs, upp = 8, 8

	var serial []*FigureRun
	for _, spec := range specs {
		fr, err := RunFigure(spec, procs, upp)
		if err != nil {
			t.Fatal(err)
		}
		serial = append(serial, fr)
	}

	// jobs=8, shards=2, a load-aware partition, and the wire loopback
	// together exercise the sweep × shard parallelism product, the
	// placement strategy, and the serialization seam: none of the knobs may
	// change a single output byte.
	parallel, err := RunFigures(specs, procs, upp, 8, 2, PartitionLoaded, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(serial) {
		t.Fatalf("figure runs: %d vs %d", len(parallel), len(serial))
	}
	for fi := range serial {
		s, p := serial[fi], parallel[fi]
		if s.Spec != p.Spec || s.W != p.W {
			t.Fatalf("figure %d: spec/workload differ", s.Spec.ID)
		}
		if len(p.Results) != len(SystemNames) {
			t.Fatalf("figure %d: %d results", s.Spec.ID, len(p.Results))
		}
		for si := range s.Results {
			a, b := s.Results[si], p.Results[si]
			if a.System != b.System {
				t.Fatalf("figure %d result %d: ordering differs: %s vs %s", s.Spec.ID, si, a.System, b.System)
			}
			if a.Summary() != b.Summary() {
				t.Fatalf("figure %d %s: summaries differ:\n%s\n%s", s.Spec.ID, a.System, a.Summary(), b.Summary())
			}
			if a.Makespan != b.Makespan {
				t.Fatalf("figure %d %s: makespan %v vs %v", s.Spec.ID, a.System, a.Makespan, b.Makespan)
			}
			for pi := range a.Accounts {
				if a.Accounts[pi] != b.Accounts[pi] {
					t.Fatalf("figure %d %s proc %d: ledgers differ", s.Spec.ID, a.System, pi)
				}
			}
			for k, v := range a.Counters {
				if b.Counters[k] != v {
					t.Fatalf("figure %d %s: counter %s: %d vs %d", s.Spec.ID, a.System, k, v, b.Counters[k])
				}
			}
		}
	}
}

// TestRunSystemsOrdering: multi-system mode preserves input order and
// reports unknown systems fail-fast.
func TestRunSystemsOrdering(t *testing.T) {
	w := PaperWorkload(FigureSpec{ID: 3, Imbalance: 0.5, Ratio: 2.0}, 4, 4)
	names := []string{"charm", "none", "prema-implicit"}
	rs, err := RunSystems(names, w, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.System != names[i] {
			t.Fatalf("result %d = %s, want %s", i, r.System, names[i])
		}
	}
	if _, err := RunSystems([]string{"none", "bogus"}, w, 4); err == nil {
		t.Fatal("expected error for unknown system")
	}
}

// TestMeshCostsJobsIdentical: the cost matrix is identical for any worker
// count, and the parallel mesh-system runner matches the serial driver.
func TestMeshCostsJobsIdentical(t *testing.T) {
	cfg := quickMeshConfig()
	a := BuildMeshCosts(cfg)
	b := BuildMeshCostsJobs(cfg, 8)
	if len(a.Tets) != len(b.Tets) {
		t.Fatalf("rows: %d vs %d", len(a.Tets), len(b.Tets))
	}
	for it := range a.Tets {
		for s := range a.Tets[it] {
			if a.Tets[it][s] != b.Tets[it][s] {
				t.Fatalf("cost[%d][%d]: %v vs %v", it, s, a.Tets[it][s], b.Tets[it][s])
			}
		}
	}
	serial, err := RunMeshSystem("prema-implicit", cfg, a)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunMeshSystems(MeshSystems, cfg, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(MeshSystems) {
		t.Fatalf("results = %d", len(par))
	}
	if par[1].System != "prema-implicit" || par[1].Makespan != serial.Makespan {
		t.Fatalf("parallel mesh run diverged: %v vs %v", par[1].Makespan, serial.Makespan)
	}
	if _, err := RunMeshSystems([]string{"nope"}, cfg, a, 1); err == nil {
		t.Fatal("expected error for unknown mesh system")
	}
}
