package bench

import (
	"fmt"
	"math/rand"
	"testing"

	"prema/internal/dmcs"
	"prema/internal/faulty"
)

// fingerprint reduces a run to the strings the CLIs print: if these match,
// the visible output matches byte for byte.
func fingerprint(r *Result) string {
	return r.Summary() + "\n" + r.Breakdown(1) + "\n" + fmt.Sprint(r.Counters)
}

// requireWireIdentical runs one workload twice — loopback off, then on —
// through run, and demands byte-identical output, observed frames, and a
// clean Msg.Size audit. This is the tentpole's contract: serialization is
// free in virtual time and every modeled size is honest.
func requireWireIdentical(t *testing.T, label string, w Workload, run func(Workload) (*Result, error)) {
	t.Helper()
	w.Wire = false
	plain, err := run(w)
	if err != nil {
		t.Fatalf("%s plain: %v", label, err)
	}
	w.Wire = true
	wired, err := run(w)
	if err != nil {
		t.Fatalf("%s wired: %v", label, err)
	}
	if fingerprint(plain) != fingerprint(wired) {
		t.Fatalf("%s: wire loopback changed the output:\nplain:\n%s\nwired:\n%s",
			label, fingerprint(plain), fingerprint(wired))
	}
	for i := range plain.Accounts {
		if plain.Accounts[i] != wired.Accounts[i] {
			t.Fatalf("%s proc %d: ledgers differ under wire", label, i)
		}
	}
	if wired.WireFrames == 0 {
		t.Fatalf("%s: wire-wrapped run encoded no frames", label)
	}
	if wired.WireDrift != 0 {
		t.Fatalf("%s: %d of %d frames exceeded their modeled Msg.Size",
			label, wired.WireDrift, wired.WireFrames)
	}
}

// TestWireEquivalenceSystems: every machine-based system configuration —
// the paper's PREMA stacks and the policy suite — produces identical output
// with the serialization loopback on, across two figure scenarios.
func TestWireEquivalenceSystems(t *testing.T) {
	specs := []FigureSpec{Figures()[0], Figures()[3]}
	for _, spec := range specs {
		for _, name := range []string{"none", "prema-explicit", "prema-implicit"} {
			w := PaperWorkload(spec, 8, 8)
			requireWireIdentical(t, fmt.Sprintf("fig%d/%s", spec.ID, name), w,
				func(w Workload) (*Result, error) { return RunSystem(name, w) })
		}
		for _, pol := range []string{"diffusion", "multilist", "worksteal"} {
			w := PaperWorkload(spec, 8, 8)
			requireWireIdentical(t, fmt.Sprintf("fig%d/policy-%s", spec.ID, pol), w,
				func(w Workload) (*Result, error) { return RunPremaPolicy(w, pol) })
		}
	}
}

// TestWireEquivalenceSharded: the loopback composes with the sharded
// engine — frames decode on the sending shard, windows stay byte-identical.
func TestWireEquivalenceSharded(t *testing.T) {
	w := PaperWorkload(Figures()[1], 16, 8)
	w.Shards = 4
	w.Partition = PartitionLoaded
	requireWireIdentical(t, "sharded/prema-implicit", w,
		func(w Workload) (*Result, error) { return RunSystem("prema-implicit", w) })
}

// TestWireEquivalenceChaos is the randomized property: across seeded-random
// fault plans (drop, duplication, delay, reordering) and fault seeds, a
// wire-wrapped reliable run matches its plain twin exactly. The loopback
// sits beneath the injector, so dropped and duplicated deliveries operate
// on decoded copies — the composition the distributed backend will rely on.
func TestWireEquivalenceChaos(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	specs := Figures()
	for trial := 0; trial < 4; trial++ {
		plan, err := faulty.ParsePlan(fmt.Sprintf("drop=%.2f,dup=%.2f,delay=%.2f:200us,reorder=%.2f",
			0.05+0.2*rng.Float64(), 0.2*rng.Float64(), 0.2*rng.Float64(), 0.2*rng.Float64()))
		if err != nil {
			t.Fatal(err)
		}
		cs := ChaosSpec{
			System:    "prema-implicit",
			Plan:      plan,
			FaultSeed: rng.Int63(),
			Backend:   "sim",
			Rel:       dmcs.DefaultRelConfig(),
		}
		w := PaperWorkload(specs[trial%len(specs)], 8, 8)
		label := fmt.Sprintf("chaos trial %d", trial)

		w.Wire = false
		plain, _, err := RunChaos(w, cs)
		if err != nil {
			t.Fatalf("%s plain: %v", label, err)
		}
		w.Wire = true
		wired, _, err := RunChaos(w, cs)
		if err != nil {
			t.Fatalf("%s wired: %v", label, err)
		}
		if fingerprint(plain) != fingerprint(wired) {
			t.Fatalf("%s: wire loopback changed the faulted run:\nplain:\n%s\nwired:\n%s",
				label, fingerprint(plain), fingerprint(wired))
		}
		// Faulted runs wrap the injector outside the loopback, and the
		// injector deliberately hides inner telemetry (a faulted machine's
		// engine stats are not comparable), so frames are not observable
		// here — identity of the full report is the assertion.
	}
}
