package bench

import "testing"

// TestPolicySuiteBalances: every policy in the suite must complete all work
// and beat the no-balancing baseline on an imbalanced workload.
func TestPolicySuiteBalances(t *testing.T) {
	w := PaperWorkload(FigureSpec{ID: 3, Imbalance: 0.5, Ratio: 2.0}, 16, 16)
	none, err := RunSystem("none", w)
	if err != nil {
		t.Fatal(err)
	}
	want := w.TotalWork().Seconds()
	for _, name := range PolicyNames {
		name := name
		t.Run(name, func(t *testing.T) {
			r, err := RunPremaPolicy(w, name)
			if err != nil {
				t.Fatal(err)
			}
			got := r.TotalCompute()
			if got < want*0.999 || got > want*1.001 {
				t.Fatalf("compute %.1f want %.1f", got, want)
			}
			if r.Makespan >= none.Makespan {
				t.Fatalf("%s (%v) did not beat none (%v)", name, r.Makespan, none.Makespan)
			}
			t.Logf("%s: makespan %v (none %v)", name, r.Makespan, none.Makespan)
		})
	}
}

func TestPolicyUnknown(t *testing.T) {
	w := PaperWorkload(FigureSpec{ID: 3, Imbalance: 0.5, Ratio: 2.0}, 4, 4)
	if _, err := RunPremaPolicy(w, "bogus"); err == nil {
		t.Fatal("unknown policy must error")
	}
}
