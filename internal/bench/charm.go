package bench

import (
	"fmt"
	"math/rand"

	"prema/internal/charm"
	"prema/internal/dmcs"
	"prema/internal/sim"
)

// CharmConfig configures the Charm++-style benchmark driver.
type CharmConfig struct {
	// SyncPoints is the number of load balancing iterations I. 0 disables
	// AtSync entirely (figures (e)): the chare array holds one chare per
	// work unit and the runtime's initial placement is the only placement.
	// I>0 (figures (f), I=4 in the paper) creates an N/I-element array whose
	// chares each execute I work units with AtSync+LB between iterations.
	SyncPoints int
	// Strategy is the central LB strategy (default GreedyLB).
	Strategy charm.Strategy
	// Shuffle models the paper's adaptivity premise for measurement-based
	// balancers: the computationally heavy region is a contiguous chare
	// block whose position is re-drawn each iteration (a localized workload
	// "spike" moving through the domain), so the LB database's measured past
	// mispredicts the future. When false, weights are persistent by global
	// unit index and Charm's persistence assumption holds (ablation).
	Shuffle bool
}

// DefaultCharmConfig returns the configuration for the paper figures.
// RefineLB is the default strategy: it honors the persistence principle and
// minimizes chare migration (the natural choice for heavyweight mesh
// subdomains) — and under the moving-spike adaptive regime its measured-past
// placement cannot anticipate the future, reproducing the paper's finding
// that AtSync balancing buys little for highly adaptive applications.
func DefaultCharmConfig(syncPoints int) CharmConfig {
	return CharmConfig{SyncPoints: syncPoints, Strategy: charm.RefineLB{}, Shuffle: true}
}

// charmWeight returns the true weight of chare c at iteration it for the
// given config, preserving the workload's total work and heavy fraction.
func charmWeight(w Workload, cfg CharmConfig, chares int, offsets []int, c, it int) sim.Time {
	if cfg.SyncPoints == 0 || !cfg.Shuffle {
		// Persistent weights: chare c stands for units c*I..c*I+I-1.
		iters := 1
		if cfg.SyncPoints > 0 {
			iters = cfg.SyncPoints
		}
		return w.Actual(c*iters + it)
	}
	// Adaptive spike: a contiguous block of HeavyFrac*chares chares is heavy
	// each iteration, at a per-iteration offset.
	heavy := int(w.HeavyFrac * float64(chares))
	pos := ((c-offsets[it])%chares + chares) % chares
	if pos < heavy {
		return w.Heavy
	}
	return w.Light
}

// RunCharm executes the synthetic benchmark on the Charm-style runtime.
func RunCharm(w Workload, cfg CharmConfig) (*Result, error) {
	name := "charm"
	iters := 1
	if cfg.SyncPoints > 0 {
		iters = cfg.SyncPoints
		name = fmt.Sprintf("charm-sync%d", cfg.SyncPoints)
	}
	if cfg.Strategy == nil {
		cfg.Strategy = charm.GreedyLB{}
	}
	chares := w.Units / iters
	// Per-iteration spike offsets, fixed across processors (deterministic).
	offRng := rand.New(rand.NewSource(w.Seed + 77))
	offsets := make([]int, iters)
	for i := range offsets {
		if i == 0 {
			offsets[i] = 0 // iteration 0 matches the block-imbalanced start
		} else {
			offsets[i] = offRng.Intn(chares)
		}
	}

	e := w.engine()
	runtimes := make([]*charm.Runtime, w.Procs)
	for p := 0; p < w.Procs; p++ {
		e.Spawn(fmt.Sprintf("p%03d", p), func(proc *sim.Proc) {
			var strat charm.Strategy
			if cfg.SyncPoints > 0 {
				strat = cfg.Strategy
			}
			rt := charm.NewRuntime(proc, charm.DefaultOptions(strat))
			runtimes[proc.ID()] = rt

			type chareState struct{ iter int }
			done := 0
			var hDone dmcs.HandlerID
			hDone = rt.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
				done++
				if done == chares {
					rt.StopAll()
				}
			})
			var eWork charm.EntryID
			eWork = rt.RegisterEntry(func(rt *charm.Runtime, ch *charm.Chare, src int, data any) {
				st := ch.Data.(*chareState)
				rt.Compute(charmWeight(w, cfg, chares, offsets, ch.Index, st.iter))
				st.iter++
				switch {
				case st.iter >= iters:
					rt.Comm().Send(0, hDone, nil, 8)
				case cfg.SyncPoints > 0:
					rt.AtSync(ch, eWork)
				default:
					rt.Invoke(ch.Index, eWork, nil, 0)
				}
			})
			rt.CreateArray(chares, func(i int) (any, int) { return &chareState{}, w.UnitBytes })
			for _, i := range rt.Local() {
				rt.Invoke(i, eWork, nil, 0)
			}
			rt.Run()
		})
	}
	if err := e.Run(); err != nil {
		return nil, fmt.Errorf("bench %s: %w", name, err)
	}
	res := collect(name, w, sim.Machine{Engine: e})
	var lbSteps, moved int
	for _, rt := range runtimes {
		moved += rt.Stats.CharesMoved
	}
	lbSteps = runtimes[0].Stats.LBSteps
	res.Counters["lb_steps"] = lbSteps
	res.Counters["chares_migrated"] = moved
	return res, nil
}
