package bench

import (
	"fmt"
	"io"
	"strings"

	"prema/internal/recov"
	"prema/internal/stats"
	"prema/internal/substrate"
)

// Result is the outcome of one benchmark run: the quantities the paper's
// figures plot (per-processor time breakdowns) and its text reports
// (makespan, load-quality standard deviation, overhead percentages).
type Result struct {
	// System identifies the load balancing configuration
	// ("none", "prema-explicit", "prema-implicit", "parmetis",
	// "charm", "charm-sync4", ...).
	System string
	// W is the workload that was run.
	W Workload
	// Makespan is the overall runtime (max processor finish time).
	Makespan substrate.Time
	// Accounts holds each processor's final time ledger.
	Accounts []substrate.Account
	// Counters carries system-specific counters (steals, migrations,
	// repartition rounds, ...) for reporting.
	Counters map[string]int
	// Resident is the number of mobile objects resident on each processor
	// at the end of the run (PREMA drivers only; nil for baseline models).
	// The chaos harness uses it to check object conservation — every
	// registered object lives on exactly one processor, dup or no dup.
	Resident []int
	// Recov is the machine-wide crash-recovery ledger (nil unless the run
	// had PremaConfig.Recover set): checkpoints taken, charged overhead,
	// crash verdicts, objects re-homed, envelopes replayed.
	Recov *recov.Stats

	// Engine telemetry (simulator backend only; zero/nil on the real
	// backend — collect unwraps the trace/wire decorators to reach it, but
	// faulty hides it). These describe the host-side execution, not the
	// simulated system, so they appear in perfbench's ledger but never in
	// Summary/Breakdown/CSV — the outputs the golden hashes and
	// byte-identity tests cover.

	// Events is the total number of simulator events the run fired.
	Events uint64
	// ShardEvents is the per-shard event count (len = shard count).
	ShardEvents []uint64
	// BarrierRounds is the number of window coordination rounds the sharded
	// engine executed (0 for serial runs).
	BarrierRounds uint64

	// Wire telemetry (wire-wrapped runs only; zero otherwise). Like the
	// engine telemetry it is host-side observability, excluded from
	// Summary/Breakdown/CSV.

	// WireFrames is the number of messages the wire codec round-tripped.
	WireFrames uint64
	// WireDrift counts sends whose encoded payload exceeded the modeled
	// Msg.Size (the wire_size_drift_total metrics counter); zero means the
	// cost model's byte accounting is honest.
	WireDrift uint64
}

// ImbalanceRatio returns max/mean of the per-shard event counts — 1.0 is a
// perfectly balanced partition — or 0 when shard telemetry is unavailable.
func (r *Result) ImbalanceRatio() float64 {
	var total, max uint64
	for _, c := range r.ShardEvents {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) * float64(len(r.ShardEvents)) / float64(total)
}

// Series extracts one per-processor category series in seconds — one
// stacked-bar component of the paper's figures.
func (r *Result) Series(cat substrate.Category) []float64 {
	out := make([]float64, len(r.Accounts))
	for i := range r.Accounts {
		out[i] = r.Accounts[i][cat].Seconds()
	}
	return out
}

// ComputeStdDev is the paper's load-quality metric: the standard deviation
// of per-processor computation times, in seconds.
func (r *Result) ComputeStdDev() float64 {
	return stats.StdDev(r.Series(substrate.CatCompute))
}

// TotalCompute returns the machine-wide useful computation in seconds.
func (r *Result) TotalCompute() float64 {
	t := 0.0
	for i := range r.Accounts {
		t += r.Accounts[i][substrate.CatCompute].Seconds()
	}
	return t
}

// OverheadPct returns total runtime-attributable overhead (everything that
// is neither computation nor idle) as a percentage of useful computation —
// the paper's "overhead attributable to the runtime system".
func (r *Result) OverheadPct() float64 {
	var o float64
	for i := range r.Accounts {
		o += r.Accounts[i].Overhead().Seconds()
	}
	c := r.TotalCompute()
	if c == 0 {
		return 0
	}
	return 100 * o / c
}

// SyncPct returns synchronization plus partition-calculation time as a
// percentage of useful computation — the cost the paper charges against
// stop-and-repartition schemes.
func (r *Result) SyncPct() float64 {
	var s float64
	for i := range r.Accounts {
		s += (r.Accounts[i][substrate.CatSync] + r.Accounts[i][substrate.CatPartition]).Seconds()
	}
	c := r.TotalCompute()
	if c == 0 {
		return 0
	}
	return 100 * s / c
}

// OverheadOfRuntimePct returns total runtime-attributable overhead as a
// percentage of total machine time (makespan x processors) — the measure the
// paper's mesh-experiment "<1% of the total runtime" claim uses.
func (r *Result) OverheadOfRuntimePct() float64 {
	var o float64
	for i := range r.Accounts {
		o += r.Accounts[i].Overhead().Seconds()
	}
	total := r.Makespan.Seconds() * float64(len(r.Accounts))
	if total == 0 {
		return 0
	}
	return 100 * o / total
}

// IdlePct returns idle time as a percentage of the makespan, averaged over
// processors.
func (r *Result) IdlePct() float64 {
	var idle float64
	for i := range r.Accounts {
		idle += r.Accounts[i][substrate.CatIdle].Seconds()
	}
	total := r.Makespan.Seconds() * float64(len(r.Accounts))
	if total == 0 {
		return 0
	}
	return 100 * idle / total
}

// Summary renders a one-line summary.
func (r *Result) Summary() string {
	return fmt.Sprintf("%-16s makespan=%8.1fs  stddev(comp)=%7.2fs  overhead=%6.3f%%  sync=%6.3f%%  idle=%5.1f%%",
		r.System, r.Makespan.Seconds(), r.ComputeStdDev(), r.OverheadPct(), r.SyncPct(), r.IdlePct())
}

// WriteCSV emits the full per-processor breakdown as CSV (one row per
// processor, seconds per category) for external plotting of the paper's
// stacked-bar figures.
func (r *Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "proc,compute,idle,messaging,scheduling,callback,pollthread,partition,sync"); err != nil {
		return err
	}
	for i := range r.Accounts {
		a := &r.Accounts[i]
		_, err := fmt.Fprintf(w, "%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n", i,
			a[substrate.CatCompute].Seconds(), a[substrate.CatIdle].Seconds(),
			a[substrate.CatMessaging].Seconds(), a[substrate.CatScheduling].Seconds(),
			a[substrate.CatCallback].Seconds(), a[substrate.CatPollThread].Seconds(),
			a[substrate.CatPartition].Seconds(), a[substrate.CatSync].Seconds())
		if err != nil {
			return err
		}
	}
	return nil
}

// Breakdown renders the per-processor stacked-bar data of the paper's
// figures as a text table, sampling every stride-th processor.
func (r *Result) Breakdown(stride int) string {
	if stride < 1 {
		stride = 1
	}
	t := stats.NewTable("proc", "compute", "idle", "msg", "sched", "callback", "pollthr", "partition", "sync", "total")
	for i := 0; i < len(r.Accounts); i += stride {
		a := &r.Accounts[i]
		t.AddRow(i,
			a[substrate.CatCompute].Seconds(), a[substrate.CatIdle].Seconds(),
			a[substrate.CatMessaging].Seconds(), a[substrate.CatScheduling].Seconds(),
			a[substrate.CatCallback].Seconds(), a[substrate.CatPollThread].Seconds(),
			a[substrate.CatPartition].Seconds(), a[substrate.CatSync].Seconds(),
			a.Total().Seconds())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (procs=%d units=%d heavyFrac=%.2f heavy=%s light=%s hints=%s)\n",
		r.System, r.W.Procs, r.W.Units, r.W.HeavyFrac, r.W.Heavy, r.W.Light, r.W.Hints)
	b.WriteString(t.String())
	return b.String()
}
