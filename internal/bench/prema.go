package bench

import (
	"fmt"

	"prema/internal/core"
	"prema/internal/dmcs"
	"prema/internal/faulty"
	"prema/internal/ilb"
	"prema/internal/mol"
	"prema/internal/policy"
	"prema/internal/recov"
	"prema/internal/substrate"
)

// PremaConfig configures the PREMA benchmark driver.
type PremaConfig struct {
	// Mode selects explicit or implicit (preemptive) load balancing.
	Mode ilb.Mode
	// Balance false runs the "no load balancing" baseline (figures (a)).
	Balance bool
	// WaterMark is the hinted-seconds threshold for explicit-mode
	// balancing initiation.
	WaterMark float64
	// PollInterval is the implicit-mode polling thread period.
	PollInterval substrate.Time
	// PollEvery is how many units the application executes between posted
	// polls (see ilb.Config.PollEvery). The paper's benchmark executes
	// coarse, well-tuned work units; 8 is the calibrated default.
	PollEvery int
	// WS tunes the work stealing policy.
	WS policy.WSConfig
	// Rel switches DMCS into reliable-delivery mode (chaos experiments).
	// The zero value keeps the classic fire-and-forget transport and the
	// byte-identical paper-figure outputs.
	Rel dmcs.RelConfig
	// Recover enables the crash-recovery subsystem (internal/recov):
	// checkpointed objects, lease-based failure detection, directory repair,
	// and orphan re-homing, so faulty crash plans are survivable. Requires
	// Rel.Enabled. A recovery-enabled run without a crash is byte-identical
	// to one without recovery (checkpoint costs are charged, never timed).
	Recover bool
	// CheckpointInterval and LeaseTimeout override the recov defaults
	// (zero = default: 1s checkpoints, 500ms leases, both virtual time).
	CheckpointInterval substrate.Time
	LeaseTimeout       substrate.Time
}

// DefaultPremaConfig returns the configuration used for the paper figures.
func DefaultPremaConfig(mode ilb.Mode, balance bool) PremaConfig {
	ws := policy.DefaultWSConfig()
	// Coarse-grained objects: a single mobile object migrates per steal
	// (paper footnote 2).
	ws.MaxObjects = 1
	return PremaConfig{
		Mode:         mode,
		Balance:      balance,
		WaterMark:    12,
		PollInterval: 10 * substrate.Millisecond,
		PollEvery:    8,
		WS:           ws,
	}
}

// RunPrema executes the synthetic benchmark on the PREMA runtime over the
// deterministic simulator and returns the per-processor breakdowns.
func RunPrema(w Workload, cfg PremaConfig) (*Result, error) {
	return RunPremaOn(w.machine(), w, cfg)
}

// RunPremaOn executes the synthetic benchmark on any execution substrate —
// the application and runtime code is identical on the simulator and the
// real-concurrency machine; only the machine passed in differs.
func RunPremaOn(m substrate.Machine, w Workload, cfg PremaConfig) (*Result, error) {
	name := "none"
	if cfg.Balance {
		name = "prema-" + cfg.Mode.String()
	}
	var store *recov.Store
	if cfg.Recover {
		store = recov.NewStore(recov.Config{
			CheckpointInterval: cfg.CheckpointInterval,
			LeaseTimeout:       cfg.LeaseTimeout,
		})
	}
	policies := make([]*policy.WorkStealing, w.Procs)
	unitsRun := make([]int, w.Procs)
	resident := make([]int, w.Procs)
	rels := make([]dmcs.RelStats, w.Procs)
	mols := make([]mol.Stats, w.Procs)
	// body builds one processor incarnation. rejoin=true is the post-crash
	// re-spawn: the same runtime stack and handler registration order (SPMD
	// discipline), but no initial subdomains — the crashed incarnation's
	// objects were already re-homed to survivors — and a hello broadcast so
	// peers resume sequenced delivery to the fresh transport streams.
	body := func(rejoin bool) func(substrate.Endpoint) {
		return func(ep substrate.Endpoint) {
			lbCfg := ilb.DefaultConfig(cfg.Mode)
			lbCfg.WaterMark = cfg.WaterMark
			if cfg.PollInterval > 0 {
				lbCfg.PollInterval = cfg.PollInterval
			}
			if cfg.PollEvery > 0 {
				lbCfg.PollEvery = cfg.PollEvery
			}
			opts := core.Options{LB: lbCfg, Mol: mol.DefaultConfig(), Rel: cfg.Rel, Recovery: store}
			if cfg.Balance {
				ws := policy.NewWorkStealing(cfg.WS)
				policies[ep.ID()] = ws
				opts.Policy = ws
			}
			r := core.NewRuntime(ep, opts)

			done := 0
			var hDone dmcs.HandlerID
			hDone = r.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
				done++
				if done == w.Units {
					r.StopAll()
				}
			})
			hWork := r.RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
				u := obj.Data.(int)
				r.Compute(w.Actual(u))
				r.Comm().SendTagged(0, hDone, nil, 8, substrate.TagApp)
			})

			if rejoin {
				r.AnnounceRejoin()
			} else {
				// Step 2+3 of the benchmark: create and register this
				// processor's initial subdomains as mobile objects and send
				// each its computation message (setup is untimed on the
				// simulator: registration and local enqueue cost no virtual
				// time).
				for _, u := range w.UnitsOf(ep.ID()) {
					mp := r.Register(u, w.UnitBytes)
					r.Message(mp, hWork, nil, 8, w.Hint(u))
				}
			}
			r.Run()
			// Application-level outcome, per processor. Each body writes
			// only its own slot, so this is safe on the concurrent backend.
			unitsRun[ep.ID()] = r.Scheduler().Stats.UnitsRun
			resident[ep.ID()] = len(r.Mol().Local())
			rels[ep.ID()] = r.Comm().RelStats()
			mols[ep.ID()] = r.Mol().Stats
		}
	}
	for p := 0; p < w.Procs; p++ {
		m.Spawn(fmt.Sprintf("p%03d", p), body(false))
	}
	if store != nil {
		if fm := findFaulty(m); fm != nil {
			fm.OnRejoin(func(id int) func(substrate.Endpoint) { return body(true) })
		}
	}
	if err := m.Run(); err != nil {
		return nil, fmt.Errorf("bench %s: %w", name, err)
	}
	res := collect(name, w, m)
	res.Resident = resident
	var units int
	for _, n := range unitsRun {
		units += n
	}
	if store != nil {
		// Units executed by crashed incarnations before their verdicts: done
		// work whose processor slot was never written back.
		units += store.LostUnits()
	}
	res.Counters["units_run"] = units
	var dups int
	for _, s := range mols {
		dups += s.Duplicates + s.MigrationsDup
	}
	if dups > 0 {
		res.Counters["mol_duplicates"] = dups
	}
	if cfg.Rel.Enabled {
		var rs dmcs.RelStats
		for _, s := range rels {
			rs.DataSent += s.DataSent
			rs.Retransmits += s.Retransmits
			rs.Timeouts += s.Timeouts
			rs.AcksSent += s.AcksSent
			rs.AcksRecv += s.AcksRecv
			rs.DupDropped += s.DupDropped
			rs.Held += s.Held
		}
		res.Counters["rel_data_sent"] = rs.DataSent
		res.Counters["rel_retransmits"] = rs.Retransmits
		res.Counters["rel_timeouts"] = rs.Timeouts
		res.Counters["rel_acks"] = rs.AcksSent
		res.Counters["rel_dup_dropped"] = rs.DupDropped
		res.Counters["rel_held"] = rs.Held
	}
	if cfg.Balance {
		var req, grant, nack, moved int
		for _, ws := range policies {
			if ws == nil {
				continue // rank hosted on another node of a distributed run
			}
			req += ws.Stats.Requests
			grant += ws.Stats.GrantsServed
			nack += ws.Stats.NacksServed
			moved += ws.Stats.ObjectsSent
		}
		res.Counters["steal_requests"] = req
		res.Counters["steal_grants"] = grant
		res.Counters["steal_nacks"] = nack
		res.Counters["objects_migrated"] = moved
	}
	if store != nil {
		rs := store.Stats()
		res.Recov = &rs
		// Crash-path counters appear only when something actually went down,
		// so a recovery-enabled run without a crash reports byte-identically
		// to one without recovery.
		if downs := store.Downs(); downs > 0 {
			res.Counters["recov_downs"] = downs
			res.Counters["recov_lost_units"] = store.LostUnits()
			res.Counters["recov_objects_restored"] = rs.ObjectsRecovered
			res.Counters["recov_replayed"] = rs.EnvelopesReplayed
			res.Counters["recov_units_skipped"] = rs.UnitsSkipped
			if rs.Rejoins > 0 {
				res.Counters["recov_rejoins"] = rs.Rejoins
			}
			var deadDropped, deadSent int
			for _, s := range rels {
				deadDropped += s.DeadDropped
				deadSent += s.DeadSent
			}
			res.Counters["rel_dead_dropped"] = deadDropped
			res.Counters["rel_dead_sent"] = deadSent
			var recovered, held int
			for _, s := range mols {
				recovered += s.Recovered
				held += s.RestoreHeld
			}
			res.Counters["mol_recovered"] = recovered
			if held > 0 {
				res.Counters["mol_restore_held"] = held
			}
		}
	}
	return res, nil
}

// findFaulty walks a decorator chain (trace, ...) down to the fault
// injector, which is where crashed processors come back from (OnRejoin).
func findFaulty(m substrate.Machine) *faulty.Machine {
	for {
		if fm, ok := m.(*faulty.Machine); ok {
			return fm
		}
		u, ok := m.(interface{ Unwrap() substrate.Machine })
		if !ok {
			return nil
		}
		m = u.Unwrap()
	}
}

// engineStats is the simulator engine telemetry surface. sim.Machine
// satisfies it by embedding *sim.Engine; the real backend does not, and its
// runs simply carry no engine telemetry. collect unwraps decorators (trace,
// wire) to reach it — faulty has no Unwrap, so faulted runs stay bare.
type engineStats interface {
	EventsFired() uint64
	ShardEventsFired() []uint64
	BarrierRounds() uint64
}

// wireStats is the serialization loopback's audit surface (wire.Machine).
type wireStats interface {
	Frames() uint64
	SizeDrift() uint64
}

// unwrapTo walks m's decorator chain until a layer satisfies the probe.
func unwrapTo[T any](m substrate.Machine) (T, bool) {
	for {
		if v, ok := m.(T); ok {
			return v, true
		}
		u, ok := m.(interface{ Unwrap() substrate.Machine })
		if !ok {
			var zero T
			return zero, false
		}
		m = u.Unwrap()
	}
}

// collect snapshots per-processor accounts into a Result, plus engine and
// wire telemetry when the machine (or a decorated layer) exposes them.
func collect(name string, w Workload, m substrate.Machine) *Result {
	res := &Result{
		System:   name,
		W:        w,
		Makespan: m.Makespan(),
		Accounts: make([]substrate.Account, m.NumProcs()),
		Counters: make(map[string]int),
	}
	for i := 0; i < m.NumProcs(); i++ {
		res.Accounts[i] = *m.Account(i)
	}
	if es, ok := unwrapTo[engineStats](m); ok {
		res.Events = es.EventsFired()
		res.ShardEvents = es.ShardEventsFired()
		res.BarrierRounds = es.BarrierRounds()
	}
	if ws, ok := unwrapTo[wireStats](m); ok {
		res.WireFrames = ws.Frames()
		res.WireDrift = ws.SizeDrift()
	}
	return res
}
