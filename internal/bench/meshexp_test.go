package bench

import (
	"testing"
)

func quickMeshConfig() MeshExpConfig {
	cfg := DefaultMeshExpConfig()
	cfg.Procs = 8
	cfg.Grid = [3]int{4, 4, 2}
	cfg.Iterations = 6
	return cfg
}

func TestMeshCostsRespondToCrack(t *testing.T) {
	cfg := quickMeshConfig()
	mc := BuildMeshCosts(cfg)
	if len(mc.Tets) != cfg.Iterations || len(mc.Tets[0]) != cfg.NumSubdomains() {
		t.Fatalf("matrix shape %dx%d", len(mc.Tets), len(mc.Tets[0]))
	}
	// Early iterations: the crack sits near the origin corner, so the first
	// subdomain must be far heavier than the last.
	first, last := mc.Tets[0][0], mc.Tets[0][cfg.NumSubdomains()-1]
	if first < 3*last {
		t.Fatalf("crack locality missing: first=%.0f last=%.0f", first, last)
	}
	// The spike moves: the subdomain nearest the far corner must get heavier
	// as the crack approaches it.
	lastSub := cfg.NumSubdomains() - 1
	if mc.Tets[cfg.Iterations-1][lastSub] < 2*mc.Tets[0][lastSub] {
		t.Fatalf("spike did not move: %v -> %v", mc.Tets[0][lastSub], mc.Tets[cfg.Iterations-1][lastSub])
	}
}

func TestMeshCostsWithRealMesher(t *testing.T) {
	cfg := quickMeshConfig()
	cfg.Grid = [3]int{2, 2, 1}
	cfg.Iterations = 2
	cfg.UseMesher = true
	mc := BuildMeshCosts(cfg)
	for it := range mc.Tets {
		for sub, tets := range mc.Tets[it] {
			if tets <= 0 {
				t.Fatalf("mesher produced no tets for it=%d sub=%d", it, sub)
			}
		}
	}
}

func TestMeshSystemsConserveWork(t *testing.T) {
	cfg := quickMeshConfig()
	mc := BuildMeshCosts(cfg)
	want := mc.TotalWork(cfg).Seconds()
	for _, sys := range MeshSystems {
		r, err := RunMeshSystem(sys, cfg, mc)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		got := r.TotalCompute()
		if got < want*0.999 || got > want*1.001 {
			t.Fatalf("%s: compute %.1f want %.1f", sys, got, want)
		}
	}
}

// TestMeshExperimentShape asserts the paper's §5 mesh-application ordering
// at full default scale: PREMA beats stop-and-repartition beats no load
// balancing, and PREMA's overhead stays under 1% of total runtime.
func TestMeshExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale mesh experiment")
	}
	cfg := DefaultMeshExpConfig()
	mc := BuildMeshCosts(cfg)
	get := func(sys string) *Result {
		r, err := RunMeshSystem(sys, cfg, mc)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-15s makespan=%8.1fs ovh/runtime=%.3f%% sync/comp=%.1f%%",
			sys, r.Makespan.Seconds(), r.OverheadOfRuntimePct(), r.SyncPct())
		return r
	}
	none := get("none")
	prema := get("prema-implicit")
	repart := get("repartition")
	if prema.Makespan >= repart.Makespan {
		t.Fatalf("prema %v should beat repartition %v", prema.Makespan, repart.Makespan)
	}
	if repart.Makespan >= none.Makespan {
		t.Fatalf("repartition %v should beat none %v", repart.Makespan, none.Makespan)
	}
	// Paper: 42% improvement over no balancing, 15% over repartitioning.
	if imp := 1 - prema.Makespan.Seconds()/none.Makespan.Seconds(); imp < 0.25 {
		t.Fatalf("prema improvement over none only %.0f%%", imp*100)
	}
	if prema.OverheadOfRuntimePct() > 1.0 {
		t.Fatalf("prema overhead %.2f%% of runtime (paper: <1%%)", prema.OverheadOfRuntimePct())
	}
}
