package dmcs

import (
	"testing"

	"prema/internal/sim"
)

// harness spins up n processors, calls setup on each to build per-proc state
// and register handlers, then runs each body.
func harness(t *testing.T, n int, body func(c *Comm)) {
	t.Helper()
	e := sim.NewEngine(sim.Config{Seed: 1})
	for i := 0; i < n; i++ {
		e.Spawn("p", func(p *sim.Proc) {
			body(New(p))
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHandlerInvocation(t *testing.T) {
	var got []int
	harness(t, 2, func(c *Comm) {
		h := c.Register(func(c *Comm, src int, data any, size int) {
			got = append(got, data.(int), src, size)
		})
		switch c.Proc().ID() {
		case 0:
			c.Proc().WaitMsg(sim.CatIdle)
			c.Poll()
		case 1:
			c.Send(0, h, 99, 16)
		}
	})
	if len(got) != 3 || got[0] != 99 || got[1] != 1 || got[2] != 16 {
		t.Fatalf("got = %v", got)
	}
}

func TestPollDispatchesAllQueued(t *testing.T) {
	count := 0
	harness(t, 2, func(c *Comm) {
		h := c.Register(func(c *Comm, src int, data any, size int) { count++ })
		switch c.Proc().ID() {
		case 0:
			// Let all three arrive first.
			c.Proc().Advance(sim.Second, sim.CatCompute)
			if n := c.Poll(); n != 3 {
				t.Errorf("poll dispatched %d", n)
			}
		case 1:
			for i := 0; i < 3; i++ {
				c.Send(0, h, i, 0)
			}
		}
	})
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
}

func TestPollTagLeavesAppTraffic(t *testing.T) {
	var order []string
	harness(t, 2, func(c *Comm) {
		app := c.Register(func(c *Comm, src int, data any, size int) { order = append(order, "app") })
		sys := c.Register(func(c *Comm, src int, data any, size int) { order = append(order, "sys") })
		switch c.Proc().ID() {
		case 0:
			c.Proc().Advance(sim.Second, sim.CatCompute)
			if n := c.PollTag(sim.TagSystem); n != 1 {
				t.Errorf("system poll dispatched %d", n)
			}
			if len(order) != 1 || order[0] != "sys" {
				t.Errorf("system message should be dispatched first: %v", order)
			}
			c.Poll()
		case 1:
			c.Send(0, app, nil, 0)
			c.SendTagged(0, sys, nil, 0, sim.TagSystem)
			c.Send(0, app, nil, 0)
		}
	})
	if len(order) != 3 || order[1] != "app" || order[2] != "app" {
		t.Fatalf("order = %v", order)
	}
}

func TestHandlersMayReply(t *testing.T) {
	done := false
	harness(t, 2, func(c *Comm) {
		var ping, pong HandlerID
		ping = c.Register(func(c *Comm, src int, data any, size int) {
			c.SendTagged(src, pong, data.(int)+1, 0, sim.TagApp)
		})
		pong = c.Register(func(c *Comm, src int, data any, size int) {
			if data.(int) != 8 {
				t.Errorf("pong = %d", data.(int))
			}
			done = true
		})
		switch c.Proc().ID() {
		case 0:
			c.Send(1, ping, 7, 0)
			for !done {
				c.WaitPoll(sim.CatIdle)
			}
		case 1:
			for !done {
				if c.WaitPollFor(sim.Second, sim.CatIdle) > 0 {
					return
				}
			}
		}
	})
	if !done {
		t.Fatal("round trip incomplete")
	}
}

func TestPollOne(t *testing.T) {
	count := 0
	harness(t, 2, func(c *Comm) {
		h := c.Register(func(c *Comm, src int, data any, size int) { count++ })
		switch c.Proc().ID() {
		case 0:
			c.Proc().Advance(sim.Second, sim.CatCompute)
			if !c.PollOne() {
				t.Error("expected a message")
			}
			if count != 1 {
				t.Errorf("PollOne dispatched %d", count)
			}
			c.Poll()
		case 1:
			c.Send(0, h, nil, 0)
			c.Send(0, h, nil, 0)
		}
	})
	if count != 2 {
		t.Fatalf("count = %d", count)
	}
}

func TestDispatchChargesCallback(t *testing.T) {
	e := sim.NewEngine(sim.Config{Seed: 1})
	var cb sim.Time
	e.Spawn("recv", func(p *sim.Proc) {
		c := New(p)
		c.Register(func(c *Comm, src int, data any, size int) {})
		c.WaitPoll(sim.CatIdle)
		cb = p.Account()[sim.CatCallback]
	})
	e.Spawn("send", func(p *sim.Proc) {
		c := New(p)
		h := c.Register(func(c *Comm, src int, data any, size int) {})
		c.Send(0, h, nil, 0)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if cb != 2*sim.Microsecond {
		t.Fatalf("callback time = %v", cb)
	}
}
