// Package dmcs implements PREMA's Data Movement and Communication Substrate:
// a single-sided, Active-Messages-style communication layer (Barker et al.,
// "Data movement and control substrate for parallel adaptive applications",
// Concurrency P&E 2002; von Eicken et al., ISCA 1992).
//
// A message names a handler to run at the destination; handlers execute when
// the destination polls (there are no matching receives). Handlers are
// registered per processor, and every processor must register the same
// handlers in the same order so that handler IDs agree across the machine —
// exactly the SPMD registration discipline of the C library.
//
// The layer is written against substrate.Endpoint, so the same DMCS code
// runs on the deterministic simulator (internal/sim) and on the
// real-concurrency goroutine machine (internal/rtm).
package dmcs

import (
	"prema/internal/substrate"
	"prema/internal/trace"
)

// HandlerID names a registered active-message handler.
type HandlerID int

// Handler is an active-message handler. It runs on the destination
// processor's execution context (it may compute, send, and poll), with src
// the sending processor and data/size the payload.
type Handler func(c *Comm, src int, data any, size int)

// Comm is a processor-local communication endpoint.
type Comm struct {
	p        substrate.Endpoint
	handlers []Handler
	// DispatchCPU is charged (to substrate.CatCallback) around every handler
	// invocation, modeling the user-level dispatch cost of the AM layer.
	DispatchCPU substrate.Time
	// rel is non-nil in reliable-delivery mode (see reliable.go): sequenced
	// exactly-once delivery with acks and poll-driven retransmission,
	// built for lossy transports such as internal/faulty.
	rel *reliable
	// tr is the trace recorder behind p (nil when the run is untraced; the
	// nil recorder's methods are no-ops).
	tr *trace.Recorder
}

// New wraps a substrate endpoint in a DMCS endpoint.
func New(p substrate.Endpoint) *Comm {
	return &Comm{p: p, DispatchCPU: 2 * substrate.Microsecond, tr: trace.Of(p)}
}

// Proc returns the underlying substrate endpoint.
func (c *Comm) Proc() substrate.Endpoint { return c.p }

// Register installs h and returns its ID. Registration order must match on
// every processor.
func (c *Comm) Register(h Handler) HandlerID {
	c.handlers = append(c.handlers, h)
	return HandlerID(len(c.handlers) - 1)
}

// Send posts a single-sided active message: handler h runs at dst with the
// given payload once dst polls. Size models the payload's wire size. The
// send charges the sender's per-message CPU overhead.
func (c *Comm) Send(dst int, h HandlerID, data any, size int) {
	c.SendTagged(dst, h, data, size, substrate.TagApp)
}

// SendTagged is Send with an explicit traffic-class tag. Load balancer
// traffic uses substrate.TagSystem so it can be drained preemptively by
// PREMA's polling thread without touching application messages. In reliable
// mode the message is sequenced and buffered for retransmission until the
// destination acknowledges it.
func (c *Comm) SendTagged(dst int, h HandlerID, data any, size int, tag int) {
	if c.rel != nil {
		c.relSend(dst, h, data, size, tag)
		return
	}
	c.p.Send(&substrate.Msg{
		Dst:  dst,
		Kind: int(h),
		Tag:  tag,
		Data: data,
		Size: size,
	}, substrate.CatMessaging)
}

// dispatch runs the handler named by m.
func (c *Comm) dispatch(m *substrate.Msg) {
	if c.DispatchCPU > 0 {
		c.p.Advance(c.DispatchCPU, substrate.CatCallback)
	}
	c.handlers[m.Kind](c, m.Src, m.Data, m.Size)
}

// Poll receives and dispatches every queued message, returning the number
// dispatched. This is the explicit polling operation of the PREMA model:
// both application- and system-generated messages are processed. In
// reliable mode Poll also ticks the protocol: due acks are flushed and
// expired streams retransmitted.
func (c *Comm) Poll() int {
	if c.rel != nil {
		n := 0
		for {
			c.pump()
			m := c.popReady(0, true)
			if m == nil {
				break
			}
			c.dispatch(m)
			n++
		}
		c.tick()
		return n
	}
	n := 0
	for {
		m := c.p.TryRecv(substrate.CatMessaging)
		if m == nil {
			return n
		}
		c.dispatch(m)
		n++
	}
}

// PollOne dispatches at most one queued message.
func (c *Comm) PollOne() bool {
	if c.rel != nil {
		c.pump()
		m := c.popReady(0, true)
		if m == nil {
			c.tick()
			return false
		}
		c.dispatch(m)
		c.tick()
		return true
	}
	m := c.p.TryRecv(substrate.CatMessaging)
	if m == nil {
		return false
	}
	c.dispatch(m)
	return true
}

// PollTag dispatches every queued message carrying tag, leaving other
// traffic untouched. It returns the number dispatched. PollTag with
// substrate.TagSystem is the core of implicit (preemptive) load balancing:
// the polling thread drains balancer messages without delivering application
// messages, preserving PREMA's single-threaded application model (§4.2).
// In reliable mode, messages of other tags still move through the protocol
// (dedup, ordering, acks) but stay queued for a later matching poll, so
// preemptive balancing never leaks an application message — and the
// polling thread doubles as the retransmission timer.
func (c *Comm) PollTag(tag int) int {
	if c.rel != nil {
		n := 0
		for {
			c.pump()
			m := c.popReady(tag, false)
			if m == nil {
				break
			}
			c.dispatch(m)
			n++
		}
		c.tick()
		return n
	}
	n := 0
	for {
		m := c.p.TryRecvTag(tag, substrate.CatMessaging)
		if m == nil {
			return n
		}
		c.dispatch(m)
		n++
	}
}

// WaitPoll blocks until at least one message is dispatched (attributing the
// wait to cat, normally substrate.CatIdle), then polls everything queued.
// In reliable mode an arrival that turns out to be a duplicate or an ack
// dispatches nothing, so the wait continues — bounded by the protocol's
// own retransmission deadlines.
func (c *Comm) WaitPoll(cat substrate.Category) int {
	if c.rel != nil {
		for {
			n := c.Poll()
			if n > 0 {
				return n
			}
			if dl := c.rel.nextDeadline(); dl != 0 {
				now := c.p.Now()
				if dl <= now {
					continue
				}
				c.p.WaitMsgFor(dl-now, cat)
			} else {
				c.p.WaitMsg(cat)
			}
		}
	}
	c.p.WaitMsg(cat)
	return c.Poll()
}

// WaitPollFor blocks until a message arrives or d elapses, then polls. It
// returns the number of messages dispatched.
//
// A zero or negative d never blocks: the call degenerates to a plain Poll
// of whatever is already queued. (Before this was made explicit, d <= 0 was
// backend-dependent — an immediate check on the simulator, a clamped
// one-microsecond wait on the real-time machine.) In reliable mode the wait
// also wakes for retransmission deadlines, so an idle processor blocked
// here — ilb's idle loop — keeps the protocol moving even when nothing
// arrives.
func (c *Comm) WaitPollFor(d substrate.Time, cat substrate.Category) int {
	if d <= 0 {
		return c.Poll()
	}
	if c.rel == nil {
		if !c.p.WaitMsgFor(d, cat) {
			return 0
		}
		return c.Poll()
	}
	deadline := c.p.Now() + d
	for {
		if n := c.Poll(); n > 0 {
			return n
		}
		now := c.p.Now()
		if now >= deadline {
			return 0
		}
		wait := deadline - now
		if dl := c.rel.nextDeadline(); dl != 0 && dl > now && dl-now < wait {
			wait = dl - now
		}
		c.p.WaitMsgFor(wait, cat)
	}
}
