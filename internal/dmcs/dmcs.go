// Package dmcs implements PREMA's Data Movement and Communication Substrate:
// a single-sided, Active-Messages-style communication layer (Barker et al.,
// "Data movement and control substrate for parallel adaptive applications",
// Concurrency P&E 2002; von Eicken et al., ISCA 1992).
//
// A message names a handler to run at the destination; handlers execute when
// the destination polls (there are no matching receives). Handlers are
// registered per processor, and every processor must register the same
// handlers in the same order so that handler IDs agree across the machine —
// exactly the SPMD registration discipline of the C library.
//
// The layer is written against substrate.Endpoint, so the same DMCS code
// runs on the deterministic simulator (internal/sim) and on the
// real-concurrency goroutine machine (internal/rtm).
package dmcs

import "prema/internal/substrate"

// HandlerID names a registered active-message handler.
type HandlerID int

// Handler is an active-message handler. It runs on the destination
// processor's execution context (it may compute, send, and poll), with src
// the sending processor and data/size the payload.
type Handler func(c *Comm, src int, data any, size int)

// Comm is a processor-local communication endpoint.
type Comm struct {
	p        substrate.Endpoint
	handlers []Handler
	// DispatchCPU is charged (to substrate.CatCallback) around every handler
	// invocation, modeling the user-level dispatch cost of the AM layer.
	DispatchCPU substrate.Time
}

// New wraps a substrate endpoint in a DMCS endpoint.
func New(p substrate.Endpoint) *Comm {
	return &Comm{p: p, DispatchCPU: 2 * substrate.Microsecond}
}

// Proc returns the underlying substrate endpoint.
func (c *Comm) Proc() substrate.Endpoint { return c.p }

// Register installs h and returns its ID. Registration order must match on
// every processor.
func (c *Comm) Register(h Handler) HandlerID {
	c.handlers = append(c.handlers, h)
	return HandlerID(len(c.handlers) - 1)
}

// Send posts a single-sided active message: handler h runs at dst with the
// given payload once dst polls. Size models the payload's wire size. The
// send charges the sender's per-message CPU overhead.
func (c *Comm) Send(dst int, h HandlerID, data any, size int) {
	c.SendTagged(dst, h, data, size, substrate.TagApp)
}

// SendTagged is Send with an explicit traffic-class tag. Load balancer
// traffic uses substrate.TagSystem so it can be drained preemptively by
// PREMA's polling thread without touching application messages.
func (c *Comm) SendTagged(dst int, h HandlerID, data any, size int, tag int) {
	c.p.Send(&substrate.Msg{
		Dst:  dst,
		Kind: int(h),
		Tag:  tag,
		Data: data,
		Size: size,
	}, substrate.CatMessaging)
}

// dispatch runs the handler named by m.
func (c *Comm) dispatch(m *substrate.Msg) {
	if c.DispatchCPU > 0 {
		c.p.Advance(c.DispatchCPU, substrate.CatCallback)
	}
	c.handlers[m.Kind](c, m.Src, m.Data, m.Size)
}

// Poll receives and dispatches every queued message, returning the number
// dispatched. This is the explicit polling operation of the PREMA model:
// both application- and system-generated messages are processed.
func (c *Comm) Poll() int {
	n := 0
	for {
		m := c.p.TryRecv(substrate.CatMessaging)
		if m == nil {
			return n
		}
		c.dispatch(m)
		n++
	}
}

// PollOne dispatches at most one queued message.
func (c *Comm) PollOne() bool {
	m := c.p.TryRecv(substrate.CatMessaging)
	if m == nil {
		return false
	}
	c.dispatch(m)
	return true
}

// PollTag dispatches every queued message carrying tag, leaving other
// traffic untouched. It returns the number dispatched. PollTag with
// substrate.TagSystem is the core of implicit (preemptive) load balancing:
// the polling thread drains balancer messages without delivering application
// messages, preserving PREMA's single-threaded application model (§4.2).
func (c *Comm) PollTag(tag int) int {
	n := 0
	for {
		m := c.p.TryRecvTag(tag, substrate.CatMessaging)
		if m == nil {
			return n
		}
		c.dispatch(m)
		n++
	}
}

// WaitPoll blocks until at least one message is queued (attributing the wait
// to cat, normally substrate.CatIdle), then polls everything queued.
func (c *Comm) WaitPoll(cat substrate.Category) int {
	c.p.WaitMsg(cat)
	return c.Poll()
}

// WaitPollFor blocks until a message arrives or d elapses, then polls.
// It returns the number of messages dispatched.
func (c *Comm) WaitPollFor(d substrate.Time, cat substrate.Category) int {
	if !c.p.WaitMsgFor(d, cat) {
		return 0
	}
	return c.Poll()
}
