package dmcs

import "prema/internal/wire"

// The reliable-delivery protocol's only internal payload is the cumulative
// ack; every other dmcs message carries an application payload, encoded by
// its own registered codec. Acks are modeled at 16 bytes and sent on every
// ack-worthy delivery, so the encoding is compact: the tag is a traffic
// class (i32 is generous), giving 2 + 4 + 8 = 14 bytes on the wire.
func init() {
	wire.Register(wire.KindDmcsAck, ackPayload{},
		func(w *wire.Writer, v any) {
			a := v.(ackPayload)
			w.I32(int32(a.Tag))
			w.U64(a.Cum)
		},
		func(r *wire.Reader) any {
			return ackPayload{Tag: int(r.I32()), Cum: r.U64()}
		})
}
