package dmcs

import (
	"testing"

	"prema/internal/rtm"
	"prema/internal/sim"
	"prema/internal/substrate"
)

// backends runs f once per substrate backend: the deterministic simulator
// and the real-concurrency goroutine machine. DMCS semantics (tag
// filtering, poll counts, timeout behaviour) must be identical on both;
// only timings differ.
func backends(t *testing.T, f func(t *testing.T, m substrate.Machine)) {
	t.Run("sim", func(t *testing.T) {
		f(t, sim.NewMachine(sim.Config{Seed: 2}))
	})
	t.Run("real", func(t *testing.T) {
		cfg := rtm.DefaultConfig()
		cfg.Seed = 2
		f(t, rtm.New(cfg))
	})
}

// waitQueued parks until at least total messages are queued at ep. The
// timed waits return immediately once anything is queued, so the loop steps
// time forward with Advance — which always progresses, on both backends —
// until the whole burst has arrived.
func waitQueued(ep substrate.Endpoint, total int) {
	for ep.InboxLen() < total {
		ep.Advance(substrate.Millisecond, substrate.CatIdle)
	}
}

// TestPollTagTable: PollTag must dispatch exactly the messages carrying the
// requested tag — all of them, in arrival order, and nothing else — on both
// backends.
func TestPollTagTable(t *testing.T) {
	cases := []struct {
		name     string
		sys, app int
	}{
		{"empty", 0, 0},
		{"only-system", 3, 0},
		{"only-app", 0, 3},
		{"mixed", 2, 3},
		{"many", 8, 8},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			backends(t, func(t *testing.T, m substrate.Machine) {
				sysGot, appGot := 0, 0
				total := tc.sys + tc.app
				mkHandlers := func(c *Comm) (HandlerID, HandlerID) {
					hApp := c.Register(func(c *Comm, src int, data any, size int) { appGot++ })
					hSys := c.Register(func(c *Comm, src int, data any, size int) { sysGot++ })
					return hApp, hSys
				}
				m.Spawn("recv", func(ep substrate.Endpoint) {
					c := New(ep)
					mkHandlers(c)
					waitQueued(ep, total)
					if n := c.PollTag(substrate.TagSystem); n != tc.sys {
						t.Errorf("PollTag dispatched %d, want %d", n, tc.sys)
					}
					if sysGot != tc.sys || appGot != 0 {
						t.Errorf("after PollTag: sys=%d app=%d", sysGot, appGot)
					}
					if n := c.Poll(); n != tc.app {
						t.Errorf("Poll dispatched %d, want %d", n, tc.app)
					}
				})
				m.Spawn("send", func(ep substrate.Endpoint) {
					c := New(ep)
					hApp, hSys := mkHandlers(c)
					// Interleave the two classes as far as possible.
					s, a := tc.sys, tc.app
					for s > 0 || a > 0 {
						if s > 0 {
							c.SendTagged(0, hSys, nil, 0, substrate.TagSystem)
							s--
						}
						if a > 0 {
							c.Send(0, hApp, nil, 0)
							a--
						}
					}
				})
				if err := m.Run(); err != nil {
					t.Fatal(err)
				}
				if sysGot != tc.sys || appGot != tc.app {
					t.Fatalf("dispatched sys=%d app=%d, want %d/%d", sysGot, appGot, tc.sys, tc.app)
				}
			})
		})
	}
}

// TestWaitPollForTimeoutExpiry: with nothing in flight, WaitPollFor must
// dispatch nothing and not return before its deadline (in substrate time).
func TestWaitPollForTimeoutExpiry(t *testing.T) {
	for _, d := range []substrate.Time{substrate.Millisecond, 20 * substrate.Millisecond} {
		d := d
		backends(t, func(t *testing.T, m substrate.Machine) {
			m.Spawn("lonely", func(ep substrate.Endpoint) {
				c := New(ep)
				c.Register(func(c *Comm, src int, data any, size int) {
					t.Error("handler ran with no traffic")
				})
				t0 := ep.Now()
				if n := c.WaitPollFor(d, substrate.CatIdle); n != 0 {
					t.Errorf("dispatched %d from an empty network", n)
				}
				if el := ep.Now() - t0; el < d {
					t.Errorf("returned after %v, before the %v deadline", el, d)
				}
			})
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWaitPollForDeliversBeforeDeadline: a message in flight must be
// dispatched by a WaitPollFor loop well before a generous deadline.
func TestWaitPollForDeliversBeforeDeadline(t *testing.T) {
	backends(t, func(t *testing.T, m substrate.Machine) {
		got := 0
		m.Spawn("recv", func(ep substrate.Endpoint) {
			c := New(ep)
			c.Register(func(c *Comm, src int, data any, size int) { got++ })
			deadline := ep.Now() + 5*substrate.Second
			for got == 0 && ep.Now() < deadline {
				c.WaitPollFor(10*substrate.Millisecond, substrate.CatIdle)
			}
		})
		m.Spawn("send", func(ep substrate.Endpoint) {
			c := New(ep)
			h := c.Register(func(c *Comm, src int, data any, size int) {})
			c.Send(0, h, nil, 0)
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if got != 1 {
			t.Fatalf("dispatched %d messages", got)
		}
	})
}
