package dmcs

import (
	"testing"

	"prema/internal/faulty"
	"prema/internal/rtm"
	"prema/internal/sim"
	"prema/internal/substrate"
)

// TestWaitPollForNonPositive: a zero or negative duration must never block —
// the call degenerates to a plain Poll of whatever is queued. This was
// backend-dependent before it was pinned down (immediate on the simulator, a
// clamped one-microsecond wait on the real-time machine); now it is part of
// the documented contract, in both classic and reliable modes.
func TestWaitPollForNonPositive(t *testing.T) {
	for _, mode := range []string{"classic", "reliable"} {
		for _, d := range []substrate.Time{0, -substrate.Millisecond} {
			mode, d := mode, d
			t.Run(mode, func(t *testing.T) {
				backends(t, func(t *testing.T, m substrate.Machine) {
					const total = 3
					got := 0
					m.Spawn("recv", func(ep substrate.Endpoint) {
						c := New(ep)
						if mode == "reliable" {
							c.EnableReliable(DefaultRelConfig())
						}
						c.Register(func(c *Comm, src int, data any, size int) { got++ })
						waitQueued(ep, total)
						if n := c.WaitPollFor(d, substrate.CatIdle); n != total {
							t.Errorf("WaitPollFor(%v) dispatched %d, want %d", d, n, total)
						}
						// Empty queue: must return 0 without blocking. On the
						// simulator an empty poll costs no virtual time at all.
						t0 := ep.Now()
						if n := c.WaitPollFor(d, substrate.CatIdle); n != 0 {
							t.Errorf("WaitPollFor(%v) on empty queue dispatched %d", d, n)
						}
						if _, isSim := m.(*sim.Machine); isSim && ep.Now() != t0 {
							t.Errorf("WaitPollFor(%v) advanced virtual time by %v on an empty queue", d, ep.Now()-t0)
						}
					})
					m.Spawn("send", func(ep substrate.Endpoint) {
						c := New(ep)
						if mode == "reliable" {
							c.EnableReliable(DefaultRelConfig())
						}
						h := c.Register(func(c *Comm, src int, data any, size int) {})
						for i := 0; i < total; i++ {
							c.Send(0, h, i, 8)
						}
						c.Quiesce()
					})
					if err := m.Run(); err != nil {
						t.Fatal(err)
					}
					if got != total {
						t.Fatalf("dispatched %d messages, want %d", got, total)
					}
				})
			})
		}
	}
}

// relPair runs a two-processor reliable-mode exchange on machine m: proc 1
// sends n messages on each of the two traffic classes to proc 0, which must
// dispatch every one exactly once, in per-stream order. It returns the
// receiver's protocol stats.
func relPair(t *testing.T, m substrate.Machine, cfg RelConfig, n int) (gotApp, gotSys []int, sender RelStats) {
	t.Helper()
	m.Spawn("recv", func(ep substrate.Endpoint) {
		c := New(ep)
		c.EnableReliable(cfg)
		c.Register(func(c *Comm, src int, data any, size int) { gotApp = append(gotApp, data.(int)) })
		c.Register(func(c *Comm, src int, data any, size int) { gotSys = append(gotSys, data.(int)) })
		deadline := ep.Now() + 120*substrate.Second
		for len(gotApp)+len(gotSys) < 2*n && ep.Now() < deadline {
			c.WaitPollFor(5*substrate.Millisecond, substrate.CatIdle)
		}
		c.Quiesce()
	})
	m.Spawn("send", func(ep substrate.Endpoint) {
		c := New(ep)
		c.EnableReliable(cfg)
		hApp := c.Register(func(c *Comm, src int, data any, size int) {})
		hSys := c.Register(func(c *Comm, src int, data any, size int) {})
		_ = hApp
		for i := 0; i < n; i++ {
			c.SendTagged(0, hApp, i, 8, substrate.TagApp)
			c.SendTagged(0, hSys, i, 8, substrate.TagSystem)
		}
		// Quiesce retransmits until everything is acknowledged (bounded by
		// the drain timeout), which is the whole point of reliable mode.
		c.Quiesce()
		if p := c.PendingUnacked(); p != 0 {
			t.Errorf("sender still has %d unacked messages after Quiesce", p)
		}
		sender = c.RelStats()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return gotApp, gotSys, sender
}

// checkInOrder asserts that got is exactly 0..n-1.
func checkInOrder(t *testing.T, label string, got []int, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("%s: dispatched %d messages, want %d (%v)", label, len(got), n, got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("%s: position %d got %d — out of order or duplicated (%v)", label, i, v, got)
		}
	}
}

// TestReliableCleanNetwork: with no faults, reliable mode must deliver
// everything exactly once in order — and on the deterministic simulator it
// must do so without a single retransmission (acks return well inside the
// initial RTO, so timers never fire).
func TestReliableCleanNetwork(t *testing.T) {
	const n = 50
	backends(t, func(t *testing.T, m substrate.Machine) {
		gotApp, gotSys, sender := relPair(t, m, DefaultRelConfig(), n)
		checkInOrder(t, "app", gotApp, n)
		checkInOrder(t, "sys", gotSys, n)
		if sender.DataSent != 2*n {
			t.Errorf("sender DataSent=%d, want %d", sender.DataSent, 2*n)
		}
		if _, isSim := m.(*sim.Machine); isSim && sender.Retransmits != 0 {
			t.Errorf("clean simulated network produced %d retransmits", sender.Retransmits)
		}
	})
}

// TestReliableLossyNetwork is the package-level chaos test: a quarter of all
// messages dropped, some duplicated, delayed, and reordered — on both
// backends — and the reliable layer must still deliver every message exactly
// once, in per-stream order.
func TestReliableLossyNetwork(t *testing.T) {
	const n = 100
	plan := faulty.Plan{Default: faulty.LinkFaults{
		Drop:    0.25,
		Dup:     0.15,
		Delay:   0.10,
		Reorder: 0.25,
	}}
	// The receiver must outlive the sender's longest backoff gap, so its
	// quiesce linger exceeds RTOMax; the drain timeout bounds the whole
	// shutdown even if the RNG is maximally unkind.
	cfg := RelConfig{
		Enabled:      true,
		RTO:          10 * substrate.Millisecond,
		RTOMax:       40 * substrate.Millisecond,
		Linger:       500 * substrate.Millisecond,
		DrainTimeout: 10 * substrate.Second,
	}
	run := func(t *testing.T, inner substrate.Machine) {
		fm := faulty.Wrap(inner, plan, 42)
		gotApp, gotSys, sender := relPair(t, fm, cfg, n)
		checkInOrder(t, "app", gotApp, n)
		checkInOrder(t, "sys", gotSys, n)
		st := fm.Stats()
		if st.Dropped == 0 || st.Dupped == 0 || st.Reordered == 0 {
			t.Errorf("fault injection too quiet: %+v", st)
		}
		if sender.Retransmits == 0 {
			t.Errorf("messages were dropped (%d) but nothing was retransmitted", st.Dropped)
		}
	}
	t.Run("sim", func(t *testing.T) {
		run(t, sim.NewMachine(sim.Config{Seed: 2}))
	})
	t.Run("real", func(t *testing.T) {
		cfg := rtm.DefaultConfig()
		cfg.Seed = 2
		cfg.TimeScale = 1e-2 // keep sub-RTO waits above the host timer floor
		run(t, rtm.New(cfg))
	})
}

// TestReliablePollTagPreemption: in reliable mode, PollTag(TagSystem) must
// dispatch only system-tagged traffic while application data keeps moving
// through the protocol (acked, deduplicated) without being delivered — the
// invariant PREMA's preemptive polling thread depends on.
func TestReliablePollTagPreemption(t *testing.T) {
	const nSys, nApp = 4, 6
	backends(t, func(t *testing.T, m substrate.Machine) {
		var gotApp, gotSys []int
		m.Spawn("recv", func(ep substrate.Endpoint) {
			c := New(ep)
			c.EnableReliable(DefaultRelConfig())
			c.Register(func(c *Comm, src int, data any, size int) { gotApp = append(gotApp, data.(int)) })
			c.Register(func(c *Comm, src int, data any, size int) { gotSys = append(gotSys, data.(int)) })
			deadline := ep.Now() + 60*substrate.Second
			for len(gotSys) < nSys && ep.Now() < deadline {
				c.PollTag(substrate.TagSystem)
				if len(gotSys) < nSys {
					ep.WaitMsgFor(substrate.Millisecond, substrate.CatIdle)
				}
			}
			if len(gotApp) != 0 {
				t.Errorf("PollTag(TagSystem) leaked %d application messages", len(gotApp))
			}
			for len(gotApp) < nApp && ep.Now() < deadline {
				c.WaitPollFor(substrate.Millisecond, substrate.CatIdle)
			}
			c.Quiesce()
		})
		m.Spawn("send", func(ep substrate.Endpoint) {
			c := New(ep)
			c.EnableReliable(DefaultRelConfig())
			hApp := c.Register(func(c *Comm, src int, data any, size int) {})
			hSys := c.Register(func(c *Comm, src int, data any, size int) {})
			for i := 0; i < nApp; i++ {
				c.SendTagged(0, hApp, i, 8, substrate.TagApp)
			}
			for i := 0; i < nSys; i++ {
				c.SendTagged(0, hSys, i, 8, substrate.TagSystem)
			}
			c.Quiesce()
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		checkInOrder(t, "sys", gotSys, nSys)
		checkInOrder(t, "app", gotApp, nApp)
	})
}

// TestReliableUnsequencedPassthrough: a message with Seq 0 (sent by a peer
// running in classic mode) must pass straight through a reliable receiver —
// delivered, unacked, never buffered.
func TestReliableUnsequencedPassthrough(t *testing.T) {
	backends(t, func(t *testing.T, m substrate.Machine) {
		got := 0
		m.Spawn("recv", func(ep substrate.Endpoint) {
			c := New(ep)
			c.EnableReliable(DefaultRelConfig())
			c.Register(func(c *Comm, src int, data any, size int) { got++ })
			deadline := ep.Now() + 30*substrate.Second
			for got < 2 && ep.Now() < deadline {
				c.WaitPollFor(substrate.Millisecond, substrate.CatIdle)
			}
			if st := c.RelStats(); st.AcksSent != 0 {
				t.Errorf("acked %d unsequenced messages", st.AcksSent)
			}
		})
		m.Spawn("send", func(ep substrate.Endpoint) {
			c := New(ep) // classic fire-and-forget
			h := c.Register(func(c *Comm, src int, data any, size int) {})
			c.Send(0, h, 1, 8)
			c.Send(0, h, 2, 8)
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if got != 2 {
			t.Fatalf("dispatched %d messages, want 2", got)
		}
	})
}
