package dmcs

import (
	"testing"

	"prema/internal/substrate"
)

// TestMarkDeadUnblocksQuiesce: a sender with unacked messages toward a peer
// that will never ack (it stopped polling — the effect of a fail-stop) used
// to sit in Quiesce retransmitting until DrainTimeout. With a dead-peer
// verdict the pending buffer is discarded, PendingUnacked drops to zero, and
// Quiesce returns after Linger instead of the 60s drain cap.
func TestMarkDeadUnblocksQuiesce(t *testing.T) {
	backends(t, func(t *testing.T, m substrate.Machine) {
		const n = 5
		var senderStats RelStats
		var quiesceDur substrate.Time
		m.Spawn("dead", func(ep substrate.Endpoint) {
			c := New(ep)
			c.EnableReliable(DefaultRelConfig())
			c.Register(func(c *Comm, src int, data any, size int) {})
			// Fail-stop: never poll, never ack, just let time pass so the
			// sender's RTOs and Linger can elapse.
			ep.Advance(10*substrate.Second, substrate.CatIdle)
		})
		m.Spawn("send", func(ep substrate.Endpoint) {
			c := New(ep)
			c.EnableReliable(DefaultRelConfig())
			h := c.Register(func(c *Comm, src int, data any, size int) {})
			for i := 0; i < n; i++ {
				c.Send(0, h, i, 8)
			}
			// Let a couple of RTOs expire so retransmission really is in
			// progress when the verdict lands.
			for i := 0; i < 3; i++ {
				c.WaitPollFor(200*substrate.Millisecond, substrate.CatIdle)
			}
			if c.PendingUnacked() == 0 {
				t.Error("pending buffer empty before MarkDead; test is vacuous")
			}
			c.MarkDead(0)
			if got := c.PendingUnacked(); got != 0 {
				t.Errorf("PendingUnacked = %d after MarkDead, want 0", got)
			}
			if got := c.DeadPeers(); got != 1 {
				t.Errorf("DeadPeers = %d, want 1", got)
			}
			// Sends to a dead peer are fire-and-forget: nothing buffered.
			c.Send(0, h, 99, 8)
			if got := c.PendingUnacked(); got != 0 {
				t.Errorf("PendingUnacked = %d after send to dead peer, want 0", got)
			}
			t0 := ep.Now()
			c.Quiesce()
			quiesceDur = ep.Now() - t0
			senderStats = c.RelStats()
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if senderStats.DeadDropped != n {
			t.Errorf("DeadDropped = %d, want %d", senderStats.DeadDropped, n)
		}
		if senderStats.DeadSent != 1 {
			t.Errorf("DeadSent = %d, want 1", senderStats.DeadSent)
		}
		// Quiesce must exit on the Linger path, nowhere near DrainTimeout.
		if limit := DefaultRelConfig().DrainTimeout / 2; quiesceDur >= limit {
			t.Errorf("Quiesce took %v, want well under the %v drain cap", quiesceDur, limit)
		}
	})
}

// TestMarkAliveRealignsStreams: after MarkDead dropped the streams, a
// rejoined peer's fresh Comm and the survivor must agree on sequencing in
// both directions — messages exchanged after MarkAlive are delivered exactly
// once, in order, and both sides drain cleanly.
func TestMarkAliveRealignsStreams(t *testing.T) {
	backends(t, func(t *testing.T, m substrate.Machine) {
		const n = 4
		var got []int
		m.Spawn("peer", func(ep substrate.Endpoint) {
			// First incarnation: crash immediately (no polling at all).
			// Rejoin as a fresh Comm after the survivor has marked us dead.
			ep.Advance(2*substrate.Second, substrate.CatIdle)
			for ep.InboxLen() > 0 { // crashed incarnation's inbox is lost
				if ep.TryRecv(substrate.CatMessaging) == nil {
					break
				}
			}
			c := New(ep)
			c.EnableReliable(DefaultRelConfig())
			c.Register(func(c *Comm, src int, data any, size int) {
				c.Send(src, HandlerID(0), data, 8)
			})
			deadline := ep.Now() + 30*substrate.Second
			for c.RelStats().DataSent < n && ep.Now() < deadline {
				c.WaitPollFor(10*substrate.Millisecond, substrate.CatIdle)
			}
			c.Quiesce()
		})
		m.Spawn("survivor", func(ep substrate.Endpoint) {
			c := New(ep)
			c.EnableReliable(DefaultRelConfig())
			c.Register(func(c *Comm, src int, data any, size int) {
				got = append(got, data.(int))
			})
			hEcho := HandlerID(0)
			// Send into the dead incarnation, then declare it down.
			c.Send(0, hEcho, -1, 8)
			c.WaitPollFor(500*substrate.Millisecond, substrate.CatIdle)
			c.MarkDead(0)
			// Wait out the rejoin, then resume sequenced traffic.
			ep.Advance(2*substrate.Second, substrate.CatIdle)
			c.MarkAlive(0)
			for i := 0; i < n; i++ {
				c.Send(0, hEcho, i, 8)
			}
			deadline := ep.Now() + 30*substrate.Second
			for len(got) < n && ep.Now() < deadline {
				c.WaitPollFor(10*substrate.Millisecond, substrate.CatIdle)
			}
			c.Quiesce()
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("survivor got %d echoes (%v), want %d", len(got), got, n)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("echoes out of order: got %v", got)
			}
		}
	})
}
