package dmcs

import (
	"prema/internal/substrate"
	"prema/internal/trace"
)

// This file implements DMCS's reliable-delivery mode: an ARQ protocol that
// makes the active-message layer survive a lossy transport (message drop,
// duplication, reordering, and delay — the faults internal/faulty injects).
//
// Protocol summary:
//
//   - Every (peer, tag) pair is an independent *stream*. Streams are
//     per-tag so that PREMA's preemptive polling (PollTag with TagSystem)
//     keeps working: a system-tagged balancer message never waits behind an
//     undelivered application message.
//   - Data messages carry per-stream sequence numbers (1, 2, 3, ...) in
//     Msg.Seq. The receiver delivers a stream strictly in sequence order,
//     buffering out-of-order arrivals and discarding duplicates, so every
//     handler runs exactly once per logical send, in per-stream FIFO order
//     — the same guarantee the substrate itself gives on a perfect network.
//   - Receivers acknowledge with cumulative acks (highest in-sequence
//     sequence number), flushed at the end of every poll that consumed or
//     re-observed stream data. Acks are unsequenced control messages
//     (Kind = ackKind, system-tagged) and may themselves be lost; a later
//     ack or a retransmission-triggered re-ack repairs that.
//   - Senders buffer unacked messages and retransmit the whole unacked
//     window when a per-stream deadline expires, doubling the timeout up to
//     RTOMax (capped exponential backoff) and resetting it on forward
//     progress. Retransmission is driven entirely off the existing poll
//     loop — Poll/PollTag/WaitPollFor tick the protocol — so an idle
//     processor blocked in ilb's WaitPollFor(IdleTick) wakes and
//     retransmits without any dedicated thread.
//
// All protocol CPU is charged through the normal substrate categories
// (sends and receives to CatMessaging), so a faulted run's extra cost shows
// up in the same per-processor ledgers the paper's figures plot.

// ackKind is the reserved Msg.Kind of cumulative-ack control messages.
// Handler IDs are non-negative, so the spaces cannot collide.
const ackKind = -1

// ackBytes models the wire size of an ack control message.
const ackBytes = 16

// RelConfig tunes reliable-delivery mode.
type RelConfig struct {
	// Enabled switches the protocol on. A zero RelConfig leaves DMCS in its
	// classic fire-and-forget mode with byte-identical behaviour to earlier
	// revisions.
	Enabled bool
	// RTO is the initial per-stream retransmission timeout.
	RTO substrate.Time
	// RTOMax caps the exponential backoff.
	RTOMax substrate.Time
	// Linger is how long Quiesce keeps polling-and-acking after the last
	// protocol activity, so peers' retransmissions still get acked during
	// shutdown.
	Linger substrate.Time
	// DrainTimeout hard-bounds Quiesce; a crashed peer that will never ack
	// cannot hold shutdown hostage beyond this.
	DrainTimeout substrate.Time
	// RetransmitBurst caps how many unacked messages a single stream resends
	// per timeout. Plain go-back-N resends the whole window, which on a slow
	// or stalled receiver turns every timeout into a message storm that can
	// starve the very acks that would stop it; capping keeps the protocol
	// stable (the head of the window is always resent, so progress is
	// preserved).
	RetransmitBurst int
}

// DefaultRelConfig returns the tuning used by the chaos experiments.
func DefaultRelConfig() RelConfig {
	return RelConfig{
		Enabled:         true,
		RTO:             50 * substrate.Millisecond,
		RTOMax:          1 * substrate.Second,
		Linger:          200 * substrate.Millisecond,
		DrainTimeout:    60 * substrate.Second,
		RetransmitBurst: 16,
	}
}

// RelStats counts reliable-mode protocol activity on one endpoint.
type RelStats struct {
	// DataSent is the number of first transmissions of sequenced messages.
	DataSent int
	// Retransmits is the number of data retransmissions.
	Retransmits int
	// Timeouts is the number of per-stream RTO expiries.
	Timeouts int
	// AcksSent and AcksRecv count cumulative-ack control messages.
	AcksSent, AcksRecv int
	// DupDropped is the number of received duplicates discarded.
	DupDropped int
	// Held is the number of out-of-order arrivals buffered for reordering.
	Held int
	// DeadDropped is the number of buffered unacked messages discarded when
	// their destination was declared dead (MarkDead).
	DeadDropped int
	// DeadSent counts messages sent to a dead-marked peer as unsequenced
	// fire-and-forget transmissions (delivered iff the peer rejoins in time).
	DeadSent int
}

// stream identifies one direction of one traffic class to/from one peer.
type stream struct {
	peer int
	tag  int
}

// sendState is the sender half of a stream.
type sendState struct {
	nextSeq  uint64 // sequence number of the next new message (first = 1)
	pending  []pendingMsg
	rto      substrate.Time // current (backed-off) timeout
	deadline substrate.Time // retransmit time; 0 = nothing outstanding
}

// pendingMsg is an unacked message kept for retransmission. Each
// (re)transmission builds a fresh substrate.Msg — a delivered message is
// owned by the receiver and must never be resent.
type pendingMsg struct {
	seq  uint64
	kind int
	data any
	size int
}

// recvState is the receiver half of a stream.
type recvState struct {
	next   uint64 // next expected sequence number (first = 1)
	hold   map[uint64]*substrate.Msg
	ackDue bool
}

// reliable is the per-endpoint protocol state.
type reliable struct {
	cfg RelConfig

	send      map[stream]*sendState
	recv      map[stream]*recvState
	sendOrder []stream // deterministic iteration (map order would leak host randomness into the simulator)
	recvOrder []stream

	// ready holds in-sequence messages awaiting dispatch, in release order.
	ready []*substrate.Msg

	// dead marks peers under a fail-stop verdict: no buffering, no
	// retransmission, no sequencing toward them (see Comm.MarkDead).
	dead map[int]bool

	// lastActivity is the time of the most recent protocol event (arrival,
	// ack, retransmission); Quiesce lingers relative to it.
	lastActivity substrate.Time

	stats RelStats
}

// EnableReliable switches the endpoint into reliable-delivery mode. Call it
// immediately after New, before any traffic flows; every processor must
// agree (SPMD discipline, as for handler registration).
func (c *Comm) EnableReliable(cfg RelConfig) {
	if !cfg.Enabled {
		return
	}
	def := DefaultRelConfig()
	if cfg.RTO <= 0 {
		cfg.RTO = def.RTO
	}
	if cfg.RTOMax < cfg.RTO {
		cfg.RTOMax = def.RTOMax
	}
	if cfg.RTOMax < cfg.RTO {
		cfg.RTOMax = cfg.RTO
	}
	if cfg.Linger <= 0 {
		cfg.Linger = def.Linger
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = def.DrainTimeout
	}
	if cfg.RetransmitBurst <= 0 {
		cfg.RetransmitBurst = def.RetransmitBurst
	}
	c.rel = &reliable{
		cfg:  cfg,
		send: make(map[stream]*sendState),
		recv: make(map[stream]*recvState),
	}
}

// Reliable reports whether reliable-delivery mode is on.
func (c *Comm) Reliable() bool { return c.rel != nil }

// RelStats returns a snapshot of the reliable-protocol counters (zero value
// when the mode is off).
func (c *Comm) RelStats() RelStats {
	if c.rel == nil {
		return RelStats{}
	}
	return c.rel.stats
}

func (r *reliable) sendStream(peer, tag int) *sendState {
	k := stream{peer, tag}
	st, ok := r.send[k]
	if !ok {
		st = &sendState{nextSeq: 1, rto: r.cfg.RTO}
		r.send[k] = st
		r.sendOrder = append(r.sendOrder, k)
	}
	return st
}

func (r *reliable) recvStream(peer, tag int) *recvState {
	k := stream{peer, tag}
	st, ok := r.recv[k]
	if !ok {
		st = &recvState{next: 1, hold: make(map[uint64]*substrate.Msg)}
		r.recv[k] = st
		r.recvOrder = append(r.recvOrder, k)
	}
	return st
}

// MarkDead records a fail-stop verdict for peer: all unacked messages
// buffered toward it are discarded (they will never be acked — counted in
// RelStats.DeadDropped) and both stream directions are forgotten, so Quiesce
// no longer waits out DrainTimeout for a processor that cannot answer.
// Subsequent sends to the peer go out once, unsequenced (see relSend), which
// is exactly the fire-and-forget semantics a dead destination deserves —
// and still reaches the peer if it rejoins before the message is consumed.
// No-op in fire-and-forget mode or when the peer is already marked.
func (c *Comm) MarkDead(peer int) {
	r := c.rel
	if r == nil || r.dead[peer] {
		return
	}
	if r.dead == nil {
		r.dead = make(map[int]bool)
	}
	r.dead[peer] = true
	r.dropPeerState(peer)
}

// MarkAlive clears a peer's dead verdict after it rejoins. The stream state
// toward the peer was already dropped at MarkDead and nothing sequenced was
// buffered since, so both sides naturally restart their streams at sequence
// 1: our next send lazily creates a fresh stream, and the rejoined
// processor's fresh Comm did the same for its own sends (its hello message,
// which triggers this call, already advanced our fresh receive stream — which
// is why no state must be dropped here). Stale in-flight messages from the
// crashed incarnation can recreate receive state early with old sequence
// numbers held; the MOL/ILB per-origin watermarks discard those if the
// rejoined stream ever reaches them.
func (c *Comm) MarkAlive(peer int) {
	r := c.rel
	if r == nil || !r.dead[peer] {
		return
	}
	delete(r.dead, peer)
}

// DeadPeers returns the number of peers currently marked dead.
func (c *Comm) DeadPeers() int {
	if c.rel == nil {
		return 0
	}
	return len(c.rel.dead)
}

// dropPeerState forgets all send and receive stream state toward peer.
func (r *reliable) dropPeerState(peer int) {
	keep := r.sendOrder[:0]
	for _, k := range r.sendOrder {
		if k.peer == peer {
			r.stats.DeadDropped += len(r.send[k].pending)
			delete(r.send, k)
			continue
		}
		keep = append(keep, k)
	}
	r.sendOrder = keep
	keep = r.recvOrder[:0]
	for _, k := range r.recvOrder {
		if k.peer == peer {
			delete(r.recv, k)
			continue
		}
		keep = append(keep, k)
	}
	r.recvOrder = keep
}

// relSend sequences and transmits a new data message, buffering it for
// retransmission.
func (c *Comm) relSend(dst int, h HandlerID, data any, size int, tag int) {
	if c.rel.dead[dst] {
		// Dead destination: transmit once, unsequenced (the receiving side's
		// accept() passes Seq==0 straight through), and buffer nothing.
		c.rel.stats.DeadSent++
		c.p.Send(&substrate.Msg{
			Dst:  dst,
			Kind: int(h),
			Tag:  tag,
			Data: data,
			Size: size,
		}, substrate.CatMessaging)
		return
	}
	st := c.rel.sendStream(dst, tag)
	seq := st.nextSeq
	st.nextSeq++
	st.pending = append(st.pending, pendingMsg{seq: seq, kind: int(h), data: data, size: size})
	if st.deadline == 0 {
		st.deadline = c.p.Now() + st.rto
	}
	c.rel.stats.DataSent++
	c.p.Send(&substrate.Msg{
		Dst:  dst,
		Kind: int(h),
		Tag:  tag,
		Data: data,
		Size: size,
		Seq:  seq,
	}, substrate.CatMessaging)
}

// ackPayload is the body of a cumulative-ack control message: "for your
// stream tagged Tag toward me, I have everything through Cum".
type ackPayload struct {
	Tag int
	Cum uint64
}

// pump drains the substrate inbox through the protocol: acks update sender
// state, sequenced data is deduplicated and released in order onto the
// ready queue.
func (c *Comm) pump() {
	for {
		m := c.p.TryRecv(substrate.CatMessaging)
		if m == nil {
			return
		}
		c.accept(m)
	}
}

// accept runs one received message through the receiver state machine.
func (c *Comm) accept(m *substrate.Msg) {
	r := c.rel
	r.lastActivity = c.p.Now()
	if m.Kind == ackKind {
		pay := m.Data.(ackPayload)
		r.stats.AcksRecv++
		st := r.sendStream(m.Src, pay.Tag)
		before := len(st.pending)
		i := 0
		for i < len(st.pending) && st.pending[i].seq <= pay.Cum {
			i++
		}
		if i > 0 {
			st.pending = st.pending[i:]
		}
		if len(st.pending) < before {
			// Forward progress: reset the backoff.
			st.rto = r.cfg.RTO
			if len(st.pending) == 0 {
				st.deadline = 0
			} else {
				st.deadline = c.p.Now() + st.rto
			}
		}
		return
	}
	if m.Seq == 0 {
		// Unsequenced message (a peer running without reliable mode, or
		// legacy traffic): pass through as-is.
		r.ready = append(r.ready, m)
		return
	}
	st := r.recvStream(m.Src, m.Tag)
	st.ackDue = true
	switch {
	case m.Seq == st.next:
		r.ready = append(r.ready, m)
		st.next++
		for {
			h, ok := st.hold[st.next]
			if !ok {
				break
			}
			delete(st.hold, st.next)
			r.ready = append(r.ready, h)
			st.next++
		}
	case m.Seq > st.next:
		if _, dup := st.hold[m.Seq]; dup {
			r.stats.DupDropped++
		} else {
			r.stats.Held++
			st.hold[m.Seq] = m
		}
	default:
		// Already delivered: a network duplicate or a retransmission that
		// crossed our ack. Re-ack so the sender stops resending.
		r.stats.DupDropped++
	}
}

// popReady removes and returns the oldest ready message (filtered by tag
// unless anyTag), or nil.
func (c *Comm) popReady(tag int, anyTag bool) *substrate.Msg {
	for i, m := range c.rel.ready {
		if anyTag || m.Tag == tag {
			c.rel.ready = append(c.rel.ready[:i], c.rel.ready[i+1:]...)
			return m
		}
	}
	return nil
}

// tick advances the protocol clockwork: flush due acks, retransmit expired
// streams. It is called at the end of every poll operation, which is what
// "retransmission driven off the poll loop" means — no timers, no threads.
func (c *Comm) tick() {
	r := c.rel
	now := c.p.Now()
	for _, k := range r.recvOrder {
		st := r.recv[k]
		if !st.ackDue {
			continue
		}
		st.ackDue = false
		r.stats.AcksSent++
		c.p.Send(&substrate.Msg{
			Dst:  k.peer,
			Kind: ackKind,
			Tag:  substrate.TagSystem,
			Data: ackPayload{Tag: k.tag, Cum: st.next - 1},
			Size: ackBytes,
		}, substrate.CatMessaging)
	}
	for _, k := range r.sendOrder {
		st := r.send[k]
		if st.deadline == 0 || now < st.deadline || len(st.pending) == 0 {
			continue
		}
		r.stats.Timeouts++
		r.lastActivity = now
		burst := st.pending
		if len(burst) > r.cfg.RetransmitBurst {
			burst = burst[:r.cfg.RetransmitBurst]
		}
		for _, pm := range burst {
			r.stats.Retransmits++
			c.tr.Instant(trace.EvRetransmit, now, int64(k.peer), int64(k.tag), int64(pm.seq))
			c.p.Send(&substrate.Msg{
				Dst:  k.peer,
				Kind: pm.kind,
				Tag:  k.tag,
				Data: pm.data,
				Size: pm.size,
				Seq:  pm.seq,
			}, substrate.CatMessaging)
		}
		st.rto *= 2
		if st.rto > r.cfg.RTOMax {
			st.rto = r.cfg.RTOMax
		}
		st.deadline = c.p.Now() + st.rto
	}
}

// nextDeadline returns the earliest pending retransmission deadline, or 0.
func (r *reliable) nextDeadline() substrate.Time {
	var t substrate.Time
	for _, k := range r.sendOrder {
		st := r.send[k]
		if st.deadline != 0 && (t == 0 || st.deadline < t) {
			t = st.deadline
		}
	}
	return t
}

// hasPending reports whether any stream still has unacked data.
func (r *reliable) hasPending() bool {
	for _, k := range r.sendOrder {
		if len(r.send[k].pending) > 0 {
			return true
		}
	}
	return false
}

// PendingUnacked returns the number of buffered, unacknowledged messages
// across all streams (0 when reliable mode is off).
func (c *Comm) PendingUnacked() int {
	if c.rel == nil {
		return 0
	}
	n := 0
	for _, k := range c.rel.sendOrder {
		n += len(c.rel.send[k].pending)
	}
	return n
}

// Quiesce drains the reliable protocol at shutdown: it keeps polling,
// acking, and retransmitting until every locally sent message has been
// acknowledged and the link has been quiet for Linger, or until
// DrainTimeout expires (a crashed peer never acks). Without this, a
// processor that exits the instant its application loop stops would strand
// its final sends — including the termination broadcast itself — the first
// time the network dropped one. It is a no-op in fire-and-forget mode.
func (c *Comm) Quiesce() {
	if c.rel == nil {
		return
	}
	r := c.rel
	start := c.p.Now()
	hard := start + r.cfg.DrainTimeout
	if r.lastActivity < start {
		r.lastActivity = start
	}
	for {
		c.Poll() // pump + dispatch stragglers + tick (acks, retransmits)
		now := c.p.Now()
		if now >= hard {
			return
		}
		if !r.hasPending() && now-r.lastActivity >= r.cfg.Linger {
			return
		}
		wait := hard - now
		if q := r.lastActivity + r.cfg.Linger - now; !r.hasPending() && q > 0 && q < wait {
			wait = q
		}
		if dl := r.nextDeadline(); dl != 0 && dl > now && dl-now < wait {
			wait = dl - now
		}
		c.p.WaitMsgFor(wait, substrate.CatIdle)
	}
}
