package policy

import (
	"fmt"
	"testing"

	"prema/internal/dmcs"
	"prema/internal/ilb"
	"prema/internal/mol"
	"prema/internal/sim"
)

func TestNeighborhoodHypercube(t *testing.T) {
	const n = 8
	for me := 0; me < n; me++ {
		nb := neighborhood(me, n)
		if len(nb) != 3 {
			t.Fatalf("hypercube degree = %d", len(nb))
		}
		for _, u := range nb {
			if u == me || u < 0 || u >= n {
				t.Fatalf("bad neighbor %d of %d", u, me)
			}
			// Symmetry.
			back := neighborhood(u, n)
			found := false
			for _, v := range back {
				if v == me {
					found = true
				}
			}
			if !found {
				t.Fatalf("asymmetric neighborhood %d<->%d", me, u)
			}
		}
	}
}

func TestNeighborhoodRing(t *testing.T) {
	nb := neighborhood(0, 6) // not a power of two
	if len(nb) != 2 || nb[0] != 5 || nb[1] != 1 {
		t.Fatalf("ring neighbors = %v", nb)
	}
	if nb := neighborhood(0, 2); len(nb) != 1 || nb[0] != 1 {
		t.Fatalf("2-proc neighbors = %v", nb)
	}
	if nb := neighborhood(0, 1); nb != nil {
		t.Fatalf("singleton neighbors = %v", nb)
	}
}

func TestDefaultConfigs(t *testing.T) {
	if c := DefaultWSConfig(); c.MaxObjects <= 0 || c.Backoff <= 0 {
		t.Fatal("ws defaults")
	}
	if c := DefaultDiffConfig(); c.Period <= 0 || c.MaxObjects <= 0 {
		t.Fatal("diffusion defaults")
	}
	if c := DefaultMLConfig(); c.HighMark <= c.LowMark {
		t.Fatal("multilist defaults")
	}
	names := []string{
		NewWorkStealing(DefaultWSConfig()).Name(),
		NewDiffusion(DefaultDiffConfig()).Name(),
		NewMultiList(DefaultMLConfig()).Name(),
	}
	want := []string{"worksteal", "diffusion", "multilist"}
	for i := range names {
		if names[i] != want[i] {
			t.Fatalf("names = %v", names)
		}
	}
}

// stealCluster builds a 2-proc cluster where proc 0 has `units` queued work
// units and proc 1 is idle, and returns after `dur` of virtual time.
func stealCluster(t *testing.T, units int, mode ilb.Mode, dur sim.Time) (*sim.Engine, []*WorkStealing) {
	t.Helper()
	e := sim.NewEngine(sim.Config{Seed: 9})
	pols := make([]*WorkStealing, 2)
	for i := 0; i < 2; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			l := mol.New(dmcs.New(p), mol.DefaultConfig())
			ws := NewWorkStealing(DefaultWSConfig())
			pols[p.ID()] = ws
			cfg := ilb.DefaultConfig(mode)
			cfg.WaterMark = 0.3
			s := ilb.New(l, cfg, ws)
			h := l.RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
				s.Compute(100 * sim.Millisecond)
			})
			if p.ID() == 0 {
				for u := 0; u < units; u++ {
					mp := l.Register(u, 128)
					s.Message(mp, h, nil, 8, 0.1)
				}
			}
			p.Engine().After(dur, func() { s.Stop() })
			s.Run()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e, pols
}

func TestWorkStealingMovesWork(t *testing.T) {
	e, pols := stealCluster(t, 10, ilb.Implicit, 2*sim.Second)
	if c := e.Proc(1).Account()[sim.CatCompute]; c == 0 {
		t.Fatal("no work stolen")
	}
	if pols[1].Stats.Requests == 0 || pols[0].Stats.GrantsServed == 0 {
		t.Fatalf("stats: %+v %+v", pols[0].Stats, pols[1].Stats)
	}
}

func TestWorkStealingNacksWhenEmpty(t *testing.T) {
	// Two idle-ish procs: one unit total, so after it finishes both are
	// empty and requests draw NACKs followed by backoff (bounded request
	// count proves backoff works).
	_, pols := stealCluster(t, 1, ilb.Implicit, 3*sim.Second)
	req := pols[0].Stats.Requests + pols[1].Stats.Requests
	nack := pols[0].Stats.NacksReceived + pols[1].Stats.NacksReceived
	if nack == 0 {
		t.Fatal("expected NACKs on an empty machine")
	}
	// 3 seconds / 250ms backoff, 2 procs, 1 partner each: tens of requests
	// at most, not a storm.
	if req > 200 {
		t.Fatalf("NACK storm: %d requests", req)
	}
}

func TestVictimKeepsWork(t *testing.T) {
	// The victim must never donate its entire queue.
	e, _ := stealCluster(t, 10, ilb.Implicit, 2*sim.Second)
	if c := e.Proc(0).Account()[sim.CatCompute]; c == 0 {
		t.Fatal("victim gave everything away")
	}
	_ = e
}

func TestAutoWaterMarkTracksLatency(t *testing.T) {
	e := sim.NewEngine(sim.Config{Seed: 17})
	var finalWM, finalRTT float64
	for i := 0; i < 2; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			l := mol.New(dmcs.New(p), mol.DefaultConfig())
			cfg := DefaultWSConfig()
			cfg.AutoWaterMark = true
			cfg.Safety = 3
			ws := NewWorkStealing(cfg)
			lbCfg := ilb.DefaultConfig(ilb.Explicit)
			lbCfg.WaterMark = 0.01
			// Victims answer slowly: they only poll every 4 units of 200ms.
			lbCfg.PollEvery = 4
			s := ilb.New(l, lbCfg, ws)
			h := l.RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
				s.Compute(200 * sim.Millisecond)
			})
			if p.ID() == 0 {
				for u := 0; u < 30; u++ {
					mp := l.Register(u, 128)
					s.Message(mp, h, nil, 8, 0.2)
				}
			}
			p.Engine().After(4*sim.Second, func() { s.Stop() })
			s.Run()
			if p.ID() == 1 {
				finalWM = s.WaterMark()
				finalRTT = ws.RTT()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if finalRTT <= 0 {
		t.Fatal("no RTT observed")
	}
	if finalWM != 3*finalRTT {
		t.Fatalf("watermark %v != 3 x rtt %v", finalWM, finalRTT)
	}
	// The victim's poll gap is up to 0.8s; the derived watermark must
	// reflect a real (>10ms) measured latency, far above the initial 0.01.
	if finalWM < 0.05 {
		t.Fatalf("watermark %v did not adapt upward", finalWM)
	}
}
