package policy

import (
	"prema/internal/mol"
	"prema/internal/substrate"
	"prema/internal/wire"
)

// Wire codecs for the balancing policies' control traffic. Work stealing's
// nack/grant ride builtin kinds (nil / int), diffusion broadcasts a builtin
// float64, and multi-list's fetch is nil — only the structured payloads
// need codecs here. Every field crosses the wire, including ad.posted: the
// receiver restamps it with its own clock, but carrying the sender's value
// keeps decode(encode(x)) == x exact for the round-trip tests.
func init() {
	wire.Register(wire.KindPolicySteal, stealRequest{},
		func(w *wire.Writer, v any) { w.F64(v.(stealRequest).Load) },
		func(r *wire.Reader) any { return stealRequest{Load: r.F64()} })

	wire.Register(wire.KindPolicyAd, ad{},
		func(w *wire.Writer, v any) {
			a := v.(ad)
			w.Int(a.mp.Home)
			w.Int(a.mp.Index)
			w.Int(a.host)
			w.F64(a.weight)
			w.I64(int64(a.posted))
		},
		func(r *wire.Reader) any {
			a := ad{}
			a.mp = mol.MobilePtr{Home: r.Int(), Index: r.Int()}
			a.host = r.Int()
			a.weight = r.F64()
			a.posted = substrate.Time(r.I64())
			return a
		})

	wire.Register(wire.KindPolicyClaim, claimMsg{},
		func(w *wire.Writer, v any) {
			c := v.(claimMsg)
			w.Int(c.mp.Home)
			w.Int(c.mp.Index)
			w.Int(c.claimer)
		},
		func(r *wire.Reader) any {
			return claimMsg{mp: mol.MobilePtr{Home: r.Int(), Index: r.Int()}, claimer: r.Int()}
		})
}
