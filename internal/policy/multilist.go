package policy

import (
	"sort"

	"prema/internal/dmcs"
	"prema/internal/ilb"
	"prema/internal/mol"
	"prema/internal/substrate"
)

// MLConfig tunes the multi-list scheduling policy.
type MLConfig struct {
	// HighMark: a processor with more hinted load than this advertises its
	// surplus on a bulletin list.
	HighMark float64
	// LowMark: a processor with less hinted load than this fetches from the
	// lists.
	LowMark float64
	// AdTTL, when positive, makes list owners discard advertisements older
	// than this. The default (0) never expires ads: staleness is caught at
	// claim time anyway (the advertiser verifies the object is still
	// queued), and early expiry starves consumers that go hungry long after
	// producers advertised.
	AdTTL substrate.Time
}

// DefaultMLConfig returns the configuration used in tests and ablations.
func DefaultMLConfig() MLConfig {
	return MLConfig{HighMark: 30, LowMark: 10}
}

// MLStats counts multi-list activity on one processor.
type MLStats struct {
	AdsPosted     int
	Fetches       int
	ClaimsServed  int
	ClaimsExpired int
	ObjectsSent   int
}

// MultiList implements a distributed variant of Wu's multi-list scheduling
// (CMU, 1993): every processor owns one of P bulletin lists. Overloaded
// processors post advertisements for their heaviest queued objects to a
// deterministic-random list; underloaded processors fetch from lists (their
// own first), and the list owner redirects the claim to the advertiser,
// which migrates the object if it is still queued. The global lists give
// better machine-wide balance than pairwise stealing at the cost of an extra
// indirection — the trade-off Wu's thesis studies.
type MultiList struct {
	cfg MLConfig

	ads        []ad // the list this processor owns
	advertised map[mol.MobilePtr]bool
	fetchPos   int
	fetching   bool

	hPost  dmcs.HandlerID
	hFetch dmcs.HandlerID
	hClaim dmcs.HandlerID
	hReply dmcs.HandlerID

	Stats MLStats
}

type ad struct {
	mp     mol.MobilePtr
	host   int
	weight float64
	posted substrate.Time
}

// NewMultiList returns a multi-list policy instance (one per processor).
func NewMultiList(cfg MLConfig) *MultiList {
	return &MultiList{cfg: cfg, advertised: make(map[mol.MobilePtr]bool)}
}

// Name implements ilb.Policy.
func (m *MultiList) Name() string { return "multilist" }

type claimMsg struct {
	mp      mol.MobilePtr
	claimer int
}

// Setup implements ilb.Policy.
func (m *MultiList) Setup(s *ilb.Scheduler) {
	c := s.Comm()
	m.hPost = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
		a := data.(ad)
		a.posted = s.Proc().Now()
		m.ads = append(m.ads, a)
	})
	m.hFetch = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
		m.serveFetch(s, src)
	})
	m.hClaim = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
		m.serveClaim(s, data.(claimMsg))
	})
	m.hReply = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
		// granted reports whether an object is on its way.
		if granted := data.(bool); !granted {
			m.fetching = false
			m.maybeFetch(s)
		} else {
			m.fetching = false
		}
	})
}

// post advertises surplus objects beyond HighMark.
func (m *MultiList) post(s *ilb.Scheduler) {
	surplus := s.Load() - m.cfg.HighMark
	if surplus <= 0 {
		return
	}
	objs := s.StealableObjects()
	sort.SliceStable(objs, func(i, j int) bool {
		return s.QueuedWeight(objs[i]) > s.QueuedWeight(objs[j])
	})
	n := s.Proc().NumPeers()
	rng := s.Proc().Rand()
	for _, obj := range objs {
		if surplus <= 0 {
			break
		}
		if m.advertised[obj.MP] {
			continue
		}
		w := s.QueuedWeight(obj)
		a := ad{mp: obj.MP, host: s.Proc().ID(), weight: w}
		list := rng.Intn(n)
		m.advertised[obj.MP] = true
		m.Stats.AdsPosted++
		if list == s.Proc().ID() {
			a.posted = s.Proc().Now()
			m.ads = append(m.ads, a)
		} else {
			s.Comm().SendTagged(list, m.hPost, a, 48, substrate.TagSystem)
		}
		surplus -= w
	}
}

// maybeFetch asks a list for work when below LowMark.
func (m *MultiList) maybeFetch(s *ilb.Scheduler) {
	if m.fetching || s.Stopped() || s.Load() >= m.cfg.LowMark {
		return
	}
	n := s.Proc().NumPeers()
	if n <= 1 {
		return
	}
	m.fetching = true
	m.Stats.Fetches++
	// Own list first, then sweep round-robin.
	list := (s.Proc().ID() + m.fetchPos) % n
	m.fetchPos++
	if list == s.Proc().ID() {
		m.serveFetch(s, s.Proc().ID())
		return
	}
	s.Comm().SendTagged(list, m.hFetch, nil, 16, substrate.TagSystem)
}

// serveFetch (at a list owner) hands the heaviest live advertisement to the
// claimer by redirecting to the advertiser.
func (m *MultiList) serveFetch(s *ilb.Scheduler, claimer int) {
	now := s.Proc().Now()
	best, bestIdx := ad{}, -1
	live := m.ads[:0]
	for _, a := range m.ads {
		if m.cfg.AdTTL > 0 && now-a.posted > m.cfg.AdTTL {
			continue // expired
		}
		live = append(live, a)
		if bestIdx < 0 || a.weight > best.weight {
			best, bestIdx = a, len(live)-1
		}
	}
	m.ads = live
	if bestIdx < 0 {
		m.reply(s, claimer, false)
		return
	}
	m.ads = append(m.ads[:bestIdx], m.ads[bestIdx+1:]...)
	claim := claimMsg{mp: best.mp, claimer: claimer}
	if best.host == s.Proc().ID() {
		m.serveClaim(s, claim)
		return
	}
	s.Comm().SendTagged(best.host, m.hClaim, claim, 32, substrate.TagSystem)
}

// serveClaim (at the advertiser) migrates the object if it is still queued.
func (m *MultiList) serveClaim(s *ilb.Scheduler, cl claimMsg) {
	delete(m.advertised, cl.mp)
	stillQueued := false
	for _, obj := range s.StealableObjects() {
		if obj.MP == cl.mp {
			stillQueued = true
			break
		}
	}
	if !stillQueued || cl.claimer == s.Proc().ID() {
		m.Stats.ClaimsExpired++
		m.reply(s, cl.claimer, false)
		return
	}
	if err := s.Mol().Migrate(cl.mp, cl.claimer); err != nil {
		m.Stats.ClaimsExpired++
		m.reply(s, cl.claimer, false)
		return
	}
	m.Stats.ClaimsServed++
	m.Stats.ObjectsSent++
	m.reply(s, cl.claimer, true)
}

func (m *MultiList) reply(s *ilb.Scheduler, to int, granted bool) {
	if to == s.Proc().ID() {
		m.fetching = false
		return
	}
	s.Comm().SendTagged(to, m.hReply, granted, 16, substrate.TagSystem)
}

// OnPoll implements ilb.Policy.
func (m *MultiList) OnPoll(s *ilb.Scheduler) { m.post(s) }

// OnLowLoad implements ilb.Policy.
func (m *MultiList) OnLowLoad(s *ilb.Scheduler) { m.maybeFetch(s) }

// OnIdle implements ilb.Policy.
func (m *MultiList) OnIdle(s *ilb.Scheduler) { m.maybeFetch(s) }
