package policy

import (
	"prema/internal/dmcs"
	"prema/internal/ilb"
	"prema/internal/substrate"
)

// DiffConfig tunes the diffusion policy.
type DiffConfig struct {
	// Period between load-information exchanges with the neighborhood.
	Period substrate.Time
	// Alpha is the diffusion coefficient: the fraction of a pairwise load
	// difference pushed per exchange. Cybenko's stable choice for a
	// d-dimensional hypercube is 1/(d+1); 0 selects that automatically.
	Alpha float64
	// MinTransfer is the smallest load difference (hinted seconds) worth a
	// migration; differences below it are left to even out naturally.
	MinTransfer float64
	// MaxObjects caps migrations per neighbor per exchange.
	MaxObjects int
}

// DefaultDiffConfig returns the configuration used in tests and ablations.
func DefaultDiffConfig() DiffConfig {
	return DiffConfig{
		Period:      100 * substrate.Millisecond,
		MinTransfer: 1.0,
		MaxObjects:  8,
	}
}

// DiffStats counts diffusion activity on one processor.
type DiffStats struct {
	Exchanges   int
	ObjectsSent int
}

// Diffusion implements Cybenko-style first-order diffusive load balancing
// within a fixed neighborhood (hypercube when the processor count is a power
// of two, ring otherwise). Each period a processor advertises its load to
// its neighbors; on hearing a lighter neighbor it pushes Alpha times the
// difference. Entirely asynchronous: no barriers, only neighborhood
// messages, matching the paper's description of PREMA's policy suite.
type Diffusion struct {
	cfg       DiffConfig
	neighbors []int
	alpha     float64
	next      substrate.Time
	hLoad     dmcs.HandlerID
	Stats     DiffStats
}

// NewDiffusion returns a diffusion policy instance (one per processor).
func NewDiffusion(cfg DiffConfig) *Diffusion {
	if cfg.Period <= 0 {
		cfg.Period = DefaultDiffConfig().Period
	}
	if cfg.MaxObjects <= 0 {
		cfg.MaxObjects = 1
	}
	return &Diffusion{cfg: cfg}
}

// Name implements ilb.Policy.
func (d *Diffusion) Name() string { return "diffusion" }

// Neighbors returns the processor's diffusion neighborhood.
func (d *Diffusion) Neighbors() []int { return d.neighbors }

// Setup implements ilb.Policy.
func (d *Diffusion) Setup(s *ilb.Scheduler) {
	me := s.Proc().ID()
	n := s.Proc().NumPeers()
	d.neighbors = neighborhood(me, n)
	d.alpha = d.cfg.Alpha
	if d.alpha <= 0 {
		d.alpha = 1.0 / float64(len(d.neighbors)+1)
	}
	d.hLoad = s.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
		d.onLoadInfo(s, src, data.(float64))
	})
}

// neighborhood returns hypercube neighbors when n is a power of two (and
// n > 1), else ring neighbors.
func neighborhood(me, n int) []int {
	if n <= 1 {
		return nil
	}
	if n&(n-1) == 0 {
		var nb []int
		for bit := 1; bit < n; bit <<= 1 {
			nb = append(nb, me^bit)
		}
		return nb
	}
	left, right := (me+n-1)%n, (me+1)%n
	if left == right {
		return []int{left}
	}
	return []int{left, right}
}

func (d *Diffusion) broadcast(s *ilb.Scheduler) {
	d.Stats.Exchanges++
	for _, nb := range d.neighbors {
		s.Comm().SendTagged(nb, d.hLoad, s.Load(), 16, substrate.TagSystem)
	}
}

// onLoadInfo reacts to a neighbor's advertised load by pushing surplus.
func (d *Diffusion) onLoadInfo(s *ilb.Scheduler, src int, theirLoad float64) {
	diff := s.Load() - theirLoad
	if diff <= d.cfg.MinTransfer {
		return
	}
	want := d.alpha * diff
	moved, sent := 0, 0.0
	for _, obj := range s.StealableObjects() {
		if moved >= d.cfg.MaxObjects || sent >= want {
			break
		}
		wgt := s.QueuedWeight(obj)
		if wgt > want-sent+d.cfg.MinTransfer && moved > 0 {
			continue
		}
		if err := s.Mol().Migrate(obj.MP, src); err != nil {
			continue
		}
		sent += wgt
		moved++
	}
	d.Stats.ObjectsSent += moved
}

// OnPoll implements ilb.Policy: drive the periodic exchange.
func (d *Diffusion) OnPoll(s *ilb.Scheduler) {
	if now := s.Proc().Now(); now >= d.next {
		d.next = now + d.cfg.Period
		d.broadcast(s)
	}
}

// OnLowLoad implements ilb.Policy: advertise hunger immediately rather than
// waiting out the period.
func (d *Diffusion) OnLowLoad(s *ilb.Scheduler) {
	if now := s.Proc().Now(); now >= d.next-d.cfg.Period/2 {
		d.next = now + d.cfg.Period
		d.broadcast(s)
	}
}

// OnIdle implements ilb.Policy.
func (d *Diffusion) OnIdle(s *ilb.Scheduler) { d.OnLowLoad(s) }
