package policy

import (
	"fmt"
	"testing"

	"prema/internal/dmcs"
	"prema/internal/ilb"
	"prema/internal/mol"
	"prema/internal/sim"
)

// policyCluster builds an n-proc cluster with the given policy constructor;
// proc 0 starts with `units` work units of 100ms, everyone runs until dur.
func policyCluster(t *testing.T, n, units int, dur sim.Time, mk func() ilb.Policy) *sim.Engine {
	t.Helper()
	e := sim.NewEngine(sim.Config{Seed: 41})
	for i := 0; i < n; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			l := mol.New(dmcs.New(p), mol.DefaultConfig())
			cfg := ilb.DefaultConfig(ilb.Implicit)
			cfg.WaterMark = 0.3
			s := ilb.New(l, cfg, mk())
			h := l.RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
				s.Compute(100 * sim.Millisecond)
			})
			if p.ID() == 0 {
				for u := 0; u < units; u++ {
					mp := l.Register(u, 128)
					s.Message(mp, h, nil, 8, 0.1)
				}
			}
			p.Engine().After(dur, func() { s.Stop() })
			s.Run()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDiffusionPushesToLighterNeighbors(t *testing.T) {
	var pols []*Diffusion
	e := policyCluster(t, 4, 16, 3*sim.Second, func() ilb.Policy {
		cfg := DefaultDiffConfig()
		cfg.Period = 50 * sim.Millisecond
		cfg.MinTransfer = 0.05
		d := NewDiffusion(cfg)
		pols = append(pols, d)
		return d
	})
	spread := 0
	for i := 1; i < 4; i++ {
		if e.Proc(i).Account()[sim.CatCompute] > 0 {
			spread++
		}
	}
	if spread == 0 {
		t.Fatal("diffusion moved nothing")
	}
	var sent, exchanges int
	for _, d := range pols {
		sent += d.Stats.ObjectsSent
		exchanges += d.Stats.Exchanges
	}
	if sent == 0 || exchanges == 0 {
		t.Fatalf("stats: sent=%d exchanges=%d", sent, exchanges)
	}
}

func TestDiffusionNeighborsExposed(t *testing.T) {
	e := sim.NewEngine(sim.Config{Seed: 1})
	var nb []int
	for i := 0; i < 4; i++ {
		e.Spawn("p", func(p *sim.Proc) {
			l := mol.New(dmcs.New(p), mol.DefaultConfig())
			d := NewDiffusion(DefaultDiffConfig())
			ilb.New(l, ilb.DefaultConfig(ilb.Implicit), d)
			if p.ID() == 0 {
				nb = d.Neighbors()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 procs = 2D hypercube: proc 0 neighbors 1 and 2.
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("neighbors = %v", nb)
	}
}

func TestMultiListMovesWorkThroughLists(t *testing.T) {
	var pols []*MultiList
	e := policyCluster(t, 4, 20, 3*sim.Second, func() ilb.Policy {
		cfg := DefaultMLConfig()
		cfg.HighMark = 0.5
		cfg.LowMark = 0.2
		m := NewMultiList(cfg)
		pols = append(pols, m)
		return m
	})
	spread := 0
	for i := 1; i < 4; i++ {
		if e.Proc(i).Account()[sim.CatCompute] > 0 {
			spread++
		}
	}
	if spread == 0 {
		t.Fatal("multilist moved nothing")
	}
	var ads, fetches, served int
	for _, m := range pols {
		ads += m.Stats.AdsPosted
		fetches += m.Stats.Fetches
		served += m.Stats.ClaimsServed
	}
	if ads == 0 || fetches == 0 || served == 0 {
		t.Fatalf("stats: ads=%d fetches=%d served=%d", ads, fetches, served)
	}
}

func TestMultiListExpiredAdsAreNacked(t *testing.T) {
	// With a tiny TTL, ads expire before consumers fetch; no work moves, but
	// nothing breaks (claims verified at the advertiser anyway).
	var pols []*MultiList
	e := policyCluster(t, 2, 6, 1500*sim.Millisecond, func() ilb.Policy {
		cfg := DefaultMLConfig()
		cfg.HighMark = 0.2
		cfg.LowMark = 0.1
		cfg.AdTTL = sim.Microsecond
		m := NewMultiList(cfg)
		pols = append(pols, m)
		return m
	})
	_ = e
	served := 0
	for _, m := range pols {
		served += m.Stats.ClaimsServed
	}
	if served != 0 {
		t.Fatalf("expired ads should not serve claims, served=%d", served)
	}
}

func TestDiffusionSingleProcNoNeighbors(t *testing.T) {
	e := sim.NewEngine(sim.Config{Seed: 1})
	e.Spawn("solo", func(p *sim.Proc) {
		l := mol.New(dmcs.New(p), mol.DefaultConfig())
		d := NewDiffusion(DefaultDiffConfig())
		s := ilb.New(l, ilb.DefaultConfig(ilb.Implicit), d)
		h := l.RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
			s.Compute(10 * sim.Millisecond)
		})
		mp := l.Register(0, 8)
		s.Message(mp, h, nil, 8, 0.01)
		p.Engine().After(sim.Second, func() { s.Stop() })
		s.Run()
		if len(d.Neighbors()) != 0 {
			t.Errorf("solo neighbors = %v", d.Neighbors())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
