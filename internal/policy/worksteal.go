// Package policy provides the dynamic load balancing strategies shipped with
// PREMA: Work Stealing (the paper's featured policy, §4), Diffusion
// (Cybenko, JPDC 1989), and Multi-list Scheduling (Wu, CMU PhD thesis 1993).
// All are asynchronous: they exchange system-tagged messages within small
// processor neighborhoods and never introduce global synchronization.
package policy

import (
	"prema/internal/dmcs"
	"prema/internal/ilb"
	"prema/internal/substrate"
)

// WSConfig tunes the work stealing policy.
type WSConfig struct {
	// MaxObjects caps how many mobile objects migrate per grant. 1 models
	// particularly coarse-grained objects; larger values migrate several
	// finer-grained objects at once (paper footnote 2).
	MaxObjects int
	// KeepFactor is the fraction of the victim's estimated load it must
	// retain; a victim donates only down to KeepFactor*load, and never below
	// one queued unit.
	KeepFactor float64
	// Backoff is how long a requester rests after a full unsuccessful sweep
	// of potential victims.
	Backoff substrate.Time
	// RequestSize/payload bytes for request and control messages.
	RequestSize int
	// AutoWaterMark, when true, continuously re-derives the scheduler's
	// water-mark from measured steal response latencies: the threshold
	// becomes Safety x the smoothed round-trip time, so requests go out
	// early enough that replacement work arrives before the processor runs
	// dry — the platform-determined threshold the paper proposes as future
	// work (§4.2).
	AutoWaterMark bool
	// Safety is the AutoWaterMark multiplier (default 3).
	Safety float64
}

// DefaultWSConfig returns the work stealing configuration used in the
// experiments.
func DefaultWSConfig() WSConfig {
	return WSConfig{
		MaxObjects:  4,
		KeepFactor:  0.5,
		Backoff:     250 * substrate.Millisecond,
		RequestSize: 32,
	}
}

// WSStats counts work stealing activity on one processor.
type WSStats struct {
	Requests       int
	GrantsReceived int
	GrantsServed   int
	NacksReceived  int
	NacksServed    int
	ObjectsSent    int
}

// WorkStealing implements the paper's featured ILB policy: an underloaded
// processor asks a partner for work; the partner migrates mobile objects or
// answers with a negative acknowledgement, in which case the requester picks
// another partner. All traffic is system-tagged, so in implicit mode victims
// answer from the polling thread in the middle of coarse work units — the
// paper's key mechanism.
type WorkStealing struct {
	cfg WSConfig

	partner      int
	outstanding  bool
	nacksInSweep int
	backoffUntil substrate.Time
	requestedAt  substrate.Time
	rttEWMA      float64 // smoothed steal response latency, seconds

	hRequest dmcs.HandlerID
	hGrant   dmcs.HandlerID
	hNack    dmcs.HandlerID

	Stats WSStats
}

// NewWorkStealing returns a work stealing policy instance (one per
// processor).
func NewWorkStealing(cfg WSConfig) *WorkStealing {
	if cfg.MaxObjects <= 0 {
		cfg.MaxObjects = 1
	}
	return &WorkStealing{cfg: cfg}
}

// Name implements ilb.Policy.
func (w *WorkStealing) Name() string { return "worksteal" }

type stealRequest struct {
	Load float64 // requester's estimated local load (hinted seconds)
}

// Setup implements ilb.Policy.
func (w *WorkStealing) Setup(s *ilb.Scheduler) {
	me := s.Proc().ID()
	n := s.Proc().NumPeers()
	// Initial pairing: partner with the adjacent processor (paper §4:
	// "processors are paired with a single neighbor").
	w.partner = me ^ 1
	if w.partner >= n {
		w.partner = (me + 1) % n
	}
	c := s.Comm()
	w.hRequest = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
		w.serveRequest(s, src, data.(stealRequest))
	})
	w.hGrant = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
		w.Stats.GrantsReceived++
		w.outstanding = false
		w.nacksInSweep = 0
		w.observeRTT(s)
	})
	w.hNack = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
		w.Stats.NacksReceived++
		w.outstanding = false
		w.nacksInSweep++
		w.observeRTT(s)
		w.advancePartner(s)
		if w.nacksInSweep >= s.Proc().NumPeers()-1 {
			// Full unsuccessful sweep: the machine looks empty; rest.
			w.nacksInSweep = 0
			w.backoffUntil = s.Proc().Now() + w.cfg.Backoff
			return
		}
		w.maybeRequest(s)
	})
}

// advancePartner picks the next steal victim after a refusal: a uniformly
// random other processor. Randomization spreads concurrent requesters over
// all potential victims instead of marching them in lock-step onto the same
// one (deterministic via the engine RNG).
func (w *WorkStealing) advancePartner(s *ilb.Scheduler) {
	n := s.Proc().NumPeers()
	if n <= 1 {
		return
	}
	rng := s.Proc().Rand()
	// Redraw on crashed peers (recovery mode only; PeerDown is always false
	// otherwise, so RNG consumption — and hence determinism — is unchanged
	// in crash-free runs).
	for tries := 0; tries < n; tries++ {
		next := rng.Intn(n - 1)
		if next >= s.Proc().ID() {
			next++
		}
		if !s.PeerDown(next) {
			w.partner = next
			return
		}
	}
}

// maybeRequest issues a steal request if none is outstanding and the policy
// is not backing off.
func (w *WorkStealing) maybeRequest(s *ilb.Scheduler) {
	if w.outstanding || s.Stopped() || s.Proc().NumPeers() <= 1 {
		return
	}
	if s.Proc().Now() < w.backoffUntil {
		return
	}
	if s.PeerDown(w.partner) {
		w.advancePartner(s)
		if s.PeerDown(w.partner) {
			return // no live victim to ask
		}
	}
	w.outstanding = true
	w.Stats.Requests++
	w.requestedAt = s.Proc().Now()
	s.Comm().SendTagged(w.partner, w.hRequest, stealRequest{Load: s.Load()}, w.cfg.RequestSize, substrate.TagSystem)
}

// observeRTT folds one steal response latency into the smoothed estimate
// and, in AutoWaterMark mode, re-derives the scheduler's threshold from it.
func (w *WorkStealing) observeRTT(s *ilb.Scheduler) {
	sample := (s.Proc().Now() - w.requestedAt).Seconds()
	if w.rttEWMA == 0 {
		w.rttEWMA = sample
	} else {
		w.rttEWMA = 0.8*w.rttEWMA + 0.2*sample
	}
	if !w.cfg.AutoWaterMark {
		return
	}
	safety := w.cfg.Safety
	if safety <= 0 {
		safety = 3
	}
	s.SetWaterMark(safety * w.rttEWMA)
}

// RTT returns the smoothed steal response latency in seconds (0 before any
// response has been observed).
func (w *WorkStealing) RTT() float64 { return w.rttEWMA }

// serveRequest runs at the victim (at a poll in explicit mode; from the
// polling thread mid-unit in implicit mode).
func (w *WorkStealing) serveRequest(s *ilb.Scheduler, src int, req stealRequest) {
	donated := w.donate(s, src, req.Load)
	if donated == 0 {
		w.Stats.NacksServed++
		s.Comm().SendTagged(src, w.hNack, nil, w.cfg.RequestSize, substrate.TagSystem)
		return
	}
	w.Stats.GrantsServed++
	w.Stats.ObjectsSent += donated
	s.Comm().SendTagged(src, w.hGrant, donated, w.cfg.RequestSize, substrate.TagSystem)
}

// donate migrates up to MaxObjects queued objects toward equalizing the two
// loads, returning how many objects moved.
func (w *WorkStealing) donate(s *ilb.Scheduler, dst int, requesterLoad float64) int {
	candidates := s.StealableObjects()
	if len(candidates) <= 1 {
		// Keep at least one queued unit locally: a victim that gives away
		// its whole queue just swaps roles with the requester.
		return 0
	}
	myLoad := s.Load()
	target := (myLoad - requesterLoad) / 2
	keep := myLoad * w.cfg.KeepFactor
	if target <= 0 {
		return 0
	}
	moved := 0
	var sent float64
	for _, obj := range candidates {
		if moved >= w.cfg.MaxObjects || moved >= len(candidates)-1 {
			break
		}
		wgt := s.QueuedWeight(obj)
		if myLoad-sent-wgt < keep && moved > 0 {
			break
		}
		if err := s.Mol().Migrate(obj.MP, dst); err != nil {
			continue
		}
		sent += wgt
		moved++
		if sent >= target {
			break
		}
	}
	return moved
}

// OnProcDown implements ilb.DownAware: a crashed processor can neither
// answer our outstanding steal request nor serve as a future victim.
func (w *WorkStealing) OnProcDown(s *ilb.Scheduler, dead int) {
	if w.outstanding && w.partner == dead {
		// The victim died holding our request: treat it as a refusal (without
		// an RTT sample — the response never existed) and move on.
		w.outstanding = false
		w.nacksInSweep++
	}
	if w.partner == dead {
		w.advancePartner(s)
	}
	w.maybeRequest(s)
}

// OnLowLoad implements ilb.Policy.
func (w *WorkStealing) OnLowLoad(s *ilb.Scheduler) { w.maybeRequest(s) }

// OnIdle implements ilb.Policy.
func (w *WorkStealing) OnIdle(s *ilb.Scheduler) { w.maybeRequest(s) }

// OnPoll implements ilb.Policy.
func (w *WorkStealing) OnPoll(s *ilb.Scheduler) {}
