package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"

	"prema/internal/substrate"
)

// This file renders a Collector as Chrome trace_event JSON — the format
// Perfetto (https://ui.perfetto.dev) and chrome://tracing load directly.
// Every processor becomes a thread (tid) of one process: category spans are
// complete ("X") events, so the per-processor compute/idle/messaging phase
// structure reads as a timeline; work units are nested "X" events named
// "unit"; messages, forwards, policy decisions and retransmissions are
// instant ("i") events; migrations additionally emit flow ("s"/"f") pairs so
// the viewer draws an arrow from the object's old host to its new one.
//
// Output is written with deterministic formatting: same-seed simulator runs
// produce byte-identical trace files (guarded by CI's cmp step).

// chromeTS renders a substrate time (ns) as Chrome's microsecond timestamps
// with nanosecond resolution preserved.
func chromeTS(t substrate.Time) string {
	micros := t / 1000
	frac := t % 1000
	if frac == 0 {
		return fmt.Sprintf("%d", micros)
	}
	return fmt.Sprintf("%d.%03d", micros, frac)
}

// flowKey pairs migrate-out with migrate-in events per object in time order.
type flowEvent struct {
	proc int
	t    substrate.Time
	key  int64
	out  bool
}

// WriteChrome writes the whole trace as Chrome trace_event JSON.
func (c *Collector) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}

	// Thread metadata: one named row per processor, sorted by tid.
	for i, r := range c.recs {
		emit(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"p%03d"}}`, i, r.proc)
	}

	var flows []flowEvent
	for i, r := range c.recs {
		for _, e := range r.Events() {
			switch e.Kind {
			case EvSpan:
				emit(`{"name":%q,"cat":"phase","ph":"X","ts":%s,"dur":%s,"pid":0,"tid":%d}`,
					substrate.Category(e.A).String(), chromeTS(e.T-e.Dur), chromeTS(e.Dur), i)
			case EvUnitEnd:
				emit(`{"name":"unit","cat":"unit","ph":"X","ts":%s,"dur":%s,"pid":0,"tid":%d,"args":{"obj":"%d:%d","origin":%d,"seq":%d}}`,
					chromeTS(e.T-e.Dur), chromeTS(e.Dur), i, KeyHome(e.A), KeyIndex(e.A), e.B, e.C)
			case EvUnitBegin:
				// The matching EvUnitEnd carries the interval; the begin
				// instant is redundant in the timeline view.
			case EvSend:
				emit(`{"name":"send","cat":"msg","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d,"args":{"dst":%d,"tag":%d,"bytes":%d}}`,
					chromeTS(e.T), i, e.A, e.B, e.C)
			case EvRecv:
				emit(`{"name":"recv","cat":"msg","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d,"args":{"src":%d,"tag":%d,"bytes":%d}}`,
					chromeTS(e.T), i, e.A, e.B, e.C)
			case EvForward:
				emit(`{"name":"forward","cat":"mol","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d,"args":{"next":%d,"hops":%d,"bytes":%d}}`,
					chromeTS(e.T), i, e.A, e.B, e.C)
			case EvMigrateOut:
				emit(`{"name":"migrate-out","cat":"mol","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d,"args":{"to":%d,"obj":"%d:%d","bytes":%d}}`,
					chromeTS(e.T), i, e.A, KeyHome(e.B), KeyIndex(e.B), e.C)
				flows = append(flows, flowEvent{proc: i, t: e.T, key: e.B, out: true})
			case EvMigrateIn:
				emit(`{"name":"migrate-in","cat":"mol","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d,"args":{"from":%d,"obj":"%d:%d","bytes":%d}}`,
					chromeTS(e.T), i, e.A, KeyHome(e.B), KeyIndex(e.B), e.C)
				flows = append(flows, flowEvent{proc: i, t: e.T, key: e.B, out: false})
			case EvPolicy:
				emit(`{"name":"policy","cat":"ilb","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d,"args":{"decision":%q}}`,
					chromeTS(e.T), i, PolicyName(e.A))
			case EvRetransmit:
				emit(`{"name":"retransmit","cat":"rel","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d,"args":{"peer":%d,"tag":%d,"seq":%d}}`,
					chromeTS(e.T), i, e.A, e.B, e.C)
			case EvStop:
				emit(`{"name":"stop-broadcast","cat":"app","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d,"args":{"peers":%d}}`,
					chromeTS(e.T), i, e.A)
			case EvCheckpoint:
				emit(`{"name":"checkpoint","cat":"recov","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d,"args":{"objects":%d,"bytes":%d}}`,
					chromeTS(e.T), i, e.A, e.B)
			case EvSuspect:
				emit(`{"name":"suspect","cat":"recov","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d,"args":{"proc":%d,"coordinator":%d}}`,
					chromeTS(e.T), i, e.A, e.B)
			case EvRepair:
				emit(`{"name":"repair","cat":"recov","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d,"args":{"obj":"%d:%d","from":%d,"bytes":%d}}`,
					chromeTS(e.T), i, KeyHome(e.A), KeyIndex(e.A), e.B, e.C)
			case EvReplay:
				emit(`{"name":"replay","cat":"recov","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d,"args":{"obj":"%d:%d","origin":%d,"seq":%d}}`,
					chromeTS(e.T), i, KeyHome(e.A), KeyIndex(e.A), e.B, e.C)
			}
		}
	}

	// Migration arrows: pair the k-th out with the k-th in per object key,
	// in time order (objects migrate sequentially, so this pairing is exact
	// on the simulator and a faithful best effort under real clocks).
	sort.SliceStable(flows, func(a, b int) bool {
		if flows[a].t != flows[b].t {
			return flows[a].t < flows[b].t
		}
		return flows[a].proc < flows[b].proc
	})
	pendingOut := make(map[int64][]flowEvent)
	id := 0
	for _, f := range flows {
		if f.out {
			pendingOut[f.key] = append(pendingOut[f.key], f)
			continue
		}
		outs := pendingOut[f.key]
		if len(outs) == 0 {
			continue // in without a retained out (ring overflow)
		}
		o := outs[0]
		pendingOut[f.key] = outs[1:]
		id++
		emit(`{"name":"migration","cat":"mol","ph":"s","id":%d,"ts":%s,"pid":0,"tid":%d}`,
			id, chromeTS(o.t), o.proc)
		emit(`{"name":"migration","cat":"mol","ph":"f","bp":"e","id":%d,"ts":%s,"pid":0,"tid":%d}`,
			id, chromeTS(f.t), f.proc)
	}

	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeFile writes the Chrome trace to path.
func (c *Collector) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
