package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"prema/internal/stats"
	"prema/internal/substrate"
)

// Hist is a fixed-bucket histogram: bounded memory however many samples are
// observed, with P50/P95/P99 estimated by linear interpolation inside the
// owning bucket. Bounds are upper bucket edges; observations above the last
// bound land in an overflow bucket whose quantiles report the observed max.
type Hist struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // len(Bounds)+1, last = overflow
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// NewHist builds a histogram with the given ascending upper bucket bounds.
func NewHist(bounds ...float64) *Hist {
	return &Hist{Bounds: bounds, Counts: make([]uint64, len(bounds)+1)}
}

// Observe adds one sample.
func (h *Hist) Observe(v float64) {
	i := sort.SearchFloat64s(h.Bounds, v)
	h.Counts[i]++
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if h.Count == 0 || v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
}

// Mean returns the sample mean (0 for an empty histogram).
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the bucket holding the target rank, clamped to the observed
// min/max.
func (h *Hist) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo := h.Min
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			hi := h.Max
			if i < len(h.Bounds) && h.Bounds[i] < hi {
				hi = h.Bounds[i]
			}
			if lo < h.Min {
				lo = h.Min
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(n)
			v := lo + (hi-lo)*frac
			return math.Max(h.Min, math.Min(h.Max, v))
		}
		cum = next
	}
	return h.Max
}

// PerProcSummary summarizes one per-processor quantity (exact values, one
// per processor) with percentiles computed by internal/stats.
type PerProcSummary struct {
	Total float64 `json:"total"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

func summarize(xs []float64) PerProcSummary {
	var total float64
	for _, x := range xs {
		total += x
	}
	return PerProcSummary{
		Total: total,
		Mean:  stats.Mean(xs),
		P50:   stats.P50(xs),
		P95:   stats.P95(xs),
		P99:   stats.P99(xs),
		Max:   stats.Max(xs),
	}
}

// Registry is the aggregated metrics view of a trace: monotonic counters,
// fixed-bucket histograms, and per-processor category-time summaries. Build
// one with Summarize; render with Text or WriteJSON.
type Registry struct {
	// Counters holds machine-wide event counts (per kind, drops, totals).
	Counters map[string]int64 `json:"counters"`
	// Hists holds the fixed-bucket histograms (unit durations, forwarding
	// hops, message sizes).
	Hists map[string]*Hist `json:"histograms"`
	// Categories summarizes per-processor seconds spent in each accounting
	// category (from the recorded spans), percentiles across processors.
	Categories map[string]PerProcSummary `json:"categories"`
	// Procs is the machine size.
	Procs int `json:"procs"`
	// MakespanS is the run's makespan in seconds (0 if unknown).
	MakespanS float64 `json:"makespan_s"`
}

// Summarize aggregates a collector into a metrics registry. makespan may be
// zero when unknown.
func Summarize(c *Collector, makespan substrate.Time) *Registry {
	reg := &Registry{
		Counters:   map[string]int64{},
		Hists:      map[string]*Hist{},
		Categories: map[string]PerProcSummary{},
		Procs:      c.NumProcs(),
		MakespanS:  makespan.Seconds(),
	}
	unitSec := NewHist(0.001, 0.01, 0.1, 0.5, 1, 2, 5, 10, 20, 50, 100)
	hops := NewHist(1, 2, 3, 4, 6, 8, 12, 16, 24, 32)
	sendBytes := NewHist(16, 64, 256, 1024, 4096, 16384, 65536)
	var kindTotals [NumKinds]int64
	catSecs := make([][]float64, substrate.NumCategories)
	for i := range catSecs {
		catSecs[i] = make([]float64, c.NumProcs())
	}
	for i, r := range c.recs {
		for _, e := range r.Events() {
			kindTotals[e.Kind]++
			switch e.Kind {
			case EvSpan:
				if cat := substrate.Category(e.A); cat >= 0 && cat < substrate.NumCategories {
					catSecs[cat][i] += e.Dur.Seconds()
				}
			case EvUnitEnd:
				unitSec.Observe(e.Dur.Seconds())
			case EvForward:
				hops.Observe(float64(e.B))
			case EvSend:
				sendBytes.Observe(float64(e.C))
			}
		}
	}
	for k, n := range kindTotals {
		reg.Counters["ev_"+strings.ReplaceAll(Kind(k).String(), "-", "_")+"_total"] = n
	}
	reg.Counters["trace_events_total"] = int64(c.Total())
	reg.Counters["trace_dropped_total"] = int64(c.Dropped())
	reg.Hists["unit_seconds"] = unitSec
	reg.Hists["forward_hops"] = hops
	reg.Hists["send_bytes"] = sendBytes
	for cat := substrate.Category(0); cat < substrate.NumCategories; cat++ {
		if s := summarize(catSecs[cat]); s.Total > 0 {
			reg.Categories[strings.ToLower(cat.String())+"_s"] = s
		}
	}
	return reg
}

// Text renders the registry as fixed-width tables.
func (reg *Registry) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace metrics: procs=%d makespan=%.3fs events=%d dropped=%d\n\n",
		reg.Procs, reg.MakespanS, reg.Counters["trace_events_total"], reg.Counters["trace_dropped_total"])

	ct := stats.NewTable("counter", "value")
	for _, k := range sortedKeys(reg.Counters) {
		ct.AddRow(k, fmt.Sprintf("%d", reg.Counters[k]))
	}
	b.WriteString(ct.String())
	b.WriteByte('\n')

	ht := stats.NewTable("histogram", "count", "mean", "p50", "p95", "p99", "max")
	for _, k := range sortedKeys(reg.Hists) {
		h := reg.Hists[k]
		ht.AddRow(k, fmt.Sprintf("%d", h.Count),
			fmt.Sprintf("%.4g", h.Mean()),
			fmt.Sprintf("%.4g", h.Quantile(0.50)),
			fmt.Sprintf("%.4g", h.Quantile(0.95)),
			fmt.Sprintf("%.4g", h.Quantile(0.99)),
			fmt.Sprintf("%.4g", h.Max))
	}
	b.WriteString(ht.String())
	b.WriteByte('\n')

	kt := stats.NewTable("category (s/proc)", "total", "mean", "p50", "p95", "p99", "max")
	for _, k := range sortedKeys(reg.Categories) {
		s := reg.Categories[k]
		kt.AddRow(k, s.Total, s.Mean, s.P50, s.P95, s.P99, s.Max)
	}
	b.WriteString(kt.String())
	return b.String()
}

// WriteJSON renders the registry as indented JSON.
func (reg *Registry) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(reg, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// WriteFile writes the registry to path: JSON when the path ends in .json,
// the text rendering otherwise.
func (reg *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = reg.WriteJSON(f)
	} else {
		_, err = io.WriteString(f, reg.Text())
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SuffixPath derives a per-run output path from a base path by inserting
// suffix before the extension: SuffixPath("t.json", "fig3") = "t.fig3.json".
func SuffixPath(path, suffix string) string {
	if i := strings.LastIndex(path, "."); i > strings.LastIndex(path, "/") {
		return path[:i] + "." + suffix + path[i:]
	}
	return path + "." + suffix
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
