package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"prema/internal/substrate"
)

// TestHotPathZeroAlloc is the guard behind the "<1% overhead, leave it on"
// design: recording an event must not allocate, whatever mix of spans,
// instants and intervals the layers emit, including after the ring wraps.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRecorder(0, 1<<10)
	var tick substrate.Time
	if allocs := testing.AllocsPerRun(5000, func() {
		r.Instant(EvSend, tick, 1, 2, 3)
		r.Span(substrate.CatCompute, tick, tick+7)
		r.Interval(EvUnitEnd, tick, tick+9, 4, 5, 6)
		tick += 10
	}); allocs != 0 {
		t.Fatalf("trace hot path allocates %.1f times per event batch, want 0", allocs)
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Instant(EvSend, 1, 2, 3, 4)
	r.Span(substrate.CatIdle, 0, 5)
	r.Interval(EvUnitEnd, 0, 5, 1, 2, 3)
	if r.Total() != 0 || r.Len() != 0 || r.Dropped() != 0 {
		t.Error("nil recorder reported non-zero state")
	}
}

func TestRingOverflowDropsOldest(t *testing.T) {
	r := NewRecorder(0, 6) // rounds up to 8
	for i := 0; i < 20; i++ {
		r.Instant(EvSend, substrate.Time(i), int64(i), 0, 0)
	}
	if got := r.Total(); got != 20 {
		t.Errorf("Total = %d, want 20", got)
	}
	if got := r.Len(); got != 8 {
		t.Errorf("Len = %d, want 8 (capacity rounded up from 6)", got)
	}
	if got := r.Dropped(); got != 12 {
		t.Errorf("Dropped = %d, want 12", got)
	}
	evs := r.Events()
	for i, e := range evs {
		if want := int64(12 + i); e.A != want {
			t.Fatalf("event %d has A=%d, want %d (oldest must be dropped first)", i, e.A, want)
		}
	}
}

// TestOverflowSurfacedInMetrics: a truncated trace must be visible in the
// metrics registry, never mistaken for a complete one.
func TestOverflowSurfacedInMetrics(t *testing.T) {
	c := NewCollector(4)
	r := c.attach(0)
	for i := 0; i < 100; i++ {
		r.Instant(EvSend, substrate.Time(i), 0, 0, 64)
	}
	reg := Summarize(c, 100)
	if got := reg.Counters["trace_events_total"]; got != 100 {
		t.Errorf("trace_events_total = %d, want 100", got)
	}
	if got := reg.Counters["trace_dropped_total"]; got != 96 {
		t.Errorf("trace_dropped_total = %d, want 96", got)
	}
}

func TestSpanCoalescing(t *testing.T) {
	r := NewRecorder(0, 16)
	r.Span(substrate.CatCompute, 0, 10)
	r.Span(substrate.CatCompute, 10, 25) // contiguous, same cat: extends
	r.Span(substrate.CatCompute, 30, 40) // gap: new span
	r.Span(substrate.CatIdle, 40, 50)    // different cat: new span
	r.Span(substrate.CatIdle, 50, 50)    // zero length: dropped
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(evs), evs)
	}
	if evs[0].T != 25 || evs[0].Dur != 25 {
		t.Errorf("coalesced span = end %d dur %d, want end 25 dur 25", evs[0].T, evs[0].Dur)
	}
	if evs[1].T != 40 || evs[1].Dur != 10 {
		t.Errorf("gapped span = end %d dur %d, want end 40 dur 10", evs[1].T, evs[1].Dur)
	}
}

func TestObjKeyRoundTrip(t *testing.T) {
	for _, tc := range [][2]int{{0, 0}, {1, 2}, {127, 1 << 20}, {4095, 0x7fffffff}} {
		key := ObjKey(tc[0], tc[1])
		if KeyHome(key) != tc[0] || KeyIndex(key) != tc[1] {
			t.Errorf("ObjKey(%d,%d) round-trips to (%d,%d)", tc[0], tc[1], KeyHome(key), KeyIndex(key))
		}
	}
}

func TestKindAndPolicyNames(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Error("out-of-range kind must render as unknown")
	}
	for _, code := range []int64{PolLowLoad, PolIdle, PolPollWake} {
		if PolicyName(code) == "unknown" {
			t.Errorf("policy code %d has no name", code)
		}
	}
}

func TestSuffixPath(t *testing.T) {
	cases := [][3]string{
		{"t.json", "fig3", "t.fig3.json"},
		{"out/trace.json", "fig3.none", "out/trace.fig3.none.json"},
		{"plain", "x", "plain.x"},
		{"a.b/c", "x", "a.b/c.x"},
	}
	for _, c := range cases {
		if got := SuffixPath(c[0], c[1]); got != c[2] {
			t.Errorf("SuffixPath(%q, %q) = %q, want %q", c[0], c[1], got, c[2])
		}
	}
}

func TestHistQuantiles(t *testing.T) {
	h := NewHist(1, 10, 100)
	for _, v := range []float64{0.5, 2, 3, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count != 6 || h.Min != 0.5 || h.Max != 500 {
		t.Fatalf("hist state: count=%d min=%g max=%g", h.Count, h.Min, h.Max)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < h.Min || v > h.Max {
			t.Errorf("Quantile(%g) = %g outside [%g, %g]", q, v, h.Min, h.Max)
		}
	}
	if m := h.Mean(); m != (0.5+2+3+5+50+500)/6 {
		t.Errorf("Mean = %g", m)
	}
	empty := NewHist(1)
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram quantile/mean must be 0")
	}
}

// TestChromeOutput validates the exporter end to end: the JSON parses, the
// processor rows are named, and migration out/in pairs become flow arrows.
func TestChromeOutput(t *testing.T) {
	c := NewCollector(64)
	p0, p1 := c.attach(0), c.attach(1)
	p0.Span(substrate.CatCompute, 0, substrate.Millisecond)
	p0.Instant(EvMigrateOut, substrate.Millisecond, 1, ObjKey(0, 3), 4096)
	p1.Instant(EvMigrateIn, 2*substrate.Millisecond, 0, ObjKey(0, 3), 4096)
	p1.Interval(EvUnitEnd, 2*substrate.Millisecond, 5*substrate.Millisecond, ObjKey(0, 3), 1, 0)
	p1.Instant(EvPolicy, 5*substrate.Millisecond, PolIdle, 0, 0)

	var buf bytes.Buffer
	if err := c.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v\n%s", err, buf.String())
	}
	count := map[string]int{}
	for _, e := range parsed.TraceEvents {
		count[e.Name+"/"+e.Ph]++
	}
	for name, want := range map[string]int{
		"thread_name/M": 2,
		"Computation/X": 1,
		"migrate-out/i": 1,
		"migrate-in/i":  1,
		"unit/X":        1,
		"policy/i":      1,
		"migration/s":   1,
		"migration/f":   1,
	} {
		if count[name] != want {
			t.Errorf("event %s: got %d, want %d (all: %v)", name, count[name], want, count)
		}
	}
}

func TestChromeTS(t *testing.T) {
	if got := chromeTS(1500); got != "1.500" {
		t.Errorf("chromeTS(1500ns) = %q, want 1.500", got)
	}
	if got := chromeTS(2 * substrate.Millisecond); got != "2000" {
		t.Errorf("chromeTS(2ms) = %q, want 2000", got)
	}
}
