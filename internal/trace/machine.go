package trace

import (
	"math/rand"

	"prema/internal/substrate"
)

// Machine decorates an inner substrate.Machine so every endpoint handed to a
// processor body records trace events. Wrap it outermost (outside
// internal/faulty, if both are in play) so the stream reflects what the
// application actually observed.
//
// Tracing is observational: no substrate time is charged for recording, so a
// traced simulator run has byte-identical makespan and accounts to the
// untraced run (guarded by a test in internal/bench).
type Machine struct {
	inner substrate.Machine
	col   *Collector
}

// Wrap returns a tracing view of m recording into col.
func Wrap(m substrate.Machine, col *Collector) *Machine {
	return &Machine{inner: m, col: col}
}

var _ substrate.Machine = (*Machine)(nil)

// Spawn implements substrate.Machine; the body runs against a tracing
// endpoint.
func (t *Machine) Spawn(name string, body func(substrate.Endpoint)) {
	rec := t.col.attach(len(t.col.recs))
	t.inner.Spawn(name, func(ep substrate.Endpoint) {
		body(&Endpoint{inner: ep, rec: rec})
	})
}

// Run implements substrate.Machine.
func (t *Machine) Run() error { return t.inner.Run() }

// Stop implements substrate.Machine.
func (t *Machine) Stop() { t.inner.Stop() }

// NumProcs implements substrate.Machine.
func (t *Machine) NumProcs() int { return t.inner.NumProcs() }

// Now implements substrate.Machine.
func (t *Machine) Now() substrate.Time { return t.inner.Now() }

// Makespan implements substrate.Machine.
func (t *Machine) Makespan() substrate.Time { return t.inner.Makespan() }

// Account implements substrate.Machine.
func (t *Machine) Account(i int) *substrate.Account { return t.inner.Account(i) }

// Collector returns the collector recording this machine's events.
func (t *Machine) Collector() *Collector { return t.col }

// Unwrap returns the decorated machine, so callers can reach an inner
// decorator (e.g. internal/faulty's rejoin hook) through the tracing layer.
func (t *Machine) Unwrap() substrate.Machine { return t.inner }

// Endpoint decorates one processor's substrate.Endpoint: every operation
// that consumes time records a category span, and message movement records
// send/recv instants. Layer-level events (forwards, migrations, work units,
// policy decisions) are recorded by the layers themselves through Of.
type Endpoint struct {
	inner substrate.Endpoint
	rec   *Recorder
}

var _ substrate.Endpoint = (*Endpoint)(nil)
var _ hasRecorder = (*Endpoint)(nil)

// TraceRecorder exposes the recorder to Of.
func (e *Endpoint) TraceRecorder() *Recorder { return e.rec }

// Inner returns the wrapped endpoint (for tests and backend-specific use).
func (e *Endpoint) Inner() substrate.Endpoint { return e.inner }

// ID implements substrate.Endpoint.
func (e *Endpoint) ID() int { return e.inner.ID() }

// Name implements substrate.Endpoint.
func (e *Endpoint) Name() string { return e.inner.Name() }

// NumPeers implements substrate.Endpoint.
func (e *Endpoint) NumPeers() int { return e.inner.NumPeers() }

// Now implements substrate.Clock.
func (e *Endpoint) Now() substrate.Time { return e.inner.Now() }

// Rand implements substrate.Endpoint.
func (e *Endpoint) Rand() *rand.Rand { return e.inner.Rand() }

// Account implements substrate.Endpoint.
func (e *Endpoint) Account() *substrate.Account { return e.inner.Account() }

// Charge implements substrate.Endpoint. Charged (re-attributed) time has no
// interval of its own, so no span is recorded.
func (e *Endpoint) Charge(cat substrate.Category, d substrate.Time) { e.inner.Charge(cat, d) }

// Advance implements substrate.Endpoint, recording the consumed interval as
// a category span.
func (e *Endpoint) Advance(d substrate.Time, cat substrate.Category) {
	t0 := e.inner.Now()
	e.inner.Advance(d, cat)
	e.rec.Span(cat, t0, e.inner.Now())
}

// Send implements substrate.Endpoint, recording the send CPU span and an
// EvSend instant. The message fields are captured before the inner send: on
// the real-concurrency backend the channel handoff transfers ownership.
func (e *Endpoint) Send(m *substrate.Msg, cat substrate.Category) {
	dst, tag, size := m.Dst, m.Tag, m.Size
	t0 := e.inner.Now()
	e.inner.Send(m, cat)
	t1 := e.inner.Now()
	e.rec.Span(cat, t0, t1)
	e.rec.Instant(EvSend, t1, int64(dst), int64(tag), int64(size))
}

// InboxLen implements substrate.Endpoint.
func (e *Endpoint) InboxLen() int { return e.inner.InboxLen() }

// HasMsg implements substrate.Endpoint.
func (e *Endpoint) HasMsg(tag int) bool { return e.inner.HasMsg(tag) }

// TryRecv implements substrate.Endpoint, recording the receive CPU span and
// an EvRecv instant when a message is popped.
func (e *Endpoint) TryRecv(cat substrate.Category) *substrate.Msg {
	t0 := e.inner.Now()
	m := e.inner.TryRecv(cat)
	t1 := e.inner.Now()
	e.rec.Span(cat, t0, t1)
	if m != nil {
		e.rec.Instant(EvRecv, t1, int64(m.Src), int64(m.Tag), int64(m.Size))
	}
	return m
}

// TryRecvTag implements substrate.Endpoint.
func (e *Endpoint) TryRecvTag(tag int, cat substrate.Category) *substrate.Msg {
	t0 := e.inner.Now()
	m := e.inner.TryRecvTag(tag, cat)
	t1 := e.inner.Now()
	e.rec.Span(cat, t0, t1)
	if m != nil {
		e.rec.Instant(EvRecv, t1, int64(m.Src), int64(m.Tag), int64(m.Size))
	}
	return m
}

// Recv implements substrate.Endpoint via the traced WaitMsg + TryRecv pair,
// matching the substrate contract's attribution (wait to waitCat, receive
// overhead to CatMessaging).
func (e *Endpoint) Recv(waitCat substrate.Category) *substrate.Msg {
	e.WaitMsg(waitCat)
	return e.TryRecv(substrate.CatMessaging)
}

// WaitMsg implements substrate.Endpoint, recording the blocked interval.
func (e *Endpoint) WaitMsg(cat substrate.Category) {
	t0 := e.inner.Now()
	e.inner.WaitMsg(cat)
	e.rec.Span(cat, t0, e.inner.Now())
}

// WaitMsgFor implements substrate.Endpoint, recording the blocked interval.
func (e *Endpoint) WaitMsgFor(d substrate.Time, cat substrate.Category) bool {
	t0 := e.inner.Now()
	ok := e.inner.WaitMsgFor(d, cat)
	e.rec.Span(cat, t0, e.inner.Now())
	return ok
}
