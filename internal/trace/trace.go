// Package trace is PREMA's low-overhead event tracing and metrics subsystem.
// It sits at the substrate seam — the same decorator position internal/faulty
// occupies — so the whole stack (dmcs, mol, ilb, core) emits one logical
// event stream on both backends: on the deterministic simulator the stream is
// virtual-time-stamped and byte-identical for a given seed; on the
// real-concurrency machine it is wall-clock-stamped.
//
// The design keeps the hot path allocation-free: every endpoint owns a
// fixed-capacity power-of-two ring of value-typed Events, written in place
// (oldest events are overwritten once the ring is full; the drop count is
// surfaced in the metrics registry). Recording is a couple of stores — cheap
// enough to leave on during production runs, which is the property the
// paper's "<1% runtime overhead" claim (§5) is about.
//
// Two exporters read a Collector after the run: a Chrome trace_event JSON
// writer (chrome.go, loadable in Perfetto / chrome://tracing for
// per-processor compute/idle/messaging timelines with migration arrows) and
// an aggregated metrics registry (metrics.go: counters plus fixed-bucket
// histograms with P50/P95/P99).
package trace

import "prema/internal/substrate"

// Kind discriminates trace event types.
type Kind uint8

// Event kinds. The A/B/C argument meanings are per kind; see the constants.
const (
	// EvSpan is a contiguous interval of processor time attributed to one
	// accounting category. A = substrate.Category, T = span end, Dur = span
	// length. Adjacent same-category spans are coalesced at record time.
	EvSpan Kind = iota
	// EvSend is a message leaving this processor. A=dst, B=tag, C=bytes.
	EvSend
	// EvRecv is a message consumed by this processor. A=src, B=tag, C=bytes.
	EvRecv
	// EvForward is a mol envelope relayed toward an object's current host.
	// A=next hop, B=hops so far, C=bytes.
	EvForward
	// EvMigrateOut is a mobile object leaving this processor.
	// A=dst, B=object key (ObjKey), C=bytes.
	EvMigrateOut
	// EvMigrateIn is a mobile object installed on this processor.
	// A=src, B=object key (ObjKey), C=bytes.
	EvMigrateIn
	// EvUnitBegin marks a work-unit handler starting.
	// A=object key, B=origin processor, C=per-(origin,object) sequence.
	EvUnitBegin
	// EvUnitEnd marks a work-unit handler finishing; Dur is the unit's
	// elapsed substrate time. A/B/C as EvUnitBegin.
	EvUnitEnd
	// EvPolicy is a load balancing policy decision point firing.
	// A = policy decision code (PolLowLoad, PolIdle, PolPollWake).
	EvPolicy
	// EvRetransmit is a reliable-mode data retransmission.
	// A=peer, B=tag, C=sequence number.
	EvRetransmit
	// EvStop is the termination broadcast being sent. A = peers notified.
	EvStop
	// EvCheckpoint is one crash-recovery checkpoint round completing on this
	// processor. A=objects snapshotted, B=bytes.
	EvCheckpoint
	// EvSuspect is a failure-detector down verdict surfacing on this
	// processor. A=suspected processor, B=1 if this processor is the
	// recovery coordinator for the verdict, else 0.
	EvSuspect
	// EvRepair is an orphaned object re-installed from its checkpoint.
	// A=object key (ObjKey), B=previous (dead) host, C=bytes.
	EvRepair
	// EvReplay is a logged envelope re-sent by the recovery coordinator.
	// A=object key (ObjKey), B=origin processor, C=sequence number.
	EvReplay

	// NumKinds is the number of event kinds.
	NumKinds
)

var kindNames = [NumKinds]string{
	"span", "send", "recv", "forward", "migrate-out", "migrate-in",
	"unit-begin", "unit-end", "policy", "retransmit", "stop-broadcast",
	"checkpoint", "suspect", "repair", "replay",
}

// String returns the kind's wire name (also used in Chrome trace output).
func (k Kind) String() string {
	if k >= NumKinds {
		return "unknown"
	}
	return kindNames[k]
}

// Policy decision codes carried in EvPolicy's A argument.
const (
	// PolLowLoad: the load crossed below the water-mark (explicit mode) or
	// the processor started its last queued unit (implicit mode).
	PolLowLoad int64 = iota
	// PolIdle: the processor ran out of local work entirely.
	PolIdle
	// PolPollWake: one wake-up of the implicit-mode polling thread.
	PolPollWake
)

// PolicyName renders a policy decision code.
func PolicyName(code int64) string {
	switch code {
	case PolLowLoad:
		return "low-load"
	case PolIdle:
		return "idle"
	case PolPollWake:
		return "poll-wake"
	default:
		return "unknown"
	}
}

// Event is one recorded trace event. It is a fixed-size value type so the
// ring buffer stores it without indirection and the hot path never
// allocates. Argument meanings depend on Kind.
type Event struct {
	// T is the event timestamp (span end for EvSpan/EvUnitEnd).
	T substrate.Time
	// Dur is the interval length for span-like events, 0 for instants.
	Dur substrate.Time
	// A, B, C are kind-specific arguments.
	A, B, C int64
	// Kind discriminates the event type.
	Kind Kind
}

// ObjKey packs a mobile pointer (home, index) into one int64 trace argument.
func ObjKey(home, index int) int64 {
	return int64(home)<<32 | int64(uint32(index))
}

// KeyHome extracts the home processor from an ObjKey.
func KeyHome(key int64) int { return int(key >> 32) }

// KeyIndex extracts the home-local index from an ObjKey.
func KeyIndex(key int64) int { return int(uint32(key)) }

// Recorder is one processor's event sink: a fixed-capacity ring of events
// plus a running total. All recording methods are safe on a nil receiver (a
// no-op), which is how untraced runs pay nothing at the call sites — layers
// obtain their recorder once via Of and call unconditionally.
//
// A Recorder is owned by its processor's execution context; it is not safe
// for cross-processor sharing. Read it only after the machine's Run returns.
type Recorder struct {
	buf  []Event
	mask uint64
	head uint64 // total events pushed since creation
	proc int
}

// newRecorder builds a recorder with a power-of-two capacity.
func newRecorder(proc, capacity int) *Recorder {
	return &Recorder{buf: make([]Event, capacity), mask: uint64(capacity - 1), proc: proc}
}

// NewRecorder builds a standalone recorder retaining ringCap events (rounded
// up to a power of two; <= 0 selects DefaultRingCap). Normal tracing goes
// through Collector + Wrap; this entry point exists for benchmarks and tests
// that exercise the hot path directly.
func NewRecorder(proc, ringCap int) *Recorder {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	p := 1
	for p < ringCap {
		p <<= 1
	}
	return newRecorder(proc, p)
}

// Proc returns the processor ID this recorder belongs to.
func (r *Recorder) Proc() int { return r.proc }

// Span records a contiguous interval attributed to cat. Zero-length spans
// are dropped; an interval contiguous with the previous recorded event (same
// category, no gap) extends it in place instead of pushing a new event.
func (r *Recorder) Span(cat substrate.Category, start, end substrate.Time) {
	if r == nil || end <= start {
		return
	}
	if r.head > 0 {
		last := &r.buf[(r.head-1)&r.mask]
		if last.Kind == EvSpan && last.A == int64(cat) && last.T == start {
			last.T = end
			last.Dur += end - start
			return
		}
	}
	r.buf[r.head&r.mask] = Event{T: end, Dur: end - start, A: int64(cat), Kind: EvSpan}
	r.head++
}

// Instant records a zero-duration event.
func (r *Recorder) Instant(k Kind, t substrate.Time, a, b, c int64) {
	if r == nil {
		return
	}
	r.buf[r.head&r.mask] = Event{T: t, A: a, B: b, C: c, Kind: k}
	r.head++
}

// Interval records an event spanning [start, end] (work units).
func (r *Recorder) Interval(k Kind, start, end substrate.Time, a, b, c int64) {
	if r == nil {
		return
	}
	r.buf[r.head&r.mask] = Event{T: end, Dur: end - start, A: a, B: b, C: c, Kind: k}
	r.head++
}

// Total returns the number of events recorded over the recorder's lifetime,
// including any that have since been overwritten.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.head
}

// Len returns the number of events currently retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	if r.head < uint64(len(r.buf)) {
		return int(r.head)
	}
	return len(r.buf)
}

// Dropped returns how many events were overwritten by ring overflow
// (oldest-first). It is surfaced by the metrics registry so a truncated
// trace is never mistaken for a complete one.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	if retained := uint64(len(r.buf)); r.head > retained {
		return r.head - retained
	}
	return 0
}

// Events returns the retained events, oldest first. It copies (cold path);
// call it after the run.
func (r *Recorder) Events() []Event {
	n := r.Len()
	out := make([]Event, 0, n)
	start := r.head - uint64(n)
	for i := uint64(0); i < uint64(n); i++ {
		out = append(out, r.buf[(start+i)&r.mask])
	}
	return out
}

// DefaultRingCap is the per-processor ring capacity (events) used when a
// Collector is built with capacity <= 0. At 48 bytes per event this retains
// the last ~3 MiB of activity per processor.
const DefaultRingCap = 1 << 16

// Collector owns the per-processor recorders of one traced machine. Build
// one with NewCollector, wrap the machine with Wrap, run, then export with
// WriteChrome / Summarize.
type Collector struct {
	ringCap int
	recs    []*Recorder
}

// NewCollector builds a collector whose endpoints each get a ring retaining
// ringCap events (rounded up to a power of two; <= 0 selects
// DefaultRingCap).
func NewCollector(ringCap int) *Collector {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	p := 1
	for p < ringCap {
		p <<= 1
	}
	return &Collector{ringCap: p}
}

// attach creates the recorder for the next spawned processor.
func (c *Collector) attach(proc int) *Recorder {
	r := newRecorder(proc, c.ringCap)
	c.recs = append(c.recs, r)
	return r
}

// NumProcs returns the number of attached processors.
func (c *Collector) NumProcs() int { return len(c.recs) }

// Recorder returns processor i's recorder. Read it only after Run.
func (c *Collector) Recorder(i int) *Recorder { return c.recs[i] }

// Total returns the machine-wide number of events recorded (including
// overwritten ones).
func (c *Collector) Total() uint64 {
	var n uint64
	for _, r := range c.recs {
		n += r.Total()
	}
	return n
}

// Dropped returns the machine-wide ring-overflow drop count.
func (c *Collector) Dropped() uint64 {
	var n uint64
	for _, r := range c.recs {
		n += r.Dropped()
	}
	return n
}

// hasRecorder is how layers discover the recorder behind an arbitrary
// substrate.Endpoint without depending on the decorator type.
type hasRecorder interface {
	TraceRecorder() *Recorder
}

// Of returns the trace recorder behind p, or nil when p is not traced (the
// nil recorder's methods are no-ops, so call sites need no guards). Layers
// call Of once at construction and keep the result.
func Of(p substrate.Endpoint) *Recorder {
	if h, ok := p.(hasRecorder); ok {
		return h.TraceRecorder()
	}
	return nil
}
