package mesh

// Decompose splits the domain into nx*ny*nz box subdomains (the regular
// octree-style decomposition the parallel mesher distributes as mobile
// objects; the paper's application decomposes the domain into many more
// subdomains than processors).
func Decompose(domain Box, nx, ny, nz int) []Box {
	s := domain.Size()
	out := make([]Box, 0, nx*ny*nz)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				lo := Vec3{
					domain.Lo.X + s.X*float64(i)/float64(nx),
					domain.Lo.Y + s.Y*float64(j)/float64(ny),
					domain.Lo.Z + s.Z*float64(k)/float64(nz),
				}
				hi := Vec3{
					domain.Lo.X + s.X*float64(i+1)/float64(nx),
					domain.Lo.Y + s.Y*float64(j+1)/float64(ny),
					domain.Lo.Z + s.Z*float64(k+1)/float64(nz),
				}
				out = append(out, Box{Lo: lo, Hi: hi})
			}
		}
	}
	return out
}

// Neighbors returns index pairs of face-adjacent subdomains in the
// decomposition grid, for building the subdomain adjacency graph used by
// repartitioners.
func Neighbors(nx, ny, nz int) [][2]int {
	idx := func(i, j, k int) int { return (k*ny+j)*nx + i }
	var out [][2]int
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				v := idx(i, j, k)
				if i+1 < nx {
					out = append(out, [2]int{v, idx(i+1, j, k)})
				}
				if j+1 < ny {
					out = append(out, [2]int{v, idx(i, j+1, k)})
				}
				if k+1 < nz {
					out = append(out, [2]int{v, idx(i, j, k+1)})
				}
			}
		}
	}
	return out
}
