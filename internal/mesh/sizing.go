package mesh

import "math"

// SizingField prescribes the target edge length h(x) for the mesher: small h
// means fine elements, many tetrahedra, heavy computation.
type SizingField interface {
	// H returns the target edge length at p (must be > 0).
	H(p Vec3) float64
}

// Uniform is a constant sizing field.
type Uniform struct{ Size float64 }

// H implements SizingField.
func (u Uniform) H(Vec3) float64 { return u.Size }

// Crack is the paper's crack-growth scenario: a propagating crack front
// (modeled as a segment from Origin toward Dir, grown to length Length)
// forces strong refinement in a band of radius Radius around it, grading
// from HMin at the crack to HMax far away. As the crack advances across
// subdomain boundaries, the subdomains it enters become drastically heavier
// — the paper's localized, unpredictable workload spike.
type Crack struct {
	Origin Vec3
	Dir    Vec3 // unit direction of propagation
	Length float64
	Radius float64
	HMin   float64
	HMax   float64
}

// Tip returns the current crack tip position.
func (c Crack) Tip() Vec3 { return c.Origin.Add(c.Dir.Scale(c.Length)) }

// distToSegment returns the distance from p to the crack segment.
func (c Crack) distToSegment(p Vec3) float64 {
	ab := c.Dir.Scale(c.Length)
	t := p.Sub(c.Origin).Dot(ab)
	den := ab.Dot(ab)
	if den > 0 {
		t /= den
	} else {
		t = 0
	}
	t = math.Max(0, math.Min(1, t))
	return p.Dist(c.Origin.Add(ab.Scale(t)))
}

// H implements SizingField: graded refinement around the crack.
func (c Crack) H(p Vec3) float64 {
	d := c.distToSegment(p)
	if d >= c.Radius {
		return c.HMax
	}
	frac := d / c.Radius
	return c.HMin + (c.HMax-c.HMin)*frac*frac
}

// Grown returns the crack extended to the given length.
func (c Crack) Grown(length float64) Crack {
	c.Length = length
	return c
}

// EstimateElements estimates how many tetrahedra a mesher honoring the
// sizing field produces inside box b, by midpoint integration of dV/h(x)^3
// over an n^3 sample grid times the tetrahedra-per-cube packing factor (~6
// tets per h-cube). It tracks the real mesher well enough for planning and
// is exact enough for load modeling where running the mesher is too slow.
func EstimateElements(b Box, f SizingField, n int) float64 {
	if n < 1 {
		n = 1
	}
	s := b.Size()
	cell := Vec3{s.X / float64(n), s.Y / float64(n), s.Z / float64(n)}
	cellVol := b.Volume() / float64(n*n*n)
	total := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				p := Vec3{
					b.Lo.X + (float64(i)+0.5)*cell.X,
					b.Lo.Y + (float64(j)+0.5)*cell.Y,
					b.Lo.Z + (float64(k)+0.5)*cell.Z,
				}
				h := f.H(p)
				total += cellVol / (h * h * h)
			}
		}
	}
	return 6 * total
}
