package mesh

import (
	"math"
	"testing"
)

func unitBox() Box { return Box{Lo: Vec3{0, 0, 0}, Hi: Vec3{1, 1, 1}} }

func TestVecOps(t *testing.T) {
	a, b := Vec3{1, 2, 3}, Vec3{4, 5, 6}
	if a.Add(b) != (Vec3{5, 7, 9}) || b.Sub(a) != (Vec3{3, 3, 3}) {
		t.Fatal("add/sub")
	}
	if a.Dot(b) != 32 {
		t.Fatal("dot")
	}
	if (Vec3{1, 0, 0}).Cross(Vec3{0, 1, 0}) != (Vec3{0, 0, 1}) {
		t.Fatal("cross")
	}
	if math.Abs((Vec3{3, 4, 0}).Norm()-5) > 1e-12 {
		t.Fatal("norm")
	}
}

func TestTetVolumeAndArea(t *testing.T) {
	a, b, c, d := Vec3{0, 0, 0}, Vec3{1, 0, 0}, Vec3{0, 1, 0}, Vec3{0, 0, 1}
	if v := TetVolume(a, b, c, d); math.Abs(v-1.0/6) > 1e-12 {
		t.Fatalf("volume = %v", v)
	}
	if v := TetVolume(a, c, b, d); v >= 0 {
		t.Fatal("swapped orientation must flip sign")
	}
	if ar := TriArea(a, b, c); math.Abs(ar-0.5) > 1e-12 {
		t.Fatalf("area = %v", ar)
	}
	n := TriNormal(a, b, c)
	if math.Abs(n.Z-1) > 1e-12 {
		t.Fatalf("normal = %v", n)
	}
}

func TestBoxHelpers(t *testing.T) {
	b := unitBox()
	if b.Volume() != 1 || b.Center() != (Vec3{0.5, 0.5, 0.5}) {
		t.Fatal("volume/center")
	}
	if !b.Contains(Vec3{0.5, 0.5, 0.5}) || b.Contains(Vec3{1.5, 0, 0}) {
		t.Fatal("contains")
	}
	if d := b.DistToPoint(Vec3{2, 0.5, 0.5}); math.Abs(d-1) > 1e-12 {
		t.Fatalf("dist = %v", d)
	}
	if b.DistToPoint(Vec3{0.5, 0.5, 0.5}) != 0 {
		t.Fatal("inside dist must be 0")
	}
}

func TestCrackSizing(t *testing.T) {
	c := Crack{Origin: Vec3{0, 0.5, 0.5}, Dir: Vec3{1, 0, 0}, Length: 0.5, Radius: 0.3, HMin: 0.02, HMax: 0.2}
	if h := c.H(Vec3{0.25, 0.5, 0.5}); h != 0.02 {
		t.Fatalf("h on crack = %v", h)
	}
	if h := c.H(Vec3{0.25, 0.5, 0.9}); h != 0.2 {
		t.Fatalf("h far = %v", h)
	}
	mid := c.H(Vec3{0.25, 0.5, 0.65})
	if mid <= 0.02 || mid >= 0.2 {
		t.Fatalf("h graded = %v", mid)
	}
	if c.Tip() != (Vec3{0.5, 0.5, 0.5}) {
		t.Fatalf("tip = %v", c.Tip())
	}
	if c.Grown(0.8).Length != 0.8 {
		t.Fatal("grown")
	}
}

func TestEstimateElementsScalesWithSizing(t *testing.T) {
	b := unitBox()
	coarse := EstimateElements(b, Uniform{0.5}, 8)
	fine := EstimateElements(b, Uniform{0.25}, 8)
	if r := fine / coarse; math.Abs(r-8) > 0.01 {
		t.Fatalf("halving h should give 8x elements, got %vx", r)
	}
}

// checkMesh validates structural invariants of a generated mesh.
func checkMesh(t *testing.T, m *Mesh, b Box) {
	t.Helper()
	if m.NumTets() == 0 {
		t.Fatal("no tetrahedra generated")
	}
	var vol float64
	for _, tet := range m.Tets {
		for _, v := range tet {
			if int(v) >= len(m.Verts) {
				t.Fatalf("tet references missing vertex %d", v)
			}
			p := m.Verts[v]
			if !b.Contains(Vec3{p.X, p.Y, p.Z}) {
				// Allow tiny epsilon excursions from arithmetic.
				if b.DistToPoint(p) > 1e-9 {
					t.Fatalf("vertex %v outside box", p)
				}
			}
		}
		v := TetVolume(m.Verts[tet[0]], m.Verts[tet[1]], m.Verts[tet[2]], m.Verts[tet[3]])
		if v <= 0 {
			t.Fatalf("non-positive tet volume %v", v)
		}
		vol += v
	}
	if vol > b.Volume()*1.2 {
		t.Fatalf("meshed volume %v exceeds box volume %v", vol, b.Volume())
	}
	if vol < b.Volume()*0.4 {
		t.Fatalf("meshed volume %v too small vs box %v (front collapsed?)", vol, b.Volume())
	}
}

func TestGenerateUniformCoarse(t *testing.T) {
	m := Generate(unitBox(), Uniform{0.5}, DefaultMesherConfig())
	checkMesh(t, m, unitBox())
	t.Logf("coarse: %d verts, %d tets, %d defects, %d steps", len(m.Verts), m.NumTets(), m.Defects, m.Steps)
}

func TestGenerateUniformFiner(t *testing.T) {
	coarse := Generate(unitBox(), Uniform{0.5}, DefaultMesherConfig())
	fine := Generate(unitBox(), Uniform{0.25}, DefaultMesherConfig())
	checkMesh(t, fine, unitBox())
	if fine.NumTets() <= coarse.NumTets() {
		t.Fatalf("finer sizing should give more tets: %d vs %d", fine.NumTets(), coarse.NumTets())
	}
	t.Logf("fine: %d tets (coarse %d)", fine.NumTets(), coarse.NumTets())
}

func TestGenerateCrackRefinesLocally(t *testing.T) {
	crack := Crack{Origin: Vec3{0, 0.5, 0.5}, Dir: Vec3{1, 0, 0}, Length: 0.6, Radius: 0.35, HMin: 0.08, HMax: 0.35}
	withCrack := Generate(unitBox(), crack, DefaultMesherConfig())
	uniform := Generate(unitBox(), Uniform{0.35}, DefaultMesherConfig())
	checkMesh(t, withCrack, unitBox())
	if withCrack.NumTets() < 2*uniform.NumTets() {
		t.Fatalf("crack refinement should multiply element count: %d vs %d",
			withCrack.NumTets(), uniform.NumTets())
	}
	t.Logf("crack: %d tets vs uniform %d (defects %d)", withCrack.NumTets(), uniform.NumTets(), withCrack.Defects)
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(unitBox(), Uniform{0.4}, DefaultMesherConfig())
	b := Generate(unitBox(), Uniform{0.4}, DefaultMesherConfig())
	if a.NumTets() != b.NumTets() || len(a.Verts) != len(b.Verts) {
		t.Fatalf("nondeterministic mesh: %d/%d vs %d/%d", a.NumTets(), len(a.Verts), b.NumTets(), len(b.Verts))
	}
	for i := range a.Tets {
		if a.Tets[i] != b.Tets[i] {
			t.Fatalf("tet %d differs", i)
		}
	}
}

func TestDecompose(t *testing.T) {
	domain := Box{Lo: Vec3{0, 0, 0}, Hi: Vec3{4, 2, 1}}
	subs := Decompose(domain, 4, 2, 1)
	if len(subs) != 8 {
		t.Fatalf("subdomains = %d", len(subs))
	}
	var vol float64
	for _, s := range subs {
		vol += s.Volume()
	}
	if math.Abs(vol-domain.Volume()) > 1e-9 {
		t.Fatalf("decomposition loses volume: %v vs %v", vol, domain.Volume())
	}
	if subs[0].Lo != domain.Lo {
		t.Fatal("first subdomain misplaced")
	}
	nb := Neighbors(4, 2, 1)
	// 4x2x1 grid: x-edges 3*2=6, y-edges 4*1=4, z-edges 0 => 10.
	if len(nb) != 10 {
		t.Fatalf("neighbor pairs = %d", len(nb))
	}
}

func TestSameOrientation(t *testing.T) {
	a := [3]int32{1, 2, 3}
	if !sameOrientation(a, [3]int32{2, 3, 1}) || !sameOrientation(a, [3]int32{3, 1, 2}) {
		t.Fatal("rotations preserve orientation")
	}
	if sameOrientation(a, [3]int32{1, 3, 2}) || sameOrientation(a, [3]int32{2, 1, 3}) {
		t.Fatal("swaps reverse orientation")
	}
}

// TestEstimatorTracksMesher: the analytic element estimator must stay
// within a reasonable factor of the real mesher's output across sizes (the
// mesh experiment's -real flag depends on the two agreeing in shape).
func TestEstimatorTracksMesher(t *testing.T) {
	for _, h := range []float64{0.5, 0.33, 0.25} {
		m := Generate(unitBox(), Uniform{h}, DefaultMesherConfig())
		est := EstimateElements(unitBox(), Uniform{h}, 8)
		ratio := float64(m.NumTets()) / est
		if ratio < 0.2 || ratio > 5 {
			t.Fatalf("h=%v: mesher %d vs estimate %.0f (ratio %.2f)", h, m.NumTets(), est, ratio)
		}
	}
}

// TestMesherFillFraction: the mesher must fill most of the box (voids from
// abandoned fronts stay minor).
func TestMesherFillFraction(t *testing.T) {
	m := Generate(unitBox(), Uniform{0.3}, DefaultMesherConfig())
	var vol float64
	for _, tet := range m.Tets {
		vol += TetVolume(m.Verts[tet[0]], m.Verts[tet[1]], m.Verts[tet[2]], m.Verts[tet[3]])
	}
	if vol < 0.55 || vol > 1.0001 {
		t.Fatalf("fill fraction %.2f", vol)
	}
	t.Logf("fill fraction %.2f with %d tets, %d defects", vol, m.NumTets(), m.Defects)
}

// TestNoOverlapProperty: random sizing parameters never produce meshes
// whose total volume exceeds the box (overlap would).
func TestNoOverlapProperty(t *testing.T) {
	for _, hmin := range []float64{0.12, 0.2} {
		crack := Crack{Origin: Vec3{0, 0, 0}, Dir: Vec3{1, 0, 0}, Length: 0.6,
			Radius: 0.4, HMin: hmin, HMax: 0.45}
		m := Generate(unitBox(), crack, DefaultMesherConfig())
		var vol float64
		for _, tet := range m.Tets {
			v := TetVolume(m.Verts[tet[0]], m.Verts[tet[1]], m.Verts[tet[2]], m.Verts[tet[3]])
			if v <= 0 {
				t.Fatalf("inverted tet (hmin=%v)", hmin)
			}
			vol += v
		}
		if vol > 1.0001 {
			t.Fatalf("hmin=%v: meshed volume %.3f exceeds box", hmin, vol)
		}
	}
}

func TestNonCubicDomain(t *testing.T) {
	b := Box{Lo: Vec3{0, 0, 0}, Hi: Vec3{2, 0.5, 1}}
	m := Generate(b, Uniform{0.25}, DefaultMesherConfig())
	checkMesh(t, m, b)
}

func TestMaxStepsCapRespected(t *testing.T) {
	cfg := DefaultMesherConfig()
	cfg.MaxSteps = 10
	m := Generate(unitBox(), Uniform{0.2}, cfg)
	if m.Steps > 10 {
		t.Fatalf("steps %d exceeded cap", m.Steps)
	}
	if m.Defects == 0 {
		t.Fatal("cap must surface abandoned faces as defects")
	}
}
