package mesh

import (
	"container/heap"
	"math"
	"sort"
)

// Mesh is the output of the advancing front mesher.
type Mesh struct {
	Verts []Vec3
	Tets  [][4]int32
	// Defects counts front faces that had to be abandoned because no valid
	// apex existed (small voids; zero for well-sized inputs).
	Defects int
	// Steps is the number of advancing iterations taken.
	Steps int
}

// NumTets returns the tetrahedron count — the experiment's workload unit.
func (m *Mesh) NumTets() int { return len(m.Tets) }

// MesherConfig tunes the advancing front process.
type MesherConfig struct {
	// ApexFactor scales the sizing field's h into the apex offset distance.
	ApexFactor float64
	// SnapFactor scales h into the radius within which an ideal apex snaps
	// to an existing active front vertex.
	SnapFactor float64
	// MinQuality rejects tets whose volume is below MinQuality * h^3/6.
	MinQuality float64
	// MaxSteps caps the advancing loop (0 = derive from an element
	// estimate).
	MaxSteps int
}

// DefaultMesherConfig returns the configuration used by the experiments.
func DefaultMesherConfig() MesherConfig {
	return MesherConfig{
		ApexFactor: 0.8,
		SnapFactor: 0.65,
		MinQuality: 0.02,
		MaxSteps:   0,
	}
}

// Generate meshes the box with the sizing field using an advancing front:
// the box surface is triangulated on a conforming lattice, every surface
// triangle (normal inward) seeds the front, and fronts advance and cancel
// until the volume is filled.
func Generate(b Box, f SizingField, cfg MesherConfig) *Mesh {
	m := newMesher(b, f, cfg)
	m.seedSurface()
	m.advance()
	return &Mesh{Verts: m.verts, Tets: m.tets, Defects: m.defects, Steps: m.steps}
}

type faceKey [3]int32 // sorted vertex triple

type face struct {
	v    [3]int32 // oriented: normal (v1-v0)x(v2-v0) points into unmeshed region
	area float64
	seq  uint64
	dead bool
}

type faceHeap []*face

func (h faceHeap) Len() int { return len(h) }
func (h faceHeap) Less(i, j int) bool {
	if h[i].area != h[j].area {
		return h[i].area < h[j].area
	}
	return h[i].seq < h[j].seq
}
func (h faceHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *faceHeap) Push(x any)   { *h = append(*h, x.(*face)) }
func (h *faceHeap) Pop() any     { old := *h; n := len(old); f := old[n-1]; *h = old[:n-1]; return f }
func keyOf(a, b, c int32) faceKey {
	k := faceKey{a, b, c}
	if k[0] > k[1] {
		k[0], k[1] = k[1], k[0]
	}
	if k[1] > k[2] {
		k[1], k[2] = k[2], k[1]
	}
	if k[0] > k[1] {
		k[0], k[1] = k[1], k[0]
	}
	return k
}

// sameOrientation reports whether oriented triples a and b (same vertex
// set) have equal winding.
func sameOrientation(a, b [3]int32) bool {
	// Rotate b so b[0] == a[0].
	for r := 0; r < 3; r++ {
		if b[0] == a[0] {
			break
		}
		b[0], b[1], b[2] = b[1], b[2], b[0]
	}
	return b[1] == a[1] && b[2] == a[2]
}

type mesher struct {
	box     Box
	sizing  SizingField
	cfg     MesherConfig
	verts   []Vec3
	tets    [][4]int32
	front   map[faceKey]*face
	heap    faceHeap
	seq     uint64
	defects int
	steps   int

	// Active-vertex spatial hash: vertices currently referenced by front
	// faces, bucketed at cellSize.
	cellSize float64
	cells    map[[3]int32][]int32
	refs     map[int32]int

	// Tet occupancy hash: tets indexed by every cell their bounding box
	// overlaps, used to reject candidates that would overlap meshed space.
	tetCells map[[3]int32][]int32
}

func newMesher(b Box, f SizingField, cfg MesherConfig) *mesher {
	if cfg.ApexFactor <= 0 {
		cfg = DefaultMesherConfig()
	}
	// Cell size: an upper bound on snapping radius. Sample the field.
	maxH := 0.0
	for _, p := range []Vec3{b.Lo, b.Hi, b.Center()} {
		maxH = math.Max(maxH, f.H(p))
	}
	return &mesher{
		box:      b,
		sizing:   f,
		cfg:      cfg,
		front:    make(map[faceKey]*face),
		cellSize: maxH,
		cells:    make(map[[3]int32][]int32),
		refs:     make(map[int32]int),
		tetCells: make(map[[3]int32][]int32),
	}
}

// pointInTet reports whether p lies strictly inside tet t (boundary points,
// e.g. shared vertices and faces of adjacent tets, do not count).
func (m *mesher) pointInTet(p Vec3, t [4]int32) bool {
	a, b, c, d := m.verts[t[0]], m.verts[t[1]], m.verts[t[2]], m.verts[t[3]]
	vol := TetVolume(a, b, c, d)
	eps := 1e-7 * vol
	if TetVolume(p, b, c, d) < eps {
		return false
	}
	if TetVolume(a, p, c, d) < eps {
		return false
	}
	if TetVolume(a, b, p, d) < eps {
		return false
	}
	if TetVolume(a, b, c, p) < eps {
		return false
	}
	return true
}

// tetBBoxCells calls fn for every occupancy cell a tet's bounding box
// overlaps.
func (m *mesher) tetBBoxCells(t [4]int32, fn func(c [3]int32)) {
	lo := m.verts[t[0]]
	hi := lo
	for _, v := range t[1:] {
		p := m.verts[v]
		lo.X, lo.Y, lo.Z = math.Min(lo.X, p.X), math.Min(lo.Y, p.Y), math.Min(lo.Z, p.Z)
		hi.X, hi.Y, hi.Z = math.Max(hi.X, p.X), math.Max(hi.Y, p.Y), math.Max(hi.Z, p.Z)
	}
	cl, ch := m.cellOf(lo), m.cellOf(hi)
	for x := cl[0]; x <= ch[0]; x++ {
		for y := cl[1]; y <= ch[1]; y++ {
			for z := cl[2]; z <= ch[2]; z++ {
				fn([3]int32{x, y, z})
			}
		}
	}
}

// occupied reports whether p lies inside any existing tetrahedron near it.
func (m *mesher) occupied(p Vec3) bool {
	for _, ti := range m.tetCells[m.cellOf(p)] {
		if m.pointInTet(p, m.tets[ti]) {
			return true
		}
	}
	return false
}

// overlapsMesh heuristically tests whether candidate tet cand interpenetrates
// already meshed space: a stencil of interior sample points of cand must all
// be free, and no nearby existing tet's centroid may lie inside cand.
// (Cheaper than exact face-face intersection; combined with the front
// orientation rules it keeps meshes overlap-free in practice — the test
// suite asserts total volume never exceeds the box.)
func (m *mesher) overlapsMesh(cand [4]int32) bool {
	a, b, c, d := m.verts[cand[0]], m.verts[cand[1]], m.verts[cand[2]], m.verts[cand[3]]
	g := a.Add(b).Add(c).Add(d).Scale(0.25)
	samples := []Vec3{g}
	for _, v := range []Vec3{a, b, c, d} {
		samples = append(samples, g.Add(v.Sub(g).Scale(0.55)), g.Add(v.Sub(g).Scale(0.9)))
	}
	// Face centroids nudged inward.
	faces := [4][3]Vec3{{b, c, d}, {a, c, d}, {a, b, d}, {a, b, c}}
	for _, fc := range faces {
		fg := fc[0].Add(fc[1]).Add(fc[2]).Scale(1.0 / 3)
		samples = append(samples, fg.Add(g.Sub(fg).Scale(0.1)))
	}
	for _, p := range samples {
		if m.occupied(p) {
			return true
		}
	}
	// Symmetric: existing tets poking into the candidate.
	seen := map[int32]bool{}
	overlap := false
	m.tetBBoxCells(cand, func(cell [3]int32) {
		if overlap {
			return
		}
		for _, ti := range m.tetCells[cell] {
			if seen[ti] {
				continue
			}
			seen[ti] = true
			t := m.tets[ti]
			tg := m.verts[t[0]].Add(m.verts[t[1]]).Add(m.verts[t[2]]).Add(m.verts[t[3]]).Scale(0.25)
			if m.pointInTetVerts(tg, a, b, c, d) {
				overlap = true
				return
			}
		}
	})
	return overlap
}

// pointInTetVerts is pointInTet with explicit vertex coordinates.
func (m *mesher) pointInTetVerts(p, a, b, c, d Vec3) bool {
	vol := TetVolume(a, b, c, d)
	eps := 1e-7 * vol
	return TetVolume(p, b, c, d) >= eps &&
		TetVolume(a, p, c, d) >= eps &&
		TetVolume(a, b, p, d) >= eps &&
		TetVolume(a, b, c, p) >= eps
}

// registerTet adds the latest tet to the occupancy hash.
func (m *mesher) registerTet(ti int32) {
	m.tetBBoxCells(m.tets[ti], func(c [3]int32) {
		m.tetCells[c] = append(m.tetCells[c], ti)
	})
}

func (m *mesher) cellOf(p Vec3) [3]int32 {
	return [3]int32{
		int32(math.Floor(p.X / m.cellSize)),
		int32(math.Floor(p.Y / m.cellSize)),
		int32(math.Floor(p.Z / m.cellSize)),
	}
}

func (m *mesher) retain(v int32) {
	if m.refs[v] == 0 {
		c := m.cellOf(m.verts[v])
		m.cells[c] = append(m.cells[c], v)
	}
	m.refs[v]++
}

func (m *mesher) release(v int32) {
	m.refs[v]--
	if m.refs[v] > 0 {
		return
	}
	delete(m.refs, v)
	c := m.cellOf(m.verts[v])
	list := m.cells[c]
	for i, x := range list {
		if x == v {
			list[i] = list[len(list)-1]
			m.cells[c] = list[:len(list)-1]
			break
		}
	}
	if len(m.cells[c]) == 0 {
		delete(m.cells, c)
	}
}

// nearActive returns active front vertices within radius of p, nearest
// first (deterministic: distance then index order).
func (m *mesher) nearActive(p Vec3, radius float64) []int32 {
	c := m.cellOf(p)
	span := int32(math.Ceil(radius/m.cellSize)) + 1
	type cand struct {
		v int32
		d float64
	}
	var out []cand
	for dx := -span; dx <= span; dx++ {
		for dy := -span; dy <= span; dy++ {
			for dz := -span; dz <= span; dz++ {
				for _, v := range m.cells[[3]int32{c[0] + dx, c[1] + dy, c[2] + dz}] {
					if d := m.verts[v].Dist(p); d <= radius {
						out = append(out, cand{v, d})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].d != out[j].d {
			return out[i].d < out[j].d
		}
		return out[i].v < out[j].v
	})
	vs := make([]int32, len(out))
	for i, c := range out {
		vs[i] = c.v
	}
	return vs
}

// addFace inserts an oriented face into the front, cancelling against an
// opposite-oriented twin.
func (m *mesher) addFace(v [3]int32) {
	k := keyOf(v[0], v[1], v[2])
	if tw, ok := m.front[k]; ok {
		if sameOrientation(tw.v, v) {
			// Two fronts claim the same region from the same side: a local
			// tangle. Keep one; count it.
			m.defects++
			return
		}
		// Opposite twin: the gap between two fronts closed here.
		tw.dead = true
		delete(m.front, k)
		for _, x := range tw.v {
			m.release(x)
		}
		return
	}
	f := &face{v: v, area: TriArea(m.verts[v[0]], m.verts[v[1]], m.verts[v[2]])}
	m.seq++
	f.seq = m.seq
	m.front[k] = f
	heap.Push(&m.heap, f)
	for _, x := range v {
		m.retain(x)
	}
}

func (m *mesher) removeFace(f *face) {
	f.dead = true
	delete(m.front, keyOf(f.v[0], f.v[1], f.v[2]))
	for _, x := range f.v {
		m.release(x)
	}
}

// seedSurface triangulates the box surface on a conforming lattice whose
// resolution follows the finest sizing found on the surface, and seeds the
// front with inward-pointing triangles.
func (m *mesher) seedSurface() {
	size := m.box.Size()
	// Finest h on the surface governs the lattice (conformity across the
	// six faces requires a single lattice).
	minH := math.Inf(1)
	for i := 0; i <= 4; i++ {
		for j := 0; j <= 4; j++ {
			for _, p := range surfaceSamples(m.box, i, j) {
				minH = math.Min(minH, m.sizing.H(p))
			}
		}
	}
	n := func(extent float64) int {
		k := int(math.Ceil(extent / minH))
		if k < 1 {
			k = 1
		}
		return k
	}
	nx, ny, nz := n(size.X), n(size.Y), n(size.Z)
	// Lattice vertices on the surface only.
	idx := make(map[[3]int]int32)
	vat := func(i, j, k int) int32 {
		key := [3]int{i, j, k}
		if v, ok := idx[key]; ok {
			return v
		}
		p := Vec3{
			m.box.Lo.X + size.X*float64(i)/float64(nx),
			m.box.Lo.Y + size.Y*float64(j)/float64(ny),
			m.box.Lo.Z + size.Z*float64(k)/float64(nz),
		}
		v := int32(len(m.verts))
		m.verts = append(m.verts, p)
		idx[key] = v
		return v
	}
	// quad emits two triangles for the surface quad (a,b,c,d) wound so that
	// the normal points inward; inward is supplied per box face.
	quad := func(a, b, c, d int32) {
		m.addFace([3]int32{a, b, c})
		m.addFace([3]int32{a, c, d})
	}
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			// z = lo (inward +z): counterclockwise seen from +z.
			quad(vat(i, j, 0), vat(i+1, j, 0), vat(i+1, j+1, 0), vat(i, j+1, 0))
			// z = hi (inward -z): reversed.
			quad(vat(i, j, nz), vat(i, j+1, nz), vat(i+1, j+1, nz), vat(i+1, j, nz))
		}
	}
	for i := 0; i < nx; i++ {
		for k := 0; k < nz; k++ {
			// y = lo (inward +y).
			quad(vat(i, 0, k), vat(i, 0, k+1), vat(i+1, 0, k+1), vat(i+1, 0, k))
			// y = hi (inward -y).
			quad(vat(i, ny, k), vat(i+1, ny, k), vat(i+1, ny, k+1), vat(i, ny, k+1))
		}
	}
	for j := 0; j < ny; j++ {
		for k := 0; k < nz; k++ {
			// x = lo (inward +x).
			quad(vat(0, j, k), vat(0, j+1, k), vat(0, j+1, k+1), vat(0, j, k+1))
			// x = hi (inward -x).
			quad(vat(nx, j, k), vat(nx, j, k+1), vat(nx, j+1, k+1), vat(nx, j+1, k))
		}
	}
}

// surfaceSamples returns sample points on the box surface for lattice-size
// estimation.
func surfaceSamples(b Box, i, j int) []Vec3 {
	s := b.Size()
	u, v := float64(i)/4, float64(j)/4
	return []Vec3{
		{b.Lo.X + u*s.X, b.Lo.Y + v*s.Y, b.Lo.Z},
		{b.Lo.X + u*s.X, b.Lo.Y + v*s.Y, b.Hi.Z},
		{b.Lo.X + u*s.X, b.Lo.Y, b.Lo.Z + v*s.Z},
		{b.Lo.X + u*s.X, b.Hi.Y, b.Lo.Z + v*s.Z},
		{b.Lo.X, b.Lo.Y + u*s.Y, b.Lo.Z + v*s.Z},
		{b.Hi.X, b.Lo.Y + u*s.Y, b.Lo.Z + v*s.Z},
	}
}

// advance runs the main loop: smallest front face first, place or snap an
// apex, build the tetrahedron, update the front.
func (m *mesher) advance() {
	maxSteps := m.cfg.MaxSteps
	if maxSteps == 0 {
		est := EstimateElements(m.box, m.sizing, 8)
		maxSteps = 80*int(est) + 200000
	}
	for len(m.front) > 0 && m.steps < maxSteps {
		f := heap.Pop(&m.heap).(*face)
		if f.dead {
			continue
		}
		m.steps++
		if !m.buildTet(f) {
			m.defects++
			m.removeFace(f)
		}
	}
	// Any faces left when the step budget runs out are defects.
	m.defects += len(m.front)
}

// buildTet attempts to close face f with an apex vertex. It returns false
// if no candidate yields an acceptable tetrahedron.
func (m *mesher) buildTet(f *face) bool {
	a, b, c := m.verts[f.v[0]], m.verts[f.v[1]], m.verts[f.v[2]]
	g := a.Add(b).Add(c).Scale(1.0 / 3)
	n := TriNormal(a, b, c)
	h := m.sizing.H(g)
	ideal := g.Add(n.Scale(m.cfg.ApexFactor * h))

	// Candidates: nearby active front vertices (nearest first), then the
	// fresh ideal point if it is inside the domain.
	cands := m.nearActive(ideal, m.cfg.SnapFactor*h)
	// A second, wider net catches closing fronts.
	if len(cands) == 0 {
		cands = m.nearActive(ideal, 1.3*h)
	}
	minVol := m.cfg.MinQuality * h * h * h / 6
	try := func(apex int32) bool {
		if apex == f.v[0] || apex == f.v[1] || apex == f.v[2] {
			return false
		}
		p := m.verts[apex]
		if TetVolume(a, b, c, p) < minVol {
			return false
		}
		// Reject if any side face would duplicate an existing front face
		// with the same orientation (local tangle).
		for _, sf := range sideFaces(f.v, apex, m.verts) {
			k := keyOf(sf[0], sf[1], sf[2])
			if tw, ok := m.front[k]; ok && sameOrientation(tw.v, sf) {
				return false
			}
		}
		// Occupancy: the new tet must not overlap meshed space and must not
		// swallow an active front vertex.
		cand := [4]int32{f.v[0], f.v[1], f.v[2], apex}
		centroid := a.Add(b).Add(c).Add(p).Scale(0.25)
		if m.overlapsMesh(cand) {
			return false
		}
		maxEdge := 0.0
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				maxEdge = math.Max(maxEdge, m.verts[cand[i]].Dist(m.verts[cand[j]]))
			}
		}
		for _, v := range m.nearActive(centroid, maxEdge) {
			if v == cand[0] || v == cand[1] || v == cand[2] || v == cand[3] {
				continue
			}
			if m.pointInTet(m.verts[v], cand) {
				return false
			}
		}
		m.emitTet(f, apex)
		return true
	}
	for _, v := range cands {
		if try(v) {
			return true
		}
	}
	if m.box.Contains(ideal) {
		// No snap: create a fresh vertex, unless it crowds an active vertex
		// (the candidate pass above would have used it).
		v := int32(len(m.verts))
		m.verts = append(m.verts, ideal)
		if try(v) {
			return true
		}
		m.verts = m.verts[:v] // roll back the unused vertex
	}
	// Last resort: a shorter fresh apex (half offset) for faces squeezed
	// near the boundary.
	short := g.Add(n.Scale(0.4 * m.cfg.ApexFactor * h))
	if m.box.Contains(short) {
		v := int32(len(m.verts))
		m.verts = append(m.verts, short)
		if try(v) {
			return true
		}
		m.verts = m.verts[:v]
	}
	return false
}

// sideFaces returns the three new faces of tet (f, apex), each oriented so
// its normal points away from the tetrahedron (into unmeshed space).
func sideFaces(fv [3]int32, apex int32, verts []Vec3) [3][3]int32 {
	var out [3][3]int32
	pairs := [3][2]int32{{fv[0], fv[1]}, {fv[1], fv[2]}, {fv[2], fv[0]}}
	for i, pr := range pairs {
		// Opposite vertex inside the tet is the remaining face vertex.
		opp := fv[(i+2)%3]
		tri := [3]int32{pr[0], pr[1], apex}
		nrm := verts[tri[1]].Sub(verts[tri[0]]).Cross(verts[tri[2]].Sub(verts[tri[0]]))
		if nrm.Dot(verts[opp].Sub(verts[tri[0]])) > 0 {
			tri[1], tri[2] = tri[2], tri[1]
		}
		out[i] = tri
	}
	return out
}

// emitTet records the tetrahedron and updates the front.
func (m *mesher) emitTet(f *face, apex int32) {
	m.tets = append(m.tets, [4]int32{f.v[0], f.v[1], f.v[2], apex})
	m.registerTet(int32(len(m.tets) - 1))
	sides := sideFaces(f.v, apex, m.verts)
	m.removeFace(f)
	for _, sf := range sides {
		m.addFace(sf)
	}
}
