// Package mesh implements a simplified 3-D advancing front tetrahedral mesh
// generator, an octree-style domain decomposition, and the crack-growth
// refinement scenario the paper's mesh experiment is built on (§5: a
// 3-dimensional parallel advancing front mesh generator whose workload
// spikes as a crack front moves through the domain).
//
// The mesher is a real advancing-front implementation (surface front of
// oriented triangles, apex placement by the sizing field, vertex snapping
// through a spatial hash, front cancellation), simplified from production
// meshers in two documented ways: no global self-intersection tests (the
// merge radius keeps fronts locally consistent) and subdomain boundaries are
// discretized independently rather than matched exactly. Neither affects
// what the parallel experiment consumes: per-subdomain element counts that
// respond sharply and locally to the moving crack.
package mesh

import "math"

// Vec3 is a point or vector in R^3.
type Vec3 struct{ X, Y, Z float64 }

// Add returns a+b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a-b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns s*a.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{s * a.X, s * a.Y, s * a.Z} }

// Dot returns a·b.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns a×b.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Norm returns |a|.
func (a Vec3) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// Dist returns |a-b|.
func (a Vec3) Dist(b Vec3) float64 { return a.Sub(b).Norm() }

// TetVolume returns the signed volume of tetrahedron (a,b,c,d): positive
// when d lies on the side of triangle (a,b,c) that its normal
// (b-a)×(c-a) points toward.
func TetVolume(a, b, c, d Vec3) float64 {
	return b.Sub(a).Cross(c.Sub(a)).Dot(d.Sub(a)) / 6
}

// TriArea returns the area of triangle (a,b,c).
func TriArea(a, b, c Vec3) float64 {
	return b.Sub(a).Cross(c.Sub(a)).Norm() / 2
}

// TriNormal returns the unit normal of triangle (a,b,c), or the zero vector
// for a degenerate triangle.
func TriNormal(a, b, c Vec3) Vec3 {
	n := b.Sub(a).Cross(c.Sub(a))
	l := n.Norm()
	if l == 0 {
		return Vec3{}
	}
	return n.Scale(1 / l)
}

// Box is an axis-aligned box.
type Box struct{ Lo, Hi Vec3 }

// Center returns the box center.
func (b Box) Center() Vec3 { return b.Lo.Add(b.Hi).Scale(0.5) }

// Size returns the box edge lengths.
func (b Box) Size() Vec3 { return b.Hi.Sub(b.Lo) }

// Volume returns the box volume.
func (b Box) Volume() float64 {
	s := b.Size()
	return s.X * s.Y * s.Z
}

// Contains reports whether p lies inside the box (inclusive).
func (b Box) Contains(p Vec3) bool {
	return p.X >= b.Lo.X && p.X <= b.Hi.X &&
		p.Y >= b.Lo.Y && p.Y <= b.Hi.Y &&
		p.Z >= b.Lo.Z && p.Z <= b.Hi.Z
}

// DistToPoint returns the distance from p to the box (0 if inside).
func (b Box) DistToPoint(p Vec3) float64 {
	dx := math.Max(0, math.Max(b.Lo.X-p.X, p.X-b.Hi.X))
	dy := math.Max(0, math.Max(b.Lo.Y-p.Y, p.Y-b.Hi.Y))
	dz := math.Max(0, math.Max(b.Lo.Z-p.Z, p.Z-b.Hi.Z))
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}
