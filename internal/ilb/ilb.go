// Package ilb implements PREMA's load balancing framework (Barker,
// Chernikov, Chrisochoides, Pingali — "Architecture and evaluation of a load
// balancing framework for adaptive and asynchronous applications", IEEE TPDS
// 2003): a message-driven work-unit scheduler over the mobile object layer,
// with pluggable load balancing policies and two dissemination/decision
// modes:
//
//   - Explicit: load balancer messages are received and acted upon only at
//     application-posted polling operations — between work units.
//   - Implicit (preemptive): a polling thread wakes at a fixed period even
//     while a work unit is computing, drains system-tagged (load balancer)
//     messages, and lets the policy act immediately. Application messages
//     stay queued until an application poll, preserving the single-threaded
//     programming model (paper §4.2).
package ilb

import (
	"math"

	"prema/internal/dmcs"
	"prema/internal/mol"
	"prema/internal/recov"
	"prema/internal/substrate"
	"prema/internal/trace"
)

// Mode selects how load balancer messages get processed.
type Mode int

const (
	// Explicit processes balancer traffic only at application polls.
	Explicit Mode = iota
	// Implicit preempts running work units at PollInterval to process
	// balancer traffic.
	Implicit
)

func (m Mode) String() string {
	if m == Implicit {
		return "implicit"
	}
	return "explicit"
}

// Config tunes the scheduler.
type Config struct {
	// Mode is the dissemination/decision mode (see Mode).
	Mode Mode
	// WaterMark is the estimated-load threshold (seconds of hinted work)
	// below which the policy's OnLowLoad fires in explicit mode. In implicit
	// mode the water-mark is de-emphasized (paper §4.2): balancing triggers
	// when the processor begins its last queued unit, whatever the hints say.
	WaterMark float64
	// PollInterval is the implicit-mode polling thread period.
	PollInterval substrate.Time
	// PollCost is the CPU cost of one polling-thread wake-up.
	PollCost substrate.Time
	// ScheduleCPU is scheduler bookkeeping charged per executed unit.
	ScheduleCPU substrate.Time
	// IdleTick bounds how long an idle processor blocks before re-engaging
	// the policy.
	IdleTick substrate.Time
	// PollEvery is how many work units the application executes between
	// posted polling operations while it has work (it always polls when
	// idle). 1 (the default) polls between every unit; larger values model
	// applications whose well-tuned inner loops hand control to the runtime
	// only occasionally — the regime where explicit load balancing decays
	// and preemptive (implicit) processing shines (paper §§3-4).
	PollEvery int
}

// DefaultConfig returns the configuration used in the experiments.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:         mode,
		WaterMark:    10,
		PollInterval: 10 * substrate.Millisecond,
		PollCost:     4 * substrate.Microsecond,
		ScheduleCPU:  3 * substrate.Microsecond,
		IdleTick:     50 * substrate.Millisecond,
		PollEvery:    1,
	}
}

// Unit is one schedulable work unit: an in-order mol message waiting to run
// its handler on a local object.
type Unit struct {
	Obj *mol.Object
	Env *mol.Envelope
	// stolen marks units packed into a migration; the dequeuer skips them.
	stolen bool
}

// Weight returns the unit's hinted computational weight in seconds.
func (u *Unit) Weight() float64 { return u.Env.Weight }

// Stats counts scheduler activity on one processor.
type Stats struct {
	UnitsRun      int
	UnitsEnqueued int
	UnitsStolenIn int
	PollWakes     int
}

// Policy is a pluggable dynamic load balancing strategy. Implementations
// register their own system-message handlers in Setup (identical
// registration order across processors, as everywhere in the stack).
type Policy interface {
	Name() string
	// Setup is called once per processor before the run starts.
	Setup(s *Scheduler)
	// OnLowLoad fires when the local estimated load crosses below the
	// water-mark (explicit mode) or when the processor starts its last
	// queued unit (implicit mode).
	OnLowLoad(s *Scheduler)
	// OnIdle fires when the processor has no local work at all.
	OnIdle(s *Scheduler)
	// OnPoll fires at every application-posted poll; periodic policies
	// (diffusion, multilist reposting) hang their timers here.
	OnPoll(s *Scheduler)
}

// NopPolicy is a Policy that never balances (the "no load balancing"
// baseline).
type NopPolicy struct{}

// Name implements Policy.
func (NopPolicy) Name() string { return "none" }

// Setup implements Policy.
func (NopPolicy) Setup(*Scheduler) {}

// OnLowLoad implements Policy.
func (NopPolicy) OnLowLoad(*Scheduler) {}

// OnIdle implements Policy.
func (NopPolicy) OnIdle(*Scheduler) {}

// OnPoll implements Policy.
func (NopPolicy) OnPoll(*Scheduler) {}

// Scheduler is the processor-local ILB runtime: it owns the work-unit queue,
// drives polling, executes units, and invokes the policy.
type Scheduler struct {
	l      *mol.Layer
	c      *dmcs.Comm
	p      substrate.Endpoint
	cfg    Config
	policy Policy
	tr     *trace.Recorder

	queue     []*Unit
	qhead     int
	load      float64 // sum of hinted weights of queued (unstolen) units
	current   *Unit   // unit whose handler is executing, if any
	sincePoll int     // units executed since the last posted poll
	stopped   bool

	// Crash recovery (nil / empty unless AttachRecov was called).
	rp            *recov.Proc
	onDown        []func(recov.Down)
	pendingCharge substrate.Time // accrued checkpoint cost not yet on the ledger

	Stats Stats
}

// New builds a scheduler over a MOL endpoint and wires the MOL delivery sink
// and migration hooks to the scheduler's queue.
func New(l *mol.Layer, cfg Config, policy Policy) *Scheduler {
	s := &Scheduler{l: l, c: l.Comm(), p: l.Proc(), cfg: cfg, policy: policy, tr: trace.Of(l.Proc())}
	l.SetDeliver(func(_ *mol.Layer, obj *mol.Object, env *mol.Envelope) {
		s.enqueue(&Unit{Obj: obj, Env: env})
	})
	l.OnMigrateOut = func(obj *mol.Object) any {
		return s.packUnits(obj)
	}
	l.OnMigrateIn = func(obj *mol.Object, extra any) {
		if extra == nil {
			return
		}
		for _, env := range extra.([]*mol.Envelope) {
			s.Stats.UnitsStolenIn++
			s.enqueue(&Unit{Obj: obj, Env: env})
		}
	}
	policy.Setup(s)
	return s
}

// Mol returns the underlying mobile object layer.
func (s *Scheduler) Mol() *mol.Layer { return s.l }

// Comm returns the underlying DMCS endpoint.
func (s *Scheduler) Comm() *dmcs.Comm { return s.c }

// Proc returns the underlying substrate endpoint.
func (s *Scheduler) Proc() substrate.Endpoint { return s.p }

// Config returns the scheduler configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// WaterMark returns the current balancing threshold (hinted seconds).
func (s *Scheduler) WaterMark() float64 { return s.cfg.WaterMark }

// SetWaterMark adjusts the balancing threshold at runtime. The paper (§4.2)
// proposes deriving it from platform-measured response latencies instead of
// asking the application to guess; policy.WorkStealing's AutoWaterMark mode
// drives this setter from observed steal round-trip times.
func (s *Scheduler) SetWaterMark(v float64) { s.cfg.WaterMark = v }

// Policy returns the active load balancing policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// Stopped reports whether Stop has been called.
func (s *Scheduler) Stopped() bool { return s.stopped }

// Message sends a work-unit message to the object named by mp: handler h
// runs at the object's current host when the scheduler there picks the unit.
// weight is the hinted computational weight in seconds (may be inaccurate —
// that is the adaptive regime the framework is built for).
func (s *Scheduler) Message(mp mol.MobilePtr, h mol.HandlerID, data any, size int, weight float64) {
	s.l.MessageWeighted(mp, h, data, size, substrate.TagApp, weight)
}

func (s *Scheduler) enqueue(u *Unit) {
	s.queue = append(s.queue, u)
	s.load += u.Weight()
	s.Stats.UnitsEnqueued++
}

// dequeue pops the oldest unstolen unit, or nil.
func (s *Scheduler) dequeue() *Unit {
	for s.qhead < len(s.queue) {
		u := s.queue[s.qhead]
		s.queue[s.qhead] = nil
		s.qhead++
		if s.qhead == len(s.queue) {
			s.queue = s.queue[:0]
			s.qhead = 0
		}
		if u.stolen {
			continue
		}
		s.load -= u.Weight()
		return u
	}
	return nil
}

// QueueLen returns the number of queued, unstolen units.
func (s *Scheduler) QueueLen() int {
	n := 0
	for _, u := range s.queue[s.qhead:] {
		if u != nil && !u.stolen {
			n++
		}
	}
	return n
}

// Load returns the estimated queued load in hinted seconds. The executing
// unit is excluded: once started it cannot migrate, so it is not balanceable
// load.
func (s *Scheduler) Load() float64 { return math.Max(s.load, 0) }

// Executing reports whether a work unit handler is currently running.
func (s *Scheduler) Executing() bool { return s.current != nil }

// CurrentObject returns the object whose unit is executing, or mol.Nil.
func (s *Scheduler) CurrentObject() mol.MobilePtr {
	if s.current == nil {
		return mol.Nil
	}
	return s.current.Obj.MP
}

// StealableObjects returns distinct locally resident objects that have
// queued (unstolen) work, newest-queued first — the natural donation order
// for a victim (oldest work stays local, freshest work migrates).
func (s *Scheduler) StealableObjects() []*mol.Object {
	var out []*mol.Object
	seen := make(map[mol.MobilePtr]bool)
	for i := len(s.queue) - 1; i >= s.qhead; i-- {
		u := s.queue[i]
		if u == nil || u.stolen {
			continue
		}
		if s.current != nil && u.Obj == s.current.Obj {
			continue // executing object cannot migrate
		}
		if !seen[u.Obj.MP] {
			seen[u.Obj.MP] = true
			out = append(out, u.Obj)
		}
	}
	return out
}

// QueuedWeight returns the hinted weight queued for one object.
func (s *Scheduler) QueuedWeight(obj *mol.Object) float64 {
	w := 0.0
	for _, u := range s.queue[s.qhead:] {
		if u != nil && !u.stolen && u.Obj == obj {
			w += u.Weight()
		}
	}
	return w
}

// packUnits extracts all queued units targeting obj for migration.
func (s *Scheduler) packUnits(obj *mol.Object) []*mol.Envelope {
	var envs []*mol.Envelope
	for _, u := range s.queue[s.qhead:] {
		if u != nil && !u.stolen && u.Obj == obj {
			u.stolen = true
			s.load -= u.Weight()
			envs = append(envs, u.Env)
		}
	}
	return envs
}

// Stop makes Run return after the current iteration. Typically invoked from
// a system-message handler carrying the application's termination broadcast.
func (s *Scheduler) Stop() { s.stopped = true }

// Poll is the application-posted polling operation (paper §4): it receives
// and processes all pending messages (application work-unit messages are
// enqueued; system messages invoke the policy), then evaluates the local
// load level against the water-mark.
func (s *Scheduler) Poll() {
	s.c.Poll()
	if s.stopped {
		return
	}
	s.policy.OnPoll(s)
	s.checkLoad()
}

func (s *Scheduler) checkLoad() {
	if s.stopped {
		return
	}
	switch s.cfg.Mode {
	case Explicit:
		if s.Load() < s.cfg.WaterMark {
			s.tr.Instant(trace.EvPolicy, s.p.Now(), trace.PolLowLoad, 0, 0)
			s.policy.OnLowLoad(s)
		}
	case Implicit:
		if s.QueueLen() == 0 {
			s.tr.Instant(trace.EvPolicy, s.p.Now(), trace.PolLowLoad, 0, 0)
			s.policy.OnLowLoad(s)
		}
	}
}

// Compute consumes d of application computation time. Application work-unit
// handlers must use Compute rather than raw Proc.Advance: in implicit mode
// Compute interleaves the polling thread, which preemptively drains
// system-tagged balancer messages every PollInterval.
func (s *Scheduler) Compute(d substrate.Time) {
	// A long unit must not expire our own lease: pre-extend it to cover the
	// whole computation before burning the time.
	if s.rp != nil {
		s.rp.Extend(s.p.Now() + d)
	}
	if s.cfg.Mode == Explicit || s.cfg.PollInterval <= 0 {
		s.p.Advance(d, substrate.CatCompute)
		return
	}
	for d > 0 {
		slice := s.cfg.PollInterval
		if slice > d {
			slice = d
		}
		s.p.Advance(slice, substrate.CatCompute)
		d -= slice
		if d > 0 {
			s.pollThread()
		}
	}
}

// pollThread is one wake-up of the implicit-mode polling thread. Besides
// draining system-tagged balancer traffic, in reliable mode each PollTag
// also ticks the transport (ack flushing and retransmission), so a
// processor deep inside a long work unit still repairs lost messages every
// PollInterval.
func (s *Scheduler) pollThread() {
	s.Stats.PollWakes++
	s.tr.Instant(trace.EvPolicy, s.p.Now(), trace.PolPollWake, 0, 0)
	if s.cfg.PollCost > 0 {
		s.p.Advance(s.cfg.PollCost, substrate.CatPollThread)
	}
	s.c.PollTag(substrate.TagSystem)
	s.recovTick()
}

// execute runs one work unit to completion.
func (s *Scheduler) execute(u *Unit) {
	id := recov.ObjID{Home: u.Obj.MP.Home, Index: u.Obj.MP.Index}
	if s.rp != nil && !s.rp.BeginUnit(id, u.Env.Origin, u.Env.Seq) {
		// Already executed before a crash (durable in the done watermark):
		// a replayed duplicate, skipped to keep execution exactly-once.
		return
	}
	if s.cfg.ScheduleCPU > 0 {
		s.p.Advance(s.cfg.ScheduleCPU, substrate.CatScheduling)
	}
	s.current = u
	s.Stats.UnitsRun++
	key := trace.ObjKey(u.Obj.MP.Home, u.Obj.MP.Index)
	t0 := s.p.Now()
	s.tr.Instant(trace.EvUnitBegin, t0, key, int64(u.Env.Origin), int64(u.Env.Seq))
	s.l.Dispatch(u.Obj, u.Env)
	if s.rp != nil {
		// Record the execution synchronously — before any further substrate
		// interaction — so a fail-stop can never forget the unit ran.
		s.rp.FinishUnit(id, u.Env.Origin, u.Env.Seq)
	}
	s.tr.Interval(trace.EvUnitEnd, t0, s.p.Now(), key, int64(u.Env.Origin), int64(u.Env.Seq))
	s.current = nil
}

// Step performs one scheduler iteration: poll, then run one unit if
// available, otherwise report idleness to the policy and block briefly.
// It returns false once the scheduler has been stopped.
func (s *Scheduler) Step() bool {
	if s.stopped {
		return false
	}
	s.recovTick()
	every := s.cfg.PollEvery
	if every < 1 {
		every = 1
	}
	if s.sincePoll >= every || s.QueueLen() == 0 {
		s.sincePoll = 0
		s.Poll()
	}
	if s.stopped {
		return false
	}
	if u := s.dequeue(); u != nil {
		// Implicit mode de-emphasizes the water-mark: balancing starts the
		// moment the processor begins its LAST queued unit (paper §4.2), so
		// replacement work can arrive while that unit still computes.
		if s.cfg.Mode == Implicit && s.QueueLen() == 0 {
			s.tr.Instant(trace.EvPolicy, s.p.Now(), trace.PolLowLoad, 0, 0)
			s.policy.OnLowLoad(s)
		}
		s.execute(u)
		s.sincePoll++
		s.checkLoad()
		return true
	}
	s.tr.Instant(trace.EvPolicy, s.p.Now(), trace.PolIdle, 0, 0)
	s.policy.OnIdle(s)
	if s.stopped {
		return false
	}
	// Idle wait doubles as the reliable transport's retransmission timer:
	// in dmcs reliable mode, WaitPollFor wakes early for expired streams
	// and retransmits before going back to sleep, so an idle processor
	// repairs lost messages without a dedicated thread. (The polling
	// thread's PollTag does the same during long computations.)
	s.c.WaitPollFor(s.cfg.IdleTick, substrate.CatIdle)
	return true
}

// Run drives the scheduler until Stop is called.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}
