package ilb

import (
	"prema/internal/recov"
	"prema/internal/substrate"
	"prema/internal/trace"
)

// This file is the ILB half of the crash-recovery protocol: the scheduler
// loop doubles as the failure detector's heartbeat (recovTick runs at every
// Step and every implicit-mode polling-thread wake-up), drives the periodic
// object checkpoints, and guards unit execution with the store's
// exactly-once watermarks.

// DownAware is an optional Policy extension: policies that track peers (work
// stealing partners, diffusion neighbours) implement it to drop a dead
// processor from their working state.
type DownAware interface {
	// OnProcDown fires once per live processor per crash verdict.
	OnProcDown(s *Scheduler, dead int)
}

// AttachRecov connects the scheduler to its crash-recovery handle. Call
// right after New, before the run starts.
func (s *Scheduler) AttachRecov(rp *recov.Proc) { s.rp = rp }

// Recov returns the scheduler's recovery handle (nil when recovery is off).
func (s *Scheduler) Recov() *recov.Proc { return s.rp }

// OnProcDown registers a callback invoked once for every crash verdict this
// processor observes (the core runtime hangs directory repair and orphan
// re-homing here).
func (s *Scheduler) OnProcDown(fn func(recov.Down)) {
	s.onDown = append(s.onDown, fn)
}

// PeerDown reports whether processor q is under a down verdict. Policies use
// it to skip dead partners; always false when recovery is off.
func (s *Scheduler) PeerDown(q int) bool {
	if s.rp == nil {
		return false
	}
	return s.rp.IsDown(q)
}

// recovTick is one heartbeat of the recovery subsystem: renew the lease,
// surface fresh crash verdicts, take a periodic checkpoint when due, and
// retry envelopes parked during directory repair. It charges modeled
// checkpoint cost but never consumes virtual time, so runs without a crash
// stay byte-identical with recovery enabled.
func (s *Scheduler) recovTick() {
	if s.rp == nil {
		return
	}
	for _, d := range s.rp.Tick() {
		coord := int64(0)
		if d.Coordinator {
			coord = 1
		}
		s.tr.Instant(trace.EvSuspect, s.p.Now(), int64(d.Proc), coord, 0)
		// Runtime callbacks first (transport dead-marking, directory repair,
		// orphan re-homing), then the policy reacts to the repaired world.
		for _, fn := range s.onDown {
			fn(d)
		}
		if da, ok := s.policy.(DownAware); ok {
			da.OnProcDown(s, d.Proc)
		}
	}
	if s.rp.CheckpointDue() {
		objects, bytes := s.l.CheckpointLocal()
		s.pendingCharge += s.rp.FinishCheckpoint(objects, bytes)
		s.tr.Instant(trace.EvCheckpoint, s.p.Now(), int64(objects), int64(bytes), 0)
	}
	// Checkpoint costs accrue silently and hit the processor ledger only
	// once recovery has engaged (a crash verdict exists): a crash-free run
	// stays byte-identical to one without recovery, while a crashed run's
	// accounts carry the full accrued overhead (see recov.Store.Engaged).
	if s.pendingCharge > 0 && s.rp.Store().Engaged() {
		s.p.Charge(substrate.CatMessaging, s.pendingCharge)
		s.pendingCharge = 0
	}
	s.l.RetryHeld()
}
