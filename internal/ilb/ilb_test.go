package ilb

import (
	"fmt"
	"testing"

	"prema/internal/dmcs"
	"prema/internal/mol"
	"prema/internal/sim"
)

func newSched(p *sim.Proc, mode Mode) *Scheduler {
	l := mol.New(dmcs.New(p), mol.DefaultConfig())
	return New(l, DefaultConfig(mode), NopPolicy{})
}

func TestFIFOExecutionAndLoadAccounting(t *testing.T) {
	e := sim.NewEngine(sim.Config{Seed: 1})
	var ran []int
	e.Spawn("p", func(p *sim.Proc) {
		s := newSched(p, Explicit)
		h := s.Mol().RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
			ran = append(ran, data.(int))
		})
		mp := s.Mol().Register("obj", 8)
		for i := 0; i < 5; i++ {
			s.Message(mp, h, i, 0, float64(i+1))
		}
		if s.Load() != 1+2+3+4+5 {
			t.Errorf("load = %v", s.Load())
		}
		if s.QueueLen() != 5 {
			t.Errorf("queue len = %d", s.QueueLen())
		}
		for i := 0; i < 5; i++ {
			u := s.dequeue()
			if u == nil {
				t.Fatal("queue ran dry")
			}
			s.execute(u)
		}
		if s.Load() != 0 || s.dequeue() != nil {
			t.Errorf("residual load %v", s.Load())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range ran {
		if v != i {
			t.Fatalf("execution order %v", ran)
		}
	}
}

func TestPackUnitsMarksStolen(t *testing.T) {
	e := sim.NewEngine(sim.Config{Seed: 1})
	e.Spawn("p", func(p *sim.Proc) {
		s := newSched(p, Explicit)
		h := s.Mol().RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {})
		a := s.Mol().Register("a", 8)
		b := s.Mol().Register("b", 8)
		s.Message(a, h, nil, 0, 2)
		s.Message(b, h, nil, 0, 3)
		s.Message(a, h, nil, 0, 4)
		envs := s.packUnits(s.Mol().Lookup(a))
		if len(envs) != 2 {
			t.Fatalf("packed %d envelopes", len(envs))
		}
		if s.Load() != 3 {
			t.Fatalf("load after pack = %v", s.Load())
		}
		if s.QueueLen() != 1 {
			t.Fatalf("queue len after pack = %d", s.QueueLen())
		}
		u := s.dequeue()
		if u == nil || u.Obj.MP != b {
			t.Fatal("dequeue should skip stolen units")
		}
		if s.dequeue() != nil {
			t.Fatal("stolen units must not execute")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStealableObjectsExcludesExecuting(t *testing.T) {
	e := sim.NewEngine(sim.Config{Seed: 1})
	e.Spawn("p", func(p *sim.Proc) {
		s := newSched(p, Explicit)
		var inside []string
		h := s.Mol().RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
			for _, o := range s.StealableObjects() {
				inside = append(inside, o.Data.(string))
			}
		})
		a := s.Mol().Register("a", 8)
		s.Message(a, h, nil, 0, 1)
		s.Message(a, h, nil, 0, 1) // second unit on same object
		b := s.Mol().Register("b", 8)
		s.Message(b, h, nil, 0, 1)
		u := s.dequeue() // unit on a
		s.execute(u)
		// While a's handler ran, only b was stealable even though a still had
		// a queued unit.
		if len(inside) != 1 || inside[0] != "b" {
			t.Fatalf("stealable during execution = %v", inside)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestImplicitComputePreemption is the heart of the paper: a system message
// arriving mid-unit is handled within one polling interval in implicit mode,
// but only after the unit completes in explicit mode.
func TestImplicitComputePreemption(t *testing.T) {
	for _, mode := range []Mode{Implicit, Explicit} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			e := sim.NewEngine(sim.Config{Seed: 1})
			var handledAt sim.Time
			e.Spawn("worker", func(p *sim.Proc) {
				s := newSched(p, mode)
				s.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
					handledAt = p.Now()
				})
				h := s.Mol().RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
					s.Compute(1 * sim.Second)
				})
				mp := s.Mol().Register("obj", 8)
				s.Message(mp, h, nil, 0, 1)
				u := s.dequeue()
				s.execute(u)
				s.Poll() // explicit mode sees the message here
			})
			e.Spawn("sender", func(p *sim.Proc) {
				// SPMD construction: same layers, same registration order, so
				// the system handler gets the same ID as on the worker.
				c := dmcs.New(p)
				l := mol.New(c, mol.DefaultConfig())
				s := New(l, DefaultConfig(mode), NopPolicy{})
				h := s.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {})
				p.Advance(100*sim.Millisecond, sim.CatCompute)
				c.SendTagged(0, h, nil, 8, sim.TagSystem)
			})
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			if mode == Implicit {
				if handledAt > 120*sim.Millisecond {
					t.Fatalf("implicit: system message handled at %v, want ~100ms", handledAt)
				}
				if handledAt < 100*sim.Millisecond {
					t.Fatalf("handled before it was sent: %v", handledAt)
				}
			} else {
				if handledAt < 1*sim.Second {
					t.Fatalf("explicit: system message handled at %v, want >= 1s", handledAt)
				}
			}
		})
	}
}

func TestPollThreadCostAccounted(t *testing.T) {
	e := sim.NewEngine(sim.Config{Seed: 1})
	e.Spawn("p", func(p *sim.Proc) {
		cfg := DefaultConfig(Implicit)
		cfg.PollInterval = 10 * sim.Millisecond
		cfg.PollCost = 5 * sim.Microsecond
		l := mol.New(dmcs.New(p), mol.DefaultConfig())
		s := New(l, cfg, NopPolicy{})
		s.Compute(100 * sim.Millisecond) // 9 interior wakeups
		if s.Stats.PollWakes != 9 {
			t.Errorf("poll wakes = %d, want 9", s.Stats.PollWakes)
		}
		if got := p.Account()[sim.CatPollThread]; got != 45*sim.Microsecond {
			t.Errorf("poll thread time = %v", got)
		}
		if got := p.Account()[sim.CatCompute]; got != 100*sim.Millisecond {
			t.Errorf("compute time = %v", got)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunStopsOnBroadcast(t *testing.T) {
	e := sim.NewEngine(sim.Config{Seed: 1})
	for i := 0; i < 2; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			s := newSched(p, Explicit)
			hStop := s.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
				s.Stop()
			})
			if p.ID() == 1 {
				p.Advance(30*sim.Millisecond, sim.CatCompute)
				s.Comm().SendTagged(0, hStop, nil, 8, sim.TagSystem)
				s.Stop()
				return
			}
			s.Run()
			if p.Now() > 500*sim.Millisecond {
				t.Errorf("run loop survived too long: %v", p.Now())
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if Explicit.String() != "explicit" || Implicit.String() != "implicit" {
		t.Fatal("mode strings")
	}
}

// TestPollEveryGatesApplicationPolls: with PollEvery=3 a busy scheduler only
// hands control to the runtime every third unit, so a system message waits
// up to three units in explicit mode.
func TestPollEveryGatesApplicationPolls(t *testing.T) {
	e := sim.NewEngine(sim.Config{Seed: 6})
	var handledAt sim.Time
	e.Spawn("worker", func(p *sim.Proc) {
		l := mol.New(dmcs.New(p), mol.DefaultConfig())
		cfg := DefaultConfig(Explicit)
		cfg.PollEvery = 3
		s := New(l, cfg, NopPolicy{})
		s.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
			handledAt = p.Now()
			s.Stop()
		})
		h := s.Mol().RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
			s.Compute(100 * sim.Millisecond)
		})
		mp := s.Mol().Register("obj", 8)
		for i := 0; i < 9; i++ {
			s.Message(mp, h, nil, 0, 0.1)
		}
		s.Run()
	})
	e.Spawn("sender", func(p *sim.Proc) {
		l := mol.New(dmcs.New(p), mol.DefaultConfig())
		s := New(l, DefaultConfig(Explicit), NopPolicy{})
		h := s.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {})
		p.Advance(10*sim.Millisecond, sim.CatCompute) // lands mid-first-unit
		s.Comm().SendTagged(0, h, nil, 8, sim.TagSystem)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// First poll happens after 3 units (300ms); the message sat until then.
	if handledAt < 300*sim.Millisecond {
		t.Fatalf("handled at %v; PollEvery=3 should delay to >=300ms", handledAt)
	}
	if handledAt > 320*sim.Millisecond {
		t.Fatalf("handled too late: %v", handledAt)
	}
}

func TestSetWaterMark(t *testing.T) {
	e := sim.NewEngine(sim.Config{Seed: 1})
	e.Spawn("p", func(p *sim.Proc) {
		s := newSched(p, Explicit)
		if s.WaterMark() != DefaultConfig(Explicit).WaterMark {
			t.Error("initial watermark")
		}
		s.SetWaterMark(99)
		if s.WaterMark() != 99 {
			t.Error("set watermark")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerAccessors(t *testing.T) {
	e := sim.NewEngine(sim.Config{Seed: 1})
	e.Spawn("p", func(p *sim.Proc) {
		s := newSched(p, Implicit)
		if s.Proc() != p || s.Comm() == nil || s.Mol() == nil {
			t.Error("accessors")
		}
		if s.Policy().Name() != "none" {
			t.Error("policy name")
		}
		if s.Config().Mode != Implicit {
			t.Error("config")
		}
		if s.Executing() || !s.CurrentObject().IsNil() {
			t.Error("nothing should be executing")
		}
		var sawExecuting bool
		h := s.Mol().RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
			sawExecuting = s.Executing() && s.CurrentObject() == obj.MP
		})
		mp := s.Mol().Register("x", 8)
		s.Message(mp, h, nil, 0, 1)
		u := s.dequeue()
		s.execute(u)
		if !sawExecuting {
			t.Error("Executing/CurrentObject during handler")
		}
		if s.QueuedWeight(s.Mol().Lookup(mp)) != 0 {
			t.Error("queued weight after execution")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNopPolicyIsInert(t *testing.T) {
	var p NopPolicy
	if p.Name() != "none" {
		t.Fatal("name")
	}
	// All hooks are no-ops on a nil scheduler.
	p.Setup(nil)
	p.OnLowLoad(nil)
	p.OnIdle(nil)
	p.OnPoll(nil)
}

func TestUnitWeightAccessor(t *testing.T) {
	u := &Unit{Env: &mol.Envelope{Weight: 2.5}}
	if u.Weight() != 2.5 {
		t.Fatal("unit weight")
	}
}

func TestComputeZeroPollInterval(t *testing.T) {
	e := sim.NewEngine(sim.Config{Seed: 1})
	e.Spawn("p", func(p *sim.Proc) {
		cfg := DefaultConfig(Implicit)
		cfg.PollInterval = 0 // degenerate: compute runs unsliced
		l := mol.New(dmcs.New(p), mol.DefaultConfig())
		s := New(l, cfg, NopPolicy{})
		s.Compute(100 * sim.Millisecond)
		if p.Now() != 100*sim.Millisecond {
			t.Errorf("time = %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
