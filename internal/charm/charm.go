// Package charm reimplements the runtime model of Charm++ (Kalé & Krishnan,
// OOPSLA 1993) closely enough to evaluate the paper's comparison: a chare
// array whose elements are driven by entry-method messages selected by a
// per-processor pick-and-process loop, a load balancing database fed by
// runtime measurement of entry executions, an AtSync() barrier, and plug-in
// central load balancing strategies (Greedy, Refine, Metis-based — see
// strategies.go).
//
// Two properties matter for the paper's argument and are modeled exactly:
//
//  1. Entry methods execute atomically: the pick-and-process loop never
//     preempts a running method, so balancer messages wait behind coarse
//     grained work (paper §3.2).
//  2. Load prediction is measurement-based: the database records what each
//     chare cost in the previous LB interval and assumes persistence (the
//     "principle of persistent computation and communication structure") —
//     which misfires for highly adaptive applications.
package charm

import (
	"fmt"
	"os"
	"sort"

	"prema/internal/dmcs"
	"prema/internal/sim"
)

// EntryID names a registered entry method.
type EntryID int

// EntryMethod is an entry-method body. It runs atomically at the chare's
// current host; src is the invoking processor.
type EntryMethod func(rt *Runtime, c *Chare, src int, data any)

// Chare is one element of the chare array.
type Chare struct {
	Index int
	Data  any
	// Size is the modeled serialized size in bytes (migration cost).
	Size int
	// measured accumulates virtual seconds of entry execution since the
	// last load balancing step — the LB database's view of this chare.
	measured float64
	synced   bool
	resume   EntryID
}

// Measured returns the chare's accumulated measured load (seconds) in the
// current LB interval.
func (c *Chare) Measured() float64 { return c.measured }

// Options configures a Runtime.
type Options struct {
	// Strategy picks the central load balancing strategy invoked at AtSync
	// barriers; nil disables rebalancing (AtSync still synchronizes).
	Strategy Strategy
	// SchedCPU is pick-and-process overhead charged per scheduled message.
	SchedCPU sim.Time
	// StrategyCPUPerChare prices the central strategy computation at the
	// root, charged per database record.
	StrategyCPUPerChare sim.Time
	// MigrateFixed is fixed per-chare migration overhead in bytes.
	MigrateFixed int
	// IdleTick bounds idle blocking in the scheduler loop.
	IdleTick sim.Time
}

// DefaultOptions returns options matching the experiments.
func DefaultOptions(s Strategy) Options {
	return Options{
		Strategy:            s,
		SchedCPU:            5 * sim.Microsecond,
		StrategyCPUPerChare: 2 * sim.Microsecond,
		MigrateFixed:        64,
		IdleTick:            50 * sim.Millisecond,
	}
}

// ChareLoad is one database record shipped to the central strategy.
type ChareLoad struct {
	Index int
	Proc  int
	Load  float64 // measured seconds over the last interval
}

// Strategy computes a new chare->processor mapping from measured loads.
// Implementations must be deterministic.
type Strategy interface {
	Name() string
	// Remap returns the new processor for every chare index it wants to
	// (re)place; omitted indices stay put. nprocs is the machine size.
	Remap(loads []ChareLoad, nprocs int) map[int]int
}

// Wire message payloads.
type invokeMsg struct {
	Index int
	Entry EntryID
	Data  any
	Size  int
	Src   int
	Hops  int
}

type contributionMsg struct {
	Proc  int
	Loads []ChareLoad
}

type migrateMsg struct{ Chare *Chare }

// Runtime is one processor's Charm-style runtime.
type Runtime struct {
	p   *sim.Proc
	c   *dmcs.Comm
	opt Options

	entries []EntryMethod
	chares  map[int]*Chare
	loc     []int // replicated best-known chare->proc mapping
	queue   []*invokeMsg

	// AtSync barrier state.
	arraySize      int
	syncedCount    int
	lbWaiting      bool
	contributions  map[int]contributionMsg // root: keyed by contributor
	expectArrive   int
	arrived        int
	mappingSeen    bool
	inEntry        bool
	needContribute bool

	stopped bool

	hInvoke     dmcs.HandlerID
	hContribute dmcs.HandlerID
	hMapping    dmcs.HandlerID
	hMigrate    dmcs.HandlerID
	hStop       dmcs.HandlerID

	Stats Stats
}

// Stats counts runtime activity on one processor.
type Stats struct {
	EntriesRun   int
	LBSteps      int
	CharesMoved  int
	ForwardHops  int
	SyncWaitTime sim.Time
}

// NewRuntime builds a Charm-style runtime on a simulated processor. SPMD
// discipline applies: all processors construct runtimes and register entry
// methods in the same order.
func NewRuntime(p *sim.Proc, opt Options) *Runtime {
	rt := &Runtime{p: p, c: dmcs.New(p), opt: opt,
		chares: make(map[int]*Chare), contributions: make(map[int]contributionMsg)}
	rt.hInvoke = rt.c.Register(func(c *dmcs.Comm, src int, data any, size int) {
		rt.enqueue(data.(*invokeMsg))
	})
	rt.hContribute = rt.c.Register(func(c *dmcs.Comm, src int, data any, size int) {
		m := data.(contributionMsg)
		rt.contributions[m.Proc] = m
		rt.maybeRunStrategy()
	})
	rt.hMapping = rt.c.Register(func(c *dmcs.Comm, src int, data any, size int) {
		rt.applyMapping(data.([]int))
	})
	rt.hMigrate = rt.c.Register(func(c *dmcs.Comm, src int, data any, size int) {
		ch := data.(migrateMsg).Chare
		rt.chares[ch.Index] = ch
		rt.arrived++
		rt.maybeFinishLB()
	})
	rt.hStop = rt.c.Register(func(c *dmcs.Comm, src int, data any, size int) {
		rt.stopped = true
	})
	return rt
}

// Proc returns the underlying simulated processor.
func (rt *Runtime) Proc() *sim.Proc { return rt.p }

// Comm returns the underlying active-message endpoint for application use
// (e.g. completion notifications in the benchmark).
func (rt *Runtime) Comm() *dmcs.Comm { return rt.c }

// RegisterEntry installs an entry method; registration order must match on
// every processor.
func (rt *Runtime) RegisterEntry(fn EntryMethod) EntryID {
	rt.entries = append(rt.entries, fn)
	return EntryID(len(rt.entries) - 1)
}

// CreateArray creates an n-element chare array, block-mapped over the
// processors (the runtime's initial placement). Every processor calls
// CreateArray with the same arguments; each instantiates only its local
// elements, with data(i) supplying element state and serialized size.
func (rt *Runtime) CreateArray(n int, data func(index int) (state any, size int)) {
	rt.arraySize = n
	rt.loc = make([]int, n)
	np := rt.p.Engine().NumProcs()
	for i := 0; i < n; i++ {
		owner := i * np / n
		rt.loc[i] = owner
		if owner == rt.p.ID() {
			d, size := data(i)
			rt.chares[i] = &Chare{Index: i, Data: d, Size: size, resume: -1}
		}
	}
}

// Local returns the indices of locally resident chares, ascending.
func (rt *Runtime) Local() []int {
	idx := make([]int, 0, len(rt.chares))
	for i := range rt.chares {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}

// Lookup returns the local chare with the given index, or nil.
func (rt *Runtime) Lookup(index int) *Chare { return rt.chares[index] }

// Invoke sends an entry-method message to chare index (a proxy send).
func (rt *Runtime) Invoke(index int, e EntryID, data any, size int) {
	m := &invokeMsg{Index: index, Entry: e, Data: data, Size: size, Src: rt.p.ID()}
	if rt.chares[index] != nil {
		rt.queue = append(rt.queue, m)
		return
	}
	rt.c.Send(rt.loc[index], rt.hInvoke, m, size+32)
}

// enqueue accepts an arriving invocation, forwarding if the chare moved.
func (rt *Runtime) enqueue(m *invokeMsg) {
	if rt.chares[m.Index] == nil {
		m.Hops++
		rt.Stats.ForwardHops++
		if m.Hops > 1<<12 {
			panic(fmt.Sprintf("charm: routing loop for chare %d", m.Index))
		}
		rt.c.Send(rt.loc[m.Index], rt.hInvoke, m, m.Size+32)
		return
	}
	rt.queue = append(rt.queue, m)
}

// Compute consumes entry-method CPU. Execution is atomic: there is no
// polling thread, so nothing else is processed until the entry returns.
func (rt *Runtime) Compute(d sim.Time) { rt.p.Advance(d, sim.CatCompute) }

// AtSync signals that chare c reached a load balancing point; it resumes
// via the given entry once balancing completes (Charm++'s ResumeFromSync).
// When every local chare has synced, the processor contributes its
// measurements to the central strategy on processor 0.
func (rt *Runtime) AtSync(c *Chare, resume EntryID) {
	if c.synced {
		return
	}
	c.synced = true
	c.resume = resume
	rt.syncedCount++
	if rt.syncedCount == len(rt.chares) {
		// AtSync is normally the last call of an entry method; the entry's
		// execution time must land in the database before contributing, so
		// defer until the entry returns (Charm++ likewise contributes from
		// the scheduler, not from inside the entry).
		if rt.inEntry {
			rt.needContribute = true
		} else {
			rt.contribute()
		}
	}
}

func (rt *Runtime) contribute() {
	rt.lbWaiting = true
	loads := make([]ChareLoad, 0, len(rt.chares))
	for _, i := range rt.Local() {
		loads = append(loads, ChareLoad{Index: i, Proc: rt.p.ID(), Load: rt.chares[i].measured})
	}
	msg := contributionMsg{Proc: rt.p.ID(), Loads: loads}
	if rt.p.ID() == 0 {
		rt.contributions[0] = msg
		rt.maybeRunStrategy()
		return
	}
	rt.c.Send(0, rt.hContribute, msg, 16*len(loads)+32)
}

// owners returns (root side) the set of processors that currently own at
// least one chare — the processors whose contributions the reduction waits
// for. Processors stripped of every chare have nothing to sync.
func (rt *Runtime) owners() map[int]bool {
	out := make(map[int]bool)
	for _, p := range rt.loc {
		out[p] = true
	}
	return out
}

// maybeRunStrategy (root only) runs the strategy once every chare-owning
// processor has contributed, then broadcasts and applies the new mapping.
func (rt *Runtime) maybeRunStrategy() {
	if rt.p.ID() != 0 {
		return
	}
	owners := rt.owners()
	for p := range owners {
		if _, ok := rt.contributions[p]; !ok {
			return
		}
	}
	if len(owners) == 0 {
		return
	}
	all := make([]ChareLoad, 0, rt.arraySize)
	for _, c := range rt.contributions {
		all = append(all, c.Loads...)
	}
	rt.contributions = make(map[int]contributionMsg)
	sort.Slice(all, func(i, j int) bool { return all[i].Index < all[j].Index })

	rt.Stats.LBSteps++
	if debugLB {
		hist := map[float64]int{}
		perProc := map[int]float64{}
		for _, c := range all {
			hist[c.Load]++
			perProc[c.Proc] += c.Load
		}
		fmt.Printf("[%8.3f] LB step %d: %d records, load histogram %v, proc spread %v\n",
			rt.p.Now().Seconds(), rt.Stats.LBSteps, len(all), hist, perProc)
	}
	if d := rt.opt.StrategyCPUPerChare * sim.Time(len(all)); d > 0 {
		rt.p.Advance(d, sim.CatScheduling)
	}
	newLoc := append([]int(nil), rt.loc...)
	if rt.opt.Strategy != nil {
		for idx, proc := range rt.opt.Strategy.Remap(all, rt.p.Engine().NumProcs()) {
			newLoc[idx] = proc
		}
	}
	for i := 1; i < rt.p.Engine().NumProcs(); i++ {
		rt.c.Send(i, rt.hMapping, newLoc, 4*len(newLoc)+32)
	}
	rt.applyMapping(newLoc)
}

// applyMapping installs the broadcast mapping, emigrates chares that no
// longer belong here, and records how many must immigrate.
func (rt *Runtime) applyMapping(newLoc []int) {
	old := rt.loc
	rt.loc = append([]int(nil), newLoc...)
	rt.mappingSeen = true
	rt.lbWaiting = true // processors with no chares join the LB window here
	me := rt.p.ID()
	for _, i := range rt.Local() {
		if newLoc[i] != me {
			ch := rt.chares[i]
			delete(rt.chares, i)
			rt.Stats.CharesMoved++
			rt.c.Send(newLoc[i], rt.hMigrate, migrateMsg{ch}, ch.Size+rt.opt.MigrateFixed)
		}
	}
	expect := 0
	for i := range newLoc {
		if newLoc[i] == me && old[i] != me {
			expect++
		}
	}
	rt.expectArrive = expect
	rt.maybeFinishLB()
}

// maybeFinishLB completes the LB step once the mapping is known and all
// immigrating chares have arrived: counters reset and every local chare's
// resume entry is scheduled.
func (rt *Runtime) maybeFinishLB() {
	if !rt.mappingSeen || rt.arrived < rt.expectArrive {
		return
	}
	rt.lbWaiting = false
	rt.mappingSeen = false
	rt.arrived = 0
	rt.expectArrive = 0
	rt.syncedCount = 0
	for _, i := range rt.Local() {
		c := rt.chares[i]
		c.measured = 0
		c.synced = false
		if c.resume >= 0 {
			rt.queue = append(rt.queue, &invokeMsg{Index: i, Entry: c.resume, Src: rt.p.ID()})
			c.resume = -1
		}
	}
}

// Stop makes Run return.
func (rt *Runtime) Stop() { rt.stopped = true }

// StopAll broadcasts termination to every processor, then stops locally.
func (rt *Runtime) StopAll() {
	for i := 0; i < rt.p.Engine().NumProcs(); i++ {
		if i != rt.p.ID() {
			rt.c.Send(i, rt.hStop, nil, 8)
		}
	}
	rt.stopped = true
}

// Step is one pick-and-process iteration. It returns false once stopped.
func (rt *Runtime) Step() bool {
	if rt.stopped {
		return false
	}
	rt.c.Poll()
	if rt.stopped {
		return false
	}
	if len(rt.queue) > 0 && !rt.lbWaiting {
		m := rt.queue[0]
		rt.queue = rt.queue[1:]
		if rt.opt.SchedCPU > 0 {
			rt.p.Advance(rt.opt.SchedCPU, sim.CatScheduling)
		}
		ch := rt.chares[m.Index]
		if ch == nil {
			rt.enqueue(m) // moved while queued locally: chase it
			return true
		}
		rt.Stats.EntriesRun++
		start := rt.p.Now()
		rt.inEntry = true
		rt.entries[m.Entry](rt, ch, m.Src, m.Data)
		rt.inEntry = false
		ch.measured += (rt.p.Now() - start).Seconds()
		if rt.needContribute {
			rt.needContribute = false
			rt.contribute()
		}
		return true
	}
	start := rt.p.Now()
	rt.p.WaitMsgFor(rt.opt.IdleTick, sim.CatIdle)
	if rt.lbWaiting {
		rt.Stats.SyncWaitTime += rt.p.Now() - start
	}
	return true
}

// Run drives the pick-and-process loop until Stop.
func (rt *Runtime) Run() {
	for rt.Step() {
	}
}

// debugLB enables load-database tracing at the root strategy (set via the
// CHARM_DEBUG environment variable; test-only).
var debugLB = os.Getenv("CHARM_DEBUG") != ""
