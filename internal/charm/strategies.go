package charm

import (
	"container/heap"
	"math/rand"
	"sort"

	"prema/internal/graph"
	"prema/internal/parmetis"
)

// GreedyLB is Charm++'s simplest central strategy: sort chares by measured
// load descending and repeatedly assign the heaviest unplaced chare to the
// currently lightest processor. Quality is high; migration volume can be
// large (the strategy ignores current placement).
type GreedyLB struct{}

// Name implements Strategy.
func (GreedyLB) Name() string { return "greedy" }

// procHeap is a min-heap of processor loads.
type procHeap struct {
	load []float64
	id   []int
}

func (h *procHeap) Len() int { return len(h.id) }
func (h *procHeap) Less(i, j int) bool {
	if h.load[i] != h.load[j] {
		return h.load[i] < h.load[j]
	}
	return h.id[i] < h.id[j]
}
func (h *procHeap) Swap(i, j int) {
	h.load[i], h.load[j] = h.load[j], h.load[i]
	h.id[i], h.id[j] = h.id[j], h.id[i]
}
func (h *procHeap) Push(x any) {
	p := x.([2]float64)
	h.load = append(h.load, p[0])
	h.id = append(h.id, int(p[1]))
}
func (h *procHeap) Pop() any {
	n := len(h.id)
	v := [2]float64{h.load[n-1], float64(h.id[n-1])}
	h.load = h.load[:n-1]
	h.id = h.id[:n-1]
	return v
}

// Remap implements Strategy.
func (GreedyLB) Remap(loads []ChareLoad, nprocs int) map[int]int {
	sorted := append([]ChareLoad(nil), loads...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Load != sorted[j].Load {
			return sorted[i].Load > sorted[j].Load
		}
		return sorted[i].Index < sorted[j].Index
	})
	h := &procHeap{}
	for p := 0; p < nprocs; p++ {
		h.load = append(h.load, 0)
		h.id = append(h.id, p)
	}
	heap.Init(h)
	out := make(map[int]int, len(loads))
	for _, c := range sorted {
		v := heap.Pop(h).([2]float64)
		out[c.Index] = int(v[1])
		v[0] += c.Load
		heap.Push(h, v)
	}
	return out
}

// RefineLB moves chares only off overloaded processors, minimizing
// migrations: while some processor exceeds (1+Tolerance) x average, its
// heaviest chare moves to the currently lightest processor.
type RefineLB struct {
	// Tolerance is the allowed overload fraction (default 0.05).
	Tolerance float64
}

// Name implements Strategy.
func (r RefineLB) Name() string { return "refine" }

// Remap implements Strategy.
func (r RefineLB) Remap(loads []ChareLoad, nprocs int) map[int]int {
	tol := r.Tolerance
	if tol <= 0 {
		tol = 0.05
	}
	procLoad := make([]float64, nprocs)
	perProc := make([][]ChareLoad, nprocs)
	total := 0.0
	for _, c := range loads {
		procLoad[c.Proc] += c.Load
		perProc[c.Proc] = append(perProc[c.Proc], c)
		total += c.Load
	}
	for p := range perProc {
		sort.SliceStable(perProc[p], func(i, j int) bool {
			if perProc[p][i].Load != perProc[p][j].Load {
				return perProc[p][i].Load > perProc[p][j].Load
			}
			return perProc[p][i].Index < perProc[p][j].Index
		})
	}
	avg := total / float64(nprocs)
	limit := avg * (1 + tol)
	out := make(map[int]int)
	for iter := 0; iter < len(loads); iter++ {
		// Heaviest processor above the limit.
		heavy := -1
		for p := 0; p < nprocs; p++ {
			if procLoad[p] > limit && (heavy == -1 || procLoad[p] > procLoad[heavy]) {
				heavy = p
			}
		}
		if heavy == -1 {
			break
		}
		light := 0
		for p := 1; p < nprocs; p++ {
			if procLoad[p] < procLoad[light] {
				light = p
			}
		}
		if len(perProc[heavy]) == 0 {
			break
		}
		// Move the heaviest chare that strictly improves the pair; anything
		// else would thrash load back and forth.
		moved := false
		for i, c := range perProc[heavy] {
			if procLoad[light]+c.Load >= procLoad[heavy] {
				continue
			}
			perProc[heavy] = append(perProc[heavy][:i], perProc[heavy][i+1:]...)
			procLoad[heavy] -= c.Load
			procLoad[light] += c.Load
			perProc[light] = append(perProc[light], c)
			out[c.Index] = light
			moved = true
			break
		}
		if !moved {
			break
		}
	}
	return out
}

// MetisLB feeds the database to the graph partitioner, as Charm++'s
// Metis-based strategies do: chares become vertices weighted by measured
// load, and the adaptive repartitioner balances them while minimizing
// migration (no communication edges are available at this interface, so the
// objective reduces to balance + movement).
type MetisLB struct {
	// Alpha is the relative cost factor handed to the repartitioner.
	Alpha float64
}

// Name implements Strategy.
func (m MetisLB) Name() string { return "metis" }

// Remap implements Strategy.
func (m MetisLB) Remap(loads []ChareLoad, nprocs int) map[int]int {
	sorted := append([]ChareLoad(nil), loads...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	b := graph.NewBuilder(len(sorted))
	oldPart := make([]int, len(sorted))
	for i, c := range sorted {
		w := int64(c.Load * 1e6)
		if w < 1 {
			w = 1
		}
		b.SetVWgt(i, w)
		oldPart[i] = c.Proc
	}
	g := b.Build()
	opt := parmetis.DefaultOptions()
	if m.Alpha > 0 {
		opt.Alpha = m.Alpha
	}
	newPart := parmetis.AdaptiveRepart(g, nprocs, oldPart, opt)
	out := make(map[int]int, len(sorted))
	for i, c := range sorted {
		out[c.Index] = newPart[i]
	}
	return out
}

// RotateLB cyclically shifts every chare to the next processor. It is
// Charm++'s testing strategy: maximum migration, no load awareness — the
// floor against which real strategies are judged.
type RotateLB struct{}

// Name implements Strategy.
func (RotateLB) Name() string { return "rotate" }

// Remap implements Strategy.
func (RotateLB) Remap(loads []ChareLoad, nprocs int) map[int]int {
	out := make(map[int]int, len(loads))
	for _, c := range loads {
		out[c.Index] = (c.Proc + 1) % nprocs
	}
	return out
}

// RandCentLB places every chare on a processor drawn from a deterministic
// per-step pseudo-random sequence (Charm++'s RandCentLB): load-oblivious
// but statistically balanced for many similar chares.
type RandCentLB struct {
	// Seed drives the deterministic placement sequence.
	Seed int64
	step int64
}

// Name implements Strategy.
func (r *RandCentLB) Name() string { return "randcent" }

// Remap implements Strategy.
func (r *RandCentLB) Remap(loads []ChareLoad, nprocs int) map[int]int {
	r.step++
	rng := rand.New(rand.NewSource(r.Seed*1_000_003 + r.step))
	sorted := append([]ChareLoad(nil), loads...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	out := make(map[int]int, len(sorted))
	for _, c := range sorted {
		out[c.Index] = rng.Intn(nprocs)
	}
	return out
}
