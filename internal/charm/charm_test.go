package charm

import (
	"fmt"
	"math"
	"testing"

	"prema/internal/dmcs"
	"prema/internal/sim"
)

func mkLoads(loads ...float64) []ChareLoad {
	out := make([]ChareLoad, len(loads))
	for i, l := range loads {
		out[i] = ChareLoad{Index: i, Proc: 0, Load: l}
	}
	return out
}

func procLoads(loads []ChareLoad, m map[int]int, nprocs int) []float64 {
	pl := make([]float64, nprocs)
	for _, c := range loads {
		p := c.Proc
		if np, ok := m[c.Index]; ok {
			p = np
		}
		pl[p] += c.Load
	}
	return pl
}

func spread(pl []float64) float64 {
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range pl {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	return max - min
}

func TestGreedyLBBalances(t *testing.T) {
	loads := mkLoads(10, 9, 8, 7, 6, 5, 4, 3, 2, 1)
	m := GreedyLB{}.Remap(loads, 3)
	pl := procLoads(loads, m, 3)
	if spread(pl) > 3 {
		t.Fatalf("greedy spread %v: %v", spread(pl), pl)
	}
}

func TestRefineLBMovesLittle(t *testing.T) {
	// Proc 0 heavily loaded, proc 1/2 light.
	var loads []ChareLoad
	for i := 0; i < 8; i++ {
		loads = append(loads, ChareLoad{Index: i, Proc: 0, Load: 5})
	}
	loads = append(loads, ChareLoad{Index: 8, Proc: 1, Load: 5}, ChareLoad{Index: 9, Proc: 2, Load: 5})
	m := RefineLB{}.Remap(loads, 3)
	pl := procLoads(loads, m, 3)
	if spread(pl) > 6 {
		t.Fatalf("refine spread %v: %v", spread(pl), pl)
	}
	if len(m) > 6 {
		t.Fatalf("refine moved %d chares; should be minimal", len(m))
	}
	greedy := GreedyLB{}.Remap(loads, 3)
	if len(m) > len(greedy) {
		t.Fatalf("refine (%d moves) should move no more than greedy (%d)", len(m), len(greedy))
	}
}

func TestMetisLBBalances(t *testing.T) {
	var loads []ChareLoad
	for i := 0; i < 16; i++ {
		p := 0
		if i >= 8 {
			p = 1
		}
		w := 1.0
		if i < 4 {
			w = 10
		}
		loads = append(loads, ChareLoad{Index: i, Proc: p, Load: w})
	}
	m := MetisLB{}.Remap(loads, 4)
	pl := procLoads(loads, m, 4)
	total := 0.0
	for _, v := range pl {
		total += v
	}
	for p, v := range pl {
		if v > total/4*1.6 {
			t.Fatalf("metis left proc %d with %v of %v: %v", p, v, total, pl)
		}
	}
}

func TestStrategiesDeterministic(t *testing.T) {
	loads := mkLoads(5, 3, 8, 1, 9, 2, 7, 4)
	for _, s := range []Strategy{GreedyLB{}, RefineLB{}, MetisLB{}} {
		a := s.Remap(loads, 4)
		b := s.Remap(loads, 4)
		if len(a) != len(b) {
			t.Fatalf("%s nondeterministic", s.Name())
		}
		for k, v := range a {
			if b[k] != v {
				t.Fatalf("%s nondeterministic at %d", s.Name(), k)
			}
		}
	}
}

// charmApp runs an iterative chare workload: n chares, iters iterations,
// weight(i, iter) virtual seconds of work each, AtSync between iterations
// when sync is true. Returns the engine.
func charmApp(t *testing.T, nprocs, n, iters int, sync bool, strat Strategy, weight func(i, iter int) sim.Time) *sim.Engine {
	t.Helper()
	e := sim.NewEngine(sim.Config{Seed: 21})
	for pid := 0; pid < nprocs; pid++ {
		e.Spawn(fmt.Sprintf("p%d", pid), func(p *sim.Proc) {
			rt := NewRuntime(p, DefaultOptions(strat))
			// Per-chare state must live in Chare.Data so it migrates with
			// the chare.
			type chareState struct{ iter int }
			var done int
			var hDone dmcs.HandlerID
			hDone = rt.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
				done++
				if done == n {
					rt.StopAll()
				}
			})
			var eWork EntryID
			eWork = rt.RegisterEntry(func(rt *Runtime, ch *Chare, src int, data any) {
				st := ch.Data.(*chareState)
				rt.Compute(weight(ch.Index, st.iter))
				st.iter++
				switch {
				case st.iter >= iters:
					rt.Comm().Send(0, hDone, nil, 8)
				case sync:
					rt.AtSync(ch, eWork)
				default:
					rt.Invoke(ch.Index, eWork, nil, 0)
				}
			})
			rt.CreateArray(n, func(i int) (any, int) { return &chareState{}, 128 })
			// Seed the first iteration for local chares.
			for _, i := range rt.Local() {
				rt.Invoke(i, eWork, nil, 0)
			}
			rt.Run()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestChareArrayRunsAllIterations(t *testing.T) {
	e := charmApp(t, 4, 8, 3, false, nil, func(i, it int) sim.Time { return 10 * sim.Millisecond })
	var compute sim.Time
	for i := 0; i < 4; i++ {
		compute += e.Proc(i).Account()[sim.CatCompute]
	}
	if compute != 8*3*10*sim.Millisecond {
		t.Fatalf("total compute %v, want 240ms", compute)
	}
}

// TestAtSyncLBImprovesPersistentImbalance: with persistent per-chare weights
// (the regime Charm++ is designed for), greedy LB after the first iteration
// must beat the unbalanced no-sync run.
func TestAtSyncLBImprovesPersistentImbalance(t *testing.T) {
	// Chares 0..3 heavy (block-mapped onto proc 0), rest light.
	weight := func(i, it int) sim.Time {
		if i < 4 {
			return 200 * sim.Millisecond
		}
		return 20 * sim.Millisecond
	}
	eNone := charmApp(t, 4, 16, 4, false, nil, weight)
	eLB := charmApp(t, 4, 16, 4, true, GreedyLB{}, weight)
	if eLB.Makespan() >= eNone.Makespan() {
		t.Fatalf("AtSync+greedy %v not better than no-LB %v", eLB.Makespan(), eNone.Makespan())
	}
	// Chares must actually have migrated.
	moved := 0
	for i := 0; i < 4; i++ {
		// Stats live per runtime; recover via account heuristics instead:
		// at least procs 1..3 must have computed heavy chares; check that
		// proc 0 is no longer the unique maximum by a 2x margin.
		_ = i
	}
	_ = moved
	c0 := eLB.Proc(0).Account()[sim.CatCompute]
	cMax := sim.Time(0)
	for i := 1; i < 4; i++ {
		if c := eLB.Proc(i).Account()[sim.CatCompute]; c > cMax {
			cMax = c
		}
	}
	if c0 > 3*cMax {
		t.Fatalf("load stayed on proc 0: %v vs max other %v", c0, cMax)
	}
}

// TestAtSyncBarrierCost: AtSync introduces synchronization; with perfectly
// balanced weights LB cannot help, so the sync run must be no faster and
// should carry measurable barrier wait.
func TestAtSyncBarrierCostOnBalancedLoad(t *testing.T) {
	weight := func(i, it int) sim.Time { return 50 * sim.Millisecond }
	eNone := charmApp(t, 4, 8, 4, false, nil, weight)
	eSync := charmApp(t, 4, 8, 4, true, GreedyLB{}, weight)
	if eSync.Makespan() < eNone.Makespan() {
		t.Fatalf("sync run %v beat no-sync %v on balanced load", eSync.Makespan(), eNone.Makespan())
	}
}

// TestEntryAtomicity: a message arriving during a long entry is only
// processed after the entry completes — the pick-and-process property the
// paper criticizes.
func TestEntryAtomicity(t *testing.T) {
	e := sim.NewEngine(sim.Config{Seed: 2})
	var pokedAt sim.Time
	e.Spawn("p0", func(p *sim.Proc) {
		rt := NewRuntime(p, DefaultOptions(nil))
		hPoke := rt.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
			pokedAt = p.Now()
			rt.Stop()
		})
		_ = hPoke
		eWork := rt.RegisterEntry(func(rt *Runtime, ch *Chare, src int, data any) {
			rt.Compute(1 * sim.Second)
		})
		rt.CreateArray(1, func(i int) (any, int) { return nil, 0 })
		rt.Invoke(0, eWork, nil, 0)
		rt.Run()
	})
	e.Spawn("p1", func(p *sim.Proc) {
		rt := NewRuntime(p, DefaultOptions(nil))
		hPoke := rt.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {})
		rt.RegisterEntry(func(rt *Runtime, ch *Chare, src int, data any) {})
		rt.CreateArray(1, func(i int) (any, int) { return nil, 0 })
		p.Advance(100*sim.Millisecond, sim.CatCompute)
		rt.Comm().Send(0, hPoke, nil, 8)
		rt.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if pokedAt < 1*sim.Second {
		t.Fatalf("poke handled at %v — entry was preempted", pokedAt)
	}
}

func TestRefineLBToleranceDefault(t *testing.T) {
	if got := (RefineLB{}).Name(); got != "refine" {
		t.Fatal("name")
	}
	if got := (GreedyLB{}).Name(); got != "greedy" {
		t.Fatal("name")
	}
	if got := (MetisLB{}).Name(); got != "metis" {
		t.Fatal("name")
	}
}

// TestFewerCharesThanProcs: processors that own no chares must not stall
// the AtSync reduction, and must still accept immigrating chares.
func TestFewerCharesThanProcs(t *testing.T) {
	weight := func(i, it int) sim.Time {
		if i == 0 {
			return 300 * sim.Millisecond
		}
		return 30 * sim.Millisecond
	}
	e := charmApp(t, 8, 4, 3, true, GreedyLB{}, weight)
	var total sim.Time
	for i := 0; i < 8; i++ {
		total += e.Proc(i).Account()[sim.CatCompute]
	}
	want := 3 * (300 + 3*30) * sim.Millisecond
	if total != want {
		t.Fatalf("total compute %v, want %v", total, want)
	}
}

// TestInvokeRoutesAfterMigration: a remote Invoke sent with a stale mapping
// is forwarded to the chare's current host.
func TestInvokeRoutesAfterMigration(t *testing.T) {
	e := sim.NewEngine(sim.Config{Seed: 31})
	var ranOn, hops int
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			rt := NewRuntime(p, DefaultOptions(nil))
			eTouch := rt.RegisterEntry(func(rt *Runtime, ch *Chare, src int, data any) {
				ranOn = rt.Proc().ID()
				hops = rt.Stats.ForwardHops
				rt.StopAll()
			})
			rt.CreateArray(3, func(i int) (any, int) { return nil, 64 })
			switch p.ID() {
			case 0:
				// Hand chare 0 to proc 1 directly (simulating a migration the
				// others have not heard about).
				ch := rt.chares[0]
				delete(rt.chares, 0)
				rt.loc[0] = 1
				rt.c.Send(1, rt.hMigrate, migrateMsg{ch}, 128)
			case 2:
				// Stale view: still believes chare 0 lives on proc 0.
				p.Advance(50*sim.Millisecond, sim.CatCompute)
				rt.Invoke(0, eTouch, nil, 0)
			}
			rt.Run()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ranOn != 1 {
		t.Fatalf("entry ran on %d, want 1", ranOn)
	}
	_ = hops
}

func TestLookupAndLocal(t *testing.T) {
	e := sim.NewEngine(sim.Config{Seed: 1})
	e.Spawn("p0", func(p *sim.Proc) {
		rt := NewRuntime(p, DefaultOptions(nil))
		rt.RegisterEntry(func(rt *Runtime, ch *Chare, src int, data any) {})
		rt.CreateArray(5, func(i int) (any, int) { return i * i, 8 })
		local := rt.Local()
		if len(local) != 5 {
			t.Fatalf("local = %v", local)
		}
		if rt.Lookup(3) == nil || rt.Lookup(3).Data.(int) != 9 {
			t.Fatal("lookup")
		}
		if rt.Lookup(99) != nil {
			t.Fatal("phantom chare")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMeasuredAccumulatesAndResets(t *testing.T) {
	weight := func(i, it int) sim.Time { return 100 * sim.Millisecond }
	// With sync, measured resets at each LB; this just exercises the paths.
	e := charmApp(t, 2, 4, 2, true, GreedyLB{}, weight)
	if e.Makespan() <= 0 {
		t.Fatal("no time passed")
	}
}

func TestRotateLBShiftsEverything(t *testing.T) {
	loads := []ChareLoad{{Index: 0, Proc: 0}, {Index: 1, Proc: 2}}
	m := RotateLB{}.Remap(loads, 3)
	if m[0] != 1 || m[1] != 0 {
		t.Fatalf("rotate = %v", m)
	}
	if (RotateLB{}).Name() != "rotate" {
		t.Fatal("name")
	}
}

func TestRandCentLBDeterministicAndSpread(t *testing.T) {
	var loads []ChareLoad
	for i := 0; i < 256; i++ {
		loads = append(loads, ChareLoad{Index: i, Proc: 0, Load: 1})
	}
	a := (&RandCentLB{Seed: 5}).Remap(loads, 8)
	b := (&RandCentLB{Seed: 5}).Remap(loads, 8)
	counts := make([]int, 8)
	for k, v := range a {
		if b[k] != v {
			t.Fatal("nondeterministic")
		}
		counts[v]++
	}
	for p, c := range counts {
		if c < 8 {
			t.Fatalf("proc %d got only %d of 256 chares: %v", p, c, counts)
		}
	}
	// Successive steps differ (the per-step sequence advances).
	r := &RandCentLB{Seed: 5}
	first := r.Remap(loads, 8)
	second := r.Remap(loads, 8)
	same := true
	for k, v := range first {
		if second[k] != v {
			same = false
			break
		}
	}
	if same {
		t.Fatal("randcent repeated the same placement across steps")
	}
}

// TestRandCentRuntimeIntegration: the load-oblivious strategies still keep
// the chare runtime correct (all work completes).
func TestRandCentRuntimeIntegration(t *testing.T) {
	weight := func(i, it int) sim.Time { return 20 * sim.Millisecond }
	e := charmApp(t, 4, 8, 3, true, &RandCentLB{Seed: 2}, weight)
	var compute sim.Time
	for i := 0; i < 4; i++ {
		compute += e.Proc(i).Account()[sim.CatCompute]
	}
	if compute != 8*3*20*sim.Millisecond {
		t.Fatalf("total compute %v", compute)
	}
}
