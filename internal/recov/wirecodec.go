package recov

import (
	"sort"

	"prema/internal/wire"
)

// The recovery subsystem's one transport payload is the checkpoint restore
// message mol sends when re-homing an orphan to a survivor. Done watermarks
// are emitted in sorted origin order so equal checkpoints encode to equal
// bytes; the replay log's opaque envelopes (recov sits below mol) encode
// through the registry like any other payload.
func init() {
	wire.Register(wire.KindRecovCheckpoint, &Checkpoint{Done: map[int]uint64{}},
		func(w *wire.Writer, v any) {
			ck := v.(*Checkpoint)
			w.Int(ck.ID.Home)
			w.Int(ck.ID.Index)
			wire.EncodeAny(w, ck.Data)
			w.Int(ck.Size)
			w.F64(ck.Weight)
			w.Int(ck.Loc)
			w.Bool(ck.Orphan)
			origins := make([]int, 0, len(ck.Done))
			for o := range ck.Done {
				origins = append(origins, o)
			}
			sort.Ints(origins)
			w.U32(uint32(len(origins)))
			for _, o := range origins {
				w.Int(o)
				w.U64(ck.Done[o])
			}
			w.U32(uint32(len(ck.Replay)))
			for i := range ck.Replay {
				re := &ck.Replay[i]
				w.Int(re.Origin)
				w.U64(re.Seq)
				wire.EncodeAny(w, re.Env)
				w.Int(re.Size)
			}
		},
		func(r *wire.Reader) any {
			ck := &Checkpoint{}
			ck.ID.Home = r.Int()
			ck.ID.Index = r.Int()
			ck.Data = wire.DecodeAny(r)
			ck.Size = r.Int()
			ck.Weight = r.F64()
			ck.Loc = r.Int()
			ck.Orphan = r.Bool()
			n := r.Count(16) // origin i64 + watermark u64
			ck.Done = make(map[int]uint64, n)
			for i := 0; i < n; i++ {
				o := r.Int()
				ck.Done[o] = r.U64()
			}
			m := r.Count(16 + 2 + 8) // origin + seq + env kind + size
			for i := 0; i < m; i++ {
				re := ReplayEnv{Origin: r.Int(), Seq: r.U64()}
				re.Env = wire.DecodeAny(r)
				re.Size = r.Int()
				ck.Replay = append(ck.Replay, re)
			}
			return ck
		})
}
