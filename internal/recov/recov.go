// Package recov is PREMA's crash-recovery substrate: it makes internal/
// faulty's fail-stop crashes survivable instead of fatal to the computation.
//
// The design has four cooperating pieces, layered exactly where the paper's
// mobile-object architecture suggests they belong:
//
//   - Checkpointing. Every processor periodically (and on every migration)
//     snapshots its resident mobile objects into a Store — the model of
//     stable storage / a buddy processor that survives the crash of any one
//     processor. A checkpoint is the object state plus, per (object, origin),
//     the sequence number of the next work unit to execute ("done"
//     watermarks, reusing the MOL's per-origin seq discipline), so replay
//     after a crash is exactly-once by construction.
//   - Failure detection. Each processor holds a lease in the Store and
//     renews it from the ILB scheduler loop. A processor whose lease
//     expires is declared down; the first processor to observe the expiry
//     becomes the recovery coordinator for that crash. Detection is
//     virtual-time on the simulator (deterministic) and wall-clock on the
//     real backend.
//   - Directory repair. The Store keeps a location manifest for every
//     registered object (updated at registration, migration, and restore),
//     so MOL pointers that would resolve to a dead processor re-resolve
//     through the manifest instead of chasing a forwarding chain into a
//     black hole.
//   - Replay. Message envelopes are logged at their origin until the unit
//     they carry has executed; the coordinator replays every still-pending
//     envelope after a crash (covering both orphaned objects and envelopes
//     lost in a dead relay's inbox). The MOL's per-origin sequence numbers
//     discard the duplicates this necessarily creates.
//
// The Store models stable storage shared by the machine: on the simulator
// it is plain host memory touched by one goroutine at a time; on the real
// backend a mutex serializes access. Nothing in this package advances
// virtual time — checkpoint costs accrue in the store and are charged
// (substrate.Endpoint.Charge) to processor ledgers by the ILB layer only
// once a crash verdict exists (Store.Engaged), so runs without a crash stay
// byte-identical whether recovery is enabled or not.
//
// Object snapshots keep a reference to the live object data rather than a
// deep copy: every backend runs in one address space, so a copy would model
// nothing the charge-based cost model doesn't already. Exactly-once
// execution never depends on snapshot freshness — it is guarded by the
// per-(object, origin) done watermarks, which are written synchronously at
// unit completion.
package recov

import (
	"sort"
	"sync"

	"prema/internal/substrate"
)

// ObjID names a mobile object in the store: the MOL mobile pointer's
// (home, index) pair. recov cannot import mol (mol imports recov), so the
// pair is restated here.
type ObjID struct {
	Home  int
	Index int
}

// Config tunes the recovery subsystem.
type Config struct {
	// CheckpointInterval is the period of per-processor object snapshots.
	// Zero selects the default (1s of virtual time).
	CheckpointInterval substrate.Time
	// LeaseTimeout is how long after its last renewal a processor's lease
	// survives; a processor silent for longer is declared down. Zero selects
	// the default (500ms). On the real backend this is wall-clock (scaled by
	// the machine's timescale), so it must comfortably exceed scheduling
	// jitter — see bench.ChaosSpec.LeaseTimeout.
	LeaseTimeout substrate.Time
	// CheckpointFixed is the modeled per-object cost of taking a snapshot,
	// charged to substrate.CatMessaging. Zero selects the default (10µs).
	CheckpointFixed substrate.Time
	// CheckpointPerByte is the modeled per-byte serialization/transfer cost
	// of a snapshot. Zero selects the default (10ns).
	CheckpointPerByte substrate.Time
}

func (c Config) withDefaults() Config {
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = substrate.Second
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 500 * substrate.Millisecond
	}
	if c.CheckpointFixed <= 0 {
		c.CheckpointFixed = 10 * substrate.Microsecond
	}
	if c.CheckpointPerByte <= 0 {
		c.CheckpointPerByte = 10 * substrate.Nanosecond
	}
	return c
}

// Stats counts machine-wide recovery activity. Read it after the run.
type Stats struct {
	// Checkpoints is the number of per-processor checkpoint rounds taken.
	Checkpoints int
	// CheckpointObjects and CheckpointBytes total the snapshotted objects
	// and their modeled serialized sizes.
	CheckpointObjects int
	CheckpointBytes   int64
	// Charged is the total checkpoint cost charged to processor ledgers.
	Charged substrate.Time
	// Suspects is the number of down verdicts raised (one per crash, however
	// many processors observe it).
	Suspects int
	// ObjectsRecovered counts orphaned objects re-homed from checkpoints.
	ObjectsRecovered int
	// EnvelopesReplayed counts logged envelopes the coordinator re-sent.
	EnvelopesReplayed int
	// UnitsSkipped counts work units whose execution was skipped because the
	// done watermark showed they already ran before the crash (the replay
	// dedup doing its job).
	UnitsSkipped int
	// Rejoins counts processors that re-joined the store after a crash.
	Rejoins int
}

// Down is a failure-detector verdict delivered to one processor.
type Down struct {
	// Proc is the processor declared down.
	Proc int
	// Coordinator is true on exactly one live processor per verdict — the
	// first to observe the lease expiry — which then runs directory repair
	// and replay for the whole machine.
	Coordinator bool
}

// ReplayEnv is one logged, still-pending envelope in a recovery plan.
type ReplayEnv struct {
	Origin int
	Seq    uint64
	// Env is the opaque mol envelope (stored as any: recov sits below mol).
	Env  any
	Size int
}

// Checkpoint is one object's entry in a recovery plan.
type Checkpoint struct {
	ID ObjID
	// Data, Size, Weight are the object snapshot (Data by reference; see the
	// package comment).
	Data   any
	Size   int
	Weight float64
	// Loc is the object's manifest location when the plan was built.
	Loc int
	// Orphan is true when Loc was a dead processor: the object must be
	// re-installed from the checkpoint at a new host. When false the object
	// is alive at Loc and only its pending envelopes are replayed (they may
	// have died in a crashed relay's inbox).
	Orphan bool
	// Done is the per-origin next-to-execute watermark restored as the
	// object's reorder-buffer expectation, so replayed envelopes that
	// already ran are discarded as stale.
	Done map[int]uint64
	// Replay lists the object's logged envelopes not yet known executed,
	// ordered by (origin, seq).
	Replay []ReplayEnv
}

// loggedEnv is one origin-logged envelope awaiting execution confirmation.
type loggedEnv struct {
	env  any
	size int
}

// objRec is the store's record of one registered object.
type objRec struct {
	loc    int
	data   any
	size   int
	weight float64
	done   map[int]uint64
	log    map[int]map[uint64]loggedEnv // origin → seq → envelope
}

// Store models the machine's stable storage for recovery: leases, the
// object manifest, checkpoints, envelope logs, and execution watermarks.
// One Store is shared by every processor of a run; all methods are
// goroutine-safe.
type Store struct {
	mu  sync.Mutex
	cfg Config

	joined   []bool
	retired  []bool
	down     []bool
	everDown []bool
	leases   []substrate.Time
	// verdicts counts down verdicts per processor (a generation counter, so
	// a crash → rejoin → crash sequence produces a fresh verdict each time);
	// claimed tracks which generation already has a coordinator.
	verdicts []int
	claimed  []int
	// execBy counts units executed per processor slot; credited marks how
	// much of it has been folded into lost at a crash verdict.
	execBy   []int
	credited []int
	lost     int

	objs  map[ObjID]*objRec
	stats Stats
}

// NewStore builds the shared recovery store for one run.
func NewStore(cfg Config) *Store {
	return &Store{cfg: cfg.withDefaults(), objs: make(map[ObjID]*objRec)}
}

// Config returns the store's effective (defaulted) configuration.
func (st *Store) Config() Config { return st.cfg }

// Stats returns a snapshot of the machine-wide recovery counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}

// Engaged reports whether recovery has ever engaged — any processor ever
// declared down. Checkpoint costs accrue silently until then and are charged
// to processor ledgers only from engagement on, which keeps crash-free runs
// byte-identical to runs without recovery while still making the overhead of
// a crashed run measurable in its accounts.
func (st *Store) Engaged() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, d := range st.everDown {
		if d {
			return true
		}
	}
	return false
}

// Downs returns the number of processors ever declared down.
func (st *Store) Downs() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, d := range st.everDown {
		if d {
			n++
		}
	}
	return n
}

// LostUnits returns the number of units executed by processors before their
// crash verdicts — work that is done but unreported by any surviving
// processor's own counters.
func (st *Store) LostUnits() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lost
}

// grow extends the per-processor slices to cover id.
func (st *Store) grow(id int) {
	for len(st.joined) <= id {
		st.joined = append(st.joined, false)
		st.retired = append(st.retired, false)
		st.down = append(st.down, false)
		st.everDown = append(st.everDown, false)
		st.leases = append(st.leases, 0)
		st.verdicts = append(st.verdicts, 0)
		st.claimed = append(st.claimed, 0)
		st.execBy = append(st.execBy, 0)
		st.credited = append(st.credited, 0)
	}
}

// Join registers a processor with the store and returns its handle. Calling
// Join for an ID currently marked down is a rejoin: the lease is renewed and
// the down verdict cleared (peers learn of the rejoin through their next
// Tick plus the runtime's hello broadcast).
func (st *Store) Join(ep substrate.Endpoint) *Proc {
	id := ep.ID()
	st.mu.Lock()
	st.grow(id)
	if st.down[id] {
		st.down[id] = false
		st.stats.Rejoins++
	}
	st.joined[id] = true
	st.retired[id] = false
	st.leases[id] = ep.Now() + st.cfg.LeaseTimeout
	st.mu.Unlock()
	return &Proc{st: st, id: id, ep: ep, nextCkpt: ep.Now() + st.cfg.CheckpointInterval}
}

// Survivors returns the live, unretired processors in ascending order. When
// every joined processor has retired it falls back to all non-down joined
// processors, so a very late crash still finds a re-homing target.
func (st *Store) Survivors() []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	var live, joined []int
	for q := range st.joined {
		if !st.joined[q] || st.down[q] {
			continue
		}
		joined = append(joined, q)
		if !st.retired[q] {
			live = append(live, q)
		}
	}
	if len(live) > 0 {
		return live
	}
	return joined
}

// Proc is one processor's handle on the store.
type Proc struct {
	st *Store
	id int
	ep substrate.Endpoint

	// seen tracks which verdict generation this processor has processed per
	// peer, so each crash is surfaced exactly once per live processor.
	seen     []int
	nextCkpt substrate.Time
}

// ID returns the owning processor's ID.
func (p *Proc) ID() int { return p.id }

// Store returns the shared store.
func (p *Proc) Store() *Store { return p.st }

// Tick renews this processor's lease, raises down verdicts for any expired
// peers, and returns the verdicts this processor has not yet processed
// (whether raised here or by another processor). Exactly one live processor
// gets Coordinator=true per verdict. Call it from the scheduler loop; it
// never advances virtual time.
func (p *Proc) Tick() []Down {
	if p == nil {
		return nil
	}
	st := p.st
	now := p.ep.Now()
	st.mu.Lock()
	defer st.mu.Unlock()
	if t := now + st.cfg.LeaseTimeout; t > st.leases[p.id] {
		st.leases[p.id] = t
	}
	for q := range st.joined {
		if q == p.id || !st.joined[q] || st.retired[q] || st.down[q] {
			continue
		}
		if now > st.leases[q] {
			st.down[q] = true
			st.everDown[q] = true
			st.verdicts[q]++
			st.stats.Suspects++
			// Credit the crashed incarnation's executed units now: its own
			// processor body unwound without reporting them.
			st.lost += st.execBy[q] - st.credited[q]
			st.credited[q] = st.execBy[q]
		}
	}
	var downs []Down
	for q := range st.down {
		if q == p.id || !st.down[q] {
			continue
		}
		for len(p.seen) <= q {
			p.seen = append(p.seen, 0)
		}
		if p.seen[q] < st.verdicts[q] {
			coord := st.claimed[q] < st.verdicts[q]
			if coord {
				st.claimed[q] = st.verdicts[q]
			}
			p.seen[q] = st.verdicts[q]
			downs = append(downs, Down{Proc: q, Coordinator: coord})
		}
	}
	return downs
}

// Extend renews the lease to cover a computation known to run until `until`
// (plus the usual timeout slack). The ILB scheduler calls it before long
// work units, during which no Tick can run in explicit mode.
func (p *Proc) Extend(until substrate.Time) {
	if p == nil {
		return
	}
	st := p.st
	st.mu.Lock()
	if t := until + st.cfg.LeaseTimeout; t > st.leases[p.id] {
		st.leases[p.id] = t
	}
	st.mu.Unlock()
}

// Retire marks this processor cleanly finished: its lease can no longer
// expire into a false crash verdict while it drains the transport.
func (p *Proc) Retire() {
	if p == nil {
		return
	}
	p.st.mu.Lock()
	p.st.retired[p.id] = true
	p.st.mu.Unlock()
}

// IsDown reports whether processor q is currently under a down verdict.
func (p *Proc) IsDown(q int) bool {
	st := p.st
	st.mu.Lock()
	defer st.mu.Unlock()
	return q >= 0 && q < len(st.down) && st.down[q]
}

// CheckpointDue reports whether this processor's periodic checkpoint timer
// has expired.
func (p *Proc) CheckpointDue() bool {
	if p == nil {
		return false
	}
	return p.ep.Now() >= p.nextCkpt
}

// FinishCheckpoint records a completed checkpoint round of `objects` object
// snapshots totalling `bytes`, re-arms the timer, and returns the modeled
// cost for the caller to charge to its ledger.
func (p *Proc) FinishCheckpoint(objects, bytes int) substrate.Time {
	st := p.st
	cost := st.cfg.CheckpointFixed*substrate.Time(objects) + st.cfg.CheckpointPerByte*substrate.Time(bytes)
	st.mu.Lock()
	st.stats.Checkpoints++
	st.stats.CheckpointObjects += objects
	st.stats.CheckpointBytes += int64(bytes)
	st.stats.Charged += cost
	st.mu.Unlock()
	p.nextCkpt = p.ep.Now() + st.cfg.CheckpointInterval
	return cost
}

// rec returns (creating if needed) the record for id. Caller holds st.mu.
func (st *Store) rec(id ObjID) *objRec {
	r := st.objs[id]
	if r == nil {
		r = &objRec{loc: -1, done: make(map[int]uint64)}
		st.objs[id] = r
	}
	return r
}

// snapshot refreshes an object record's checkpoint fields. Caller holds mu.
func (r *objRec) snapshot(data any, size int, weight float64) {
	r.data = data
	r.size = size
	r.weight = weight
}

// ObjectHome records a freshly registered object resident on this processor.
func (p *Proc) ObjectHome(id ObjID, data any, size int, weight float64) {
	st := p.st
	st.mu.Lock()
	r := st.rec(id)
	r.loc = p.id
	r.snapshot(data, size, weight)
	st.mu.Unlock()
}

// ObjectSnapshot refreshes a resident object's checkpoint during a periodic
// round.
func (p *Proc) ObjectSnapshot(id ObjID, data any, size int, weight float64) {
	p.ObjectHome(id, data, size, weight)
}

// ObjectDeparting flips the manifest location to dst — called after the
// migration message has been handed to the transport, so a crash before the
// send leaves the object an orphan of the sender, never double-homed. The
// migration doubles as a piggybacked checkpoint.
func (p *Proc) ObjectDeparting(id ObjID, dst int, data any, size int, weight float64) {
	st := p.st
	st.mu.Lock()
	r := st.rec(id)
	r.loc = dst
	r.snapshot(data, size, weight)
	st.mu.Unlock()
}

// ObjectLanded records a migrated (or restored) object now resident here,
// refreshing its checkpoint.
func (p *Proc) ObjectLanded(id ObjID, data any, size int, weight float64) {
	p.ObjectHome(id, data, size, weight)
}

// Assign points the manifest at the host chosen to adopt an orphan.
func (p *Proc) Assign(id ObjID, host int) {
	st := p.st
	st.mu.Lock()
	st.rec(id).loc = host
	st.mu.Unlock()
}

// Location returns the manifest location for id.
func (p *Proc) Location(id ObjID) (int, bool) {
	st := p.st
	st.mu.Lock()
	defer st.mu.Unlock()
	r, ok := st.objs[id]
	if !ok || r.loc < 0 {
		return 0, false
	}
	return r.loc, true
}

// LogEnvelope records a sent envelope at its origin until the work unit it
// carries is known executed. Envelopes already past the done watermark are
// not logged.
func (p *Proc) LogEnvelope(id ObjID, origin int, seq uint64, env any, size int) {
	st := p.st
	st.mu.Lock()
	r := st.rec(id)
	if seq >= r.done[origin] {
		if r.log == nil {
			r.log = make(map[int]map[uint64]loggedEnv)
		}
		m := r.log[origin]
		if m == nil {
			m = make(map[uint64]loggedEnv)
			r.log[origin] = m
		}
		m[seq] = loggedEnv{env: env, size: size}
	}
	st.mu.Unlock()
}

// BeginUnit reports whether the unit (id, origin, seq) still needs to run.
// False means it already executed before a crash (its effect is durable in
// the done watermark) and the caller must skip it — the replay dedup that
// keeps execution exactly-once even if an envelope is delivered twice
// across a recovery.
func (p *Proc) BeginUnit(id ObjID, origin int, seq uint64) bool {
	st := p.st
	st.mu.Lock()
	defer st.mu.Unlock()
	if r, ok := st.objs[id]; ok && seq < r.done[origin] {
		st.stats.UnitsSkipped++
		return false
	}
	return true
}

// FinishUnit advances the done watermark past (origin, seq) and prunes the
// origin's envelope log. It is called synchronously the moment the unit's
// handler returns — before any further substrate interaction — so a
// fail-stop can never lose the fact that a unit ran.
func (p *Proc) FinishUnit(id ObjID, origin int, seq uint64) {
	st := p.st
	st.mu.Lock()
	r := st.rec(id)
	if seq+1 > r.done[origin] {
		r.done[origin] = seq + 1
	}
	if m := r.log[origin]; m != nil {
		delete(m, seq)
	}
	st.execBy[p.id]++
	st.mu.Unlock()
}

// RecoveryPlan builds the coordinator's work list for a crash of `dead`:
// one Checkpoint per object that is orphaned (its manifest location is a
// down processor) or has pending logged envelopes to replay. Objects are
// ordered by ID and replays by (origin, seq), so the plan is deterministic.
// Scanning for *any* down location (not just `dead`) makes the plan robust
// to a coordinator itself crashing mid-restore: the next coordinator picks
// up the orphans the first one never re-homed.
func (p *Proc) RecoveryPlan(dead int) []Checkpoint {
	st := p.st
	st.mu.Lock()
	defer st.mu.Unlock()
	ids := make([]ObjID, 0, len(st.objs))
	for id := range st.objs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Home != ids[j].Home {
			return ids[i].Home < ids[j].Home
		}
		return ids[i].Index < ids[j].Index
	})
	var plan []Checkpoint
	for _, id := range ids {
		r := st.objs[id]
		orphan := r.loc >= 0 && r.loc < len(st.down) && st.down[r.loc]
		var replay []ReplayEnv
		origins := make([]int, 0, len(r.log))
		for o := range r.log {
			origins = append(origins, o)
		}
		sort.Ints(origins)
		for _, o := range origins {
			seqs := make([]uint64, 0, len(r.log[o]))
			for s := range r.log[o] {
				if s >= r.done[o] {
					seqs = append(seqs, s)
				}
			}
			sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
			for _, s := range seqs {
				le := r.log[o][s]
				replay = append(replay, ReplayEnv{Origin: o, Seq: s, Env: le.env, Size: le.size})
			}
		}
		if !orphan && len(replay) == 0 {
			continue
		}
		done := make(map[int]uint64, len(r.done))
		for o, s := range r.done {
			done[o] = s
		}
		if orphan {
			st.stats.ObjectsRecovered++
		}
		st.stats.EnvelopesReplayed += len(replay)
		plan = append(plan, Checkpoint{
			ID:     id,
			Data:   r.data,
			Size:   r.size,
			Weight: r.weight,
			Loc:    r.loc,
			Orphan: orphan,
			Done:   done,
			Replay: replay,
		})
	}
	return plan
}
