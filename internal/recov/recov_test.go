package recov

import (
	"reflect"
	"testing"

	"prema/internal/substrate"
)

// fakeEP satisfies just the endpoint surface the store touches: identity and
// a clock the test can move by hand.
type fakeEP struct {
	substrate.Endpoint
	id  int
	now substrate.Time
}

func (f *fakeEP) ID() int             { return f.id }
func (f *fakeEP) Now() substrate.Time { return f.now }

func ms(n int) substrate.Time { return substrate.Time(n) * substrate.Millisecond }

// TestLeaseVerdict: a silent processor is declared down exactly once, the
// first observer is the sole coordinator, and later ticks stay quiet.
func TestLeaseVerdict(t *testing.T) {
	st := NewStore(Config{LeaseTimeout: 100 * substrate.Millisecond})
	eps := []*fakeEP{{id: 0}, {id: 1}, {id: 2}}
	procs := make([]*Proc, len(eps))
	for i, ep := range eps {
		procs[i] = st.Join(ep)
	}
	// Everyone healthy well past one timeout.
	for _, ep := range eps {
		ep.now = ms(90)
	}
	for i, p := range procs {
		if d := p.Tick(); len(d) != 0 {
			t.Fatalf("proc %d: verdicts %v before any lease expiry", i, d)
		}
	}
	// Processor 2 goes silent; 0 and 1 keep ticking (renewing their own
	// leases) until 2's lease from ms(90) expires.
	eps[0].now, eps[1].now = ms(150), ms(150)
	procs[0].Tick()
	procs[1].Tick()
	eps[0].now, eps[1].now = ms(240), ms(240)
	d0 := procs[0].Tick()
	d1 := procs[1].Tick()
	want0 := []Down{{Proc: 2, Coordinator: true}}
	want1 := []Down{{Proc: 2, Coordinator: false}}
	if !reflect.DeepEqual(d0, want0) {
		t.Errorf("first observer verdicts = %v, want %v", d0, want0)
	}
	if !reflect.DeepEqual(d1, want1) {
		t.Errorf("second observer verdicts = %v, want %v", d1, want1)
	}
	// The verdict is surfaced once per processor, not once per tick.
	if d := procs[0].Tick(); len(d) != 0 {
		t.Errorf("repeat tick re-surfaced verdicts %v", d)
	}
	if !procs[0].IsDown(2) || procs[0].IsDown(1) {
		t.Error("IsDown disagrees with the verdict")
	}
	if got := st.Stats().Suspects; got != 1 {
		t.Errorf("suspects = %d, want 1", got)
	}
	if got := st.Downs(); got != 1 {
		t.Errorf("downs = %d, want 1", got)
	}
}

// TestRejoinAndSecondCrash: re-joining clears the down verdict, and a second
// crash of the same processor raises a fresh verdict with a fresh
// coordinator claim.
func TestRejoinAndSecondCrash(t *testing.T) {
	st := NewStore(Config{LeaseTimeout: 100 * substrate.Millisecond})
	ep0, ep1 := &fakeEP{id: 0}, &fakeEP{id: 1}
	p0 := st.Join(ep0)
	st.Join(ep1)
	ep0.now = ms(250)
	if d := p0.Tick(); len(d) != 1 || d[0].Proc != 1 || !d[0].Coordinator {
		t.Fatalf("first crash verdicts = %v", d)
	}
	// Processor 1 comes back.
	ep1.now = ms(400)
	p1b := st.Join(ep1)
	if p0.IsDown(1) {
		t.Error("still down after rejoin")
	}
	if got := st.Stats().Rejoins; got != 1 {
		t.Errorf("rejoins = %d, want 1", got)
	}
	// ...and crashes again.
	ep0.now = ms(600)
	if d := p0.Tick(); len(d) != 1 || d[0].Proc != 1 || !d[0].Coordinator {
		t.Fatalf("second crash verdicts = %v, want a fresh coordinator claim", d)
	}
	if got := st.Stats().Suspects; got != 2 {
		t.Errorf("suspects = %d, want 2", got)
	}
	if got := st.Downs(); got != 1 {
		t.Errorf("downs = %d, want 1 (same processor twice)", got)
	}
	_ = p1b
}

// TestExtendHoldsLease: Extend covers a long compute window during which the
// processor cannot tick.
func TestExtendHoldsLease(t *testing.T) {
	st := NewStore(Config{LeaseTimeout: 100 * substrate.Millisecond})
	ep0, ep1 := &fakeEP{id: 0}, &fakeEP{id: 1}
	p0 := st.Join(ep0)
	p1 := st.Join(ep1)
	p1.Extend(ms(1000))
	ep0.now = ms(900)
	if d := p0.Tick(); len(d) != 0 {
		t.Fatalf("extended lease still produced verdicts %v", d)
	}
	ep0.now = ms(1200)
	if d := p0.Tick(); len(d) != 1 {
		t.Fatalf("expired extended lease produced verdicts %v, want 1", d)
	}
}

// TestRetireSuppressesVerdict: a cleanly finished processor never becomes a
// false positive, and Survivors falls back to joined processors once all
// have retired.
func TestRetireSuppressesVerdict(t *testing.T) {
	st := NewStore(Config{LeaseTimeout: 100 * substrate.Millisecond})
	ep0, ep1 := &fakeEP{id: 0}, &fakeEP{id: 1}
	p0 := st.Join(ep0)
	p1 := st.Join(ep1)
	p1.Retire()
	ep0.now = ms(10_000)
	if d := p0.Tick(); len(d) != 0 {
		t.Fatalf("retired processor drew verdicts %v", d)
	}
	if got, want := st.Survivors(), []int{0}; !reflect.DeepEqual(got, want) {
		t.Errorf("survivors = %v, want %v", got, want)
	}
	p0.Retire()
	if got, want := st.Survivors(), []int{0, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("all-retired survivors = %v, want joined fallback %v", got, want)
	}
}

// TestManifestAndPlan: the manifest tracks home → departing → landed, a
// crash orphans exactly the objects located at the dead processor, and the
// plan's replay set honours the done watermarks.
func TestManifestAndPlan(t *testing.T) {
	st := NewStore(Config{LeaseTimeout: 100 * substrate.Millisecond})
	ep0, ep1 := &fakeEP{id: 0}, &fakeEP{id: 1}
	p0 := st.Join(ep0)
	p1 := st.Join(ep1)

	a, b := ObjID{Home: 0, Index: 0}, ObjID{Home: 0, Index: 1}
	p0.ObjectHome(a, "A0", 100, 1)
	p0.ObjectHome(b, "B0", 200, 2)
	// a migrates 0 → 1 (piggybacked checkpoint carries fresher state).
	p0.ObjectDeparting(a, 1, "A1", 110, 1)
	p1.ObjectLanded(a, "A1", 110, 1)
	if loc, ok := p0.Location(a); !ok || loc != 1 {
		t.Fatalf("Location(a) = %d,%v want 1,true", loc, ok)
	}

	// Traffic: origin 0 sends seqs 0..3 to a; 0 and 1 have executed, so the
	// watermark sits at 2 and the log is pruned beneath it.
	for seq := uint64(0); seq < 4; seq++ {
		p0.LogEnvelope(a, 0, seq, int(seq), 8)
	}
	for seq := uint64(0); seq < 2; seq++ {
		if !p1.BeginUnit(a, 0, seq) {
			t.Fatalf("BeginUnit(a,0,%d) = false on first execution", seq)
		}
		p1.FinishUnit(a, 0, seq)
	}
	if p1.BeginUnit(a, 0, 1) {
		t.Error("BeginUnit accepted an already-executed unit")
	}
	if got := st.Stats().UnitsSkipped; got != 1 {
		t.Errorf("units skipped = %d, want 1", got)
	}
	// b also has one pending envelope from origin 1.
	p1.LogEnvelope(b, 1, 0, 100, 8)

	// Processor 1 crashes: a (resident there) is orphaned; b stays at 0 but
	// still replays its pending envelope.
	ep0.now = ms(250)
	if d := p0.Tick(); len(d) != 1 || d[0].Proc != 1 {
		t.Fatalf("verdicts = %v", d)
	}
	plan := p0.RecoveryPlan(1)
	if len(plan) != 2 {
		t.Fatalf("plan has %d entries, want 2: %+v", len(plan), plan)
	}
	ca, cb := plan[0], plan[1]
	if ca.ID != a || !ca.Orphan || ca.Data != "A1" || ca.Loc != 1 {
		t.Errorf("checkpoint a = %+v, want orphan of proc 1 with migrated state", ca)
	}
	if ca.Done[0] != 2 {
		t.Errorf("a done[0] = %d, want 2", ca.Done[0])
	}
	wantReplay := []ReplayEnv{{Origin: 0, Seq: 2, Env: 2, Size: 8}, {Origin: 0, Seq: 3, Env: 3, Size: 8}}
	if !reflect.DeepEqual(ca.Replay, wantReplay) {
		t.Errorf("a replay = %+v, want %+v", ca.Replay, wantReplay)
	}
	if cb.ID != b || cb.Orphan || len(cb.Replay) != 1 {
		t.Errorf("checkpoint b = %+v, want live object with 1 replay", cb)
	}

	// The coordinator re-homes a onto itself; the manifest follows.
	p0.Assign(a, 0)
	if loc, _ := p0.Location(a); loc != 0 {
		t.Errorf("post-assign location = %d, want 0", loc)
	}
	s := st.Stats()
	if s.ObjectsRecovered != 1 || s.EnvelopesReplayed != 3 {
		t.Errorf("stats = %+v, want 1 recovered / 3 replayed", s)
	}
}

// TestLostUnits: units executed by a processor before its crash verdict are
// credited to the machine-wide lost counter exactly once, across repeated
// crashes.
func TestLostUnits(t *testing.T) {
	st := NewStore(Config{LeaseTimeout: 100 * substrate.Millisecond})
	ep0, ep1 := &fakeEP{id: 0}, &fakeEP{id: 1}
	p0 := st.Join(ep0)
	p1 := st.Join(ep1)
	obj := ObjID{Home: 1, Index: 0}
	p1.ObjectHome(obj, nil, 0, 0)
	for seq := uint64(0); seq < 3; seq++ {
		p1.BeginUnit(obj, 0, seq)
		p1.FinishUnit(obj, 0, seq)
	}
	ep0.now = ms(250)
	p0.Tick()
	if got := st.LostUnits(); got != 3 {
		t.Fatalf("lost units = %d, want 3", got)
	}
	// Rejoin, run two more, crash again: only the new units are credited.
	ep1.now = ms(300)
	p1b := st.Join(ep1)
	for seq := uint64(3); seq < 5; seq++ {
		p1b.BeginUnit(obj, 0, seq)
		p1b.FinishUnit(obj, 0, seq)
	}
	ep0.now = ms(600)
	p0.Tick()
	if got := st.LostUnits(); got != 5 {
		t.Fatalf("lost units after second crash = %d, want 5", got)
	}
}

// TestCheckpointTimerAndCost: the periodic timer re-arms and the modeled
// cost follows the configured fixed/per-byte rates.
func TestCheckpointTimerAndCost(t *testing.T) {
	cfg := Config{
		CheckpointInterval: 500 * substrate.Millisecond,
		CheckpointFixed:    10 * substrate.Microsecond,
		CheckpointPerByte:  10 * substrate.Nanosecond,
	}
	st := NewStore(cfg)
	ep := &fakeEP{id: 0}
	p := st.Join(ep)
	if p.CheckpointDue() {
		t.Fatal("checkpoint due immediately after join")
	}
	ep.now = ms(600)
	if !p.CheckpointDue() {
		t.Fatal("checkpoint not due after one interval")
	}
	cost := p.FinishCheckpoint(2, 1000)
	want := 2*10*substrate.Microsecond + 1000*10*substrate.Nanosecond
	if cost != want {
		t.Errorf("cost = %v, want %v", cost, want)
	}
	if p.CheckpointDue() {
		t.Error("timer did not re-arm")
	}
	s := st.Stats()
	if s.Checkpoints != 1 || s.CheckpointObjects != 2 || s.CheckpointBytes != 1000 || s.Charged != want {
		t.Errorf("stats = %+v", s)
	}
}
