// Package partition is a from-scratch multilevel graph partitioner in the
// style of METIS (Karypis & Kumar 1995): heavy-edge-matching coarsening,
// greedy-growing initial bisection, and FM-style boundary refinement, with
// k-way partitions produced by recursive bisection. It is the algorithmic
// substrate for the ParMETIS-style adaptive repartitioner (package parmetis)
// and the Charm++ Metis-based strategy (package charm).
package partition

import (
	"math/rand"

	"prema/internal/graph"
)

// Options tunes the partitioner.
type Options struct {
	// Seed drives all randomized choices (deterministic given the seed).
	Seed int64
	// Imbalance is the allowed per-part overweight fraction (default 0.05:
	// parts may weigh up to 1.05x the ideal).
	Imbalance float64
	// CoarsenTo stops coarsening once the graph has at most this many
	// vertices (default 64).
	CoarsenTo int
	// InitTries is how many random greedy-growing bisections to attempt,
	// keeping the best (default 4).
	InitTries int
	// RefinePasses bounds FM passes per uncoarsening level (default 6).
	RefinePasses int
}

func (o Options) withDefaults() Options {
	if o.Imbalance <= 0 {
		o.Imbalance = 0.05
	}
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 64
	}
	if o.InitTries <= 0 {
		o.InitTries = 4
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 6
	}
	return o
}

// Partition computes a k-way partition of g minimizing edge cut subject to
// the balance constraint. The result maps vertex -> part in [0,k).
func Partition(g *graph.Graph, k int, opt Options) []int {
	opt = opt.withDefaults()
	part := make([]int, g.NumVertices())
	if k <= 1 {
		return part
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	vertices := make([]int, g.NumVertices())
	for i := range vertices {
		vertices[i] = i
	}
	recursiveBisect(g, vertices, k, 0, part, opt, rng)
	return part
}

// recursiveBisect splits the subgraph induced by vertices into k parts
// labeled firstPart..firstPart+k-1, writing into part.
func recursiveBisect(g *graph.Graph, vertices []int, k, firstPart int, part []int, opt Options, rng *rand.Rand) {
	if k == 1 {
		for _, v := range vertices {
			part[v] = firstPart
		}
		return
	}
	kLeft := (k + 1) / 2
	frac := float64(kLeft) / float64(k)
	sub, toGlobal := subgraph(g, vertices)
	side := bisect(sub, frac, opt, rng)
	var left, right []int
	for i, s := range side {
		if s == 0 {
			left = append(left, toGlobal[i])
		} else {
			right = append(right, toGlobal[i])
		}
	}
	recursiveBisect(g, left, kLeft, firstPart, part, opt, rng)
	recursiveBisect(g, right, k-kLeft, firstPart+kLeft, part, opt, rng)
}

// subgraph extracts the induced subgraph, returning it and the local->global
// vertex map.
func subgraph(g *graph.Graph, vertices []int) (*graph.Graph, []int) {
	toLocal := make(map[int]int32, len(vertices))
	for i, v := range vertices {
		toLocal[v] = int32(i)
	}
	sg := &graph.Graph{
		Xadj: make([]int32, len(vertices)+1),
		VWgt: make([]int64, len(vertices)),
	}
	if g.VSize != nil {
		sg.VSize = make([]int64, len(vertices))
	}
	for i, v := range vertices {
		sg.VWgt[i] = g.VWgt[v]
		if sg.VSize != nil {
			sg.VSize[i] = g.VSize[v]
		}
	}
	for i, v := range vertices {
		sg.Xadj[i] = int32(len(sg.Adjncy))
		g.Neighbors(v, func(u int, w int32) {
			if lu, ok := toLocal[u]; ok {
				sg.Adjncy = append(sg.Adjncy, lu)
				sg.AdjWgt = append(sg.AdjWgt, w)
			}
		})
	}
	sg.Xadj[len(vertices)] = int32(len(sg.Adjncy))
	return sg, append([]int(nil), vertices...)
}

// bisect produces a 2-way split of g with side-0 target weight fraction
// frac, via the full multilevel pipeline.
func bisect(g *graph.Graph, frac float64, opt Options, rng *rand.Rand) []int {
	levels := coarsen(g, opt.CoarsenTo, rng, nil)
	coarsest := levels[len(levels)-1].g
	side := initialBisection(coarsest, frac, opt, rng)
	refine2(coarsest, side, frac, opt)
	// Project back up, refining at each level.
	for li := len(levels) - 2; li >= 0; li-- {
		fine := levels[li]
		fineSide := make([]int, fine.g.NumVertices())
		for v := range fineSide {
			fineSide[v] = side[fine.cmap[v]]
		}
		side = fineSide
		refine2(fine.g, side, frac, opt)
	}
	return side
}

// initialBisection tries several greedy graph-growing bisections and keeps
// the best (lowest cut among balanced attempts).
func initialBisection(g *graph.Graph, frac float64, opt Options, rng *rand.Rand) []int {
	n := g.NumVertices()
	best := make([]int, n)
	bestCut := int64(-1)
	bestBal := 1e18
	target := int64(float64(g.TotalVWgt()) * frac)
	for try := 0; try < opt.InitTries; try++ {
		side := growRegion(g, target, rng)
		cut := graph.EdgeCut(g, side)
		bal := balanceError(g, side, frac)
		better := false
		switch {
		case bestCut < 0:
			better = true
		case bal <= opt.Imbalance && bestBal > opt.Imbalance:
			better = true
		case (bal <= opt.Imbalance) == (bestBal <= opt.Imbalance) && cut < bestCut:
			better = true
		}
		if better {
			copy(best, side)
			bestCut, bestBal = cut, bal
		}
	}
	return best
}

// growRegion grows side 0 from a random seed by BFS with greedy frontier
// selection until it holds roughly target weight.
func growRegion(g *graph.Graph, target int64, rng *rand.Rand) []int {
	n := g.NumVertices()
	side := make([]int, n)
	for i := range side {
		side[i] = 1
	}
	if n == 0 {
		return side
	}
	var grown int64
	inFrontier := make([]bool, n)
	var frontier []int
	seed := rng.Intn(n)
	frontier = append(frontier, seed)
	inFrontier[seed] = true
	for grown < target && len(frontier) > 0 {
		// Pick the frontier vertex with the strongest connection to side 0
		// (greedy); the seed is arbitrary.
		bestI, bestConn := 0, int64(-1)
		for i, v := range frontier {
			var conn int64
			g.Neighbors(v, func(u int, w int32) {
				if side[u] == 0 {
					conn += int64(w)
				}
			})
			if conn > bestConn {
				bestI, bestConn = i, conn
			}
		}
		v := frontier[bestI]
		frontier[bestI] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		side[v] = 0
		grown += g.VWgt[v]
		g.Neighbors(v, func(u int, w int32) {
			if side[u] == 1 && !inFrontier[u] {
				inFrontier[u] = true
				frontier = append(frontier, u)
			}
		})
		// Disconnected graph: restart from any remaining side-1 vertex.
		if len(frontier) == 0 && grown < target {
			for u := 0; u < n; u++ {
				if side[u] == 1 {
					frontier = append(frontier, u)
					inFrontier[u] = true
					break
				}
			}
		}
	}
	return side
}

// balanceError returns how far side 0's weight fraction deviates from frac,
// normalized by frac (0 = perfect).
func balanceError(g *graph.Graph, side []int, frac float64) float64 {
	var w0 int64
	for v, s := range side {
		if s == 0 {
			w0 += g.VWgt[v]
		}
	}
	tot := g.TotalVWgt()
	if tot == 0 {
		return 0
	}
	got := float64(w0) / float64(tot)
	err := got - frac
	if err < 0 {
		err = -err
	}
	return err / frac
}
