package partition

import (
	"math/rand"
	"testing"

	"prema/internal/graph"
)

func validate(t *testing.T, g *graph.Graph, part []int, k int, maxImb float64) {
	t.Helper()
	if len(part) != g.NumVertices() {
		t.Fatalf("part len %d != n %d", len(part), g.NumVertices())
	}
	seen := make([]bool, k)
	for v, p := range part {
		if p < 0 || p >= k {
			t.Fatalf("vertex %d in invalid part %d", v, p)
		}
		seen[p] = true
	}
	for p := 0; p < k; p++ {
		if !seen[p] {
			t.Errorf("part %d empty", p)
		}
	}
	if im := graph.Imbalance(g, part, k); im > maxImb {
		t.Errorf("imbalance %.3f > %.3f (weights %v)", im, maxImb, graph.PartWeights(g, part, k))
	}
}

func TestBisectGrid(t *testing.T) {
	g := graph.Grid3D(8, 8, 1) // an 8x8 2D grid
	part := Partition(g, 2, Options{Seed: 1})
	validate(t, g, part, 2, 1.06)
	// A straight cut of an 8x8 grid costs 8; allow some slack but reject
	// random-quality cuts (~half of 112 edges).
	if cut := graph.EdgeCut(g, part); cut > 16 {
		t.Errorf("bisection cut = %d, want near 8", cut)
	}
}

func TestKWayGrid(t *testing.T) {
	for _, k := range []int{2, 3, 4, 8} {
		g := graph.Grid3D(8, 8, 4)
		part := Partition(g, k, Options{Seed: 7})
		validate(t, g, part, k, 1.20)
		cut := graph.EdgeCut(g, part)
		// 8*8*4 grid has 8*8*3 + 8*7*4*2 = 640 edges; random k-way would cut
		// ~(1-1/k)*640.
		randomCut := int64(float64(640) * (1 - 1/float64(k)))
		if cut > randomCut/2 {
			t.Errorf("k=%d cut = %d (random ~%d)", k, cut, randomCut)
		}
	}
}

func TestWeightedBalance(t *testing.T) {
	// A path where one end is very heavy: balance must account for weights.
	b := graph.NewBuilder(16)
	for i := 0; i < 15; i++ {
		b.AddEdge(i, i+1, 1)
	}
	for i := 0; i < 4; i++ {
		b.SetVWgt(i, 10)
	}
	g := b.Build()
	part := Partition(g, 2, Options{Seed: 3})
	validate(t, g, part, 2, 1.25)
}

func TestPartitionK1AndEmpty(t *testing.T) {
	g := graph.Grid3D(4, 4, 1)
	part := Partition(g, 1, Options{})
	for _, p := range part {
		if p != 0 {
			t.Fatal("k=1 must map everything to part 0")
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	g := graph.Grid3D(6, 6, 2)
	a := Partition(g, 4, Options{Seed: 5})
	b := Partition(g, 4, Options{Seed: 5})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different partition")
		}
	}
}

func TestCoarsenPreservesTotals(t *testing.T) {
	g := graph.Grid3D(8, 8, 2)
	rng := rand.New(rand.NewSource(2))
	levels := Coarsen(g, 16, rng, nil)
	if len(levels) < 2 {
		t.Fatal("no coarsening happened")
	}
	for _, l := range levels {
		if l.Graph().TotalVWgt() != g.TotalVWgt() {
			t.Fatalf("vertex weight not conserved: %d vs %d", l.Graph().TotalVWgt(), g.TotalVWgt())
		}
	}
	coarsest := levels[len(levels)-1].Graph()
	if coarsest.NumVertices() > g.NumVertices()/2 {
		t.Fatalf("weak coarsening: %d of %d", coarsest.NumVertices(), g.NumVertices())
	}
}

func TestCoarsenRestrictedNeverCrossesLabels(t *testing.T) {
	g := graph.Grid3D(8, 8, 1)
	restrict := make([]int, 64)
	for v := range restrict {
		if v%8 >= 4 {
			restrict[v] = 1
		}
	}
	rng := rand.New(rand.NewSource(4))
	levels := Coarsen(g, 8, rng, restrict)
	// Walk the hierarchy: each coarse vertex's constituents must share a label.
	labels := restrict
	for li := 0; li < len(levels)-1; li++ {
		cmap := levels[li].CMap()
		nc := levels[li+1].Graph().NumVertices()
		next := make([]int, nc)
		for i := range next {
			next[i] = -1
		}
		for v, c := range cmap {
			if next[c] == -1 {
				next[c] = labels[v]
			} else if next[c] != labels[v] {
				t.Fatalf("level %d: coarse vertex %d mixes labels", li, c)
			}
		}
		labels = next
	}
}

func TestRefineKWayRestoresBalance(t *testing.T) {
	g := graph.Grid3D(8, 8, 1)
	// Pathological start: everything in part 0.
	part := make([]int, 64)
	RefineKWay(g, part, 4, nil, nil, Options{Seed: 1, Imbalance: 0.10})
	if im := graph.Imbalance(g, part, 4); im > 1.11 {
		t.Fatalf("imbalance after refine = %.3f", im)
	}
}

func TestRefineKWayImprovesCut(t *testing.T) {
	g := graph.Grid3D(8, 8, 1)
	rng := rand.New(rand.NewSource(9))
	part := make([]int, 64)
	for v := range part {
		part[v] = rng.Intn(4)
	}
	before := graph.EdgeCut(g, part)
	RefineKWay(g, part, 4, nil, nil, Options{Seed: 1})
	after := graph.EdgeCut(g, part)
	if after >= before {
		t.Fatalf("refine did not improve cut: %d -> %d", before, after)
	}
	if im := graph.Imbalance(g, part, 4); im > 1.06 {
		t.Fatalf("imbalance = %.3f", im)
	}
}

func TestGrowRegionCoversDisconnected(t *testing.T) {
	// Two disconnected cliques; growing must jump components.
	b := graph.NewBuilder(8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(i, j, 1)
			b.AddEdge(i+4, j+4, 1)
		}
	}
	g := b.Build()
	part := Partition(g, 2, Options{Seed: 1})
	validate(t, g, part, 2, 1.05)
	if cut := graph.EdgeCut(g, part); cut != 0 {
		t.Fatalf("disconnected cliques should cut 0, got %d", cut)
	}
}
