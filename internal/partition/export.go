package partition

import (
	"math/rand"

	"prema/internal/graph"
)

// Level is one exported rung of a multilevel hierarchy: its graph and the
// map from this level's vertices to the next-coarser level's vertices (nil
// on the coarsest level).
type Level struct {
	g    *graph.Graph
	cmap []int32
}

// Graph returns the level's graph.
func (l Level) Graph() *graph.Graph { return l.g }

// CMap returns the fine->coarse vertex map toward the next level (nil at
// the coarsest level).
func (l Level) CMap() []int32 { return l.cmap }

// Coarsen builds a multilevel hierarchy by heavy-edge matching down to at
// most target vertices. restrict, when non-nil, only allows matching
// vertices with equal restrict labels (URA's local matching).
func Coarsen(g *graph.Graph, target int, rng *rand.Rand, restrict []int) []Level {
	levels := coarsen(g, target, rng, restrict)
	out := make([]Level, len(levels))
	for i, l := range levels {
		out[i] = Level{g: l.g, cmap: l.cmap}
	}
	return out
}

// WithDefaults fills unset options with their defaults.
func (o Options) WithDefaults() Options { return o.withDefaults() }
