package partition

import (
	"math/rand"

	"prema/internal/graph"
)

// level is one rung of the multilevel hierarchy.
type level struct {
	g    *graph.Graph
	cmap []int32 // fine vertex -> coarse vertex in the next level up
}

// heavyEdgeMatching computes a matching that prefers heavy edges (Karypis &
// Kumar): vertices are visited in random order and matched to the unmatched
// neighbor with the heaviest connecting edge. restrict, when non-nil, only
// allows matching vertices with equal restrict values — the "local matching"
// of the Unified Repartitioning Algorithm, which keeps coarse vertices
// within one old partition so remap and diffusion stay meaningful.
func heavyEdgeMatching(g *graph.Graph, rng *rand.Rand, restrict []int) []int32 {
	n := g.NumVertices()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	perm := rng.Perm(n)
	for _, v := range perm {
		if match[v] != -1 {
			continue
		}
		best, bestW := -1, int32(-1)
		g.Neighbors(v, func(u int, w int32) {
			if match[u] != -1 || u == v {
				return
			}
			if restrict != nil && restrict[u] != restrict[v] {
				return
			}
			if w > bestW || (w == bestW && (best == -1 || u < best)) {
				best, bestW = u, w
			}
		})
		if best >= 0 {
			match[v] = int32(best)
			match[best] = int32(v)
		} else {
			match[v] = int32(v)
		}
	}
	return match
}

// contract builds the coarse graph induced by a matching, returning the
// coarse graph and the fine->coarse map.
func contract(g *graph.Graph, match []int32) (*graph.Graph, []int32) {
	n := g.NumVertices()
	cmap := make([]int32, n)
	nc := int32(0)
	for v := 0; v < n; v++ {
		m := int(match[v])
		if m >= v { // v is the representative of the pair (or a singleton)
			cmap[v] = nc
			if m != v {
				cmap[m] = nc
			}
			nc++
		}
	}
	cg := &graph.Graph{
		Xadj: make([]int32, nc+1),
		VWgt: make([]int64, nc),
	}
	if g.VSize != nil {
		cg.VSize = make([]int64, nc)
	}
	for v := 0; v < n; v++ {
		cg.VWgt[cmap[v]] += g.VWgt[v]
		if cg.VSize != nil {
			cg.VSize[cmap[v]] += g.VSize[v]
		}
	}
	// Accumulate coarse adjacency with a dense scratch row (reset via the
	// touched list), building rows in coarse vertex order.
	scratch := make([]int32, nc)
	for i := range scratch {
		scratch[i] = -1
	}
	var touched []int32
	var adjncy, adjwgt []int32
	// members[c] lists fine vertices of coarse vertex c in order.
	members := make([][2]int32, nc)
	for i := range members {
		members[i] = [2]int32{-1, -1}
	}
	for v := n - 1; v >= 0; v-- {
		c := cmap[v]
		members[c][1] = members[c][0]
		members[c][0] = int32(v)
	}
	for c := int32(0); c < nc; c++ {
		cg.Xadj[c] = int32(len(adjncy))
		touched = touched[:0]
		for _, vv := range members[c] {
			if vv < 0 {
				continue
			}
			g.Neighbors(int(vv), func(u int, w int32) {
				cu := cmap[u]
				if cu == c {
					return
				}
				if scratch[cu] < 0 {
					scratch[cu] = 0
					touched = append(touched, cu)
				}
				scratch[cu] += w
			})
		}
		sortInt32(touched)
		for _, cu := range touched {
			adjncy = append(adjncy, cu)
			adjwgt = append(adjwgt, scratch[cu])
			scratch[cu] = -1
		}
	}
	cg.Xadj[nc] = int32(len(adjncy))
	cg.Adjncy = adjncy
	cg.AdjWgt = adjwgt
	return cg, cmap
}

func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// coarsen builds the multilevel hierarchy down to at most target vertices.
// The returned slice starts at the original graph; the last entry is the
// coarsest. restrict is threaded through to the matcher (may be nil); it is
// projected to each coarser level.
func coarsen(g *graph.Graph, target int, rng *rand.Rand, restrict []int) []level {
	levels := []level{{g: g}}
	cur := g
	curRestrict := restrict
	for cur.NumVertices() > target {
		match := heavyEdgeMatching(cur, rng, curRestrict)
		cg, cmap := contract(cur, match)
		if cg.NumVertices() >= cur.NumVertices() { // no progress; give up
			break
		}
		levels[len(levels)-1].cmap = cmap
		levels = append(levels, level{g: cg})
		if curRestrict != nil {
			next := make([]int, cg.NumVertices())
			for v := 0; v < cur.NumVertices(); v++ {
				next[cmap[v]] = curRestrict[v]
			}
			curRestrict = next
		}
		cur = cg
	}
	return levels
}
