package partition

import (
	"sort"

	"prema/internal/graph"
)

// refine2 improves a bisection with FM-flavored greedy passes: first restore
// balance, then move positive-gain boundary vertices while balance holds.
func refine2(g *graph.Graph, side []int, frac float64, opt Options) {
	tot := g.TotalVWgt()
	target0 := float64(tot) * frac
	max0 := int64(target0 * (1 + opt.Imbalance))
	min0 := int64(target0 * (1 - opt.Imbalance))
	var w0 int64
	for v, s := range side {
		if s == 0 {
			w0 += g.VWgt[v]
		}
	}
	gain := func(v int) int64 {
		var ext, internal int64
		g.Neighbors(v, func(u int, w int32) {
			if side[u] != side[v] {
				ext += int64(w)
			} else {
				internal += int64(w)
			}
		})
		return ext - internal
	}
	moveBest := func(from int) bool {
		bestV, bestG := -1, int64(0)
		for v := range side {
			if side[v] != from {
				continue
			}
			if g := gain(v); bestV == -1 || g > bestG {
				bestV, bestG = v, g
			}
		}
		if bestV < 0 {
			return false
		}
		side[bestV] = 1 - from
		if from == 0 {
			w0 -= g.VWgt[bestV]
		} else {
			w0 += g.VWgt[bestV]
		}
		return true
	}
	for pass := 0; pass < opt.RefinePasses; pass++ {
		// Restore balance.
		for w0 > max0 {
			if !moveBest(0) {
				break
			}
		}
		for w0 < min0 {
			if !moveBest(1) {
				break
			}
		}
		// Greedy improvement over boundary vertices, best gains first.
		type cand struct {
			v int
			g int64
		}
		var cands []cand
		for v := range side {
			onBoundary := false
			g.Neighbors(v, func(u int, w int32) {
				if side[u] != side[v] {
					onBoundary = true
				}
			})
			if onBoundary {
				cands = append(cands, cand{v, gain(v)})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].g != cands[j].g {
				return cands[i].g > cands[j].g
			}
			return cands[i].v < cands[j].v
		})
		moved := 0
		for _, c := range cands {
			cg := gain(c.v) // re-evaluate: earlier moves shift gains
			if cg <= 0 {
				continue
			}
			vw := g.VWgt[c.v]
			if side[c.v] == 0 {
				if w0-vw < min0 {
					continue
				}
				side[c.v] = 1
				w0 -= vw
			} else {
				if w0+vw > max0 {
					continue
				}
				side[c.v] = 0
				w0 += vw
			}
			moved++
		}
		if moved == 0 && w0 <= max0 && w0 >= min0 {
			return
		}
	}
}

// CostFn scores a candidate vertex move for k-way refinement. gainCut is
// the edge-cut reduction of the move (positive = better); moveDelta is the
// signed change in migration volume. The default (nil) objective is
// gainCut alone; the parmetis package supplies |Ecut| + alpha*|Vmove|.
type CostFn func(gainCut int64, moveDelta int64) float64

// RefineKWay improves a k-way partition in place with greedy boundary
// passes: each pass restores balance, then applies every positive-objective
// boundary move. oldPart (may be nil) anchors the migration-volume term.
func RefineKWay(g *graph.Graph, part []int, k int, oldPart []int, cost CostFn, opt Options) {
	opt = opt.withDefaults()
	if cost == nil {
		cost = func(gainCut, _ int64) float64 { return float64(gainCut) }
	}
	n := g.NumVertices()
	wgt := graph.PartWeights(g, part, k)
	tot := g.TotalVWgt()
	maxw := int64(float64(tot) / float64(k) * (1 + opt.Imbalance))

	conn := make([]int64, k)
	moveDelta := func(v, to int) int64 {
		if oldPart == nil {
			return 0
		}
		var d int64
		if to != oldPart[v] {
			d += g.Size(v)
		}
		if part[v] != oldPart[v] {
			d -= g.Size(v)
		}
		return d
	}
	// bestMove returns the best target part for v and its objective value.
	bestMove := func(v int, force bool) (int, float64) {
		cur := part[v]
		for i := range conn {
			conn[i] = 0
		}
		g.Neighbors(v, func(u int, w int32) {
			conn[part[u]] += int64(w)
		})
		bestP, bestScore := -1, 0.0
		for b := 0; b < k; b++ {
			if b == cur {
				continue
			}
			if conn[b] == 0 && !force {
				continue // only adjacent parts unless forced rebalancing
			}
			if wgt[b]+g.VWgt[v] > maxw && !force {
				continue
			}
			gainCut := conn[b] - conn[cur]
			score := cost(gainCut, moveDelta(v, b))
			if force {
				// While rebalancing, prefer the lightest feasible part and
				// break ties by objective.
				score = -float64(wgt[b]) + score*1e-9
			}
			if bestP == -1 || score > bestScore {
				bestP, bestScore = b, score
			}
		}
		return bestP, bestScore
	}
	apply := func(v, to int) {
		wgt[part[v]] -= g.VWgt[v]
		wgt[to] += g.VWgt[v]
		part[v] = to
	}
	for pass := 0; pass < opt.RefinePasses; pass++ {
		// Rebalance overweight parts.
		for iter := 0; iter < n; iter++ {
			heavy := -1
			for p := 0; p < k; p++ {
				if wgt[p] > maxw && (heavy == -1 || wgt[p] > wgt[heavy]) {
					heavy = p
				}
			}
			if heavy == -1 {
				break
			}
			bestV, bestP, bestScore := -1, -1, 0.0
			for v := 0; v < n; v++ {
				if part[v] != heavy {
					continue
				}
				p, score := bestMove(v, true)
				if p >= 0 && (bestV == -1 || score > bestScore) {
					bestV, bestP, bestScore = v, p, score
				}
			}
			if bestV < 0 {
				break
			}
			apply(bestV, bestP)
		}
		// Positive-objective boundary moves.
		moved := 0
		for v := 0; v < n; v++ {
			onBoundary := false
			g.Neighbors(v, func(u int, w int32) {
				if part[u] != part[v] {
					onBoundary = true
				}
			})
			if !onBoundary {
				continue
			}
			if p, score := bestMove(v, false); p >= 0 && score > 0 {
				apply(v, p)
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}
