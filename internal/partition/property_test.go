package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"prema/internal/graph"
)

// TestPartitionValidityProperty: for arbitrary random graphs, Partition
// produces an in-range assignment for every vertex.
func TestPartitionValidityProperty(t *testing.T) {
	f := func(seed int64, rawN uint8, rawK uint8) bool {
		n := int(rawN%60) + 4
		k := int(rawK%4) + 2
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v, int32(rng.Intn(5)+1))
			}
		}
		for v := 0; v < n; v++ {
			b.SetVWgt(v, int64(rng.Intn(9)+1))
		}
		g := b.Build()
		part := Partition(g, k, Options{Seed: seed})
		if len(part) != n {
			return false
		}
		for _, p := range part {
			if p < 0 || p >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRefineNeverBreaksValidity: RefineKWay keeps assignments in range and
// never increases the cut when starting balanced.
func TestRefineNeverBreaksValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.Grid3D(6, 6, 2)
		const k = 4
		part := make([]int, g.NumVertices())
		for v := range part {
			part[v] = rng.Intn(k)
		}
		before := graph.EdgeCut(g, part)
		RefineKWay(g, part, k, nil, nil, Options{Seed: seed})
		for _, p := range part {
			if p < 0 || p >= k {
				return false
			}
		}
		after := graph.EdgeCut(g, part)
		// Refinement rebalances first (can raise the cut from a random
		// start), then improves; it must never end worse than the raw
		// random cut by more than the rebalancing could justify. In
		// practice it always improves; assert non-catastrophic.
		return after <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSubgraphExtraction(t *testing.T) {
	g := graph.Grid3D(4, 4, 1)
	vertices := []int{0, 1, 4, 5} // a 2x2 corner block
	sub, toGlobal := subgraph(g, vertices)
	if sub.NumVertices() != 4 {
		t.Fatalf("sub n = %d", sub.NumVertices())
	}
	// The 2x2 block has 4 internal edges.
	if len(sub.Adjncy) != 8 {
		t.Fatalf("sub directed edges = %d", len(sub.Adjncy))
	}
	for i, v := range toGlobal {
		if v != vertices[i] {
			t.Fatalf("toGlobal = %v", toGlobal)
		}
	}
}

func TestGrowRegionHitsTarget(t *testing.T) {
	g := graph.Grid3D(6, 6, 1)
	rng := rand.New(rand.NewSource(8))
	side := growRegion(g, g.TotalVWgt()/2, rng)
	var w0 int64
	for v, s := range side {
		if s == 0 {
			w0 += g.VWgt[v]
		}
	}
	if w0 < g.TotalVWgt()*4/10 || w0 > g.TotalVWgt()*6/10 {
		t.Fatalf("grown weight %d of %d", w0, g.TotalVWgt())
	}
}

func TestHeavyEdgeMatchingIsMatching(t *testing.T) {
	g := graph.Grid3D(5, 5, 2)
	rng := rand.New(rand.NewSource(9))
	match := heavyEdgeMatching(g, rng, nil)
	for v, m := range match {
		if m < 0 {
			t.Fatalf("vertex %d unmatched entry", v)
		}
		if int(match[m]) != v {
			t.Fatalf("asymmetric match: %d -> %d -> %d", v, m, match[m])
		}
	}
}

func TestContractAccumulatesEdgeWeights(t *testing.T) {
	// Triangle with distinct weights; match two vertices, the contracted
	// pair's edges to the third must sum.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 10)
	b.AddEdge(0, 2, 3)
	b.AddEdge(1, 2, 4)
	g := b.Build()
	match := []int32{1, 0, 2} // contract {0,1}; 2 alone
	cg, cmap := contract(g, match)
	if cg.NumVertices() != 2 {
		t.Fatalf("coarse n = %d", cg.NumVertices())
	}
	if cmap[0] != cmap[1] || cmap[0] == cmap[2] {
		t.Fatalf("cmap = %v", cmap)
	}
	var w int32
	cg.Neighbors(int(cmap[0]), func(u int, wt int32) { w = wt })
	if w != 7 {
		t.Fatalf("contracted edge weight = %d, want 3+4", w)
	}
	if cg.VWgt[cmap[0]] != 2 {
		t.Fatalf("contracted vertex weight = %d", cg.VWgt[cmap[0]])
	}
}
