package coll

import (
	"fmt"
	"testing"

	"prema/internal/dmcs"
	"prema/internal/sim"
)

// spmd runs body on n processors, each with its own Coll.
func spmd(t *testing.T, n int, body func(cl *Coll, p *sim.Proc)) *sim.Engine {
	t.Helper()
	e := sim.NewEngine(sim.Config{Seed: 13})
	for i := 0; i < n; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			body(New(dmcs.New(p)), p)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBarrierSynchronizes(t *testing.T) {
	var exits []sim.Time
	spmd(t, 4, func(cl *Coll, p *sim.Proc) {
		// Staggered arrival: proc i computes i*100ms first.
		p.Advance(sim.Time(p.ID())*100*sim.Millisecond, sim.CatCompute)
		cl.Barrier()
		exits = append(exits, p.Now())
	})
	// Nobody exits before the last arrival at 300ms.
	for _, e := range exits {
		if e < 300*sim.Millisecond {
			t.Fatalf("barrier exit at %v before last arrival", e)
		}
	}
}

func TestBarrierChargesSync(t *testing.T) {
	e := spmd(t, 4, func(cl *Coll, p *sim.Proc) {
		if p.ID() == 3 {
			p.Advance(time500(), sim.CatCompute)
		}
		cl.Barrier()
	})
	// Proc 0 waited ~500ms in sync.
	if s := e.Proc(0).Account()[sim.CatSync]; s < 400*sim.Millisecond {
		t.Fatalf("sync time = %v", s)
	}
}

func time500() sim.Time { return 500 * sim.Millisecond }

func TestBroadcast(t *testing.T) {
	spmd(t, 4, func(cl *Coll, p *sim.Proc) {
		var in any
		if p.ID() == 0 {
			in = "payload"
		}
		out := cl.Broadcast(in, 64)
		if out.(string) != "payload" {
			t.Errorf("proc %d got %v", p.ID(), out)
		}
	})
}

func TestAllGather(t *testing.T) {
	spmd(t, 5, func(cl *Coll, p *sim.Proc) {
		all := cl.AllGather(p.ID()*10, 8)
		if len(all) != 5 {
			t.Fatalf("gathered %d", len(all))
		}
		for q, v := range all {
			if v.(int) != q*10 {
				t.Errorf("slot %d = %v", q, v)
			}
		}
	})
}

func TestAllReduce(t *testing.T) {
	spmd(t, 4, func(cl *Coll, p *sim.Proc) {
		x := float64(p.ID() + 1)
		if s := cl.AllReduceFloat(x, "sum"); s != 10 {
			t.Errorf("sum = %v", s)
		}
		if m := cl.AllReduceFloat(x, "max"); m != 4 {
			t.Errorf("max = %v", m)
		}
		if m := cl.AllReduceFloat(x, "min"); m != 1 {
			t.Errorf("min = %v", m)
		}
	})
}

func TestRepeatedCollectives(t *testing.T) {
	spmd(t, 3, func(cl *Coll, p *sim.Proc) {
		for round := 0; round < 10; round++ {
			got := cl.AllReduceFloat(float64(round), "max")
			if got != float64(round) {
				t.Fatalf("round %d: %v", round, got)
			}
			cl.Barrier()
		}
	})
}

func TestUnknownReduceOpPanics(t *testing.T) {
	// Two procs: the root's combine must fold at least one remote value,
	// which is where an unknown op is detected.
	e := sim.NewEngine(sim.Config{Seed: 1})
	for i := 0; i < 2; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			cl := New(dmcs.New(p))
			cl.AllReduceFloat(1, "median")
		})
	}
	if err := e.Run(); err == nil {
		t.Fatal("unknown op should panic and surface via Run")
	}
}

func TestStaggeredCollectivesBufferAcrossSequence(t *testing.T) {
	// A fast proc races two collectives ahead of a slow root worker; the
	// root must buffer early contributions by sequence.
	spmd(t, 3, func(cl *Coll, p *sim.Proc) {
		for round := 0; round < 5; round++ {
			if p.ID() == 2 {
				// Slow participant.
				p.Advance(100*sim.Millisecond, sim.CatCompute)
			}
			sum := cl.AllReduceFloat(1, "sum")
			if sum != 3 {
				t.Errorf("round %d: sum %v", round, sum)
			}
		}
	})
}
