// Package coll provides collective operations — barrier, broadcast,
// all-gather, all-reduce — built on the DMCS active-message layer. PREMA
// itself never needs them (its whole point is avoiding global
// synchronization), but loosely synchronous phases (field solvers,
// stop-and-repartition) do, and the paper's future-work direction —
// end-to-end applications mixing asynchronous and loosely synchronous
// phases (§6) — is reproduced in this repository's hybrid experiment using
// this package.
//
// All collectives are root-gathered, linear-fan implementations (gather to
// processor 0, scatter back): simple, deterministic, and a fair model of
// small-cluster MPI collectives over Ethernet. Every processor must
// construct its Coll in the same SPMD order and call the same sequence of
// collectives; each call site blocks until the collective completes, with
// blocked time charged to substrate.CatSync.
package coll

import (
	"fmt"
	"sort"

	"prema/internal/dmcs"
	"prema/internal/substrate"
)

// Coll is a processor-local endpoint for collective operations.
type Coll struct {
	c  *dmcs.Comm
	n  int
	me int

	seq      int                 // collective sequence number
	gathered map[int]map[int]any // root: contributions keyed by seq then proc
	released bool                // non-root: result arrived
	result   any                 // the broadcast/reduce result
	hGather  dmcs.HandlerID      // contribution to root
	hRelease dmcs.HandlerID      // root -> all: result
}

type contribution struct {
	Seq  int
	Proc int
	Data any
}

type release struct {
	Seq  int
	Data any
}

// New builds a collective endpoint; SPMD construction order applies.
func New(c *dmcs.Comm) *Coll {
	cl := &Coll{c: c, n: c.Proc().NumPeers(), me: c.Proc().ID(),
		gathered: make(map[int]map[int]any)}
	cl.hGather = c.Register(func(cc *dmcs.Comm, src int, data any, size int) {
		ct := data.(contribution)
		// A fast processor may already be contributing to the next
		// collective while the root still works between two of its own
		// calls — buffer by sequence number. Contributions for an already
		// completed collective would indicate a protocol bug.
		if ct.Seq <= cl.seq && cl.me == 0 && cl.gathered[ct.Seq] == nil {
			panic(fmt.Sprintf("coll: proc %d got stale contribution for collective %d during %d",
				cl.me, ct.Seq, cl.seq))
		}
		if cl.gathered[ct.Seq] == nil {
			cl.gathered[ct.Seq] = make(map[int]any)
		}
		cl.gathered[ct.Seq][ct.Proc] = ct.Data
	})
	cl.hRelease = c.Register(func(cc *dmcs.Comm, src int, data any, size int) {
		r := data.(release)
		if r.Seq != cl.seq {
			panic(fmt.Sprintf("coll: proc %d got release for collective %d during %d",
				cl.me, r.Seq, cl.seq))
		}
		cl.released = true
		cl.result = r.Data
	})
	return cl
}

// run executes one collective: contribute data (size bytes), the root
// combines all contributions with combine, and everyone returns the
// combined result. Waiting time lands in substrate.CatSync.
func (cl *Coll) run(data any, size int, combine func(map[int]any) (any, int)) any {
	cl.seq++
	if cl.me == 0 {
		if cl.gathered[cl.seq] == nil {
			cl.gathered[cl.seq] = make(map[int]any)
		}
		cl.gathered[cl.seq][0] = data
		for len(cl.gathered[cl.seq]) < cl.n {
			cl.c.Proc().WaitMsg(substrate.CatSync)
			cl.c.Poll()
		}
		out, outSize := combine(cl.gathered[cl.seq])
		delete(cl.gathered, cl.seq)
		for q := 1; q < cl.n; q++ {
			cl.c.SendTagged(q, cl.hRelease, release{Seq: cl.seq, Data: out}, outSize, substrate.TagSystem)
		}
		return out
	}
	cl.released = false
	cl.c.SendTagged(0, cl.hGather, contribution{Seq: cl.seq, Proc: cl.me, Data: data}, size+16, substrate.TagSystem)
	for !cl.released {
		cl.c.Proc().WaitMsg(substrate.CatSync)
		cl.c.Poll()
	}
	return cl.result
}

// Barrier blocks until every processor has entered it.
func (cl *Coll) Barrier() {
	cl.run(nil, 8, func(map[int]any) (any, int) { return nil, 8 })
}

// Broadcast returns root's data on every processor (data is ignored on
// non-root processors).
func (cl *Coll) Broadcast(data any, size int) any {
	out := cl.run(data, size, func(g map[int]any) (any, int) { return g[0], size })
	return out
}

// AllGather returns every processor's contribution, indexed by processor.
func (cl *Coll) AllGather(data any, size int) []any {
	out := cl.run(data, size, func(g map[int]any) (any, int) {
		all := make([]any, cl.n)
		for p, d := range g {
			all[p] = d
		}
		return all, size * cl.n
	})
	return out.([]any)
}

// AllReduceFloat combines one float64 per processor with op ("sum", "max",
// "min") and returns the result everywhere.
func (cl *Coll) AllReduceFloat(x float64, op string) float64 {
	out := cl.run(x, 8, func(g map[int]any) (any, int) {
		keys := make([]int, 0, len(g))
		for p := range g {
			keys = append(keys, p)
		}
		sort.Ints(keys)
		acc := g[keys[0]].(float64)
		for _, p := range keys[1:] {
			v := g[p].(float64)
			switch op {
			case "sum":
				acc += v
			case "max":
				if v > acc {
					acc = v
				}
			case "min":
				if v < acc {
					acc = v
				}
			default:
				panic("coll: unknown reduce op " + op)
			}
		}
		return acc, 8
	})
	return out.(float64)
}
