package coll

import "prema/internal/wire"

// Wire codecs for the collective layer's two payloads. Contribution and
// release data are opaque application values (nil barriers, float64
// reductions, []any gathers) and encode through the registry.
func init() {
	wire.Register(wire.KindCollContribution, contribution{},
		func(w *wire.Writer, v any) {
			c := v.(contribution)
			w.Int(c.Seq)
			w.Int(c.Proc)
			wire.EncodeAny(w, c.Data)
		},
		func(r *wire.Reader) any {
			return contribution{Seq: r.Int(), Proc: r.Int(), Data: wire.DecodeAny(r)}
		})

	wire.Register(wire.KindCollRelease, release{},
		func(w *wire.Writer, v any) {
			c := v.(release)
			w.Int(c.Seq)
			wire.EncodeAny(w, c.Data)
		},
		func(r *wire.Reader) any {
			return release{Seq: r.Int(), Data: wire.DecodeAny(r)}
		})
}
