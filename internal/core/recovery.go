package core

import (
	"prema/internal/recov"
	"prema/internal/substrate"
)

// This file is the runtime's crash-recovery coordinator: it reacts to
// failure-detector verdicts surfaced by the ILB scheduler's heartbeat
// (handleDown) and re-introduces rejoined processors to their peers
// (AnnounceRejoin). The mechanics live below — checkpoints and verdicts in
// internal/recov, directory repair and replay in internal/mol, dead-peer
// transport handling in internal/dmcs.

// Recov returns this processor's recovery handle (nil when recovery is off).
func (r *Runtime) Recov() *recov.Proc { return r.rp }

// handleDown runs once per crash verdict on every live processor: the
// transport stops waiting on the dead peer and the directory drops cached
// pointers to it. The verdict's coordinator additionally re-homes the dead
// processor's orphaned objects round-robin over the survivors and replays
// every logged envelope not known executed.
func (r *Runtime) handleDown(d recov.Down) {
	r.c.MarkDead(d.Proc)
	r.l.PeerDown(d.Proc)
	if !d.Coordinator {
		return
	}
	plan := r.rp.RecoveryPlan(d.Proc)
	if len(plan) == 0 {
		return
	}
	surv := r.rp.Store().Survivors()
	next := 0
	for i := range plan {
		ck := &plan[i]
		host := ck.Loc
		if ck.Orphan {
			host = surv[next%len(surv)]
			next++
			r.rp.Assign(ck.ID, host)
		}
		r.l.Restore(ck, host)
	}
}

// AnnounceRejoin introduces a freshly re-spawned incarnation to the machine.
// The second incarnation's body calls it after handler registration and
// before Run: live peers get a hello (their transport resumes sequenced
// delivery to us), while peers that died during our downtime are marked dead
// locally so we never wait on them.
func (r *Runtime) AnnounceRejoin() {
	if r.rp == nil {
		return
	}
	n := r.p.NumPeers()
	for q := 0; q < n; q++ {
		if q == r.p.ID() {
			continue
		}
		if r.rp.IsDown(q) {
			r.c.MarkDead(q)
			continue
		}
		r.c.SendTagged(q, r.hHello, nil, 8, substrate.TagSystem)
	}
}
