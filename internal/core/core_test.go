package core

import (
	"fmt"
	"testing"

	"prema/internal/dmcs"
	"prema/internal/ilb"
	"prema/internal/mol"
	"prema/internal/policy"
	"prema/internal/sim"
)

// miniApp runs an imbalanced workload (all units start on processor 0) on
// nProcs processors under the given options and returns the engine for
// inspection plus the number of completed units observed at the root.
func miniApp(t *testing.T, nProcs, units int, unitTime sim.Time, mkOpts func() Options) (*sim.Engine, *int) {
	t.Helper()
	e := sim.NewEngine(sim.Config{Seed: 11})
	completed := new(int)
	for i := 0; i < nProcs; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			r := NewRuntime(p, mkOpts())
			var hDone dmcs.HandlerID
			hDone = r.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
				*completed++
				if *completed == units {
					r.StopAll()
				}
			})
			hWork := r.RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
				r.Compute(unitTime)
				r.Comm().SendTagged(0, hDone, nil, 8, sim.TagApp)
			})
			if p.ID() == 0 {
				for u := 0; u < units; u++ {
					mp := r.Register(u, 256)
					r.Message(mp, hWork, nil, 0, unitTime.Seconds())
				}
			}
			r.Run()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e, completed
}

func optsNone(mode ilb.Mode) func() Options {
	return func() Options { return DefaultOptions(mode) }
}

func optsSteal(mode ilb.Mode) func() Options {
	return func() Options {
		o := DefaultOptions(mode)
		o.LB.WaterMark = 0.15
		o.Policy = policy.NewWorkStealing(policy.DefaultWSConfig())
		return o
	}
}

func TestAllUnitsCompleteWithoutBalancing(t *testing.T) {
	e, completed := miniApp(t, 4, 12, 100*sim.Millisecond, optsNone(ilb.Explicit))
	if *completed != 12 {
		t.Fatalf("completed %d of 12", *completed)
	}
	// Everything ran on proc 0.
	if c := e.Proc(0).Account()[sim.CatCompute]; c != 1200*sim.Millisecond {
		t.Fatalf("root compute = %v", c)
	}
	for i := 1; i < 4; i++ {
		if c := e.Proc(i).Account()[sim.CatCompute]; c != 0 {
			t.Fatalf("proc %d computed %v without load balancing", i, c)
		}
	}
}

func TestWorkStealingSpreadsLoad(t *testing.T) {
	for _, mode := range []ilb.Mode{ilb.Explicit, ilb.Implicit} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			e, completed := miniApp(t, 4, 12, 100*sim.Millisecond, optsSteal(mode))
			if *completed != 12 {
				t.Fatalf("completed %d of 12", *completed)
			}
			spread := 0
			for i := 1; i < 4; i++ {
				if e.Proc(i).Account()[sim.CatCompute] > 0 {
					spread++
				}
			}
			if spread == 0 {
				t.Fatal("no work migrated off the root")
			}
			if e.Makespan() >= 1200*sim.Millisecond {
				t.Fatalf("makespan %v not better than serial 1.2s", e.Makespan())
			}
		})
	}
}

func TestWorkStealingBeatsNoBalancing(t *testing.T) {
	eNone, _ := miniApp(t, 4, 16, 50*sim.Millisecond, optsNone(ilb.Implicit))
	eSteal, _ := miniApp(t, 4, 16, 50*sim.Millisecond, optsSteal(ilb.Implicit))
	if eSteal.Makespan() >= eNone.Makespan() {
		t.Fatalf("steal %v >= none %v", eSteal.Makespan(), eNone.Makespan())
	}
}

func TestDiffusionSpreadsLoad(t *testing.T) {
	mk := func() Options {
		o := DefaultOptions(ilb.Implicit)
		cfg := policy.DefaultDiffConfig()
		cfg.Period = 20 * sim.Millisecond
		cfg.MinTransfer = 0.05
		o.Policy = policy.NewDiffusion(cfg)
		return o
	}
	e, completed := miniApp(t, 4, 16, 50*sim.Millisecond, mk)
	if *completed != 16 {
		t.Fatalf("completed %d of 16", *completed)
	}
	spread := 0
	for i := 1; i < 4; i++ {
		if e.Proc(i).Account()[sim.CatCompute] > 0 {
			spread++
		}
	}
	if spread == 0 {
		t.Fatal("diffusion moved nothing")
	}
}

func TestMultiListSpreadsLoad(t *testing.T) {
	mk := func() Options {
		o := DefaultOptions(ilb.Implicit)
		cfg := policy.DefaultMLConfig()
		cfg.HighMark = 0.2
		cfg.LowMark = 0.1
		o.Policy = policy.NewMultiList(cfg)
		return o
	}
	e, completed := miniApp(t, 4, 16, 50*sim.Millisecond, mk)
	if *completed != 16 {
		t.Fatalf("completed %d of 16", *completed)
	}
	spread := 0
	for i := 1; i < 4; i++ {
		if e.Proc(i).Account()[sim.CatCompute] > 0 {
			spread++
		}
	}
	if spread == 0 {
		t.Fatal("multilist moved nothing")
	}
}

// TestImplicitRespondsDuringCoarseUnits reproduces the paper's core claim at
// miniature scale: with very coarse work units, implicit (preemptive) load
// balancing finishes sooner than explicit polling because steal requests are
// served mid-unit.
func TestImplicitRespondsDuringCoarseUnits(t *testing.T) {
	eExp, _ := miniApp(t, 2, 4, 500*sim.Millisecond, optsSteal(ilb.Explicit))
	eImp, _ := miniApp(t, 2, 4, 500*sim.Millisecond, optsSteal(ilb.Implicit))
	if eImp.Makespan() > eExp.Makespan() {
		t.Fatalf("implicit %v slower than explicit %v", eImp.Makespan(), eExp.Makespan())
	}
}

func TestRuntimeOverheadIsSmall(t *testing.T) {
	e, _ := miniApp(t, 4, 12, 100*sim.Millisecond, optsSteal(ilb.Implicit))
	var total, overhead sim.Time
	for i := 0; i < 4; i++ {
		a := e.Proc(i).Account()
		total += a[sim.CatCompute]
		overhead += a.Overhead()
	}
	// Paper reports PREMA overhead well under 1% of useful computation.
	if float64(overhead) > 0.05*float64(total) {
		t.Fatalf("overhead %v vs compute %v (>5%%)", overhead, total)
	}
}

func TestStopAllReachesEveryone(t *testing.T) {
	e := sim.NewEngine(sim.Config{Seed: 5})
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			r := NewRuntime(p, DefaultOptions(ilb.Explicit))
			if p.ID() == 0 {
				p.Advance(10*sim.Millisecond, sim.CatCompute)
				r.StopAll()
				return
			}
			r.Run()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Makespan() > 100*sim.Millisecond {
		t.Fatalf("stop took %v", e.Makespan())
	}
}

// TestRemoteGetThroughRuntime: the core facade exposes the MOL's remote
// data access; reads chase migrated objects.
func TestRemoteGetThroughRuntime(t *testing.T) {
	e := sim.NewEngine(sim.Config{Seed: 19})
	var got any
	for i := 0; i < 2; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			r := NewRuntime(p, DefaultOptions(ilb.Explicit))
			reader := r.RegisterReader(func(obj *mol.Object) (any, int) {
				return obj.Data.(string) + "!", 16
			})
			switch p.ID() {
			case 0:
				// The host schedules the read like any work unit.
				r.Register("hello", 64)
				r.Run()
			case 1:
				p.Advance(sim.Millisecond, sim.CatCompute)
				r.Get(mol.MobilePtr{Home: 0, Index: 0}, reader, func(v any) { got = v })
				for got == nil {
					r.Comm().WaitPoll(sim.CatIdle)
				}
				r.StopAll()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "hello!" {
		t.Fatalf("got = %v", got)
	}
}

func TestRuntimeAccessors(t *testing.T) {
	e := sim.NewEngine(sim.Config{Seed: 1})
	e.Spawn("p", func(p *sim.Proc) {
		r := NewRuntime(p, DefaultOptions(ilb.Implicit))
		if r.Proc() != p || r.Mol() == nil || r.Scheduler() == nil || r.Comm() == nil {
			t.Error("accessors")
		}
		r.Poll() // no traffic: must be a cheap no-op
		r.Compute(10 * sim.Millisecond)
		if p.Now() != 10*sim.Millisecond {
			t.Errorf("compute time %v", p.Now())
		}
		r.Stop()
		if !r.Scheduler().Stopped() {
			t.Error("stop")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
