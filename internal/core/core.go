// Package core is the public face of PREMA — the Parallel Runtime
// Environment for Multicomputer Applications, the paper's primary
// contribution. It assembles the three substrate layers into the runtime an
// application codes against:
//
//   - dmcs: single-sided active-message communication (§4, bullet 1),
//   - mol: global name space, transparent migration, message forwarding
//     (§4, bullets 2-3),
//   - ilb: the load balancing framework and policy suite (§4, bullets 4-5),
//
// An application decomposes its domain into more subdomains than
// processors, registers each as a mobile object, and drives all computation
// through messages to mobile pointers; the runtime schedules, balances, and
// migrates behind the scenes. See examples/quickstart for the paper's
// Figure 2 tree-walk example written against this API.
package core

import (
	"time"

	"prema/internal/dmcs"
	"prema/internal/ilb"
	"prema/internal/mol"
	"prema/internal/recov"
	"prema/internal/substrate"
	"prema/internal/trace"
)

// Options configures a per-processor PREMA runtime instance.
type Options struct {
	// LB configures the scheduler and the explicit/implicit balancing mode.
	LB ilb.Config
	// Mol configures the mobile object layer cost model and routing.
	Mol mol.Config
	// Policy constructs this processor's load balancing policy. nil selects
	// no load balancing. Every processor must construct the same policy
	// type (SPMD discipline).
	Policy ilb.Policy
	// Rel switches DMCS into reliable-delivery mode (sequence numbers,
	// cumulative acks, poll-driven retransmission — see dmcs/reliable.go),
	// letting the stack survive a lossy transport such as internal/faulty.
	// The zero value keeps the classic fire-and-forget transport. All
	// processors must agree (SPMD discipline).
	Rel dmcs.RelConfig
	// Recovery, when non-nil, is the run's shared crash-recovery store: the
	// runtime joins it, heartbeats through the scheduler loop, checkpoints
	// resident objects, and survives fail-stop crashes of peer processors
	// (see internal/recov). All processors must share one store (SPMD
	// discipline); reliable delivery (Rel.Enabled) is required, since
	// recovery replay assumes the transport retransmits into live peers.
	Recovery *recov.Store
}

// DefaultOptions returns the options used by the paper's experiments for
// the given balancing mode.
func DefaultOptions(mode ilb.Mode) Options {
	return Options{
		LB:  ilb.DefaultConfig(mode),
		Mol: mol.DefaultConfig(),
	}
}

// Runtime is one processor's PREMA endpoint.
type Runtime struct {
	p  substrate.Endpoint
	c  *dmcs.Comm
	l  *mol.Layer
	s  *ilb.Scheduler
	tr *trace.Recorder

	hStop    dmcs.HandlerID
	stopSent bool

	// Crash recovery (nil / zero unless Options.Recovery was set).
	rp     *recov.Proc
	hHello dmcs.HandlerID
}

// NewRuntime builds the PREMA stack on a substrate endpoint — a simulated
// processor (internal/sim) or a real goroutine processor (internal/rtm). As
// with every layer in this repository, all processors must call NewRuntime
// (and then register handlers) in the same order.
func NewRuntime(p substrate.Endpoint, opt Options) *Runtime {
	c := dmcs.New(p)
	c.EnableReliable(opt.Rel)
	l := mol.New(c, opt.Mol)
	pol := opt.Policy
	if pol == nil {
		pol = ilb.NopPolicy{}
	}
	s := ilb.New(l, opt.LB, pol)
	r := &Runtime{p: p, c: c, l: l, s: s, tr: trace.Of(p)}
	r.hStop = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
		s.Stop()
	})
	if opt.Recovery != nil {
		r.rp = opt.Recovery.Join(p)
		l.AttachRecov(r.rp)
		s.AttachRecov(r.rp)
		s.OnProcDown(r.handleDown)
		r.hHello = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
			// A crashed peer announcing its rejoin: resume sequenced delivery
			// to it (this hello is already the first message of its fresh
			// incarnation's streams).
			c.MarkAlive(src)
		})
	}
	return r
}

// Proc returns the underlying substrate endpoint.
func (r *Runtime) Proc() substrate.Endpoint { return r.p }

// Comm returns the raw active-message endpoint for application-level AM use.
func (r *Runtime) Comm() *dmcs.Comm { return r.c }

// Mol returns the mobile object layer.
func (r *Runtime) Mol() *mol.Layer { return r.l }

// Scheduler returns the ILB scheduler.
func (r *Runtime) Scheduler() *ilb.Scheduler { return r.s }

// RegisterHandler installs an application message handler for mobile
// objects; registration order must match on all processors.
func (r *Runtime) RegisterHandler(h mol.ObjHandler) mol.HandlerID {
	return r.l.RegisterHandler(h)
}

// Register installs data as a mobile object homed here and returns its
// mobile pointer (the paper's mol_register).
func (r *Runtime) Register(data any, size int) mol.MobilePtr {
	return r.l.Register(data, size)
}

// Message sends a work-unit message to a mobile object (the paper's
// ilb_message): handler h runs at the object's current host when scheduled,
// wherever the object has migrated. weight is the hinted computational
// weight in seconds.
func (r *Runtime) Message(mp mol.MobilePtr, h mol.HandlerID, data any, size int, weight float64) {
	r.s.Message(mp, h, data, size, weight)
}

// RegisterReader installs a remote-read extractor (see mol.RegisterReader);
// SPMD registration order applies.
func (r *Runtime) RegisterReader(rd mol.Reader) int { return r.l.RegisterReader(rd) }

// Get requests a read of a mobile object wherever it lives; done runs here
// with the value (the MOL's consistent remote data access).
func (r *Runtime) Get(mp mol.MobilePtr, reader int, done func(value any)) {
	r.l.Get(mp, reader, done)
}

// Compute consumes d of application CPU inside a work-unit handler; in
// implicit mode it is preempted by the polling thread (see
// ilb.Scheduler.Compute). The duration is backend-neutral substrate time:
// the simulator advances virtual time by exactly d, the real-concurrency
// machine burns scaled wall-clock.
func (r *Runtime) Compute(d substrate.Time) { r.s.Compute(d) }

// ComputeDuration is Compute for callers holding a time.Duration.
func (r *Runtime) ComputeDuration(d time.Duration) { r.s.Compute(substrate.FromDuration(d)) }

// Poll is the application-posted polling operation.
func (r *Runtime) Poll() { r.s.Poll() }

// Run drives the scheduler until Stop (or a StopAll broadcast) is seen. In
// reliable-delivery mode it then quiesces the transport: unacked sends
// (including the termination broadcast itself) are retransmitted until
// acknowledged, and peers' stragglers keep getting acked for a short
// linger, bounded by the drain timeout. Without the drain, the first
// dropped stop message would strand a peer forever.
func (r *Runtime) Run() {
	r.s.Run()
	if r.rp != nil {
		// Retire before the drain: a processor blocked in Quiesce no longer
		// heartbeats, and must not ripen into a false crash verdict.
		r.rp.Retire()
	}
	r.c.Quiesce()
}

// Stop stops this processor's scheduler.
func (r *Runtime) Stop() { r.s.Stop() }

// StopAll broadcasts termination to every processor (including this one).
// Typically called by the processor that detects global completion. StopAll
// is idempotent: repeated calls stop the local scheduler again but broadcast
// only once, so a double-stop can neither flood the network nor deadlock a
// backend whose peers have already drained their inboxes and exited.
func (r *Runtime) StopAll() {
	if !r.stopSent {
		r.stopSent = true
		n := r.p.NumPeers()
		r.tr.Instant(trace.EvStop, r.p.Now(), int64(n-1), 0, 0)
		for i := 0; i < n; i++ {
			if i == r.p.ID() {
				continue
			}
			r.c.SendTagged(i, r.hStop, nil, 8, substrate.TagSystem)
		}
	}
	r.s.Stop()
}
