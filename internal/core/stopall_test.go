package core

import (
	"fmt"
	"testing"

	"prema/internal/ilb"
	"prema/internal/rtm"
	"prema/internal/sim"
	"prema/internal/substrate"
)

// backends runs f once per substrate backend. Termination semantics —
// StopAll reaching every processor, idempotent double-stops — must hold on
// both the deterministic simulator and the real-concurrency machine.
func backends(t *testing.T, f func(t *testing.T, m substrate.Machine)) {
	t.Run("sim", func(t *testing.T) {
		f(t, sim.NewMachine(sim.Config{Seed: 6}))
	})
	t.Run("real", func(t *testing.T) {
		cfg := rtm.DefaultConfig()
		cfg.Seed = 6
		f(t, rtm.New(cfg))
	})
}

// TestStopAllIdempotent: calling StopAll repeatedly must broadcast the stop
// only once and never deadlock — on either backend — even though the peers
// may already have stopped and stopped polling their inboxes.
func TestStopAllIdempotent(t *testing.T) {
	for _, procs := range []int{1, 4} {
		procs := procs
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			backends(t, func(t *testing.T, m substrate.Machine) {
				stops := make([]int, procs)
				for p := 0; p < procs; p++ {
					m.Spawn(fmt.Sprintf("p%d", p), func(ep substrate.Endpoint) {
						r := NewRuntime(ep, DefaultOptions(ilb.Explicit))
						if ep.ID() == 0 {
							ep.Advance(5*substrate.Millisecond, substrate.CatCompute)
							r.StopAll()
							r.StopAll() // second call must be a local no-op plus no re-broadcast
							r.StopAll()
							stops[0] = 1
							return
						}
						r.Run()
						stops[ep.ID()] = 1
					})
				}
				if err := m.Run(); err != nil {
					t.Fatal(err)
				}
				for p, s := range stops {
					if s != 1 {
						t.Fatalf("processor %d never stopped", p)
					}
				}
			})
		})
	}
}

// TestStopAllFromEveryProcessor: several processors detecting completion
// concurrently and all broadcasting StopAll must still terminate cleanly
// (the buffered delivery path absorbs broadcasts to already-exited peers).
func TestStopAllFromEveryProcessor(t *testing.T) {
	const procs = 4
	backends(t, func(t *testing.T, m substrate.Machine) {
		for p := 0; p < procs; p++ {
			m.Spawn(fmt.Sprintf("p%d", p), func(ep substrate.Endpoint) {
				r := NewRuntime(ep, DefaultOptions(ilb.Implicit))
				r.StopAll()
				r.Run() // already stopped: must return immediately
			})
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
	})
}
