package sweep

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdering(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 64} {
		got, err := Map(jobs, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 100 {
			t.Fatalf("jobs=%d: len = %d", jobs, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("jobs=%d: got[%d] = %d", jobs, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapDefaultJobs(t *testing.T) {
	if DefaultJobs() < 1 {
		t.Fatalf("DefaultJobs = %d", DefaultJobs())
	}
	got, err := Map(0, 5, func(i int) (int, error) { return i, nil })
	if err != nil || len(got) != 5 {
		t.Fatalf("jobs=0 should fall back to DefaultJobs: %v, %v", got, err)
	}
}

// TestMapLowestIndexError: with several failing jobs, the reported error is
// always the lowest failing index, independent of worker scheduling.
func TestMapLowestIndexError(t *testing.T) {
	sentinel := errors.New("boom")
	for trial := 0; trial < 20; trial++ {
		_, err := Map(8, 50, func(i int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return 0, fmt.Errorf("%w at %d", sentinel, i)
			}
			return i, nil
		})
		if err == nil || !errors.Is(err, sentinel) {
			t.Fatalf("err = %v", err)
		}
		if !strings.Contains(err.Error(), "job 3:") {
			t.Fatalf("expected lowest failing index 3, got %v", err)
		}
	}
}

// TestMapFailFast: after a failure, jobs with higher indices that have not
// started yet are skipped.
func TestMapFailFast(t *testing.T) {
	var started atomic.Int64
	_, err := Map(1, 1000, func(i int) (int, error) {
		started.Add(1)
		if i == 2 {
			return 0, errors.New("fail")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := started.Load(); n > 3 {
		t.Fatalf("fail-fast violated: %d jobs started after failure at index 2", n)
	}
}

// TestMapBoundedConcurrency: never more than jobs workers in flight.
func TestMapBoundedConcurrency(t *testing.T) {
	const jobs = 3
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	_, err := Map(jobs, 64, func(i int) (int, error) {
		cur := inFlight.Add(1)
		mu.Lock()
		if cur > peak.Load() {
			peak.Store(cur)
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > jobs {
		t.Fatalf("peak concurrency %d > jobs %d", p, jobs)
	}
}

func TestMapPanicBecomesError(t *testing.T) {
	_, err := Map(4, 10, func(i int) (int, error) {
		if i == 5 {
			panic("kaboom")
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v", err)
	}
}

func TestEach(t *testing.T) {
	var sum atomic.Int64
	if err := Each(4, 10, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum = %d", sum.Load())
	}
	if err := Each(4, 10, func(i int) error {
		if i == 0 {
			return errors.New("no")
		}
		return nil
	}); err == nil {
		t.Fatal("expected error")
	}
}
