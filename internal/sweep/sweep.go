// Package sweep runs independent jobs — typically whole discrete-event
// simulations, one per (figure × system) point of the paper's evaluation
// grid — across a bounded worker pool.
//
// The contract is deliberately strict so sweeps stay reproducible:
//
//   - Deterministic ordering: results are returned indexed exactly like the
//     inputs, regardless of worker count or completion order. Running with
//     jobs=1 and jobs=N yields identical slices.
//   - Fail-fast: after the first failure no new job starts; jobs already in
//     flight run to completion. The error reported is the failing job with
//     the lowest index, so the error, too, is independent of scheduling.
//   - Panic containment: a panicking job is converted into an error instead
//     of tearing down sibling workers mid-simulation.
//
// Jobs must be independent (no shared mutable state); every simulation in
// this repository builds its own engine and seeds its own RNGs, which is
// what makes fanning them out safe.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultJobs is the default worker-pool size: one worker per available CPU.
func DefaultJobs() int { return runtime.GOMAXPROCS(0) }

// JobsFor is the default worker-pool size when each job is itself internally
// parallel — e.g. a simulation running on `shards` event-loop shards. The
// two levels multiply (jobs sweeps × shards goroutines each all want a CPU),
// so the pool is clamped to keep the product near the CPU count instead of
// oversubscribing it: max(1, DefaultJobs()/shards). Callers pass the result
// to Map/Each when the user left the job count unset.
func JobsFor(shards int) int {
	if shards < 1 {
		shards = 1
	}
	j := DefaultJobs() / shards
	if j < 1 {
		j = 1
	}
	return j
}

// Map runs fn(0), ..., fn(n-1) on at most jobs concurrent workers and
// returns the n results in index order. jobs < 1 selects DefaultJobs().
// On failure it returns the error of the lowest failing index, wrapped with
// that index.
func Map[T any](jobs, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if jobs < 1 {
		jobs = DefaultJobs()
	}
	if jobs > n {
		jobs = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := call(i, fn, results); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: job %d: %w", i, err)
		}
	}
	return results, nil
}

// Each runs fn(0), ..., fn(n-1) on at most jobs concurrent workers with the
// same ordering and fail-fast guarantees as Map, for jobs that deposit their
// own results.
func Each(jobs, n int, fn func(i int) error) error {
	_, err := Map(jobs, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// call invokes one job, converting a panic into an error.
func call[T any](i int, fn func(i int) (T, error), results []T) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	r, err := fn(i)
	if err != nil {
		return err
	}
	results[i] = r
	return nil
}
