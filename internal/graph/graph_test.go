package graph

import (
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 2, 3)
	b.AddEdge(0, 1, 1) // accumulates to 3
	b.AddEdge(2, 2, 9) // self loop ignored
	b.SetVWgt(3, 7)
	g := b.Build()
	if g.NumVertices() != 4 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatalf("degrees wrong")
	}
	var w01 int32
	g.Neighbors(0, func(u int, w int32) {
		if u == 1 {
			w01 = w
		}
	})
	if w01 != 3 {
		t.Fatalf("edge weight = %d", w01)
	}
	if g.TotalVWgt() != 1+1+1+7 {
		t.Fatalf("total vwgt = %d", g.TotalVWgt())
	}
	if g.Size(0) != 1 {
		t.Fatal("default size should be 1")
	}
}

func TestEdgeCutAndWeights(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 5)
	b.AddEdge(2, 3, 4)
	b.AddEdge(1, 2, 1)
	g := b.Build()
	part := []int{0, 0, 1, 1}
	if cut := EdgeCut(g, part); cut != 1 {
		t.Fatalf("cut = %d", cut)
	}
	w := PartWeights(g, part, 2)
	if w[0] != 2 || w[1] != 2 {
		t.Fatalf("weights = %v", w)
	}
	if im := Imbalance(g, part, 2); im != 1.0 {
		t.Fatalf("imbalance = %v", im)
	}
	if mv := MoveVolume(g, part, []int{0, 1, 1, 1}); mv != 1 {
		t.Fatalf("move volume = %d", mv)
	}
}

func TestGrid3D(t *testing.T) {
	g := Grid3D(3, 3, 3)
	if g.NumVertices() != 27 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Corner has degree 3; center has degree 6.
	if g.Degree(0) != 3 {
		t.Fatalf("corner degree = %d", g.Degree(0))
	}
	center := (1*3+1)*3 + 1
	if g.Degree(center) != 6 {
		t.Fatalf("center degree = %d", g.Degree(center))
	}
	// Total directed edges = 2 * undirected; grid has 3*(3*3*2) = 54 edges.
	if len(g.Adjncy) != 108 {
		t.Fatalf("adjncy len = %d", len(g.Adjncy))
	}
}

// Property: built CSR is symmetric with matching weights.
func TestCSRSymmetryProperty(t *testing.T) {
	f := func(edges []struct{ U, V uint8 }) bool {
		const n = 32
		b := NewBuilder(n)
		for _, e := range edges {
			b.AddEdge(int(e.U%n), int(e.V%n), 1)
		}
		g := b.Build()
		for v := 0; v < n; v++ {
			ok := true
			g.Neighbors(v, func(u int, w int32) {
				var back int32
				g.Neighbors(u, func(x int, wx int32) {
					if x == v {
						back = wx
					}
				})
				if back != w {
					ok = false
				}
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAdjacencySorted(t *testing.T) {
	b := NewBuilder(40)
	for i := 39; i >= 1; i-- {
		b.AddEdge(0, i, 1)
	}
	g := b.Build()
	prev := int32(-1)
	for i := g.Xadj[0]; i < g.Xadj[1]; i++ {
		if g.Adjncy[i] <= prev {
			t.Fatal("adjacency not sorted")
		}
		prev = g.Adjncy[i]
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 5, 1)
}

func TestMoveVolumeUsesVSize(t *testing.T) {
	b := NewBuilder(3)
	g := b.Build()
	g.VSize = []int64{10, 20, 30}
	mv := MoveVolume(g, []int{0, 0, 0}, []int{1, 0, 1})
	if mv != 40 {
		t.Fatalf("move volume = %d", mv)
	}
	if g.Size(2) != 30 {
		t.Fatal("size accessor")
	}
}

func TestImbalanceEmptyGraph(t *testing.T) {
	g := (&Builder{}).Build()
	_ = g
	b := NewBuilder(0)
	g0 := b.Build()
	if im := Imbalance(g0, nil, 2); im != 1 {
		t.Fatalf("empty imbalance = %v", im)
	}
}

func TestQuicksortLargeAdjacency(t *testing.T) {
	// Exercise the quicksort path (>24 neighbors).
	b := NewBuilder(64)
	for i := 63; i >= 1; i-- {
		b.AddEdge(0, i, 1)
	}
	g := b.Build()
	prev := int32(-1)
	g.Neighbors(0, func(u int, w int32) {
		if int32(u) <= prev {
			t.Fatalf("unsorted at %d", u)
		}
		prev = int32(u)
	})
	if g.Degree(0) != 63 {
		t.Fatalf("degree = %d", g.Degree(0))
	}
}
