// Package graph provides the weighted undirected graph representation (CSR)
// shared by the multilevel partitioner, the ParMETIS-style adaptive
// repartitioner, and the Charm++-style Metis strategy. Vertices carry
// computational weights; edges carry communication weights.
package graph

import "fmt"

// Graph is an undirected weighted graph in compressed sparse row form.
// Every edge appears twice (u->v and v->u), as in METIS.
type Graph struct {
	Xadj   []int32 // index into Adjncy per vertex; len = NumVertices+1
	Adjncy []int32 // concatenated adjacency lists
	AdjWgt []int32 // edge weights, parallel to Adjncy
	VWgt   []int64 // vertex (computational) weights
	// VSize is the migration size per vertex (redistribution cost), the
	// quantity |Vmove| sums. Nil means uniform size 1.
	VSize []int64
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.Xadj) - 1 }

// Degree returns vertex v's degree.
func (g *Graph) Degree(v int) int { return int(g.Xadj[v+1] - g.Xadj[v]) }

// Neighbors calls fn for each neighbor of v with the connecting edge weight.
func (g *Graph) Neighbors(v int, fn func(u int, w int32)) {
	for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
		fn(int(g.Adjncy[i]), g.AdjWgt[i])
	}
}

// TotalVWgt returns the sum of all vertex weights.
func (g *Graph) TotalVWgt() int64 {
	var t int64
	for _, w := range g.VWgt {
		t += w
	}
	return t
}

// Size returns vertex v's migration size.
func (g *Graph) Size(v int) int64 {
	if g.VSize == nil {
		return 1
	}
	return g.VSize[v]
}

// Builder accumulates edges and produces a CSR Graph. Adding an edge (u,v)
// inserts both directions. Duplicate edges accumulate weight.
type Builder struct {
	n    int
	vwgt []int64
	adj  []map[int32]int32
}

// NewBuilder creates a builder for n vertices with unit vertex weights.
func NewBuilder(n int) *Builder {
	b := &Builder{n: n, vwgt: make([]int64, n), adj: make([]map[int32]int32, n)}
	for i := range b.vwgt {
		b.vwgt[i] = 1
	}
	return b
}

// SetVWgt sets vertex v's computational weight.
func (b *Builder) SetVWgt(v int, w int64) { b.vwgt[v] = w }

// AddEdge adds the undirected edge (u,v) with weight w; repeated additions
// accumulate. Self loops are ignored.
func (b *Builder) AddEdge(u, v int, w int32) {
	if u == v {
		return
	}
	if u < 0 || v < 0 || u >= b.n || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", u, v, b.n))
	}
	if b.adj[u] == nil {
		b.adj[u] = make(map[int32]int32)
	}
	if b.adj[v] == nil {
		b.adj[v] = make(map[int32]int32)
	}
	b.adj[u][int32(v)] += w
	b.adj[v][int32(u)] += w
}

// Build finalizes the CSR graph. Adjacency lists are emitted in ascending
// neighbor order for determinism.
func (b *Builder) Build() *Graph {
	g := &Graph{
		Xadj: make([]int32, b.n+1),
		VWgt: append([]int64(nil), b.vwgt...),
	}
	total := 0
	for _, m := range b.adj {
		total += len(m)
	}
	g.Adjncy = make([]int32, 0, total)
	g.AdjWgt = make([]int32, 0, total)
	for v := 0; v < b.n; v++ {
		g.Xadj[v] = int32(len(g.Adjncy))
		m := b.adj[v]
		keys := make([]int32, 0, len(m))
		for u := range m {
			keys = append(keys, u)
		}
		sortInt32(keys)
		for _, u := range keys {
			g.Adjncy = append(g.Adjncy, u)
			g.AdjWgt = append(g.AdjWgt, m[u])
		}
	}
	g.Xadj[b.n] = int32(len(g.Adjncy))
	return g
}

func sortInt32(a []int32) {
	// Insertion sort is fine for typical adjacency degrees; fall back to a
	// simple quicksort for long lists.
	if len(a) < 24 {
		for i := 1; i < len(a); i++ {
			for j := i; j > 0 && a[j] < a[j-1]; j-- {
				a[j], a[j-1] = a[j-1], a[j]
			}
		}
		return
	}
	quickInt32(a)
}

func quickInt32(a []int32) {
	for len(a) > 12 {
		p := a[len(a)/2]
		lo, hi := 0, len(a)-1
		for lo <= hi {
			for a[lo] < p {
				lo++
			}
			for a[hi] > p {
				hi--
			}
			if lo <= hi {
				a[lo], a[hi] = a[hi], a[lo]
				lo++
				hi--
			}
		}
		if hi < len(a)-lo {
			quickInt32(a[:hi+1])
			a = a[lo:]
		} else {
			quickInt32(a[lo:])
			a = a[:hi+1]
		}
	}
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// EdgeCut returns the total weight of edges crossing partition boundaries.
// part maps vertex -> part id.
func EdgeCut(g *Graph, part []int) int64 {
	var cut int64
	for v := 0; v < g.NumVertices(); v++ {
		g.Neighbors(v, func(u int, w int32) {
			if part[v] != part[u] {
				cut += int64(w)
			}
		})
	}
	return cut / 2
}

// PartWeights returns per-part vertex-weight sums for a k-way partition.
func PartWeights(g *Graph, part []int, k int) []int64 {
	w := make([]int64, k)
	for v := 0; v < g.NumVertices(); v++ {
		w[part[v]] += g.VWgt[v]
	}
	return w
}

// MoveVolume returns the total migration size of vertices whose part
// assignment differs between oldPart and newPart — ParMETIS' |Vmove|.
func MoveVolume(g *Graph, oldPart, newPart []int) int64 {
	var vol int64
	for v := 0; v < g.NumVertices(); v++ {
		if oldPart[v] != newPart[v] {
			vol += g.Size(v)
		}
	}
	return vol
}

// Imbalance returns maxPartWeight * k / totalWeight — 1.0 is perfect.
func Imbalance(g *Graph, part []int, k int) float64 {
	w := PartWeights(g, part, k)
	var max, tot int64
	for _, x := range w {
		tot += x
		if x > max {
			max = x
		}
	}
	if tot == 0 {
		return 1
	}
	return float64(max) * float64(k) / float64(tot)
}

// Grid3D builds the dual graph of an nx*ny*nz cell grid with 6-point
// connectivity and unit weights — a stand-in for mesh subdomain adjacency.
func Grid3D(nx, ny, nz int) *Graph {
	idx := func(x, y, z int) int { return (z*ny+y)*nx + x }
	b := NewBuilder(nx * ny * nz)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := idx(x, y, z)
				if x+1 < nx {
					b.AddEdge(v, idx(x+1, y, z), 1)
				}
				if y+1 < ny {
					b.AddEdge(v, idx(x, y+1, z), 1)
				}
				if z+1 < nz {
					b.AddEdge(v, idx(x, y, z+1), 1)
				}
			}
		}
	}
	return b.Build()
}
