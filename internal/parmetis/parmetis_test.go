package parmetis

import (
	"testing"

	"prema/internal/graph"
	"prema/internal/partition"
)

// adaptiveScenario builds an 8x8 grid, partitions it into k balanced parts
// under uniform weights, then "refines" a corner region (weight spike) to
// create the adaptive imbalance AdaptiveRepart must fix.
func adaptiveScenario(k int) (*graph.Graph, []int) {
	g := graph.Grid3D(8, 8, 1)
	old := partition.Partition(g, k, partition.Options{Seed: 2})
	for v := 0; v < g.NumVertices(); v++ {
		x, y := v%8, v/8
		if x < 3 && y < 3 {
			g.VWgt[v] = 20 // refinement spike
		}
	}
	return g, old
}

func TestAdaptiveRepartRestoresBalance(t *testing.T) {
	g, old := adaptiveScenario(4)
	if im := graph.Imbalance(g, old, 4); im < 1.5 {
		t.Fatalf("scenario not imbalanced enough: %.2f", im)
	}
	newPart := AdaptiveRepart(g, 4, old, DefaultOptions())
	if im := graph.Imbalance(g, newPart, 4); im > 1.15 {
		t.Fatalf("repartition imbalance %.3f (weights %v)", im, graph.PartWeights(g, newPart, 4))
	}
	// Old assignment untouched.
	if &newPart[0] == &old[0] {
		t.Fatal("returned slice aliases input")
	}
}

func TestAlphaTradesCutForMovement(t *testing.T) {
	g, old := adaptiveScenario(4)
	cheapMove := DefaultOptions()
	cheapMove.Alpha = 0.01
	dearMove := DefaultOptions()
	dearMove.Alpha = 100
	a := AdaptiveRepart(g, 4, old, cheapMove)
	b := AdaptiveRepart(g, 4, old, dearMove)
	movA := graph.MoveVolume(g, old, a)
	movB := graph.MoveVolume(g, old, b)
	if movB > movA {
		t.Fatalf("high alpha moved more data: %d vs %d", movB, movA)
	}
}

func TestRemapMinimizesMovement(t *testing.T) {
	g := graph.Grid3D(4, 4, 1)
	old := make([]int, 16)
	for v := range old {
		if v%4 >= 2 {
			old[v] = 1
		}
	}
	// A scratch partition identical to old but with labels swapped: remap
	// must undo the swap, making movement zero.
	scratch := make([]int, 16)
	for v := range scratch {
		scratch[v] = 1 - old[v]
	}
	remap(g, old, scratch, 2)
	if mv := graph.MoveVolume(g, old, scratch); mv != 0 {
		t.Fatalf("remap left move volume %d", mv)
	}
}

func TestCostFunction(t *testing.T) {
	g := graph.Grid3D(2, 2, 1)
	old := []int{0, 0, 1, 1}
	same := []int{0, 0, 1, 1}
	flip := []int{1, 1, 0, 0}
	if Cost(g, old, same, 1) != float64(graph.EdgeCut(g, same)) {
		t.Fatal("no-move cost should equal edge cut")
	}
	if Cost(g, old, flip, 1) != float64(graph.EdgeCut(g, flip))+4 {
		t.Fatalf("flip cost = %v", Cost(g, old, flip, 1))
	}
}

func TestAdaptiveRepartTrivialCases(t *testing.T) {
	g := graph.Grid3D(4, 4, 1)
	old := make([]int, 16)
	out := AdaptiveRepart(g, 1, old, DefaultOptions())
	for _, p := range out {
		if p != 0 {
			t.Fatal("k=1 must stay in part 0")
		}
	}
}

func TestAdaptiveRepartDeterministic(t *testing.T) {
	g, old := adaptiveScenario(4)
	a := AdaptiveRepart(g, 4, old, DefaultOptions())
	b := AdaptiveRepart(g, 4, old, DefaultOptions())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic repartition")
		}
	}
}

func TestUnifiedObjectiveBeatsPureScratch(t *testing.T) {
	// With a meaningful alpha, AdaptiveRepart should not cost more (under
	// the unified objective) than a from-scratch partition without remap.
	g, old := adaptiveScenario(4)
	opt := DefaultOptions()
	opt.Alpha = 1.0
	ura := AdaptiveRepart(g, 4, old, opt)
	scratch := partition.Partition(g, 4, opt.Part)
	if Cost(g, old, ura, opt.Alpha) > Cost(g, old, scratch, opt.Alpha) {
		t.Fatalf("URA cost %.1f > raw scratch cost %.1f",
			Cost(g, old, ura, opt.Alpha), Cost(g, old, scratch, opt.Alpha))
	}
}

// TestMultilevelHierarchyPath forces several coarsening levels so the
// project-down/refine-up machinery runs through its full depth.
func TestMultilevelHierarchyPath(t *testing.T) {
	g := graph.Grid3D(16, 16, 2) // 512 vertices
	old := partition.Partition(g, 8, partition.Options{Seed: 4})
	// Spike one corner.
	for v := 0; v < g.NumVertices(); v++ {
		if v%16 < 4 && (v/16)%16 < 4 {
			g.VWgt[v] = 15
		}
	}
	opt := DefaultOptions()
	opt.Part.CoarsenTo = 4 // force a deep hierarchy (4*k=32 coarse target)
	newPart := AdaptiveRepart(g, 8, old, opt)
	if im := graph.Imbalance(g, newPart, 8); im > 1.25 {
		t.Fatalf("deep-hierarchy repartition imbalance %.3f", im)
	}
	for _, p := range newPart {
		if p < 0 || p >= 8 {
			t.Fatalf("invalid part %d", p)
		}
	}
}

// TestVSizeWeighting: vertices with larger migration sizes should move less
// under a high Relative Cost Factor.
func TestVSizeWeighting(t *testing.T) {
	g := graph.Grid3D(8, 8, 1)
	g.VSize = make([]int64, g.NumVertices())
	for v := range g.VSize {
		g.VSize[v] = 1
		if v < 16 {
			g.VSize[v] = 100 // first two rows are very expensive to move
		}
	}
	old := partition.Partition(g, 4, partition.Options{Seed: 6})
	for v := 0; v < g.NumVertices(); v++ {
		if v%8 < 2 {
			g.VWgt[v] = 10
		}
	}
	opt := DefaultOptions()
	opt.Alpha = 50
	newPart := AdaptiveRepart(g, 4, old, opt)
	movedExpensive := 0
	for v := 0; v < 16; v++ {
		if newPart[v] != old[v] {
			movedExpensive++
		}
	}
	// The high alpha should keep most of the expensive vertices home.
	if movedExpensive > 8 {
		t.Fatalf("moved %d of 16 expensive vertices despite alpha=50", movedExpensive)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := &graph.Graph{Xadj: []int32{0}}
	out := AdaptiveRepart(g, 4, nil, DefaultOptions())
	if len(out) != 0 {
		t.Fatalf("empty graph produced %v", out)
	}
}
