// Package parmetis reimplements the algorithmic core of
// ParMETIS_V3_AdaptiveRepart: the Unified Repartitioning Algorithm of
// Schloegel, Karypis & Kumar (SC 2000), which load-balances an already
// distributed, adaptively refined workload graph by combining the two
// classic families of repartitioners:
//
//   - scratch-remap: partition from scratch, then remap part labels onto the
//     old parts to minimize data redistribution;
//   - diffusion: incrementally shift boundary vertices out of overweight
//     parts into underweight ones.
//
// Both candidate repartitions are computed (on the coarsest graph of a
// locally matched multilevel hierarchy), scored with the unified objective
//
//	|Ecut| + alpha * |Vmove|
//
// where alpha is the application's Relative Cost Factor, and the winner is
// refined multilevel-ly under the same objective. This is the baseline the
// paper's benchmark drives through a root-coordinated stop-and-repartition
// protocol (package bench).
package parmetis

import (
	"math/rand"

	"prema/internal/graph"
	"prema/internal/partition"
)

// Options tunes AdaptiveRepart.
type Options struct {
	// Alpha is the Relative Cost Factor: the cost of migrating a unit of
	// vertex size relative to a unit of edge cut (paper Eq. 1).
	Alpha float64
	// Part carries the multilevel partitioner options (seed, imbalance, ...).
	Part partition.Options
}

// DefaultOptions returns the options used by the experiments.
func DefaultOptions() Options {
	return Options{
		Alpha: 0.1,
		Part:  partition.Options{Imbalance: 0.05, Seed: 1},
	}
}

// Cost evaluates the unified objective for a candidate repartition.
func Cost(g *graph.Graph, oldPart, newPart []int, alpha float64) float64 {
	return float64(graph.EdgeCut(g, newPart)) + alpha*float64(graph.MoveVolume(g, oldPart, newPart))
}

// AdaptiveRepart computes a balanced k-way repartition of g given the
// current assignment oldPart, minimizing |Ecut| + Alpha*|Vmove|. It returns
// the new assignment (oldPart is not modified).
func AdaptiveRepart(g *graph.Graph, k int, oldPart []int, opt Options) []int {
	n := g.NumVertices()
	if k <= 1 || n == 0 {
		return append([]int(nil), oldPart...)
	}
	popt := opt.Part.WithDefaults()
	rng := rand.New(rand.NewSource(popt.Seed))

	// 1. Coarsen with local (intra-part) matching so coarse vertices never
	// straddle old parts — both remap and diffusion need that invariant.
	levels := partition.Coarsen(g, popt.CoarsenTo*k, rng, oldPart)
	coarse := levels[len(levels)-1].Graph()
	coarseOld := projectDown(levels, oldPart)

	// 2a. Scratch-remap candidate.
	scratch := partition.Partition(coarse, k, popt)
	remap(coarse, coarseOld, scratch, k)

	// 2b. Diffusion candidate.
	diffuse := append([]int(nil), coarseOld...)
	diffusionRepart(coarse, diffuse, k, popt)

	// 3. Unified objective picks the winner.
	best := scratch
	if Cost(coarse, coarseOld, diffuse, opt.Alpha) < Cost(coarse, coarseOld, scratch, opt.Alpha) {
		best = diffuse
	}

	// 4. Multilevel refinement under the unified objective.
	cost := func(gainCut, moveDelta int64) float64 {
		return float64(gainCut) - opt.Alpha*float64(moveDelta)
	}
	cur := best
	partition.RefineKWay(coarse, cur, k, coarseOld, cost, popt)
	for li := len(levels) - 2; li >= 0; li-- {
		cur = projectUp(levels, li, cur)
		fineOld := oldPart
		if li > 0 {
			fineOld = projectDownTo(levels, li, oldPart)
		}
		partition.RefineKWay(levels[li].Graph(), cur, k, fineOld, cost, popt)
	}
	return cur
}

// projectDown maps a fine-level labeling to the coarsest level (coarse
// vertex inherits any constituent's label; with local matching they agree).
func projectDown(levels []partition.Level, fine []int) []int {
	cur := fine
	for li := 0; li < len(levels)-1; li++ {
		cmap := levels[li].CMap()
		next := make([]int, levels[li+1].Graph().NumVertices())
		for v, c := range cmap {
			next[c] = cur[v]
		}
		cur = next
	}
	return append([]int(nil), cur...)
}

// projectDownTo maps the finest labeling down to level li.
func projectDownTo(levels []partition.Level, li int, fine []int) []int {
	cur := fine
	for l := 0; l < li; l++ {
		cmap := levels[l].CMap()
		next := make([]int, levels[l+1].Graph().NumVertices())
		for v, c := range cmap {
			next[c] = cur[v]
		}
		cur = next
	}
	return append([]int(nil), cur...)
}

// projectUp expands a level li+1 labeling to level li.
func projectUp(levels []partition.Level, li int, coarsePart []int) []int {
	cmap := levels[li].CMap()
	fine := make([]int, levels[li].Graph().NumVertices())
	for v := range fine {
		fine[v] = coarsePart[cmap[v]]
	}
	return fine
}

// remap relabels newPart's parts to maximize weight overlap with oldPart,
// minimizing |Vmove| without touching the cut (a greedy assignment on the
// k x k similarity matrix, as in scratch-remap repartitioners).
func remap(g *graph.Graph, oldPart, newPart []int, k int) {
	overlap := make([][]int64, k) // overlap[new][old]
	for i := range overlap {
		overlap[i] = make([]int64, k)
	}
	for v := 0; v < g.NumVertices(); v++ {
		overlap[newPart[v]][oldPart[v]] += g.Size(v)
	}
	assigned := make([]int, k) // new label -> final label
	for i := range assigned {
		assigned[i] = -1
	}
	usedOld := make([]bool, k)
	for round := 0; round < k; round++ {
		bi, bj, bw := -1, -1, int64(-1)
		for i := 0; i < k; i++ {
			if assigned[i] != -1 {
				continue
			}
			for j := 0; j < k; j++ {
				if usedOld[j] {
					continue
				}
				if overlap[i][j] > bw {
					bi, bj, bw = i, j, overlap[i][j]
				}
			}
		}
		if bi < 0 {
			break
		}
		assigned[bi] = bj
		usedOld[bj] = true
	}
	for v := range newPart {
		newPart[v] = assigned[newPart[v]]
	}
}

// diffusionRepart rebalances part in place by draining overweight parts
// into underweight ones through boundary moves (multilevel diffusion in the
// Schloegel-Karypis-Kumar sense, single level here since it runs on the
// coarsest graph).
func diffusionRepart(g *graph.Graph, part []int, k int, popt partition.Options) {
	partition.RefineKWay(g, part, k, part, func(gainCut, moveDelta int64) float64 {
		return float64(gainCut)
	}, popt)
}
