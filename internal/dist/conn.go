package dist

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"prema/internal/wire"
)

// ctl wraps a control-plane connection (node↔coordinator, plus the peer
// handshake on fresh data links): framed sends serialized by a mutex,
// framed receives through one buffered reader, both deadline-guarded.
type ctl struct {
	c   net.Conn
	r   *bufio.Reader
	mu  sync.Mutex
	max int
}

func newCtl(c net.Conn, maxFrame int) *ctl {
	return &ctl{c: c, r: bufio.NewReader(c), max: maxFrame}
}

// send writes one control frame; a zero timeout writes without a deadline.
func (l *ctl) send(payload any, timeout time.Duration) error {
	frame := encodeCtl(payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if timeout > 0 {
		l.c.SetWriteDeadline(time.Now().Add(timeout))
		defer l.c.SetWriteDeadline(time.Time{})
	}
	_, err := l.c.Write(frame)
	return err
}

// recv reads one control frame; a zero timeout blocks indefinitely.
func (l *ctl) recv(timeout time.Duration) (any, error) {
	if timeout > 0 {
		l.c.SetReadDeadline(time.Now().Add(timeout))
		defer l.c.SetReadDeadline(time.Time{})
	}
	frame, err := wire.ReadFrame(l.r, l.max)
	if err != nil {
		return nil, err
	}
	return decodeCtl(frame)
}

// recvAs reads one control frame and type-asserts it.
func recvAs[T any](l *ctl, timeout time.Duration, phase string) (T, error) {
	var zero T
	v, err := l.recv(timeout)
	if err != nil {
		return zero, fmt.Errorf("dist: %s: %w", phase, err)
	}
	t, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("dist: %s: unexpected control message %T", phase, v)
	}
	return t, nil
}
