package dist

import (
	"fmt"

	"prema/internal/substrate"
	"prema/internal/wire"
)

// The session control plane rides the same self-delimiting wire.Frames as
// application traffic: every control payload below is a registered codec in
// the dist Kind range (112–127), so handshake and roster messages are
// covered by the frame fuzzer's corpus and by TestRegistryTotality exactly
// like any other message the stack sends. Control frames travel as
// substrate.Msg values with Src = Dst = ctlRank, outside every processor's
// rank space.

// ctlRank is the Src/Dst stamped on control-plane frames; no processor ever
// owns it, so a control frame misdelivered onto a data link is detected.
const ctlRank = -1

// Hello is the first frame a node sends on its coordinator connection:
// the node id it claims (or -1 for coordinator-assigned) and the address
// its data listener accepts peer connections on.
type Hello struct {
	// Node is the claimed node id, or -1 to let the coordinator assign one.
	Node int32
	// Addr is the node's data-plane listen address (host:port).
	Addr string
}

// Roster is the coordinator's reply to every Hello once all nodes have
// joined: the global machine shape, the per-node data addresses, and the
// opaque scenario spec the coordinator wants each node to run. All nodes
// receive the same roster (bar You), so every process starts with an
// identical processor→node map.
type Roster struct {
	// You is the receiving node's assigned id (its index into Nodes).
	You int32
	// Procs is the total processor count across all nodes.
	Procs int32
	// Nodes lists every node's data-plane address, indexed by node id.
	Nodes []string
	// Spec is the coordinator's opaque scenario payload (bench.DistSpec).
	Spec []byte
}

// PeerHello is the first frame on a freshly dialed data connection: the
// dialing node identifies itself so the accepting side can index the link.
type PeerHello struct {
	// Node is the dialer's node id.
	Node int32
}

// Ready tells the coordinator this node has finished building its peer
// mesh and spawning processors, and is waiting at the start barrier.
type Ready struct {
	// Node is the reporting node's id.
	Node int32
}

// Start releases the start barrier: every node stamps its wall-clock epoch
// on receipt, mirroring rtm's Run-start accounting.
type Start struct{}

// Done reports that every processor hosted by a node has finished: the
// node's local makespan and the final per-processor time ledgers for the
// node's rank range.
type Done struct {
	// Node is the reporting node's id.
	Node int32
	// FinishedAt is the latest local processor finish time (virtual).
	FinishedAt substrate.Time
	// Accounts holds the ledgers of the node's ranks, lo..hi in order.
	Accounts []substrate.Account
}

// Fin is the coordinator's drain release once every node reported Done:
// it carries the machine-wide makespan so all nodes agree on it.
type Fin struct {
	// Makespan is the maximum FinishedAt across all nodes.
	Makespan substrate.Time
}

// Report carries a node's benchmark-level result blob (counters, residency)
// back to the coordinator after its driver finished; it is the session's
// goodbye.
type Report struct {
	// Node is the reporting node's id.
	Node int32
	// Blob is an opaque driver payload (bench partial-result encoding).
	Blob []byte
}

func encodeString(w *wire.Writer, s string) { w.Bytes([]byte(s)) }
func decodeString(r *wire.Reader) string    { return string(r.Bytes()) }

func init() {
	wire.Register(wire.KindDistHello, &Hello{Node: -1, Addr: "127.0.0.1:7421"},
		func(w *wire.Writer, v any) {
			h := v.(*Hello)
			w.I32(h.Node)
			encodeString(w, h.Addr)
		},
		func(r *wire.Reader) any {
			return &Hello{Node: r.I32(), Addr: decodeString(r)}
		})
	wire.Register(wire.KindDistRoster,
		&Roster{You: 1, Procs: 8, Nodes: []string{"127.0.0.1:7431", "127.0.0.1:7432"}, Spec: []byte{1, 2, 3}},
		func(w *wire.Writer, v any) {
			ro := v.(*Roster)
			w.I32(ro.You)
			w.I32(ro.Procs)
			w.U32(uint32(len(ro.Nodes)))
			for _, a := range ro.Nodes {
				encodeString(w, a)
			}
			w.Bytes(ro.Spec)
		},
		func(r *wire.Reader) any {
			ro := &Roster{You: r.I32(), Procs: r.I32()}
			n := r.Count(4) // each address carries at least a u32 length
			if n > 0 {
				ro.Nodes = make([]string, n)
				for i := range ro.Nodes {
					ro.Nodes[i] = decodeString(r)
				}
			}
			ro.Spec = r.Bytes()
			return ro
		})
	wire.Register(wire.KindDistPeerHello, &PeerHello{Node: 1},
		func(w *wire.Writer, v any) { w.I32(v.(*PeerHello).Node) },
		func(r *wire.Reader) any { return &PeerHello{Node: r.I32()} })
	wire.Register(wire.KindDistReady, &Ready{Node: 1},
		func(w *wire.Writer, v any) { w.I32(v.(*Ready).Node) },
		func(r *wire.Reader) any { return &Ready{Node: r.I32()} })
	wire.Register(wire.KindDistStart, &Start{},
		func(w *wire.Writer, v any) {},
		func(r *wire.Reader) any { return &Start{} })
	wire.Register(wire.KindDistDone,
		&Done{Node: 1, FinishedAt: 42 * substrate.Second, Accounts: []substrate.Account{{1, 2, 3}}},
		func(w *wire.Writer, v any) {
			d := v.(*Done)
			w.I32(d.Node)
			w.I64(int64(d.FinishedAt))
			w.U32(uint32(len(d.Accounts)))
			for i := range d.Accounts {
				for _, t := range d.Accounts[i] {
					w.I64(int64(t))
				}
			}
		},
		func(r *wire.Reader) any {
			d := &Done{Node: r.I32(), FinishedAt: substrate.Time(r.I64())}
			n := r.Count(int(substrate.NumCategories) * 8)
			if n > 0 {
				d.Accounts = make([]substrate.Account, n)
				for i := range d.Accounts {
					for c := range d.Accounts[i] {
						d.Accounts[i][c] = substrate.Time(r.I64())
					}
				}
			}
			return d
		})
	wire.Register(wire.KindDistFin, &Fin{Makespan: 99 * substrate.Second},
		func(w *wire.Writer, v any) { w.I64(int64(v.(*Fin).Makespan)) },
		func(r *wire.Reader) any { return &Fin{Makespan: substrate.Time(r.I64())} })
	wire.Register(wire.KindDistReport, &Report{Node: 1, Blob: []byte{4, 5}},
		func(w *wire.Writer, v any) {
			rp := v.(*Report)
			w.I32(rp.Node)
			w.Bytes(rp.Blob)
		},
		func(r *wire.Reader) any {
			return &Report{Node: r.I32(), Blob: r.Bytes()}
		})
}

// encodeCtl frames a control payload as a wire frame.
func encodeCtl(payload any) []byte {
	frame, _ := wire.EncodeMsg(&substrate.Msg{Src: ctlRank, Dst: ctlRank, Kind: ctlRank, Tag: substrate.TagSystem, Data: payload})
	return frame
}

// decodeCtl unwraps a control frame, checking that it is one (and not a
// stray data frame).
func decodeCtl(frame []byte) (any, error) {
	m, err := wire.DecodeMsg(frame)
	if err != nil {
		return nil, err
	}
	if m.Dst != ctlRank {
		return nil, fmt.Errorf("dist: data frame for rank %d on the control link", m.Dst)
	}
	return m.Data, nil
}
