package dist_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"os"
	"os/exec"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"prema/internal/core"
	"prema/internal/dist"
	"prema/internal/dmcs"
	"prema/internal/ilb"
	"prema/internal/mol"
	"prema/internal/rtm"
	"prema/internal/sim"
	"prema/internal/substrate"
	"prema/internal/wire"
)

const testTimeout = 30 * time.Second

type confObj struct {
	got int
}

func init() {
	mol.RegisterDataCodec(wire.KindUser+1, &confObj{},
		func(data any) []byte {
			g := data.(*confObj).got
			return []byte{byte(g >> 24), byte(g >> 16), byte(g >> 8), byte(g)}
		},
		func(b []byte) any {
			if len(b) != 4 {
				return &confObj{}
			}
			return &confObj{got: int(b[0])<<24 | int(b[1])<<16 | int(b[2])<<8 | int(b[3])}
		})
}

// TestMain doubles as the node-process entry point for the multi-process
// conformance test: when PREMA_DIST_CHILD is set, the re-exec'd test binary
// runs one conformance node and exits instead of running the test suite.
func TestMain(m *testing.M) {
	if os.Getenv("PREMA_DIST_CHILD") != "" {
		os.Exit(childMain())
	}
	os.Exit(m.Run())
}

// conformanceOn runs the cross-backend conformance workload (the same
// program rtm's conformance test runs: processor 0 registers and migrates
// `objects` mobile objects, then everyone messages every object) and
// returns per-processor MOL statistics and final placement. On a dist
// machine only the hosted ranks' slots are filled.
func conformanceOn(m substrate.Machine, procs, objects int) ([]mol.Stats, [][]int, error) {
	statsOut := make([]mol.Stats, procs)
	placement := make([][]int, procs)
	for p := 0; p < procs; p++ {
		m.Spawn(fmt.Sprintf("p%d", p), func(ep substrate.Endpoint) {
			opts := core.DefaultOptions(ilb.Explicit)
			opts.Mol.NotifyOrigin = false
			r := core.NewRuntime(ep, opts)
			self := ep.ID()

			done := 0
			var hDone dmcs.HandlerID
			hDone = r.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
				done++
				if done == objects {
					r.StopAll()
				}
			})
			var hWork mol.HandlerID
			hWork = r.RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
				o := obj.Data.(*confObj)
				o.got++
				r.Compute(2 * substrate.Millisecond)
				if o.got == procs {
					r.Comm().SendTagged(0, hDone, nil, 8, substrate.TagApp)
				}
			})
			sendAll := func() {
				for i := 0; i < objects; i++ {
					r.Message(mol.MobilePtr{Home: 0, Index: i}, hWork, nil, 8, 0.002)
				}
			}
			hReady := r.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
				sendAll()
			})

			if self == 0 {
				for i := 0; i < objects; i++ {
					r.Register(&confObj{}, 128)
				}
				for i := 0; i < objects; i++ {
					if dst := i % procs; dst != 0 {
						if err := r.Mol().Migrate(mol.MobilePtr{Home: 0, Index: i}, dst); err != nil {
							panic(err)
						}
					}
				}
				for q := 1; q < procs; q++ {
					r.Comm().SendTagged(q, hReady, nil, 8, substrate.TagApp)
				}
				sendAll()
			}
			r.Run()

			var local []int
			for mp := range r.Mol().Local() {
				local = append(local, mp.Index)
			}
			sort.Ints(local)
			placement[self] = local
			statsOut[self] = r.Mol().Stats
		})
	}
	if err := m.Run(); err != nil {
		return nil, nil, err
	}
	return statsOut, placement, nil
}

// nodeShare is one node's conformance outcome, gob-encoded into its Report
// blob by the multi-process child (and passed over a channel in-process).
type nodeShare struct {
	Lo, Hi int
	Stats  []mol.Stats
	Place  [][]int
}

// mergeShares assembles per-rank stats/placement from per-node shares.
func mergeShares(shares []nodeShare, procs int) ([]mol.Stats, [][]int) {
	stats := make([]mol.Stats, procs)
	place := make([][]int, procs)
	for _, s := range shares {
		for p := s.Lo; p < s.Hi; p++ {
			stats[p] = s.Stats[p]
			place[p] = s.Place[p]
		}
	}
	return stats, place
}

// simConformance runs the reference workload on the deterministic simulator.
func simConformance(t *testing.T, procs, objects int) ([]mol.Stats, [][]int) {
	t.Helper()
	stats, place, err := conformanceOn(sim.NewMachine(sim.Config{Seed: 9}), procs, objects)
	if err != nil {
		t.Fatal(err)
	}
	return stats, place
}

// TestDistConformance: the multi-node (in-process, real localhost TCP)
// machine must agree exactly with the simulator and rtm on message counts,
// migration counts, forwards, and final object placement.
func TestDistConformance(t *testing.T) {
	const nodes, procs, objects = 4, 8, 16
	simStats, simPlace := simConformance(t, procs, objects)

	rc := rtm.DefaultConfig()
	rc.Seed = 9
	rtmStats, rtmPlace, err := conformanceOn(rtm.New(rc), procs, objects)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(simStats, rtmStats) || !reflect.DeepEqual(simPlace, rtmPlace) {
		t.Fatalf("sim and rtm diverge before dist even runs:\n sim: %+v\n rtm: %+v", simStats, rtmStats)
	}

	c, err := dist.Listen(dist.CoordConfig{
		Listen: "127.0.0.1:0", Nodes: nodes, Procs: procs,
		JoinTimeout: testTimeout, DrainTimeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	shareCh := make(chan nodeShare, nodes)
	errCh := make(chan error, nodes)
	for i := 0; i < nodes; i++ {
		go func(i int) {
			n, err := dist.Join(dist.NodeConfig{
				Coord: c.Addr(), Node: i,
				JoinTimeout: testTimeout, DrainTimeout: testTimeout,
			})
			if err != nil {
				errCh <- fmt.Errorf("node %d: %w", i, err)
				return
			}
			defer n.Close()
			mc := dist.DefaultMachineConfig()
			mc.Seed = 9
			stats, place, err := conformanceOn(n.NewMachine(mc), procs, objects)
			if err != nil {
				errCh <- fmt.Errorf("node %d: %w", i, err)
				return
			}
			if err := n.Report(nil); err != nil {
				errCh <- err
				return
			}
			lo, hi := n.Range()
			shareCh <- nodeShare{Lo: lo, Hi: hi, Stats: stats, Place: place}
		}(i)
	}
	if _, err := c.Run(nil); err != nil {
		t.Fatal(err)
	}
	var shares []nodeShare
	for i := 0; i < nodes; i++ {
		select {
		case s := <-shareCh:
			shares = append(shares, s)
		case err := <-errCh:
			t.Fatal(err)
		}
	}
	distStats, distPlace := mergeShares(shares, procs)

	if !reflect.DeepEqual(simStats, distStats) {
		t.Errorf("MOL statistics diverge:\n sim:  %+v\n dist: %+v", simStats, distStats)
	}
	if !reflect.DeepEqual(simPlace, distPlace) {
		t.Errorf("final placement diverges:\n sim:  %v\n dist: %v", simPlace, distPlace)
	}
}

// childMain is the multi-process test's node body: join the coordinator
// named in the environment, run the conformance share, report it gob-encoded.
func childMain() int {
	nodeID, _ := strconv.Atoi(os.Getenv("PREMA_DIST_NODE"))
	n, err := dist.Join(dist.NodeConfig{
		Coord: os.Getenv("PREMA_DIST_COORD"), Node: nodeID,
		JoinTimeout: testTimeout, DrainTimeout: testTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer n.Close()
	r := wire.NewReader(n.Spec())
	procs, objects := r.Int(), r.Int()
	if err := r.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	mc := dist.DefaultMachineConfig()
	mc.Seed = 9
	stats, place, err := conformanceOn(n.NewMachine(mc), procs, objects)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	lo, hi := n.Range()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(nodeShare{Lo: lo, Hi: hi, Stats: stats, Place: place}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := n.Report(buf.Bytes()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// TestDistMultiProcessConformance re-execs the test binary as real node
// processes — separate address spaces, localhost TCP between them — and
// checks the merged outcome against the simulator.
func TestDistMultiProcessConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test in -short mode")
	}
	const nodes, procs, objects = 4, 8, 16
	simStats, simPlace := simConformance(t, procs, objects)

	c, err := dist.Listen(dist.CoordConfig{
		Listen: "127.0.0.1:0", Nodes: nodes, Procs: procs,
		JoinTimeout: testTimeout, DrainTimeout: testTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	var spec wire.Writer
	spec.Int(procs)
	spec.Int(objects)
	var cmds []*exec.Cmd
	for i := 0; i < nodes; i++ {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(),
			"PREMA_DIST_CHILD=1",
			"PREMA_DIST_COORD="+c.Addr(),
			"PREMA_DIST_NODE="+strconv.Itoa(i))
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		cmds = append(cmds, cmd)
		t.Cleanup(func() {
			if cmd.ProcessState == nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		})
	}
	sum, err := c.Run(spec.Buf())
	if err != nil {
		t.Fatal(err)
	}
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("node process %d: %v", i, err)
		}
	}
	var shares []nodeShare
	for node, blob := range sum.Reports {
		var s nodeShare
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&s); err != nil {
			t.Fatalf("node %d report: %v", node, err)
		}
		shares = append(shares, s)
	}
	distStats, distPlace := mergeShares(shares, procs)
	if !reflect.DeepEqual(simStats, distStats) {
		t.Errorf("MOL statistics diverge:\n sim:  %+v\n dist: %+v", simStats, distStats)
	}
	if !reflect.DeepEqual(simPlace, distPlace) {
		t.Errorf("final placement diverges:\n sim:  %v\n dist: %v", simPlace, distPlace)
	}
	if sum.Makespan <= 0 {
		t.Errorf("summary makespan = %v, want > 0", sum.Makespan)
	}
}

// fakeCoord speaks the coordinator protocol far enough to get a single-node
// session to a chosen phase, then misbehaves however the test dictates.
type fakeCoord struct {
	t     *testing.T
	ln    net.Listener
	conn  net.Conn
	frame []byte
}

func newFakeCoord(t *testing.T) *fakeCoord {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return &fakeCoord{t: t, ln: ln}
}

func (f *fakeCoord) addr() string { return f.ln.Addr().String() }

// accept takes the node's connection and reads its Hello.
func (f *fakeCoord) accept() {
	f.t.Helper()
	conn, err := f.ln.Accept()
	if err != nil {
		f.t.Fatal(err)
	}
	f.conn = conn
	f.t.Cleanup(func() { conn.Close() })
	f.read() // Hello
}

func (f *fakeCoord) read() *substrate.Msg {
	f.t.Helper()
	f.conn.SetReadDeadline(time.Now().Add(testTimeout))
	frame, err := wire.ReadFrame(f.conn, 0)
	if err != nil {
		f.t.Fatal(err)
	}
	m, err := wire.DecodeMsg(frame)
	if err != nil {
		f.t.Fatal(err)
	}
	return m
}

func (f *fakeCoord) send(payload any) {
	f.t.Helper()
	frame, _ := wire.EncodeMsg(&substrate.Msg{Src: -1, Dst: -1, Kind: -1, Tag: substrate.TagSystem, Data: payload})
	if _, err := f.conn.Write(frame); err != nil {
		f.t.Fatal(err)
	}
}

// startSingleNode drives one node (hosting both ranks of a 2-processor
// machine) through join + ready + start against the fake coordinator and
// returns the machine's Run result channel. With block set, rank 0 parks in
// Recv forever after one exchange — a "mid-run" machine whose teardown must
// come from the session machinery; without it, both bodies finish on their
// own and the machine proceeds to its drain handshake.
func startSingleNode(t *testing.T, f *fakeCoord, drain time.Duration, block bool) chan error {
	t.Helper()
	joinErr := make(chan error, 1)
	nodeCh := make(chan *dist.Node, 1)
	go func() {
		n, err := dist.Join(dist.NodeConfig{
			Coord: f.addr(), Node: 0,
			JoinTimeout: testTimeout, DrainTimeout: drain,
		})
		if err != nil {
			joinErr <- err
			return
		}
		nodeCh <- n
	}()
	f.accept()
	f.send(&dist.Roster{You: 0, Procs: 2, Nodes: []string{"unused"}})
	var n *dist.Node
	select {
	case n = <-nodeCh:
	case err := <-joinErr:
		t.Fatal(err)
	case <-time.After(testTimeout):
		t.Fatal("join did not complete")
	}
	t.Cleanup(func() { n.Close() })

	m := n.NewMachine(dist.DefaultMachineConfig())
	for p := 0; p < 2; p++ {
		m.Spawn(fmt.Sprintf("p%d", p), func(ep substrate.Endpoint) {
			if ep.ID() == 0 {
				ep.Send(&substrate.Msg{Dst: 1, Tag: substrate.TagApp, Data: 1, Size: 8}, substrate.CatMessaging)
				if block {
					ep.Recv(substrate.CatIdle) // nothing ever arrives
				}
				return
			}
			ep.Recv(substrate.CatIdle)
		})
	}
	runErr := make(chan error, 1)
	go func() { runErr <- m.Run() }()
	f.read() // Ready
	f.send(&dist.Start{})
	return runErr
}

// TestNodeAbortsOnLostCoordinator: a node whose coordinator connection dies
// mid-run must abort with a clear error — processors blocked in Recv are
// killed, Run returns nonzero — rather than hang.
func TestNodeAbortsOnLostCoordinator(t *testing.T) {
	f := newFakeCoord(t)
	runErr := startSingleNode(t, f, testTimeout, true)
	time.Sleep(50 * time.Millisecond) // let the run get going
	f.conn.Close()                    // coordinator "crashes"
	select {
	case err := <-runErr:
		if err == nil {
			t.Fatal("Run returned nil after losing the coordinator")
		}
		if want := "lost coordinator connection"; !strings.Contains(err.Error(), want) {
			t.Fatalf("Run error %q does not mention %q", err, want)
		}
	case <-time.After(testTimeout):
		t.Fatal("Run hung after losing the coordinator")
	}
}

// TestNodeDrainDeadline: a coordinator that accepts Done but never releases
// Fin must not wedge the node — the drain deadline expires and Run errors.
func TestNodeDrainDeadline(t *testing.T) {
	f := newFakeCoord(t)
	runErr := startSingleNode(t, f, 500*time.Millisecond, false)
	f.read() // Done — then withhold Fin
	select {
	case err := <-runErr:
		if err == nil {
			t.Fatal("Run returned nil despite the withheld Fin")
		}
		if want := "drain deadline"; !strings.Contains(err.Error(), want) {
			t.Fatalf("Run error %q does not mention %q", err, want)
		}
	case <-time.After(testTimeout):
		t.Fatal("Run hung past the drain deadline")
	}
}
