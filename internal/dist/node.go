package dist

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"prema/internal/wire"
)

// Default session deadlines. Join covers everything up to the start
// barrier (dial retries, roster, mesh); drain covers everything after the
// last local processor finishes (Done → Fin → Report).
const (
	DefaultJoinTimeout  = 30 * time.Second
	DefaultDrainTimeout = 30 * time.Second
)

// NodeConfig parameterizes one node process's session with a coordinator.
type NodeConfig struct {
	// Coord is the coordinator's control address (host:port). Join dials it
	// with retries until JoinTimeout, so nodes may start before the
	// coordinator is listening.
	Coord string
	// Listen is the data-plane listen address for peer connections
	// (default 127.0.0.1:0 — any free localhost port). On a real network
	// this must name an interface the other nodes can reach.
	Listen string
	// Node is the node id to claim, or -1 for coordinator-assigned.
	Node int
	// JoinTimeout bounds the join handshake (0 = DefaultJoinTimeout).
	JoinTimeout time.Duration
	// DrainTimeout bounds the shutdown handshake (0 = DefaultDrainTimeout).
	DrainTimeout time.Duration
	// MaxFrame is the largest frame accepted from the wire
	// (0 = wire.DefaultMaxFrame).
	MaxFrame int
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.Listen == "" {
		c.Listen = "127.0.0.1:0"
	}
	if c.JoinTimeout <= 0 {
		c.JoinTimeout = DefaultJoinTimeout
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = wire.DefaultMaxFrame
	}
	return c
}

// peer is one established data link: the connection plus the buffered
// reader that already consumed the link handshake.
type peer struct {
	c net.Conn
	r *bufio.Reader
}

// Node is one joined member of a distributed machine: the coordinator
// control link, the full peer mesh, and the roster (processor→node map)
// every member agreed on. Create one with Join, build a Machine with
// NewMachine, send the driver's result blob with Report, then Close.
type Node struct {
	cfg      NodeConfig
	id       int
	nodes    int
	procs    int
	spec     []byte
	coord    *ctl
	peers    []*peer // by node id; nil for self
	procNode []int   // global rank → hosting node

	closeOnce sync.Once
}

// RangeOf returns the contiguous rank range [lo, hi) that a node hosts
// under the canonical block assignment: node i of n gets ranks
// [i*procs/n, (i+1)*procs/n). Coordinator and nodes compute it from the
// same roster, so the processor→node map is identical everywhere.
func RangeOf(procs, nodes, node int) (lo, hi int) {
	return node * procs / nodes, (node + 1) * procs / nodes
}

// Join dials the coordinator, performs the hello → roster handshake, and
// builds the full peer mesh (dialing lower-numbered nodes, accepting from
// higher-numbered ones). On return every member holds an identical roster
// and a connection to every other member.
func Join(cfg NodeConfig) (*Node, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("dist: data listener on %s: %w", cfg.Listen, err)
	}
	deadline := time.Now().Add(cfg.JoinTimeout)

	// The coordinator may not be listening yet (attach mode starts the
	// node daemons first); retry until the join deadline.
	var conn net.Conn
	for {
		conn, err = net.DialTimeout("tcp", cfg.Coord, time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			ln.Close()
			return nil, fmt.Errorf("dist: dialing coordinator %s: %w", cfg.Coord, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	coord := newCtl(conn, cfg.MaxFrame)
	fail := func(err error) (*Node, error) {
		conn.Close()
		ln.Close()
		return nil, err
	}
	if err := coord.send(&Hello{Node: int32(cfg.Node), Addr: ln.Addr().String()}, cfg.JoinTimeout); err != nil {
		return fail(fmt.Errorf("dist: hello: %w", err))
	}
	ro, err := recvAs[*Roster](coord, cfg.JoinTimeout, "roster")
	if err != nil {
		return fail(err)
	}
	nodes := len(ro.Nodes)
	if nodes < 1 || int(ro.You) < 0 || int(ro.You) >= nodes || ro.Procs < 0 {
		return fail(fmt.Errorf("dist: implausible roster: you=%d nodes=%d procs=%d", ro.You, nodes, ro.Procs))
	}
	n := &Node{
		cfg:   cfg,
		id:    int(ro.You),
		nodes: nodes,
		procs: int(ro.Procs),
		spec:  ro.Spec,
		coord: coord,
		peers: make([]*peer, nodes),
	}
	n.procNode = make([]int, n.procs)
	for node := 0; node < nodes; node++ {
		lo, hi := RangeOf(n.procs, nodes, node)
		for p := lo; p < hi; p++ {
			n.procNode[p] = node
		}
	}

	meshFail := func(err error) (*Node, error) {
		n.closeAll()
		ln.Close()
		return nil, err
	}
	// Dial every lower-numbered node, announcing who we are.
	for j := 0; j < n.id; j++ {
		var pc net.Conn
		for {
			pc, err = net.DialTimeout("tcp", ro.Nodes[j], time.Second)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				return meshFail(fmt.Errorf("dist: node %d dialing peer %d at %s: %w", n.id, j, ro.Nodes[j], err))
			}
			time.Sleep(50 * time.Millisecond)
		}
		pc.SetWriteDeadline(deadline)
		if _, err := pc.Write(encodeCtl(&PeerHello{Node: int32(n.id)})); err != nil {
			pc.Close()
			return meshFail(fmt.Errorf("dist: node %d peer hello to %d: %w", n.id, j, err))
		}
		pc.SetWriteDeadline(time.Time{})
		n.peers[j] = &peer{c: pc, r: bufio.NewReader(pc)}
	}
	// Accept every higher-numbered node, which dials and identifies itself.
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	for need := nodes - 1 - n.id; need > 0; {
		pc, err := ln.Accept()
		if err != nil {
			return meshFail(fmt.Errorf("dist: node %d waiting for %d peer connections: %w", n.id, need, err))
		}
		r := bufio.NewReader(pc)
		pc.SetReadDeadline(deadline)
		frame, err := wire.ReadFrame(r, cfg.MaxFrame)
		if err != nil {
			pc.Close() // not a member; keep accepting
			continue
		}
		v, err := decodeCtl(frame)
		if err != nil {
			pc.Close()
			continue
		}
		ph, ok := v.(*PeerHello)
		if !ok || int(ph.Node) <= n.id || int(ph.Node) >= nodes || n.peers[ph.Node] != nil {
			pc.Close()
			continue
		}
		pc.SetReadDeadline(time.Time{})
		n.peers[ph.Node] = &peer{c: pc, r: r}
		need--
	}
	ln.Close()
	return n, nil
}

// NodeID returns this node's id in the roster.
func (n *Node) NodeID() int { return n.id }

// Nodes returns the machine's node count.
func (n *Node) Nodes() int { return n.nodes }

// Procs returns the machine's total processor count.
func (n *Node) Procs() int { return n.procs }

// Range returns the contiguous rank range [lo, hi) this node hosts.
func (n *Node) Range() (lo, hi int) { return RangeOf(n.procs, n.nodes, n.id) }

// Spec returns the coordinator's opaque scenario payload.
func (n *Node) Spec() []byte { return n.spec }

// Report sends the driver's result blob to the coordinator — the session
// goodbye. Call it after the machine's Run returned without error.
func (n *Node) Report(blob []byte) error {
	if err := n.coord.send(&Report{Node: int32(n.id), Blob: blob}, n.cfg.DrainTimeout); err != nil {
		return fmt.Errorf("dist: node %d report: %w", n.id, err)
	}
	return nil
}

// closePeers tears down the data mesh (idempotent per conn).
func (n *Node) closePeers() {
	for _, p := range n.peers {
		if p != nil {
			p.c.Close()
		}
	}
}

// closeAll tears down every connection, peers and coordinator alike.
func (n *Node) closeAll() {
	n.closeOnce.Do(func() {
		n.closePeers()
		n.coord.c.Close()
	})
}

// Close releases the node's connections.
func (n *Node) Close() error {
	n.closeAll()
	return nil
}
