package dist

import (
	"math/rand"
	"time"

	"prema/internal/substrate"
	"prema/internal/wire"
)

// Endpoint is one hosted processor: a goroutine plus its delivery channel,
// inbox, ledger, and random source — rtm's endpoint with a remote path in
// Send. All substrate methods must be called from the processor's own body
// goroutine.
type Endpoint struct {
	m    *Machine
	id   int // global rank
	name string
	body func(substrate.Endpoint)

	// in is the merged delivery feed (written by local senders, latency
	// forwarders, and peer read loops); inbox is the drained,
	// application-visible queue, owned exclusively by this goroutine.
	in    chan *substrate.Msg
	inbox []*substrate.Msg

	// lastArrival[dst] enforces per-(src,dst) FIFO under the injected local
	// latency model; only local dst slots are ever used.
	lastArrival []substrate.Time

	acct       substrate.Account
	rng        *rand.Rand
	finishedAt substrate.Time
}

var _ substrate.Endpoint = (*Endpoint)(nil)

// ID implements substrate.Endpoint: the global rank.
func (e *Endpoint) ID() int { return e.id }

// Name implements substrate.Endpoint.
func (e *Endpoint) Name() string { return e.name }

// NumPeers implements substrate.Endpoint: the machine-wide count.
func (e *Endpoint) NumPeers() int { return e.m.node.procs }

// Now implements substrate.Clock.
func (e *Endpoint) Now() substrate.Time { return e.m.now() }

// Rand returns this endpoint's private seeded random source.
func (e *Endpoint) Rand() *rand.Rand { return e.rng }

// Account implements substrate.Endpoint; read it after Run returns.
func (e *Endpoint) Account() *substrate.Account { return &e.acct }

// Charge implements substrate.Endpoint.
func (e *Endpoint) Charge(cat substrate.Category, d substrate.Time) { e.acct[cat] += d }

// killed panics errKilled; the body wrapper in Run recovers it.
func (e *Endpoint) killed() { panic(errKilled) }

// Advance burns d of CPU time (scaled wall-clock) and attributes the
// measured elapsed time to cat.
func (e *Endpoint) Advance(d substrate.Time, cat substrate.Category) {
	if d <= 0 {
		return
	}
	t0 := e.m.now()
	e.m.sleepUntil(t0+d, e.killed)
	e.acct[cat] += e.m.now() - t0
}

// Send transmits msg, stamping Src and SentAt and charging per-message
// send CPU. A local destination goes through rtm's injected-latency
// machinery; a remote one is encoded as a wire frame and queued on the
// destination node's connection — encoding panics on an unregistered
// payload type, surfacing the programming error exactly as wire.Wrap
// does. The caller must not touch msg (or ownership-transferred payload
// objects) afterwards.
func (e *Endpoint) Send(msg *substrate.Msg, cat substrate.Category) {
	msg.Src = e.id
	msg.SentAt = e.m.now()
	if o := e.m.cfg.SendCPU; o > 0 {
		e.Advance(o, cat)
	}
	m := e.m
	if dstNode := m.node.procNode[msg.Dst]; dstNode != m.node.id {
		frame, plen := wire.EncodeMsg(msg)
		m.frames.Add(1)
		m.wireBytes.Add(int64(len(frame)))
		if plen > msg.Size {
			m.drift.Add(1)
		}
		select {
		case m.outs[dstNode] <- frame:
		case <-m.stop:
			e.killed()
		}
		return
	}
	if m.links == nil {
		msg.ArrivedAt = m.now()
		e.deliver(m.eps[msg.Dst].in, msg)
		return
	}
	arrival := m.now() + m.cfg.Latency + substrate.Time(msg.Size)*m.cfg.PerByte
	if last := e.lastArrival[msg.Dst]; arrival <= last {
		arrival = last + 1
	}
	e.lastArrival[msg.Dst] = arrival
	msg.ArrivedAt = arrival // the forwarder holds the message until then
	e.deliver(m.links[e.id-m.lo][msg.Dst-m.lo], msg)
}

// deliver pushes onto a delivery channel, aborting if the machine stops
// while the channel is full (back-pressure during teardown).
func (e *Endpoint) deliver(ch chan *substrate.Msg, m *substrate.Msg) {
	select {
	case ch <- m:
	case <-e.m.stop:
		e.killed()
	}
}

// drain moves everything currently buffered in the delivery feed into the
// inbox without blocking.
func (e *Endpoint) drain() {
	for {
		select {
		case m := <-e.in:
			e.inbox = append(e.inbox, m)
		default:
			return
		}
	}
}

// InboxLen implements substrate.Endpoint.
func (e *Endpoint) InboxLen() int {
	e.drain()
	return len(e.inbox)
}

// HasMsg implements substrate.Endpoint.
func (e *Endpoint) HasMsg(tag int) bool {
	e.drain()
	for _, m := range e.inbox {
		if m.Tag == tag {
			return true
		}
	}
	return false
}

// TryRecv implements substrate.Endpoint.
func (e *Endpoint) TryRecv(cat substrate.Category) *substrate.Msg {
	e.drain()
	if len(e.inbox) == 0 {
		return nil
	}
	m := e.inbox[0]
	e.inbox = e.inbox[1:]
	if len(e.inbox) == 0 {
		e.inbox = nil
	}
	if o := e.m.cfg.RecvCPU; o > 0 {
		e.Advance(o, cat)
	}
	return m
}

// TryRecvTag implements substrate.Endpoint.
func (e *Endpoint) TryRecvTag(tag int, cat substrate.Category) *substrate.Msg {
	e.drain()
	for i, m := range e.inbox {
		if m.Tag == tag {
			e.inbox = append(e.inbox[:i], e.inbox[i+1:]...)
			if o := e.m.cfg.RecvCPU; o > 0 {
				e.Advance(o, cat)
			}
			return m
		}
	}
	return nil
}

// Recv implements substrate.Endpoint.
func (e *Endpoint) Recv(waitCat substrate.Category) *substrate.Msg {
	e.WaitMsg(waitCat)
	return e.TryRecv(substrate.CatMessaging)
}

// WaitMsg blocks until at least one message is queued, attributing the
// measured wait to cat.
func (e *Endpoint) WaitMsg(cat substrate.Category) {
	if len(e.inbox) > 0 {
		return
	}
	e.drain()
	if len(e.inbox) > 0 {
		return
	}
	t0 := e.m.now()
	select {
	case m := <-e.in:
		e.inbox = append(e.inbox, m)
	case <-e.m.stop:
		e.killed()
	}
	e.acct[cat] += e.m.now() - t0
}

// minWait floors timed waits so that aggressively scaled machines still
// yield the host CPU instead of degenerating into a hot poll loop.
const minWait = time.Microsecond

// WaitMsgFor blocks until a message is queued or d elapses, attributing
// the measured wait to cat. It reports whether a message is available.
func (e *Endpoint) WaitMsgFor(d substrate.Time, cat substrate.Category) bool {
	if len(e.inbox) > 0 {
		return true
	}
	e.drain()
	if len(e.inbox) > 0 {
		return true
	}
	wall := e.m.wall(d)
	if wall < minWait {
		wall = minWait
	}
	t0 := e.m.now()
	t := time.NewTimer(wall)
	defer t.Stop()
	select {
	case m := <-e.in:
		e.inbox = append(e.inbox, m)
	case <-t.C:
	case <-e.m.stop:
		e.killed()
	}
	e.acct[cat] += e.m.now() - t0
	return len(e.inbox) > 0
}
