// Package dist is the distributed machine: a substrate backend whose
// processors live in separate OS processes connected by length-prefixed
// wire.Frames over TCP. One coordinator process (Listen + Coordinator.Run)
// referees the session; each node process (Join) hosts a contiguous rank
// range, builds a full TCP mesh to its peers, and runs the same driver the
// in-process backends run — SPMD, like the MPI applications PREMA hosts.
//
// Intra-node messages use rtm's machinery verbatim: per-(src,dst) latency
// links with FIFO bumping under the injected cost model. Inter-node
// messages are encoded with wire.EncodeMsg, carried over a per-peer TCP
// connection (one write pump batching frames, one read loop feeding
// endpoint inboxes), and stamped with the receiver's clock on arrival —
// so remote latency is the real network's, scaled by TimeScale, not the
// injected model's. Per-(src,dst) FIFO holds end to end: sender program
// order → per-peer queue → TCP byte order → single reader.
//
// Wall-clock accounting mirrors rtm's: every node stamps its epoch when
// the coordinator's Start release arrives, so cross-node clock skew is
// bounded by the broadcast spread (microseconds on localhost). Exact
// timings are not comparable across backends; protocol invariants and
// message/migration counts are — the cross-backend conformance test is
// the guard.
package dist

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"prema/internal/substrate"
	"prema/internal/wire"
)

var errKilled = errors.New("dist: processor killed")

// MachineConfig parameterizes a node's Machine. The cost-model fields have
// rtm semantics and apply to intra-node messages; remote messages pay the
// real network instead.
type MachineConfig struct {
	// TimeScale is wall-clock seconds burned per virtual second (rtm
	// semantics; default 1e-3).
	TimeScale float64
	// Latency is the injected end-to-end latency for a zero-byte local
	// message, in virtual time.
	Latency substrate.Time
	// PerByte is the injected transmission time per payload byte (local).
	PerByte substrate.Time
	// SendCPU and RecvCPU are per-message CPU occupancies, charged on every
	// message, local or remote.
	SendCPU, RecvCPU substrate.Time
	// Spin selects busy-waiting instead of sleeping for Advance and the
	// local latency forwarders.
	Spin bool
	// Seed seeds the per-endpoint random sources (Seed+rank each, the
	// cross-backend convention).
	Seed int64
	// ChanCap is the delivery/outbound channel capacity (default 4096).
	ChanCap int
}

// DefaultMachineConfig mirrors rtm.DefaultConfig: the simulator's Fast
// Ethernet model at a 1e-3 time scale.
func DefaultMachineConfig() MachineConfig {
	return MachineConfig{
		TimeScale: 1e-3,
		Latency:   60 * substrate.Microsecond,
		PerByte:   80 * substrate.Nanosecond,
		SendCPU:   15 * substrate.Microsecond,
		RecvCPU:   15 * substrate.Microsecond,
	}
}

// Machine is one node's share of a distributed machine. The driver must
// Spawn a body for every global rank, in rank order, exactly as on the
// in-process backends; only the ranks this node hosts get goroutines and
// endpoints. Run participates in the session barriers (Ready → Start →
// Done → Fin), so it starts and finishes in lockstep with every other
// node, and returns an error — never hangs — if the coordinator or a peer
// dies mid-run.
type Machine struct {
	cfg    MachineConfig
	node   *Node
	lo, hi int // hosted rank range

	eps     []*Endpoint              // by global rank; nil outside [lo, hi)
	links   [][]chan *substrate.Msg  // [src-lo][dst-lo], local injected latency
	outs    []chan []byte            // by peer node id; nil for self
	spawned int
	ran     bool

	start    time.Time
	started  chan struct{} // closed on Start receipt
	finCh    chan *Fin
	stop     chan struct{}
	stopped  sync.Once
	draining atomic.Bool
	makespan substrate.Time

	frames, wireBytes, drift atomic.Int64

	mu  sync.Mutex
	err error
}

var (
	_ substrate.Machine = (*Machine)(nil)
	_ substrate.Router  = (*Machine)(nil)
)

// NewMachine builds this node's Machine from its roster.
func (n *Node) NewMachine(cfg MachineConfig) *Machine {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = DefaultMachineConfig().TimeScale
	}
	if cfg.ChanCap <= 0 {
		cfg.ChanCap = 4096
	}
	lo, hi := n.Range()
	return &Machine{
		cfg:     cfg,
		node:    n,
		lo:      lo,
		hi:      hi,
		eps:     make([]*Endpoint, n.procs),
		outs:    make([]chan []byte, n.nodes),
		started: make(chan struct{}),
		finCh:   make(chan *Fin, 1),
		stop:    make(chan struct{}),
	}
}

// Spawn registers the body for the next global rank (rank = spawn order,
// machine-wide). Bodies for ranks hosted elsewhere are dropped; the call
// exists so the driver runs identically on every backend.
func (m *Machine) Spawn(name string, body func(substrate.Endpoint)) {
	if m.ran {
		panic("dist: Spawn after Run")
	}
	id := m.spawned
	m.spawned++
	if id < m.lo || id >= m.hi {
		return
	}
	m.eps[id] = &Endpoint{
		m:    m,
		id:   id,
		name: name,
		body: body,
		in:   make(chan *substrate.Msg, m.cfg.ChanCap),
		rng:  rand.New(rand.NewSource(m.cfg.Seed + int64(id))),
	}
}

// NumProcs implements substrate.Machine: the machine-wide processor count.
func (m *Machine) NumProcs() int { return m.spawned }

// Account implements substrate.Machine. Ledgers exist for hosted ranks
// only; remote ranks read as zero (the coordinator's Summary merges the
// real ones). Read it after Run returns.
func (m *Machine) Account(i int) *substrate.Account {
	if e := m.eps[i]; e != nil {
		return &e.acct
	}
	return &zeroAccount
}

var zeroAccount substrate.Account

// Now returns virtual time elapsed since the Start release.
func (m *Machine) Now() substrate.Time { return m.now() }

// Makespan returns the machine-wide makespan agreed in the coordinator's
// Fin release — identical on every node.
func (m *Machine) Makespan() substrate.Time { return m.makespan }

// AddrOf implements substrate.Router.
func (m *Machine) AddrOf(proc int) substrate.Addr {
	return substrate.Addr{Node: m.node.procNode[proc], Proc: proc}
}

// NumNodes implements substrate.Router.
func (m *Machine) NumNodes() int { return m.node.nodes }

// Range returns the hosted rank range [lo, hi).
func (m *Machine) Range() (lo, hi int) { return m.lo, m.hi }

// Frames returns the number of frames sent to remote nodes (it satisfies
// bench's wireStats probe, so dist runs report wire telemetry).
func (m *Machine) Frames() uint64 { return uint64(m.frames.Load()) }

// WireBytes returns the total bytes of remote frames sent.
func (m *Machine) WireBytes() int64 { return m.wireBytes.Load() }

// SizeDrift returns how many remote frames carried an encoded payload
// larger than the modeled Msg.Size.
func (m *Machine) SizeDrift() uint64 { return uint64(m.drift.Load()) }

// Stop tears the local processors down early. The session handshake still
// completes (Done/Fin), so the other nodes finish cleanly too.
func (m *Machine) Stop() { m.stopped.Do(func() { close(m.stop) }) }

func (m *Machine) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.mu.Unlock()
	m.stopped.Do(func() { close(m.stop) })
	// Abort the session: closing the connections unblocks every peer and
	// the coordinator, so the failure propagates instead of hanging.
	m.node.closeAll()
}

func (m *Machine) runErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

func (m *Machine) stopping() bool {
	select {
	case <-m.stop:
		return true
	default:
		return false
	}
}

// Run executes this node's share of the machine: it reports Ready, waits
// for the Start release, runs the hosted processor bodies with the
// transport pumping underneath, then drives the drain handshake. The
// returned error is the first local failure — a processor panic, a lost
// coordinator or peer connection, or a missed session deadline.
func (m *Machine) Run() error {
	if m.ran {
		panic("dist: Run called twice")
	}
	m.ran = true
	n := m.node
	if m.spawned != n.procs {
		return fmt.Errorf("dist: driver spawned %d processors, roster expects %d", m.spawned, n.procs)
	}
	for p := m.lo; p < m.hi; p++ {
		if m.eps[p] == nil {
			return fmt.Errorf("dist: hosted rank %d was never spawned", p)
		}
		m.eps[p].lastArrival = make([]substrate.Time, n.procs)
	}

	go m.ctrlLoop()
	if err := n.coord.send(&Ready{Node: int32(n.id)}, n.cfg.JoinTimeout); err != nil {
		m.fail(fmt.Errorf("dist: node %d ready: %w", n.id, err))
		return m.runErr()
	}
	select {
	case <-m.started:
	case <-m.stop:
		return m.runErr()
	case <-time.After(n.cfg.JoinTimeout):
		m.fail(fmt.Errorf("dist: node %d: no Start release within %v", n.id, n.cfg.JoinTimeout))
		return m.runErr()
	}

	// Transport: one write pump and one read loop per peer connection.
	var tr sync.WaitGroup
	for peerID, p := range n.peers {
		if p == nil {
			continue
		}
		out := make(chan []byte, m.cfg.ChanCap)
		m.outs[peerID] = out
		tr.Add(2)
		go m.writeLoop(p, out, &tr)
		go m.readLoop(peerID, p, &tr)
	}

	// Local latency links, exactly as in rtm, over the hosted block.
	var fwd sync.WaitGroup
	if m.cfg.Latency > 0 || m.cfg.PerByte > 0 {
		local := m.hi - m.lo
		m.links = make([][]chan *substrate.Msg, local)
		for src := range m.links {
			m.links[src] = make([]chan *substrate.Msg, local)
			for dst := range m.links[src] {
				ch := make(chan *substrate.Msg, m.cfg.ChanCap)
				m.links[src][dst] = ch
				fwd.Add(1)
				go m.forward(ch, m.eps[m.lo+dst], &fwd)
			}
		}
	}

	var wg sync.WaitGroup
	for p := m.lo; p < m.hi; p++ {
		e := m.eps[p]
		wg.Add(1)
		go func(e *Endpoint) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil && r != errKilled {
					m.fail(fmt.Errorf("dist: processor %q panicked: %v\n%s", e.name, r, debug.Stack()))
				}
				e.finishedAt = m.now()
			}()
			e.body(e)
		}(e)
	}
	wg.Wait()

	// Every hosted processor has returned (each already drained its own
	// protocol-level quiesce), so inbound data is dead-letter from here:
	// discard instead of queueing, which keeps the read loops consuming —
	// no back-pressure deadlock while peers finish their own drains.
	m.draining.Store(true)

	done := &Done{Node: int32(n.id), Accounts: make([]substrate.Account, m.hi-m.lo)}
	for p := m.lo; p < m.hi; p++ {
		e := m.eps[p]
		if e.finishedAt > done.FinishedAt {
			done.FinishedAt = e.finishedAt
		}
		done.Accounts[p-m.lo] = e.acct
	}
	if err := n.coord.send(done, n.cfg.DrainTimeout); err != nil {
		m.fail(fmt.Errorf("dist: node %d done: %w", n.id, err))
		return m.runErr()
	}
	select {
	case f := <-m.finCh:
		m.makespan = f.Makespan
	case <-m.stop:
	case <-time.After(n.cfg.DrainTimeout):
		m.fail(fmt.Errorf("dist: node %d: no Fin from coordinator within %v (drain deadline)", n.id, n.cfg.DrainTimeout))
	}
	m.stopped.Do(func() { close(m.stop) })
	n.closePeers() // unblock the read loops
	tr.Wait()
	fwd.Wait()
	return m.runErr()
}

// ctrlLoop reads the coordinator connection for the machine's lifetime:
// the Start release, then the Fin drain release. Losing the connection
// mid-run is a session abort, not a hang.
func (m *Machine) ctrlLoop() {
	n := m.node
	startSeen := false
	for {
		v, err := n.coord.recv(0)
		if err != nil {
			if !m.stopping() {
				m.fail(fmt.Errorf("dist: node %d lost coordinator connection: %v", n.id, err))
			}
			return
		}
		switch msg := v.(type) {
		case *Start:
			if startSeen {
				m.fail(fmt.Errorf("dist: node %d: duplicate Start release", n.id))
				return
			}
			startSeen = true
			m.start = time.Now() // the machine epoch: stamped at release receipt
			close(m.started)
		case *Fin:
			m.finCh <- msg
			return
		default:
			m.fail(fmt.Errorf("dist: node %d: unexpected control message %T", n.id, v))
			return
		}
	}
}

// writeLoop is the per-peer send pump: it batches whatever is queued into
// one buffered write, then flushes — coalescing bursts into few syscalls
// while keeping latency at one channel handoff when traffic is sparse.
func (m *Machine) writeLoop(p *peer, out chan []byte, tr *sync.WaitGroup) {
	defer tr.Done()
	bw := bufio.NewWriter(p.c)
	for {
		select {
		case frame := <-out:
			bw.Write(frame)
			for more := true; more; {
				select {
				case f := <-out:
					bw.Write(f)
				default:
					more = false
				}
			}
			if err := bw.Flush(); err != nil {
				if !m.stopping() {
					m.fail(fmt.Errorf("dist: node %d: write to peer: %w", m.node.id, err))
				}
				return
			}
		case <-m.stop:
			return
		}
	}
}

// readLoop is the per-peer receive pump: frames are length-checked before
// allocation (ReadFrame), decoded strictly, validated to target a hosted
// rank, stamped with the local clock, and fed to the destination inbox.
func (m *Machine) readLoop(peerID int, p *peer, tr *sync.WaitGroup) {
	defer tr.Done()
	for {
		frame, err := wire.ReadFrame(p.r, m.node.cfg.MaxFrame)
		if err != nil {
			// A peer hanging up after this node started draining is normal
			// teardown: nodes that get their Fin first close their mesh
			// connections while slower ones are still waiting for theirs.
			if !m.stopping() && !m.draining.Load() {
				m.fail(fmt.Errorf("dist: node %d: link from node %d: %w", m.node.id, peerID, err))
			}
			return
		}
		msg, err := wire.DecodeMsg(frame)
		if err != nil {
			m.fail(fmt.Errorf("dist: node %d: corrupt frame from node %d: %w", m.node.id, peerID, err))
			return
		}
		if msg.Dst < m.lo || msg.Dst >= m.hi {
			m.fail(fmt.Errorf("dist: node %d: frame from node %d misrouted to rank %d (hosting [%d,%d))", m.node.id, peerID, msg.Dst, m.lo, m.hi))
			return
		}
		msg.ArrivedAt = m.now()
		if m.draining.Load() {
			continue // all local processors finished; dead-letter
		}
		select {
		case m.eps[msg.Dst].in <- msg:
		case <-m.stop:
			return
		}
	}
}

// forward is rtm's per-(src,dst) local latency pipe.
func (m *Machine) forward(ch chan *substrate.Msg, dst *Endpoint, fwd *sync.WaitGroup) {
	defer fwd.Done()
	for {
		select {
		case msg := <-ch:
			m.sleepUntil(msg.ArrivedAt, nil)
			if now := m.now(); now > msg.ArrivedAt {
				msg.ArrivedAt = now
			}
			select {
			case dst.in <- msg:
			case <-m.stop:
				return
			}
		case <-m.stop:
			return
		}
	}
}

// now returns virtual time elapsed since the Start release (0 before it).
func (m *Machine) now() substrate.Time {
	if m.start.IsZero() {
		return 0
	}
	return substrate.Time(float64(time.Since(m.start)) / m.cfg.TimeScale)
}

// wall converts a virtual duration to a wall-clock duration.
func (m *Machine) wall(v substrate.Time) time.Duration {
	return time.Duration(float64(v) * m.cfg.TimeScale)
}

// spinThreshold mirrors rtm: the wall-clock horizon below which sleepUntil
// spins instead of sleeping, keeping short scaled waits honest against OS
// timer overshoot.
const spinThreshold = 200 * time.Microsecond

// sleepUntil blocks until virtual time reaches target (rtm semantics).
func (m *Machine) sleepUntil(target substrate.Time, killed func()) {
	for {
		now := m.now()
		if now >= target {
			return
		}
		remaining := m.wall(target - now)
		if m.cfg.Spin || remaining <= spinThreshold {
			runtime.Gosched()
			select {
			case <-m.stop:
				if killed != nil {
					killed()
				}
				return
			default:
			}
			continue
		}
		t := time.NewTimer(remaining - spinThreshold)
		select {
		case <-t.C:
		case <-m.stop:
			t.Stop()
			if killed != nil {
				killed()
			}
			return
		}
	}
}
