package dist

import (
	"fmt"
	"net"
	"time"

	"prema/internal/substrate"
	"prema/internal/wire"
)

// CoordConfig parameterizes a session coordinator.
type CoordConfig struct {
	// Listen is the control-plane listen address (host:port; port 0 picks a
	// free one — read it back with Addr before starting nodes).
	Listen string
	// Nodes is the number of node processes that must join.
	Nodes int
	// Procs is the total processor count, split across nodes by RangeOf.
	Procs int
	// JoinTimeout bounds the join phase (0 = DefaultJoinTimeout).
	JoinTimeout time.Duration
	// DrainTimeout bounds the shutdown handshake once the first node
	// finishes (0 = DefaultDrainTimeout).
	DrainTimeout time.Duration
	// MaxFrame is the largest frame accepted from the wire
	// (0 = wire.DefaultMaxFrame).
	MaxFrame int
}

// Coordinator owns a session's control plane: it collects node joins,
// broadcasts the roster and the start release, then referees the drain.
// It hosts no processors itself.
type Coordinator struct {
	cfg CoordConfig
	ln  net.Listener
}

// Summary is what a completed session yields on the coordinator side.
type Summary struct {
	// Procs is the machine-wide processor count.
	Procs int
	// Makespan is the latest processor finish time across all nodes.
	Makespan substrate.Time
	// Accounts holds every processor's final ledger, indexed by rank.
	Accounts []substrate.Account
	// Reports holds each node's driver result blob, indexed by node id.
	Reports [][]byte
}

// Listen opens the coordinator's control listener. Nodes may be started
// before or after; they retry dialing until their join deadline.
func Listen(cfg CoordConfig) (*Coordinator, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("dist: coordinator needs at least 1 node, got %d", cfg.Nodes)
	}
	if cfg.Procs < cfg.Nodes {
		return nil, fmt.Errorf("dist: %d processors cannot cover %d nodes", cfg.Procs, cfg.Nodes)
	}
	if cfg.JoinTimeout <= 0 {
		cfg.JoinTimeout = DefaultJoinTimeout
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = wire.DefaultMaxFrame
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("dist: coordinator listener on %s: %w", cfg.Listen, err)
	}
	return &Coordinator{cfg: cfg, ln: ln}, nil
}

// Addr returns the bound control address (useful with port 0).
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close releases the control listener (Run closes it itself).
func (c *Coordinator) Close() error { return c.ln.Close() }

// Run drives one full session: join → roster → ready barrier → start →
// done collection → fin broadcast → report collection. spec is the opaque
// scenario payload handed verbatim to every node. Any node missing a
// phase deadline aborts the whole session with an error; closing the
// control connections then makes the surviving node processes exit
// nonzero rather than hang.
func (c *Coordinator) Run(spec []byte) (*Summary, error) {
	defer c.ln.Close()
	cfg := c.cfg
	links := make([]*ctl, cfg.Nodes)   // by assigned node id
	addrs := make([]string, cfg.Nodes) // data address per node id
	closeAll := func() {
		for _, l := range links {
			if l != nil {
				l.c.Close()
			}
		}
	}
	fail := func(err error) (*Summary, error) {
		closeAll()
		return nil, err
	}

	// Join: accept until every slot is claimed. Explicit claims win their
	// slot immediately; anonymous joiners (Hello.Node < 0) fill the free
	// slots in arrival order afterwards.
	type joiner struct {
		l    *ctl
		addr string
	}
	var anon []joiner
	failJoin := func(err error) (*Summary, error) {
		for _, j := range anon {
			j.l.c.Close()
		}
		return fail(err)
	}
	joined := 0
	if tl, ok := c.ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Now().Add(cfg.JoinTimeout))
	}
	for joined < cfg.Nodes {
		conn, err := c.ln.Accept()
		if err != nil {
			return failJoin(fmt.Errorf("dist: %d of %d nodes joined: %w", joined, cfg.Nodes, err))
		}
		l := newCtl(conn, cfg.MaxFrame)
		h, err := recvAs[*Hello](l, cfg.JoinTimeout, "hello")
		if err != nil {
			conn.Close() // not a member (port scan, stray connect); keep accepting
			continue
		}
		switch id := int(h.Node); {
		case id < 0:
			anon = append(anon, joiner{l, h.Addr})
			joined++
		case id >= cfg.Nodes:
			conn.Close()
			return failJoin(fmt.Errorf("dist: node claimed id %d, roster has %d slots", id, cfg.Nodes))
		case links[id] != nil:
			conn.Close()
			return failJoin(fmt.Errorf("dist: node id %d claimed twice", id))
		default:
			links[id] = l
			addrs[id] = h.Addr
			joined++
		}
	}
	for id := range links {
		if links[id] == nil {
			j := anon[0]
			anon = anon[1:]
			links[id] = j.l
			addrs[id] = j.addr
		}
	}

	// Roster: every node learns its id, the machine shape, and the spec.
	for id, l := range links {
		ro := &Roster{You: int32(id), Procs: int32(cfg.Procs), Nodes: addrs, Spec: spec}
		if err := l.send(ro, cfg.JoinTimeout); err != nil {
			return fail(fmt.Errorf("dist: roster to node %d: %w", id, err))
		}
	}

	// Ready barrier: every node has built its mesh and spawned processors.
	for id, l := range links {
		r, err := recvAs[*Ready](l, cfg.JoinTimeout, fmt.Sprintf("ready from node %d", id))
		if err != nil {
			return fail(err)
		}
		if int(r.Node) != id {
			return fail(fmt.Errorf("dist: node %d sent Ready claiming id %d", id, r.Node))
		}
	}

	// Start release: nodes stamp their wall-clock epoch on receipt, so the
	// machine-wide epoch skew is bounded by this broadcast's spread.
	for id, l := range links {
		if err := l.send(&Start{}, cfg.JoinTimeout); err != nil {
			return fail(fmt.Errorf("dist: start to node %d: %w", id, err))
		}
	}

	// Done collection: no deadline until the first node finishes (the run
	// itself is unbounded), then the drain timeout arms for the stragglers —
	// a finished machine must not hang on one wedged node.
	type doneRes struct {
		id  int
		d   *Done
		err error
	}
	doneCh := make(chan doneRes, cfg.Nodes)
	for id, l := range links {
		go func(id int, l *ctl) {
			d, err := recvAs[*Done](l, 0, fmt.Sprintf("done from node %d", id))
			doneCh <- doneRes{id, d, err}
		}(id, l)
	}
	dones := make([]*Done, cfg.Nodes)
	for got := 0; got < cfg.Nodes; got++ {
		r := <-doneCh
		if r.err != nil {
			return fail(r.err)
		}
		if int(r.d.Node) != r.id {
			return fail(fmt.Errorf("dist: node %d sent Done claiming id %d", r.id, r.d.Node))
		}
		lo, hi := RangeOf(cfg.Procs, cfg.Nodes, r.id)
		if len(r.d.Accounts) != hi-lo {
			return fail(fmt.Errorf("dist: node %d reported %d accounts, hosts %d ranks", r.id, len(r.d.Accounts), hi-lo))
		}
		dones[r.id] = r.d
		if got == 0 {
			// Arm the drain deadline on every still-pending connection; a
			// deadline set concurrently unblocks the reader goroutines'
			// in-flight reads.
			dl := time.Now().Add(cfg.DrainTimeout)
			for id, l := range links {
				if dones[id] == nil && id != r.id {
					l.c.SetReadDeadline(dl)
				}
			}
		}
	}

	makespan := substrate.Time(0)
	accounts := make([]substrate.Account, cfg.Procs)
	for id, d := range dones {
		if d.FinishedAt > makespan {
			makespan = d.FinishedAt
		}
		lo, _ := RangeOf(cfg.Procs, cfg.Nodes, id)
		copy(accounts[lo:], d.Accounts)
	}

	// Fin broadcast: release the drain barrier with the agreed makespan.
	for id, l := range links {
		if err := l.send(&Fin{Makespan: makespan}, cfg.DrainTimeout); err != nil {
			return fail(fmt.Errorf("dist: fin to node %d: %w", id, err))
		}
	}

	// Report collection: each node's driver sends its result blob goodbye.
	type repRes struct {
		id  int
		rp  *Report
		err error
	}
	repCh := make(chan repRes, cfg.Nodes)
	for id, l := range links {
		go func(id int, l *ctl) {
			rp, err := recvAs[*Report](l, cfg.DrainTimeout, fmt.Sprintf("report from node %d", id))
			repCh <- repRes{id, rp, err}
		}(id, l)
	}
	reports := make([][]byte, cfg.Nodes)
	for got := 0; got < cfg.Nodes; got++ {
		r := <-repCh
		if r.err != nil {
			return fail(r.err)
		}
		if int(r.rp.Node) != r.id {
			return fail(fmt.Errorf("dist: node %d sent Report claiming id %d", r.id, r.rp.Node))
		}
		reports[r.id] = r.rp.Blob
	}
	closeAll()
	return &Summary{Procs: cfg.Procs, Makespan: makespan, Accounts: accounts, Reports: reports}, nil
}
