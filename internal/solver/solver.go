// Package solver implements the loosely synchronous substrate of the
// paper's target applications: sparse iterative field solvers (§1, §6).
// It provides a CSR sparse matrix, Jacobi relaxation, and conjugate
// gradients, enough to drive the hybrid end-to-end experiment's solve
// phases with real numerical work and residual reductions.
package solver

import (
	"fmt"
	"math"
)

// CSR is a square sparse matrix in compressed sparse row form.
type CSR struct {
	N      int
	RowPtr []int32
	Col    []int32
	Val    []float64
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVec computes y = A x.
func (m *CSR) MulVec(x, y []float64) {
	for i := 0; i < m.N; i++ {
		s := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.Col[k]]
		}
		y[i] = s
	}
}

// Diag extracts the diagonal of A (0 where absent).
func (m *CSR) Diag() []float64 {
	d := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if int(m.Col[k]) == i {
				d[i] = m.Val[k]
			}
		}
	}
	return d
}

// Laplacian1D builds the n x n tridiagonal Poisson matrix
// (2 on the diagonal, -1 off) — the classic model problem.
func Laplacian1D(n int) *CSR {
	m := &CSR{N: n, RowPtr: make([]int32, n+1)}
	for i := 0; i < n; i++ {
		m.RowPtr[i] = int32(len(m.Val))
		if i > 0 {
			m.Col = append(m.Col, int32(i-1))
			m.Val = append(m.Val, -1)
		}
		m.Col = append(m.Col, int32(i))
		m.Val = append(m.Val, 2)
		if i+1 < n {
			m.Col = append(m.Col, int32(i+1))
			m.Val = append(m.Val, -1)
		}
	}
	m.RowPtr[n] = int32(len(m.Val))
	return m
}

// Laplacian2D builds the 5-point Poisson matrix on an nx x ny grid.
func Laplacian2D(nx, ny int) *CSR {
	n := nx * ny
	m := &CSR{N: n, RowPtr: make([]int32, n+1)}
	idx := func(x, y int) int32 { return int32(y*nx + x) }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := int(idx(x, y))
			m.RowPtr[i] = int32(len(m.Val))
			add := func(c int32, v float64) {
				m.Col = append(m.Col, c)
				m.Val = append(m.Val, v)
			}
			if y > 0 {
				add(idx(x, y-1), -1)
			}
			if x > 0 {
				add(idx(x-1, y), -1)
			}
			add(idx(x, y), 4)
			if x+1 < nx {
				add(idx(x+1, y), -1)
			}
			if y+1 < ny {
				add(idx(x, y+1), -1)
			}
		}
	}
	m.RowPtr[n] = int32(len(m.Val))
	return m
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Residual computes r = b - A x and returns ||r||2.
func Residual(a *CSR, x, b, r []float64) float64 {
	a.MulVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	return Norm2(r)
}

// JacobiSweep performs one weighted Jacobi relaxation
// x' = x + w D^-1 (b - A x), writing into x, and returns ||b - A x||2 as of
// the start of the sweep (the residual a solver would reduce globally).
func JacobiSweep(a *CSR, diag, x, b, scratch []float64, w float64) float64 {
	res := Residual(a, x, b, scratch)
	for i := range x {
		if diag[i] != 0 {
			x[i] += w * scratch[i] / diag[i]
		}
	}
	return res
}

// Jacobi runs weighted Jacobi until the residual drops below tol*||b|| or
// maxIters sweeps, returning the iteration count and final residual.
func Jacobi(a *CSR, x, b []float64, w, tol float64, maxIters int) (int, float64) {
	diag := a.Diag()
	scratch := make([]float64, a.N)
	bound := tol * Norm2(b)
	res := 0.0
	for it := 1; it <= maxIters; it++ {
		res = JacobiSweep(a, diag, x, b, scratch, w)
		if res <= bound {
			return it, res
		}
	}
	return maxIters, res
}

// CG solves A x = b for symmetric positive definite A by conjugate
// gradients, returning iterations used and the final residual norm.
func CG(a *CSR, x, b []float64, tol float64, maxIters int) (int, float64, error) {
	n := a.N
	if len(x) != n || len(b) != n {
		return 0, 0, fmt.Errorf("solver: dimension mismatch")
	}
	r := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	a.MulVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
		p[i] = r[i]
	}
	rs := dot(r, r)
	bound := tol * Norm2(b)
	if math.Sqrt(rs) <= bound {
		return 0, math.Sqrt(rs), nil
	}
	for it := 1; it <= maxIters; it++ {
		a.MulVec(p, ap)
		den := dot(p, ap)
		if den == 0 {
			return it, math.Sqrt(rs), fmt.Errorf("solver: CG breakdown")
		}
		alpha := rs / den
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rsNew := dot(r, r)
		if math.Sqrt(rsNew) <= bound {
			return it, math.Sqrt(rsNew), nil
		}
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	return maxIters, math.Sqrt(rs), nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
