package solver

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLaplacian1DStructure(t *testing.T) {
	a := Laplacian1D(5)
	if a.N != 5 || a.NNZ() != 13 {
		t.Fatalf("n=%d nnz=%d", a.N, a.NNZ())
	}
	d := a.Diag()
	for _, v := range d {
		if v != 2 {
			t.Fatalf("diag = %v", d)
		}
	}
	// A * ones: interior rows sum to 0, boundary rows to 1.
	ones := []float64{1, 1, 1, 1, 1}
	y := make([]float64, 5)
	a.MulVec(ones, y)
	want := []float64{1, 0, 0, 0, 1}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("A*1 = %v", y)
		}
	}
}

func TestLaplacian2DStructure(t *testing.T) {
	a := Laplacian2D(3, 3)
	if a.N != 9 {
		t.Fatalf("n = %d", a.N)
	}
	d := a.Diag()
	for _, v := range d {
		if v != 4 {
			t.Fatalf("diag = %v", d)
		}
	}
	// Center row has 4 neighbors: nnz row length 5.
	if a.RowPtr[5]-a.RowPtr[4] != 5 {
		t.Fatalf("center row nnz = %d", a.RowPtr[5]-a.RowPtr[4])
	}
}

func TestJacobiConverges(t *testing.T) {
	a := Laplacian1D(32)
	b := make([]float64, 32)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, 32)
	iters, res := Jacobi(a, x, b, 0.8, 1e-8, 100000)
	if res > 1e-8*Norm2(b) {
		t.Fatalf("jacobi residual %v after %d iters", res, iters)
	}
	// Verify the solve: A x ≈ b.
	y := make([]float64, 32)
	a.MulVec(x, y)
	for i := range y {
		if math.Abs(y[i]-b[i]) > 1e-6 {
			t.Fatalf("Ax[%d] = %v", i, y[i])
		}
	}
}

func TestCGSolvesPoisson2D(t *testing.T) {
	a := Laplacian2D(12, 12)
	n := a.N
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	x := make([]float64, n)
	iters, res, err := CG(a, x, b, 1e-10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-10*Norm2(b) {
		t.Fatalf("CG residual %v after %d iters", res, iters)
	}
	// CG on an SPD n-dim system converges in at most n steps.
	if iters > n {
		t.Fatalf("CG took %d > n=%d iterations", iters, n)
	}
}

func TestCGMuchFasterThanJacobi(t *testing.T) {
	a := Laplacian1D(128)
	b := make([]float64, 128)
	b[64] = 1
	xj := make([]float64, 128)
	xc := make([]float64, 128)
	jIters, _ := Jacobi(a, xj, b, 0.8, 1e-6, 2000000)
	cIters, _, err := CG(a, xc, b, 1e-6, 2000000)
	if err != nil {
		t.Fatal(err)
	}
	if cIters*10 > jIters {
		t.Fatalf("CG (%d iters) should be far faster than Jacobi (%d)", cIters, jIters)
	}
}

// TestJacobiResidualMonotone: for the weighted Jacobi on the SPD model
// problem, residuals decrease monotonically from any start.
func TestJacobiResidualMonotone(t *testing.T) {
	f := func(raw []int8) bool {
		a := Laplacian1D(16)
		diag := a.Diag()
		x := make([]float64, 16)
		b := make([]float64, 16)
		for i := range x {
			if i < len(raw) {
				x[i] = float64(raw[i]) / 8
			}
			b[i] = 1
		}
		scratch := make([]float64, 16)
		prev := math.Inf(1)
		for it := 0; it < 50; it++ {
			res := JacobiSweep(a, diag, x, b, scratch, 0.66)
			if res > prev*(1+1e-12) {
				return false
			}
			prev = res
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResidualAndNorm(t *testing.T) {
	a := Laplacian1D(3)
	x := []float64{1, 0, 0}
	b := []float64{2, -1, 0}
	r := make([]float64, 3)
	// A x = (2,-1,0) exactly: residual 0.
	if res := Residual(a, x, b, r); res != 0 {
		t.Fatalf("residual = %v", res)
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Fatal("norm")
	}
}

func TestCGDimensionMismatch(t *testing.T) {
	a := Laplacian1D(4)
	if _, _, err := CG(a, make([]float64, 3), make([]float64, 4), 1e-6, 10); err == nil {
		t.Fatal("dimension mismatch must error")
	}
}
