package substrate

// Addr names a processor in a (possibly multi-node) deployment: the node —
// the OS process hosting a group of processors — plus the processor's global
// rank. The in-process backends (sim, rtm) host every processor on node 0;
// the future distributed backend (cmd/premad) will spread ranks across
// nodes and route frames by Addr.
type Addr struct {
	// Node is the hosting node id (0 in single-process backends).
	Node int
	// Proc is the global processor id, the same rank Endpoint.ID reports.
	Proc int
}

// Router is a machine's routing table: the processor-rank → address map a
// transport consults to pick the link that reaches a destination. Machines
// that can host processors on several nodes implement it; single-process
// backends fall back to SingleNode via RouterOf. The distributed backend
// extends the table on node join/leave.
type Router interface {
	// AddrOf returns the address of the given global processor id.
	AddrOf(proc int) Addr
	// NumNodes returns the number of nodes in the table.
	NumNodes() int
}

// SingleNode is the trivial routing table: every processor lives on node 0.
type SingleNode struct {
	// Procs is the machine size (AddrOf does not range-check; the table
	// carries it so callers can enumerate ranks).
	Procs int
}

// AddrOf implements Router.
func (s SingleNode) AddrOf(proc int) Addr { return Addr{Node: 0, Proc: proc} }

// NumNodes implements Router.
func (s SingleNode) NumNodes() int { return 1 }

// RouterOf returns m's routing table, unwrapping decorators (trace, wire,
// faulty expose Unwrap) until a machine implements Router; if none does, it
// returns a SingleNode table sized to the machine.
func RouterOf(m Machine) Router {
	for cur := m; ; {
		if r, ok := cur.(Router); ok {
			return r
		}
		u, ok := cur.(interface{ Unwrap() Machine })
		if !ok {
			return SingleNode{Procs: m.NumProcs()}
		}
		cur = u.Unwrap()
	}
}
