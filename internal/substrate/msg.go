package substrate

// Msg is a message in flight between processors. The substrate treats the
// payload as opaque; higher layers (DMCS, MOL, the baselines) interpret Kind
// and Data. Size is the modeled wire size in bytes and is what the network
// cost model charges for — Data itself is shared memory, standing in for
// serialized bytes. On the real-time backend the channel handoff of the Msg
// pointer is the synchronization point: a sender must not touch the message
// (or payload objects it transfers ownership of) after Send.
type Msg struct {
	// Src and Dst are processor IDs.
	Src, Dst int
	// Kind discriminates message types at whatever layer consumes the
	// message. The substrate does not interpret it.
	Kind int
	// Tag separates traffic classes. By convention TagSystem messages are
	// load-balancer traffic eligible for preemptive (polling-thread)
	// processing; TagApp messages are application traffic handled only at
	// application-posted polls, mirroring PREMA's tag mechanism (§4.2).
	Tag int
	// Data is the payload.
	Data any
	// Size is the modeled payload size in bytes.
	Size int
	// Seq is a layered-protocol sequence number. The substrate itself never
	// reads or writes it; reliable-delivery layers (dmcs's reliable mode)
	// stamp per-stream sequence numbers here so receivers can deduplicate
	// and reorder. Zero means "unsequenced".
	Seq uint64
	// SentAt and ArrivedAt are stamped by the substrate.
	SentAt, ArrivedAt Time
}

// Traffic-class tags. See Msg.Tag.
const (
	TagApp = iota
	TagSystem
)
