package substrate

import (
	"fmt"
	"time"
)

// Time is a point in (or duration of) substrate time, in nanoseconds.
//
// On the simulator backend this is virtual time, completely decoupled from
// the host clock: computation, message transmission, and synchronization
// advance it according to the configured cost model. On the real-time
// backend it is scaled monotonic wall-clock time measured from machine
// start.
type Time int64

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns the time as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String renders the time in seconds with millisecond resolution.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// Duration converts the time to a time.Duration (both are nanoseconds).
func (t Time) Duration() time.Duration { return time.Duration(t) }

// FromDuration converts a wall-clock duration to substrate time.
func FromDuration(d time.Duration) Time { return Time(d) }

// Scale multiplies the duration by a dimensionless factor, rounding toward
// zero. It is the canonical way to derive work-unit durations from abstract
// computational weights.
func Scale(t Time, f float64) Time { return Time(float64(t) * f) }
