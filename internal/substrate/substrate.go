// Package substrate defines the execution-substrate abstraction the PREMA
// stack is written against. Every layer above it — dmcs (active messages),
// mol (mobile objects), ilb (load balancing), policy (the balancing
// strategies), and core (the assembled runtime) — depends only on the small
// interfaces in this package, never on a concrete machine. Two backends
// implement them:
//
//   - internal/sim: the deterministic discrete-event simulator. One host
//     thread, virtual time, a seeded RNG — byte-identical reports across
//     runs, used for all paper-figure reproduction.
//   - internal/rtm: the real-time machine. Each processor is a goroutine,
//     the network is buffered channels with per-(src,dst) FIFO delivery and
//     injected latency, and time accounting uses the host's monotonic clock
//     — genuine parallelism, validated under the race detector.
//
// The split mirrors the paper's own layering: DMCS is specified as handlers
// over an opaque transport, so the transport (and the clock that prices it)
// is exactly the seam where a simulator and a real machine can be swapped
// without touching application or runtime code.
package substrate

import "math/rand"

// Clock provides the substrate's notion of the current time. In the
// simulator this is virtual time driven by the event loop; in the real-time
// machine it is scaled monotonic wall-clock time.
type Clock interface {
	// Now returns the current time on this substrate.
	Now() Time
}

// Endpoint is one processor's view of the machine: identity, time, the
// message transport, and the per-category time ledger. All methods must be
// called from the processor's own execution context (its simulated body or
// its goroutine); Endpoints are not safe for cross-processor sharing.
type Endpoint interface {
	Clock

	// ID returns the processor's dense ID (spawn order).
	ID() int
	// Name returns the processor's name.
	Name() string
	// NumPeers returns the machine size (total number of endpoints,
	// including this one).
	NumPeers() int
	// Rand returns a random source usable from this endpoint's context.
	// Both machines hand each endpoint its own stream seeded seed+procID —
	// never a shared one — so goroutines never share unsynchronized state
	// and a simulation's random choices do not depend on how processors
	// are partitioned across event-loop shards.
	Rand() *rand.Rand

	// Account returns the processor's time ledger. The pointer stays valid
	// for the lifetime of the machine; read it after Run for final figures.
	Account() *Account
	// Charge adds time to a category without consuming any. It re-attributes
	// time (e.g. splitting a receive between messaging and callback
	// overhead); prefer Advance for real time consumption.
	Charge(cat Category, d Time)
	// Advance consumes d of CPU time, attributed to cat. The simulator
	// advances virtual time; the real-time machine burns scaled wall-clock
	// (sleeping or spinning).
	Advance(d Time, cat Category)

	// Send transmits m, stamping Src and SentAt and charging the sender's
	// per-message CPU overhead to cat. Delivery is asynchronous and FIFO
	// per (src,dst) pair.
	Send(m *Msg, cat Category)
	// InboxLen returns the number of queued, undelivered messages.
	InboxLen() int
	// HasMsg reports whether any queued message carries the given tag.
	HasMsg(tag int) bool
	// TryRecv pops the oldest queued message, charging receive CPU overhead
	// to cat. It returns nil when no message is queued.
	TryRecv(cat Category) *Msg
	// TryRecvTag pops the oldest queued message with the given tag,
	// preserving the relative order of the remaining messages. It returns
	// nil when no such message is queued.
	TryRecvTag(tag int, cat Category) *Msg
	// Recv blocks until a message is available and returns it, attributing
	// blocked time to waitCat and receive overhead to CatMessaging.
	Recv(waitCat Category) *Msg
	// WaitMsg blocks until at least one message is queued, attributing the
	// wait to cat.
	WaitMsg(cat Category)
	// WaitMsgFor blocks until a message is queued or d elapses, attributing
	// the wait to cat. It reports whether a message is available.
	WaitMsgFor(d Time, cat Category) bool
}

// Machine is a whole execution substrate: a set of endpoints plus the global
// clock. Drivers spawn one body per processor, call Run, then read the
// per-processor accounts and the makespan.
type Machine interface {
	// Spawn adds a processor whose behaviour is body. IDs are assigned
	// densely in spawn order. All Spawn calls must precede Run.
	Spawn(name string, body func(Endpoint))
	// Run executes all processor bodies to completion and returns the first
	// processor panic (if any) as an error.
	Run() error
	// Stop asks the machine to wind down early: remaining work is abandoned
	// and blocked processors are torn down.
	Stop()
	// NumProcs returns the number of spawned processors.
	NumProcs() int
	// Now returns the machine's current time.
	Now() Time
	// Makespan returns the latest processor finish time; only meaningful
	// after Run returns.
	Makespan() Time
	// Account returns processor i's time ledger; read it after Run.
	Account(i int) *Account
}
