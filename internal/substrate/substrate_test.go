package substrate

import (
	"testing"
	"time"
)

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		t       Time
		seconds float64
		millis  float64
		str     string
	}{
		{0, 0, 0, "0.000s"},
		{Second, 1, 1000, "1.000s"},
		{1500 * Millisecond, 1.5, 1500, "1.500s"},
		{250 * Microsecond, 0.00025, 0.25, "0.000s"},
	}
	for _, c := range cases {
		if got := c.t.Seconds(); got != c.seconds {
			t.Errorf("%d.Seconds() = %v, want %v", int64(c.t), got, c.seconds)
		}
		if got := c.t.Millis(); got != c.millis {
			t.Errorf("%d.Millis() = %v, want %v", int64(c.t), got, c.millis)
		}
		if got := c.t.String(); got != c.str {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.str)
		}
	}
}

func TestTimeDurationRoundTrip(t *testing.T) {
	d := 1500 * time.Millisecond
	if got := FromDuration(d); got != 1500*Millisecond {
		t.Fatalf("FromDuration(%v) = %v", d, got)
	}
	if got := (1500 * Millisecond).Duration(); got != d {
		t.Fatalf("Duration() = %v, want %v", got, d)
	}
}

func TestScale(t *testing.T) {
	cases := []struct {
		in   Time
		f    float64
		want Time
	}{
		{Second, 2.0, 2 * Second},
		{Second, 0.5, 500 * Millisecond},
		{10 * Second, 1.2, 12 * Second},
		{3, 0.5, 1}, // rounds toward zero
	}
	for _, c := range cases {
		if got := Scale(c.in, c.f); got != c.want {
			t.Errorf("Scale(%v, %v) = %v, want %v", c.in, c.f, got, c.want)
		}
	}
}

func TestCategoryString(t *testing.T) {
	if CatCompute.String() != "Computation" || CatSync.String() != "Sync" {
		t.Fatalf("category names wrong: %q %q", CatCompute, CatSync)
	}
	if Category(-1).String() != "Unknown" || NumCategories.String() != "Unknown" {
		t.Fatal("out-of-range categories should stringify as Unknown")
	}
}

func TestAccount(t *testing.T) {
	var a Account
	a[CatCompute] = 10 * Second
	a[CatIdle] = 2 * Second
	a[CatMessaging] = Second
	a[CatScheduling] = 500 * Millisecond
	if got := a.Total(); got != 13500*Millisecond {
		t.Fatalf("Total = %v", got)
	}
	if got := a.Overhead(); got != 1500*Millisecond {
		t.Fatalf("Overhead = %v", got)
	}
	var b Account
	b[CatCompute] = Second
	a.Add(&b)
	if a[CatCompute] != 11*Second {
		t.Fatalf("Add: compute = %v", a[CatCompute])
	}
}
