package substrate

// Category classifies how a processor spends its time. The categories are
// exactly the stacked-bar series of Figures 3-6 of the paper, plus a
// catch-all for time that precedes the measured region.
type Category int

const (
	// CatCompute is useful application computation ("Computation Time").
	CatCompute Category = iota
	// CatIdle is time spent with no local work, waiting for messages or for
	// the end of the run ("Idle Time").
	CatIdle
	// CatMessaging is CPU time spent sending and receiving messages
	// ("Messaging Time").
	CatMessaging
	// CatScheduling is time spent in the runtime scheduler selecting the next
	// work unit and evaluating load levels ("Scheduling Time").
	CatScheduling
	// CatCallback is handler-dispatch overhead around application callbacks
	// ("Callback Routine Time").
	CatCallback
	// CatPollThread is time consumed by PREMA's preemptive polling thread in
	// implicit load balancing mode ("Polling Thread Time").
	CatPollThread
	// CatPartition is time spent computing a new partition in
	// stop-and-repartition schemes ("Partition Calculation Time").
	CatPartition
	// CatSync is time spent blocked in barriers or other global
	// synchronization introduced for load balancing ("Synchronization Time").
	CatSync

	// NumCategories is the number of accounting categories.
	NumCategories
)

var categoryNames = [NumCategories]string{
	"Computation",
	"Idle",
	"Messaging",
	"Scheduling",
	"Callback",
	"PollThread",
	"Partition",
	"Sync",
}

// String returns the short human-readable category name.
func (c Category) String() string {
	if c < 0 || c >= NumCategories {
		return "Unknown"
	}
	return categoryNames[c]
}

// Account is a per-processor ledger of time by category.
type Account [NumCategories]Time

// Total returns the sum across all categories.
func (a *Account) Total() Time {
	var t Time
	for _, v := range a {
		t += v
	}
	return t
}

// Overhead returns the sum of all runtime-attributable categories, i.e.
// everything except computation and idle time. This is the quantity the
// paper reports as "overhead attributable to the runtime system".
func (a *Account) Overhead() Time {
	return a.Total() - a[CatCompute] - a[CatIdle]
}

// Add accumulates another account into a.
func (a *Account) Add(b *Account) {
	for i := range a {
		a[i] += b[i]
	}
}
