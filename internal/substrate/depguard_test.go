package substrate

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestStackDoesNotImportSim guards the substrate seam: the PREMA stack
// (dmcs, mol, ilb, policy, core, coll, recov) and the wire codec must
// depend only on this package, never on a concrete backend. A direct
// import of internal/sim or internal/rtm from one of these layers would
// silently re-couple the stack to one backend; this test turns that into a
// build-time-visible failure.
func TestStackDoesNotImportSim(t *testing.T) {
	layers := []string{"dmcs", "mol", "ilb", "policy", "core", "coll", "recov", "wire"}
	banned := []string{"prema/internal/sim", "prema/internal/rtm"}
	fset := token.NewFileSet()
	for _, layer := range layers {
		files, err := filepath.Glob(filepath.Join("..", layer, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 {
			t.Fatalf("no sources found for layer %s", layer)
		}
		for _, file := range files {
			if strings.HasSuffix(file, "_test.go") {
				continue // tests may build machines of either backend
			}
			f, err := parser.ParseFile(fset, file, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("parse %s: %v", file, err)
			}
			for _, imp := range f.Imports {
				path, _ := strconv.Unquote(imp.Path.Value)
				for _, b := range banned {
					if path == b {
						t.Errorf("%s imports %s; the PREMA stack must depend only on internal/substrate", file, path)
					}
				}
			}
		}
	}
}
