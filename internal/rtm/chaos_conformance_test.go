package rtm_test

import (
	"fmt"
	"sort"
	"testing"

	"prema/internal/core"
	"prema/internal/dmcs"
	"prema/internal/faulty"
	"prema/internal/ilb"
	"prema/internal/mol"
	"prema/internal/rtm"
	"prema/internal/sim"
	"prema/internal/substrate"
)

// runChaosConformance runs the program-driven conformance workload (see
// conformance_test.go) with DMCS reliable delivery, and returns each
// processor's final residents as objectIndex → messages delivered to it.
// On a faulted machine the protocol counters are timing-dependent, but the
// application-level outcome must not be: every object on its dictated
// processor, every object having heard from every processor exactly once.
func runChaosConformance(t *testing.T, m substrate.Machine, procs, objects int, rel dmcs.RelConfig) []map[int]int {
	t.Helper()
	final := make([]map[int]int, procs)
	for p := 0; p < procs; p++ {
		m.Spawn(fmt.Sprintf("p%d", p), func(ep substrate.Endpoint) {
			opts := core.DefaultOptions(ilb.Explicit)
			opts.Mol.NotifyOrigin = false
			opts.Rel = rel
			r := core.NewRuntime(ep, opts)
			self := ep.ID()

			done := 0
			var hDone dmcs.HandlerID
			hDone = r.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
				done++
				if done == objects {
					r.StopAll()
				}
			})
			var hWork mol.HandlerID
			hWork = r.RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
				o := obj.Data.(*confObj)
				o.got++
				r.Compute(2 * substrate.Millisecond)
				if o.got == procs {
					r.Comm().SendTagged(0, hDone, nil, 8, substrate.TagApp)
				}
			})
			sendAll := func() {
				for i := 0; i < objects; i++ {
					r.Message(mol.MobilePtr{Home: 0, Index: i}, hWork, nil, 8, 0.002)
				}
			}
			hReady := r.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
				sendAll()
			})

			if self == 0 {
				for i := 0; i < objects; i++ {
					r.Register(&confObj{}, 128)
				}
				for i := 0; i < objects; i++ {
					if dst := i % procs; dst != 0 {
						if err := r.Mol().Migrate(mol.MobilePtr{Home: 0, Index: i}, dst); err != nil {
							t.Error(err)
						}
					}
				}
				for q := 1; q < procs; q++ {
					r.Comm().SendTagged(q, hReady, nil, 8, substrate.TagApp)
				}
				sendAll()
			}
			r.Run()

			mine := make(map[int]int)
			for mp, obj := range r.Mol().Local() {
				mine[mp.Index] = obj.Data.(*confObj).got
			}
			final[self] = mine
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return final
}

// checkChaosOutcome asserts the dictated placement and exactly-once
// delivery.
func checkChaosOutcome(t *testing.T, final []map[int]int, procs, objects int) {
	t.Helper()
	seen := make(map[int]int) // object → resident proc
	for p, mine := range final {
		for idx, got := range mine {
			if prev, dup := seen[idx]; dup {
				t.Errorf("object %d resident on both proc %d and proc %d", idx, prev, p)
			}
			seen[idx] = p
			if want := idx % procs; p != want {
				t.Errorf("object %d ended on proc %d, want %d", idx, p, want)
			}
			if got != procs {
				t.Errorf("object %d heard %d messages, want exactly %d", idx, got, procs)
			}
		}
	}
	if len(seen) != objects {
		var missing []int
		for i := 0; i < objects; i++ {
			if _, ok := seen[i]; !ok {
				missing = append(missing, i)
			}
		}
		sort.Ints(missing)
		t.Errorf("%d of %d objects lost: %v", objects-len(seen), objects, missing)
	}
}

// TestCrossBackendChaosConformance: the conformance workload on a lossy,
// duplicating, reordering machine — on both backends — must still reach the
// exact application-level outcome the program dictates. This is the
// cross-backend acceptance test for the fault-injection + reliable-delivery
// pair: the same PREMA stack, the same fault plan, surviving on the
// deterministic simulator and under real concurrency.
func TestCrossBackendChaosConformance(t *testing.T) {
	const procs, objects = 4, 16
	plan := faulty.Plan{Default: faulty.LinkFaults{Drop: 0.15, Dup: 0.10, Reorder: 0.20}}
	rel := dmcs.RelConfig{
		Enabled:      true,
		RTO:          10 * substrate.Millisecond,
		RTOMax:       100 * substrate.Millisecond,
		Linger:       300 * substrate.Millisecond,
		DrainTimeout: 30 * substrate.Second,
	}
	t.Run("sim", func(t *testing.T) {
		m := faulty.Wrap(sim.NewMachine(sim.Config{Seed: 9}), plan, 21)
		final := runChaosConformance(t, m, procs, objects, rel)
		checkChaosOutcome(t, final, procs, objects)
		if st := m.Stats(); st.Dropped == 0 || st.Dupped == 0 {
			t.Errorf("fault injection too quiet: %+v", st)
		}
	})
	t.Run("real", func(t *testing.T) {
		cfg := rtm.DefaultConfig()
		cfg.Seed = 9
		cfg.TimeScale = 1e-2 // keep sub-RTO waits above the host timer floor
		if raceDetector {
			cfg.TimeScale *= 10
		}
		m := faulty.Wrap(rtm.New(cfg), plan, 21)
		final := runChaosConformance(t, m, procs, objects, rel)
		checkChaosOutcome(t, final, procs, objects)
	})
}
