package rtm_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"prema/internal/core"
	"prema/internal/dmcs"
	"prema/internal/ilb"
	"prema/internal/mol"
	"prema/internal/rtm"
	"prema/internal/sim"
	"prema/internal/substrate"
	"prema/internal/wire"
)

type confObj struct {
	got int // messages received so far
}

// The conformance objects migrate, so on a wire-wrapped machine their data
// crosses the codec; the marshal hooks are what a real application would
// install alongside Register.
func init() {
	mol.RegisterDataCodec(wire.KindUser+1, &confObj{},
		func(data any) []byte {
			g := data.(*confObj).got
			return []byte{byte(g >> 24), byte(g >> 16), byte(g >> 8), byte(g)}
		},
		func(b []byte) any {
			if len(b) != 4 {
				return &confObj{}
			}
			return &confObj{got: int(b[0])<<24 | int(b[1])<<16 | int(b[2])<<8 | int(b[3])}
		})
}

// runConformance executes a fully program-driven workload (no load balancing
// policy, migrations decided by the application before any work messages)
// on m and returns each processor's MOL statistics and final object
// placement. With per-(src,dst) FIFO guaranteed by every backend, all counts
// and the placement are deterministic — identical across backends even
// though timings differ.
//
// Shape: processor 0 registers `objects` mobile objects, migrates object i
// to processor i%procs, announces readiness, and then every processor sends
// one work message to every object (routed via the home directory; origin
// notification is off so the routing is timing-independent). An object that
// has heard from every processor reports completion to processor 0, which
// stops the machine once all objects have reported.
func runConformance(t *testing.T, m substrate.Machine, procs, objects int) ([]mol.Stats, [][]int) {
	t.Helper()
	statsOut := make([]mol.Stats, procs)
	placement := make([][]int, procs)
	for p := 0; p < procs; p++ {
		m.Spawn(fmt.Sprintf("p%d", p), func(ep substrate.Endpoint) {
			opts := core.DefaultOptions(ilb.Explicit)
			opts.Mol.NotifyOrigin = false // keep routing independent of notify timing
			r := core.NewRuntime(ep, opts)
			self := ep.ID()

			done := 0
			var hDone dmcs.HandlerID
			hDone = r.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
				done++
				if done == objects {
					r.StopAll()
				}
			})
			var hWork mol.HandlerID
			hWork = r.RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
				o := obj.Data.(*confObj)
				o.got++
				r.Compute(2 * substrate.Millisecond)
				if o.got == procs {
					r.Comm().SendTagged(0, hDone, nil, 8, substrate.TagApp)
				}
			})
			sendAll := func() {
				for i := 0; i < objects; i++ {
					r.Message(mol.MobilePtr{Home: 0, Index: i}, hWork, nil, 8, 0.002)
				}
			}
			hReady := r.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
				sendAll()
			})

			if self == 0 {
				for i := 0; i < objects; i++ {
					r.Register(&confObj{}, 128)
				}
				for i := 0; i < objects; i++ {
					if dst := i % procs; dst != 0 {
						if err := r.Mol().Migrate(mol.MobilePtr{Home: 0, Index: i}, dst); err != nil {
							t.Error(err)
						}
					}
				}
				// Per-(src,dst) FIFO: the ready announcement arrives after
				// the migrations, so peers send work only once their
				// residents are installed.
				for q := 1; q < procs; q++ {
					r.Comm().SendTagged(q, hReady, nil, 8, substrate.TagApp)
				}
				sendAll()
			}
			r.Run()

			var local []int
			for mp := range r.Mol().Local() {
				local = append(local, mp.Index)
			}
			sort.Ints(local)
			placement[self] = local
			statsOut[self] = r.Mol().Stats
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return statsOut, placement
}

// TestCrossBackendConformance: the deterministic simulator and the
// real-concurrency machine must agree exactly on message counts, migration
// counts, forwards, and final object placement for a program-driven
// workload; only timings may differ.
func TestCrossBackendConformance(t *testing.T) {
	const procs, objects = 4, 16
	simStats, simPlace := runConformance(t, sim.NewMachine(sim.Config{Seed: 9}), procs, objects)
	cfg := rtm.DefaultConfig()
	cfg.Seed = 9
	rtmStats, rtmPlace := runConformance(t, rtm.New(cfg), procs, objects)

	if !reflect.DeepEqual(simStats, rtmStats) {
		t.Errorf("MOL statistics diverge between backends:\n sim: %+v\n rtm: %+v", simStats, rtmStats)
	}
	if !reflect.DeepEqual(simPlace, rtmPlace) {
		t.Errorf("final placement diverges between backends:\n sim: %v\n rtm: %v", simPlace, rtmPlace)
	}
	// And the placement is the one the program dictated.
	for p := 0; p < procs; p++ {
		var want []int
		for i := p; i < objects; i += procs {
			want = append(want, i)
		}
		if !reflect.DeepEqual(simPlace[p], want) {
			t.Errorf("processor %d holds %v, want %v", p, simPlace[p], want)
		}
	}
}

// TestWireWrappedConformance: the serialization loopback must preserve the
// cross-backend agreement — wire-wrapped simulator and wire-wrapped rtm
// both reproduce the plain simulator's statistics and placement exactly,
// even though every migration, work message, and ack now crosses the binary
// codec (the mobile objects' own data included, via the RegisterDataCodec
// hooks above).
func TestWireWrappedConformance(t *testing.T) {
	const procs, objects = 4, 16
	plainStats, plainPlace := runConformance(t, sim.NewMachine(sim.Config{Seed: 9}), procs, objects)

	wsim := wire.Wrap(sim.NewMachine(sim.Config{Seed: 9}))
	wsimStats, wsimPlace := runConformance(t, wsim, procs, objects)
	if !reflect.DeepEqual(plainStats, wsimStats) {
		t.Errorf("wire-wrapped sim diverges:\n plain: %+v\n wire: %+v", plainStats, wsimStats)
	}
	if !reflect.DeepEqual(plainPlace, wsimPlace) {
		t.Errorf("wire-wrapped sim placement diverges:\n plain: %v\n wire: %v", plainPlace, wsimPlace)
	}
	if wsim.Frames() == 0 {
		t.Error("wire-wrapped sim encoded no frames")
	}
	if wsim.SizeDrift() != 0 {
		t.Errorf("wire-wrapped sim: %d of %d frames exceeded their modeled size", wsim.SizeDrift(), wsim.Frames())
	}

	cfg := rtm.DefaultConfig()
	cfg.Seed = 9
	wrtm := wire.Wrap(rtm.New(cfg))
	wrtmStats, wrtmPlace := runConformance(t, wrtm, procs, objects)
	if !reflect.DeepEqual(plainStats, wrtmStats) {
		t.Errorf("wire-wrapped rtm diverges:\n plain: %+v\n wire: %+v", plainStats, wrtmStats)
	}
	if !reflect.DeepEqual(plainPlace, wrtmPlace) {
		t.Errorf("wire-wrapped rtm placement diverges:\n plain: %v\n wire: %v", plainPlace, wrtmPlace)
	}
	if wrtm.Frames() == 0 {
		t.Error("wire-wrapped rtm encoded no frames")
	}
}
