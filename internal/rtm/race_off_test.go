//go:build !race

package rtm_test

const raceDetector = false
