package rtm_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"prema/internal/core"
	"prema/internal/dmcs"
	"prema/internal/ilb"
	"prema/internal/mol"
	"prema/internal/rtm"
	"prema/internal/sim"
	"prema/internal/substrate"
	"prema/internal/trace"
)

// unitEv is the logical identity of one executed work unit: which object,
// which sending processor, and that sender's per-object sequence number.
type unitEv struct {
	obj    int64
	origin int64
	seq    int64
}

// traceSummary is the backend-independent view of one processor's trace: the
// counts of every timing-independent event kind, plus the executed units in
// dispatch order. Spans, receives, and policy decisions are deliberately
// excluded — their counts depend on wait timing, which differs by design
// between the simulator and the real-concurrency machine.
type traceSummary struct {
	counts map[trace.Kind]int
	units  []unitEv
}

// runTracedConformance executes a program-driven workload (adapted from
// runConformance: no balancing policy, migrations decided before any work
// message) with the tracing decorator attached, and returns the per-processor
// trace summaries. Each processor sends msgsPer messages to every object, so
// per-(object, origin) sequence numbers exercise the in-order guarantee.
func runTracedConformance(t *testing.T, m substrate.Machine, procs, objects, msgsPer int) []traceSummary {
	t.Helper()
	col := trace.NewCollector(0)
	tm := trace.Wrap(m, col)
	for p := 0; p < procs; p++ {
		tm.Spawn(fmt.Sprintf("p%d", p), func(ep substrate.Endpoint) {
			opts := core.DefaultOptions(ilb.Explicit)
			opts.Mol.NotifyOrigin = false
			r := core.NewRuntime(ep, opts)
			self := ep.ID()

			done := 0
			var hDone dmcs.HandlerID
			hDone = r.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
				done++
				if done == objects {
					r.StopAll()
				}
			})
			var hWork mol.HandlerID
			hWork = r.RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
				n := obj.Data.(*int)
				*n++
				r.Compute(substrate.Millisecond)
				if *n == procs*msgsPer {
					r.Comm().SendTagged(0, hDone, nil, 8, substrate.TagApp)
				}
			})
			sendAll := func() {
				for k := 0; k < msgsPer; k++ {
					for i := 0; i < objects; i++ {
						r.Message(mol.MobilePtr{Home: 0, Index: i}, hWork, nil, 8, 0.001)
					}
				}
			}
			hReady := r.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
				sendAll()
			})

			if self == 0 {
				for i := 0; i < objects; i++ {
					n := 0
					r.Register(&n, 128)
				}
				for i := 0; i < objects; i++ {
					if dst := i % procs; dst != 0 {
						if err := r.Mol().Migrate(mol.MobilePtr{Home: 0, Index: i}, dst); err != nil {
							t.Error(err)
						}
					}
				}
				for q := 1; q < procs; q++ {
					r.Comm().SendTagged(q, hReady, nil, 8, substrate.TagApp)
				}
				sendAll()
			}
			r.Run()
		})
	}
	if err := tm.Run(); err != nil {
		t.Fatal(err)
	}
	if col.Dropped() != 0 {
		t.Fatalf("trace ring overflowed (%d dropped); grow the ring for this test", col.Dropped())
	}

	sums := make([]traceSummary, procs)
	for p := 0; p < procs; p++ {
		s := traceSummary{counts: map[trace.Kind]int{}}
		for _, e := range col.Recorder(p).Events() {
			switch e.Kind {
			case trace.EvSend, trace.EvForward, trace.EvMigrateOut, trace.EvMigrateIn,
				trace.EvUnitBegin, trace.EvUnitEnd, trace.EvRetransmit, trace.EvStop:
				s.counts[e.Kind]++
			}
			if e.Kind == trace.EvUnitBegin {
				s.units = append(s.units, unitEv{obj: e.A, origin: e.B, seq: e.C})
			}
		}
		sums[p] = s
	}
	return sums
}

// sortedUnits returns a canonically ordered copy for multiset comparison.
func sortedUnits(us []unitEv) []unitEv {
	out := append([]unitEv(nil), us...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].obj != out[j].obj {
			return out[i].obj < out[j].obj
		}
		if out[i].origin != out[j].origin {
			return out[i].origin < out[j].origin
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// TestCrossBackendTraceConformance: both backends must emit the same logical
// event stream for a program-driven workload — identical per-processor counts
// of sends, forwards, migrations, and work units, and identical unit dispatch
// identity with per-(object, origin) sequence numbers delivered in order.
// Only timestamps (virtual vs wall clock) and wait-dependent events may
// differ.
func TestCrossBackendTraceConformance(t *testing.T) {
	const procs, objects, msgsPer = 4, 8, 3
	simSums := runTracedConformance(t, sim.NewMachine(sim.Config{Seed: 11}), procs, objects, msgsPer)
	cfg := rtm.DefaultConfig()
	cfg.Seed = 11
	rtmSums := runTracedConformance(t, rtm.New(cfg), procs, objects, msgsPer)

	for p := 0; p < procs; p++ {
		if !reflect.DeepEqual(simSums[p].counts, rtmSums[p].counts) {
			t.Errorf("proc %d event counts diverge:\n sim: %v\n rtm: %v", p, simSums[p].counts, rtmSums[p].counts)
		}
		// The set of units each processor dispatched must agree exactly;
		// the interleaving across different origins is timing-dependent (the
		// per-origin order is asserted below, on both backends).
		if a, b := sortedUnits(simSums[p].units), sortedUnits(rtmSums[p].units); !reflect.DeepEqual(a, b) {
			t.Errorf("proc %d dispatched different units:\n sim: %v\n rtm: %v", p, a, b)
		}
	}

	// The streams must also be self-consistent on both backends.
	for name, sums := range map[string][]traceSummary{"sim": simSums, "rtm": rtmSums} {
		units, migIn, migOut := 0, 0, 0
		for p, s := range sums {
			units += s.counts[trace.EvUnitBegin]
			migIn += s.counts[trace.EvMigrateIn]
			migOut += s.counts[trace.EvMigrateOut]
			if s.counts[trace.EvUnitBegin] != s.counts[trace.EvUnitEnd] {
				t.Errorf("%s proc %d: %d unit begins but %d ends", name, p, s.counts[trace.EvUnitBegin], s.counts[trace.EvUnitEnd])
			}
			// Per (object, origin), sequence numbers must arrive in order.
			last := map[[2]int64]int64{}
			for _, u := range s.units {
				k := [2]int64{u.obj, u.origin}
				if prev, seen := last[k]; seen && u.seq <= prev {
					t.Errorf("%s proc %d: object %d origin %d ran seq %d after %d", name, p, u.obj, u.origin, u.seq, prev)
				}
				last[k] = u.seq
			}
		}
		if want := procs * objects * msgsPer; units != want {
			t.Errorf("%s: %d units executed, want %d", name, units, want)
		}
		if migOut != migIn {
			t.Errorf("%s: %d migrate-outs but %d migrate-ins", name, migOut, migIn)
		}
	}
}
