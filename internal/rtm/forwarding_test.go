package rtm_test

import (
	"fmt"
	"testing"

	"prema/internal/dmcs"
	"prema/internal/faulty"
	"prema/internal/mol"
	"prema/internal/rtm"
	"prema/internal/sim"
	"prema/internal/substrate"
)

// chainObj is the payload of the migrating object: every work message that
// reaches it is recorded under its origin processor.
type chainObj struct {
	perOrigin [][]int
	total     int
}

// runForwardingChain is the property under test: one mobile object is
// migrated hop by hop around the ring (proc 0 → 1 → 2 → ...) for `hops`
// migrations while every processor concurrently fires `msgs` work messages
// at it. Location caches are stale by construction (NotifyOrigin off), so
// messages chase the object along the forwarding chain. The MOL must deliver
// every message exactly once, in per-origin send order, no matter where the
// object is when each message lands.
//
// Returns each processor's view of the object at the end (nil if not
// resident there, else the recorded per-origin payload sequences) and the
// machine-wide forward count.
func runForwardingChain(t *testing.T, m substrate.Machine, procs, hops, msgs int, rel dmcs.RelConfig) ([][][]int, int) {
	t.Helper()
	mp := mol.MobilePtr{Home: 0, Index: 0}
	results := make([][][]int, procs)
	forwards := make([]int, procs)
	for p := 0; p < procs; p++ {
		m.Spawn(fmt.Sprintf("p%d", p), func(ep substrate.Endpoint) {
			self := ep.ID()
			c := dmcs.New(ep)
			c.EnableReliable(rel)
			cfg := mol.DefaultConfig()
			cfg.NotifyOrigin = false // keep caches stale: messages chase the whole chain
			l := mol.New(c, cfg)

			stopped := false
			allDone, chainDone := false, false
			var hStop, hDone, hChain, hHop dmcs.HandlerID
			maybeStop := func() {
				if self == 0 && allDone && chainDone && !stopped {
					stopped = true
					for q := 1; q < procs; q++ {
						c.SendTagged(q, hStop, nil, 8, substrate.TagSystem)
					}
				}
			}
			hStop = c.Register(func(c *dmcs.Comm, src int, data any, size int) { stopped = true })
			hDone = c.Register(func(c *dmcs.Comm, src int, data any, size int) { allDone = true; maybeStop() })
			hChain = c.Register(func(c *dmcs.Comm, src int, data any, size int) { chainDone = true; maybeStop() })
			// The hop token drives the migration chain. It always travels on
			// the same system-tagged stream as the migration it follows, so
			// FIFO (native, or restored by reliable mode) guarantees the
			// object is resident when the token arrives.
			hHop = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
				k := data.(int)
				if l.Lookup(mp) == nil {
					t.Errorf("proc %d: hop %d token overtook its migration", self, k)
					return
				}
				if k >= hops {
					c.SendTagged(0, hChain, nil, 8, substrate.TagSystem)
					return
				}
				next := (self + 1) % procs
				if err := l.Migrate(mp, next); err != nil {
					t.Error(err)
					return
				}
				c.SendTagged(next, hHop, k+1, 8, substrate.TagSystem)
			})
			hWork := l.RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
				o := obj.Data.(*chainObj)
				o.perOrigin[src] = append(o.perOrigin[src], data.(int))
				o.total++
				// A little compute per message keeps the object in motion
				// while messages are still in flight.
				ep.Advance(500*substrate.Microsecond, substrate.CatCompute)
				if o.total == procs*msgs {
					l.Comm().SendTagged(0, hDone, nil, 8, substrate.TagSystem)
				}
			})

			if self == 0 {
				if got := l.Register(&chainObj{perOrigin: make([][]int, procs)}, 256); got != mp {
					t.Errorf("registered %v, want %v", got, mp)
				}
				if hops > 0 {
					next := 1 % procs
					if err := l.Migrate(mp, next); err != nil {
						t.Error(err)
					}
					c.SendTagged(next, hHop, 1, 8, substrate.TagSystem)
				} else {
					c.SendTagged(0, hChain, nil, 8, substrate.TagSystem)
				}
			}
			for i := 0; i < msgs; i++ {
				l.Message(mp, hWork, i, 16)
			}
			deadline := ep.Now() + 600*substrate.Second
			for !stopped && ep.Now() < deadline {
				c.WaitPollFor(substrate.Millisecond, substrate.CatIdle)
			}
			if !stopped {
				t.Errorf("proc %d: timed out before global stop", self)
			}
			c.Quiesce()
			if obj := l.Lookup(mp); obj != nil {
				results[self] = obj.Data.(*chainObj).perOrigin
			}
			forwards[self] = l.Stats.Forwards
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, f := range forwards {
		total += f
	}
	return results, total
}

// checkChain asserts the exactly-once, per-origin-order property and the
// program-dictated final placement.
func checkChain(t *testing.T, results [][][]int, forwards, procs, hops, msgs int) {
	t.Helper()
	resident := -1
	for p, r := range results {
		if r == nil {
			continue
		}
		if resident >= 0 {
			t.Fatalf("object resident on both proc %d and proc %d", resident, p)
		}
		resident = p
	}
	if want := hops % procs; resident != want {
		t.Fatalf("object ended on proc %d, want %d after %d hops", resident, want, hops)
	}
	for origin, got := range results[resident] {
		if len(got) != msgs {
			t.Fatalf("origin %d: delivered %d messages, want %d (%v)", origin, len(got), msgs, got)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("origin %d: position %d got payload %d — reordered or duplicated (%v)", origin, i, v, got)
			}
		}
	}
	if forwards == 0 {
		t.Error("no message was ever forwarded — the chain was not exercised")
	}
}

// TestMolForwardingChain runs the forwarding-chain property on both backends
// (the rtm legs run under the race detector in CI) in three transports:
// classic DMCS on a clean network, reliable DMCS on a clean network, and
// reliable DMCS on a lossy, duplicating, reordering network.
func TestMolForwardingChain(t *testing.T) {
	cases := []struct{ procs, hops, msgs int }{
		{2, 5, 20},
		{4, 9, 25},
		{5, 17, 10},
	}
	lossy := faulty.Plan{Default: faulty.LinkFaults{Drop: 0.15, Dup: 0.10, Reorder: 0.20}}
	rel := dmcs.RelConfig{
		Enabled:      true,
		RTO:          10 * substrate.Millisecond,
		RTOMax:       100 * substrate.Millisecond,
		Linger:       300 * substrate.Millisecond,
		DrainTimeout: 30 * substrate.Second,
	}
	modes := []struct {
		name  string
		plan  faulty.Plan
		rel   dmcs.RelConfig
		scale float64 // rtm time scale (0 = default)
	}{
		// Every mode slows the real-time machine down to 1e-2. The reliable
		// modes need it so sub-RTO waits stay above the host's scheduling
		// granularity (at the default 1e-3 a 50ms virtual RTO is 50µs of wall
		// clock, and every send looks timed out); the classic mode needs it
		// so the virtual deadline — which burns wall clock whether or not
		// this test's goroutines get scheduled — survives a loaded host
		// running sibling test binaries.
		{name: "classic-clean", scale: 1e-2},
		{name: "reliable-clean", rel: dmcs.DefaultRelConfig(), scale: 1e-2},
		{name: "reliable-lossy", plan: lossy, rel: rel, scale: 1e-2},
	}
	for _, tc := range cases {
		for _, mode := range modes {
			tc, mode := tc, mode
			name := fmt.Sprintf("%s/p%d-k%d-n%d", mode.name, tc.procs, tc.hops, tc.msgs)
			t.Run(name+"/sim", func(t *testing.T) {
				var m substrate.Machine = sim.NewMachine(sim.Config{Seed: 9})
				if mode.plan.Active() {
					m = faulty.Wrap(m, mode.plan, 7)
				}
				results, fwd := runForwardingChain(t, m, tc.procs, tc.hops, tc.msgs, mode.rel)
				checkChain(t, results, fwd, tc.procs, tc.hops, tc.msgs)
			})
			t.Run(name+"/real", func(t *testing.T) {
				cfg := rtm.DefaultConfig()
				cfg.Seed = 9
				if mode.scale > 0 {
					cfg.TimeScale = mode.scale
					if raceDetector {
						// Race instrumentation slows wall-clock execution
						// roughly tenfold, which pushes sub-RTO waits back
						// under the host scheduling granularity; slow the
						// virtual clock to match.
						cfg.TimeScale *= 10
					}
				}
				var m substrate.Machine = rtm.New(cfg)
				if mode.plan.Active() {
					m = faulty.Wrap(m, mode.plan, 7)
				}
				results, fwd := runForwardingChain(t, m, tc.procs, tc.hops, tc.msgs, mode.rel)
				checkChain(t, results, fwd, tc.procs, tc.hops, tc.msgs)
			})
		}
	}
}
