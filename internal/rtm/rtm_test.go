package rtm_test

import (
	"strings"
	"testing"

	"prema/internal/rtm"
	"prema/internal/substrate"
)

// TestPerPairFIFOUnderLatency: the injected-latency path (link channels plus
// forwarder goroutines) must preserve per-(src,dst) order even when arrival
// times collide.
func TestPerPairFIFOUnderLatency(t *testing.T) {
	const n = 300
	m := rtm.New(rtm.Config{
		TimeScale: 1e-6, // scheduled arrivals are all in the past: worst case for reordering
		Latency:   50 * substrate.Microsecond,
		PerByte:   10 * substrate.Nanosecond,
		Seed:      1,
	})
	var got []int
	m.Spawn("recv", func(ep substrate.Endpoint) {
		for len(got) < n {
			msg := ep.Recv(substrate.CatIdle)
			got = append(got, msg.Kind)
		}
	})
	m.Spawn("send", func(ep substrate.Endpoint) {
		for i := 0; i < n; i++ {
			ep.Send(&substrate.Msg{Dst: 0, Kind: i, Size: 64}, substrate.CatMessaging)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i, k := range got {
		if k != i {
			t.Fatalf("message %d arrived in position %d", k, i)
		}
	}
}

// TestPerSenderFIFODirectPath: with no injected latency messages are handed
// straight to the destination channel; each sender's order must still hold.
func TestPerSenderFIFODirectPath(t *testing.T) {
	const n = 200
	m := rtm.New(rtm.Config{TimeScale: 1e-3, Seed: 1})
	bySrc := map[int][]int{}
	m.Spawn("recv", func(ep substrate.Endpoint) {
		for total := 0; total < 2*n; total++ {
			msg := ep.Recv(substrate.CatIdle)
			bySrc[msg.Src] = append(bySrc[msg.Src], msg.Kind)
		}
	})
	for s := 1; s <= 2; s++ {
		m.Spawn("send", func(ep substrate.Endpoint) {
			for i := 0; i < n; i++ {
				ep.Send(&substrate.Msg{Dst: 0, Kind: i}, substrate.CatMessaging)
			}
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for src, ks := range bySrc {
		if len(ks) != n {
			t.Fatalf("src %d delivered %d of %d", src, len(ks), n)
		}
		for i, k := range ks {
			if k != i {
				t.Fatalf("src %d: message %d in position %d", src, k, i)
			}
		}
	}
}

// TestAdvanceChargesMeasuredTime: Advance must burn at least the requested
// virtual duration and charge what the monotonic clock measured.
func TestAdvanceChargesMeasuredTime(t *testing.T) {
	m := rtm.New(rtm.Config{TimeScale: 1e-3, Seed: 1})
	m.Spawn("p", func(ep substrate.Endpoint) {
		ep.Advance(20*substrate.Millisecond, substrate.CatCompute)
		ep.Advance(-substrate.Second, substrate.CatCompute) // non-positive: no-op
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Account(0)[substrate.CatCompute]; got < 20*substrate.Millisecond {
		t.Fatalf("compute charged %v, want >= 20ms", got)
	}
	if m.Makespan() < 20*substrate.Millisecond {
		t.Fatalf("makespan %v", m.Makespan())
	}
}

func TestWaitMsgForTimesOut(t *testing.T) {
	m := rtm.New(rtm.Config{TimeScale: 1e-3, Seed: 1})
	m.Spawn("lonely", func(ep substrate.Endpoint) {
		t0 := ep.Now()
		if ep.WaitMsgFor(10*substrate.Millisecond, substrate.CatIdle) {
			t.Error("reported a message on an empty network")
		}
		if el := ep.Now() - t0; el < 10*substrate.Millisecond {
			t.Errorf("returned after %v, before the deadline", el)
		}
		if ep.TryRecv(substrate.CatMessaging) != nil {
			t.Error("TryRecv returned a phantom message")
		}
		if got := ep.Account()[substrate.CatIdle]; got < 10*substrate.Millisecond {
			t.Errorf("idle charged %v", got)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTryRecvTagFiltering(t *testing.T) {
	m := rtm.New(rtm.Config{TimeScale: 1e-3, Seed: 1})
	m.Spawn("recv", func(ep substrate.Endpoint) {
		for ep.InboxLen() < 3 {
			ep.WaitMsgFor(substrate.Millisecond, substrate.CatIdle)
		}
		if !ep.HasMsg(substrate.TagSystem) {
			t.Error("system message not visible")
		}
		if msg := ep.TryRecvTag(substrate.TagSystem, substrate.CatMessaging); msg == nil || msg.Kind != 1 {
			t.Errorf("tag recv got %+v", msg)
		}
		if msg := ep.TryRecvTag(substrate.TagSystem, substrate.CatMessaging); msg != nil {
			t.Errorf("second tag recv got %+v", msg)
		}
		if a := ep.TryRecv(substrate.CatMessaging); a == nil || a.Kind != 0 {
			t.Errorf("app recv got %+v", a)
		}
	})
	m.Spawn("send", func(ep substrate.Endpoint) {
		ep.Send(&substrate.Msg{Dst: 0, Kind: 0, Tag: substrate.TagApp}, substrate.CatMessaging)
		ep.Send(&substrate.Msg{Dst: 0, Kind: 1, Tag: substrate.TagSystem}, substrate.CatMessaging)
		ep.Send(&substrate.Msg{Dst: 0, Kind: 2, Tag: substrate.TagApp}, substrate.CatMessaging)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestPanicTearsDownMachine: one processor panicking must surface as Run's
// error and release processors blocked in substrate calls.
func TestPanicTearsDownMachine(t *testing.T) {
	m := rtm.New(rtm.Config{TimeScale: 1e-3, Seed: 1})
	m.Spawn("waiter", func(ep substrate.Endpoint) {
		ep.WaitMsg(substrate.CatIdle) // would block forever
	})
	m.Spawn("bad", func(ep substrate.Endpoint) {
		panic("boom")
	})
	err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "bad") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

// TestStopKillsBlockedProcessors: Stop must unblock processors mid-Advance
// without reporting an error.
func TestStopKillsBlockedProcessors(t *testing.T) {
	m := rtm.New(rtm.Config{TimeScale: 1, Seed: 1})
	m.Spawn("sleeper", func(ep substrate.Endpoint) {
		ep.Advance(3600*substrate.Second, substrate.CatCompute) // an hour of wall-clock unless killed
	})
	m.Spawn("stopper", func(ep substrate.Endpoint) {
		m.Stop()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEndpointIdentity(t *testing.T) {
	m := rtm.New(rtm.Config{TimeScale: 1e-3, Seed: 42})
	m.Spawn("a", func(ep substrate.Endpoint) {
		if ep.ID() != 0 || ep.Name() != "a" || ep.NumPeers() != 2 {
			t.Errorf("identity: id=%d name=%q peers=%d", ep.ID(), ep.Name(), ep.NumPeers())
		}
		if ep.Rand() == nil {
			t.Error("nil rng")
		}
	})
	m.Spawn("b", func(ep substrate.Endpoint) {
		if ep.ID() != 1 || ep.Name() != "b" {
			t.Errorf("identity: id=%d name=%q", ep.ID(), ep.Name())
		}
	})
	if m.NumProcs() != 2 {
		t.Fatalf("NumProcs = %d", m.NumProcs())
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}
