//go:build race

package rtm_test

// raceDetector reports whether this test binary was built with -race.
// Instrumentation slows every memory access, so timing-sensitive tests
// scale their virtual clocks accordingly.
const raceDetector = true
