package rtm_test

import (
	"fmt"
	"testing"

	"prema/internal/bench"
	"prema/internal/core"
	"prema/internal/dmcs"
	"prema/internal/ilb"
	"prema/internal/mol"
	"prema/internal/policy"
	"prema/internal/rtm"
	"prema/internal/substrate"
)

// TestQuickstartTreeOnRealBackend runs the paper's Figure 2 tree traversal —
// the same application code as examples/quickstart — on the goroutine
// backend with implicit work stealing. Placement and timing race the host
// scheduler, but every node must be visited exactly once; under -race this
// also audits the whole PREMA stack for data races on a genuinely parallel
// substrate.
func TestQuickstartTreeOnRealBackend(t *testing.T) {
	const (
		procs     = 4
		treeDepth = 5
		nodeWork  = 10 * substrate.Millisecond
	)
	type treeNode struct {
		left, right mol.MobilePtr
	}
	cfg := rtm.DefaultConfig()
	cfg.Seed = 7
	m := rtm.New(cfg)
	total := 1<<(treeDepth+1) - 1
	visited := 0 // touched only by processor 0's goroutine
	for p := 0; p < procs; p++ {
		m.Spawn(fmt.Sprintf("p%d", p), func(ep substrate.Endpoint) {
			opts := core.DefaultOptions(ilb.Implicit)
			opts.LB.WaterMark = 0.1
			opts.Policy = policy.NewWorkStealing(policy.DefaultWSConfig())
			r := core.NewRuntime(ep, opts)

			var hDone dmcs.HandlerID
			hDone = r.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
				visited++
				if visited == total {
					r.StopAll()
				}
			})
			var hWork mol.HandlerID
			hWork = r.RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
				node := obj.Data.(*treeNode)
				if !node.left.IsNil() {
					r.Message(node.left, hWork, nil, 8, nodeWork.Seconds())
				}
				if !node.right.IsNil() {
					r.Message(node.right, hWork, nil, 8, nodeWork.Seconds())
				}
				r.Compute(nodeWork)
				r.Comm().SendTagged(0, hDone, nil, 8, substrate.TagApp)
			})
			if ep.ID() == 0 {
				var build func(depth int) mol.MobilePtr
				build = func(depth int) mol.MobilePtr {
					n := &treeNode{left: mol.Nil, right: mol.Nil}
					if depth < treeDepth {
						n.left = build(depth + 1)
						n.right = build(depth + 1)
					}
					return r.Register(n, 256)
				}
				root := build(0)
				r.Message(root, hWork, nil, 8, nodeWork.Seconds())
			}
			r.Run()
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if visited != total {
		t.Fatalf("visited %d of %d nodes", visited, total)
	}
	var compute substrate.Time
	for i := 0; i < procs; i++ {
		compute += m.Account(i)[substrate.CatCompute]
	}
	if want := substrate.Time(total) * nodeWork; compute < want {
		t.Fatalf("total compute %v < serial work %v", compute, want)
	}
}

// TestMicrobenchOnRealBackend drives the paper's synthetic microbenchmark
// through the backend-generic bench driver on the goroutine machine.
func TestMicrobenchOnRealBackend(t *testing.T) {
	w := bench.Workload{
		Procs:     4,
		Units:     24,
		HeavyFrac: 0.5,
		Heavy:     100 * substrate.Millisecond,
		Light:     50 * substrate.Millisecond,
		UnitBytes: 512,
		Seed:      3,
	}
	cfg := rtm.DefaultConfig()
	cfg.Seed = w.Seed
	res, err := bench.RunPremaOn(rtm.New(cfg), w, bench.DefaultPremaConfig(ilb.Implicit, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.System != "prema-implicit" {
		t.Fatalf("system %q", res.System)
	}
	// Advance never undershoots, so measured computation must cover the
	// nominal total work.
	if got, want := res.TotalCompute(), w.TotalWork().Seconds(); got < 0.99*want {
		t.Fatalf("total compute %.3fs < nominal work %.3fs", got, want)
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan %v", res.Makespan)
	}
	if _, ok := res.Counters["steal_requests"]; !ok {
		t.Fatalf("missing steal counters: %v", res.Counters)
	}
}
