// Package rtm is the real-time machine: a substrate backend that executes
// the PREMA stack with genuine parallelism. Each processor is a goroutine,
// the network is buffered channels with per-(src,dst) FIFO delivery and a
// configurable injected latency/bandwidth model, Compute burns scaled
// wall-clock (sleeping or spinning), and time accounting uses the host's
// monotonic clock.
//
// Where the discrete-event simulator (internal/sim) trades parallelism for
// byte-identical determinism, rtm trades determinism for real concurrency:
// runs race the host scheduler, so timings vary, but the PREMA protocol
// invariants (per-pair FIFO, in-order mobile-object delivery, migration
// transparency) must and do hold — the cross-backend conformance test and
// the race detector are the guards.
//
// Synchronization model: every endpoint's state is confined to its own
// goroutine; the only cross-goroutine edges are channel handoffs of *Msg
// values. A sender must not touch a message (or payload objects whose
// ownership it transfers, such as migrating mobile objects) after Send —
// the same discipline the shared-memory simulator relies on, here enforced
// by the race detector.
package rtm

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"prema/internal/substrate"
)

var errKilled = errors.New("rtm: processor killed")

// Config parameterizes a Machine.
type Config struct {
	// TimeScale is wall-clock seconds burned per virtual second. 1.0 runs
	// in real time; the default 1e-3 compresses a 1000-virtual-second
	// benchmark into about one wall second. Virtual durations whose scaled
	// wall equivalent is below the host's timer granularity (tens of
	// microseconds when sleeping) lose fidelity — lower TimeScale trades
	// accuracy for speed.
	TimeScale float64
	// Latency is the injected end-to-end latency for a zero-byte message,
	// in virtual time (same semantics as sim.NetworkConfig.Latency).
	Latency substrate.Time
	// PerByte is the injected transmission time per payload byte.
	PerByte substrate.Time
	// SendCPU and RecvCPU are per-message CPU occupancies burned on the
	// endpoints via Advance.
	SendCPU, RecvCPU substrate.Time
	// Spin selects busy-waiting instead of sleeping for Advance and the
	// latency forwarders. Spinning tracks short durations far more
	// accurately than the OS timer but occupies a host core per processor;
	// use it only when the machine fits the hardware.
	Spin bool
	// Seed seeds the per-endpoint random sources (Seed+ID each).
	Seed int64
	// ChanCap is the capacity of each delivery channel (per endpoint inbox
	// feed and per (src,dst) latency link). Defaults to 4096. A full
	// channel back-pressures the sender, so size it above the largest
	// plausible in-flight burst.
	ChanCap int
}

// DefaultConfig returns a configuration mirroring the simulator's Fast
// Ethernet model at a 1e-3 time scale.
func DefaultConfig() Config {
	return Config{
		TimeScale: 1e-3,
		Latency:   60 * substrate.Microsecond,
		PerByte:   80 * substrate.Nanosecond,
		SendCPU:   15 * substrate.Microsecond,
		RecvCPU:   15 * substrate.Microsecond,
	}
}

// Machine is a real-concurrency execution substrate. Create one with New,
// add processors with Spawn, then call Run; Run returns once every
// processor body has finished.
type Machine struct {
	cfg   Config
	eps   []*Endpoint
	links [][]chan *substrate.Msg // [src][dst], only when latency is injected

	start   time.Time
	stop    chan struct{}
	stopped sync.Once
	ran     bool

	mu  sync.Mutex
	err error
}

// New returns a machine with the given configuration.
func New(cfg Config) *Machine {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = DefaultConfig().TimeScale
	}
	if cfg.ChanCap <= 0 {
		cfg.ChanCap = 4096
	}
	return &Machine{cfg: cfg, stop: make(chan struct{})}
}

// Spawn adds a processor whose behaviour is body. All Spawn calls must
// precede Run; IDs are dense in spawn order.
func (m *Machine) Spawn(name string, body func(substrate.Endpoint)) {
	if m.ran {
		panic("rtm: Spawn after Run")
	}
	e := &Endpoint{
		m:    m,
		id:   len(m.eps),
		name: name,
		body: body,
		in:   make(chan *substrate.Msg, m.cfg.ChanCap),
		rng:  rand.New(rand.NewSource(m.cfg.Seed + int64(len(m.eps)))),
	}
	m.eps = append(m.eps, e)
}

// Endpoint returns processor i (for direct, backend-specific access).
func (m *Machine) Endpoint(i int) *Endpoint { return m.eps[i] }

// NumProcs implements substrate.Machine.
func (m *Machine) NumProcs() int { return len(m.eps) }

// Account implements substrate.Machine. Only read it after Run returns: the
// ledger is owned by the processor's goroutine while the machine runs.
func (m *Machine) Account(i int) *substrate.Account { return &m.eps[i].acct }

// Now returns virtual time elapsed since Run started.
func (m *Machine) Now() substrate.Time { return m.now() }

// Makespan returns the latest processor finish time (after Run).
func (m *Machine) Makespan() substrate.Time {
	var t substrate.Time
	for _, e := range m.eps {
		if e.finishedAt > t {
			t = e.finishedAt
		}
	}
	return t
}

// Stop tears the machine down early: processors blocked in (or next
// entering) a substrate call are killed, as in the simulator's teardown.
func (m *Machine) Stop() { m.kill(nil) }

func (m *Machine) kill(err error) {
	if err != nil {
		m.mu.Lock()
		if m.err == nil {
			m.err = err
		}
		m.mu.Unlock()
	}
	m.stopped.Do(func() { close(m.stop) })
}

// Run launches every processor goroutine, waits for all bodies to finish,
// and returns the first processor panic (if any) as an error.
func (m *Machine) Run() error {
	if m.ran {
		panic("rtm: Run called twice")
	}
	m.ran = true
	lat := m.cfg.Latency > 0 || m.cfg.PerByte > 0
	if lat {
		m.links = make([][]chan *substrate.Msg, len(m.eps))
		for src := range m.links {
			m.links[src] = make([]chan *substrate.Msg, len(m.eps))
		}
	}
	for _, e := range m.eps {
		e.lastArrival = make([]substrate.Time, len(m.eps))
	}
	m.start = time.Now()

	var wg sync.WaitGroup
	var fwd sync.WaitGroup
	if lat {
		for src := range m.links {
			for dst := range m.links[src] {
				ch := make(chan *substrate.Msg, m.cfg.ChanCap)
				m.links[src][dst] = ch
				fwd.Add(1)
				go m.forward(ch, m.eps[dst], &fwd)
			}
		}
	}
	for _, e := range m.eps {
		wg.Add(1)
		go func(e *Endpoint) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil && r != errKilled {
					m.kill(fmt.Errorf("rtm: processor %q panicked: %v\n%s", e.name, r, debug.Stack()))
				}
				e.finishedAt = m.now()
			}()
			e.body(e)
		}(e)
	}
	wg.Wait()
	m.stopped.Do(func() { close(m.stop) }) // release forwarders
	fwd.Wait()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// forward is the per-(src,dst) latency pipe: it preserves link FIFO order,
// holding each message until its arrival time before handing it to the
// destination inbox feed.
func (m *Machine) forward(ch chan *substrate.Msg, dst *Endpoint, fwd *sync.WaitGroup) {
	defer fwd.Done()
	for {
		select {
		case msg := <-ch:
			m.sleepUntil(msg.ArrivedAt, nil) // scheduled arrival, stamped by the sender
			if now := m.now(); now > msg.ArrivedAt {
				msg.ArrivedAt = now // the link backed up; record the real arrival
			}
			select {
			case dst.in <- msg:
			case <-m.stop:
				return
			}
		case <-m.stop:
			return
		}
	}
}

// now returns virtual time elapsed since Run started.
func (m *Machine) now() substrate.Time {
	return substrate.Time(float64(time.Since(m.start)) / m.cfg.TimeScale)
}

// wall converts a virtual duration to a wall-clock duration.
func (m *Machine) wall(v substrate.Time) time.Duration {
	return time.Duration(float64(v) * m.cfg.TimeScale)
}

// spinThreshold is the wall-clock horizon below which sleepUntil spins
// instead of sleeping. OS timers overshoot by up to a millisecond — a 100x
// error on the tens-of-microsecond waits an aggressive TimeScale produces —
// so the final stretch of every wait is spun to keep measured time honest.
const spinThreshold = 200 * time.Microsecond

// sleepUntil blocks until virtual time reaches target: it sleeps while the
// remaining wall-clock wait is long, then spins the last stretch (or spins
// throughout when the configuration demands it). A non-nil killed callback
// is invoked when the machine stops mid-wait (endpoints pass one that
// panics errKilled; forwarders pass nil and just return early).
func (m *Machine) sleepUntil(target substrate.Time, killed func()) {
	for {
		now := m.now()
		if now >= target {
			return
		}
		remaining := m.wall(target - now)
		if m.cfg.Spin || remaining <= spinThreshold {
			runtime.Gosched()
			select {
			case <-m.stop:
				if killed != nil {
					killed()
				}
				return
			default:
			}
			continue
		}
		t := time.NewTimer(remaining - spinThreshold)
		select {
		case <-t.C:
		case <-m.stop:
			t.Stop()
			if killed != nil {
				killed()
			}
			return
		}
	}
}
