// Package wire is the deterministic binary wire format of the PREMA stack:
// a payload codec registry (Kind → Encode/Decode over encoding/binary
// primitives), self-delimiting message frames, and a substrate machine
// decorator (Wrap) that proves every layer survives serialization by
// encoding each Msg at Send and delivering a freshly decoded copy.
//
// The format is fixed-width big-endian throughout — no varints, no
// reflection on the decode path — so encoding is canonical: equal values
// encode to equal bytes, and decode(encode(m)) == m for every registered
// payload. Decoders never panic on corrupt or truncated input; they report
// through Reader.Err. The codec spends no virtual time and uses no RNG, so
// a wire-wrapped run is byte-identical to a plain run (DESIGN.md §11).
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer accumulates the canonical encoding: fixed-width big-endian
// primitives appended to a growing buffer.
type Writer struct {
	buf []byte
}

// Buf returns the bytes written so far.
func (w *Writer) Buf() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset truncates the writer for reuse, keeping its capacity.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 writes a big-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }

// U32 writes a big-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }

// U64 writes a big-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// I32 writes a big-endian two's-complement int32.
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// I64 writes a big-endian two's-complement int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as 64 bits.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool writes one byte, 0 or 1.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// F64 writes an IEEE-754 float64.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes writes a uint32 length prefix followed by the bytes.
func (w *Writer) Bytes(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// Zeros appends n zero bytes (frame padding).
func (w *Writer) Zeros(n int) {
	for i := 0; i < n; i++ {
		w.buf = append(w.buf, 0)
	}
}

// Reader consumes a canonical encoding, tracking one sticky error: after
// the first failure every read returns a zero value and the error is
// reported by Err. Corrupt or truncated input therefore surfaces as an
// error, never a panic — the property FuzzFrameRoundTrip locks in.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps b for decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Fail records a decode error (first one wins).
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// take returns the next n bytes, or nil after recording a truncation error.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.Remaining() {
		r.Fail(fmt.Errorf("wire: truncated input: need %d bytes, have %d", n, r.Remaining()))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I32 reads a big-endian int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// I64 reads a big-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads a 64-bit int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool reads one byte; any value other than 0 or 1 is a decode error.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail(fmt.Errorf("wire: invalid bool byte"))
		return false
	}
}

// F64 reads an IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bytes reads a uint32 length prefix and that many bytes. The returned
// slice is a copy, so decoded values never alias the frame buffer; zero
// length decodes to nil (the canonical empty slice, so round trips are
// exact).
func (r *Reader) Bytes() []byte {
	n := int(r.U32())
	b := r.take(n)
	if b == nil || n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// Count reads a uint32 element count for a collection whose elements each
// occupy at least min encoded bytes, rejecting counts the remaining input
// cannot possibly hold — the bound that keeps hostile length prefixes from
// forcing huge allocations.
func (r *Reader) Count(min int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n < 0 || n*min > r.Remaining() {
		r.Fail(fmt.Errorf("wire: implausible element count %d (%d bytes remain)", n, r.Remaining()))
		return 0
	}
	return n
}
