package wire

import (
	"fmt"
	"reflect"
	"sort"
)

// Kind identifies a payload codec on the wire. Every payload type any layer
// hands to substrate.Msg.Data has exactly one Kind; the constants below are
// the single allocation authority, grouped in per-layer ranges so the
// depguard test in wire_test.go can keep the registry total. Application
// object data types register in the KindUser range (mol.RegisterDataCodec).
type Kind uint16

const (
	// Builtins (registered by this package).
	KindNil      Kind = 0 // untyped nil payload
	KindInt      Kind = 1
	KindBool     Kind = 2
	KindFloat64  Kind = 3
	KindBytes    Kind = 4 // []byte
	KindAnySlice Kind = 5 // []any (collective gathers)

	// dmcs: 16–31.
	KindDmcsAck Kind = 16 // reliable-mode cumulative ack

	// mol (the ilb layer sends exclusively through mol): 32–63.
	KindMolEnvelope      Kind = 32
	KindMolEnvelopeSlice Kind = 33 // []*mol.Envelope (migration extra: packed work units)
	KindMolMigration     Kind = 34
	KindMolLocation      Kind = 35
	KindMolGetRequest    Kind = 36
	KindMolGetReply      Kind = 37

	// recov: 64–79.
	KindRecovCheckpoint Kind = 64 // restore message (also carries replay log)

	// policy: 80–95.
	KindPolicySteal Kind = 80
	KindPolicyAd    Kind = 81
	KindPolicyClaim Kind = 82

	// coll: 96–111.
	KindCollContribution Kind = 96
	KindCollRelease      Kind = 97

	// dist (the multi-process TCP backend's session control plane): 112–127.
	KindDistHello     Kind = 112
	KindDistRoster    Kind = 113
	KindDistPeerHello Kind = 114
	KindDistReady     Kind = 115
	KindDistStart     Kind = 116
	KindDistDone      Kind = 117
	KindDistFin       Kind = 118
	KindDistReport    Kind = 119

	// KindUser is the first Kind available to application payload types
	// (mobile-object data registered via mol.RegisterDataCodec).
	KindUser Kind = 0x1000
)

// EncodeFunc serializes a payload value of the codec's registered type.
type EncodeFunc func(w *Writer, v any)

// DecodeFunc reconstructs a payload value; it must return the exact static
// type that was registered (receivers type-assert on it) and report corrupt
// input through r.Fail, never by panicking.
type DecodeFunc func(r *Reader) any

type codec struct {
	kind   Kind
	typ    reflect.Type
	sample any
	enc    EncodeFunc
	dec    DecodeFunc
}

var (
	byKind = map[Kind]*codec{}
	byType = map[reflect.Type]*codec{}
)

// Register installs a codec for sample's dynamic type under k. Sends of
// that type encode with enc; frames carrying k decode with dec. Register
// panics on a duplicate Kind or type — each payload type has one canonical
// encoding. It must be called from package init (the registry is read-only
// afterwards and is consulted concurrently without locks).
func Register(k Kind, sample any, enc EncodeFunc, dec DecodeFunc) {
	if sample == nil {
		panic("wire: Register needs a non-nil sample value (nil payloads are built in)")
	}
	t := reflect.TypeOf(sample)
	if _, dup := byKind[k]; dup {
		panic(fmt.Sprintf("wire: kind %d registered twice (%v)", k, t))
	}
	if c, dup := byType[t]; dup {
		panic(fmt.Sprintf("wire: type %v registered twice (kinds %d, %d)", t, c.kind, k))
	}
	c := &codec{kind: k, typ: t, sample: sample, enc: enc, dec: dec}
	byKind[k] = c
	byType[t] = c
}

// KindOf returns the Kind registered for v's dynamic type and whether one
// exists. nil is KindNil.
func KindOf(v any) (Kind, bool) {
	if v == nil {
		return KindNil, true
	}
	c, ok := byType[reflect.TypeOf(v)]
	if !ok {
		return 0, false
	}
	return c.kind, true
}

// RegisteredKinds returns every registered Kind in ascending order
// (including KindNil), for the registry-totality test.
func RegisteredKinds() []Kind {
	out := []Kind{KindNil}
	for k := range byKind {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Samples returns one sample value per registered codec, ordered by Kind —
// the seed material for round-trip and fuzz corpora.
func Samples() []any {
	ks := RegisteredKinds()
	out := make([]any, 0, len(ks))
	for _, k := range ks {
		if k == KindNil {
			out = append(out, nil)
			continue
		}
		out = append(out, byKind[k].sample)
	}
	return out
}

// EncodeAny writes v as a self-delimiting (kind, body) pair. It panics if
// v's type has no registered codec — an unregistered payload reaching a
// wire-wrapped Send is a programming error the decorator must not mask.
func EncodeAny(w *Writer, v any) {
	if v == nil {
		w.U16(uint16(KindNil))
		return
	}
	c, ok := byType[reflect.TypeOf(v)]
	if !ok {
		panic(fmt.Sprintf("wire: no codec registered for payload type %T", v))
	}
	w.U16(uint16(c.kind))
	c.enc(w, v)
}

// DecodeAny reads one (kind, body) pair written by EncodeAny. Unknown kinds
// and malformed bodies surface through r.Err.
func DecodeAny(r *Reader) any {
	k := Kind(r.U16())
	if r.Err() != nil {
		return nil
	}
	if k == KindNil {
		return nil
	}
	c, ok := byKind[k]
	if !ok {
		r.Fail(fmt.Errorf("wire: unknown payload kind %d", k))
		return nil
	}
	v := c.dec(r)
	if r.Err() != nil {
		return nil
	}
	return v
}

func init() {
	Register(KindInt, int(0),
		func(w *Writer, v any) { w.Int(v.(int)) },
		func(r *Reader) any { return r.Int() })
	Register(KindBool, false,
		func(w *Writer, v any) { w.Bool(v.(bool)) },
		func(r *Reader) any { return r.Bool() })
	Register(KindFloat64, float64(0),
		func(w *Writer, v any) { w.F64(v.(float64)) },
		func(r *Reader) any { return r.F64() })
	Register(KindBytes, []byte(nil),
		func(w *Writer, v any) { w.Bytes(v.([]byte)) },
		func(r *Reader) any { return r.Bytes() })
	Register(KindAnySlice, []any(nil),
		func(w *Writer, v any) {
			s := v.([]any)
			w.U32(uint32(len(s)))
			for _, e := range s {
				EncodeAny(w, e)
			}
		},
		func(r *Reader) any {
			n := r.Count(2) // each element is at least a kind u16
			if n == 0 {
				return []any(nil) // canonical empty slice, exact round trip
			}
			s := make([]any, n)
			for i := range s {
				s[i] = DecodeAny(r)
			}
			return s
		})
}
