// Package wire_test exercises the codec registry and the serialization
// loopback from outside, importing every message-producing layer so each
// layer's init-time codec registrations are in effect — exactly the set a
// wire-wrapped run sees.
package wire_test

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"

	"prema/internal/sim"
	"prema/internal/substrate"
	"prema/internal/wire"

	// Each stack layer registers its payload codecs at init; the blank
	// imports make this test's registry identical to a full run's.
	_ "prema/internal/coll"
	_ "prema/internal/dist"
	_ "prema/internal/dmcs"
	_ "prema/internal/mol"
	_ "prema/internal/policy"
	_ "prema/internal/recov"
)

// TestRegistryTotality is the depguard for the wire format: every payload
// kind any layer sends must be registered, and no kind may appear that this
// list does not know about. Adding a payload type to a layer without
// extending this list (and the Kind ranges in registry.go) fails here.
func TestRegistryTotality(t *testing.T) {
	want := []wire.Kind{
		wire.KindNil,
		wire.KindInt,
		wire.KindBool,
		wire.KindFloat64,
		wire.KindBytes,
		wire.KindAnySlice,
		wire.KindDmcsAck,
		wire.KindMolEnvelope,
		wire.KindMolEnvelopeSlice,
		wire.KindMolMigration,
		wire.KindMolLocation,
		wire.KindMolGetRequest,
		wire.KindMolGetReply,
		wire.KindRecovCheckpoint,
		wire.KindPolicySteal,
		wire.KindPolicyAd,
		wire.KindPolicyClaim,
		wire.KindCollContribution,
		wire.KindCollRelease,
		wire.KindDistHello,
		wire.KindDistRoster,
		wire.KindDistPeerHello,
		wire.KindDistReady,
		wire.KindDistStart,
		wire.KindDistDone,
		wire.KindDistFin,
		wire.KindDistReport,
	}
	got := wire.RegisteredKinds()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("registered kinds = %v, want %v", got, want)
	}
	for _, s := range wire.Samples() {
		k, ok := wire.KindOf(s)
		if !ok {
			t.Fatalf("sample %T has no kind", s)
		}
		if s == nil && k != wire.KindNil {
			t.Fatalf("nil sample maps to kind %d", k)
		}
	}
}

// TestFrameRoundTrip: decode(encode(m)) must reproduce m exactly — header
// fields and payload — for every registered payload kind, with and without
// modeled-size padding. ArrivedAt is transport-stamped and stays zero.
func TestFrameRoundTrip(t *testing.T) {
	for i, s := range wire.Samples() {
		m := &substrate.Msg{
			Src: i, Dst: i + 1, Kind: i - 2, Tag: i % 3,
			Data: s, Seq: uint64(i * 7), SentAt: substrate.Time(i * 1000),
		}
		_, plen := wire.EncodeMsg(m)
		for _, size := range []int{plen, plen + 13} { // exact fit, then padded
			m.Size = size
			frame, got := wire.EncodeMsg(m)
			if got != plen {
				t.Fatalf("%T: plen %d then %d", s, plen, got)
			}
			if want := 43 + max(plen, size); len(frame) != want {
				t.Fatalf("%T size=%d: frame %d bytes, want %d", s, size, len(frame), want)
			}
			dm, err := wire.DecodeMsg(frame)
			if err != nil {
				t.Fatalf("%T size=%d: decode: %v", s, size, err)
			}
			if !reflect.DeepEqual(dm, m) {
				t.Fatalf("%T size=%d: round trip diverged:\n got %#v\nwant %#v", s, size, dm, m)
			}
		}
	}
}

// TestDecodeRejects: corrupt frames must error, never panic, and never
// return a message.
func TestDecodeRejects(t *testing.T) {
	m := &substrate.Msg{Src: 1, Dst: 2, Tag: 1, Data: 42, Size: 10}
	frame, _ := wire.EncodeMsg(m)

	// Truncation at every prefix length.
	for n := 0; n < len(frame); n++ {
		if dm, err := wire.DecodeMsg(frame[:n]); err == nil {
			t.Fatalf("truncated frame (%d of %d bytes) decoded: %#v", n, len(frame), dm)
		}
	}

	corrupt := func(name string, mutate func(b []byte)) {
		b := append([]byte(nil), frame...)
		mutate(b)
		if dm, err := wire.DecodeMsg(b); err == nil {
			t.Fatalf("%s: decoded %#v", name, dm)
		}
	}
	corrupt("bad magic", func(b []byte) { b[0] = 0xFF })
	corrupt("bad version", func(b []byte) { b[2] = 99 })
	corrupt("unknown payload kind", func(b []byte) { b[43], b[44] = 0xBE, 0xEF })

	// Padding bytes must be zero: corrupt the last byte of a frame whose
	// modeled size exceeds its encoding.
	padded, plen := wire.EncodeMsg(&substrate.Msg{Src: 1, Dst: 2, Data: 42, Size: 64})
	if plen >= 64 {
		t.Fatalf("int payload encoded to %d bytes; padded-frame fixture needs Size > plen", plen)
	}
	padded[len(padded)-1] = 7
	if dm, err := wire.DecodeMsg(padded); err == nil {
		t.Fatalf("nonzero padding accepted: %#v", dm)
	}

	if dm, err := wire.DecodeMsg(append(append([]byte(nil), frame...), 0)); err == nil {
		t.Fatalf("trailing byte accepted: %#v", dm)
	}

	// A declared payload length larger than the frame must be rejected
	// before any allocation happens.
	b := append([]byte(nil), frame...)
	b[39], b[40], b[41], b[42] = 0x7F, 0xFF, 0xFF, 0xFF
	if dm, err := wire.DecodeMsg(b); err == nil {
		t.Fatalf("oversized plen accepted: %#v", dm)
	}
}

// TestWrapLoopback: a wire-wrapped machine delivers equal but non-aliased
// payloads, counts frames, and audits modeled sizes.
func TestWrapLoopback(t *testing.T) {
	m := wire.Wrap(sim.NewMachine(sim.Config{Seed: 1}))
	sent := []byte{1, 2, 3, 4}
	var got []byte
	m.Spawn("sender", func(ep substrate.Endpoint) {
		ep.Send(&substrate.Msg{Dst: 1, Tag: 1, Data: sent, Size: 16}, substrate.CatMessaging)
		// The loopback decoded a copy at Send, so mutating the sender's
		// buffer afterwards must not reach the receiver.
		sent[0] = 99
		ep.Send(&substrate.Msg{Dst: 1, Tag: 2, Data: 5, Size: 4}, substrate.CatMessaging) // drifts: int encodes to 10 > 4
	})
	m.Spawn("receiver", func(ep substrate.Endpoint) {
		msg := ep.Recv(substrate.CatIdle)
		got = msg.Data.([]byte)
		ep.Recv(substrate.CatIdle)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if want := []byte{1, 2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("receiver saw %v, want %v (payload aliased sender memory?)", got, want)
	}
	if m.Frames() != 2 {
		t.Fatalf("frames = %d, want 2", m.Frames())
	}
	if m.SizeDrift() != 1 {
		t.Fatalf("size drift = %d, want 1 (the undersized int send)", m.SizeDrift())
	}
	if m.WireBytes() == 0 {
		t.Fatal("wire bytes not counted")
	}
}

// TestWrapUnregisteredPanics: an unregistered payload type crossing a
// wire-wrapped Send is a programming error the loopback must surface, not
// silently pass through.
func TestWrapUnregisteredPanics(t *testing.T) {
	type rogue struct{ X int }
	m := wire.Wrap(sim.NewMachine(sim.Config{Seed: 1}))
	m.Spawn("p", func(ep substrate.Endpoint) {
		ep.Send(&substrate.Msg{Dst: 0, Data: rogue{1}, Size: 8}, substrate.CatMessaging)
	})
	err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "no codec registered") {
		t.Fatalf("Run() = %v, want the unregistered-payload panic", err)
	}
}

// TestAddrRouting: the default routing table places every processor on one
// node, and RouterOf finds it through the decorator chain.
func TestAddrRouting(t *testing.T) {
	m := wire.Wrap(sim.NewMachine(sim.Config{Seed: 1}))
	m.Spawn("a", func(ep substrate.Endpoint) {})
	m.Spawn("b", func(ep substrate.Endpoint) {})
	r := substrate.RouterOf(m)
	if n := r.NumNodes(); n != 1 {
		t.Fatalf("NumNodes = %d, want 1", n)
	}
	if a := r.AddrOf(1); a != (substrate.Addr{Node: 0, Proc: 1}) {
		t.Fatalf("AddrOf(1) = %+v", a)
	}
	if r2 := m.Router(); r2.NumNodes() != 1 {
		t.Fatalf("Machine.Router NumNodes = %d", r2.NumNodes())
	}
}

// TestReadFrame: the streaming decoder must frame a TCP byte stream exactly
// — consecutive frames in, clean io.EOF between them — and reject hostile
// input (bad magic, bad version, truncation, oversized declared lengths)
// with errors, the last *before* allocating what the header promises.
func TestReadFrame(t *testing.T) {
	m := &substrate.Msg{Src: 1, Dst: 2, Kind: 3, Tag: substrate.TagApp, Data: 42, Size: 64}
	frame, _ := wire.EncodeMsg(m)

	// Two frames back to back, then a clean end of stream.
	r := bytes.NewReader(append(append([]byte{}, frame...), frame...))
	for i := 0; i < 2; i++ {
		got, err := wire.ReadFrame(r, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, frame) {
			t.Fatalf("frame %d: bytes differ from the encoding", i)
		}
		dm, err := wire.DecodeMsg(got)
		if err != nil || dm.Src != 1 || dm.Dst != 2 || dm.Data != 42 {
			t.Fatalf("frame %d decoded to %+v, %v", i, dm, err)
		}
	}
	if _, err := wire.ReadFrame(r, 0); err != io.EOF {
		t.Fatalf("at stream end: err = %v, want io.EOF", err)
	}

	// Every mid-frame truncation is an error — and never a clean EOF past
	// the magic, so a dropped connection is distinguishable from a goodbye.
	for cut := 1; cut < len(frame); cut++ {
		_, err := wire.ReadFrame(bytes.NewReader(frame[:cut]), 0)
		if err == nil {
			t.Fatalf("cut at %d accepted", cut)
		}
		if cut >= 2 && err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}

	corrupt := func(mutate func([]byte)) error {
		b := append([]byte{}, frame...)
		mutate(b)
		_, err := wire.ReadFrame(bytes.NewReader(b), 0)
		return err
	}
	if err := corrupt(func(b []byte) { b[0] = 0xFF }); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: err = %v", err)
	}
	if err := corrupt(func(b []byte) { b[2] = 99 }); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version: err = %v", err)
	}

	// A header declaring a multi-gigabyte payload on a tiny stream must be
	// rejected by the length check, not by an allocation attempt.
	if err := corrupt(func(b []byte) {
		b[39], b[40], b[41], b[42] = 0x7F, 0xFF, 0xFF, 0xFF // plen field
	}); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized declared length: err = %v", err)
	}

	// An honest frame above the caller's limit is rejected too.
	if _, err := wire.ReadFrame(bytes.NewReader(frame), len(frame)-1); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("frame above caller limit: err = %v", err)
	}
}
