package wire

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"prema/internal/substrate"
)

// Machine is the serialization-enforcing loopback: a substrate decorator
// that encodes every outgoing Msg to its wire frame at Send and hands the
// transport a freshly decoded copy. Nothing downstream — the network, the
// receiver, a fault injector duplicating deliveries — can ever alias the
// sender's memory, which is the property a real distributed transport
// needs and a shared-memory Msg.Data can silently violate.
//
// Wrap composes with the other decorators; the canonical chain is
// trace.Wrap(faulty.Wrap(wire.Wrap(backend))) — wire innermost, so the
// fault injector and tracer observe exactly the (decoded) messages they
// would see on a plain run. The codec charges zero virtual time and uses
// no RNG, so a wrapped run is byte-identical to a plain one; the only cost
// is host CPU. Along the way every frame audits the modeled Msg.Size
// against the real encoding (SizeDrift, surfaced as the
// wire_size_drift_total metrics counter).
type Machine struct {
	inner substrate.Machine

	frames    atomic.Uint64 // frames encoded (= wrapped sends)
	wireBytes atomic.Uint64 // total frame bytes, padding included
	sizeDrift atomic.Uint64 // sends whose encoding exceeded modeled Size
}

// Wrap decorates m with the serialization loopback.
func Wrap(m substrate.Machine) *Machine { return &Machine{inner: m} }

// Unwrap returns the decorated machine (decorator-chain walking).
func (w *Machine) Unwrap() substrate.Machine { return w.inner }

// Frames returns the number of messages that crossed the wire codec.
func (w *Machine) Frames() uint64 { return w.frames.Load() }

// WireBytes returns the total encoded frame bytes, padding included.
func (w *Machine) WireBytes() uint64 { return w.wireBytes.Load() }

// SizeDrift returns the number of sends whose encoded payload exceeded the
// modeled Msg.Size — messages whose virtual transfer price undercounts the
// real byte volume. A zero-drift run means the cost model is honest.
func (w *Machine) SizeDrift() uint64 { return w.sizeDrift.Load() }

// Router exposes the inner machine's routing table (see substrate.RouterOf).
func (w *Machine) Router() substrate.Router { return substrate.RouterOf(w.inner) }

// Spawn implements substrate.Machine, interposing the codec endpoint.
func (w *Machine) Spawn(name string, body func(substrate.Endpoint)) {
	w.inner.Spawn(name, func(ep substrate.Endpoint) {
		body(&Endpoint{inner: ep, m: w})
	})
}

// Run implements substrate.Machine.
func (w *Machine) Run() error { return w.inner.Run() }

// Stop implements substrate.Machine.
func (w *Machine) Stop() { w.inner.Stop() }

// NumProcs implements substrate.Machine.
func (w *Machine) NumProcs() int { return w.inner.NumProcs() }

// Now implements substrate.Machine.
func (w *Machine) Now() substrate.Time { return w.inner.Now() }

// Makespan implements substrate.Machine.
func (w *Machine) Makespan() substrate.Time { return w.inner.Makespan() }

// Account implements substrate.Machine.
func (w *Machine) Account(i int) *substrate.Account { return w.inner.Account(i) }

// Endpoint is the per-processor codec interposer. Every method but Send
// delegates untouched.
type Endpoint struct {
	inner substrate.Endpoint
	m     *Machine
	enc   Writer // per-endpoint scratch buffer, reused across sends
}

// Send implements substrate.Endpoint: m is encoded to its wire frame,
// decoded back into a fresh Msg, and the copy — never m itself — is handed
// to the transport. Encoding panics on an unregistered payload type; a
// frame this endpoint produced failing to decode is an invariant violation
// and also panics (corrupt *external* input returns errors from DecodeMsg;
// here both ends are this process).
func (e *Endpoint) Send(m *substrate.Msg, cat substrate.Category) {
	e.enc.Reset()
	plen := AppendMsg(&e.enc, m)
	frame := e.enc.Buf()
	dm, err := DecodeMsg(frame)
	if err != nil {
		panic(fmt.Sprintf("wire: frame round trip failed for %T payload: %v", m.Data, err))
	}
	e.m.frames.Add(1)
	e.m.wireBytes.Add(uint64(len(frame)))
	if plen > m.Size {
		e.m.sizeDrift.Add(1)
	}
	e.inner.Send(dm, cat)
}

// Now implements substrate.Clock.
func (e *Endpoint) Now() substrate.Time { return e.inner.Now() }

// ID implements substrate.Endpoint.
func (e *Endpoint) ID() int { return e.inner.ID() }

// Name implements substrate.Endpoint.
func (e *Endpoint) Name() string { return e.inner.Name() }

// NumPeers implements substrate.Endpoint.
func (e *Endpoint) NumPeers() int { return e.inner.NumPeers() }

// Rand implements substrate.Endpoint.
func (e *Endpoint) Rand() *rand.Rand { return e.inner.Rand() }

// Account implements substrate.Endpoint.
func (e *Endpoint) Account() *substrate.Account { return e.inner.Account() }

// Charge implements substrate.Endpoint.
func (e *Endpoint) Charge(cat substrate.Category, d substrate.Time) { e.inner.Charge(cat, d) }

// Advance implements substrate.Endpoint.
func (e *Endpoint) Advance(d substrate.Time, cat substrate.Category) { e.inner.Advance(d, cat) }

// InboxLen implements substrate.Endpoint.
func (e *Endpoint) InboxLen() int { return e.inner.InboxLen() }

// HasMsg implements substrate.Endpoint.
func (e *Endpoint) HasMsg(tag int) bool { return e.inner.HasMsg(tag) }

// TryRecv implements substrate.Endpoint.
func (e *Endpoint) TryRecv(cat substrate.Category) *substrate.Msg { return e.inner.TryRecv(cat) }

// TryRecvTag implements substrate.Endpoint.
func (e *Endpoint) TryRecvTag(tag int, cat substrate.Category) *substrate.Msg {
	return e.inner.TryRecvTag(tag, cat)
}

// Recv implements substrate.Endpoint.
func (e *Endpoint) Recv(waitCat substrate.Category) *substrate.Msg { return e.inner.Recv(waitCat) }

// WaitMsg implements substrate.Endpoint.
func (e *Endpoint) WaitMsg(cat substrate.Category) { e.inner.WaitMsg(cat) }

// WaitMsgFor implements substrate.Endpoint.
func (e *Endpoint) WaitMsgFor(d substrate.Time, cat substrate.Category) bool {
	return e.inner.WaitMsgFor(d, cat)
}
