package wire_test

import (
	"bytes"
	"testing"

	"prema/internal/substrate"
	"prema/internal/wire"
)

// FuzzFrameRoundTrip locks in the decoder's two contracts: arbitrary input
// never panics (corrupt frames surface as errors), and any input the
// decoder does accept re-encodes and re-decodes to the same message — the
// format is canonical on its accepted set. The seed corpus is one encoded
// frame per registered payload kind (each layer's init has run via
// wire_test.go's imports), so the fuzzer starts from every valid shape and
// mutates toward the rejection boundaries.
func FuzzFrameRoundTrip(f *testing.F) {
	for i, s := range wire.Samples() {
		m := &substrate.Msg{
			Src: i, Dst: i + 1, Kind: i - 1, Tag: i % 3,
			Data: s, Seq: uint64(i), SentAt: substrate.Time(i * 100),
		}
		_, plen := wire.EncodeMsg(m)
		m.Size = plen
		exact, _ := wire.EncodeMsg(m)
		f.Add(exact)
		m.Size = plen + 11 // padded variant
		padded, _ := wire.EncodeMsg(m)
		f.Add(padded)
	}
	f.Add([]byte{})
	f.Add([]byte{0x50, 0x52, 1})

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := wire.DecodeMsg(b) // must not panic, whatever b holds
		if err != nil {
			return
		}
		// The accepted input may be non-canonical (map entries in any
		// order), but encoding the decoded message is canonical, so one
		// more decode/encode cycle must be a byte-level fixed point.
		// Byte comparison also sidesteps reflect.DeepEqual's NaN != NaN.
		f1, _ := wire.EncodeMsg(m)
		m2, err := wire.DecodeMsg(f1)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		f2, _ := wire.EncodeMsg(m2)
		if !bytes.Equal(f1, f2) {
			t.Fatalf("canonical encoding is not a fixed point:\n f1 %x\n f2 %x", f1, f2)
		}
	})
}
