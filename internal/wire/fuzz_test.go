package wire_test

import (
	"bytes"
	"testing"

	"prema/internal/substrate"
	"prema/internal/wire"
)

// FuzzFrameRoundTrip locks in the decoder's two contracts: arbitrary input
// never panics (corrupt frames surface as errors), and any input the
// decoder does accept re-encodes and re-decodes to the same message — the
// format is canonical on its accepted set. The seed corpus is one encoded
// frame per registered payload kind (each layer's init has run via
// wire_test.go's imports — including dist's session control plane, so the
// Hello/Roster/Done handshake payloads a node accepts from the network are
// seeded), so the fuzzer starts from every valid shape and mutates toward
// the rejection boundaries. The same inputs drive ReadFrame, the streaming
// entry point untrusted peers reach first: it must never panic and never
// return a frame above its length limit, no matter what the bytes declare.
func FuzzFrameRoundTrip(f *testing.F) {
	for i, s := range wire.Samples() {
		m := &substrate.Msg{
			Src: i, Dst: i + 1, Kind: i - 1, Tag: i % 3,
			Data: s, Seq: uint64(i), SentAt: substrate.Time(i * 100),
		}
		_, plen := wire.EncodeMsg(m)
		m.Size = plen
		exact, _ := wire.EncodeMsg(m)
		f.Add(exact)
		m.Size = plen + 11 // padded variant
		padded, _ := wire.EncodeMsg(m)
		f.Add(padded)
	}
	f.Add([]byte{})
	f.Add([]byte{0x50, 0x52, 1})

	f.Fuzz(func(t *testing.T, b []byte) {
		const maxFrame = 1 << 16
		if fr, err := wire.ReadFrame(bytes.NewReader(b), maxFrame); err == nil {
			if len(fr) > maxFrame {
				t.Fatalf("ReadFrame returned %d bytes past its %d limit", len(fr), maxFrame)
			}
			wire.DecodeMsg(fr) // an accepted frame must not panic the decoder
		}
		m, err := wire.DecodeMsg(b) // must not panic, whatever b holds
		if err != nil {
			return
		}
		// The accepted input may be non-canonical (map entries in any
		// order), but encoding the decoded message is canonical, so one
		// more decode/encode cycle must be a byte-level fixed point.
		// Byte comparison also sidesteps reflect.DeepEqual's NaN != NaN.
		f1, _ := wire.EncodeMsg(m)
		m2, err := wire.DecodeMsg(f1)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		f2, _ := wire.EncodeMsg(m2)
		if !bytes.Equal(f1, f2) {
			t.Fatalf("canonical encoding is not a fixed point:\n f1 %x\n f2 %x", f1, f2)
		}
	})
}
