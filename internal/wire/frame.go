package wire

import (
	"fmt"
	"io"

	"prema/internal/substrate"
)

// Frame layout (all fixed-width big-endian):
//
//	magic   u16  0x5052 "PR"
//	version u8   1
//	src     i32  sending processor rank
//	dst     i32  destination processor rank
//	kind    i32  substrate.Msg.Kind (dmcs handler id, or -1 for protocol acks)
//	tag     i32  substrate.Msg.Tag (TagApp / TagSystem)
//	size    i32  modeled payload size in bytes (prices virtual transfer time)
//	seq     u64  reliable-mode sequence number (0 when unsequenced)
//	sentAt  i64  substrate.Msg.SentAt (stamped by the transport, 0 pre-send)
//	plen    u32  encoded payload length
//	payload plen bytes: one EncodeAny (kind u16 + body)
//	padding max(0, size-plen) zero bytes
//
// The padding makes the on-wire payload occupy max(plen, size) bytes, so a
// frame's length reflects the *modeled* message volume whenever the model
// is honest — PR 10's TCP transport then carries exactly the byte volumes
// the simulator priced. plen > size is modeled-size drift; EncodeMsg
// reports it and wire.Machine counts it (wire_size_drift_total).
// ArrivedAt is deliberately absent: the receiving transport stamps it.
const (
	frameMagic   = 0x5052
	frameVersion = 1
	headerBytes  = 2 + 1 + 5*4 + 8 + 8 + 4
)

// DefaultMaxFrame is the frame length limit ReadFrame applies when the
// caller passes max <= 0. It comfortably fits every frame the stack
// produces (the largest shipped payloads are migration envelopes a few
// hundred KiB under pathological packing) while keeping a hostile peer's
// declared length from forcing a large allocation.
const DefaultMaxFrame = 1 << 20

// FrameLen computes a frame's total length (header + payload + padding)
// from its fixed-width header, without touching the payload. hdr must hold
// at least headerBytes bytes of a validated-magic frame; the length is
// derived from the size and plen fields exactly as AppendMsg lays them out.
func frameLen(hdr []byte) int {
	size := int(int32(uint32(hdr[19])<<24 | uint32(hdr[20])<<16 | uint32(hdr[21])<<8 | uint32(hdr[22])))
	plen := int(uint32(hdr[39])<<24 | uint32(hdr[40])<<16 | uint32(hdr[41])<<8 | uint32(hdr[42]))
	pad := size - plen
	if pad < 0 {
		pad = 0
	}
	return headerBytes + plen + pad
}

// ReadFrame reads exactly one self-delimiting frame from r and returns its
// bytes, ready for DecodeMsg. It validates the magic and version and
// enforces a maximum total frame length (max <= 0 selects DefaultMaxFrame)
// *before* allocating the payload buffer, so a malicious or corrupt peer
// can neither panic the reader nor force an allocation larger than the
// limit. io.EOF is returned untouched when the stream ends cleanly between
// frames; a stream ending mid-frame surfaces as io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var hdr [headerBytes]byte
	if _, err := io.ReadFull(r, hdr[:2]); err != nil {
		return nil, err
	}
	if magic := uint16(hdr[0])<<8 | uint16(hdr[1]); magic != frameMagic {
		return nil, fmt.Errorf("wire: bad frame magic %#04x", magic)
	}
	if _, err := io.ReadFull(r, hdr[2:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if v := hdr[2]; v != frameVersion {
		return nil, fmt.Errorf("wire: unsupported frame version %d", v)
	}
	total := frameLen(hdr[:])
	if total < headerBytes || total > max {
		return nil, fmt.Errorf("wire: frame length %d exceeds limit %d", total, max)
	}
	buf := make([]byte, total)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[headerBytes:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// AppendMsg encodes m as one self-delimiting frame into w and returns the
// encoded payload length (before padding), for size-drift auditing.
func AppendMsg(w *Writer, m *substrate.Msg) int {
	w.U16(frameMagic)
	w.U8(frameVersion)
	w.I32(int32(m.Src))
	w.I32(int32(m.Dst))
	w.I32(int32(m.Kind))
	w.I32(int32(m.Tag))
	w.I32(int32(m.Size))
	w.U64(m.Seq)
	w.I64(int64(m.SentAt))
	lenAt := w.Len()
	w.U32(0) // payload length, patched below
	EncodeAny(w, m.Data)
	plen := w.Len() - lenAt - 4
	buf := w.Buf()
	buf[lenAt] = byte(plen >> 24)
	buf[lenAt+1] = byte(plen >> 16)
	buf[lenAt+2] = byte(plen >> 8)
	buf[lenAt+3] = byte(plen)
	if pad := m.Size - plen; pad > 0 {
		w.Zeros(pad)
	}
	return plen
}

// EncodeMsg encodes m as one frame, returning the frame bytes and the
// encoded payload length (before padding).
func EncodeMsg(m *substrate.Msg) ([]byte, int) {
	var w Writer
	plen := AppendMsg(&w, m)
	return w.Buf(), plen
}

// DecodeMsg parses one frame into a fresh Msg sharing no memory with the
// sender's value. Corrupt, truncated, or trailing-garbage input returns an
// error; it never panics. ArrivedAt is left zero for the transport to
// stamp on delivery.
func DecodeMsg(b []byte) (*substrate.Msg, error) {
	r := NewReader(b)
	if magic := r.U16(); r.Err() == nil && magic != frameMagic {
		return nil, fmt.Errorf("wire: bad frame magic %#04x", magic)
	}
	if v := r.U8(); r.Err() == nil && v != frameVersion {
		return nil, fmt.Errorf("wire: unsupported frame version %d", v)
	}
	m := &substrate.Msg{}
	m.Src = int(r.I32())
	m.Dst = int(r.I32())
	m.Kind = int(r.I32())
	m.Tag = int(r.I32())
	m.Size = int(r.I32())
	m.Seq = r.U64()
	m.SentAt = substrate.Time(r.I64())
	plen := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if plen > r.Remaining() {
		return nil, fmt.Errorf("wire: payload length %d exceeds frame (%d bytes remain)", plen, r.Remaining())
	}
	payloadEnd := headerBytes + plen
	m.Data = DecodeAny(r)
	if r.Err() != nil {
		return nil, r.Err()
	}
	if got := len(b) - r.Remaining(); got != payloadEnd {
		return nil, fmt.Errorf("wire: payload codec consumed %d bytes, frame declared %d", got-headerBytes, plen)
	}
	if pad := m.Size - plen; pad > 0 {
		for _, z := range r.take(pad) {
			if z != 0 {
				return nil, fmt.Errorf("wire: nonzero padding byte")
			}
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after frame", r.Remaining())
	}
	return m, nil
}
