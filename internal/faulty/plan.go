// Package faulty is a fault-injecting decorator for execution substrates.
// It wraps any substrate.Machine (the deterministic simulator or the
// real-concurrency goroutine machine) and perturbs it according to a
// declarative Plan: per-(src,dst)-link message drop, duplication, extra
// delay, and reordering probabilities, plus scheduled processor stall
// windows and crash-at-time events.
//
// All injection decisions are drawn from seeded per-endpoint random streams,
// so on the simulator a faulted run is exactly as reproducible as a clean
// one: the same seed produces a byte-identical report. The decorator sits
// entirely at the substrate seam — the PREMA stack above it (dmcs, mol, ilb,
// core) cannot tell a faulty machine from a lossy physical network, which is
// precisely the point: the reliable-delivery protocol in dmcs is validated
// against this layer.
package faulty

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"prema/internal/substrate"
)

// LinkFaults is the fault model of one directed (src,dst) link. All
// probabilities are per message in [0,1] and are evaluated independently at
// the receiving endpoint, in the order drop, duplicate, delay, reorder.
type LinkFaults struct {
	// Drop is the probability a message is silently discarded.
	Drop float64
	// Dup is the probability a message is delivered twice.
	Dup float64
	// Delay is the probability a message is held for an extra uniformly
	// distributed duration in (0, DelayMax].
	Delay float64
	// DelayMax is the maximum extra delay; it defaults to 10ms when Delay is
	// set and DelayMax is not.
	DelayMax substrate.Time
	// Reorder is the probability a message is displaced behind up to
	// ReorderDepth later-arriving messages on the same endpoint.
	Reorder float64
	// ReorderDepth is the maximum displacement; it defaults to 4 when
	// Reorder is set and ReorderDepth is not.
	ReorderDepth int
}

// active reports whether this link injects any fault at all.
func (lf LinkFaults) active() bool {
	return lf.Drop > 0 || lf.Dup > 0 || lf.Delay > 0 || lf.Reorder > 0
}

// withDefaults fills the magnitude fields implied by set probabilities.
func (lf LinkFaults) withDefaults() LinkFaults {
	if lf.Delay > 0 && lf.DelayMax <= 0 {
		lf.DelayMax = 10 * substrate.Millisecond
	}
	if lf.Reorder > 0 && lf.ReorderDepth <= 0 {
		lf.ReorderDepth = 4
	}
	return lf
}

// Link names a directed (src,dst) processor pair.
type Link struct{ Src, Dst int }

// Stall schedules a processor freeze: at the first substrate call at or
// after At, processor Proc consumes For of time doing nothing (charged to
// CatIdle), modeling an OS-level stall, page fault storm, or GC pause.
type Stall struct {
	Proc int
	At   substrate.Time
	For  substrate.Time
}

// Crash schedules a fail-stop: at the first substrate call at or after At,
// processor Proc's body is torn down. The processor sends and receives
// nothing afterwards; the rest of the machine keeps running.
type Crash struct {
	Proc int
	At   substrate.Time
}

// Recover schedules a crashed processor's rejoin: at time At the processor
// comes back as a fresh incarnation — empty inbox (everything queued while it
// was down is lost), fresh protocol state — running the body installed with
// Machine.OnRejoin. A Recover without a preceding Crash for the same
// processor is a plan validation error; see Plan.Validate.
type Recover struct {
	Proc int
	At   substrate.Time
}

// Plan is a declarative fault schedule for a whole machine.
type Plan struct {
	// Default applies to every link without an explicit override.
	Default LinkFaults
	// Links overrides the model per directed link.
	Links map[Link]LinkFaults
	// Stalls are scheduled processor freezes.
	Stalls []Stall
	// Crashes are scheduled fail-stops.
	Crashes []Crash
	// Recovers are scheduled rejoins of crashed processors.
	Recovers []Recover
}

// Active reports whether the plan injects anything at all. Wrapping a
// machine with an inactive plan is a semantic no-op (but still interposes).
func (p Plan) Active() bool {
	if p.Default.active() || len(p.Stalls) > 0 || len(p.Crashes) > 0 || len(p.Recovers) > 0 {
		return true
	}
	for _, lf := range p.Links {
		if lf.active() {
			return true
		}
	}
	return false
}

// faultsFor resolves the fault model of one directed link.
func (p Plan) faultsFor(src, dst int) LinkFaults {
	if lf, ok := p.Links[Link{src, dst}]; ok {
		return lf.withDefaults()
	}
	return p.Default.withDefaults()
}

// String renders the plan in the compact form ParsePlan accepts.
func (p Plan) String() string {
	var parts []string
	if s := renderLink(p.Default); s != "" {
		parts = append(parts, s)
	}
	links := make([]Link, 0, len(p.Links))
	for l := range p.Links {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].Src != links[j].Src {
			return links[i].Src < links[j].Src
		}
		return links[i].Dst < links[j].Dst
	})
	for _, l := range links {
		parts = append(parts, fmt.Sprintf("link:%d-%d:%s", l.Src, l.Dst, renderLink(p.Links[l])))
	}
	for _, s := range p.Stalls {
		parts = append(parts, fmt.Sprintf("stall:%d@%s+%s", s.Proc, renderDur(s.At), renderDur(s.For)))
	}
	for _, c := range p.Crashes {
		parts = append(parts, fmt.Sprintf("crash:%d@%s", c.Proc, renderDur(c.At)))
	}
	for _, r := range p.Recovers {
		parts = append(parts, fmt.Sprintf("recover:%d@%s", r.Proc, renderDur(r.At)))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ";")
}

func renderLink(lf LinkFaults) string {
	var fs []string
	if lf.Drop > 0 {
		fs = append(fs, fmt.Sprintf("drop=%g", lf.Drop))
	}
	if lf.Dup > 0 {
		fs = append(fs, fmt.Sprintf("dup=%g", lf.Dup))
	}
	if lf.Delay > 0 {
		fs = append(fs, fmt.Sprintf("delay=%g:%s", lf.Delay, renderDur(lf.DelayMax)))
	}
	if lf.Reorder > 0 {
		fs = append(fs, fmt.Sprintf("reorder=%g:%d", lf.Reorder, lf.ReorderDepth))
	}
	return strings.Join(fs, ",")
}

func renderDur(t substrate.Time) string { return t.Duration().String() }

// ParsePlan parses the compact fault-plan syntax used by the -fault-plan
// command line flags. Semicolon-separated clauses:
//
//	drop=P,dup=P,delay=P:DUR,reorder=P:DEPTH   default link model
//	link:SRC-DST:drop=P,...                    one directed link's override
//	stall:PROC@AT+FOR                          e.g. stall:2@5s+500ms
//	crash:PROC@AT                              e.g. crash:7@20s
//	recover:PROC@AT                            e.g. recover:7@40s
//
// Durations use Go syntax ("10ms", "5s"). "none" or "" parses to the empty
// plan. The parsed plan is checked with Validate, so crash/recover schedules
// that make no sense (a rejoin with no preceding crash) are rejected here.
func ParsePlan(s string) (Plan, error) {
	p := Plan{}
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return p, nil
	}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		switch {
		case strings.HasPrefix(clause, "link:"):
			rest := clause[len("link:"):]
			head, model, ok := strings.Cut(rest, ":")
			if !ok {
				return p, fmt.Errorf("faulty: link clause %q wants link:SRC-DST:faults", clause)
			}
			ss, ds, ok := strings.Cut(head, "-")
			if !ok {
				return p, fmt.Errorf("faulty: link endpoints %q want SRC-DST", head)
			}
			src, err1 := strconv.Atoi(ss)
			dst, err2 := strconv.Atoi(ds)
			if err1 != nil || err2 != nil || src < 0 || dst < 0 {
				return p, fmt.Errorf("faulty: bad link endpoints %q", head)
			}
			lf, err := parseLinkFaults(model)
			if err != nil {
				return p, err
			}
			if p.Links == nil {
				p.Links = make(map[Link]LinkFaults)
			}
			p.Links[Link{src, dst}] = lf
		case strings.HasPrefix(clause, "stall:"):
			rest := clause[len("stall:"):]
			procS, when, ok := strings.Cut(rest, "@")
			if !ok {
				return p, fmt.Errorf("faulty: stall clause %q wants stall:PROC@AT+FOR", clause)
			}
			atS, forS, ok := strings.Cut(when, "+")
			if !ok {
				return p, fmt.Errorf("faulty: stall clause %q wants stall:PROC@AT+FOR", clause)
			}
			proc, err := strconv.Atoi(procS)
			if err != nil || proc < 0 {
				return p, fmt.Errorf("faulty: bad stall processor %q", procS)
			}
			at, err := parseDur(atS)
			if err != nil {
				return p, err
			}
			dur, err := parseDur(forS)
			if err != nil {
				return p, err
			}
			p.Stalls = append(p.Stalls, Stall{Proc: proc, At: at, For: dur})
		case strings.HasPrefix(clause, "crash:"):
			rest := clause[len("crash:"):]
			procS, atS, ok := strings.Cut(rest, "@")
			if !ok {
				return p, fmt.Errorf("faulty: crash clause %q wants crash:PROC@AT", clause)
			}
			proc, err := strconv.Atoi(procS)
			if err != nil || proc < 0 {
				return p, fmt.Errorf("faulty: bad crash processor %q", procS)
			}
			at, err := parseDur(atS)
			if err != nil {
				return p, err
			}
			p.Crashes = append(p.Crashes, Crash{Proc: proc, At: at})
		case strings.HasPrefix(clause, "recover:"):
			rest := clause[len("recover:"):]
			procS, atS, ok := strings.Cut(rest, "@")
			if !ok {
				return p, fmt.Errorf("faulty: recover clause %q wants recover:PROC@AT", clause)
			}
			proc, err := strconv.Atoi(procS)
			if err != nil || proc < 0 {
				return p, fmt.Errorf("faulty: bad recover processor %q", procS)
			}
			at, err := parseDur(atS)
			if err != nil {
				return p, err
			}
			p.Recovers = append(p.Recovers, Recover{Proc: proc, At: at})
		default:
			lf, err := parseLinkFaults(clause)
			if err != nil {
				return p, err
			}
			p.Default = lf
		}
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// Validate checks the crash/recover schedule for internal consistency: per
// processor, crashes and recovers must strictly alternate starting with a
// crash (crash[0] < recover[0] < crash[1] < recover[1] < ...), and there can
// be at most one recover per crash. Link and stall clauses are always valid.
func (p Plan) Validate() error {
	crashes := map[int][]substrate.Time{}
	for _, c := range p.Crashes {
		crashes[c.Proc] = append(crashes[c.Proc], c.At)
	}
	recovers := map[int][]substrate.Time{}
	procs := []int{}
	for _, r := range p.Recovers {
		if len(recovers[r.Proc]) == 0 {
			procs = append(procs, r.Proc)
		}
		recovers[r.Proc] = append(recovers[r.Proc], r.At)
	}
	sort.Ints(procs)
	for _, proc := range procs {
		rs := recovers[proc]
		cs := crashes[proc]
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
		sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
		if len(rs) > len(cs) {
			return fmt.Errorf("faulty: %d recover entries for processor %d but only %d crashes", len(rs), proc, len(cs))
		}
		for i, rt := range rs {
			if rt <= cs[i] {
				return fmt.Errorf("faulty: recover:%d@%s is not after its crash at %s", proc, renderDur(rt), renderDur(cs[i]))
			}
			if i+1 < len(cs) && rt >= cs[i+1] {
				return fmt.Errorf("faulty: recover:%d@%s is not before the next crash at %s", proc, renderDur(rt), renderDur(cs[i+1]))
			}
		}
	}
	return nil
}

func parseLinkFaults(s string) (LinkFaults, error) {
	var lf LinkFaults
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return lf, fmt.Errorf("faulty: fault field %q wants key=value", field)
		}
		switch key {
		case "drop":
			if err := parseProb(val, &lf.Drop); err != nil {
				return lf, err
			}
		case "dup":
			if err := parseProb(val, &lf.Dup); err != nil {
				return lf, err
			}
		case "delay":
			ps, ds, hasMax := strings.Cut(val, ":")
			if err := parseProb(ps, &lf.Delay); err != nil {
				return lf, err
			}
			if hasMax {
				d, err := parseDur(ds)
				if err != nil {
					return lf, err
				}
				lf.DelayMax = d
			}
		case "reorder":
			ps, ds, hasDepth := strings.Cut(val, ":")
			if err := parseProb(ps, &lf.Reorder); err != nil {
				return lf, err
			}
			if hasDepth {
				n, err := strconv.Atoi(ds)
				if err != nil || n < 1 {
					return lf, fmt.Errorf("faulty: bad reorder depth %q", ds)
				}
				lf.ReorderDepth = n
			}
		default:
			return lf, fmt.Errorf("faulty: unknown fault %q (want drop, dup, delay, reorder)", key)
		}
	}
	return lf.withDefaults(), nil
}

func parseProb(s string, out *float64) error {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 || v > 1 {
		return fmt.Errorf("faulty: bad probability %q (want [0,1])", s)
	}
	*out = v
	return nil
}

func parseDur(s string) (substrate.Time, error) {
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil || d < 0 {
		return 0, fmt.Errorf("faulty: bad duration %q", s)
	}
	return substrate.FromDuration(d), nil
}
