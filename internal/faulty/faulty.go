package faulty

import (
	"math/rand"
	"sort"

	"prema/internal/substrate"
)

// errCrashed tears down a crashed processor's body; the Spawn wrapper
// recovers it so the rest of the machine keeps running.
type crashSignal struct{ proc int }

// Stats counts the faults one endpoint injected. Read it after Run.
type Stats struct {
	Dropped   int
	Dupped    int
	Delayed   int
	Reordered int
	Stalls    int
	Crashed   bool
	Rejoins   int
}

// Add accumulates another endpoint's stats.
func (s *Stats) Add(o Stats) {
	s.Dropped += o.Dropped
	s.Dupped += o.Dupped
	s.Delayed += o.Delayed
	s.Reordered += o.Reordered
	s.Stalls += o.Stalls
	if o.Crashed {
		s.Crashed = true
	}
	s.Rejoins += o.Rejoins
}

// Machine decorates an inner substrate.Machine with deterministic fault
// injection. Build one with Wrap, then use it exactly like the inner
// machine.
type Machine struct {
	inner    substrate.Machine
	plan     Plan
	seed     int64
	eps      []*Endpoint
	onRejoin func(id int) func(substrate.Endpoint)
}

// OnRejoin installs the factory that produces a rejoined processor's body.
// When the plan schedules a `recover:` entry for a crashed processor, the
// Spawn wrapper calls fn(id) at the rejoin time and runs the returned body
// against the same (reset) fault-injecting endpoint — a fresh incarnation
// with an empty inbox. Without a factory, `recover:` entries are ignored and
// a crash stays permanent. Call before Run.
func (f *Machine) OnRejoin(fn func(id int) func(substrate.Endpoint)) { f.onRejoin = fn }

// Wrap returns a fault-injecting view of m. seed drives every injection
// decision: each endpoint derives its own stream (seed+ID), so faulted runs
// on the deterministic simulator are themselves deterministic, and faulted
// runs on the goroutine machine never share unsynchronized state.
func Wrap(m substrate.Machine, plan Plan, seed int64) *Machine {
	return &Machine{inner: m, plan: plan, seed: seed}
}

// Spawn implements substrate.Machine. The body runs against a fault-
// injecting endpoint; a scheduled crash unwinds the body early (recovered
// here), modeling a fail-stop processor while the machine keeps running.
func (f *Machine) Spawn(name string, body func(substrate.Endpoint)) {
	id := len(f.eps)
	fe := &Endpoint{
		f:   f,
		id:  id,
		rng: rand.New(rand.NewSource(f.seed + int64(id))),
	}
	for _, s := range f.plan.Stalls {
		if s.Proc == id {
			fe.stalls = append(fe.stalls, s)
		}
	}
	sort.Slice(fe.stalls, func(i, j int) bool { return fe.stalls[i].At < fe.stalls[j].At })
	fe.crashAt = -1
	for _, c := range f.plan.Crashes {
		if c.Proc == id && (fe.crashAt < 0 || c.At < fe.crashAt) {
			fe.crashAt = c.At
		}
	}
	for _, r := range f.plan.Recovers {
		if r.Proc == id {
			fe.rejoins = append(fe.rejoins, r)
		}
	}
	sort.Slice(fe.rejoins, func(i, j int) bool { return fe.rejoins[i].At < fe.rejoins[j].At })
	f.eps = append(f.eps, fe)
	f.inner.Spawn(name, func(ep substrate.Endpoint) {
		fe.inner = ep
		runBody(id, func() { body(fe) })
		// Scheduled rejoins: each crash may be followed by one fresh
		// incarnation running the OnRejoin body.
		for fe.crashed && f.onRejoin != nil {
			t, ok := fe.popRejoin()
			if !ok {
				return
			}
			fe.rejoin(t)
			runBody(id, func() { f.onRejoin(id)(fe) })
		}
	})
}

// runBody runs one incarnation of processor id's body, absorbing the
// crashSignal panic that models its fail-stop (the machine keeps running).
func runBody(id int, body func()) {
	defer func() {
		if r := recover(); r != nil {
			if cs, ok := r.(crashSignal); ok && cs.proc == id {
				return
			}
			panic(r)
		}
	}()
	body()
}

// Run implements substrate.Machine.
func (f *Machine) Run() error { return f.inner.Run() }

// Stop implements substrate.Machine.
func (f *Machine) Stop() { f.inner.Stop() }

// NumProcs implements substrate.Machine.
func (f *Machine) NumProcs() int { return f.inner.NumProcs() }

// Now implements substrate.Machine.
func (f *Machine) Now() substrate.Time { return f.inner.Now() }

// Makespan implements substrate.Machine.
func (f *Machine) Makespan() substrate.Time { return f.inner.Makespan() }

// Account implements substrate.Machine.
func (f *Machine) Account(i int) *substrate.Account { return f.inner.Account(i) }

// Stats returns the machine-wide injection totals. Only read it after Run.
func (f *Machine) Stats() Stats {
	var t Stats
	for _, e := range f.eps {
		t.Add(e.stats)
	}
	return t
}

// EndpointStats returns processor i's injection counts (after Run).
func (f *Machine) EndpointStats(i int) Stats { return f.eps[i].stats }

var _ substrate.Machine = (*Machine)(nil)

// held is one message captured from the inner endpoint, with its faulty-layer
// release schedule.
type held struct {
	m *substrate.Msg
	// release is the earliest time the message may be handed to the
	// application (zero = immediately).
	release substrate.Time
	// order ranks deliverable messages; reordering bumps it past
	// later arrivals.
	order uint64
}

// Endpoint decorates one processor's substrate.Endpoint. Faults are applied
// on the receive side, as messages are drained from the inner endpoint:
// drop discards, duplicate enqueues twice, delay holds a message beyond its
// network arrival, reorder displaces it behind later arrivals. This keeps
// every decision on the endpoint's own execution context, so injection is
// deterministic on the simulator and race-free on the goroutine machine.
type Endpoint struct {
	f     *Machine
	inner substrate.Endpoint
	id    int
	rng   *rand.Rand

	queue   []held
	nextOrd uint64

	stalls  []Stall // sorted by At; applied and popped in order
	crashAt substrate.Time
	crashed bool
	rejoins []Recover // sorted by At; popped at each rejoin
	stats   Stats
}

// popRejoin consumes the next scheduled rejoin, clamped to the present (a
// rejoin time already in the past fires immediately).
func (e *Endpoint) popRejoin() (substrate.Time, bool) {
	if len(e.rejoins) == 0 {
		return 0, false
	}
	t := e.rejoins[0].At
	e.rejoins = e.rejoins[1:]
	if now := e.inner.Now(); t < now {
		t = now
	}
	return t, true
}

// rejoin resets the endpoint to a fresh incarnation at time t: the clock
// idles forward to t (the processor was down), everything queued at the
// inner endpoint or held by the fault layer while it was dead is discarded
// (a fail-stop loses its inbox), and the crash/stall schedules are re-armed
// for the new incarnation.
func (e *Endpoint) rejoin(t substrate.Time) {
	if d := t - e.inner.Now(); d > 0 {
		e.inner.Advance(d, substrate.CatIdle)
	}
	for e.inner.InboxLen() > 0 {
		if e.inner.TryRecv(substrate.CatMessaging) == nil {
			break
		}
	}
	e.queue = nil
	e.crashed = false
	e.stats.Rejoins++
	e.crashAt = -1
	for _, c := range e.f.plan.Crashes {
		if c.Proc == e.id && c.At > t && (e.crashAt < 0 || c.At < e.crashAt) {
			e.crashAt = c.At
		}
	}
	for len(e.stalls) > 0 && e.stalls[0].At <= t {
		e.stalls = e.stalls[1:]
	}
}

var _ substrate.Endpoint = (*Endpoint)(nil)

// Inner returns the wrapped endpoint (for tests and backend-specific use).
func (e *Endpoint) Inner() substrate.Endpoint { return e.inner }

// Stats returns this endpoint's injection counts.
func (e *Endpoint) Stats() Stats { return e.stats }

// check fires due crash and stall events. Every interposed method calls it,
// so scheduled faults take effect at the processor's next substrate
// interaction after their time arrives.
func (e *Endpoint) check() {
	now := e.inner.Now()
	if e.crashAt >= 0 && !e.crashed && now >= e.crashAt {
		e.crashed = true
		e.stats.Crashed = true
		panic(crashSignal{proc: e.id})
	}
	for len(e.stalls) > 0 && now >= e.stalls[0].At {
		s := e.stalls[0]
		e.stalls = e.stalls[1:]
		e.stats.Stalls++
		e.inner.Advance(s.For, substrate.CatIdle)
		now = e.inner.Now()
	}
}

// pump drains every message buffered at the inner endpoint, applying the
// link fault model message by message.
func (e *Endpoint) pump() {
	for e.inner.InboxLen() > 0 {
		m := e.inner.TryRecv(substrate.CatMessaging)
		if m == nil {
			return
		}
		lf := e.f.plan.faultsFor(m.Src, e.id)
		if m.Src == e.id || !lf.active() {
			// Loopback traffic never crosses a wire; deliver untouched.
			e.enqueue(m, 0)
			continue
		}
		if lf.Drop > 0 && e.rng.Float64() < lf.Drop {
			e.stats.Dropped++
			continue
		}
		dup := lf.Dup > 0 && e.rng.Float64() < lf.Dup
		var release substrate.Time
		if lf.Delay > 0 && e.rng.Float64() < lf.Delay {
			e.stats.Delayed++
			release = e.inner.Now() + 1 + substrate.Time(e.rng.Int63n(int64(lf.DelayMax)))
		}
		reorder := lf.Reorder > 0 && e.rng.Float64() < lf.Reorder
		var bump uint64
		if reorder {
			e.stats.Reordered++
			bump = uint64(1+e.rng.Intn(lf.ReorderDepth)) * 2
		}
		e.enqueue(m, release)
		if bump > 0 {
			e.queue[len(e.queue)-1].order += bump
		}
		if dup {
			e.stats.Dupped++
			cp := *m
			e.enqueue(&cp, release)
		}
	}
}

func (e *Endpoint) enqueue(m *substrate.Msg, release substrate.Time) {
	ord := e.nextOrd
	e.nextOrd += 2 // even spacing leaves odd slots for reorder bumps
	e.queue = append(e.queue, held{m: m, release: release, order: ord})
}

// pickDeliverable returns the index of the next message the application may
// receive (lowest order among released messages, optionally filtered by
// tag), or -1.
func (e *Endpoint) pickDeliverable(tag int, anyTag bool) int {
	now := e.inner.Now()
	best := -1
	for i, h := range e.queue {
		if h.release > now {
			continue
		}
		if !anyTag && h.m.Tag != tag {
			continue
		}
		if best < 0 || h.order < e.queue[best].order {
			best = i
		}
	}
	return best
}

// nextRelease returns the earliest pending release time among held messages
// still in the future, or 0 if none.
func (e *Endpoint) nextRelease() substrate.Time {
	now := e.inner.Now()
	var t substrate.Time
	for _, h := range e.queue {
		if h.release > now && (t == 0 || h.release < t) {
			t = h.release
		}
	}
	return t
}

func (e *Endpoint) take(i int) *substrate.Msg {
	m := e.queue[i].m
	e.queue = append(e.queue[:i], e.queue[i+1:]...)
	return m
}

// --- substrate.Endpoint implementation ---

// ID implements substrate.Endpoint.
func (e *Endpoint) ID() int { return e.id }

// Name implements substrate.Endpoint.
func (e *Endpoint) Name() string { return e.inner.Name() }

// NumPeers implements substrate.Endpoint.
func (e *Endpoint) NumPeers() int { return e.inner.NumPeers() }

// Now implements substrate.Clock.
func (e *Endpoint) Now() substrate.Time { return e.inner.Now() }

// Rand implements substrate.Endpoint, passing through the inner stream (the
// injection stream is private to the decorator).
func (e *Endpoint) Rand() *rand.Rand { return e.inner.Rand() }

// Account implements substrate.Endpoint.
func (e *Endpoint) Account() *substrate.Account { return e.inner.Account() }

// Charge implements substrate.Endpoint.
func (e *Endpoint) Charge(cat substrate.Category, d substrate.Time) { e.inner.Charge(cat, d) }

// Advance implements substrate.Endpoint.
func (e *Endpoint) Advance(d substrate.Time, cat substrate.Category) {
	e.check()
	e.inner.Advance(d, cat)
}

// Send implements substrate.Endpoint. Faults are charged to the receiving
// side, so sends pass through untouched (the sender still pays its send CPU
// for messages the network will lose — as on a real wire).
func (e *Endpoint) Send(m *substrate.Msg, cat substrate.Category) {
	e.check()
	e.inner.Send(m, cat)
}

// InboxLen implements substrate.Endpoint. Held (delayed) messages have not
// "arrived" yet and are not counted.
func (e *Endpoint) InboxLen() int {
	e.check()
	e.pump()
	n := 0
	now := e.inner.Now()
	for _, h := range e.queue {
		if h.release <= now {
			n++
		}
	}
	return n
}

// HasMsg implements substrate.Endpoint.
func (e *Endpoint) HasMsg(tag int) bool {
	e.check()
	e.pump()
	return e.pickDeliverable(tag, false) >= 0
}

// TryRecv implements substrate.Endpoint.
func (e *Endpoint) TryRecv(cat substrate.Category) *substrate.Msg {
	e.check()
	e.pump()
	i := e.pickDeliverable(0, true)
	if i < 0 {
		return nil
	}
	return e.take(i)
}

// TryRecvTag implements substrate.Endpoint.
func (e *Endpoint) TryRecvTag(tag int, cat substrate.Category) *substrate.Msg {
	e.check()
	e.pump()
	i := e.pickDeliverable(tag, false)
	if i < 0 {
		return nil
	}
	return e.take(i)
}

// Recv implements substrate.Endpoint.
func (e *Endpoint) Recv(waitCat substrate.Category) *substrate.Msg {
	e.WaitMsg(waitCat)
	return e.TryRecv(substrate.CatMessaging)
}

// WaitMsg implements substrate.Endpoint: it blocks until the decorator has
// a deliverable message — a message held for extra delay does not count
// until its release time, so the wait may outlast the inner arrival.
func (e *Endpoint) WaitMsg(cat substrate.Category) {
	for {
		e.check()
		e.pump()
		if e.pickDeliverable(0, true) >= 0 {
			return
		}
		if rel := e.nextRelease(); rel > 0 {
			e.inner.WaitMsgFor(rel-e.inner.Now(), cat)
			continue
		}
		e.inner.WaitMsg(cat)
	}
}

// WaitMsgFor implements substrate.Endpoint with the same held-message
// semantics as WaitMsg.
func (e *Endpoint) WaitMsgFor(d substrate.Time, cat substrate.Category) bool {
	deadline := e.inner.Now() + d
	for {
		e.check()
		e.pump()
		if e.pickDeliverable(0, true) >= 0 {
			return true
		}
		now := e.inner.Now()
		if now >= deadline {
			return false
		}
		wait := deadline - now
		if rel := e.nextRelease(); rel > 0 && rel-now < wait {
			wait = rel - now
		}
		e.inner.WaitMsgFor(wait, cat)
	}
}
