package faulty

import (
	"fmt"
	"reflect"
	"testing"

	"prema/internal/sim"
	"prema/internal/substrate"
)

// TestParsePlanRoundTrip: Plan.String renders the compact syntax ParsePlan
// accepts, and the two must be inverses for any plan whose magnitude
// defaults are filled in.
func TestParsePlanRoundTrip(t *testing.T) {
	plans := []Plan{
		{},
		{Default: LinkFaults{Drop: 0.25}},
		{Default: LinkFaults{Drop: 0.2, Dup: 0.1, Delay: 0.05, DelayMax: 10 * substrate.Millisecond, Reorder: 0.3, ReorderDepth: 4}},
		{
			Default: LinkFaults{Drop: 0.1},
			Links: map[Link]LinkFaults{
				{Src: 0, Dst: 3}: {Dup: 0.5},
				{Src: 2, Dst: 1}: {Drop: 1},
			},
			Stalls:  []Stall{{Proc: 2, At: 5 * substrate.Second, For: 500 * substrate.Millisecond}},
			Crashes: []Crash{{Proc: 7, At: 20 * substrate.Second}},
		},
	}
	for i, p := range plans {
		s := p.String()
		got, err := ParsePlan(s)
		if err != nil {
			t.Fatalf("plan %d: ParsePlan(%q): %v", i, s, err)
		}
		// ParsePlan fills magnitude defaults; compare against the same view.
		want := p
		want.Default = want.Default.withDefaults()
		for l, lf := range want.Links {
			want.Links[l] = lf.withDefaults()
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("plan %d: round trip %q:\n got %+v\nwant %+v", i, s, got, want)
		}
		if got.String() != s {
			t.Errorf("plan %d: re-render %q != %q", i, got.String(), s)
		}
	}
}

// TestParsePlanErrors: malformed plans must be rejected, not half-applied.
func TestParsePlanErrors(t *testing.T) {
	for _, s := range []string{
		"drop=1.5",            // probability out of range
		"drop=x",              // not a number
		"warp=0.5",            // unknown fault
		"delay=0.1:never",     // bad duration
		"reorder=0.1:0",       // bad depth
		"link:0:drop=0.5",     // malformed endpoints
		"link:a-b:drop=0.5",   // non-numeric endpoints
		"stall:1@5s",          // missing duration
		"crash:-1@5s",         // negative processor
		"crash:1",             // missing time
		"drop",                // missing value
		"stall:1@5s+intended", // bad stall duration
	} {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("ParsePlan(%q) accepted a malformed plan", s)
		}
	}
	if p, err := ParsePlan("none"); err != nil || p.Active() {
		t.Errorf("ParsePlan(\"none\") = %+v, %v; want inactive empty plan", p, err)
	}
}

// exchange runs a two-processor ping stream on a faulted simulator: proc 1
// sends n messages to proc 0, which drains whatever arrives until the
// network has been quiet for a second. It returns the payloads received in
// order and the machine's fault stats.
func exchange(t *testing.T, plan Plan, seed int64, n int) ([]int, Stats) {
	t.Helper()
	fm := Wrap(sim.NewMachine(sim.Config{Seed: 4}), plan, seed)
	var got []int
	fm.Spawn("recv", func(ep substrate.Endpoint) {
		idle := 0
		for idle < 3 {
			if m := ep.TryRecv(substrate.CatMessaging); m != nil {
				got = append(got, m.Data.(int))
				idle = 0
				continue
			}
			if !ep.WaitMsgFor(secs(1), substrate.CatIdle) {
				idle++
			}
		}
	})
	fm.Spawn("send", func(ep substrate.Endpoint) {
		for i := 0; i < n; i++ {
			ep.Send(&substrate.Msg{Dst: 0, Data: i, Size: 8}, substrate.CatMessaging)
		}
	})
	if err := fm.Run(); err != nil {
		t.Fatal(err)
	}
	return got, fm.Stats()
}

func secs(sec int) substrate.Time { return substrate.Time(sec) * substrate.Second }

// TestLinkFaultModes exercises each fault in isolation at probability 1.
func TestLinkFaultModes(t *testing.T) {
	const n = 20
	t.Run("drop", func(t *testing.T) {
		got, st := exchange(t, Plan{Default: LinkFaults{Drop: 1}}, 1, n)
		if len(got) != 0 || st.Dropped != n {
			t.Errorf("drop=1: delivered %d, dropped %d; want 0, %d", len(got), st.Dropped, n)
		}
	})
	t.Run("dup", func(t *testing.T) {
		got, st := exchange(t, Plan{Default: LinkFaults{Dup: 1}}, 1, n)
		if len(got) != 2*n || st.Dupped != n {
			t.Errorf("dup=1: delivered %d, dupped %d; want %d, %d", len(got), st.Dupped, 2*n, n)
		}
	})
	t.Run("delay", func(t *testing.T) {
		got, st := exchange(t, Plan{Default: LinkFaults{Delay: 1, DelayMax: 100 * substrate.Millisecond}}, 1, n)
		if len(got) != n || st.Delayed != n {
			t.Errorf("delay=1: delivered %d, delayed %d; want %d, %d", len(got), st.Delayed, n, n)
		}
	})
	t.Run("reorder", func(t *testing.T) {
		got, st := exchange(t, Plan{Default: LinkFaults{Reorder: 1, ReorderDepth: 8}}, 1, n)
		if len(got) != n || st.Reordered != n {
			t.Fatalf("reorder=1: delivered %d, reordered %d; want %d, %d", len(got), st.Reordered, n, n)
		}
		inOrder := true
		for i, v := range got {
			if v != i {
				inOrder = false
			}
		}
		if inOrder {
			t.Error("reorder=1 delivered every message in order")
		}
	})
	t.Run("loopback-exempt", func(t *testing.T) {
		fm := Wrap(sim.NewMachine(sim.Config{Seed: 4}), Plan{Default: LinkFaults{Drop: 1}}, 1)
		got := 0
		fm.Spawn("self", func(ep substrate.Endpoint) {
			ep.Send(&substrate.Msg{Dst: 0, Data: 1, Size: 8}, substrate.CatMessaging)
			if ep.WaitMsgFor(secs(5), substrate.CatIdle) {
				if m := ep.TryRecv(substrate.CatMessaging); m != nil {
					got++
				}
			}
		})
		if err := fm.Run(); err != nil {
			t.Fatal(err)
		}
		if got != 1 {
			t.Errorf("loopback message was faulted away (got %d)", got)
		}
	})
}

// TestPerLinkOverride: a link override replaces the default model on that
// directed link only.
func TestPerLinkOverride(t *testing.T) {
	plan := Plan{
		Default: LinkFaults{Drop: 1},
		Links:   map[Link]LinkFaults{{Src: 1, Dst: 0}: {}},
	}
	got, st := exchange(t, plan, 1, 10)
	if len(got) != 10 || st.Dropped != 0 {
		t.Errorf("overridden link dropped traffic: delivered %d, dropped %d", len(got), st.Dropped)
	}
}

// TestDeterministicInjection: the injector's whole point — same seed, same
// faults, same delivery; different seed, different faults.
func TestDeterministicInjection(t *testing.T) {
	plan := Plan{Default: LinkFaults{Drop: 0.3, Dup: 0.2, Delay: 0.1, Reorder: 0.2}}
	const n = 200
	got1, st1 := exchange(t, plan, 11, n)
	got2, st2 := exchange(t, plan, 11, n)
	if !reflect.DeepEqual(got1, got2) || st1 != st2 {
		t.Errorf("same seed diverged: %d vs %d delivered, %+v vs %+v", len(got1), len(got2), st1, st2)
	}
	got3, st3 := exchange(t, plan, 12, n)
	if reflect.DeepEqual(got1, got3) && st1 == st3 {
		t.Errorf("different seeds produced identical runs (%+v)", st1)
	}
}

// TestStall: a scheduled stall freezes the processor for the configured
// window, visible as idle time in its account.
func TestStall(t *testing.T) {
	plan := Plan{Stalls: []Stall{{Proc: 0, At: secs(1), For: secs(10)}}}
	fm := Wrap(sim.NewMachine(sim.Config{Seed: 4}), plan, 1)
	fm.Spawn("worker", func(ep substrate.Endpoint) {
		for ep.Now() < secs(2) {
			ep.Advance(100*substrate.Millisecond, substrate.CatCompute)
		}
	})
	if err := fm.Run(); err != nil {
		t.Fatal(err)
	}
	if st := fm.Stats(); st.Stalls != 1 {
		t.Errorf("stalls fired %d times, want 1", st.Stalls)
	}
	if idle := fm.Account(0)[substrate.CatIdle]; idle < secs(10) {
		t.Errorf("stalled processor logged %v idle, want >= %v", idle, secs(10))
	}
}

// TestCrash: a fail-stop tears down one processor's body; the machine still
// completes, the victim goes silent, survivors keep exchanging messages.
func TestCrash(t *testing.T) {
	plan := Plan{Crashes: []Crash{{Proc: 1, At: secs(5)}}}
	fm := Wrap(sim.NewMachine(sim.Config{Seed: 4}), plan, 1)
	sent := make([]int, 3)
	for p := 0; p < 3; p++ {
		fm.Spawn(fmt.Sprintf("p%d", p), func(ep substrate.Endpoint) {
			for ep.Now() < secs(20) {
				ep.Send(&substrate.Msg{Dst: (ep.ID() + 1) % 3, Data: 0, Size: 8}, substrate.CatMessaging)
				sent[ep.ID()]++
				ep.Advance(secs(1), substrate.CatCompute)
				for ep.TryRecv(substrate.CatMessaging) != nil {
				}
			}
		})
	}
	if err := fm.Run(); err != nil {
		t.Fatal(err)
	}
	if !fm.Stats().Crashed || !fm.EndpointStats(1).Crashed {
		t.Fatalf("crash never fired: %+v", fm.Stats())
	}
	// The victim stopped at t=5 (≈5 sends); survivors ran the full 20.
	if sent[1] >= sent[0] || sent[1] >= sent[2] {
		t.Errorf("crashed processor sent %d messages, survivors %d and %d", sent[1], sent[0], sent[2])
	}
}
