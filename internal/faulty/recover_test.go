package faulty

import (
	"reflect"
	"testing"

	"prema/internal/sim"
	"prema/internal/substrate"
)

// TestRecoverPlanRoundTrip: recover clauses render and re-parse like every
// other plan entry.
func TestRecoverPlanRoundTrip(t *testing.T) {
	plans := []Plan{
		{
			Crashes:  []Crash{{Proc: 7, At: 20 * substrate.Second}},
			Recovers: []Recover{{Proc: 7, At: 40 * substrate.Second}},
		},
		{
			Default:  LinkFaults{Drop: 0.1},
			Stalls:   []Stall{{Proc: 2, At: 5 * substrate.Second, For: 500 * substrate.Millisecond}},
			Crashes:  []Crash{{Proc: 1, At: 10 * substrate.Second}, {Proc: 1, At: 60 * substrate.Second}},
			Recovers: []Recover{{Proc: 1, At: 30 * substrate.Second}},
		},
	}
	for i, p := range plans {
		s := p.String()
		got, err := ParsePlan(s)
		if err != nil {
			t.Fatalf("plan %d: ParsePlan(%q): %v", i, s, err)
		}
		want := p
		want.Default = want.Default.withDefaults()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("plan %d: round trip %q:\n got %+v\nwant %+v", i, s, got, want)
		}
		if got.String() != s {
			t.Errorf("plan %d: re-render %q != %q", i, got.String(), s)
		}
		if !got.Active() {
			t.Errorf("plan %d: %q should be active", i, s)
		}
	}
}

// TestRecoverPlanValidation: crash/recover schedules must alternate per
// processor; anything else is rejected at parse time.
func TestRecoverPlanValidation(t *testing.T) {
	for _, s := range []string{
		"recover:1@10s",                                    // rejoin with no crash
		"crash:1@20s;recover:1@10s",                        // rejoin before its crash
		"crash:1@20s;recover:1@20s",                        // rejoin at the crash instant
		"crash:1@10s;recover:1@20s;recover:1@30s",          // two rejoins, one crash
		"crash:1@10s;crash:1@30s;recover:1@40s;recover:1@50s", // second rejoin after both crashes
		"recover:-1@10s",                                   // negative processor
		"recover:1",                                        // missing time
		"recover:1@sometime",                               // bad duration
	} {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("ParsePlan(%q) accepted an invalid crash/recover schedule", s)
		}
	}
	for _, s := range []string{
		"crash:1@10s;recover:1@20s",
		"crash:1@10s;recover:1@20s;crash:1@30s;recover:1@40s",
		"crash:1@10s;recover:1@20s;crash:1@30s", // final crash permanent
		"crash:2@10s;crash:3@15s;recover:3@25s", // mixed permanent + healed
	} {
		if _, err := ParsePlan(s); err != nil {
			t.Errorf("ParsePlan(%q): %v; want valid", s, err)
		}
	}
}

// TestRejoin: with an OnRejoin factory installed, a crash:P;recover:P plan
// runs a fresh incarnation from the rejoin time — starting with an empty
// inbox (the dead incarnation's mail is lost) and honouring any later
// scheduled crash.
func TestRejoin(t *testing.T) {
	plan, err := ParsePlan("crash:1@5s;recover:1@12s")
	if err != nil {
		t.Fatal(err)
	}
	fm := Wrap(sim.NewMachine(sim.Config{Seed: 4}), plan, 1)
	var rejoinStart substrate.Time
	rejoinInbox := -1
	secondLife := 0
	fm.Spawn("p0", func(ep substrate.Endpoint) {
		// Feed proc 1 a message every second; the ones sent while it is down
		// (5s..12s) must never surface in the second incarnation.
		for ep.Now() < secs(20) {
			ep.Send(&substrate.Msg{Dst: 1, Data: int(ep.Now() / substrate.Second), Size: 8}, substrate.CatMessaging)
			ep.Advance(secs(1), substrate.CatCompute)
		}
	})
	fm.Spawn("p1", func(ep substrate.Endpoint) {
		for {
			ep.Advance(100*substrate.Millisecond, substrate.CatCompute)
			for ep.TryRecv(substrate.CatMessaging) != nil {
			}
		}
	})
	fm.OnRejoin(func(id int) func(substrate.Endpoint) {
		if id != 1 {
			t.Errorf("OnRejoin called for processor %d, want 1", id)
		}
		return func(ep substrate.Endpoint) {
			rejoinStart = ep.Now()
			rejoinInbox = ep.InboxLen()
			for ep.Now() < secs(20) {
				ep.Advance(100*substrate.Millisecond, substrate.CatCompute)
				if ep.TryRecv(substrate.CatMessaging) != nil {
					secondLife++
				}
			}
		}
	})
	if err := fm.Run(); err != nil {
		t.Fatal(err)
	}
	st := fm.EndpointStats(1)
	if !st.Crashed || st.Rejoins != 1 {
		t.Fatalf("stats = %+v, want crashed with 1 rejoin", st)
	}
	if rejoinStart < secs(12) {
		t.Errorf("second incarnation started at %v, want >= 12s", rejoinStart)
	}
	if rejoinInbox != 0 {
		t.Errorf("second incarnation started with %d queued messages, want 0", rejoinInbox)
	}
	if secondLife == 0 {
		t.Error("second incarnation received nothing; expected post-rejoin traffic")
	}
}

// TestRejoinThenSecondCrash: a crash → recover → crash schedule runs two
// incarnations and leaves the processor dead after the second crash.
func TestRejoinThenSecondCrash(t *testing.T) {
	plan, err := ParsePlan("crash:1@3s;recover:1@6s;crash:1@9s")
	if err != nil {
		t.Fatal(err)
	}
	fm := Wrap(sim.NewMachine(sim.Config{Seed: 4}), plan, 1)
	var lastSeen substrate.Time
	spin := func(ep substrate.Endpoint) {
		for ep.Now() < secs(20) {
			ep.Advance(100*substrate.Millisecond, substrate.CatCompute)
			lastSeen = ep.Now()
		}
	}
	fm.Spawn("p0", func(ep substrate.Endpoint) { ep.Advance(secs(20), substrate.CatIdle) })
	fm.Spawn("p1", spin)
	fm.OnRejoin(func(id int) func(substrate.Endpoint) { return spin })
	if err := fm.Run(); err != nil {
		t.Fatal(err)
	}
	st := fm.EndpointStats(1)
	if st.Rejoins != 1 {
		t.Fatalf("rejoins = %d, want 1", st.Rejoins)
	}
	if lastSeen < secs(6) || lastSeen >= secs(10) {
		t.Errorf("processor last ran at %v, want within [6s, 10s) (second incarnation dead at 9s)", lastSeen)
	}
}
