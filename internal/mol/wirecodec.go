package mol

import (
	"sort"

	"prema/internal/wire"
)

// Wire codecs for every payload the mobile object layer (and the ilb layer,
// which sends exclusively through it) puts on the transport: envelopes,
// migrations (the full Object, reorder state included, plus the packed work
// units the scheduler attaches as extra), location-cache updates, and the
// remote-access request/reply pair. Application object *data* serializes
// through the registry too — builtin kinds cover int/bool/float64/[]byte,
// and RegisterDataCodec adds marshal/unmarshal hooks for custom types.

func encodeMP(w *wire.Writer, mp MobilePtr) {
	w.Int(mp.Home)
	w.Int(mp.Index)
}

func decodeMP(r *wire.Reader) MobilePtr {
	return MobilePtr{Home: r.Int(), Index: r.Int()}
}

// encodeEnvelope writes an envelope compactly: every field but the sequence
// number and the weight is a processor ID, an object index, a handler slot,
// a byte count, or a hop count, all comfortably inside i32. The fixed part
// costs 46 bytes minimum (nil payload) — under the modeled envelopeHeader
// of 48 — and an int payload lands exactly at envelopeHeader + 8, so the
// wire audit sees zero drift on envelope traffic.
func encodeEnvelope(w *wire.Writer, e *Envelope) {
	w.I32(int32(e.MP.Home))
	w.I32(int32(e.MP.Index))
	w.I32(int32(e.Handler))
	wire.EncodeAny(w, e.Data)
	w.I32(int32(e.Size))
	w.I32(int32(e.Tag))
	w.I32(int32(e.Origin))
	w.U64(e.Seq)
	w.I32(int32(e.Hops))
	w.F64(e.Weight)
}

func decodeEnvelope(r *wire.Reader) *Envelope {
	e := &Envelope{MP: MobilePtr{Home: int(r.I32()), Index: int(r.I32())}}
	e.Handler = HandlerID(r.I32())
	e.Data = wire.DecodeAny(r)
	e.Size = int(r.I32())
	e.Tag = int(r.I32())
	e.Origin = int(r.I32())
	e.Seq = r.U64()
	e.Hops = int(r.I32())
	e.Weight = r.F64()
	return e
}

// encodeObject writes a mobile object including its reorder state. Map
// iteration order is not deterministic, so both maps are emitted in sorted
// key order — equal objects encode to equal bytes.
func encodeObject(w *wire.Writer, obj *Object) {
	encodeMP(w, obj.MP)
	wire.EncodeAny(w, obj.Data)
	w.Int(obj.Size)
	w.F64(obj.Weight)

	origins := make([]int, 0, len(obj.expect))
	for o := range obj.expect {
		origins = append(origins, o)
	}
	sort.Ints(origins)
	w.U32(uint32(len(origins)))
	for _, o := range origins {
		w.Int(o)
		w.U64(obj.expect[o])
	}

	keys := make([]holdKey, 0, len(obj.hold))
	for k := range obj.hold {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].origin != keys[j].origin {
			return keys[i].origin < keys[j].origin
		}
		return keys[i].seq < keys[j].seq
	})
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.Int(k.origin)
		w.U64(k.seq)
		encodeEnvelope(w, obj.hold[k])
	}
}

func decodeObject(r *wire.Reader) *Object {
	obj := &Object{MP: decodeMP(r)}
	obj.Data = wire.DecodeAny(r)
	obj.Size = r.Int()
	obj.Weight = r.F64()
	n := r.Count(16) // origin i64 + watermark u64
	obj.expect = make(map[int]uint64, n)
	for i := 0; i < n; i++ {
		o := r.Int()
		obj.expect[o] = r.U64()
	}
	h := r.Count(16 + 2) // key + at least an envelope's nil data kind
	obj.hold = make(map[holdKey]*Envelope, h)
	for i := 0; i < h; i++ {
		k := holdKey{origin: r.Int(), seq: r.U64()}
		obj.hold[k] = decodeEnvelope(r)
	}
	return obj
}

func init() {
	wire.Register(wire.KindMolEnvelope, &Envelope{},
		func(w *wire.Writer, v any) { encodeEnvelope(w, v.(*Envelope)) },
		func(r *wire.Reader) any { return decodeEnvelope(r) })

	wire.Register(wire.KindMolEnvelopeSlice, []*Envelope(nil),
		func(w *wire.Writer, v any) {
			s := v.([]*Envelope)
			w.U32(uint32(len(s)))
			for _, e := range s {
				encodeEnvelope(w, e)
			}
		},
		func(r *wire.Reader) any {
			n := r.Count(2)
			if n == 0 {
				return []*Envelope(nil) // canonical empty slice, exact round trip
			}
			s := make([]*Envelope, n)
			for i := range s {
				s[i] = decodeEnvelope(r)
			}
			return s
		})

	wire.Register(wire.KindMolMigration,
		&migration{obj: &Object{expect: map[int]uint64{}, hold: map[holdKey]*Envelope{}}},
		func(w *wire.Writer, v any) {
			m := v.(*migration)
			encodeObject(w, m.obj)
			wire.EncodeAny(w, m.extra)
		},
		func(r *wire.Reader) any {
			return &migration{obj: decodeObject(r), extra: wire.DecodeAny(r)}
		})

	// Location updates are the layer's highest-volume control traffic and
	// carry a modeled Size of 16 bytes, so they get the compact encoding:
	// home, index, and location are a processor ID and an object index,
	// which i32 holds with room to spare (2 + 3*4 = 14 bytes on the wire).
	wire.Register(wire.KindMolLocation, &locationUpdate{},
		func(w *wire.Writer, v any) {
			u := v.(*locationUpdate)
			w.I32(int32(u.mp.Home))
			w.I32(int32(u.mp.Index))
			w.I32(int32(u.loc))
		},
		func(r *wire.Reader) any {
			return &locationUpdate{
				mp:  MobilePtr{Home: int(r.I32()), Index: int(r.I32())},
				loc: int(r.I32()),
			}
		})

	wire.Register(wire.KindMolGetRequest, getRequest{},
		func(w *wire.Writer, v any) {
			g := v.(getRequest)
			w.U64(g.ID)
			w.Int(g.Reader)
			w.Int(g.Origin)
		},
		func(r *wire.Reader) any {
			return getRequest{ID: r.U64(), Reader: r.Int(), Origin: r.Int()}
		})

	wire.Register(wire.KindMolGetReply, getReply{},
		func(w *wire.Writer, v any) {
			g := v.(getReply)
			w.U64(g.ID)
			wire.EncodeAny(w, g.Value)
		},
		func(r *wire.Reader) any {
			return getReply{ID: r.U64(), Value: wire.DecodeAny(r)}
		})
}

// RegisterDataCodec installs a wire codec for an application mobile-object
// data type: sample fixes the concrete type, and marshal/unmarshal map it
// to and from bytes. Objects whose Data is of that type then serialize for
// real when a migration, checkpoint restore, or Get reply crosses a
// wire-wrapped machine (builtin kinds already cover int, bool, float64 and
// []byte). kind must be at or above wire.KindUser — the range reserved for
// applications — and, like Layer.Register, calls must happen before any
// traffic flows (package init is the natural place).
func RegisterDataCodec(kind wire.Kind, sample any, marshal func(data any) []byte, unmarshal func(b []byte) any) {
	if kind < wire.KindUser {
		panic("mol: RegisterDataCodec kinds start at wire.KindUser")
	}
	wire.Register(kind, sample,
		func(w *wire.Writer, v any) { w.Bytes(marshal(v)) },
		func(r *wire.Reader) any {
			b := r.Bytes()
			if r.Err() != nil {
				return nil
			}
			return unmarshal(b)
		})
}
