// Package mol implements PREMA's Mobile Object Layer (Chrisochoides et al.,
// "Mobile object layer: a runtime substrate for parallel adaptive and
// irregular computations", Advances in Engineering Software 2000).
//
// The MOL provides a global name space: application data objects register as
// mobile objects identified by a MobilePtr that stays valid as the object
// migrates between processors. Messages target mobile pointers; the layer
// routes them to the object's current host, forwarding along the migration
// chain when the sender's cached location is stale, and it preserves the
// order of messages from any one origin to any one object by sequencing and
// reorder-buffering. Migration is transparent: in-flight and future messages
// reach the object at its new host without application involvement.
package mol

import (
	"fmt"
	"sort"

	"prema/internal/dmcs"
	"prema/internal/recov"
	"prema/internal/substrate"
	"prema/internal/trace"
)

// MobilePtr is a location-independent name for a mobile object: the
// processor the object was registered on (its home, which runs the directory
// entry for the object) plus a home-local index.
type MobilePtr struct {
	Home  int
	Index int
}

// Nil is the null mobile pointer (mol_mobile_ptr_is_null in the paper's API).
var Nil = MobilePtr{Home: -1}

// IsNil reports whether mp is the null mobile pointer.
func (mp MobilePtr) IsNil() bool { return mp.Home < 0 }

// String renders the pointer as home:index.
func (mp MobilePtr) String() string {
	if mp.IsNil() {
		return "mol:nil"
	}
	return fmt.Sprintf("mol:%d:%d", mp.Home, mp.Index)
}

// HandlerID names an object-message handler registered with RegisterHandler.
type HandlerID int

// ObjHandler is the application-defined routine a mol message invokes at its
// target object. src is the originating processor.
type ObjHandler func(l *Layer, obj *Object, src int, data any, size int)

// Object is an installed mobile object.
type Object struct {
	MP   MobilePtr
	Data any
	// Size is the modeled serialized size in bytes; it prices migration.
	Size int
	// Weight is the object's current computational weight estimate, used by
	// load balancing policies. The MOL itself never reads it.
	Weight float64

	// expect holds, per origin processor, the sequence number of the next
	// in-order message; held and future messages sit in hold until their
	// turn. Both structures migrate with the object.
	expect map[int]uint64
	hold   map[holdKey]*Envelope
}

type holdKey struct {
	origin int
	seq    uint64
}

// Envelope is a message in the mobile-object name space.
type Envelope struct {
	MP      MobilePtr
	Handler HandlerID
	Data    any
	Size    int
	Tag     int
	Origin  int
	Seq     uint64
	Hops    int // forwarding hops taken so far
	// Weight is the sender's estimate of the computational weight (in
	// seconds) of handling this message — the "programmer-supplied hint" of
	// the paper's taxonomy. The MOL carries it; the ILB scheduler reads it.
	Weight float64
}

// Stats counts MOL activity on one processor.
type Stats struct {
	MessagesSent   int
	MessagesLocal  int
	Delivered      int
	Forwards       int
	Held           int // messages that had to wait in the reorder buffer
	MigrationsOut  int
	MigrationsIn   int
	LocationNotify int
	// Duplicates counts stale-sequence envelopes discarded on arrival. On a
	// perfect transport (or under dmcs's reliable mode) it stays zero; a
	// lossy transport without reliable delivery can duplicate envelopes, and
	// the MOL drops them here rather than running a handler twice.
	Duplicates int
	// MigrationsDup counts duplicate migration messages ignored because the
	// object was already resident.
	MigrationsDup int
	// Recovered counts orphaned objects installed here from checkpoints
	// after a crash (recovery.go).
	Recovered int
	// RestoreHeld counts envelopes parked because their forwarding chain
	// dead-ended in a crashed processor, awaiting directory repair.
	RestoreHeld int
}

// DeliverFunc receives in-order messages for locally installed objects.
// The default delivery dispatches the registered handler immediately; the
// ILB layer overrides it to enqueue schedulable work units.
type DeliverFunc func(l *Layer, obj *Object, env *Envelope)

// Config tunes the layer's cost model and routing behaviour.
type Config struct {
	// ForwardCPU is charged on a processor that forwards a misdelivered
	// message toward the object's current location.
	ForwardCPU substrate.Time
	// MigrateFixed is the fixed payload overhead of a migration message,
	// added to Object.Size.
	MigrateFixed int
	// NotifyOrigin, when true, makes a forwarding processor send the
	// message's origin a location-cache update so later sends short-cut the
	// chain. When false, stale caches keep paying forwarding hops
	// (benchmarked as an ablation).
	NotifyOrigin bool
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		ForwardCPU:   5 * substrate.Microsecond,
		MigrateFixed: 64,
		NotifyOrigin: true,
	}
}

// Layer is the processor-local mobile object layer endpoint.
type Layer struct {
	c   *dmcs.Comm
	cfg Config
	tr  *trace.Recorder

	objects   map[MobilePtr]*Object
	lastKnown map[MobilePtr]int // best-guess location for non-local objects
	nextIndex int
	nextSeq   map[MobilePtr]uint64 // per-destination sequence for local sends

	handlers []ObjHandler
	deliver  DeliverFunc

	// OnMigrateOut, if set, is invoked as an object leaves this processor;
	// its return value travels with the migration and is handed to
	// OnMigrateIn at the destination. The ILB layer uses this pair to carry
	// the object's pending work units.
	OnMigrateOut func(obj *Object) any
	OnMigrateIn  func(obj *Object, extra any)

	hEnvelope dmcs.HandlerID
	hMigrate  dmcs.HandlerID
	hLocation dmcs.HandlerID
	hRestore  dmcs.HandlerID

	// Crash-recovery state (recovery.go). rp is nil unless AttachRecov was
	// called; every recovery hook is a no-op then.
	rp          *recov.Proc
	restoreHold []*Envelope

	// Remote data access state (access.go).
	accessReady bool
	readers     []Reader
	getPending  map[uint64]func(any)
	getSeq      uint64
	hGetReq     HandlerID
	hGetReply   dmcs.HandlerID

	Stats Stats
}

type migration struct {
	obj   *Object
	extra any
}

type locationUpdate struct {
	mp  MobilePtr
	loc int
}

// New builds a MOL endpoint over a DMCS endpoint. As with dmcs.Comm,
// construction (and handler registration) order must match across
// processors.
func New(c *dmcs.Comm, cfg Config) *Layer {
	l := &Layer{
		c:         c,
		cfg:       cfg,
		tr:        trace.Of(c.Proc()),
		objects:   make(map[MobilePtr]*Object),
		lastKnown: make(map[MobilePtr]int),
		nextSeq:   make(map[MobilePtr]uint64),
	}
	l.deliver = func(l *Layer, obj *Object, env *Envelope) {
		l.Dispatch(obj, env)
	}
	l.hEnvelope = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
		l.arrive(data.(*Envelope))
	})
	l.hMigrate = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
		l.migrateIn(src, data.(*migration))
	})
	l.hLocation = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
		u := data.(*locationUpdate)
		if _, local := l.objects[u.mp]; !local {
			l.lastKnown[u.mp] = u.loc
		}
	})
	// Registered unconditionally so handler IDs stay SPMD-consistent whether
	// or not this run attaches a recovery store.
	l.hRestore = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
		l.installRecovered(data.(*recov.Checkpoint))
	})
	return l
}

// Comm returns the underlying DMCS endpoint.
func (l *Layer) Comm() *dmcs.Comm { return l.c }

// Proc returns the underlying substrate endpoint.
func (l *Layer) Proc() substrate.Endpoint { return l.c.Proc() }

// SetDeliver overrides the in-order delivery sink (see DeliverFunc).
func (l *Layer) SetDeliver(d DeliverFunc) { l.deliver = d }

// Dispatch invokes env's registered handler on obj. Delivery sinks that
// queue envelopes (like the ILB scheduler) call this when the work unit is
// finally scheduled.
func (l *Layer) Dispatch(obj *Object, env *Envelope) {
	l.handlers[env.Handler](l, obj, env.Origin, env.Data, env.Size)
}

// RegisterHandler installs an object-message handler; registration order
// must match on every processor.
func (l *Layer) RegisterHandler(h ObjHandler) HandlerID {
	l.handlers = append(l.handlers, h)
	return HandlerID(len(l.handlers) - 1)
}

// Register installs data as a new mobile object homed on this processor and
// returns its mobile pointer.
func (l *Layer) Register(data any, size int) MobilePtr {
	mp := MobilePtr{Home: l.Proc().ID(), Index: l.nextIndex}
	l.nextIndex++
	l.install(&Object{
		MP:     mp,
		Data:   data,
		Size:   size,
		expect: make(map[int]uint64),
		hold:   make(map[holdKey]*Envelope),
	})
	if l.rp != nil {
		l.rp.ObjectHome(oid(mp), data, size, 0)
	}
	return mp
}

func (l *Layer) install(obj *Object) {
	l.objects[obj.MP] = obj
	delete(l.lastKnown, obj.MP)
}

// Lookup returns the locally installed object for mp, or nil if mp is not
// resident here.
func (l *Layer) Lookup(mp MobilePtr) *Object { return l.objects[mp] }

// Local returns the locally installed objects (in unspecified order).
func (l *Layer) Local() map[MobilePtr]*Object { return l.objects }

// bestGuess returns where this processor believes mp currently lives.
func (l *Layer) bestGuess(mp MobilePtr) int {
	if _, ok := l.objects[mp]; ok {
		return l.Proc().ID()
	}
	if loc, ok := l.lastKnown[mp]; ok {
		return loc
	}
	if l.rp != nil {
		// PeerDown purged cache entries through dead processors; the recovery
		// manifest knows where directory repair put the object.
		if loc, ok := l.rp.Location(oid(mp)); ok && !l.rp.IsDown(loc) {
			return loc
		}
	}
	return mp.Home // the home processor always has a directory entry
}

// Message sends an application message to the object named by mp, invoking
// handler h at the object's current host. Message order from this processor
// to mp is preserved across migrations.
func (l *Layer) Message(mp MobilePtr, h HandlerID, data any, size int) {
	l.MessageTagged(mp, h, data, size, substrate.TagApp)
}

// MessageTagged is Message with an explicit traffic-class tag.
func (l *Layer) MessageTagged(mp MobilePtr, h HandlerID, data any, size int, tag int) {
	l.MessageWeighted(mp, h, data, size, tag, 0)
}

// MessageWeighted is MessageTagged with a computational weight hint carried
// to the scheduler at the object's host.
func (l *Layer) MessageWeighted(mp MobilePtr, h HandlerID, data any, size int, tag int, weight float64) {
	if mp.IsNil() {
		panic("mol: message to nil mobile pointer")
	}
	env := &Envelope{
		MP:      mp,
		Handler: h,
		Data:    data,
		Size:    size,
		Tag:     tag,
		Origin:  l.Proc().ID(),
		Seq:     l.nextSeq[mp],
		Weight:  weight,
	}
	l.nextSeq[mp]++
	if l.rp != nil {
		// Origin-side envelope log: kept until the unit is known executed, so
		// a recovery coordinator can replay anything a crash swallowed.
		l.rp.LogEnvelope(oid(mp), env.Origin, env.Seq, env, size)
	}
	if _, local := l.objects[mp]; local {
		l.Stats.MessagesLocal++
		l.arrive(env)
		return
	}
	l.Stats.MessagesSent++
	l.c.SendTagged(l.bestGuess(mp), l.hEnvelope, env, size+envelopeHeader, tag)
}

// envelopeHeader models the wire overhead of a mol envelope in bytes.
const envelopeHeader = 48

// arrive processes an envelope reaching this processor: deliver in order if
// the object is resident, otherwise forward toward the current location.
func (l *Layer) arrive(env *Envelope) {
	obj, ok := l.objects[env.MP]
	if !ok {
		l.forward(env)
		return
	}
	want := obj.expect[env.Origin]
	switch {
	case env.Seq == want:
		l.deliverInOrder(obj, env)
	case env.Seq > want:
		if _, dup := obj.hold[holdKey{env.Origin, env.Seq}]; dup {
			l.Stats.Duplicates++
			return
		}
		l.Stats.Held++
		obj.hold[holdKey{env.Origin, env.Seq}] = env
	default:
		// Stale sequence: this envelope was already delivered (a transport
		// duplicate, or a forwarded copy racing a retransmitted one).
		// Handlers must run exactly once, so the copy is dropped.
		l.Stats.Duplicates++
	}
}

func (l *Layer) deliverInOrder(obj *Object, env *Envelope) {
	obj.expect[env.Origin] = env.Seq + 1
	l.Stats.Delivered++
	l.deliver(l, obj, env)
	// Drain any held successors from the same origin.
	for {
		next, ok := obj.hold[holdKey{env.Origin, obj.expect[env.Origin]}]
		if !ok {
			return
		}
		delete(obj.hold, holdKey{env.Origin, next.Seq})
		obj.expect[env.Origin] = next.Seq + 1
		l.Stats.Delivered++
		l.deliver(l, obj, next)
	}
}

// forward relays a misdelivered envelope toward the object's current host
// and, when configured, tells the origin about the better location.
func (l *Layer) forward(env *Envelope) {
	next := l.bestGuess(env.MP)
	if next == l.Proc().ID() {
		// Stale self-reference: fall back to the home directory.
		next = env.MP.Home
	}
	if l.rp != nil && (next == l.Proc().ID() || l.rp.IsDown(next)) {
		// The chain dead-ends in a crashed processor (or in ourselves, with
		// the directory pointing nowhere live): park the envelope until
		// directory repair re-resolves the object instead of dropping it
		// into a black hole. RetryHeld re-runs it.
		l.Stats.RestoreHeld++
		l.restoreHold = append(l.restoreHold, env)
		return
	}
	l.Stats.Forwards++
	env.Hops++
	if env.Hops > 1<<16 {
		panic("mol: forwarding loop for " + env.MP.String())
	}
	if l.cfg.ForwardCPU > 0 {
		l.Proc().Advance(l.cfg.ForwardCPU, substrate.CatMessaging)
	}
	l.tr.Instant(trace.EvForward, l.Proc().Now(), int64(next), int64(env.Hops), int64(env.Size))
	l.c.SendTagged(next, l.hEnvelope, env, env.Size+envelopeHeader, env.Tag)
	if l.cfg.NotifyOrigin && env.Origin != l.Proc().ID() && next != env.Origin {
		l.Stats.LocationNotify++
		l.c.SendTagged(env.Origin, l.hLocation, &locationUpdate{env.MP, next}, 16, substrate.TagSystem)
	}
}

// Migrate uninstalls the locally resident object mp and transfers it (data,
// reorder state, and any OnMigrateOut extra such as queued work units) to
// processor dst. Messages that keep arriving here are forwarded. The home
// directory is updated asynchronously.
func (l *Layer) Migrate(mp MobilePtr, dst int) error {
	obj, ok := l.objects[mp]
	if !ok {
		return fmt.Errorf("mol: migrate of non-resident object %s", mp)
	}
	if dst == l.Proc().ID() {
		return nil
	}
	delete(l.objects, mp)
	l.lastKnown[mp] = dst
	l.Stats.MigrationsOut++
	var extra any
	if l.OnMigrateOut != nil {
		extra = l.OnMigrateOut(obj)
	}
	size := obj.Size + l.cfg.MigrateFixed + 16*len(obj.hold)
	l.tr.Instant(trace.EvMigrateOut, l.Proc().Now(), int64(dst), trace.ObjKey(mp.Home, mp.Index), int64(size))
	l.c.SendTagged(dst, l.hMigrate, &migration{obj: obj, extra: extra}, size, substrate.TagSystem)
	if l.rp != nil {
		// Migration-piggybacked checkpoint. The manifest flips to dst only
		// after the migration message is irrevocably on the wire: a fail-stop
		// any earlier leaves the object an orphan of this processor, never
		// double-homed.
		l.rp.ObjectDeparting(oid(mp), dst, obj.Data, obj.Size, obj.Weight)
	}
	return nil
}

// migrateIn installs an arriving object and re-runs held envelopes. It is
// idempotent: a duplicated migration message (lossy transport, no reliable
// mode) is ignored rather than re-installing — and re-delivering the queued
// work of — an object that already lives here.
func (l *Layer) migrateIn(src int, m *migration) {
	obj := m.obj
	if _, resident := l.objects[obj.MP]; resident {
		l.Stats.MigrationsDup++
		return
	}
	l.Stats.MigrationsIn++
	l.tr.Instant(trace.EvMigrateIn, l.Proc().Now(), int64(src), trace.ObjKey(obj.MP.Home, obj.MP.Index), int64(obj.Size))
	l.install(obj)
	if l.rp != nil {
		l.rp.ObjectLanded(oid(obj.MP), obj.Data, obj.Size, obj.Weight)
	}
	if l.OnMigrateIn != nil {
		l.OnMigrateIn(obj, m.extra)
	}
	// Tell the home directory where the object now lives (unless it came
	// home or it is already here).
	if obj.MP.Home != l.Proc().ID() {
		l.c.SendTagged(obj.MP.Home, l.hLocation, &locationUpdate{obj.MP, l.Proc().ID()}, 16, substrate.TagSystem)
	}
	// Some held envelopes may now be deliverable (e.g. their predecessors
	// were consumed before migration).
	l.drainHold(obj)
	l.drainRestoreHold(obj.MP)
}

func (l *Layer) drainHold(obj *Object) {
	// Deterministic order: origins sorted ascending (map iteration order
	// would leak host randomness into the simulation).
	origins := make(map[int]bool, len(obj.hold))
	for k := range obj.hold {
		origins[k.origin] = true
	}
	sorted := make([]int, 0, len(origins))
	for o := range origins {
		sorted = append(sorted, o)
	}
	sort.Ints(sorted)
	for _, origin := range sorted {
		for {
			env, ok := obj.hold[holdKey{origin, obj.expect[origin]}]
			if !ok {
				break
			}
			delete(obj.hold, holdKey{origin, env.Seq})
			l.deliverInOrder(obj, env)
		}
	}
}
