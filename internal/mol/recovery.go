package mol

import (
	"sort"

	"prema/internal/recov"
	"prema/internal/substrate"
	"prema/internal/trace"
)

// This file is the MOL half of the crash-recovery protocol (internal/recov
// holds the stable store, internal/core the coordinator wiring):
//
//   - every registered/migrated object keeps its manifest entry and
//     checkpoint fresh in the store (hooks in mol.go);
//   - every sent envelope is logged at its origin until its work unit is
//     known executed (MessageWeighted hook);
//   - after a crash verdict, bestGuess routes around the dead processor via
//     the manifest, forward() parks chain-dead-end envelopes instead of
//     dropping them, and the coordinator calls Restore for each recovery
//     plan entry: orphaned objects re-install from their checkpoints and
//     pending envelopes are re-sent. The per-origin sequence discipline
//     already built into arrive() absorbs every duplicate this creates, so
//     delivery stays exactly-once per (object, origin).

// oid restates a mobile pointer as the recovery store's object ID.
func oid(mp MobilePtr) recov.ObjID { return recov.ObjID{Home: mp.Home, Index: mp.Index} }

// AttachRecov connects the layer to a crash-recovery store. Call right after
// New, before objects are registered or traffic flows.
func (l *Layer) AttachRecov(rp *recov.Proc) { l.rp = rp }

// PeerDown reacts to a failure-detector verdict: location-cache entries
// pointing at the dead processor are purged, so bestGuess stops routing
// through the black hole and consults the recovery manifest instead.
func (l *Layer) PeerDown(dead int) {
	for mp, loc := range l.lastKnown {
		if loc == dead {
			delete(l.lastKnown, mp)
		}
	}
}

// CheckpointLocal snapshots every locally resident object into the recovery
// store, in deterministic (home, index) order, returning the object count
// and total modeled bytes. The caller (the ILB scheduler's recovery tick)
// charges the modeled cost; nothing here advances virtual time.
func (l *Layer) CheckpointLocal() (objects, bytes int) {
	if l.rp == nil {
		return 0, 0
	}
	mps := make([]MobilePtr, 0, len(l.objects))
	for mp := range l.objects {
		mps = append(mps, mp)
	}
	sort.Slice(mps, func(i, j int) bool {
		if mps[i].Home != mps[j].Home {
			return mps[i].Home < mps[j].Home
		}
		return mps[i].Index < mps[j].Index
	})
	for _, mp := range mps {
		obj := l.objects[mp]
		l.rp.ObjectSnapshot(oid(mp), obj.Data, obj.Size, obj.Weight)
		objects++
		bytes += obj.Size
	}
	return objects, bytes
}

// Restore executes one recovery-plan entry on the coordinator: re-install
// the object at host if it was orphaned, then re-send every logged envelope
// not known executed. Replays follow the restore on the same system-tagged
// stream, so the object is installed before its replayed traffic arrives;
// per-origin sequence numbers make the whole operation idempotent.
func (l *Layer) Restore(ck *recov.Checkpoint, host int) {
	me := l.Proc().ID()
	mp := MobilePtr{Home: ck.ID.Home, Index: ck.ID.Index}
	if ck.Orphan {
		if host == me {
			l.installRecovered(ck)
		} else {
			l.c.SendTagged(host, l.hRestore, ck, ck.Size+l.cfg.MigrateFixed, substrate.TagSystem)
			if _, resident := l.objects[mp]; !resident {
				l.lastKnown[mp] = host
			}
		}
	}
	for _, re := range ck.Replay {
		env, ok := re.Env.(*Envelope)
		if !ok {
			continue
		}
		// Replay a copy: the original may still be referenced by an in-flight
		// retransmission buffer, and a fresh hop count keeps the forwarding
		// loop guard honest across repeated recoveries.
		cp := *env
		cp.Hops = 0
		l.tr.Instant(trace.EvReplay, l.Proc().Now(), trace.ObjKey(mp.Home, mp.Index), int64(re.Origin), int64(re.Seq))
		if host == me {
			l.arrive(&cp)
		} else {
			l.c.SendTagged(host, l.hEnvelope, &cp, cp.Size+envelopeHeader, substrate.TagSystem)
		}
	}
}

// installRecovered installs an orphaned object from its checkpoint, with the
// per-origin reorder expectations reset to the execution watermarks — so
// replayed envelopes that already ran are discarded as stale while everything
// genuinely lost runs in order. Idempotent: if the object is already resident
// (two verdicts raced across a coordinator crash), the copy is dropped.
func (l *Layer) installRecovered(ck *recov.Checkpoint) {
	mp := MobilePtr{Home: ck.ID.Home, Index: ck.ID.Index}
	if _, resident := l.objects[mp]; resident {
		l.Stats.MigrationsDup++
		return
	}
	l.Stats.Recovered++
	l.tr.Instant(trace.EvRepair, l.Proc().Now(), trace.ObjKey(mp.Home, mp.Index), int64(ck.Loc), int64(ck.Size))
	expect := make(map[int]uint64, len(ck.Done))
	for o, s := range ck.Done {
		expect[o] = s
	}
	obj := &Object{
		MP:     mp,
		Data:   ck.Data,
		Size:   ck.Size,
		Weight: ck.Weight,
		expect: expect,
		hold:   make(map[holdKey]*Envelope),
	}
	l.install(obj)
	if l.rp != nil {
		l.rp.ObjectLanded(oid(mp), obj.Data, obj.Size, obj.Weight)
	}
	if mp.Home != l.Proc().ID() {
		l.c.SendTagged(mp.Home, l.hLocation, &locationUpdate{mp, l.Proc().ID()}, 16, substrate.TagSystem)
	}
	l.drainRestoreHold(mp)
}

// RetryHeld re-runs envelopes parked by forward() once directory repair may
// have re-resolved their objects. Called from the scheduler's recovery tick;
// envelopes that still resolve nowhere live simply park again.
func (l *Layer) RetryHeld() {
	if l.rp == nil || len(l.restoreHold) == 0 {
		return
	}
	held := l.restoreHold
	l.restoreHold = nil
	for _, env := range held {
		l.arrive(env)
	}
}

// drainRestoreHold re-runs parked envelopes addressed to mp, which just
// became resident here.
func (l *Layer) drainRestoreHold(mp MobilePtr) {
	if len(l.restoreHold) == 0 {
		return
	}
	keep := l.restoreHold[:0]
	var redeliver []*Envelope
	for _, env := range l.restoreHold {
		if env.MP == mp {
			redeliver = append(redeliver, env)
		} else {
			keep = append(keep, env)
		}
	}
	l.restoreHold = keep
	for _, env := range redeliver {
		l.arrive(env)
	}
}
