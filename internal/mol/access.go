package mol

import (
	"prema/internal/dmcs"
	"prema/internal/substrate"
)

// Remote data access (the MOL paper's mol_get-style consistent access
// mechanism): a Get targets a mobile pointer, a read handler runs at the
// object's current host, and the extracted value returns to the requester's
// continuation. Like every mol message, Gets route through migration
// forwarding and respect per-origin ordering — so a Get issued after an
// update message from the same processor observes that update.

// Reader extracts the requested view from the object at its host. It must
// not retain obj.
type Reader func(obj *Object) (value any, size int)

// getRequest travels to the object; getReply returns to the requester.
type getRequest struct {
	ID     uint64
	Reader int // index into the registered readers
	Origin int
}

type getReply struct {
	ID    uint64
	Value any
}

// RegisterReader installs a read extractor and returns its ID; SPMD
// registration order applies.
func (l *Layer) RegisterReader(r Reader) int {
	l.ensureAccess()
	l.readers = append(l.readers, r)
	return len(l.readers) - 1
}

// Get requests a read of the object named by mp: reader (a RegisterReader
// ID) runs at the object's host, and done is invoked here with the value
// once the reply arrives (at a poll). Gets from this processor to mp are
// ordered with its other messages to mp.
func (l *Layer) Get(mp MobilePtr, reader int, done func(value any)) {
	l.ensureAccess()
	l.getSeq++
	id := l.getSeq
	l.getPending[id] = done
	l.MessageTagged(mp, l.hGetReq, getRequest{ID: id, Reader: reader, Origin: l.Proc().ID()}, 24, substrate.TagApp)
}

// PendingGets returns the number of Gets awaiting replies.
func (l *Layer) PendingGets() int { return len(l.getPending) }

// ensureAccess lazily registers the access-layer handlers. The first use
// must happen at the same construction point on every processor (SPMD), as
// with all handler registration.
func (l *Layer) ensureAccess() {
	if l.accessReady {
		return
	}
	l.accessReady = true
	l.getPending = make(map[uint64]func(any))
	// The request is an ordinary object handler: it runs wherever the
	// object lives, extracts the value, and replies directly to the origin.
	l.hGetReq = l.RegisterHandler(func(ll *Layer, obj *Object, src int, data any, size int) {
		req := data.(getRequest)
		value, sz := ll.readers[req.Reader](obj)
		if req.Origin == ll.Proc().ID() {
			ll.completeGet(getReply{ID: req.ID, Value: value})
			return
		}
		ll.Comm().SendTagged(req.Origin, ll.hGetReply, getReply{ID: req.ID, Value: value}, sz+16, substrate.TagApp)
	})
	l.hGetReply = l.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
		l.completeGet(data.(getReply))
	})
}

func (l *Layer) completeGet(r getReply) {
	done, ok := l.getPending[r.ID]
	if !ok {
		panic("mol: get reply without a pending request")
	}
	delete(l.getPending, r.ID)
	done(r.Value)
}
