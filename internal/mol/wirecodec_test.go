package mol

import (
	"reflect"
	"testing"

	"prema/internal/wire"
)

// encDec pushes v through the registry and returns the reconstructed value.
func encDec(t *testing.T, v any) any {
	t.Helper()
	var w wire.Writer
	wire.EncodeAny(&w, v)
	r := wire.NewReader(w.Buf())
	out := wire.DecodeAny(r)
	if r.Err() != nil {
		t.Fatalf("decode %T: %v", v, r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("decode %T left %d bytes", v, r.Remaining())
	}
	return out
}

// TestEnvelopeRoundTrip exercises a fully populated envelope, including a
// typed payload, through the compact codec.
func TestEnvelopeRoundTrip(t *testing.T) {
	e := &Envelope{
		MP:      MobilePtr{Home: 3, Index: 41},
		Handler: 7,
		Data:    []byte{9, 8, 7},
		Size:    3,
		Tag:     1,
		Origin:  12,
		Seq:     900100,
		Hops:    4,
		Weight:  2.5,
	}
	got := encDec(t, e)
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("envelope diverged:\n got %#v\nwant %#v", got, e)
	}
}

// TestMigrationRoundTrip is the hard case: a migration carries the whole
// Object — reorder watermarks and held envelopes included — plus the packed
// work units the scheduler attaches as extra. Map state must survive the
// sorted canonical encoding.
func TestMigrationRoundTrip(t *testing.T) {
	obj := &Object{
		MP:     MobilePtr{Home: 1, Index: 5},
		Data:   42,
		Size:   64,
		Weight: 3.25,
		expect: map[int]uint64{0: 7, 3: 2, 9: 11},
		hold: map[holdKey]*Envelope{
			{origin: 3, seq: 4}: {MP: MobilePtr{Home: 1, Index: 5}, Handler: 2, Data: 10, Size: 8, Tag: 0, Origin: 3, Seq: 4, Weight: 1},
			{origin: 0, seq: 9}: {MP: MobilePtr{Home: 1, Index: 5}, Handler: 2, Data: nil, Size: 0, Tag: 1, Origin: 0, Seq: 9, Hops: 2},
		},
	}
	extra := []*Envelope{
		{MP: MobilePtr{Home: 1, Index: 5}, Handler: 3, Data: 1.5, Size: 8, Origin: 2, Seq: 1},
		{MP: MobilePtr{Home: 1, Index: 5}, Handler: 3, Data: true, Size: 1, Origin: 2, Seq: 2},
	}
	m := &migration{obj: obj, extra: extra}
	got := encDec(t, m).(*migration)
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("migration diverged:\n got obj %#v extra %#v\nwant obj %#v extra %#v",
			got.obj, got.extra, m.obj, m.extra)
	}

	// An empty-state object must round-trip too (fresh objects migrate
	// before any reordering happens).
	m2 := &migration{obj: &Object{MP: MobilePtr{Home: 0, Index: 1}, expect: map[int]uint64{}, hold: map[holdKey]*Envelope{}}}
	got2 := encDec(t, m2).(*migration)
	if !reflect.DeepEqual(got2, m2) {
		t.Fatalf("empty migration diverged: %#v vs %#v", got2.obj, m2.obj)
	}
}

// TestControlPayloadRoundTrips covers the layer's small control messages.
func TestControlPayloadRoundTrips(t *testing.T) {
	for _, v := range []any{
		&locationUpdate{mp: MobilePtr{Home: 2, Index: 17}, loc: 5},
		getRequest{ID: 77, Reader: 3, Origin: 1},
		getReply{ID: 77, Value: []byte{1, 2}},
		getReply{ID: 78, Value: nil},
		[]*Envelope(nil),
	} {
		got := encDec(t, v)
		if !reflect.DeepEqual(got, v) {
			t.Fatalf("%T diverged:\n got %#v\nwant %#v", v, got, v)
		}
	}
}

// TestEnvelopeFitsModeledHeader guards satellite #1's fix: the compact
// envelope and location encodings must stay inside the sizes the cost model
// charges for them, or every wire-wrapped run reports size drift.
func TestEnvelopeFitsModeledHeader(t *testing.T) {
	var w wire.Writer
	wire.EncodeAny(&w, &Envelope{MP: MobilePtr{Home: 1, Index: 2}, Origin: 3, Seq: 9})
	if w.Len() > envelopeHeader {
		t.Fatalf("nil-payload envelope encodes to %d bytes, modeled header is %d", w.Len(), envelopeHeader)
	}
	w.Reset()
	wire.EncodeAny(&w, &Envelope{MP: MobilePtr{Home: 1, Index: 2}, Data: 7, Size: 8, Origin: 3, Seq: 9})
	if w.Len() > envelopeHeader+8 {
		t.Fatalf("int-payload envelope encodes to %d bytes, modeled size is %d", w.Len(), envelopeHeader+8)
	}
	w.Reset()
	wire.EncodeAny(&w, &locationUpdate{mp: MobilePtr{Home: 1, Index: 2}, loc: 3})
	if w.Len() > 16 {
		t.Fatalf("location update encodes to %d bytes, modeled size is 16", w.Len())
	}
}

// TestRegisterDataCodecGuard: application data kinds live at or above
// KindUser; the mol ranges are reserved.
func TestRegisterDataCodecGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RegisterDataCodec accepted a reserved kind")
		}
	}()
	RegisterDataCodec(wire.KindMolEnvelope, struct{ X int }{}, nil, nil)
}

// TestRegisterDataCodec round-trips a custom application data type through
// the marshal/unmarshal hooks, the path object registration uses for real
// serialization of user payloads.
func TestRegisterDataCodec(t *testing.T) {
	type meshCell struct{ A, B byte }
	RegisterDataCodec(wire.KindUser+100, meshCell{},
		func(data any) []byte {
			c := data.(meshCell)
			return []byte{c.A, c.B}
		},
		func(b []byte) any {
			return meshCell{A: b[0], B: b[1]}
		})
	v := meshCell{A: 4, B: 9}
	if got := encDec(t, v); got != v {
		t.Fatalf("custom data codec diverged: %#v vs %#v", got, v)
	}
}
