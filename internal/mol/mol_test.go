package mol

import (
	"fmt"
	"math/rand"
	"testing"

	"prema/internal/dmcs"
	"prema/internal/sim"
)

// cluster spawns n processors; build runs on each to register handlers and
// returns the processor's body.
func cluster(t *testing.T, n int, cfg Config, build func(l *Layer) func()) {
	t.Helper()
	e := sim.NewEngine(sim.Config{Seed: 3})
	for i := 0; i < n; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			l := New(dmcs.New(p), cfg)
			build(l)()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNilPointer(t *testing.T) {
	if !Nil.IsNil() {
		t.Fatal("Nil should be nil")
	}
	if (MobilePtr{Home: 0, Index: 3}).IsNil() {
		t.Fatal("real pointer reported nil")
	}
	if Nil.String() != "mol:nil" || (MobilePtr{1, 2}).String() != "mol:1:2" {
		t.Fatal("String format")
	}
}

func TestLocalMessageDeliversInProcess(t *testing.T) {
	got := 0
	cluster(t, 1, DefaultConfig(), func(l *Layer) func() {
		h := l.RegisterHandler(func(l *Layer, obj *Object, src int, data any, size int) {
			got = data.(int) + obj.Data.(int)
		})
		return func() {
			mp := l.Register(100, 64)
			l.Message(mp, h, 5, 8)
		}
	})
	if got != 105 {
		t.Fatalf("got = %d", got)
	}
}

func TestRemoteMessage(t *testing.T) {
	var deliveredAt, from int
	var mp MobilePtr
	cluster(t, 2, DefaultConfig(), func(l *Layer) func() {
		h := l.RegisterHandler(func(l *Layer, obj *Object, src int, data any, size int) {
			deliveredAt = l.Proc().ID()
			from = src
		})
		return func() {
			switch l.Proc().ID() {
			case 0:
				mp = l.Register("obj", 64)
				l.Proc().WaitMsg(sim.CatIdle)
				l.Comm().Poll()
			case 1:
				l.Proc().Advance(sim.Millisecond, sim.CatCompute) // let mp be set
				l.Message(mp, h, nil, 8)
			}
		}
	})
	if deliveredAt != 0 || from != 1 {
		t.Fatalf("delivered at %d from %d", deliveredAt, from)
	}
}

func TestMigrationMovesObjectAndData(t *testing.T) {
	var hostSeen int
	cluster(t, 2, DefaultConfig(), func(l *Layer) func() {
		h := l.RegisterHandler(func(l *Layer, obj *Object, src int, data any, size int) {
			hostSeen = l.Proc().ID()
			if obj.Data.(string) != "payload" {
				t.Errorf("object data lost: %v", obj.Data)
			}
		})
		return func() {
			switch l.Proc().ID() {
			case 0:
				mp := l.Register("payload", 128)
				if err := l.Migrate(mp, 1); err != nil {
					t.Error(err)
				}
				if l.Lookup(mp) != nil {
					t.Error("object still resident after migrate")
				}
				// Message after migration must chase the object.
				l.Message(mp, h, nil, 8)
			case 1:
				for l.Stats.Delivered == 0 {
					l.Comm().WaitPoll(sim.CatIdle)
				}
			}
		}
	})
	if hostSeen != 1 {
		t.Fatalf("delivered at %d, want 1", hostSeen)
	}
}

func TestForwardingChasesMigrationChain(t *testing.T) {
	var hops, deliveredAt int
	done := false
	cluster(t, 3, DefaultConfig(), func(l *Layer) func() {
		h := l.RegisterHandler(func(l *Layer, obj *Object, src int, data any, size int) {
			deliveredAt = l.Proc().ID()
			done = true
		})
		var mp MobilePtr
		return func() {
			switch l.Proc().ID() {
			case 0:
				mp = l.Register("obj", 64)
				l.Migrate(mp, 1)
				// Keep polling so we can forward chasing messages.
				for !done {
					if l.Comm().WaitPollFor(200*sim.Millisecond, sim.CatIdle) == 0 {
						return
					}
				}
			case 1:
				// Receive the object, then pass it on to 2.
				for l.Stats.MigrationsIn == 0 {
					l.Comm().WaitPoll(sim.CatIdle)
				}
				l.Migrate(MobilePtr{Home: 0, Index: 0}, 2)
				for !done {
					if l.Comm().WaitPollFor(200*sim.Millisecond, sim.CatIdle) == 0 {
						return
					}
				}
			case 2:
				// Sender with a stale view: believes the object is at home 0.
				l.Proc().Advance(50*sim.Millisecond, sim.CatCompute)
				l.Message(MobilePtr{Home: 0, Index: 0}, h, nil, 8)
				for !done {
					if l.Comm().WaitPollFor(200*sim.Millisecond, sim.CatIdle) == 0 {
						return
					}
				}
				hops = 1 // reached here
			}
		}
	})
	if !done || deliveredAt != 2 {
		t.Fatalf("done=%v deliveredAt=%d", done, deliveredAt)
	}
	_ = hops
}

// TestOrderingAcrossMigration streams numbered messages at an object while
// it migrates; delivery must be in send order with no loss or duplication.
func TestOrderingAcrossMigration(t *testing.T) {
	const numMsgs = 40
	var delivered []int
	cluster(t, 3, DefaultConfig(), func(l *Layer) func() {
		h := l.RegisterHandler(func(l *Layer, obj *Object, src int, data any, size int) {
			delivered = append(delivered, data.(int))
		})
		return func() {
			switch l.Proc().ID() {
			case 0: // object host; migrates the object away mid-stream
				mp := l.Register("obj", 64)
				_ = mp
				for i := 0; i < 20; i++ {
					l.Comm().WaitPollFor(10*sim.Millisecond, sim.CatIdle)
					if i == 5 && l.Lookup(mp) != nil {
						l.Migrate(mp, 1)
					}
				}
				// Keep forwarding stragglers.
				for l.Comm().WaitPollFor(300*sim.Millisecond, sim.CatIdle) > 0 {
				}
			case 1: // receives the object
				for l.Comm().WaitPollFor(500*sim.Millisecond, sim.CatIdle) > 0 || len(delivered) < numMsgs {
					if len(delivered) >= numMsgs {
						break
					}
					if !l.Proc().WaitMsgFor(500*sim.Millisecond, sim.CatIdle) {
						break
					}
				}
			case 2: // the sender
				mp := MobilePtr{Home: 0, Index: 0}
				for i := 0; i < numMsgs; i++ {
					l.Message(mp, h, i, 16)
					l.Proc().Advance(sim.Millisecond, sim.CatCompute)
					l.Comm().PollTag(sim.TagSystem) // absorb location updates
				}
				for l.Comm().WaitPollFor(300*sim.Millisecond, sim.CatIdle) > 0 {
				}
			}
		}
	})
	if len(delivered) != numMsgs {
		t.Fatalf("delivered %d of %d", len(delivered), numMsgs)
	}
	for i, v := range delivered {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, delivered)
		}
	}
}

// TestOrderingPropertyRandomized: many senders, random migrations among
// hosts, every message delivered exactly once and in per-sender order.
func TestOrderingPropertyRandomized(t *testing.T) {
	const (
		procs   = 6
		objects = 4
		msgs    = 30 // per sender per object
	)
	type key struct{ origin, obj int }
	seen := make(map[key][]int)
	total := 0
	cluster(t, procs, DefaultConfig(), func(l *Layer) func() {
		h := l.RegisterHandler(func(l *Layer, obj *Object, src int, data any, size int) {
			d := data.([2]int) // {objIndex, seq}
			k := key{src, d[0]}
			seen[k] = append(seen[k], d[1])
			total++
		})
		return func() {
			rng := rand.New(rand.NewSource(int64(1000 + l.Proc().ID())))
			// All objects homed on proc 0.
			if l.Proc().ID() == 0 {
				for i := 0; i < objects; i++ {
					l.Register(i, 64)
				}
			}
			l.Proc().Advance(sim.Millisecond, sim.CatCompute)
			for i := 0; i < msgs; i++ {
				for o := 0; o < objects; o++ {
					l.Message(MobilePtr{Home: 0, Index: o}, h, [2]int{o, i}, 16)
				}
				l.Proc().Advance(sim.Time(rng.Intn(3000))*sim.Microsecond, sim.CatCompute)
				l.Comm().Poll()
				// Hosts randomly shove resident objects elsewhere.
				if rng.Intn(4) == 0 {
					for mp := range l.Local() {
						dst := rng.Intn(procs)
						if dst != l.Proc().ID() {
							l.Migrate(mp, dst)
						}
						break
					}
				}
			}
			// Drain until globally quiet (bounded by timeout polls).
			for l.Comm().WaitPollFor(500*sim.Millisecond, sim.CatIdle) > 0 {
			}
		}
	})
	want := procs * objects * msgs
	if total != want {
		t.Fatalf("delivered %d of %d messages", total, want)
	}
	for k, ord := range seen {
		for i, v := range ord {
			if v != i {
				t.Fatalf("per-sender order violated for %+v: %v", k, ord)
			}
		}
	}
}

func TestMigrateErrors(t *testing.T) {
	cluster(t, 2, DefaultConfig(), func(l *Layer) func() {
		return func() {
			if l.Proc().ID() != 0 {
				return
			}
			if err := l.Migrate(MobilePtr{Home: 0, Index: 99}, 1); err == nil {
				t.Error("migrating unknown object should fail")
			}
			mp := l.Register("x", 10)
			if err := l.Migrate(mp, 0); err != nil {
				t.Errorf("self-migration should be a no-op: %v", err)
			}
			if l.Lookup(mp) == nil {
				t.Error("self-migration lost the object")
			}
		}
	})
}

func TestMigrationCarriesExtra(t *testing.T) {
	var gotExtra any
	cluster(t, 2, DefaultConfig(), func(l *Layer) func() {
		l.OnMigrateOut = func(obj *Object) any { return "pending-work" }
		l.OnMigrateIn = func(obj *Object, extra any) { gotExtra = extra }
		return func() {
			switch l.Proc().ID() {
			case 0:
				mp := l.Register("obj", 64)
				l.Migrate(mp, 1)
			case 1:
				for l.Stats.MigrationsIn == 0 {
					l.Comm().WaitPoll(sim.CatIdle)
				}
			}
		}
	})
	if gotExtra != "pending-work" {
		t.Fatalf("extra = %v", gotExtra)
	}
}

func TestWeightHintTravels(t *testing.T) {
	var w float64
	cluster(t, 1, DefaultConfig(), func(l *Layer) func() {
		h := l.RegisterHandler(func(l *Layer, obj *Object, src int, data any, size int) {})
		l.SetDeliver(func(l *Layer, obj *Object, env *Envelope) { w = env.Weight })
		return func() {
			mp := l.Register("obj", 8)
			l.MessageWeighted(mp, h, nil, 0, sim.TagApp, 7.5)
		}
	})
	if w != 7.5 {
		t.Fatalf("weight = %v", w)
	}
}

func TestGetReadsRemoteObject(t *testing.T) {
	var got any
	cluster(t, 2, DefaultConfig(), func(l *Layer) func() {
		reader := l.RegisterReader(func(obj *Object) (any, int) {
			return obj.Data.(int) * 2, 8
		})
		return func() {
			switch l.Proc().ID() {
			case 0:
				l.Register(21, 64)
				for l.Comm().WaitPollFor(300*sim.Millisecond, sim.CatIdle) > 0 {
				}
			case 1:
				l.Proc().Advance(sim.Millisecond, sim.CatCompute)
				l.Get(MobilePtr{Home: 0, Index: 0}, reader, func(v any) { got = v })
				if l.PendingGets() != 1 {
					t.Errorf("pending gets = %d", l.PendingGets())
				}
				for got == nil {
					l.Comm().WaitPoll(sim.CatIdle)
				}
			}
		}
	})
	if got != 42 {
		t.Fatalf("got = %v", got)
	}
}

func TestGetFollowsMigration(t *testing.T) {
	var got any
	cluster(t, 3, DefaultConfig(), func(l *Layer) func() {
		reader := l.RegisterReader(func(obj *Object) (any, int) { return obj.Data, 8 })
		return func() {
			switch l.Proc().ID() {
			case 0:
				mp := l.Register("moved-data", 64)
				l.Migrate(mp, 1)
				for l.Comm().WaitPollFor(300*sim.Millisecond, sim.CatIdle) > 0 {
				}
			case 1:
				for l.Comm().WaitPollFor(300*sim.Millisecond, sim.CatIdle) > 0 {
				}
			case 2:
				l.Proc().Advance(50*sim.Millisecond, sim.CatCompute)
				l.Get(MobilePtr{Home: 0, Index: 0}, reader, func(v any) { got = v })
				for got == nil {
					l.Comm().WaitPoll(sim.CatIdle)
				}
			}
		}
	})
	if got != "moved-data" {
		t.Fatalf("got = %v", got)
	}
}

func TestGetLocalObject(t *testing.T) {
	var got any
	cluster(t, 1, DefaultConfig(), func(l *Layer) func() {
		reader := l.RegisterReader(func(obj *Object) (any, int) { return obj.Data, 8 })
		return func() {
			mp := l.Register(7, 8)
			l.Get(mp, reader, func(v any) { got = v })
		}
	})
	if got != 7 {
		t.Fatalf("local get = %v", got)
	}
}
