package sim

// NetworkConfig models a switched commodity cluster interconnect with a
// simple latency + bandwidth (LogP-flavored) cost model. The defaults
// approximate the paper's platform: Fast Ethernet with a user-level MPI
// stack (LAM) on 333 MHz UltraSPARC 2i nodes.
type NetworkConfig struct {
	// Latency is the end-to-end wire + stack latency for a zero-byte message.
	Latency Time
	// PerByte is the transmission time per payload byte (inverse bandwidth).
	// Fast Ethernet ~ 12.5 MB/s => 80 ns/byte.
	PerByte Time
	// SendCPU is sender-side CPU occupancy per message (the "o" of LogP);
	// accounted to CatMessaging on the sender.
	SendCPU Time
	// RecvCPU is receiver-side CPU occupancy per message when it is pulled
	// out of the inbox; accounted to CatMessaging on the receiver.
	RecvCPU Time
}

// DefaultNetwork returns a configuration approximating LAM/MPI over Fast
// Ethernet (the paper's testbed interconnect).
func DefaultNetwork() NetworkConfig {
	return NetworkConfig{
		Latency: 60 * Microsecond,
		PerByte: 80 * Nanosecond,
		SendCPU: 15 * Microsecond,
		RecvCPU: 15 * Microsecond,
	}
}

// network tracks per-(src,dst) last-arrival times so that delivery between a
// pair of processors is FIFO, matching the in-order guarantee of the MPI
// point-to-point channels PREMA's DMCS layer is built on.
type network struct {
	cfg         NetworkConfig
	lastArrival map[pair]Time
}

type pair struct{ src, dst int }

func newNetwork(cfg NetworkConfig) *network {
	return &network{cfg: cfg, lastArrival: make(map[pair]Time)}
}

// arrivalTime computes when a message of the given size sent now from src
// arrives at dst, enforcing FIFO ordering per (src,dst) pair.
func (n *network) arrivalTime(now Time, src, dst, size int) Time {
	t := now + n.cfg.Latency + Time(size)*n.cfg.PerByte
	p := pair{src, dst}
	if last, ok := n.lastArrival[p]; ok && t <= last {
		t = last + 1
	}
	n.lastArrival[p] = t
	return t
}
