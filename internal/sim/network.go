package sim

// NetworkConfig models a switched commodity cluster interconnect with a
// simple latency + bandwidth (LogP-flavored) cost model. The defaults
// approximate the paper's platform: Fast Ethernet with a user-level MPI
// stack (LAM) on 333 MHz UltraSPARC 2i nodes.
//
// Setting ZoneSize > 0 turns the flat interconnect into a two-level one:
// processors are grouped into zones (racks / switches) of ZoneSize
// consecutive IDs, messages inside a zone pay ZoneLatency, and messages
// between zones pay Latency. Heterogeneous links are what makes the sharded
// engine's per-(shard,shard) lookahead matrix non-trivial: shards whose
// processors only reach each other over the slow inter-zone links
// synchronize in windows as wide as the inter-zone latency instead of the
// global minimum (see engine.go).
type NetworkConfig struct {
	// Latency is the end-to-end wire + stack latency for a zero-byte message
	// (between zones, when ZoneSize > 0).
	Latency Time
	// PerByte is the transmission time per payload byte (inverse bandwidth).
	// Fast Ethernet ~ 12.5 MB/s => 80 ns/byte.
	PerByte Time
	// SendCPU is sender-side CPU occupancy per message (the "o" of LogP);
	// accounted to CatMessaging on the sender.
	SendCPU Time
	// RecvCPU is receiver-side CPU occupancy per message when it is pulled
	// out of the inbox; accounted to CatMessaging on the receiver.
	RecvCPU Time
	// ZoneSize groups processors into zones of this many consecutive IDs
	// (0 = flat network, every link costs Latency).
	ZoneSize int
	// ZoneLatency is the intra-zone latency when ZoneSize > 0. A value <= 0
	// means "unset": intra-zone links fall back to Latency and the network
	// behaves exactly like the flat model.
	ZoneLatency Time
}

// DefaultNetwork returns a configuration approximating LAM/MPI over Fast
// Ethernet (the paper's testbed interconnect).
func DefaultNetwork() NetworkConfig {
	return NetworkConfig{
		Latency: 60 * Microsecond,
		PerByte: 80 * Nanosecond,
		SendCPU: 15 * Microsecond,
		RecvCPU: 15 * Microsecond,
	}
}

// zoned reports whether the configuration has distinct intra-zone links.
func (c NetworkConfig) zoned() bool { return c.ZoneSize > 0 && c.ZoneLatency > 0 }

// zoneOf returns the zone of processor id (0 when the network is flat).
func (c NetworkConfig) zoneOf(id int) int {
	if !c.zoned() {
		return 0
	}
	return id / c.ZoneSize
}

// latencyOf returns the zero-byte latency of the (src,dst) link.
func (c NetworkConfig) latencyOf(src, dst int) Time {
	if c.zoned() && src/c.ZoneSize == dst/c.ZoneSize {
		return c.ZoneLatency
	}
	return c.Latency
}

// MinLatency returns the smallest latency any link can have — the globally
// safe conservative lookahead. Sharding requires it to be positive.
func (c NetworkConfig) MinLatency() Time {
	if c.zoned() && c.ZoneLatency < c.Latency {
		return c.ZoneLatency
	}
	return c.Latency
}

// network tracks per-(src,dst) last-arrival times so that delivery between a
// pair of processors is FIFO, matching the in-order guarantee of the MPI
// point-to-point channels PREMA's DMCS layer is built on.
type network struct {
	cfg         NetworkConfig
	lastArrival map[pair]Time
}

type pair struct{ src, dst int }

func newNetwork(cfg NetworkConfig) *network {
	return &network{cfg: cfg, lastArrival: make(map[pair]Time)}
}

// arrivalTime computes when a message of the given size sent now from src
// arrives at dst, enforcing FIFO ordering per (src,dst) pair. The FIFO bump
// only ever moves arrivals later, so latencyOf stays a valid lower bound —
// the property the sharded engine's lookahead matrix relies on.
func (n *network) arrivalTime(now Time, src, dst, size int) Time {
	t := now + n.cfg.latencyOf(src, dst) + Time(size)*n.cfg.PerByte
	p := pair{src, dst}
	if last, ok := n.lastArrival[p]; ok && t <= last {
		t = last + 1
	}
	n.lastArrival[p] = t
	return t
}
