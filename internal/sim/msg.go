package sim

import "prema/internal/substrate"

// Msg is a message in flight between simulated processors; it is an alias of
// substrate.Msg (see that type for field semantics). The simulator treats
// the payload as opaque and charges the network cost model for Size bytes.
type Msg = substrate.Msg

// Traffic-class tags. See Msg.Tag.
const (
	TagApp    = substrate.TagApp
	TagSystem = substrate.TagSystem
)
