package sim

import (
	"errors"
	"math/rand"
)

var errKilled = errors.New("sim: processor killed")

// Proc is a simulated processor. A Proc's body function runs on its own
// goroutine but only ever while its owning shard has handed it control, so
// bodies may freely touch their shard's state (schedule events, send
// messages) without synchronization.
//
// All methods that advance virtual time (Advance, Send, Recv*, Wait*) must be
// called from the Proc's own body; calling them from another goroutine or
// from an engine event handler corrupts the handoff protocol.
type Proc struct {
	id   int
	name string
	sh   *shard

	resume chan struct{} // shard -> proc: you have control
	parked chan struct{} // proc -> shard: I blocked or finished

	blocked    bool
	waitingMsg bool
	waitGen    uint64
	killed     bool
	done       bool
	finishedAt Time

	sendSeq uint64     // per-processor message send counter (ordering band 1)
	rng     *rand.Rand // lazily built deterministic per-processor stream

	inbox msgRing
	acct  Account
}

// ID returns the processor's dense ID (spawn order).
func (p *Proc) ID() int { return p.id }

// Name returns the processor's name.
func (p *Proc) Name() string { return p.name }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.sh.eng }

// Now returns the current virtual time on the processor's shard.
func (p *Proc) Now() Time { return p.sh.now }

// Account returns the processor's time ledger. The pointer stays valid for
// the lifetime of the simulation; read it after Run for final figures.
func (p *Proc) Account() *Account { return &p.acct }

// Charge adds virtual time to a category without advancing the clock. It is
// used to re-attribute time (e.g. splitting a receive between messaging and
// callback overhead); prefer Advance for real time consumption.
func (p *Proc) Charge(cat Category, d Time) { p.acct[cat] += d }

// yield returns control to the shard and blocks until reawakened.
func (p *Proc) yield() {
	p.parked <- struct{}{}
	<-p.resume
	if p.killed {
		panic(errKilled)
	}
}

// park blocks the processor, attributing the blocked duration to cat.
// The caller must have arranged for a wake-up (timer event or message
// delivery) before calling park.
func (p *Proc) park(cat Category) {
	start := p.sh.now
	p.blocked = true
	p.yield()
	p.blocked = false
	p.acct[cat] += p.sh.now - start
	p.sh.recordSpan(p.id, cat, start, p.sh.now)
}

// Advance consumes d of CPU time, attributed to cat. It models computation
// (CatCompute), runtime bookkeeping (CatScheduling, CatCallback, ...), or any
// other busy occupancy. Control returns after virtual time has advanced.
//
// Fast path: when the wake would be the very next event the shard pops —
// nothing else is pending strictly before it, and it lands inside the
// current window — firing it through the heap would hand control to the
// event loop only for it to hand control straight back. Instead the clock
// is bumped in place, skipping the heap round trip and the two goroutine
// handoffs of park/transfer. Ties must take the slow path: a fresh wake
// carries the largest ordering key, so an equal-time entry already in the
// heap fires first.
func (p *Proc) Advance(d Time, cat Category) {
	if d <= 0 {
		return
	}
	p.waitGen++
	s := p.sh
	at := s.now + d
	if at < s.end && !s.stopped && s.err == nil &&
		(len(s.heap.e) == 0 || at < s.heap.e[0].at) {
		start := s.now
		s.now = at
		s.fired++
		p.acct[cat] += d
		s.recordSpan(p.id, cat, start, at)
		return
	}
	s.atWake(d, p, p.waitGen)
	p.park(cat)
}

// Send transmits m across the simulated network, stamping Src and SentAt.
// The sender is charged the per-message send CPU overhead against cat
// (normally CatMessaging). Delivery is asynchronous and FIFO per (src,dst).
func (p *Proc) Send(m *Msg, cat Category) {
	m.Src = p.id
	m.SentAt = p.sh.now
	if o := p.sh.net.cfg.SendCPU; o > 0 {
		p.Advance(o, cat)
	}
	p.sendSeq++
	p.sh.post(m, p.sendSeq)
}

// InboxLen returns the number of queued, undelivered-to-application messages.
func (p *Proc) InboxLen() int { return p.inbox.Len() }

// HasMsg reports whether any queued message carries the given tag.
func (p *Proc) HasMsg(tag int) bool {
	for i := 0; i < p.inbox.Len(); i++ {
		if p.inbox.at(i).Tag == tag {
			return true
		}
	}
	return false
}

// TryRecv pops the oldest queued message, charging receive CPU overhead to
// cat. It returns nil when the inbox is empty.
func (p *Proc) TryRecv(cat Category) *Msg {
	if p.inbox.Len() == 0 {
		return nil
	}
	m := p.inbox.popFront()
	if o := p.sh.net.cfg.RecvCPU; o > 0 {
		p.Advance(o, cat)
	}
	return m
}

// TryRecvTag pops the oldest queued message with the given tag, preserving
// the relative order of the remaining messages. It returns nil when no such
// message is queued. This implements PREMA's separation of system
// (load-balancer) traffic from application traffic (§4.2 of the paper).
func (p *Proc) TryRecvTag(tag int, cat Category) *Msg {
	for i := 0; i < p.inbox.Len(); i++ {
		if p.inbox.at(i).Tag == tag {
			m := p.inbox.removeAt(i)
			if o := p.sh.net.cfg.RecvCPU; o > 0 {
				p.Advance(o, cat)
			}
			return m
		}
	}
	return nil
}

// Recv blocks until a message is available and returns it, attributing
// blocked time to waitCat (normally CatIdle) and receive overhead to
// CatMessaging.
func (p *Proc) Recv(waitCat Category) *Msg {
	p.WaitMsg(waitCat)
	return p.TryRecv(CatMessaging)
}

// WaitMsg blocks until at least one message is queued, attributing the wait
// to cat.
func (p *Proc) WaitMsg(cat Category) {
	for p.inbox.Len() == 0 {
		p.waitGen++
		p.waitingMsg = true
		p.park(cat)
		p.waitingMsg = false
	}
}

// WaitMsgFor blocks until a message is queued or d elapses, attributing the
// wait to cat. It reports whether a message is available.
func (p *Proc) WaitMsgFor(d Time, cat Category) bool {
	deadline := p.sh.now + d
	for p.inbox.Len() == 0 && p.sh.now < deadline {
		p.waitGen++
		p.sh.atWake(deadline-p.sh.now, p, p.waitGen)
		p.waitingMsg = true
		p.park(cat)
		p.waitingMsg = false
	}
	return p.inbox.Len() > 0
}
