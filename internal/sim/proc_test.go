package sim

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestSendToSelf(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	e.Spawn("p", func(p *Proc) {
		p.Send(&Msg{Dst: 0, Kind: 5}, CatMessaging)
		m := p.Recv(CatIdle)
		if m.Kind != 5 || m.Src != 0 {
			t.Errorf("self message = %+v", m)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitMsgForReturnsImmediatelyWhenQueued(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	e.Spawn("recv", func(p *Proc) {
		p.Advance(Second, CatCompute) // let the message land first
		start := p.Now()
		if !p.WaitMsgFor(10*Second, CatIdle) {
			t.Error("message should be queued")
		}
		if p.Now() != start {
			t.Errorf("wait consumed time: %v", p.Now()-start)
		}
	})
	e.Spawn("send", func(p *Proc) {
		p.Send(&Msg{Dst: 0}, CatMessaging)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSpawnDuringRun(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	childRan := false
	e.Spawn("parent", func(p *Proc) {
		p.Advance(Second, CatCompute)
		e.Spawn("child", func(c *Proc) {
			if c.Now() != Second {
				t.Errorf("child started at %v", c.Now())
			}
			childRan = true
		})
		p.Advance(Second, CatCompute)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child never ran")
	}
}

func TestEmptyEngineRuns(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Makespan() != 0 {
		t.Fatal("empty makespan")
	}
}

// TestTeardownLeavesNoGoroutines: after Run returns (including deadlock
// teardown) the processor goroutines must be gone.
func TestTeardownLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		e := NewEngine(Config{Seed: 1})
		for i := 0; i < 20; i++ {
			e.Spawn("stuck", func(p *Proc) { p.WaitMsg(CatIdle) })
		}
		if err := e.Run(); err == nil {
			t.Fatal("expected deadlock")
		}
	}
	// Give exiting goroutines a moment.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	after := runtime.NumGoroutine()
	if after > before+2 {
		t.Fatalf("leaked goroutines: %d -> %d", before, after)
	}
}

func TestProcIdentity(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	p := e.Spawn("alice", func(p *Proc) {})
	if p.ID() != 0 || p.Name() != "alice" || p.Engine() != e {
		t.Fatal("identity accessors")
	}
	if e.NumProcs() != 1 || e.Proc(0) != p {
		t.Fatal("engine accessors")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkDefaultsApplied(t *testing.T) {
	e := NewEngine(Config{}) // zero network -> defaults
	var arrive Time
	e.Spawn("r", func(p *Proc) {
		m := p.Recv(CatIdle)
		arrive = m.ArrivedAt
	})
	e.Spawn("s", func(p *Proc) {
		p.Send(&Msg{Dst: 0, Size: 0}, CatMessaging)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := DefaultNetwork().SendCPU + DefaultNetwork().Latency
	if arrive != want {
		t.Fatalf("arrival %v, want %v", arrive, want)
	}
}

func TestMessageStamps(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	e.Spawn("r", func(p *Proc) {
		m := p.Recv(CatIdle)
		if m.SentAt >= m.ArrivedAt {
			t.Errorf("stamps: sent %v arrived %v", m.SentAt, m.ArrivedAt)
		}
	})
	e.Spawn("s", func(p *Proc) {
		p.Advance(100*Millisecond, CatCompute)
		p.Send(&Msg{Dst: 0, Size: 128}, CatMessaging)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHugeFanIn(t *testing.T) {
	const senders = 100
	e := NewEngine(Config{Seed: 1})
	got := 0
	e.Spawn("sink", func(p *Proc) {
		for got < senders {
			p.WaitMsg(CatIdle)
			for p.TryRecv(CatMessaging) != nil {
				got++
			}
		}
	})
	for i := 0; i < senders; i++ {
		e.Spawn("s", func(p *Proc) {
			p.Send(&Msg{Dst: 0, Size: 64}, CatMessaging)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != senders {
		t.Fatalf("got %d of %d", got, senders)
	}
}

func TestTracingRecordsSpans(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	e.EnableTracing()
	e.Spawn("p", func(p *Proc) {
		p.Advance(Second, CatCompute)
		p.Advance(Millisecond, CatScheduling)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	spans := e.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %v", spans)
	}
	if spans[0] != (Span{Proc: 0, Cat: CatCompute, From: 0, To: Second}) {
		t.Fatalf("span0 = %+v", spans[0])
	}
	if spans[1].Cat != CatScheduling || spans[1].From != Second {
		t.Fatalf("span1 = %+v", spans[1])
	}
}

func TestTracingOffByDefault(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	e.Spawn("p", func(p *Proc) { p.Advance(Second, CatCompute) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(e.Spans()) != 0 {
		t.Fatal("tracing should be off by default")
	}
}

func TestWriteSpansCSV(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	e.EnableTracing()
	e.Spawn("p", func(p *Proc) { p.Advance(500*Millisecond, CatCompute) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := e.WriteSpansCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "proc,category,from,to\n0,Computation,0.000000,0.500000\n"
	if sb.String() != want {
		t.Fatalf("csv = %q", sb.String())
	}
}
