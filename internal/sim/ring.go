package sim

// msgRing is a growable FIFO ring buffer of queued messages. It replaces the
// append-and-reslice inbox: popping the front is O(1) with no slice churn,
// and the backing array is reused across the simulation instead of being
// reallocated every time the inbox drains. Capacity is always a power of
// two so index wrapping is a mask.
type msgRing struct {
	buf  []*Msg
	head int // index of the oldest queued message
	n    int // number of queued messages
}

const ringMinCap = 16

// Len returns the number of queued messages.
func (r *msgRing) Len() int { return r.n }

// at returns the i-th queued message (0 = oldest) without removing it.
func (r *msgRing) at(i int) *Msg { return r.buf[(r.head+i)&(len(r.buf)-1)] }

// push appends m behind the newest queued message.
func (r *msgRing) push(m *Msg) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = m
	r.n++
}

// popFront removes and returns the oldest queued message. The ring must be
// non-empty.
func (r *msgRing) popFront() *Msg {
	m := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return m
}

// removeAt removes and returns the i-th queued message, preserving the
// relative order of the rest. It shifts whichever side of the ring is
// shorter.
func (r *msgRing) removeAt(i int) *Msg {
	m := r.at(i)
	mask := len(r.buf) - 1
	if i <= r.n-1-i {
		for j := i; j > 0; j-- {
			r.buf[(r.head+j)&mask] = r.buf[(r.head+j-1)&mask]
		}
		r.buf[r.head] = nil
		r.head = (r.head + 1) & mask
	} else {
		for j := i; j < r.n-1; j++ {
			r.buf[(r.head+j)&mask] = r.buf[(r.head+j+1)&mask]
		}
		r.buf[(r.head+r.n-1)&mask] = nil
	}
	r.n--
	return m
}

func (r *msgRing) grow() {
	newCap := 2 * len(r.buf)
	if newCap < ringMinCap {
		newCap = ringMinCap
	}
	nb := make([]*Msg, newCap)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}
