package sim

import (
	"runtime"
	"testing"
)

// TestScheduleFireZeroAllocs: once the free list is warm, scheduling and
// firing closure-free events allocates nothing — the engine recycles event
// structs and the heap's backing array stops growing.
func TestScheduleFireZeroAllocs(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	fired := 0
	tick := func() { fired++ }
	drain := func() {
		for i := 0; i < 64; i++ {
			e.After(Time(i), tick)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	drain() // warm the free list and heap capacity
	allocs := testing.AllocsPerRun(50, drain)
	if allocs != 0 {
		t.Errorf("schedule+fire allocates %v per cycle of 64 events, want 0", allocs)
	}
	if fired == 0 {
		t.Fatal("no events fired")
	}
}

// TestProcEventZeroSteadyStateAllocs: the full hot path of a simulated
// processor — Advance scheduling a typed wake event, the engine firing it
// and handing control back — is allocation-free in steady state.
func TestProcEventZeroSteadyStateAllocs(t *testing.T) {
	const n = 20000
	var allocs uint64
	e := NewEngine(Config{Seed: 1})
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < 2000; i++ { // warm-up: free list, heap, runtime caches
			p.Advance(Microsecond, CatCompute)
		}
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		for i := 0; i < n; i++ {
			p.Advance(Microsecond, CatCompute)
		}
		runtime.ReadMemStats(&m1)
		allocs = m1.Mallocs - m0.Mallocs
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// The old engine allocated 2 per event (event struct + wake closure).
	// Allow a whisker of slack for runtime-internal allocations.
	if perEvent := float64(allocs) / n; perEvent > 0.01 {
		t.Errorf("Advance hot path allocates %.4f per event (%d total), want ~0", perEvent, allocs)
	}
}

// TestMessageSteadyStateAllocs: posting and delivering messages through the
// engine allocates nothing beyond the caller's own Msg values: typed deliver
// events come from the free list and the ring-buffer inbox reuses its
// backing array.
func TestMessageSteadyStateAllocs(t *testing.T) {
	const n = 10000
	var allocs uint64
	e := NewEngine(Config{Seed: 1})
	e.Spawn("rx", func(p *Proc) {
		for i := 0; i < 1000+n; i++ {
			p.Recv(CatIdle)
		}
	})
	e.Spawn("tx", func(p *Proc) {
		msgs := make([]Msg, 1000+n) // preallocate so only engine allocs count
		for i := range msgs {
			msgs[i] = Msg{Dst: 0, Size: 64}
		}
		send := func(m *Msg) {
			p.Send(m, CatMessaging)
			p.Advance(10*Microsecond, CatCompute)
		}
		for i := 0; i < 1000; i++ { // warm-up
			send(&msgs[i])
		}
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		for i := 0; i < n; i++ {
			send(&msgs[1000+i])
		}
		runtime.ReadMemStats(&m1)
		allocs = m1.Mallocs - m0.Mallocs
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if perMsg := float64(allocs) / n; perMsg > 0.01 {
		t.Errorf("send/deliver hot path allocates %.4f per message (%d total), want ~0", perMsg, allocs)
	}
}
