package sim

import (
	"math/rand"

	"prema/internal/substrate"
)

// This file is the simulator's substrate adapter: Proc implements
// substrate.Endpoint directly, and Machine wraps Engine to implement
// substrate.Machine. The adapter adds no cost model of its own, so reports
// produced through it are byte-identical to reports produced through the
// Engine API (internal/bench/determinism_test.go guards this).

// NumPeers returns the machine size. It implements substrate.Endpoint.
func (p *Proc) NumPeers() int { return len(p.sh.eng.procs) }

// Rand returns this processor's deterministic random stream, seeded
// Config.Seed + ID — the same per-endpoint convention the real-concurrency
// backend uses. Each processor owning its own stream (rather than all of
// them sharing the engine's) is what keeps policy randomness byte-identical
// across shard counts: a stream is consumed only by its processor's own
// execution, so its draw sequence cannot depend on how processors are
// partitioned.
func (p *Proc) Rand() *rand.Rand {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.sh.eng.cfg.Seed + int64(p.id)))
	}
	return p.rng
}

var _ substrate.Endpoint = (*Proc)(nil)

// Machine adapts an Engine to substrate.Machine so that backend-neutral
// drivers (bench, examples, conformance tests) can run on the simulator.
type Machine struct {
	*Engine
}

// NewMachine returns a simulator machine with the given configuration.
func NewMachine(cfg Config) Machine { return Machine{NewEngine(cfg)} }

// Spawn implements substrate.Machine.
func (m Machine) Spawn(name string, body func(substrate.Endpoint)) {
	m.Engine.Spawn(name, func(p *Proc) { body(p) })
}

// Account implements substrate.Machine.
func (m Machine) Account(i int) *substrate.Account { return m.Engine.Proc(i).Account() }

var _ substrate.Machine = Machine{}
