package sim

import (
	"math/rand"

	"prema/internal/substrate"
)

// This file is the simulator's substrate adapter: Proc implements
// substrate.Endpoint directly, and Machine wraps Engine to implement
// substrate.Machine. The adapter adds no cost model of its own, so reports
// produced through it are byte-identical to reports produced through the
// Engine API (internal/bench/determinism_test.go guards this).

// NumPeers returns the machine size. It implements substrate.Endpoint.
func (p *Proc) NumPeers() int { return len(p.eng.procs) }

// Rand returns the engine's deterministic random source: every endpoint
// shares the one seeded stream, which is safe because at most one processor
// executes at any instant, and is required for reproducible runs.
func (p *Proc) Rand() *rand.Rand { return p.eng.rng }

var _ substrate.Endpoint = (*Proc)(nil)

// Machine adapts an Engine to substrate.Machine so that backend-neutral
// drivers (bench, examples, conformance tests) can run on the simulator.
type Machine struct {
	*Engine
}

// NewMachine returns a simulator machine with the given configuration.
func NewMachine(cfg Config) Machine { return Machine{NewEngine(cfg)} }

// Spawn implements substrate.Machine.
func (m Machine) Spawn(name string, body func(substrate.Endpoint)) {
	m.Engine.Spawn(name, func(p *Proc) { body(p) })
}

// Account implements substrate.Machine.
func (m Machine) Account(i int) *substrate.Account { return m.Engine.Proc(i).Account() }

var _ substrate.Machine = Machine{}
