package sim

// shard owns one partition of the simulated processors: their event heap,
// event free list, local virtual clock, per-(src,dst) FIFO state for
// messages *sent* by its processors, span buffer, and outgoing cross-shard
// mailboxes. Processors are assigned by Config.Partition (round-robin when
// nil, which spreads the figure workloads' heavy low-index units across
// shards; internal/bench adds blocked and load-aware strategies on top).
//
// Everything a shard touches while a window executes is owned by that shard
// — the engine-level structures (procs slice, config, lookahead) are
// read-only during Run. Shards communicate only through the outboxes, which
// the coordinator drains between windows while every worker is parked at
// the barrier.
type shard struct {
	eng *Engine
	id  int

	now   Time
	end   Time // current window bound; 0 outside runWindow (closes the Advance fast path)
	heap  eventHeap
	fired uint64 // events executed (telemetry for perfbench's ns/event)

	free     *event // recycled fired events (intrusive list via event.next)
	allocSeq uint64 // local-band ordering counter (see event.go)

	running *Proc
	net     *network // FIFO per (src,dst) for locally-sourced messages

	// out[d] buffers deliveries destined for shard d's processors during
	// the current window; the coordinator moves them into d's heap at the
	// barrier. Entries are reused across windows (zero-alloc steady state).
	out [][]mailEntry

	spans []Span

	err     error // first processor panic on this shard
	stopped bool  // local view: abort the current window after this event

	// Barrier channels (sharded mode only): the coordinator sends the
	// window end time, the worker replies when the window is drained.
	start chan Time
	done  chan struct{}
}

// mailEntry is one cross-shard message delivery waiting at the window
// barrier: the precomputed arrival time and band-1 ordering key plus the
// message itself. The destination shard turns it into a heap event at the
// exchange, drawing from its own free list.
type mailEntry struct {
	at  Time
	ord uint64
	m   *Msg
}

func newShard(e *Engine, id, nShards int) *shard {
	s := &shard{
		eng:  e,
		id:   id,
		heap: eventHeap{e: make([]heapEntry, 0, 1024)},
		net:  newNetwork(e.cfg.Network),
		out:  make([][]mailEntry, nShards),
	}
	return s
}

// alloc takes an event from the free list, or heap-allocates when the list
// is empty (cold start and queue-depth high-water marks only).
func (s *shard) alloc() *event {
	ev := s.free
	if ev == nil {
		ev = &event{}
	} else {
		s.free = ev.next
		ev.next = nil
	}
	return ev
}

// release returns a fired event to the free list, dropping its operand
// references so recycled events retain nothing.
func (s *shard) release(ev *event) {
	*ev = event{next: s.free}
	s.free = ev
}

// ordNext returns the next local-band ordering key (wakes, transfers,
// callbacks — events that never cross a shard boundary).
func (s *shard) ordNext() uint64 {
	s.allocSeq++
	return ordLocalBand | s.allocSeq
}

// at schedules fn to run d from now on this shard's event loop.
func (s *shard) at(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	ev := s.alloc()
	ev.kind = evFunc
	ev.fn = fn
	s.heap.Push(s.now+d, s.ordNext(), ev)
}

// atWake schedules p.wakeIf(gen) at now+d without allocating a closure.
func (s *shard) atWake(d Time, p *Proc, gen uint64) {
	if d < 0 {
		d = 0
	}
	ev := s.alloc()
	ev.kind = evWake
	ev.proc = p
	ev.gen = gen
	s.heap.Push(s.now+d, s.ordNext(), ev)
}

// atTransfer schedules a control handoff to p at now+d.
func (s *shard) atTransfer(d Time, p *Proc) {
	if d < 0 {
		d = 0
	}
	ev := s.alloc()
	ev.kind = evTransfer
	ev.proc = p
	s.heap.Push(s.now+d, s.ordNext(), ev)
}

// post injects m into the network from shard context, charging no CPU. The
// sender has already stamped Src/SentAt and consumed its send overhead.
// Local deliveries go straight onto this shard's heap; cross-shard
// deliveries wait in the outbox until the window barrier. Both carry the
// delivery-band (src, sendSeq) ordering key, so where the destination lives
// does not change when — or in what order — the delivery fires.
func (s *shard) post(m *Msg, sendSeq uint64) {
	arrival := s.net.arrivalTime(s.now, m.Src, m.Dst, m.Size)
	ord := deliverOrd(m.Src, sendSeq)
	d := s.eng.shardOf(m.Dst)
	if d == s.id {
		ev := s.alloc()
		ev.kind = evDeliver
		ev.msg = m
		s.heap.Push(arrival, ord, ev)
		return
	}
	s.out[d] = append(s.out[d], mailEntry{at: arrival, ord: ord, m: m})
}

// deliver appends m to its destination inbox and wakes the destination if
// it is blocked waiting for a message.
func (s *shard) deliver(m *Msg) {
	p := s.eng.procs[m.Dst]
	m.ArrivedAt = s.now
	p.inbox.push(m)
	if p.blocked && p.waitingMsg {
		p.waitGen++ // invalidate any pending wait timeout
		s.transfer(p)
	}
}

// transfer hands this shard's thread of control to p until p blocks or
// finishes. It must only be called from the shard's event loop (or the
// engine's teardown, after all workers have quiesced); processors never
// call it directly.
func (s *shard) transfer(p *Proc) {
	if p.done {
		return
	}
	prev := s.running
	s.running = p
	p.resume <- struct{}{}
	<-p.parked
	s.running = prev
}

// runWindow drains this shard's heap up to (excluding) end. The conservative
// lookahead guarantees no cross-shard delivery can land inside the current
// window, so the pop order below — (at, ord) over an exclusively-owned heap
// — is the shard's one and only event order, independent of S.
//
// It publishes the bound in s.end while draining so Proc.Advance can take
// its in-window fast path, and clears it on exit so no processor resumed
// outside a window (teardown) can advance the clock.
func (s *shard) runWindow(end Time) {
	s.end = end
	s.drain(end)
	s.end = 0
}

// drain is runWindow's loop body. The wake and deliver arms are inlined
// here rather than dispatched through a helper: together they are >95% of
// fired events, and keeping them in the loop body keeps the whole hot path
// — pop, clock bump, dispatch, free-list release — in one frame.
func (s *shard) drain(end Time) {
	for !s.stopped && s.err == nil {
		n := len(s.heap.e)
		if n == 0 {
			return
		}
		top := s.heap.e[0]
		if top.at >= end {
			return
		}
		s.heap.e[0] = s.heap.e[n-1]
		s.heap.e[n-1] = heapEntry{}
		s.heap.e = s.heap.e[:n-1]
		s.heap.siftDown(0)
		if top.at < s.now {
			panic("sim: event scheduled in the past")
		}
		s.now = top.at
		s.fired++
		ev := top.ev
		switch ev.kind {
		case evWake:
			p := ev.proc
			if !p.done && p.blocked && p.waitGen == ev.gen {
				s.transfer(p)
			}
		case evDeliver:
			s.deliver(ev.msg)
		case evTransfer:
			s.transfer(ev.proc)
		default:
			ev.fn()
		}
		s.release(ev)
	}
}

// work is the persistent worker loop of one shard in sharded mode: execute
// each window the coordinator hands out, then park at the barrier. The
// loop exits when the coordinator closes the start channel.
func (s *shard) work() {
	for end := range s.start {
		s.runWindow(end)
		s.done <- struct{}{}
	}
}

// recordSpan appends a span when tracing is on. Zero-length spans are
// dropped.
func (s *shard) recordSpan(proc int, cat Category, from, to Time) {
	if !s.eng.tracing || to == from {
		return
	}
	s.spans = append(s.spans, Span{Proc: proc, Cat: cat, From: from, To: to})
}
