package sim

// event is a scheduled occurrence in virtual time.
//
// The engine schedules one event per work unit advance, per message delivery
// and per processor handoff, so this is the simulator's hottest allocation
// site. Three measures keep the hot path cheap:
//
//   - the common occurrences (processor wake-ups, message deliveries,
//     control transfers) are encoded as a kind tag plus typed operands
//     instead of a fresh closure per event;
//   - fired events are recycled through the owning shard's intrusive free
//     list (each shard's event loop is single-threaded, so no sync.Pool is
//     needed);
//   - the ordering key (timestamp + ord, see below) lives inline in the
//     heap's entry array, not behind the event pointer, so heap sifts touch
//     one contiguous array instead of chasing a pointer per comparison. The
//     event struct itself is 48 bytes — under a cache line.
type event struct {
	proc *Proc  // evWake, evTransfer: target processor
	msg  *Msg   // evDeliver: message to deliver
	fn   func() // evFunc: arbitrary callback (Engine.After)
	next *event // shard free list link (nil while scheduled)
	gen  uint64 // evWake: wait generation to test
	kind eventKind
}

// eventKind discriminates the typed hot-path events from the generic
// closure-carrying kind.
type eventKind uint8

const (
	evFunc     eventKind = iota // fn()
	evWake                      // wake proc if still in generation gen
	evDeliver                   // deliver msg to its destination inbox
	evTransfer                  // hand control to proc
)

// Event ordering
//
// Events fire in (at, ord) order. Before the engine was sharded, ord was a
// single global allocation counter; that order is unreconstructible once
// processors are partitioned across shards (no shard can know where its
// counter values interleave with another's). Instead ord encodes a
// *partition-invariant* total order in two bands:
//
//   - deliveries (the only events that cross shards) carry the sending
//     processor's ID and its per-processor send sequence number. Both are
//     properties of the sender's own execution, identical under any
//     partitioning.
//   - local events (wakes, transfers, callbacks) carry a per-shard
//     allocation counter with the top bit set. These events are only ever
//     created by their own shard's execution, so the shard-local counter
//     induces the same relative order the global counter did — for any
//     shard count, including one.
//
// Deliveries sort before local events at equal timestamps: when a delivery
// ties with a local wake to the nanosecond, the delivery fires first, under
// every shard count. (That is also what the old allocation-order tie-break
// did in practice: a delivery is scheduled a full network latency before it
// fires, so its counter value predated any same-instant wake's.) Cross-band
// and cross-source ties at equal (at, ord) are impossible by construction,
// so (at, ord) is a total order and every shard fires an identical event
// sequence whether it runs alone (serial engine) or next to S-1 siblings —
// the byte-identity guarantee the drivers and tests rely on.
const (
	ordLocalBand = uint64(1) << 63
	ordSrcShift  = 40 // deliver ord: src<<40 | sendSeq (sendSeq < 2^40)
)

// deliverOrd builds the delivery-band ordering key for a message delivery.
func deliverOrd(src int, sendSeq uint64) uint64 {
	return uint64(src)<<ordSrcShift | sendSeq&(1<<ordSrcShift-1)
}

// heapArity is the fan-out of the event heap. A 4-ary heap halves the tree
// depth of a binary heap, trading slightly more comparisons per level for
// far fewer levels (and cache misses) per sift — a net win at the event
// queue sizes the full-scale sweep reaches. The pop order is identical to
// any other min-heap because (at, ord) is a total order.
const heapArity = 4

// heapEntry is one heap slot: the ordering key inline plus the event
// pointer. 24 bytes, so a sift-down's comparisons stay within a few cache
// lines of the backing array.
type heapEntry struct {
	at  Time
	ord uint64
	ev  *event
}

func (a heapEntry) before(b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.ord < b.ord
}

// eventHeap is a d-ary min-heap ordered by (at, ord). It is implemented
// directly rather than through container/heap to avoid interface boxing on
// the simulator's hottest path.
type eventHeap struct {
	e []heapEntry
}

func (h *eventHeap) Len() int { return len(h.e) }

// Push inserts an event with its ordering key.
func (h *eventHeap) Push(at Time, ord uint64, ev *event) {
	h.e = append(h.e, heapEntry{at: at, ord: ord, ev: ev})
	i := len(h.e) - 1
	x := h.e[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		if !x.before(h.e[parent]) {
			break
		}
		h.e[i] = h.e[parent]
		i = parent
	}
	h.e[i] = x
}

// PushAll inserts a batch of prebuilt entries in one operation — the bulk
// path the window-barrier mailbox exchange uses instead of N individual
// pushes. Because (at, ord) is a total order, the pop sequence of any
// correct min-heap is unique, so PushAll is observationally identical to
// pushing the entries one at a time (property-tested in heap_test.go); only
// the sift work differs. Small batches sift each entry up (k·log_4 n);
// batches comparable to the heap size switch to a full bottom-up Floyd
// heapify, which is O(n) — cheaper than k sift-ups once k rivals the heap.
func (h *eventHeap) PushAll(entries []heapEntry) {
	k := len(entries)
	if k == 0 {
		return
	}
	was := len(h.e)
	h.e = append(h.e, entries...)
	n := len(h.e)
	if was == 0 || k >= was/2 {
		// Rebuild from the last parent down: every subtree rooted at or
		// above the first appended index gets re-heapified.
		for i := (n - 2) / heapArity; i >= 0; i-- {
			h.siftDown(i)
		}
		return
	}
	for i := was; i < n; i++ {
		x := h.e[i]
		j := i
		for j > 0 {
			parent := (j - 1) / heapArity
			if !x.before(h.e[parent]) {
				break
			}
			h.e[j] = h.e[parent]
			j = parent
		}
		h.e[j] = x
	}
}

// Pop removes and returns the earliest entry; ok is false if the heap is
// empty.
func (h *eventHeap) Pop() (top heapEntry, ok bool) {
	n := len(h.e)
	if n == 0 {
		return heapEntry{}, false
	}
	top = h.e[0]
	h.e[0] = h.e[n-1]
	h.e[n-1] = heapEntry{}
	h.e = h.e[:n-1]
	h.siftDown(0)
	return top, true
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.e)
	for {
		first := heapArity*i + 1
		if first >= n {
			return
		}
		smallest := i
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if h.e[c].before(h.e[smallest]) {
				smallest = c
			}
		}
		if smallest == i {
			return
		}
		h.e[i], h.e[smallest] = h.e[smallest], h.e[i]
		i = smallest
	}
}

// PeekTime returns the earliest entry's timestamp; ok is false if the heap
// is empty.
func (h *eventHeap) PeekTime() (at Time, ok bool) {
	if len(h.e) == 0 {
		return 0, false
	}
	return h.e[0].at, true
}
