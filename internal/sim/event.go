package sim

// event is a scheduled occurrence in virtual time. Events with equal
// timestamps fire in scheduling order (seq), which keeps the simulation
// deterministic.
//
// The engine schedules one event per work unit advance, per message delivery
// and per processor handoff, so this is the simulator's hottest allocation
// site. Two measures keep it allocation-free in steady state:
//
//   - the common occurrences (processor wake-ups, message deliveries,
//     control transfers) are encoded as a kind tag plus typed operands
//     instead of a fresh closure per event;
//   - fired events are recycled through the engine's intrusive free list
//     (the engine is single-threaded, so no sync.Pool is needed).
type event struct {
	at   Time
	seq  uint64
	kind eventKind

	proc *Proc  // evWake, evTransfer: target processor
	gen  uint64 // evWake: wait generation to test
	msg  *Msg   // evDeliver: message to deliver
	fn   func() // evFunc: arbitrary callback (Engine.After)

	next *event // engine free list link (nil while scheduled)
}

// eventKind discriminates the typed hot-path events from the generic
// closure-carrying kind.
type eventKind uint8

const (
	evFunc     eventKind = iota // fn()
	evWake                      // proc.wakeIf(gen)
	evDeliver                   // engine.deliver(msg)
	evTransfer                  // engine.transfer(proc)
)

// heapArity is the fan-out of the event heap. A 4-ary heap halves the tree
// depth of a binary heap, trading slightly more comparisons per level for
// far fewer levels (and cache misses) per sift — a net win at the event
// queue sizes the full-scale sweep reaches. The pop order is identical to
// any other min-heap because (at, seq) is a total order.
const heapArity = 4

// eventHeap is a d-ary min-heap ordered by (at, seq). It is implemented
// directly rather than through container/heap to avoid interface boxing on
// the simulator's hottest path.
type eventHeap struct {
	ev []*event
}

func (h *eventHeap) Len() int { return len(h.ev) }

func (h *eventHeap) less(i, j int) bool {
	a, b := h.ev[i], h.ev[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Push inserts an event.
func (h *eventHeap) Push(e *event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

// Pop removes and returns the earliest event, or nil if the heap is empty.
func (h *eventHeap) Pop() *event {
	n := len(h.ev)
	if n == 0 {
		return nil
	}
	top := h.ev[0]
	h.ev[0] = h.ev[n-1]
	h.ev[n-1] = nil
	h.ev = h.ev[:n-1]
	h.siftDown(0)
	return top
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.ev)
	for {
		first := heapArity*i + 1
		if first >= n {
			return
		}
		smallest := i
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if h.less(c, smallest) {
				smallest = c
			}
		}
		if smallest == i {
			return
		}
		h.ev[i], h.ev[smallest] = h.ev[smallest], h.ev[i]
		i = smallest
	}
}

// Peek returns the earliest event without removing it.
func (h *eventHeap) Peek() *event {
	if len(h.ev) == 0 {
		return nil
	}
	return h.ev[0]
}
