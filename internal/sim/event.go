package sim

// event is a scheduled occurrence in virtual time. Events with equal
// timestamps fire in scheduling order (seq), which keeps the simulation
// deterministic.
type event struct {
	at   Time
	seq  uint64
	fire func()
}

// eventHeap is a binary min-heap ordered by (at, seq). It is implemented
// directly rather than through container/heap to avoid interface boxing on
// the simulator's hottest path.
type eventHeap struct {
	ev []*event
}

func (h *eventHeap) Len() int { return len(h.ev) }

func (h *eventHeap) less(i, j int) bool {
	a, b := h.ev[i], h.ev[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Push inserts an event.
func (h *eventHeap) Push(e *event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

// Pop removes and returns the earliest event, or nil if the heap is empty.
func (h *eventHeap) Pop() *event {
	n := len(h.ev)
	if n == 0 {
		return nil
	}
	top := h.ev[0]
	h.ev[0] = h.ev[n-1]
	h.ev[n-1] = nil
	h.ev = h.ev[:n-1]
	h.siftDown(0)
	return top
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.ev)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.less(left, smallest) {
			smallest = left
		}
		if right < n && h.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.ev[i], h.ev[smallest] = h.ev[smallest], h.ev[i]
		i = smallest
	}
}

// Peek returns the earliest event without removing it.
func (h *eventHeap) Peek() *event {
	if len(h.ev) == 0 {
		return nil
	}
	return h.ev[0]
}
