package sim

import (
	"errors"
	"strings"
	"testing"
)

func testConfig() Config {
	return Config{Network: DefaultNetwork(), Seed: 1}
}

func TestAdvanceMovesVirtualTime(t *testing.T) {
	e := NewEngine(testConfig())
	var end Time
	e.Spawn("p0", func(p *Proc) {
		p.Advance(3*Second, CatCompute)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 3*Second {
		t.Fatalf("end time = %v, want 3s", end)
	}
	if got := e.Proc(0).Account()[CatCompute]; got != 3*Second {
		t.Fatalf("compute account = %v, want 3s", got)
	}
}

func TestAdvanceZeroOrNegativeIsNoop(t *testing.T) {
	e := NewEngine(testConfig())
	e.Spawn("p0", func(p *Proc) {
		p.Advance(0, CatCompute)
		p.Advance(-5, CatCompute)
		if p.Now() != 0 {
			t.Errorf("time moved: %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	e := NewEngine(testConfig())
	var order []string
	spawn := func(name string, d Time) {
		e.Spawn(name, func(p *Proc) {
			p.Advance(d, CatCompute)
			order = append(order, name)
		})
	}
	spawn("slow", 2*Second)
	spawn("fast", 1*Second)
	spawn("tie-a", 1*Second)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// fast and tie-a finish at t=1s; their wake events were scheduled in
	// spawn order, so fast precedes tie-a.
	want := []string{"fast", "tie-a", "slow"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSendRecvLatencyAndOverheads(t *testing.T) {
	cfg := testConfig()
	cfg.Network = NetworkConfig{
		Latency: 100 * Microsecond,
		PerByte: 10 * Nanosecond,
		SendCPU: 5 * Microsecond,
		RecvCPU: 7 * Microsecond,
	}
	e := NewEngine(cfg)
	var got *Msg
	var recvAt Time
	e.Spawn("recv", func(p *Proc) {
		got = p.Recv(CatIdle)
		recvAt = p.Now()
	})
	e.Spawn("send", func(p *Proc) {
		p.Send(&Msg{Dst: 0, Kind: 42, Size: 1000, Data: "hi"}, CatMessaging)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Kind != 42 || got.Data.(string) != "hi" || got.Src != 1 {
		t.Fatalf("bad message: %+v", got)
	}
	// Arrival: sendCPU(5us) + latency(100us) + 1000B*10ns = 115us.
	wantArrive := 115 * Microsecond
	if got.ArrivedAt != wantArrive {
		t.Fatalf("arrived at %v, want %v", got.ArrivedAt, wantArrive)
	}
	// Receiver then pays 7us RecvCPU.
	if recvAt != wantArrive+7*Microsecond {
		t.Fatalf("recv completed at %v", recvAt)
	}
	// Receiver idle time is exactly the arrival time.
	if idle := e.Proc(0).Account()[CatIdle]; idle != wantArrive {
		t.Fatalf("idle = %v, want %v", idle, wantArrive)
	}
	if msg := e.Proc(0).Account()[CatMessaging]; msg != 7*Microsecond {
		t.Fatalf("recv messaging = %v", msg)
	}
	if msg := e.Proc(1).Account()[CatMessaging]; msg != 5*Microsecond {
		t.Fatalf("send messaging = %v", msg)
	}
}

func TestFIFOPerPair(t *testing.T) {
	e := NewEngine(testConfig())
	var kinds []int
	e.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			kinds = append(kinds, p.Recv(CatIdle).Kind)
		}
	})
	e.Spawn("send", func(p *Proc) {
		// A big slow message followed by small fast ones: FIFO ordering must
		// still hold per (src,dst) pair.
		p.Send(&Msg{Dst: 0, Kind: 1, Size: 1 << 20}, CatMessaging)
		p.Send(&Msg{Dst: 0, Kind: 2, Size: 0}, CatMessaging)
		p.Send(&Msg{Dst: 0, Kind: 3, Size: 0}, CatMessaging)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, k := range kinds {
		if k != i+1 {
			t.Fatalf("kinds = %v, want [1 2 3]", kinds)
		}
	}
}

func TestTryRecvTagPreservesOrder(t *testing.T) {
	cfg := testConfig()
	cfg.Network.RecvCPU = 0
	e := NewEngine(cfg)
	e.Spawn("recv", func(p *Proc) {
		for p.InboxLen() < 4 {
			p.WaitMsg(CatIdle)
			if p.InboxLen() < 4 {
				p.Advance(Microsecond, CatIdle)
			}
		}
		if !p.HasMsg(TagSystem) {
			t.Error("expected a system message")
		}
		m := p.TryRecvTag(TagSystem, CatMessaging)
		if m == nil || m.Kind != 2 {
			t.Fatalf("system msg = %+v", m)
		}
		if p.TryRecvTag(TagSystem, CatMessaging) != nil {
			t.Fatal("expected a single system message")
		}
		var rest []int
		for {
			m := p.TryRecv(CatMessaging)
			if m == nil {
				break
			}
			rest = append(rest, m.Kind)
		}
		if len(rest) != 3 || rest[0] != 1 || rest[1] != 3 || rest[2] != 4 {
			t.Fatalf("rest = %v, want [1 3 4]", rest)
		}
	})
	e.Spawn("send", func(p *Proc) {
		p.Send(&Msg{Dst: 0, Kind: 1, Tag: TagApp}, CatMessaging)
		p.Send(&Msg{Dst: 0, Kind: 2, Tag: TagSystem}, CatMessaging)
		p.Send(&Msg{Dst: 0, Kind: 3, Tag: TagApp}, CatMessaging)
		p.Send(&Msg{Dst: 0, Kind: 4, Tag: TagApp}, CatMessaging)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitMsgForTimesOut(t *testing.T) {
	e := NewEngine(testConfig())
	e.Spawn("p", func(p *Proc) {
		start := p.Now()
		if p.WaitMsgFor(50*Millisecond, CatIdle) {
			t.Error("unexpected message")
		}
		if p.Now()-start != 50*Millisecond {
			t.Errorf("waited %v", p.Now()-start)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitMsgForWakesEarlyOnDelivery(t *testing.T) {
	e := NewEngine(testConfig())
	e.Spawn("p", func(p *Proc) {
		if !p.WaitMsgFor(10*Second, CatIdle) {
			t.Error("expected message before timeout")
		}
		if p.Now() >= Second {
			t.Errorf("woke too late: %v", p.Now())
		}
	})
	e.Spawn("q", func(p *Proc) {
		p.Advance(10*Millisecond, CatCompute)
		p.Send(&Msg{Dst: 0}, CatMessaging)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine(testConfig())
	e.Spawn("waiter", func(p *Proc) {
		p.WaitMsg(CatIdle) // nobody ever sends
	})
	err := e.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if !strings.Contains(err.Error(), "waiter") {
		t.Fatalf("error should name the blocked proc: %v", err)
	}
}

func TestPanicPropagates(t *testing.T) {
	e := NewEngine(testConfig())
	e.Spawn("bad", func(p *Proc) {
		p.Advance(Second, CatCompute)
		panic("boom")
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic propagation", err)
	}
}

func TestStopTearsDownBlockedProcs(t *testing.T) {
	e := NewEngine(testConfig())
	e.Spawn("waiter", func(p *Proc) { p.WaitMsg(CatIdle) })
	e.Spawn("stopper", func(p *Proc) {
		p.Advance(Second, CatCompute)
		p.Engine().Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("stop should not report deadlock: %v", err)
	}
}

func TestMakespan(t *testing.T) {
	e := NewEngine(testConfig())
	e.Spawn("a", func(p *Proc) { p.Advance(2*Second, CatCompute) })
	e.Spawn("b", func(p *Proc) { p.Advance(5*Second, CatCompute) })
	e.Spawn("c", func(p *Proc) { p.Advance(1*Second, CatCompute) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Makespan() != 5*Second {
		t.Fatalf("makespan = %v", e.Makespan())
	}
}

func TestAfterFiresInOrder(t *testing.T) {
	e := NewEngine(testConfig())
	var seen []int
	e.After(2*Second, func() { seen = append(seen, 2) })
	e.After(1*Second, func() { seen = append(seen, 1) })
	e.After(1*Second, func() { seen = append(seen, 11) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != 1 || seen[1] != 11 || seen[2] != 2 {
		t.Fatalf("seen = %v", seen)
	}
}

// TestDeterminism runs a mildly chaotic message storm twice and requires
// byte-identical outcomes.
func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine(Config{Seed: 42})
		const n = 8
		for i := 0; i < n; i++ {
			e.Spawn("p", func(p *Proc) {
				rng := p.Engine().Rand()
				for round := 0; round < 20; round++ {
					p.Advance(Time(rng.Intn(1000))*Microsecond, CatCompute)
					dst := rng.Intn(n)
					if dst != p.ID() {
						p.Send(&Msg{Dst: dst, Size: rng.Intn(4096)}, CatMessaging)
					}
					for p.TryRecv(CatMessaging) != nil {
					}
				}
				// Drain stragglers without blocking forever.
				p.WaitMsgFor(100*Millisecond, CatIdle)
				for p.TryRecv(CatMessaging) != nil {
				}
			})
		}
		if err := e.Run(); err != nil && !errors.Is(err, ErrDeadlock) {
			t.Fatal(err)
		}
		var out []Time
		for i := 0; i < n; i++ {
			out = append(out, e.Proc(i).finishedAt, e.Proc(i).Account().Total())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterminism at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestChargeDoesNotAdvanceClock(t *testing.T) {
	e := NewEngine(testConfig())
	e.Spawn("p", func(p *Proc) {
		p.Charge(CatCallback, Second)
		if p.Now() != 0 {
			t.Errorf("clock moved: %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Proc(0).Account()[CatCallback] != Second {
		t.Fatal("charge not recorded")
	}
}

func TestAccountOverheadExcludesComputeAndIdle(t *testing.T) {
	var a Account
	a[CatCompute] = 100
	a[CatIdle] = 50
	a[CatMessaging] = 7
	a[CatScheduling] = 3
	if a.Total() != 160 {
		t.Fatalf("total = %d", a.Total())
	}
	if a.Overhead() != 10 {
		t.Fatalf("overhead = %d", a.Overhead())
	}
	var b Account
	b.Add(&a)
	b.Add(&a)
	if b[CatMessaging] != 14 {
		t.Fatalf("add failed: %v", b)
	}
}
