package sim

import "prema/internal/substrate"

// Time is virtual time, in nanoseconds. It is an alias of substrate.Time so
// that values flow between the simulator and the backend-neutral PREMA stack
// without conversion.
//
// Virtual time is completely decoupled from wall-clock time: computation,
// message transmission, and synchronization advance virtual time according to
// the cost model configured on the Engine, never according to how long the
// host takes to execute the simulation.
type Time = substrate.Time

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  = substrate.Nanosecond
	Microsecond = substrate.Microsecond
	Millisecond = substrate.Millisecond
	Second      = substrate.Second
)

// Scale multiplies the duration by a dimensionless factor, rounding toward
// zero. It is the canonical way to derive work-unit durations from abstract
// computational weights.
func Scale(t Time, f float64) Time { return substrate.Scale(t, f) }
