package sim

import "fmt"

// Time is a point in (or duration of) virtual time, in nanoseconds.
//
// Virtual time is completely decoupled from wall-clock time: computation,
// message transmission, and synchronization advance virtual time according to
// the cost model configured on the Engine, never according to how long the
// host takes to execute the simulation.
type Time int64

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns the time as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String renders the time in seconds with millisecond resolution.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// Scale multiplies the duration by a dimensionless factor, rounding toward
// zero. It is the canonical way to derive work-unit durations from abstract
// computational weights.
func Scale(t Time, f float64) Time { return Time(float64(t) * f) }
