package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestHeapOrderingProperty: popping all events from a heap built from any
// sequence of push times yields a sequence sorted by (time, insertion seq).
func TestHeapOrderingProperty(t *testing.T) {
	f := func(times []int16) bool {
		var h eventHeap
		var seq uint64
		for _, raw := range times {
			seq++
			tm := Time(raw)
			if tm < 0 {
				tm = -tm
			}
			h.Push(&event{at: tm, seq: seq})
		}
		var prev *event
		for {
			e := h.Pop()
			if e == nil {
				break
			}
			if prev != nil {
				if e.at < prev.at || (e.at == prev.at && e.seq < prev.seq) {
					return false
				}
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h eventHeap
	var seq uint64
	var popped []Time
	var lastPopped Time = -1
	for i := 0; i < 5000; i++ {
		if rng.Intn(3) != 0 || h.Len() == 0 {
			seq++
			// Never schedule in the past relative to the last pop: mimics the
			// engine's invariant.
			at := lastPopped + Time(rng.Intn(100))
			h.Push(&event{at: at, seq: seq})
		} else {
			e := h.Pop()
			if e.at < lastPopped {
				t.Fatalf("pop went backwards: %v after %v", e.at, lastPopped)
			}
			lastPopped = e.at
			popped = append(popped, e.at)
		}
	}
	for h.Len() > 0 {
		popped = append(popped, h.Pop().at)
	}
	if !sort.SliceIsSorted(popped, func(i, j int) bool { return popped[i] < popped[j] }) {
		t.Fatal("popped sequence not sorted")
	}
}

// binaryHeap is the pre-optimization 2-ary event heap, kept here as the
// reference implementation: because (at, seq) is a total order, any correct
// min-heap must pop the exact same sequence, so the 4-ary production heap is
// property-tested against it below.
type binaryHeap struct {
	ev []*event
}

func (h *binaryHeap) less(i, j int) bool {
	a, b := h.ev[i], h.ev[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *binaryHeap) Push(e *event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

func (h *binaryHeap) Pop() *event {
	n := len(h.ev)
	if n == 0 {
		return nil
	}
	top := h.ev[0]
	h.ev[0] = h.ev[n-1]
	h.ev[n-1] = nil
	h.ev = h.ev[:n-1]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < len(h.ev) && h.less(left, smallest) {
			smallest = left
		}
		if right < len(h.ev) && h.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return top
		}
		h.ev[i], h.ev[smallest] = h.ev[smallest], h.ev[i]
		i = smallest
	}
}

// TestQuaternaryMatchesBinaryHeap: on random inputs — with deliberately many
// duplicate timestamps, and interleaved pushes and pops — the 4-ary heap
// pops events in exactly the (at, seq) order of the reference binary heap.
func TestQuaternaryMatchesBinaryHeap(t *testing.T) {
	f := func(times []int16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var quad eventHeap
		var bin binaryHeap
		var seq uint64
		push := func(raw int16) {
			seq++
			tm := Time(raw % 64) // force heavy timestamp collisions
			if tm < 0 {
				tm = -tm
			}
			quad.Push(&event{at: tm, seq: seq})
			bin.Push(&event{at: tm, seq: seq})
		}
		checkPop := func() bool {
			q, b := quad.Pop(), bin.Pop()
			if q == nil || b == nil {
				return q == nil && b == nil
			}
			return q.at == b.at && q.seq == b.seq
		}
		for _, raw := range times {
			push(raw)
			if rng.Intn(3) == 0 {
				if !checkPop() {
					return false
				}
			}
		}
		for quad.Len() > 0 || len(bin.ev) > 0 {
			if !checkPop() {
				return false
			}
		}
		return checkPop() // both empty
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapPeek(t *testing.T) {
	var h eventHeap
	if h.Peek() != nil || h.Pop() != nil {
		t.Fatal("empty heap should peek/pop nil")
	}
	h.Push(&event{at: 5, seq: 1})
	h.Push(&event{at: 3, seq: 2})
	if h.Peek().at != 3 {
		t.Fatalf("peek = %v", h.Peek().at)
	}
	if h.Len() != 2 {
		t.Fatalf("len = %d", h.Len())
	}
}

func TestNetworkFIFOProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		n := newNetwork(DefaultNetwork())
		var now, last Time
		for _, s := range sizes {
			at := n.arrivalTime(now, 0, 1, int(s))
			if at <= last && last != 0 {
				return false
			}
			if at < now {
				return false
			}
			last = at
			now += Time(s) // sender moves forward a bit
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	if (2 * Second).Seconds() != 2.0 {
		t.Fatal("Seconds")
	}
	if (1500 * Microsecond).Millis() != 1.5 {
		t.Fatal("Millis")
	}
	if Scale(10*Second, 0.5) != 5*Second {
		t.Fatal("Scale")
	}
	if (1234 * Millisecond).String() != "1.234s" {
		t.Fatalf("String = %s", (1234 * Millisecond).String())
	}
	if CatCompute.String() != "Computation" || Category(99).String() != "Unknown" {
		t.Fatal("category names")
	}
}
