package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestHeapOrderingProperty: popping all entries from a heap built from any
// sequence of push times yields a sequence sorted by (time, ord).
func TestHeapOrderingProperty(t *testing.T) {
	f := func(times []int16) bool {
		var h eventHeap
		var ord uint64
		for _, raw := range times {
			ord++
			tm := Time(raw)
			if tm < 0 {
				tm = -tm
			}
			h.Push(tm, ord, &event{})
		}
		var prev heapEntry
		var any bool
		for {
			e, ok := h.Pop()
			if !ok {
				break
			}
			if any && e.before(prev) {
				return false
			}
			prev, any = e, true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h eventHeap
	var ord uint64
	var popped []Time
	var lastPopped Time = -1
	for i := 0; i < 5000; i++ {
		if rng.Intn(3) != 0 || h.Len() == 0 {
			ord++
			// Never schedule in the past relative to the last pop: mimics the
			// engine's invariant.
			at := lastPopped + Time(rng.Intn(100))
			h.Push(at, ord, &event{})
		} else {
			e, _ := h.Pop()
			if e.at < lastPopped {
				t.Fatalf("pop went backwards: %v after %v", e.at, lastPopped)
			}
			lastPopped = e.at
			popped = append(popped, e.at)
		}
	}
	for h.Len() > 0 {
		e, _ := h.Pop()
		popped = append(popped, e.at)
	}
	if !sort.SliceIsSorted(popped, func(i, j int) bool { return popped[i] < popped[j] }) {
		t.Fatal("popped sequence not sorted")
	}
}

// TestHeapBandOrdering: at equal timestamps every delivery key sorts before
// every local-band key, deliveries sort by (src, sendSeq), and the local
// band bit survives the largest allocation counters.
func TestHeapBandOrdering(t *testing.T) {
	var h eventHeap
	h.Push(10, deliverOrd(4096, 1), &event{})
	h.Push(10, ordLocalBand|1, &event{}) // local event, earliest counter
	h.Push(10, deliverOrd(0, 7), &event{})
	h.Push(10, deliverOrd(0, 2), &event{})
	want := []uint64{deliverOrd(0, 2), deliverOrd(0, 7), deliverOrd(4096, 1), ordLocalBand | 1}
	for i, w := range want {
		e, ok := h.Pop()
		if !ok || e.ord != w {
			t.Fatalf("pop %d: got ord %#x, want %#x", i, e.ord, w)
		}
	}
}

// binaryHeap is the pre-optimization 2-ary event heap, kept here as the
// reference implementation: because (at, ord) is a total order, any correct
// min-heap must pop the exact same sequence, so the 4-ary production heap is
// property-tested against it below.
type binaryHeap struct {
	e []heapEntry
}

func (h *binaryHeap) Push(at Time, ord uint64) {
	h.e = append(h.e, heapEntry{at: at, ord: ord})
	i := len(h.e) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.e[i].before(h.e[parent]) {
			break
		}
		h.e[i], h.e[parent] = h.e[parent], h.e[i]
		i = parent
	}
}

func (h *binaryHeap) Pop() (heapEntry, bool) {
	n := len(h.e)
	if n == 0 {
		return heapEntry{}, false
	}
	top := h.e[0]
	h.e[0] = h.e[n-1]
	h.e = h.e[:n-1]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < len(h.e) && h.e[left].before(h.e[smallest]) {
			smallest = left
		}
		if right < len(h.e) && h.e[right].before(h.e[smallest]) {
			smallest = right
		}
		if smallest == i {
			return top, true
		}
		h.e[i], h.e[smallest] = h.e[smallest], h.e[i]
		i = smallest
	}
}

// TestQuaternaryMatchesBinaryHeap: on random inputs — with deliberately many
// duplicate timestamps, and interleaved pushes and pops — the 4-ary heap
// pops entries in exactly the (at, ord) order of the reference binary heap.
func TestQuaternaryMatchesBinaryHeap(t *testing.T) {
	f := func(times []int16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var quad eventHeap
		var bin binaryHeap
		var ord uint64
		push := func(raw int16) {
			ord++
			tm := Time(raw % 64) // force heavy timestamp collisions
			if tm < 0 {
				tm = -tm
			}
			quad.Push(tm, ord, &event{})
			bin.Push(tm, ord)
		}
		checkPop := func() bool {
			q, qok := quad.Pop()
			b, bok := bin.Pop()
			if qok != bok {
				return false
			}
			return q.at == b.at && q.ord == b.ord
		}
		for _, raw := range times {
			push(raw)
			if rng.Intn(3) == 0 {
				if !checkPop() {
					return false
				}
			}
		}
		for quad.Len() > 0 || len(bin.e) > 0 {
			if !checkPop() {
				return false
			}
		}
		return checkPop() // both empty
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPushAllMatchesSequentialPushes: bulk-inserting any batch of entries
// pops in exactly the order N sequential pushes would have produced, for any
// prior heap contents and any batch size — including batches big enough to
// take the full-heapify path and batches into an empty heap. This is the
// property the barrier exchange relies on when it drains a window's
// cross-shard mailboxes with one PushAll per destination.
func TestPushAllMatchesSequentialPushes(t *testing.T) {
	f := func(pre, batch []int16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var bulk, seq eventHeap
		var ord uint64
		key := func(raw int16) Time {
			tm := Time(raw % 64) // force heavy timestamp collisions
			if tm < 0 {
				tm = -tm
			}
			return tm
		}
		for _, raw := range pre {
			ord++
			bulk.Push(key(raw), ord, &event{})
			seq.Push(key(raw), ord, &event{})
		}
		// Occasionally pre-drain some entries so the two heaps' internal
		// arrangements diverge before the bulk insert.
		for bulk.Len() > 0 && rng.Intn(4) == 0 {
			bulk.Pop()
			seq.Pop()
		}
		entries := make([]heapEntry, 0, len(batch))
		for _, raw := range batch {
			ord++
			entries = append(entries, heapEntry{at: key(raw), ord: ord, ev: &event{}})
			seq.Push(key(raw), ord, &event{})
		}
		bulk.PushAll(entries)
		for {
			b, bok := bulk.Pop()
			s, sok := seq.Pop()
			if bok != sok {
				return false
			}
			if !bok {
				return true
			}
			if b.at != s.at || b.ord != s.ord {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestPushAllZeroAllocs: once the heap's backing array is warm, a bulk
// insert-and-drain cycle allocates nothing — PushAll must stay off the
// allocator just like Push, since it runs once per (destination, round) on
// the barrier path.
func TestPushAllZeroAllocs(t *testing.T) {
	var h eventHeap
	events := make([]*event, 64)
	for i := range events {
		events[i] = &event{}
	}
	batch := make([]heapEntry, len(events))
	var ord uint64
	cycle := func() {
		for i := range batch {
			ord++
			batch[i] = heapEntry{at: Time(ord % 17), ord: ord, ev: events[i]}
		}
		h.PushAll(batch)
		for h.Len() > 0 {
			h.Pop()
		}
	}
	cycle() // warm the backing array
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Errorf("PushAll cycle allocates %.1f per run, want 0", avg)
	}
}

func TestHeapPeek(t *testing.T) {
	var h eventHeap
	if _, ok := h.PeekTime(); ok {
		t.Fatal("empty heap should have no peek time")
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("empty heap should pop nothing")
	}
	h.Push(5, 1, &event{})
	h.Push(3, 2, &event{})
	if at, ok := h.PeekTime(); !ok || at != 3 {
		t.Fatalf("peek = %v, %v", at, ok)
	}
	if h.Len() != 2 {
		t.Fatalf("len = %d", h.Len())
	}
}

func TestNetworkFIFOProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		n := newNetwork(DefaultNetwork())
		var now, last Time
		for _, s := range sizes {
			at := n.arrivalTime(now, 0, 1, int(s))
			if at <= last && last != 0 {
				return false
			}
			if at < now {
				return false
			}
			last = at
			now += Time(s) // sender moves forward a bit
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	if (2 * Second).Seconds() != 2.0 {
		t.Fatal("Seconds")
	}
	if (1500 * Microsecond).Millis() != 1.5 {
		t.Fatal("Millis")
	}
	if Scale(10*Second, 0.5) != 5*Second {
		t.Fatal("Scale")
	}
	if (1234 * Millisecond).String() != "1.234s" {
		t.Fatalf("String = %s", (1234 * Millisecond).String())
	}
	if CatCompute.String() != "Computation" || Category(99).String() != "Unknown" {
		t.Fatal("category names")
	}
}
