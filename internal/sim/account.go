package sim

import "prema/internal/substrate"

// Category classifies how a simulated processor spends its virtual time; it
// is an alias of substrate.Category. The categories are exactly the
// stacked-bar series of Figures 3-6 of the paper.
type Category = substrate.Category

const (
	// CatCompute is useful application computation ("Computation Time").
	CatCompute = substrate.CatCompute
	// CatIdle is time waiting for messages or the end of the run.
	CatIdle = substrate.CatIdle
	// CatMessaging is CPU time spent sending and receiving messages.
	CatMessaging = substrate.CatMessaging
	// CatScheduling is runtime scheduler time.
	CatScheduling = substrate.CatScheduling
	// CatCallback is handler-dispatch overhead around application callbacks.
	CatCallback = substrate.CatCallback
	// CatPollThread is PREMA's preemptive polling thread time.
	CatPollThread = substrate.CatPollThread
	// CatPartition is partition-calculation time in stop-and-repartition.
	CatPartition = substrate.CatPartition
	// CatSync is time blocked in global synchronization.
	CatSync = substrate.CatSync

	// NumCategories is the number of accounting categories.
	NumCategories = substrate.NumCategories
)

// Account is a per-processor ledger of virtual time by category (an alias of
// substrate.Account).
type Account = substrate.Account
