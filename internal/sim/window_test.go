package sim

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// equalMesh asserts that two runMeshCfg outputs are byte-identical.
func equalMesh(t *testing.T, label string,
	wantMakespan Time, wantAccts []Account, wantCSV []byte,
	makespan Time, accts []Account, csv []byte) {
	t.Helper()
	if makespan != wantMakespan {
		t.Errorf("%s: makespan %v != reference %v", label, makespan, wantMakespan)
	}
	for i := range accts {
		if accts[i] != wantAccts[i] {
			t.Errorf("%s: proc %d account %v != reference %v", label, i, accts[i], wantAccts[i])
		}
	}
	if !bytes.Equal(csv, wantCSV) {
		t.Errorf("%s: span CSV diverges from reference (%d vs %d bytes)", label, len(csv), len(wantCSV))
	}
}

// TestRandomPartitionMatchesSerial: the byte-identity guarantee holds for
// *arbitrary* processor→shard maps, not just round-robin — including maps
// that leave some shards empty. The partition-invariant (at, ord) ordering
// key is what makes this true; this test is its direct check at the engine
// level (internal/bench runs the full-stack analogue over the paper
// drivers).
func TestRandomPartitionMatchesSerial(t *testing.T) {
	const n, rounds = 13, 25
	wantMakespan, wantAccts, wantCSV := runMesh(t, 1, n, rounds)
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		shards := 2 + rng.Intn(6)
		assign := make([]int, n)
		for i := range assign {
			assign[i] = rng.Intn(shards)
		}
		cfg := Config{
			Seed:      42,
			Shards:    shards,
			Partition: func(id, _ int) int { return assign[id] },
		}
		makespan, accts, csv := runMeshCfg(t, cfg, n, rounds)
		label := fmt.Sprintf("trial %d (S=%d, map %v)", trial, shards, assign)
		equalMesh(t, label, wantMakespan, wantAccts, wantCSV, makespan, accts, csv)
	}
}

// TestPartitionOutOfRangePanics: a broken partition function is caught at
// Spawn, not silently wrapped into a valid shard.
func TestPartitionOutOfRangePanics(t *testing.T) {
	e := NewEngine(Config{Shards: 2, Partition: func(id, shards int) int { return shards }})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range partition result did not panic")
		}
	}()
	e.Spawn("p0", func(p *Proc) {})
}

// TestZonedNetworkMatchesSerial: with a two-level network (cheap intra-zone
// links, expensive inter-zone links) the sharded engine still matches the
// serial engine byte-for-byte, whether shards align with zones (blocked
// partition: wide inter-shard windows) or cut across them (round-robin:
// every pair shares a zone, minimum windows). This exercises the per-
// destination lookahead matrix with genuinely heterogeneous entries.
func TestZonedNetworkMatchesSerial(t *testing.T) {
	const n, rounds = 12, 25
	net := DefaultNetwork()
	net.ZoneSize = 4
	net.ZoneLatency = 10 * Microsecond
	base := Config{Network: net, Seed: 42}
	wantMakespan, wantAccts, wantCSV := runMeshCfg(t, base, n, rounds)
	blocked := func(id, shards int) int { return id * shards / n }
	for _, tc := range []struct {
		label     string
		shards    int
		partition func(id, shards int) int
	}{
		{"roundrobin S=2", 2, nil},
		{"roundrobin S=4", 4, nil},
		{"blocked S=3 (zone-aligned-ish)", 3, blocked},
		{"blocked S=4 (one zone per shard)", 4, blocked},
	} {
		cfg := base
		cfg.Shards = tc.shards
		cfg.Partition = tc.partition
		makespan, accts, csv := runMeshCfg(t, cfg, n, rounds)
		equalMesh(t, tc.label, wantMakespan, wantAccts, wantCSV, makespan, accts, csv)
	}
}

// TestAdaptiveWindowsMatchFixed: adaptive windows change only how many
// coordination rounds a run takes, never its output. On a dense, balanced
// workload they are allowed to collapse to the fixed bound (every shard's
// next event sits near the global minimum, so the relaxation cannot widen
// anything) but must never take more rounds; on a skewed partition —
// where some shards idle while one drains — they must cut rounds by at
// least 2×, since idle peers stop constraining the busy shard's window.
func TestAdaptiveWindowsMatchFixed(t *testing.T) {
	const n, rounds = 13, 25
	run := func(fixed bool, partition func(id, shards int) int) (Time, []Account, []byte, uint64) {
		e := NewEngine(Config{Seed: 42, Shards: 4, FixedWindows: fixed, Partition: partition})
		e.EnableTracing()
		spawnMeshWorkload(e, n, rounds)
		if err := e.Run(); err != nil {
			t.Fatalf("fixed=%v: %v", fixed, err)
		}
		accts := make([]Account, n)
		for i := 0; i < n; i++ {
			accts[i] = *e.Proc(i).Account()
		}
		var csv bytes.Buffer
		if err := e.WriteSpansCSV(&csv); err != nil {
			t.Fatal(err)
		}
		return e.Makespan(), accts, csv.Bytes(), e.BarrierRounds()
	}

	// Balanced round-robin: identical output, no more rounds than fixed.
	fixedMakespan, fixedAccts, fixedCSV, fixedRounds := run(true, nil)
	adMakespan, adAccts, adCSV, adRounds := run(false, nil)
	equalMesh(t, "adaptive vs fixed (balanced)", fixedMakespan, fixedAccts, fixedCSV, adMakespan, adAccts, adCSV)
	if fixedRounds == 0 || adRounds == 0 {
		t.Fatalf("rounds not counted: fixed=%d adaptive=%d", fixedRounds, adRounds)
	}
	if adRounds > fixedRounds {
		t.Errorf("balanced: adaptive used %d rounds, fixed used %d — must not be worse", adRounds, fixedRounds)
	}

	// Degenerate partition (every processor on shard 0, shards 1-3 empty):
	// empty peers never send, so the relaxation leaves the busy shard's
	// window unbounded and the whole run drains in a handful of rounds —
	// the limiting case of the tail-drain collapse adaptive windows buy on
	// imbalanced workloads. Fixed windows still pay one barrier per
	// lookahead width.
	skew := func(int, int) int { return 0 }
	fixedMakespan, fixedAccts, fixedCSV, fixedRounds = run(true, skew)
	adMakespan, adAccts, adCSV, adRounds = run(false, skew)
	equalMesh(t, "adaptive vs fixed (skewed)", fixedMakespan, fixedAccts, fixedCSV, adMakespan, adAccts, adCSV)
	if adRounds*2 > fixedRounds {
		t.Errorf("skewed: adaptive used %d rounds vs fixed %d — expected >= 2x reduction", adRounds, fixedRounds)
	}
}

// TestShardTelemetry: per-shard event counts sum to the total and the
// imbalance ratio is sane (>= 1 once events fired, exactly the max/mean of
// the per-shard counts).
func TestShardTelemetry(t *testing.T) {
	e := NewEngine(Config{Seed: 42, Shards: 4})
	spawnMeshWorkload(e, 13, 10)
	if e.ImbalanceRatio() != 0 {
		t.Errorf("pre-run imbalance = %v, want 0", e.ImbalanceRatio())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	per := e.ShardEventsFired()
	if len(per) != 4 {
		t.Fatalf("ShardEventsFired len = %d", len(per))
	}
	var sum, max uint64
	for _, c := range per {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum != e.EventsFired() {
		t.Errorf("per-shard sum %d != total %d", sum, e.EventsFired())
	}
	want := float64(max) * 4 / float64(sum)
	if got := e.ImbalanceRatio(); got != want || got < 1 {
		t.Errorf("imbalance = %v, want %v (>= 1)", got, want)
	}
}

// TestLookaheadMatrix: buildLookahead derives the documented matrix from
// the partition map and zone structure — flat networks give Latency
// everywhere, zone-aligned shards see the expensive inter-zone latency,
// zone-straddling shards the cheap intra-zone one, and empty shards never
// constrain anyone.
func TestLookaheadMatrix(t *testing.T) {
	net := DefaultNetwork()
	net.ZoneSize = 2
	net.ZoneLatency = 5 * Microsecond

	build := func(cfg Config, nProcs int) *Engine {
		e := NewEngine(cfg)
		for i := 0; i < nProcs; i++ {
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {})
		}
		e.buildLookahead()
		return e
	}

	// Flat network: every populated entry is the global latency.
	e := build(Config{Shards: 2}, 4)
	if e.minLat[0][1] != e.cfg.Network.Latency || e.minLat[1][0] != e.cfg.Network.Latency {
		t.Errorf("flat matrix = %v, want all %v", e.minLat, e.cfg.Network.Latency)
	}

	// Blocked partition on a zoned network: shard 0 = {0,1} = zone 0,
	// shard 1 = {2,3} = zone 1. No shared zone, so cross-shard lookahead is
	// the wide inter-zone latency.
	blocked := func(id, shards int) int { return id * shards / 4 }
	e = build(Config{Network: net, Shards: 2, Partition: blocked}, 4)
	if e.minLat[0][1] != net.Latency {
		t.Errorf("zone-aligned minLat[0][1] = %v, want inter-zone %v", e.minLat[0][1], net.Latency)
	}

	// Round-robin on the same network: both shards occupy both zones, so
	// the cheapest cross-shard link is intra-zone.
	e = build(Config{Network: net, Shards: 2}, 4)
	if e.minLat[0][1] != net.ZoneLatency {
		t.Errorf("straddling minLat[0][1] = %v, want intra-zone %v", e.minLat[0][1], net.ZoneLatency)
	}

	// Empty shard: spawn 2 procs on 3 shards round-robin — shard 2 owns
	// nothing, its row and column are "never".
	e = build(Config{Shards: 3}, 2)
	if e.minLat[2][0] != maxTime || e.minLat[0][2] != maxTime {
		t.Errorf("empty-shard entries = %v / %v, want maxTime", e.minLat[2][0], e.minLat[0][2])
	}

	// Both shards confined to one common zone: only intra-zone links exist.
	one := func(id, shards int) int { return id % shards }
	e = build(Config{Network: net, Shards: 2, Partition: one}, 2)
	if e.minLat[0][1] != net.ZoneLatency {
		t.Errorf("single-zone minLat[0][1] = %v, want %v", e.minLat[0][1], net.ZoneLatency)
	}
}

// TestMinLatency: the network's global minimum accounts for zoning.
func TestMinLatency(t *testing.T) {
	net := DefaultNetwork()
	if net.MinLatency() != net.Latency {
		t.Errorf("flat MinLatency = %v, want %v", net.MinLatency(), net.Latency)
	}
	net.ZoneSize = 4
	net.ZoneLatency = 10 * Microsecond
	if net.MinLatency() != 10*Microsecond {
		t.Errorf("zoned MinLatency = %v, want 10µs", net.MinLatency())
	}
	net.ZoneLatency = 0 // unset: behaves flat
	if net.MinLatency() != net.Latency {
		t.Errorf("unset ZoneLatency MinLatency = %v, want %v", net.MinLatency(), net.Latency)
	}
}
