package sim

import (
	"bytes"
	"fmt"
	"testing"
)

// spawnMeshWorkload builds a deterministic but irregular message-passing
// workload: n processors advance randomized compute quanta (from their own
// per-processor streams), gossip to varying peers, and acknowledge what they
// receive. It exercises every hot path — wakes, local and cross-shard
// deliveries, FIFO bumps, blocked receives with timeouts — so it is the
// fixture for the serial-vs-sharded equivalence tests below.
func spawnMeshWorkload(e *Engine, n, rounds int) {
	for i := 0; i < n; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			rng := p.Rand()
			for r := 0; r < rounds; r++ {
				p.Advance(Time(1+rng.Intn(40))*Microsecond, CatCompute)
				dst := rng.Intn(p.Engine().NumProcs())
				if dst == p.ID() {
					dst = (dst + 1) % p.Engine().NumProcs()
				}
				p.Send(&Msg{Dst: dst, Tag: 1, Size: 64 + rng.Intn(256)}, CatMessaging)
				if p.WaitMsgFor(Time(50+rng.Intn(100))*Microsecond, CatIdle) {
					p.TryRecv(CatMessaging)
				}
			}
			// Drain stragglers so the run ends without deadlock.
			for p.WaitMsgFor(200*Microsecond, CatIdle) {
				p.TryRecv(CatMessaging)
			}
		})
	}
}

// runMesh executes the fixture on a fresh engine and returns its observable
// output: the error, makespan, per-processor accounts, and the span CSV.
func runMesh(t *testing.T, shards, n, rounds int) (Time, []Account, []byte) {
	t.Helper()
	return runMeshCfg(t, Config{Seed: 42, Shards: shards}, n, rounds)
}

// runMeshCfg is runMesh with full control over the engine configuration
// (partition map, network zoning, window mode).
func runMeshCfg(t *testing.T, cfg Config, n, rounds int) (Time, []Account, []byte) {
	t.Helper()
	e := NewEngine(cfg)
	e.EnableTracing()
	spawnMeshWorkload(e, n, rounds)
	if err := e.Run(); err != nil {
		t.Fatalf("shards=%d: %v", cfg.Shards, err)
	}
	accts := make([]Account, n)
	for i := 0; i < n; i++ {
		accts[i] = *e.Proc(i).Account()
	}
	var csv bytes.Buffer
	if err := e.WriteSpansCSV(&csv); err != nil {
		t.Fatal(err)
	}
	return e.Makespan(), accts, csv.Bytes()
}

// TestShardedMatchesSerial: for a spread of shard counts (including a prime
// that divides nothing evenly) the sharded engine produces byte-identical
// output to the serial engine — same makespan, same per-processor accounts,
// same span trace. This is the engine-level half of the byte-identity
// guarantee; internal/bench/shard_equivalence_test.go checks the full-stack
// half over the paper's drivers.
func TestShardedMatchesSerial(t *testing.T) {
	const n, rounds = 13, 30
	wantMakespan, wantAccts, wantCSV := runMesh(t, 1, n, rounds)
	for _, s := range []int{2, 4, 7, 8} {
		makespan, accts, csv := runMesh(t, s, n, rounds)
		if makespan != wantMakespan {
			t.Errorf("shards=%d: makespan %v != serial %v", s, makespan, wantMakespan)
		}
		for i := range accts {
			if accts[i] != wantAccts[i] {
				t.Errorf("shards=%d: proc %d account %v != serial %v", s, i, accts[i], wantAccts[i])
			}
		}
		if !bytes.Equal(csv, wantCSV) {
			t.Errorf("shards=%d: span CSV diverges from serial (%d vs %d bytes)", s, len(csv), len(wantCSV))
		}
	}
}

// TestShardClampAndAccessors: shard count is clamped to 1 when requested
// below 1 or when the network has no latency to use as lookahead.
func TestShardClampAndAccessors(t *testing.T) {
	if got := NewEngine(Config{Shards: 0}).Shards(); got != 1 {
		t.Errorf("Shards:0 clamps to %d, want 1", got)
	}
	if got := NewEngine(Config{Shards: 4}).Shards(); got != 4 {
		t.Errorf("Shards:4 gives %d", got)
	}
	cfg := DefaultNetwork()
	cfg.Latency = 0
	cfg.PerByte = 1 // keep the config non-zero so it is not defaulted
	if got := NewEngine(Config{Network: cfg, Shards: 4}).Shards(); got != 1 {
		t.Errorf("zero-latency network should force serial, got %d shards", got)
	}
}

// TestShardedDeadlockDetected: the sharded engine reports the same deadlock
// error (sorted stuck-processor names) the serial engine does.
func TestShardedDeadlockDetected(t *testing.T) {
	for _, s := range []int{1, 3} {
		e := NewEngine(Config{Shards: s})
		for i := 0; i < 4; i++ {
			e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) { p.WaitMsg(CatIdle) })
		}
		err := e.Run()
		if err == nil {
			t.Fatalf("shards=%d: deadlock not detected", s)
		}
		want := "sim: deadlock: 4 processors still blocked: w0, w1, w2, w3"
		if err.Error() != want {
			t.Errorf("shards=%d: error %q, want %q", s, err.Error(), want)
		}
	}
}

// TestShardedPanicPropagates: a processor panic on any shard surfaces as a
// Run error and still tears the machine down cleanly.
func TestShardedPanicPropagates(t *testing.T) {
	e := NewEngine(Config{Shards: 2})
	e.Spawn("ok", func(p *Proc) { p.WaitMsgFor(Second, CatIdle) })
	e.Spawn("boom", func(p *Proc) {
		p.Advance(Microsecond, CatCompute)
		panic("kaboom")
	})
	err := e.Run()
	if err == nil {
		t.Fatal("panic did not surface")
	}
}

// TestCrossShardMailboxZeroAllocs: once the mailbox backing arrays and event
// free lists are warm, a post→exchange→fire cycle across shards allocates
// nothing. This pins the claim in Engine.exchange's doc comment.
func TestCrossShardMailboxZeroAllocs(t *testing.T) {
	e := NewEngine(Config{Shards: 2})
	e.assign = []int{0, 1} // what Spawn would build for two procs, sans procs
	src, dst := e.shards[0], e.shards[1]
	m := &Msg{Src: 0, Dst: 1, Size: 8}
	var sendSeq uint64
	cycle := func() {
		sendSeq++
		src.post(m, sendSeq)
		e.exchange()
		top, ok := dst.heap.Pop()
		if !ok || top.ev.msg != m {
			t.Fatal("message did not cross the mailbox")
		}
		dst.release(top.ev)
	}
	cycle() // warm the outbox, heap, and free list
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Errorf("cross-shard mailbox path allocates %.1f per cycle, want 0", avg)
	}
}
