package sim

import (
	"fmt"
	"io"
	"sort"
)

// Span is one contiguous interval of a processor's time attributed to a
// category — the raw material for Gantt-style timelines of a run (the
// figures' stacked bars are these spans summed per processor).
type Span struct {
	Proc     int
	Cat      Category
	From, To Time
}

// spanPrealloc is the total span capacity reserved when tracing is enabled
// (split across shards), so the first tens of thousands of spans record
// without a single growth copy.
const spanPrealloc = 1 << 16

// EnableTracing starts recording spans. Tracing is off by default: a full
// benchmark run produces millions of spans, so enable it only for runs you
// intend to visualize. Call it before Run.
func (e *Engine) EnableTracing() {
	e.tracing = true
	per := spanPrealloc / len(e.shards)
	for _, s := range e.shards {
		if s.spans == nil {
			s.spans = make([]Span, 0, per)
		}
	}
}

// Spans returns the recorded spans in canonical order: ascending completion
// time, ties broken by processor ID. Each shard records its processors'
// spans into its own buffer, so the canonical sort is what makes the merged
// result independent of the shard count — and it is applied to serial runs
// too, so a one-shard trace is byte-for-byte the same file. (Within one
// processor span completions strictly increase, so (To, Proc) is unique and
// the order total.) Call it after Run.
func (e *Engine) Spans() []Span {
	if !e.spansMerged {
		n := 0
		for _, s := range e.shards {
			n += len(s.spans)
		}
		e.spans = make([]Span, 0, n)
		for _, s := range e.shards {
			e.spans = append(e.spans, s.spans...)
		}
		sort.Slice(e.spans, func(i, j int) bool {
			a, b := e.spans[i], e.spans[j]
			if a.To != b.To {
				return a.To < b.To
			}
			return a.Proc < b.Proc
		})
		e.spansMerged = true
	}
	return e.spans
}

// WriteSpansCSV emits the trace as CSV (proc, category, from_s, to_s).
func (e *Engine) WriteSpansCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "proc,category,from,to"); err != nil {
		return err
	}
	for _, s := range e.Spans() {
		if _, err := fmt.Fprintf(w, "%d,%s,%.6f,%.6f\n", s.Proc, s.Cat, s.From.Seconds(), s.To.Seconds()); err != nil {
			return err
		}
	}
	return nil
}
