package sim

import (
	"fmt"
	"io"
)

// Span is one contiguous interval of a processor's time attributed to a
// category — the raw material for Gantt-style timelines of a run (the
// figures' stacked bars are these spans summed per processor).
type Span struct {
	Proc     int
	Cat      Category
	From, To Time
}

// spanPrealloc is the span capacity reserved when tracing is enabled, so
// the first tens of thousands of spans record without a single growth copy.
const spanPrealloc = 1 << 16

// EnableTracing starts recording spans. Tracing is off by default: a full
// benchmark run produces millions of spans, so enable it only for runs you
// intend to visualize.
func (e *Engine) EnableTracing() {
	e.tracing = true
	if e.spans == nil {
		e.spans = make([]Span, 0, spanPrealloc)
	}
}

// Spans returns the recorded spans in chronological order of completion.
func (e *Engine) Spans() []Span { return e.spans }

// recordSpan appends a span when tracing is on. Zero-length spans are
// dropped.
func (e *Engine) recordSpan(proc int, cat Category, from, to Time) {
	if !e.tracing || to == from {
		return
	}
	e.spans = append(e.spans, Span{Proc: proc, Cat: cat, From: from, To: to})
}

// WriteSpansCSV emits the trace as CSV (proc, category, from_s, to_s).
func (e *Engine) WriteSpansCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "proc,category,from,to"); err != nil {
		return err
	}
	for _, s := range e.spans {
		if _, err := fmt.Fprintf(w, "%d,%s,%.6f,%.6f\n", s.Proc, s.Cat, s.From.Seconds(), s.To.Seconds()); err != nil {
			return err
		}
	}
	return nil
}
