// Package sim is a deterministic, process-oriented discrete-event simulator
// of a distributed-memory cluster. It is the substrate on which this
// repository reproduces the PREMA runtime and its baselines (ParMETIS-style
// stop-and-repartition and a Charm++-style chare runtime).
//
// Each simulated processor is a goroutine, but at most one of them executes
// at any instant: the engine and the processors hand control back and forth
// over unbuffered channels, so a simulation is sequential, race-free, and —
// together with the (time, seq)-ordered event heap and seeded RNG —
// fully deterministic. Virtual time advances only through the cost model:
// computation (Proc.Advance), message send/receive CPU overheads, and network
// latency/bandwidth. This lets the harness reproduce the paper's
// per-processor time breakdowns (idle, messaging, scheduling, callback,
// polling-thread, partition-calculation, synchronization) on a laptop.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"
	"strings"
)

// Config parameterizes an Engine.
type Config struct {
	// Network is the interconnect cost model.
	Network NetworkConfig
	// Seed seeds the engine's deterministic RNG.
	Seed int64
}

// Engine owns virtual time, the event queue, the network, and the set of
// simulated processors. Create one with NewEngine, add processors with
// Spawn, then call Run.
type Engine struct {
	cfg     Config
	now     Time
	heap    eventHeap
	seq     uint64
	free    *event // recycled fired events (intrusive list via event.next)
	procs   []*Proc
	net     *network
	rng     *rand.Rand
	running *Proc
	stopped bool
	err     error

	tracing bool
	spans   []Span
}

// NewEngine returns an engine with the given configuration.
func NewEngine(cfg Config) *Engine {
	if cfg.Network == (NetworkConfig{}) {
		cfg.Network = DefaultNetwork()
	}
	return &Engine{
		cfg:  cfg,
		heap: eventHeap{ev: make([]*event, 0, 1024)},
		net:  newNetwork(cfg.Network),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. It must only be
// used from simulation context (event handlers and processor bodies).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// NumProcs returns the number of spawned processors.
func (e *Engine) NumProcs() int { return len(e.procs) }

// Proc returns processor i.
func (e *Engine) Proc(i int) *Proc { return e.procs[i] }

// After schedules fn to run d from now on the engine's event loop.
func (e *Engine) After(d Time, fn func()) { e.at(d, fn) }

// alloc takes an event from the free list, or heap-allocates when the list
// is empty (cold start and queue-depth high-water marks only).
func (e *Engine) alloc(d Time) *event {
	if d < 0 {
		d = 0
	}
	e.seq++
	ev := e.free
	if ev == nil {
		ev = &event{}
	} else {
		e.free = ev.next
		ev.next = nil
	}
	ev.at = e.now + d
	ev.seq = e.seq
	return ev
}

// release returns a fired event to the free list, dropping its operand
// references so recycled events retain nothing.
func (e *Engine) release(ev *event) {
	*ev = event{next: e.free}
	e.free = ev
}

func (e *Engine) at(d Time, fn func()) {
	ev := e.alloc(d)
	ev.kind = evFunc
	ev.fn = fn
	e.heap.Push(ev)
}

// atWake schedules proc.wakeIf(gen) at now+d without allocating a closure.
func (e *Engine) atWake(d Time, p *Proc, gen uint64) {
	ev := e.alloc(d)
	ev.kind = evWake
	ev.proc = p
	ev.gen = gen
	e.heap.Push(ev)
}

// atDeliver schedules delivery of m at now+d without allocating a closure.
func (e *Engine) atDeliver(d Time, m *Msg) {
	ev := e.alloc(d)
	ev.kind = evDeliver
	ev.msg = m
	e.heap.Push(ev)
}

// atTransfer schedules a control handoff to p at now+d.
func (e *Engine) atTransfer(d Time, p *Proc) {
	ev := e.alloc(d)
	ev.kind = evTransfer
	ev.proc = p
	e.heap.Push(ev)
}

// fire dispatches one popped event.
func (e *Engine) fire(ev *event) {
	switch ev.kind {
	case evWake:
		ev.proc.wakeIf(ev.gen)
	case evDeliver:
		e.deliver(ev.msg)
	case evTransfer:
		e.transfer(ev.proc)
	default:
		ev.fn()
	}
}

// Stop ends the simulation after the currently firing event completes.
// Remaining events are discarded and still-blocked processors are torn down.
func (e *Engine) Stop() { e.stopped = true }

// Spawn creates a simulated processor whose behaviour is body. The processor
// starts executing when virtual time reaches the moment of the Spawn call
// (normally time zero, before Run). Processor IDs are assigned densely in
// spawn order.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	p := &Proc{
		id:     len(e.procs),
		name:   name,
		eng:    e,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	e.procs = append(e.procs, p)
	go func() {
		<-p.resume
		if !p.killed {
			func() {
				defer func() {
					if r := recover(); r != nil {
						if r == errKilled {
							return
						}
						if e.err == nil {
							e.err = fmt.Errorf("sim: processor %q panicked: %v\n%s", p.name, r, debug.Stack())
						}
					}
				}()
				body(p)
			}()
		}
		p.done = true
		p.finishedAt = e.now
		p.parked <- struct{}{}
	}()
	e.atTransfer(0, p)
	return p
}

// transfer hands the (single) thread of control to p until p blocks or
// finishes. It must only be called from the engine's event loop; processors
// never call it directly (Unpark schedules an event instead).
func (e *Engine) transfer(p *Proc) {
	if p.done {
		return
	}
	prev := e.running
	e.running = p
	p.resume <- struct{}{}
	<-p.parked
	e.running = prev
}

// ErrDeadlock is returned (wrapped) by Run when the event queue drains while
// some processors are still blocked.
var ErrDeadlock = errors.New("sim: deadlock")

// Run executes the simulation until the event queue is empty, Stop is
// called, or a processor panics. It returns an error on panic or deadlock
// (event queue empty with processors still blocked).
func (e *Engine) Run() error {
	for e.err == nil && !e.stopped {
		ev := e.heap.Pop()
		if ev == nil {
			break
		}
		if ev.at < e.now {
			panic("sim: event scheduled in the past")
		}
		e.now = ev.at
		e.fire(ev)
		e.release(ev)
	}
	var stuck []string
	for _, p := range e.procs {
		if !p.done {
			stuck = append(stuck, p.name)
		}
	}
	e.teardown()
	if e.err != nil {
		return e.err
	}
	if len(stuck) > 0 && !e.stopped {
		sort.Strings(stuck)
		return fmt.Errorf("%w: %d processors still blocked: %s",
			ErrDeadlock, len(stuck), strings.Join(stuck, ", "))
	}
	return nil
}

// teardown unwinds any still-blocked processor goroutines so they do not
// leak past Run.
func (e *Engine) teardown() {
	for _, p := range e.procs {
		if !p.done {
			p.killed = true
			e.transfer(p)
		}
	}
}

// deliver appends m to its destination inbox and wakes the destination if it
// is blocked waiting for a message.
func (e *Engine) deliver(m *Msg) {
	p := e.procs[m.Dst]
	m.ArrivedAt = e.now
	p.inbox.push(m)
	if p.blocked && p.waitingMsg {
		p.waitGen++ // invalidate any pending wait timeout
		e.transfer(p)
	}
}

// Makespan returns the latest processor finish time. It is only meaningful
// after Run returns.
func (e *Engine) Makespan() Time {
	var t Time
	for _, p := range e.procs {
		if p.finishedAt > t {
			t = p.finishedAt
		}
	}
	return t
}
