// Package sim is a deterministic, process-oriented discrete-event simulator
// of a distributed-memory cluster. It is the substrate on which this
// repository reproduces the PREMA runtime and its baselines (ParMETIS-style
// stop-and-repartition and a Charm++-style chare runtime).
//
// Each simulated processor is a goroutine, but processors only execute when
// their owning *shard* hands them control over unbuffered channels. With one
// shard (the default) the simulation is fully sequential, exactly as it was
// before the engine was parallelized. With S > 1 shards the processors are
// partitioned across S shard event loops (round-robin by default, or any
// Config.Partition map) that run on their own goroutines and advance in
// bounded-lag windows. The window bound is conservative lookahead: a message
// from shard s cannot arrive at shard d earlier than s's next event plus the
// cheapest (src in s, dst in d) link latency, so every event a shard fires
// below that bound is safe. The engine derives a per-(shard,shard) minimum-
// latency matrix from the NetworkConfig and, each coordination round, solves
// for the widest per-shard windows the matrix permits (see runSharded) —
// shards that only talk over expensive links, or not at all, advance many
// minimum-latency widths per barrier. Cross-shard deliveries wait in
// per-(shard,shard) mailboxes and are batch-exchanged at the window barrier.
//
// Sharding is a performance knob, not a semantics knob: shards share no
// mutable state and the event ordering key is partition-invariant (see
// event.go), so a simulation's output — makespans, accounts, spans, message
// timings, per-processor RNG streams — is byte-identical for every shard
// count. Virtual time advances only through the cost model: computation
// (Proc.Advance), message send/receive CPU overheads, and network
// latency/bandwidth. This lets the harness reproduce the paper's
// per-processor time breakdowns (idle, messaging, scheduling, callback,
// polling-thread, partition-calculation, synchronization) on a laptop.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime/debug"
	"sort"
	"strings"
	"sync/atomic"
)

// Config parameterizes an Engine.
type Config struct {
	// Network is the interconnect cost model.
	Network NetworkConfig
	// Seed seeds the engine's deterministic RNGs (the engine-level stream
	// and the per-processor streams derived from it).
	Seed int64
	// Shards is the number of parallel event-loop shards (<= 1 = serial).
	// Output is byte-identical for every value; more shards trade
	// per-window barrier overhead for parallelism, so the sweet spot is
	// min(GOMAXPROCS, a few) for large simulations and 1 for small ones.
	// Sharding requires a positive Network.Latency for lookahead; with a
	// zero-latency network the engine silently runs serial.
	Shards int
	// Partition maps a processor ID to the shard that owns it (0 <=
	// result < shards). nil selects the round-robin default (id % shards).
	// Like Shards it is a pure performance knob: the (time, ord) event
	// ordering key is partition-invariant, so output is byte-identical for
	// every assignment — which is what lets drivers pick load-aware
	// placements (internal/bench's -partition=loaded) without re-validating
	// a single result. The function must be pure and is called once per
	// processor at Spawn.
	Partition func(id, shards int) int
	// FixedWindows disables adaptive window batching: every coordination
	// round dispatches one minimum-lookahead-wide window, as the engine did
	// before windows were batched. It exists so perfbench can measure the
	// barrier rounds the adaptive protocol saves; there is no reason to set
	// it otherwise. Output is byte-identical either way.
	FixedWindows bool
}

// Engine owns the simulated machine: configuration, the set of processors,
// and the shard event loops that execute them. Create one with NewEngine,
// add processors with Spawn, then call Run.
type Engine struct {
	cfg     Config
	look    Time  // minimum lookahead over all links (fixed-window width)
	procs   []*Proc
	assign  []int // processor ID -> owning shard (partition map)
	shards  []*shard
	rng     *rand.Rand
	running bool // true while Run executes
	err     error
	stop    atomic.Bool

	// Sharded-mode coordinator state, built at Run: minLat[s][d] is the
	// smallest latency of any (src in s, dst in d) link — the
	// per-destination conservative lookahead — and bound/ends are scratch
	// for the per-round window computation. mail is the exchange's reusable
	// batch buffer. rounds counts coordination rounds (barriers), the
	// quantity adaptive windows exist to shrink.
	minLat [][]Time
	bound  []Time
	ends   []Time
	mail   []heapEntry
	rounds uint64

	tracing     bool
	spans       []Span // merged + canonically sorted, built lazily by Spans
	spansMerged bool
}

// maxTime is the "no bound" window end for the serial fast path.
const maxTime = Time(math.MaxInt64)

// NewEngine returns an engine with the given configuration.
func NewEngine(cfg Config) *Engine {
	if cfg.Network == (NetworkConfig{}) {
		cfg.Network = DefaultNetwork()
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Network.MinLatency() <= 0 {
		// No positive lookahead: conservative windows would have zero
		// width. Run serial; output is identical either way.
		cfg.Shards = 1
	}
	e := &Engine{
		cfg:  cfg,
		look: cfg.Network.MinLatency(),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		e.shards[i] = newShard(e, i, cfg.Shards)
	}
	return e
}

// Shards returns the number of shard event loops (1 = serial).
func (e *Engine) Shards() int { return len(e.shards) }

// EventsFired returns the total number of events executed so far, summed
// over shards. Read it after Run (or from serial simulation context).
func (e *Engine) EventsFired() uint64 {
	var n uint64
	for _, s := range e.shards {
		n += s.fired
	}
	return n
}

// ShardEventsFired returns the per-shard executed event counts — the raw
// material for partition-quality telemetry. Read it after Run.
func (e *Engine) ShardEventsFired() []uint64 {
	out := make([]uint64, len(e.shards))
	for i, s := range e.shards {
		out[i] = s.fired
	}
	return out
}

// ImbalanceRatio returns max/mean of the per-shard event counts: 1.0 is a
// perfectly balanced partition, S is the worst case (all events on one of S
// shards). Returns 0 before any event has fired.
func (e *Engine) ImbalanceRatio() float64 {
	var total, max uint64
	for _, s := range e.shards {
		total += s.fired
		if s.fired > max {
			max = s.fired
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) * float64(len(e.shards)) / float64(total)
}

// BarrierRounds returns the number of window coordination rounds the sharded
// run executed (0 for a serial run). Fewer rounds for the same event count
// means less synchronization overhead; comparing a FixedWindows run against
// an adaptive one on the same workload measures what the per-destination
// lookahead matrix and window batching save.
func (e *Engine) BarrierRounds() uint64 { return e.rounds }

// shardOf returns the shard owning processor id.
func (e *Engine) shardOf(id int) int { return e.assign[id] }

// Now returns the engine's notion of current virtual time: the (single)
// shard clock in serial mode, the maximum shard clock in sharded mode.
// Processor bodies should use Proc.Now, which is their own shard's clock;
// Engine.Now is for drivers before and after Run.
func (e *Engine) Now() Time {
	if len(e.shards) == 1 {
		return e.shards[0].now
	}
	var t Time
	for _, s := range e.shards {
		if s.now > t {
			t = s.now
		}
	}
	return t
}

// Rand returns the engine's deterministic random source. It must only be
// used from serial simulation context (event handlers and processor bodies
// on a one-shard engine) or before Run; sharded processor bodies must use
// their own Proc.Rand stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// NumProcs returns the number of spawned processors.
func (e *Engine) NumProcs() int { return len(e.procs) }

// Proc returns processor i.
func (e *Engine) Proc(i int) *Proc { return e.procs[i] }

// After schedules fn to run d from now on shard 0's event loop. It may be
// called before Run on any engine, or from simulation context on a serial
// (one-shard) engine; calling it mid-run on a sharded engine panics, since
// the closure would race with the other shards.
func (e *Engine) After(d Time, fn func()) {
	if e.running && len(e.shards) > 1 {
		panic("sim: After is unavailable while a sharded engine runs; schedule before Run or use Shards: 1")
	}
	e.shards[0].at(d, fn)
}

// Stop ends the simulation: remaining events are discarded and
// still-blocked processors are torn down. On a serial engine it takes
// effect after the currently firing event, exactly as before; on a sharded
// engine it takes effect at the current window barrier (the shards finish
// the window they are in — deterministic run-to-run, but a sharded stop
// point lands later than the serial one, and adaptive windows can be wide,
// so drivers that need byte-identical or prompt stop timing should terminate
// by message protocol, as the PREMA stack's StopAll does).
func (e *Engine) Stop() {
	e.stop.Store(true)
	if len(e.shards) == 1 {
		e.shards[0].stopped = true
	}
}

// Spawn creates a simulated processor whose behaviour is body. The
// processor starts executing when virtual time reaches the moment of the
// Spawn call (normally time zero, before Run). Processor IDs are assigned
// densely in spawn order. On a sharded engine all Spawn calls must precede
// Run.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	if e.running && len(e.shards) > 1 {
		panic("sim: Spawn is unavailable while a sharded engine runs; spawn before Run or use Shards: 1")
	}
	id := len(e.procs)
	sh := id % len(e.shards)
	if e.cfg.Partition != nil {
		sh = e.cfg.Partition(id, len(e.shards))
		if sh < 0 || sh >= len(e.shards) {
			panic(fmt.Sprintf("sim: Partition(%d, %d) returned out-of-range shard %d",
				id, len(e.shards), sh))
		}
	}
	e.assign = append(e.assign, sh)
	s := e.shards[sh]
	p := &Proc{
		id:     id,
		name:   name,
		sh:     s,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	e.procs = append(e.procs, p)
	go func() {
		<-p.resume
		if !p.killed {
			func() {
				defer func() {
					if r := recover(); r != nil {
						if r == errKilled {
							return
						}
						if s.err == nil {
							s.err = fmt.Errorf("sim: processor %q panicked: %v\n%s", p.name, r, debug.Stack())
						}
					}
				}()
				body(p)
			}()
		}
		p.done = true
		p.finishedAt = s.now
		p.parked <- struct{}{}
	}()
	s.atTransfer(0, p)
	return p
}

// ErrDeadlock is returned (wrapped) by Run when the event queue drains while
// some processors are still blocked.
var ErrDeadlock = errors.New("sim: deadlock")

// Run executes the simulation until every event queue is empty, Stop is
// called, or a processor panics. It returns an error on panic or deadlock
// (event queues empty with processors still blocked).
func (e *Engine) Run() error {
	e.running = true
	if len(e.shards) == 1 {
		e.shards[0].runWindow(maxTime)
	} else {
		e.runSharded()
	}
	e.running = false
	for _, s := range e.shards {
		if s.err != nil {
			e.err = s.err
			break
		}
	}
	var stuck []string
	for _, p := range e.procs {
		if !p.done {
			stuck = append(stuck, p.name)
		}
	}
	e.teardown()
	if e.err != nil {
		return e.err
	}
	if len(stuck) > 0 && !e.stop.Load() {
		sort.Strings(stuck)
		return fmt.Errorf("%w: %d processors still blocked: %s",
			ErrDeadlock, len(stuck), strings.Join(stuck, ", "))
	}
	return nil
}

// runSharded is the conservative parallel loop: one persistent worker
// goroutine per shard, per-shard window bounds computed each round from the
// lookahead matrix, mailbox exchange and a full barrier between rounds. The
// coordinator (this goroutine) only touches shard state while every worker
// is parked at the barrier, so the whole machine needs no locks — the
// channels' happens-before edges carry all cross-shard visibility.
//
// Window computation. After the exchange every pending delivery sits in
// some shard's heap, so next[s] (the head of s's heap) is the earliest
// event s can fire from local state. Let B[s] be the least fixed point of
//
//	B[s] = min(next[s], min over r != s of B[r] + minLat[r][s])
//
// B[s] lower-bounds the virtual time of *every* event shard s will ever
// fire — its own pending events and anything a future incoming delivery
// can trigger — because a delivery from r departs no earlier than B[r] and
// pays at least minLat[r][s] in flight. Every send s performs therefore
// departs at or after B[s], so a delivery into shard d arrives at or after
//
//	end[d] = min over s != d of B[s] + minLat[s][d]
//
// and d can safely fire every event strictly below end[d] in this round.
// Progress is guaranteed: the globally earliest shard m has end[m] >=
// B[m] + minLookahead > next[m], so it always fires at least one event.
// This generalizes both of PR 6's fixed windows (flat network: B collapses
// to the global minimum and end to min+Latency) and "K-width" batching: a
// shard whose peers are idle (B[r] = +inf) or far behind gets an unbounded
// or many-widths-wide window, which is what collapses tail-drain barriers
// on imbalanced workloads. Config.FixedWindows forces the PR 6 bound so
// the saved rounds are measurable.
func (e *Engine) runSharded() {
	e.buildLookahead()
	for _, s := range e.shards {
		s.start = make(chan Time)
		s.done = make(chan struct{}, 1)
		go s.work()
	}
	for !e.stop.Load() {
		failed := false
		for _, s := range e.shards {
			if s.err != nil {
				failed = true
				break
			}
		}
		if failed {
			break
		}
		e.exchange()
		any := false
		for i, s := range e.shards {
			if at, ok := s.heap.PeekTime(); ok {
				e.bound[i] = at
				any = true
			} else {
				e.bound[i] = maxTime
			}
		}
		if !any {
			break // every heap and mailbox is empty: simulation over
		}
		e.rounds++
		if e.cfg.FixedWindows {
			base := maxTime
			for _, b := range e.bound {
				if b < base {
					base = b
				}
			}
			for i := range e.ends {
				e.ends[i] = base + e.look
			}
		} else {
			e.relaxWindows()
		}
		for i, s := range e.shards {
			s.start <- e.ends[i]
		}
		for _, s := range e.shards {
			<-s.done
		}
	}
	for _, s := range e.shards {
		close(s.start)
	}
}

// relaxWindows computes the per-shard window ends for one coordination
// round (see runSharded for the invariant). e.bound holds next[s] on entry
// and is relaxed in place to the least fixed point B[s]; Bellman-Ford-style
// sweeps converge in at most S-1 passes because every minLat edge is
// positive. maxTime means "never" and is skipped rather than added to.
func (e *Engine) relaxWindows() {
	b := e.bound
	for changed := true; changed; {
		changed = false
		for d := range b {
			for r := range b {
				if r == d || b[r] == maxTime || e.minLat[r][d] == maxTime {
					continue
				}
				if v := b[r] + e.minLat[r][d]; v < b[d] {
					b[d] = v
					changed = true
				}
			}
		}
	}
	for d := range e.ends {
		end := maxTime
		for s := range b {
			if s == d || b[s] == maxTime || e.minLat[s][d] == maxTime {
				continue
			}
			if v := b[s] + e.minLat[s][d]; v < end {
				end = v
			}
		}
		e.ends[d] = end
	}
}

// buildLookahead fills minLat[s][d] with the cheapest latency of any link
// from a processor on shard s to one on shard d, using the partition map
// and the network's zone structure. On a flat network every entry is
// Latency. On a zoned network the cheapest (s,d) link is ZoneLatency when
// the two shards occupy a common zone and Latency when any cross-zone
// (src,dst) pair exists — which fails only when both shards live entirely
// in the same single zone. Shards that own no processors can never send, so
// their rows are maxTime ("never"). Cost is O(P + S^2), not O(P^2): only
// the per-shard zone sets are scanned.
func (e *Engine) buildLookahead() {
	S := len(e.shards)
	e.minLat = make([][]Time, S)
	e.bound = make([]Time, S)
	e.ends = make([]Time, S)
	net := e.cfg.Network
	zones := make([]map[int]bool, S)
	for i := range zones {
		zones[i] = make(map[int]bool)
	}
	for id, sh := range e.assign {
		zones[sh][net.zoneOf(id)] = true
	}
	for s := 0; s < S; s++ {
		e.minLat[s] = make([]Time, S)
		for d := 0; d < S; d++ {
			e.minLat[s][d] = linkMin(net, zones[s], zones[d])
		}
	}
}

// linkMin is the cheapest link latency between any processor in zone set a
// and any in zone set b (maxTime when either set is empty).
func linkMin(net NetworkConfig, a, b map[int]bool) Time {
	if len(a) == 0 || len(b) == 0 {
		return maxTime
	}
	if !net.zoned() {
		return net.Latency
	}
	min := maxTime
	shared := false
	for z := range a {
		if b[z] {
			shared = true
			break
		}
	}
	if shared {
		min = net.ZoneLatency
	}
	// A cross-zone pair exists unless both shards occupy exactly one
	// common zone.
	if !(len(a) == 1 && len(b) == 1 && shared) && net.Latency < min {
		min = net.Latency
	}
	return min
}

// exchange moves every outbox entry into its destination shard's heap,
// batching each destination's deliveries into a single bulk PushAll instead
// of N sifted pushes. It runs between windows, when all workers are parked,
// so it may touch any shard's heap and free list directly. Entries and the
// batch buffer are reused across windows: the steady-state cross-shard path
// allocates nothing (guarded by a test).
func (e *Engine) exchange() {
	for d, dst := range e.shards {
		batch := e.mail[:0]
		for _, src := range e.shards {
			box := src.out[d]
			if len(box) == 0 {
				continue
			}
			for i := range box {
				ent := &box[i]
				ev := dst.alloc()
				ev.kind = evDeliver
				ev.msg = ent.m
				batch = append(batch, heapEntry{at: ent.at, ord: ent.ord, ev: ev})
				*ent = mailEntry{} // drop the Msg reference
			}
			src.out[d] = box[:0]
		}
		dst.heap.PushAll(batch)
		for i := range batch {
			batch[i] = heapEntry{} // drop the event references
		}
		e.mail = batch[:0]
	}
}

// teardown unwinds any still-blocked processor goroutines so they do not
// leak past Run. It runs after every shard worker has quiesced, so the
// sequential transfers below are race-free.
func (e *Engine) teardown() {
	for _, p := range e.procs {
		if !p.done {
			p.killed = true
			p.sh.transfer(p)
		}
	}
}

// Makespan returns the latest processor finish time. It is only meaningful
// after Run returns.
func (e *Engine) Makespan() Time {
	var t Time
	for _, p := range e.procs {
		if p.finishedAt > t {
			t = p.finishedAt
		}
	}
	return t
}
