// Package sim is a deterministic, process-oriented discrete-event simulator
// of a distributed-memory cluster. It is the substrate on which this
// repository reproduces the PREMA runtime and its baselines (ParMETIS-style
// stop-and-repartition and a Charm++-style chare runtime).
//
// Each simulated processor is a goroutine, but processors only execute when
// their owning *shard* hands them control over unbuffered channels. With one
// shard (the default) the simulation is fully sequential, exactly as it was
// before the engine was parallelized. With S > 1 shards the processors are
// partitioned round-robin across S shard event loops that run on their own
// goroutines and advance in bounded-lag windows: the minimum cross-shard
// link latency (NetworkConfig.Latency) is a conservative lookahead, so
// every event a shard fires inside the window [T, T+Latency) is safe —
// no message from another shard can arrive before T+Latency. Cross-shard
// deliveries wait in per-(shard,shard) mailboxes and are exchanged at the
// window barrier.
//
// Sharding is a performance knob, not a semantics knob: shards share no
// mutable state and the event ordering key is partition-invariant (see
// event.go), so a simulation's output — makespans, accounts, spans, message
// timings, per-processor RNG streams — is byte-identical for every shard
// count. Virtual time advances only through the cost model: computation
// (Proc.Advance), message send/receive CPU overheads, and network
// latency/bandwidth. This lets the harness reproduce the paper's
// per-processor time breakdowns (idle, messaging, scheduling, callback,
// polling-thread, partition-calculation, synchronization) on a laptop.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime/debug"
	"sort"
	"strings"
	"sync/atomic"
)

// Config parameterizes an Engine.
type Config struct {
	// Network is the interconnect cost model.
	Network NetworkConfig
	// Seed seeds the engine's deterministic RNGs (the engine-level stream
	// and the per-processor streams derived from it).
	Seed int64
	// Shards is the number of parallel event-loop shards (<= 1 = serial).
	// Output is byte-identical for every value; more shards trade
	// per-window barrier overhead for parallelism, so the sweet spot is
	// min(GOMAXPROCS, a few) for large simulations and 1 for small ones.
	// Sharding requires a positive Network.Latency for lookahead; with a
	// zero-latency network the engine silently runs serial.
	Shards int
}

// Engine owns the simulated machine: configuration, the set of processors,
// and the shard event loops that execute them. Create one with NewEngine,
// add processors with Spawn, then call Run.
type Engine struct {
	cfg     Config
	look    Time // conservative lookahead (window length) = Network.Latency
	procs   []*Proc
	shards  []*shard
	rng     *rand.Rand
	base    Time // sharded mode: current window base (coordinator-owned)
	running bool // true while Run executes
	err     error
	stop    atomic.Bool

	tracing     bool
	spans       []Span // merged + canonically sorted, built lazily by Spans
	spansMerged bool
}

// maxTime is the "no bound" window end for the serial fast path.
const maxTime = Time(math.MaxInt64)

// NewEngine returns an engine with the given configuration.
func NewEngine(cfg Config) *Engine {
	if cfg.Network == (NetworkConfig{}) {
		cfg.Network = DefaultNetwork()
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Network.Latency <= 0 {
		// No positive lookahead: conservative windows would have zero
		// width. Run serial; output is identical either way.
		cfg.Shards = 1
	}
	e := &Engine{
		cfg:  cfg,
		look: cfg.Network.Latency,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		e.shards[i] = newShard(e, i, cfg.Shards)
	}
	return e
}

// Shards returns the number of shard event loops (1 = serial).
func (e *Engine) Shards() int { return len(e.shards) }

// EventsFired returns the total number of events executed so far, summed
// over shards. Read it after Run (or from serial simulation context).
func (e *Engine) EventsFired() uint64 {
	var n uint64
	for _, s := range e.shards {
		n += s.fired
	}
	return n
}

// shardOf returns the shard owning processor id (round-robin partition).
func (e *Engine) shardOf(id int) int { return id % len(e.shards) }

// Now returns the engine's notion of current virtual time: the (single)
// shard clock in serial mode, the maximum shard clock in sharded mode.
// Processor bodies should use Proc.Now, which is their own shard's clock;
// Engine.Now is for drivers before and after Run.
func (e *Engine) Now() Time {
	if len(e.shards) == 1 {
		return e.shards[0].now
	}
	var t Time
	for _, s := range e.shards {
		if s.now > t {
			t = s.now
		}
	}
	return t
}

// Rand returns the engine's deterministic random source. It must only be
// used from serial simulation context (event handlers and processor bodies
// on a one-shard engine) or before Run; sharded processor bodies must use
// their own Proc.Rand stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// NumProcs returns the number of spawned processors.
func (e *Engine) NumProcs() int { return len(e.procs) }

// Proc returns processor i.
func (e *Engine) Proc(i int) *Proc { return e.procs[i] }

// After schedules fn to run d from now on shard 0's event loop. It may be
// called before Run on any engine, or from simulation context on a serial
// (one-shard) engine; calling it mid-run on a sharded engine panics, since
// the closure would race with the other shards.
func (e *Engine) After(d Time, fn func()) {
	if e.running && len(e.shards) > 1 {
		panic("sim: After is unavailable while a sharded engine runs; schedule before Run or use Shards: 1")
	}
	e.shards[0].at(d, fn)
}

// Stop ends the simulation: remaining events are discarded and
// still-blocked processors are torn down. On a serial engine it takes
// effect after the currently firing event, exactly as before; on a sharded
// engine it takes effect at the current window barrier (the shards finish
// the window they are in — deterministic, but a sharded stop point is up to
// one lookahead window later than the serial one, so drivers that need
// byte-identical stop timing across shard counts should terminate by
// message protocol, as the PREMA stack's StopAll does).
func (e *Engine) Stop() {
	e.stop.Store(true)
	if len(e.shards) == 1 {
		e.shards[0].stopped = true
	}
}

// Spawn creates a simulated processor whose behaviour is body. The
// processor starts executing when virtual time reaches the moment of the
// Spawn call (normally time zero, before Run). Processor IDs are assigned
// densely in spawn order. On a sharded engine all Spawn calls must precede
// Run.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	if e.running && len(e.shards) > 1 {
		panic("sim: Spawn is unavailable while a sharded engine runs; spawn before Run or use Shards: 1")
	}
	id := len(e.procs)
	s := e.shards[e.shardOf(id)]
	p := &Proc{
		id:     id,
		name:   name,
		sh:     s,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	e.procs = append(e.procs, p)
	go func() {
		<-p.resume
		if !p.killed {
			func() {
				defer func() {
					if r := recover(); r != nil {
						if r == errKilled {
							return
						}
						if s.err == nil {
							s.err = fmt.Errorf("sim: processor %q panicked: %v\n%s", p.name, r, debug.Stack())
						}
					}
				}()
				body(p)
			}()
		}
		p.done = true
		p.finishedAt = s.now
		p.parked <- struct{}{}
	}()
	s.atTransfer(0, p)
	return p
}

// ErrDeadlock is returned (wrapped) by Run when the event queue drains while
// some processors are still blocked.
var ErrDeadlock = errors.New("sim: deadlock")

// Run executes the simulation until every event queue is empty, Stop is
// called, or a processor panics. It returns an error on panic or deadlock
// (event queues empty with processors still blocked).
func (e *Engine) Run() error {
	e.running = true
	if len(e.shards) == 1 {
		e.shards[0].runWindow(maxTime)
	} else {
		e.runSharded()
	}
	e.running = false
	for _, s := range e.shards {
		if s.err != nil {
			e.err = s.err
			break
		}
	}
	var stuck []string
	for _, p := range e.procs {
		if !p.done {
			stuck = append(stuck, p.name)
		}
	}
	e.teardown()
	if e.err != nil {
		return e.err
	}
	if len(stuck) > 0 && !e.stop.Load() {
		sort.Strings(stuck)
		return fmt.Errorf("%w: %d processors still blocked: %s",
			ErrDeadlock, len(stuck), strings.Join(stuck, ", "))
	}
	return nil
}

// runSharded is the conservative parallel loop: one persistent worker
// goroutine per shard, windows of length e.look, mailbox exchange and a
// full barrier between windows. The coordinator (this goroutine) only
// touches shard state while every worker is parked at the barrier, so the
// whole machine needs no locks — the channels' happens-before edges carry
// all cross-shard visibility.
func (e *Engine) runSharded() {
	for _, s := range e.shards {
		s.start = make(chan Time)
		s.done = make(chan struct{}, 1)
		go s.work()
	}
	for !e.stop.Load() {
		failed := false
		for _, s := range e.shards {
			if s.err != nil {
				failed = true
				break
			}
		}
		if failed {
			break
		}
		e.exchange()
		base, ok := e.minNext()
		if !ok {
			break // every heap and mailbox is empty: simulation over
		}
		e.base = base
		end := base + e.look
		for _, s := range e.shards {
			s.start <- end
		}
		for _, s := range e.shards {
			<-s.done
		}
	}
	for _, s := range e.shards {
		close(s.start)
	}
}

// exchange moves every outbox entry into its destination shard's heap. It
// runs between windows, when all workers are parked, so it may touch any
// shard's heap and free list directly. Entries and their backing arrays are
// reused across windows: the steady-state cross-shard path allocates
// nothing (guarded by a test).
func (e *Engine) exchange() {
	for _, src := range e.shards {
		for d, box := range src.out {
			if len(box) == 0 {
				continue
			}
			dst := e.shards[d]
			for i := range box {
				ent := &box[i]
				ev := dst.alloc()
				ev.kind = evDeliver
				ev.msg = ent.m
				dst.heap.Push(ent.at, ent.ord, ev)
				*ent = mailEntry{} // drop the Msg reference
			}
			src.out[d] = box[:0]
		}
	}
}

// minNext returns the earliest pending event time across all shards; ok is
// false when every heap is empty (mailboxes are always empty here — the
// caller exchanges first).
func (e *Engine) minNext() (Time, bool) {
	min, any := maxTime, false
	for _, s := range e.shards {
		if at, ok := s.heap.PeekTime(); ok && (at < min || !any) {
			min, any = at, true
		}
	}
	return min, any
}

// teardown unwinds any still-blocked processor goroutines so they do not
// leak past Run. It runs after every shard worker has quiesced, so the
// sequential transfers below are race-free.
func (e *Engine) teardown() {
	for _, p := range e.procs {
		if !p.done {
			p.killed = true
			p.sh.transfer(p)
		}
	}
}

// Makespan returns the latest processor finish time. It is only meaningful
// after Run returns.
func (e *Engine) Makespan() Time {
	var t Time
	for _, p := range e.procs {
		if p.finishedAt > t {
			t = p.finishedAt
		}
	}
	return t
}
