package sim

import (
	"math/rand"
	"testing"
)

// TestRingFIFO: push/popFront is FIFO across many wrap-arounds and growth.
func TestRingFIFO(t *testing.T) {
	var r msgRing
	msgs := make([]Msg, 1000)
	in, out := 0, 0
	rng := rand.New(rand.NewSource(3))
	for out < len(msgs) {
		if in < len(msgs) && (rng.Intn(2) == 0 || r.Len() == 0) {
			msgs[in].Tag = in
			r.push(&msgs[in])
			in++
		} else {
			m := r.popFront()
			if m.Tag != out {
				t.Fatalf("popped %d, want %d", m.Tag, out)
			}
			out++
		}
	}
	if r.Len() != 0 {
		t.Fatalf("len = %d", r.Len())
	}
}

// TestRingRemoveAt: removing from any position preserves the relative order
// of the rest, matching a reference slice, across wrapped states.
func TestRingRemoveAt(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var r msgRing
	var ref []*Msg
	msgs := make([]Msg, 4096)
	next := 0
	// Pre-rotate so head is mid-buffer and removals cross the wrap point.
	for i := 0; i < 24; i++ {
		r.push(&msgs[next])
		next++
	}
	for i := 0; i < 20; i++ {
		r.popFront()
	}
	ref = append(ref, r.at(0), r.at(1), r.at(2), r.at(3))
	for step := 0; step < 2000; step++ {
		switch {
		case r.Len() == 0 || (next < len(msgs) && rng.Intn(3) > 0):
			msgs[next].Tag = next
			r.push(&msgs[next])
			ref = append(ref, &msgs[next])
			next++
		default:
			i := rng.Intn(r.Len())
			got := r.removeAt(i)
			want := ref[i]
			ref = append(ref[:i], ref[i+1:]...)
			if got != want {
				t.Fatalf("step %d: removeAt(%d) = tag %d, want tag %d", step, i, got.Tag, want.Tag)
			}
		}
		if r.Len() != len(ref) {
			t.Fatalf("step %d: len %d vs ref %d", step, r.Len(), len(ref))
		}
		for i := range ref {
			if r.at(i) != ref[i] {
				t.Fatalf("step %d: at(%d) = tag %d, want tag %d", step, i, r.at(i).Tag, ref[i].Tag)
			}
		}
	}
}

// TestRingReusesBacking: draining and refilling within capacity never
// reallocates the backing array.
func TestRingReusesBacking(t *testing.T) {
	var r msgRing
	msgs := make([]Msg, ringMinCap)
	for i := range msgs {
		r.push(&msgs[i])
	}
	if len(r.buf) != ringMinCap {
		t.Fatalf("cap = %d, want %d", len(r.buf), ringMinCap)
	}
	for range msgs {
		r.popFront()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := range msgs {
			r.push(&msgs[i])
		}
		for range msgs {
			r.popFront()
		}
	})
	if allocs != 0 {
		t.Errorf("drain/refill allocates %v, want 0", allocs)
	}
}
