package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// refPercentile is an independent sort-based reference for the
// linear-interpolation-between-closest-ranks estimator: walk the sorted
// sample and blend the two values straddling the fractional rank.
func refPercentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	p = math.Min(100, math.Max(0, p))
	h := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if hi >= len(sorted) {
		hi = len(sorted) - 1
	}
	return sorted[lo]*(float64(hi)-h) + sorted[hi]*(1-(float64(hi)-h))
	// note: when lo == hi the two weights sum to 1 and the value is exact
}

func TestPercentileAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		for _, p := range []float64{0, 1, 10, 25, 50, 75, 90, 95, 99, 100, rng.Float64() * 100} {
			got := Percentile(xs, p)
			want := refPercentile(xs, p)
			if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Fatalf("trial %d: Percentile(n=%d, p=%g) = %g, reference %g", trial, n, p, got, want)
			}
		}
	}
}

func TestPercentileProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 1000
		}
		min, max := xs[0], xs[0]
		for _, x := range xs {
			min = math.Min(min, x)
			max = math.Max(max, x)
		}
		// Bounds, endpoints, and monotonicity in p.
		if got := Percentile(xs, 0); got != min {
			t.Fatalf("P0 = %g, want min %g", got, min)
		}
		if got := Percentile(xs, 100); got != max {
			t.Fatalf("P100 = %g, want max %g", got, max)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 2.5 {
			v := Percentile(xs, p)
			if v < min || v > max {
				t.Fatalf("Percentile(%g) = %g outside [%g, %g]", p, v, min, max)
			}
			if v < prev {
				t.Fatalf("Percentile not monotone: P%g = %g < %g", p, v, prev)
			}
			prev = v
		}
		// Permutation invariance and input preservation.
		shuffled := append([]float64(nil), xs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		before := append([]float64(nil), shuffled...)
		if a, b := Percentile(xs, 73), Percentile(shuffled, 73); a != b {
			t.Fatalf("permutation changed P73: %g vs %g", a, b)
		}
		for i := range shuffled {
			if shuffled[i] != before[i] {
				t.Fatal("Percentile modified its input")
			}
		}
	}
}

func TestPercentileExactRanks(t *testing.T) {
	// For 0..n-1 the p-th percentile at integer ranks is the rank itself.
	xs := []float64{4, 2, 0, 3, 1}
	for k := 0; k < 5; k++ {
		p := 100 * float64(k) / 4
		if got := Percentile(xs, p); got != float64(k) {
			t.Errorf("Percentile(%g) = %g, want %d", p, got, k)
		}
	}
}

func TestPercentileEdges(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty input: got %g, want 0", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("single element: got %g, want 7", got)
	}
	xs := []float64{1, 2, 3}
	if got := Percentile(xs, -5); got != 1 {
		t.Errorf("p<0 clamps to min: got %g", got)
	}
	if got := Percentile(xs, 150); got != 3 {
		t.Errorf("p>100 clamps to max: got %g", got)
	}
	if P50(xs) != 2 || P95(xs) != Percentile(xs, 95) || P99(xs) != Percentile(xs, 99) {
		t.Error("P50/P95/P99 wrappers disagree with Percentile")
	}
}
