package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMoments(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if StdDev(xs) != 2 {
		t.Fatalf("stddev = %v", StdDev(xs))
	}
	if Min(xs) != 2 || Max(xs) != 9 {
		t.Fatal("min/max")
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty inputs must give 0")
	}
}

func TestStdDevProperties(t *testing.T) {
	// Shifting does not change stddev; scaling scales it.
	f := func(raw []int8, shift int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		shifted := make([]float64, len(raw))
		scaled := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			shifted[i] = float64(v) + float64(shift)
			scaled[i] = 3 * float64(v)
		}
		s := StdDev(xs)
		return math.Abs(StdDev(shifted)-s) < 1e-9 && math.Abs(StdDev(scaled)-3*s) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConstantSeriesHasZeroStdDev(t *testing.T) {
	if s := StdDev([]float64{7, 7, 7, 7}); s != 0 {
		t.Fatalf("stddev of constant = %v", s)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("proc", "time")
	tb.AddRow(0, 1.5)
	tb.AddRow(100, 2.25)
	out := tb.String()
	if !strings.Contains(out, "proc") || !strings.Contains(out, "2.25") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d", len(lines))
	}
	// Columns aligned: every line has the same prefix width for column 1.
	if !strings.HasPrefix(lines[1], "----") {
		t.Fatalf("separator missing: %q", lines[1])
	}
}
