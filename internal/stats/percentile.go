package stats

import "sort"

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks (the same estimator as numpy's default
// and Go's common monitoring libraries): for n samples the p-th percentile
// sits at fractional rank h = p/100 * (n-1) in the sorted order, and values
// between adjacent ranks are interpolated linearly.
//
// The input is not modified (a copy is sorted). Empty input returns 0;
// out-of-range p is clamped.
func Percentile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return xs[0]
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	h := p / 100 * float64(n-1)
	lo := int(h)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// P50 returns the median of xs.
func P50(xs []float64) float64 { return Percentile(xs, 50) }

// P95 returns the 95th percentile of xs.
func P95(xs []float64) float64 { return Percentile(xs, 95) }

// P99 returns the 99th percentile of xs.
func P99(xs []float64) float64 { return Percentile(xs, 99) }
