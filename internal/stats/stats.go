// Package stats provides the summary statistics and text-table rendering
// used by the experiment harness to report the paper's figures.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs — the paper's
// measure of load distribution quality (§5).
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	v := 0.0
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}

// Min returns the minimum of xs (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Table renders rows as a fixed-width text table with the given header.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
