// Command perfbench measures the simulator's host performance and the sweep
// runner's parallel speedup, and writes the numbers to a JSON file (the
// repository's BENCH trajectory: BENCH_PR10.json at the repo root).
//
// Usage:
//
//	perfbench [-out BENCH_PR10.json] [-procs 128] [-units-per-proc 128] \
//	          [-jobs J] [-events 500000] [-partition loaded] \
//	          [-skip-sweep] [-skip-trace] [-skip-shards] [-skip-windows] \
//	          [-skip-scale] [-skip-large] [-skip-wire] [-skip-dist] \
//	          [-scale-procs 4096] [-scale-objects 256] \
//	          [-large-procs 1024] [-large-upp 16] \
//	          [-dist-rounds 5000] [-premad PATH]
//
// It reports eight layers, matching the levels of the performance work:
//
//   - engine: microbenchmarks of the discrete-event core — ns/event,
//     allocs/event and events/sec for the Advance hot path, plus the
//     simulated active-message round trip;
//   - trace: the internal/trace recording hot path (ns/event, allocs/event
//     — must be 0), and the tracing overhead on the paper's four figure
//     scenarios: virtual makespan with tracing on vs off (tracing is
//     observational, so the delta must be 0%) and host wall-clock delta —
//     the repository's version of the paper's "<1% runtime overhead" claim;
//   - sweep: wall-clock time of the paper's 4-figure × 6-system evaluation
//     campaign (24 independent simulations) run serially and with -jobs
//     workers, with a byte-identity cross-check between the two;
//   - shards: the sharded engine axis — one irregular message-passing
//     workload timed at S ∈ {1, 2, 4, 8} event-loop shards (ns/event,
//     speedup vs serial, per-shard event imbalance, barrier rounds,
//     identical-makespan cross-check), plus a large-scale figure scenario
//     (-large-procs, default 1024 processors — the full PREMA stack's
//     status messaging grows superlinearly with the processor count, so
//     the 4096-processor point lives in the engine-level scale section)
//     run sharded with the -partition strategy and cross-checked
//     byte-for-byte against the serial engine;
//   - windows: the coordination-round ledger — one figure scenario run
//     sharded with Config.FixedWindows on (PR 6's one-lookahead-per-round
//     protocol) and off (per-destination lookahead + adaptive batching),
//     reporting the barrier-round reduction and checking byte-identity;
//   - scale: the scale push — an engine-level workload of -scale-procs
//     processors × -scale-objects objects each (default 4096 × 256 ≈ 1M
//     objects) at S ∈ {1, 2, 4, 8}, recording ns/event, speedup, and the
//     max completed scenario size;
//   - wire: the serialization loopback (internal/wire) — the codec's
//     encode+decode cost per frame averaged over every registered payload
//     kind, the active-message round trip on a wire-wrapped machine vs the
//     raw engine, and a figure scenario run with the loopback on and off
//     (the outputs must match byte-for-byte, and the Msg.Size audit must
//     report zero drift);
//   - dist: the distributed backend (internal/dist) — a two-node TCP
//     round-trip probe: rank 0 bounces -dist-rounds messages off rank 1,
//     each crossing the full encode/frame/socket/decode path twice, and
//     the wall-clock mean is the transport's message latency. The nodes
//     are spawned premad processes (resolved next to this executable,
//     then PATH, or via -premad); when no premad binary exists, the probe
//     falls back to two in-process nodes over the same localhost sockets
//     and says so in the mode field.
//
// The host section also records how the auto jobs clamp resolves jobs ×
// shards against GOMAXPROCS for each shard count used here, so the ledger
// shows the parallelism budget the numbers were taken under. Shard speedup
// needs spare CPUs: on a single-CPU host expect S > 1 to lose to the serial
// engine on wall clock while still matching its output exactly.
//
// The default scale (-procs 128 -units-per-proc 128) is the paper's; use a
// smaller scale for a quick look. Expect the full-scale run to take several
// minutes per sweep pass plus several minutes per large-scenario leg. Stray
// positional arguments and invalid flag values exit with status 2, matching
// the other commands.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"time"

	"prema/internal/bench"
	"prema/internal/dist"
	"prema/internal/dmcs"
	"prema/internal/sim"
	"prema/internal/substrate"
	"prema/internal/sweep"
	"prema/internal/trace"
	"prema/internal/wire"
)

// Report is the schema of the emitted JSON.
type Report struct {
	Bench   string      `json:"bench"`
	Host    HostInfo    `json:"host"`
	Eng     EngineInfo  `json:"engine"`
	Trace   *TraceInfo  `json:"trace,omitempty"`
	Sweep   *SweepInfo  `json:"sweep,omitempty"`
	Shards  *ShardInfo  `json:"shards,omitempty"`
	Windows *WindowInfo `json:"windows,omitempty"`
	Scale   *ScaleInfo  `json:"scale,omitempty"`
	Wire    *WireInfo   `json:"wire,omitempty"`
	Dist    *DistInfo   `json:"dist,omitempty"`
}

// DistInfo holds the distributed-backend axis: the two-node TCP round-trip
// probe (bench system "pingpong"). Every round trip is two active messages
// through the full encode/frame/localhost-socket/decode path, so
// am_latency_ns (half the round trip) is the one-way message latency of the
// real transport — the number to compare against the wire loopback's
// am_roundtrip_ns, which pays the codec but no socket.
type DistInfo struct {
	Nodes       int     `json:"nodes"`
	Mode        string  `json:"mode"` // "spawn" (premad processes) or "in-process" (fallback)
	Rounds      int     `json:"rounds"`
	RoundTripNs float64 `json:"roundtrip_ns"`
	AMLatencyNs float64 `json:"am_latency_ns"`
	WireFrames  uint64  `json:"wire_frames"`
	VsSimAMX    float64 `json:"vs_sim_am_x,omitempty"` // roundtrip_ns / the raw engine's am_roundtrip_ns
}

// WireInfo holds the serialization-loopback axis: the binary codec's
// encode+decode microbenchmark averaged over every registered payload kind,
// the active-message round trip on a wire-wrapped machine (vs the raw
// engine's am_roundtrip_ns), and one figure scenario run with the loopback
// on and off — the two outputs must be byte-identical and the Msg.Size
// audit must count zero drifted frames.
type WireInfo struct {
	Kinds            int     `json:"kinds"`
	NsPerFrame       float64 `json:"ns_per_frame"`
	AllocsPerFrame   float64 `json:"allocs_per_frame"`
	AvgFrameBytes    float64 `json:"avg_frame_bytes"`
	AMRoundTripNs    float64 `json:"am_roundtrip_ns"`
	AMOverheadPct    float64 `json:"am_overhead_pct"`
	Figure           int     `json:"figure"`
	System           string  `json:"system"`
	Frames           uint64  `json:"frames"`
	SizeDrift        uint64  `json:"size_drift"`
	IdenticalToPlain bool    `json:"identical_to_plain"`
}

// ClampInfo records how the auto jobs clamp resolves the jobs × shards
// product for one shard count: sweep.JobsFor keeps auto_jobs × shards near
// GOMAXPROCS instead of oversubscribing it.
type ClampInfo struct {
	Shards      int `json:"shards"`
	AutoJobs    int `json:"auto_jobs"`
	JobsXShards int `json:"jobs_x_shards"`
}

// HostInfo records the measurement platform and its parallelism budget.
type HostInfo struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	NumCPU     int         `json:"num_cpu"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	JobsClamp  []ClampInfo `json:"jobs_clamp"`
}

// EngineInfo holds the hot-path microbenchmark results. Alloc counts are
// steady-state (measured after a warm-up that fills the event free list),
// so they can be fractional and should be ~0 after the PR2 optimizations.
//
// ns_per_event is the uncontended Advance loop, which since PR 7 rides the
// in-window fast path (no heap, no goroutine handoff). ns_per_event_queued
// forces the full heap + park/transfer path by interleaving two processors
// whose wakes always tie, so it tracks the cost the fast path skips — and
// guards that the queued path itself has not regressed.
type EngineInfo struct {
	NsPerEvent          float64 `json:"ns_per_event"`
	AllocsPerEvent      float64 `json:"allocs_per_event"`
	BytesPerEvent       float64 `json:"bytes_per_event"`
	EventsPerSec        float64 `json:"events_per_sec"`
	NsPerEventQueued    float64 `json:"ns_per_event_queued"`
	AllocsPerEventQueue float64 `json:"allocs_per_event_queued"`
	AMRoundTripNs       float64 `json:"am_roundtrip_ns"`
	AMRoundTripAllocs   float64 `json:"am_roundtrip_allocs"`
}

// TraceScenario is one figure scenario's tracing-on vs tracing-off
// comparison. Virtual overhead must be 0% (tracing charges no substrate
// time); wall overhead is the host-side cost of recording.
type TraceScenario struct {
	Figure          int     `json:"figure"`
	MakespanOffS    float64 `json:"makespan_off_s"`
	MakespanOnS     float64 `json:"makespan_on_s"`
	OverheadPct     float64 `json:"overhead_pct"`
	WallOffS        float64 `json:"wall_off_s"`
	WallOnS         float64 `json:"wall_on_s"`
	WallOverheadPct float64 `json:"wall_overhead_pct"`
	Events          uint64  `json:"events"`
}

// TraceInfo holds the tracing hot-path microbenchmark and the per-scenario
// overhead sweep (system: prema-implicit, sim backend).
type TraceInfo struct {
	NsPerEvent     float64         `json:"ns_per_event"`
	AllocsPerEvent float64         `json:"allocs_per_event"`
	System         string          `json:"system"`
	Procs          int             `json:"procs"`
	UnitsPerProc   int             `json:"units_per_proc"`
	Scenarios      []TraceScenario `json:"scenarios"`
	MaxOverheadPct float64         `json:"max_overhead_pct"`
}

// ShardPoint is one shard count's timing of a scaling workload, with the
// shard-level telemetry the partition quality shows up in: per-shard event
// counts, their max/mean imbalance ratio, and the number of window
// coordination rounds (barriers) the run took.
type ShardPoint struct {
	Shards         int      `json:"shards"`
	Partition      string   `json:"partition,omitempty"`
	WallS          float64  `json:"wall_s"`
	Events         uint64   `json:"events"`
	ShardEvents    []uint64 `json:"shard_events,omitempty"`
	ImbalanceRatio float64  `json:"imbalance_ratio,omitempty"`
	BarrierRounds  uint64   `json:"barrier_rounds,omitempty"`
	NsPerEvent     float64  `json:"ns_per_event"`
	EventsPerSec   float64  `json:"events_per_sec"`
	Speedup        float64  `json:"speedup_vs_serial"`
	MakespanS      float64  `json:"makespan_s"`
}

// LargeInfo is the large-scale scenario: a paper figure workload at >= 4096
// processors on the sharded engine, cross-checked against the serial one.
type LargeInfo struct {
	Procs             int      `json:"procs"`
	UnitsPerProc      int      `json:"units_per_proc"`
	System            string   `json:"system"`
	Shards            int      `json:"shards"`
	Partition         string   `json:"partition"`
	WallS             float64  `json:"wall_s"`
	SerialWallS       float64  `json:"serial_wall_s"`
	MakespanS         float64  `json:"makespan_s"`
	Events            uint64   `json:"events"`
	ShardEvents       []uint64 `json:"shard_events,omitempty"`
	ImbalanceRatio    float64  `json:"imbalance_ratio,omitempty"`
	BarrierRounds     uint64   `json:"barrier_rounds,omitempty"`
	IdenticalToSerial bool     `json:"identical_to_serial"`
}

// ShardInfo holds the sharded-engine axis: the mesh workload timed per shard
// count and the large-scale scenario.
type ShardInfo struct {
	MeshProcs   int          `json:"mesh_procs"`
	MeshRounds  int          `json:"mesh_rounds"`
	Points      []ShardPoint `json:"points"`
	SpeedupAtS4 float64      `json:"speedup_at_s4"`
	SpeedupAtS8 float64      `json:"speedup_at_s8"`
	Identical   bool         `json:"identical_across_shards"`
	Large       *LargeInfo   `json:"large,omitempty"`
}

// WindowInfo compares PR 6's fixed one-lookahead windows against the
// adaptive per-destination protocol on one figure scenario: same output
// (checked), fewer coordination rounds (the point). The scenario runs on
// the cluster-of-SMPs network variant (the paper's platform shape): zones
// of ZoneSize processors with a cheap intra-zone latency, and the blocked
// partition aligning shards with zones — so every cross-shard link costs
// the slow inter-zone latency and the lookahead matrix can open windows
// that wide, while the fixed protocol stays clamped to the global minimum.
type WindowInfo struct {
	Figure         int     `json:"figure"`
	System         string  `json:"system"`
	Procs          int     `json:"procs"`
	UnitsPerProc   int     `json:"units_per_proc"`
	Shards         int     `json:"shards"`
	Partition      string  `json:"partition"`
	ZoneSize       int     `json:"zone_size"`
	ZoneLatencyUs  float64 `json:"zone_latency_us"`
	InterLatencyUs float64 `json:"inter_latency_us"`
	FixedRounds    uint64  `json:"fixed_rounds"`
	AdaptiveRounds uint64  `json:"adaptive_rounds"`
	RoundsRatio    float64 `json:"rounds_ratio"`
	FixedWallS     float64 `json:"fixed_wall_s"`
	AdaptiveWallS  float64 `json:"adaptive_wall_s"`
	Identical      bool    `json:"identical"`
}

// ScaleInfo is the scale push: an engine-level workload of Procs processors
// each stepping ObjectsPerProc objects (~1M objects total at the defaults),
// timed across shard counts.
type ScaleInfo struct {
	Procs          int          `json:"procs"`
	ObjectsPerProc int          `json:"objects_per_proc"`
	Objects        int          `json:"objects"`
	Points         []ShardPoint `json:"points"`
	SpeedupAtS2    float64      `json:"speedup_at_s2"`
	SpeedupAtS4    float64      `json:"speedup_at_s4"`
	SpeedupAtS8    float64      `json:"speedup_at_s8"`
	Identical      bool         `json:"identical_across_shards"`
	MaxObjects     int          `json:"max_scenario_objects"`
}

// SweepInfo holds the serial vs parallel campaign timing.
type SweepInfo struct {
	Figures          []int    `json:"figures"`
	Systems          []string `json:"systems"`
	Simulations      int      `json:"simulations"`
	Procs            int      `json:"procs"`
	UnitsPerProc     int      `json:"units_per_proc"`
	Jobs             int      `json:"jobs"`
	SerialWallS      float64  `json:"serial_wall_s"`
	ParallelWallS    float64  `json:"parallel_wall_s"`
	Speedup          float64  `json:"speedup"`
	OutputsIdentical bool     `json:"outputs_identical"`
}

// shardCounts is the shard axis every scaling section sweeps.
var shardCounts = []int{1, 2, 4, 8}

func main() {
	out := flag.String("out", "BENCH_PR10.json", "output JSON path")
	procs := flag.Int("procs", 128, "simulated processors for the sweep, trace, and windows timing")
	upp := flag.Int("units-per-proc", 128, "work units per processor for the sweep, trace, and windows timing")
	jobs := flag.Int("jobs", sweep.DefaultJobs(), "parallel sweep worker count")
	events := flag.Int("events", 500_000, "microbenchmark event count")
	partition := flag.String("partition", bench.PartitionLoaded, "partition strategy for the large scenario: roundrobin, blocked, or loaded")
	skipSweep := flag.Bool("skip-sweep", false, "skip the serial-vs-parallel sweep timing")
	skipTrace := flag.Bool("skip-trace", false, "skip the tracing-overhead scenario sweep")
	skipShards := flag.Bool("skip-shards", false, "skip the sharded-engine axis")
	skipWindows := flag.Bool("skip-windows", false, "skip the fixed-vs-adaptive window comparison")
	skipScale := flag.Bool("skip-scale", false, "skip the scale-push axis")
	skipLarge := flag.Bool("skip-large", false, "skip the large-scale scenario of the shards axis")
	skipWire := flag.Bool("skip-wire", false, "skip the serialization-loopback axis")
	skipDist := flag.Bool("skip-dist", false, "skip the distributed-backend round-trip probe")
	distRounds := flag.Int("dist-rounds", 5000, "distributed probe: TCP round trips to time")
	premadPath := flag.String("premad", "", "distributed probe: premad binary to spawn (default: next to this executable, then PATH; falls back to in-process nodes)")
	scaleProcs := flag.Int("scale-procs", 4096, "scale push: simulated processors")
	scaleObjects := flag.Int("scale-objects", 256, "scale push: objects per processor")
	largeProcs := flag.Int("large-procs", 1024, "large-scale scenario: simulated processors")
	largeUPP := flag.Int("large-upp", 16, "large-scale scenario: work units per processor")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "perfbench: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "perfbench: -out must not be empty")
		os.Exit(2)
	}
	if *procs < 1 || *upp < 1 || *jobs < 1 || *events < 1 {
		fmt.Fprintln(os.Stderr, "perfbench: -procs, -units-per-proc, -jobs and -events must be positive")
		os.Exit(2)
	}
	if *largeProcs < 1 || *largeUPP < 1 || *scaleProcs < 1 || *scaleObjects < 1 {
		fmt.Fprintln(os.Stderr, "perfbench: -large-procs, -large-upp, -scale-procs and -scale-objects must be positive")
		os.Exit(2)
	}
	if !bench.ValidPartition(*partition) {
		fmt.Fprintf(os.Stderr, "perfbench: -partition must be one of %v (got %q)\n", bench.PartitionStrategies, *partition)
		os.Exit(2)
	}
	if *distRounds < 1 {
		fmt.Fprintln(os.Stderr, "perfbench: -dist-rounds must be positive")
		os.Exit(2)
	}

	rep := Report{
		Bench: "PR10",
		Host: HostInfo{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
	}
	for _, s := range shardCounts {
		j := sweep.JobsFor(s)
		rep.Host.JobsClamp = append(rep.Host.JobsClamp, ClampInfo{
			Shards: s, AutoJobs: j, JobsXShards: j * s,
		})
	}

	fmt.Printf("perfbench: engine microbenchmarks (%d events)...\n", *events)
	rep.Eng = measureEngine(*events)
	fmt.Printf("  advance:  %8.1f ns/event  %.4f allocs/event  %.1f B/event  %.2fM events/s\n",
		rep.Eng.NsPerEvent, rep.Eng.AllocsPerEvent, rep.Eng.BytesPerEvent, rep.Eng.EventsPerSec/1e6)
	fmt.Printf("  queued:   %8.1f ns/event  %.4f allocs/event\n",
		rep.Eng.NsPerEventQueued, rep.Eng.AllocsPerEventQueue)
	fmt.Printf("  AM trip:  %8.1f ns/msg    %.4f allocs/msg\n", rep.Eng.AMRoundTripNs, rep.Eng.AMRoundTripAllocs)

	if !*skipTrace {
		fmt.Printf("perfbench: trace hot path (%d events) + overhead scenarios...\n", *events)
		ti, err := measureTrace(*events, *procs, *upp, *jobs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		rep.Trace = ti
		fmt.Printf("  record:   %8.1f ns/event  %.4f allocs/event\n", ti.NsPerEvent, ti.AllocsPerEvent)
		for _, s := range ti.Scenarios {
			fmt.Printf("  fig %d:    makespan %-9.1fs -> %-9.1fs (%+.4f%% virtual)  wall %.2fs -> %.2fs (%+.1f%%)  %d events\n",
				s.Figure, s.MakespanOffS, s.MakespanOnS, s.OverheadPct, s.WallOffS, s.WallOnS, s.WallOverheadPct, s.Events)
		}
		fmt.Printf("  max virtual makespan overhead with tracing on: %.4f%%\n", ti.MaxOverheadPct)
	}

	if !*skipSweep {
		info, err := measureSweep(*procs, *upp, *jobs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		rep.Sweep = info
		fmt.Printf("  sweep:    serial %.1fs  parallel(jobs=%d) %.1fs  speedup %.2fx  identical=%v\n",
			info.SerialWallS, info.Jobs, info.ParallelWallS, info.Speedup, info.OutputsIdentical)
	}

	if !*skipShards {
		si, err := measureShards(*events, *largeProcs, *largeUPP, *partition, *skipLarge)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		rep.Shards = si
		for _, p := range si.Points {
			fmt.Printf("  shards=%d: %8.1f ns/event  %.2fM events/s  wall %.2fs  speedup %.2fx  imbalance %.2f  rounds %d\n",
				p.Shards, p.NsPerEvent, p.EventsPerSec/1e6, p.WallS, p.Speedup, p.ImbalanceRatio, p.BarrierRounds)
		}
		fmt.Printf("  identical across shard counts: %v\n", si.Identical)
		if si.Large != nil {
			fmt.Printf("  large:    %d procs x %d units/proc (%s, shards=%d, partition=%s)  wall %.1fs (serial %.1fs)  makespan %.1fs  imbalance %.2f  rounds %d  identical=%v\n",
				si.Large.Procs, si.Large.UnitsPerProc, si.Large.System, si.Large.Shards, si.Large.Partition,
				si.Large.WallS, si.Large.SerialWallS, si.Large.MakespanS,
				si.Large.ImbalanceRatio, si.Large.BarrierRounds, si.Large.IdenticalToSerial)
		}
	}

	if !*skipWindows {
		wi, err := measureWindows(*procs, *upp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		rep.Windows = wi
		fmt.Printf("  windows:  fig %d (%d procs, shards=%d)  fixed %d rounds -> adaptive %d rounds (%.1fx fewer)  identical=%v\n",
			wi.Figure, wi.Procs, wi.Shards, wi.FixedRounds, wi.AdaptiveRounds, wi.RoundsRatio, wi.Identical)
	}

	if !*skipScale {
		sc, err := measureScale(*scaleProcs, *scaleObjects)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		rep.Scale = sc
		for _, p := range sc.Points {
			fmt.Printf("  scale s=%d: %8.1f ns/event  %.2fM events/s  wall %.2fs  speedup %.2fx  imbalance %.2f  rounds %d\n",
				p.Shards, p.NsPerEvent, p.EventsPerSec/1e6, p.WallS, p.Speedup, p.ImbalanceRatio, p.BarrierRounds)
		}
		fmt.Printf("  scale:    %d procs x %d objects/proc = %d objects  identical=%v\n",
			sc.Procs, sc.ObjectsPerProc, sc.Objects, sc.Identical)
	}

	if !*skipWire {
		wi, err := measureWire(*events, *procs, *upp, rep.Eng.AMRoundTripNs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		rep.Wire = wi
		fmt.Printf("  codec:    %8.1f ns/frame  %.4f allocs/frame  %.1f B/frame avg over %d kinds\n",
			wi.NsPerFrame, wi.AllocsPerFrame, wi.AvgFrameBytes, wi.Kinds)
		fmt.Printf("  AM trip:  %8.1f ns/msg wire-wrapped (%+.1f%% vs raw engine)\n",
			wi.AMRoundTripNs, wi.AMOverheadPct)
		fmt.Printf("  fig %d:    %s  frames=%d  size_drift=%d  identical=%v\n",
			wi.Figure, wi.System, wi.Frames, wi.SizeDrift, wi.IdenticalToPlain)
	}

	if !*skipDist {
		fmt.Printf("perfbench: distributed transport probe (%d TCP round trips, 2 nodes)...\n", *distRounds)
		di, err := measureDist(*distRounds, *premadPath, rep.Eng.AMRoundTripNs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		rep.Dist = di
		fmt.Printf("  dist:     %8.1f ns/roundtrip  %8.1f ns one-way  (%s, %d frames, %.0fx the raw engine AM trip)\n",
			di.RoundTripNs, di.AMLatencyNs, di.Mode, di.WireFrames, di.VsSimAMX)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
	fmt.Printf("perfbench: wrote %s\n", *out)
}

// probe is one steady-state measurement window: a warm-up phase (filling the
// event free list and runtime caches), then n operations bracketed by
// ReadMemStats and a wall clock.
type probe struct {
	n      int
	dur    time.Duration
	allocs uint64
	bytes  uint64
}

func (pr *probe) begin() (runtime.MemStats, time.Time) {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m, time.Now()
}

func (pr *probe) end(m0 runtime.MemStats, t0 time.Time) {
	pr.dur = time.Since(t0)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	pr.allocs = m1.Mallocs - m0.Mallocs
	pr.bytes = m1.TotalAlloc - m0.TotalAlloc
}

// measureEngine runs the two hot-path microbenchmarks: the Advance event
// loop (one typed wake event per op) and the dmcs active-message round trip
// (two sends, two deliveries, two polls per op).
func measureEngine(events int) EngineInfo {
	const warm = 10_000
	adv := probe{n: events}
	{
		e := sim.NewEngine(sim.Config{Seed: 1})
		e.Spawn("p", func(p *sim.Proc) {
			for i := 0; i < warm; i++ {
				p.Advance(sim.Microsecond, sim.CatCompute)
			}
			m0, t0 := adv.begin()
			for i := 0; i < adv.n; i++ {
				p.Advance(sim.Microsecond, sim.CatCompute)
			}
			adv.end(m0, t0)
		})
		if err := e.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "perfbench: advance probe:", err)
			os.Exit(1)
		}
	}
	queued := probe{n: events / 2}
	{
		e := sim.NewEngine(sim.Config{Seed: 1})
		// Two processors advancing by the same quantum: every wake ties
		// with the peer's pending wake, and ties always take the slow
		// path, so this times the heap + park/transfer round trip.
		rounds := warm + queued.n
		e.Spawn("a", func(p *sim.Proc) {
			for i := 0; i < rounds; i++ {
				p.Advance(sim.Microsecond, sim.CatCompute)
			}
		})
		e.Spawn("b", func(p *sim.Proc) {
			for i := 0; i < warm; i++ {
				p.Advance(sim.Microsecond, sim.CatCompute)
			}
			m0, t0 := queued.begin()
			for i := 0; i < queued.n; i++ {
				p.Advance(sim.Microsecond, sim.CatCompute)
			}
			queued.end(m0, t0)
		})
		if err := e.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "perfbench: queued probe:", err)
			os.Exit(1)
		}
	}
	am := probe{n: events / 4}
	{
		e := sim.NewEngine(sim.Config{Seed: 1})
		rounds := warm + am.n
		e.Spawn("pong", func(p *sim.Proc) {
			c := dmcs.New(p)
			var h dmcs.HandlerID
			h = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
				if data.(int) > 0 {
					c.Send(src, h, data.(int)-1, 8)
				}
			})
			for i := 0; i < rounds; i++ {
				c.WaitPoll(sim.CatIdle)
			}
		})
		e.Spawn("ping", func(p *sim.Proc) {
			c := dmcs.New(p)
			var h dmcs.HandlerID
			h = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
				if data.(int) > 0 {
					c.Send(src, h, data.(int)-1, 8)
				}
			})
			c.Send(0, h, 2*rounds, 8)
			for i := 0; i < warm; i++ {
				c.WaitPoll(sim.CatIdle)
			}
			m0, t0 := am.begin()
			for i := 0; i < am.n; i++ {
				c.WaitPoll(sim.CatIdle)
			}
			am.end(m0, t0)
		})
		if err := e.Run(); err != nil && err != sim.ErrDeadlock {
			fmt.Fprintln(os.Stderr, "perfbench: AM probe:", err) // tail messages may strand one poller
		}
	}
	info := EngineInfo{
		NsPerEvent:          float64(adv.dur.Nanoseconds()) / float64(adv.n),
		AllocsPerEvent:      float64(adv.allocs) / float64(adv.n),
		BytesPerEvent:       float64(adv.bytes) / float64(adv.n),
		NsPerEventQueued:    float64(queued.dur.Nanoseconds()) / float64(queued.n),
		AllocsPerEventQueue: float64(queued.allocs) / float64(queued.n),
		AMRoundTripNs:       float64(am.dur.Nanoseconds()) / float64(am.n),
		AMRoundTripAllocs:   float64(am.allocs) / float64(am.n),
	}
	if info.NsPerEvent > 0 {
		info.EventsPerSec = 1e9 / info.NsPerEvent
	}
	return info
}

// measureTrace benchmarks the trace recording hot path and measures the
// tracing overhead on the four paper figure scenarios (prema-implicit, sim
// backend): virtual makespan with tracing on vs off — the repository's
// version of the paper's "<1%" overhead claim — plus the host wall-clock
// delta, which is what recording actually costs the machine running the
// simulation.
func measureTrace(events, procs, upp, jobs int) (*TraceInfo, error) {
	const warm = 10_000
	const system = "prema-implicit"
	r := trace.NewRecorder(0, trace.DefaultRingCap)
	for i := 0; i < warm; i++ {
		r.Instant(trace.EvSend, sim.Time(i), 1, 2, 3)
	}
	rec := probe{n: events}
	m0, t0 := rec.begin()
	for i := 0; i < rec.n; i++ {
		r.Instant(trace.EvSend, sim.Time(i), 1, 2, 3)
	}
	rec.end(m0, t0)

	ti := &TraceInfo{
		NsPerEvent:     float64(rec.dur.Nanoseconds()) / float64(rec.n),
		AllocsPerEvent: float64(rec.allocs) / float64(rec.n),
		System:         system,
		Procs:          procs,
		UnitsPerProc:   upp,
	}
	type outcome struct {
		scen TraceScenario
		off  string // Report(0) fingerprints, compared below
		on   string
	}
	specs := bench.Figures()
	outs, err := sweep.Map(jobs, len(specs), func(i int) (outcome, error) {
		w := bench.PaperWorkload(specs[i], procs, upp)
		t0 := time.Now()
		off, err := bench.RunSystem(system, w)
		if err != nil {
			return outcome{}, err
		}
		wallOff := time.Since(t0).Seconds()
		col := trace.NewCollector(0)
		t1 := time.Now()
		on, err := bench.RunSystemTraced(system, w, col)
		if err != nil {
			return outcome{}, err
		}
		wallOn := time.Since(t1).Seconds()
		s := TraceScenario{
			Figure:       specs[i].ID,
			MakespanOffS: off.Makespan.Seconds(),
			MakespanOnS:  on.Makespan.Seconds(),
			WallOffS:     wallOff,
			WallOnS:      wallOn,
			Events:       col.Total(),
		}
		if s.MakespanOffS > 0 {
			s.OverheadPct = 100 * (s.MakespanOnS - s.MakespanOffS) / s.MakespanOffS
		}
		if wallOff > 0 {
			s.WallOverheadPct = 100 * (wallOn - wallOff) / wallOff
		}
		return outcome{scen: s, off: off.Summary(), on: on.Summary()}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, o := range outs {
		if o.off != o.on {
			return nil, fmt.Errorf("traced run diverged from untraced: %q vs %q", o.off, o.on)
		}
		if o.scen.OverheadPct > ti.MaxOverheadPct {
			ti.MaxOverheadPct = o.scen.OverheadPct
		}
		ti.Scenarios = append(ti.Scenarios, o.scen)
	}
	return ti, nil
}

// measureSweep times the full evaluation campaign serially and in parallel
// and cross-checks that both produce identical reports.
func measureSweep(procs, upp, jobs int) (*SweepInfo, error) {
	specs := bench.Figures()
	info := &SweepInfo{
		Systems:      bench.SystemNames,
		Simulations:  len(specs) * len(bench.SystemNames),
		Procs:        procs,
		UnitsPerProc: upp,
		Jobs:         jobs,
	}
	for _, s := range specs {
		info.Figures = append(info.Figures, s.ID)
	}

	fmt.Printf("perfbench: serial sweep (%d sims at %d procs x %d units/proc)...\n",
		info.Simulations, procs, upp)
	t0 := time.Now()
	serial, err := bench.RunFigures(specs, procs, upp, 1, 1, "", false)
	if err != nil {
		return nil, err
	}
	info.SerialWallS = time.Since(t0).Seconds()
	fmt.Printf("  serial: %.1fs\n", info.SerialWallS)

	fmt.Printf("perfbench: parallel sweep (jobs=%d)...\n", jobs)
	t1 := time.Now()
	parallel, err := bench.RunFigures(specs, procs, upp, jobs, 1, "", false)
	if err != nil {
		return nil, err
	}
	info.ParallelWallS = time.Since(t1).Seconds()
	if info.ParallelWallS > 0 {
		info.Speedup = info.SerialWallS / info.ParallelWallS
	}

	info.OutputsIdentical = true
	for i := range serial {
		if serial[i].Report(0) != parallel[i].Report(0) {
			info.OutputsIdentical = false
		}
	}
	return info, nil
}

// point packages one engine run's timing and telemetry into a ShardPoint.
func point(e *sim.Engine, shards int, wall time.Duration) ShardPoint {
	p := ShardPoint{
		Shards:     shards,
		WallS:      wall.Seconds(),
		Events:     e.EventsFired(),
		MakespanS:  e.Makespan().Seconds(),
		NsPerEvent: float64(wall.Nanoseconds()) / float64(e.EventsFired()),
	}
	if p.NsPerEvent > 0 {
		p.EventsPerSec = 1e9 / p.NsPerEvent
	}
	if shards > 1 {
		p.ShardEvents = e.ShardEventsFired()
		p.ImbalanceRatio = e.ImbalanceRatio()
		p.BarrierRounds = e.BarrierRounds()
	}
	return p
}

// meshRun executes one irregular message-passing workload — every processor
// alternates randomized compute quanta with sends to random peers — on the
// given shard count, returning the engine (for telemetry) and wall time.
// The workload is deterministic (all randomness comes from the
// per-processor streams), so the makespan must be identical for every shard
// count; the caller cross-checks that.
func meshRun(procs, rounds, shards int) (*sim.Engine, time.Duration, error) {
	e := sim.NewEngine(sim.Config{Seed: 7, Shards: shards})
	for i := 0; i < procs; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			rng := p.Rand()
			n := p.Engine().NumProcs()
			for r := 0; r < rounds; r++ {
				p.Advance(sim.Time(1+rng.Intn(20))*sim.Microsecond, sim.CatCompute)
				dst := rng.Intn(n)
				if dst == p.ID() {
					dst = (dst + 1) % n
				}
				p.Send(&sim.Msg{Dst: dst, Tag: 1, Size: 64}, sim.CatMessaging)
				if p.WaitMsgFor(100*sim.Microsecond, sim.CatIdle) {
					p.TryRecv(sim.CatMessaging)
				}
			}
			for p.WaitMsgFor(200*sim.Microsecond, sim.CatIdle) {
				p.TryRecv(sim.CatMessaging)
			}
		})
	}
	t0 := time.Now()
	if err := e.Run(); err != nil {
		return nil, 0, err
	}
	return e, time.Since(t0), nil
}

// measureShards times the mesh workload at S in {1, 2, 4, 8} shards and runs
// the large-scale figure scenario sharded and serial, cross-checking both
// byte-identity claims.
func measureShards(events, largeProcs, largeUPP int, partition string, skipLarge bool) (*ShardInfo, error) {
	const meshProcs = 256
	rounds := events / (meshProcs * 5) // ~5 events per (advance, send, recv) round
	if rounds < 10 {
		rounds = 10
	}
	si := &ShardInfo{MeshProcs: meshProcs, MeshRounds: rounds, Identical: true}
	fmt.Printf("perfbench: sharded engine axis (mesh: %d procs x %d rounds)...\n", meshProcs, rounds)
	var serialWall, serialMakespan float64
	for _, s := range shardCounts {
		e, wall, err := meshRun(meshProcs, rounds, s)
		if err != nil {
			return nil, fmt.Errorf("mesh shards=%d: %w", s, err)
		}
		p := point(e, s, wall)
		if s == 1 {
			serialWall, serialMakespan = p.WallS, p.MakespanS
			p.Speedup = 1
		} else {
			if p.WallS > 0 {
				p.Speedup = serialWall / p.WallS
			}
			if p.MakespanS != serialMakespan {
				si.Identical = false
			}
			if s == 4 {
				si.SpeedupAtS4 = p.Speedup
			}
			if s == 8 {
				si.SpeedupAtS8 = p.Speedup
			}
		}
		si.Points = append(si.Points, p)
	}
	if skipLarge {
		return si, nil
	}

	const largeShards = 4
	const system = "prema-implicit"
	spec := bench.Figures()[0]
	w := bench.PaperWorkload(spec, largeProcs, largeUPP)
	fmt.Printf("perfbench: large scenario (%d procs x %d units/proc, %s, shards=%d, partition=%s, vs serial)...\n",
		largeProcs, largeUPP, system, largeShards, partition)
	w.Shards = largeShards
	w.Partition = partition
	t0 := time.Now()
	sharded, err := bench.RunSystem(system, w)
	if err != nil {
		return nil, fmt.Errorf("large sharded: %w", err)
	}
	shardedWall := time.Since(t0).Seconds()
	w.Shards = 1
	w.Partition = ""
	t1 := time.Now()
	serial, err := bench.RunSystem(system, w)
	if err != nil {
		return nil, fmt.Errorf("large serial: %w", err)
	}
	si.Large = &LargeInfo{
		Procs:          largeProcs,
		UnitsPerProc:   largeUPP,
		System:         system,
		Shards:         largeShards,
		Partition:      partition,
		WallS:          shardedWall,
		SerialWallS:    time.Since(t1).Seconds(),
		MakespanS:      sharded.Makespan.Seconds(),
		Events:         sharded.Events,
		ShardEvents:    sharded.ShardEvents,
		ImbalanceRatio: sharded.ImbalanceRatio(),
		BarrierRounds:  sharded.BarrierRounds,
		IdenticalToSerial: serial.Summary() == sharded.Summary() &&
			serial.Breakdown(1) == sharded.Breakdown(1),
	}
	return si, nil
}

// measureWindows runs one figure scenario sharded twice — fixed windows vs
// the adaptive protocol — and reports the barrier-round reduction. The two
// runs must produce identical reports; only the round count (and wall
// clock) may differ. The network is the two-level cluster-of-SMPs variant
// with one zone per shard (blocked partition), the configuration the
// per-destination lookahead matrix exists for.
func measureWindows(procs, upp int) (*WindowInfo, error) {
	const system = "prema-implicit"
	const shards = 4
	const zoneLat = 5 * sim.Microsecond
	spec := bench.Figures()[0]
	fmt.Printf("perfbench: window protocol (fig %d, %d procs x %d units/proc, %s, shards=%d, zoned net, fixed vs adaptive)...\n",
		spec.ID, procs, upp, system, shards)
	w := bench.PaperWorkload(spec, procs, upp)
	net := sim.DefaultNetwork()
	net.ZoneSize = (procs + shards - 1) / shards
	net.ZoneLatency = zoneLat
	w.Network = net
	w.Shards = shards
	w.Partition = bench.PartitionBlocked

	w.FixedWindows = true
	t0 := time.Now()
	fixed, err := bench.RunSystem(system, w)
	if err != nil {
		return nil, fmt.Errorf("windows fixed: %w", err)
	}
	fixedWall := time.Since(t0).Seconds()

	w.FixedWindows = false
	t1 := time.Now()
	adaptive, err := bench.RunSystem(system, w)
	if err != nil {
		return nil, fmt.Errorf("windows adaptive: %w", err)
	}
	wi := &WindowInfo{
		Figure:         spec.ID,
		System:         system,
		Procs:          procs,
		UnitsPerProc:   upp,
		Shards:         shards,
		Partition:      bench.PartitionBlocked,
		ZoneSize:       net.ZoneSize,
		ZoneLatencyUs:  float64(net.ZoneLatency) / float64(sim.Microsecond),
		InterLatencyUs: float64(net.Latency) / float64(sim.Microsecond),
		FixedRounds:    fixed.BarrierRounds,
		AdaptiveRounds: adaptive.BarrierRounds,
		FixedWallS:     fixedWall,
		AdaptiveWallS:  time.Since(t1).Seconds(),
		Identical: fixed.Summary() == adaptive.Summary() &&
			fixed.Breakdown(1) == adaptive.Breakdown(1),
	}
	if wi.AdaptiveRounds > 0 {
		wi.RoundsRatio = float64(wi.FixedRounds) / float64(wi.AdaptiveRounds)
	}
	return wi, nil
}

// scaleRun executes the scale-push workload: procs processors each stepping
// `objects` objects (one compute quantum per object, one message per 16
// objects — an AMR-flavored compute/communicate mix) on the given shard
// count.
func scaleRun(procs, objects, shards int) (*sim.Engine, time.Duration, error) {
	e := sim.NewEngine(sim.Config{Seed: 11, Shards: shards})
	for i := 0; i < procs; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			rng := p.Rand()
			n := p.Engine().NumProcs()
			for o := 0; o < objects; o++ {
				p.Advance(sim.Time(1+rng.Intn(4))*sim.Microsecond, sim.CatCompute)
				if o&15 == 0 {
					dst := rng.Intn(n)
					if dst == p.ID() {
						dst = (dst + 1) % n
					}
					p.Send(&sim.Msg{Dst: dst, Tag: 1, Size: 32}, sim.CatMessaging)
				}
				if o&15 == 8 && p.TryRecv(sim.CatMessaging) == nil {
					// Nothing pending; keep stepping objects.
					continue
				}
			}
			for p.WaitMsgFor(200*sim.Microsecond, sim.CatIdle) {
				p.TryRecv(sim.CatMessaging)
			}
		})
	}
	t0 := time.Now()
	if err := e.Run(); err != nil {
		return nil, 0, err
	}
	return e, time.Since(t0), nil
}

// measureWire benchmarks the serialization loopback at three levels: the
// raw codec (one encode + decode per registered payload kind, frames sized
// exactly to their encoding so the audit sees zero drift), the dmcs
// active-message round trip on a wire-wrapped simulator machine, and a full
// figure scenario with the loopback on vs off — the repository's "the codec
// charges nothing" claim, checked byte-for-byte.
func measureWire(events, procs, upp int, rawAMNs float64) (*WireInfo, error) {
	const warm = 10_000
	samples := wire.Samples()
	msgs := make([]*substrate.Msg, len(samples))
	var totalBytes int
	for i, s := range samples {
		m := &substrate.Msg{Src: i % 7, Dst: (i + 1) % 7, Kind: i, Tag: i % 3,
			Data: s, Seq: uint64(i), SentAt: substrate.Time(i)}
		_, plen := wire.EncodeMsg(m)
		m.Size = plen // exact fit: no padding, no drift
		frame, _ := wire.EncodeMsg(m)
		totalBytes += len(frame)
		msgs[i] = m
	}
	var w wire.Writer
	roundTrips := func(n int) error {
		for i := 0; i < n; i++ {
			m := msgs[i%len(msgs)]
			w.Reset()
			wire.AppendMsg(&w, m)
			if _, err := wire.DecodeMsg(w.Buf()); err != nil {
				return fmt.Errorf("wire codec probe (%T): %w", m.Data, err)
			}
		}
		return nil
	}
	fmt.Printf("perfbench: wire loopback axis (%d kinds, %d frames)...\n", len(samples), events)
	codec := probe{n: events}
	if err := roundTrips(warm); err != nil {
		return nil, err
	}
	m0, t0 := codec.begin()
	if err := roundTrips(codec.n); err != nil {
		return nil, err
	}
	codec.end(m0, t0)
	wi := &WireInfo{
		Kinds:          len(samples),
		NsPerFrame:     float64(codec.dur.Nanoseconds()) / float64(codec.n),
		AllocsPerFrame: float64(codec.allocs) / float64(codec.n),
		AvgFrameBytes:  float64(totalBytes) / float64(len(samples)),
	}

	// The engine AM probe, re-run with every message crossing the codec.
	am := probe{n: events / 4}
	{
		m := wire.Wrap(sim.NewMachine(sim.Config{Seed: 1}))
		rounds := warm + am.n
		body := func(measure bool) func(substrate.Endpoint) {
			return func(ep substrate.Endpoint) {
				c := dmcs.New(ep)
				var h dmcs.HandlerID
				h = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
					if data.(int) > 0 {
						c.Send(src, h, data.(int)-1, 8)
					}
				})
				if !measure {
					for i := 0; i < rounds; i++ {
						c.WaitPoll(substrate.CatIdle)
					}
					return
				}
				c.Send(0, h, 2*rounds, 8)
				for i := 0; i < warm; i++ {
					c.WaitPoll(substrate.CatIdle)
				}
				m0, t0 := am.begin()
				for i := 0; i < am.n; i++ {
					c.WaitPoll(substrate.CatIdle)
				}
				am.end(m0, t0)
			}
		}
		m.Spawn("pong", body(false))
		m.Spawn("ping", body(true))
		if err := m.Run(); err != nil && err != sim.ErrDeadlock {
			fmt.Fprintln(os.Stderr, "perfbench: wire AM probe:", err) // tail messages may strand one poller
		}
	}
	wi.AMRoundTripNs = float64(am.dur.Nanoseconds()) / float64(am.n)
	if rawAMNs > 0 {
		wi.AMOverheadPct = 100 * (wi.AMRoundTripNs - rawAMNs) / rawAMNs
	}

	// Full-stack identity: one figure scenario, loopback off vs on.
	const system = "prema-implicit"
	spec := bench.Figures()[0]
	wl := bench.PaperWorkload(spec, procs, upp)
	plain, err := bench.RunSystem(system, wl)
	if err != nil {
		return nil, fmt.Errorf("wire plain run: %w", err)
	}
	wl.Wire = true
	wired, err := bench.RunSystem(system, wl)
	if err != nil {
		return nil, fmt.Errorf("wire wrapped run: %w", err)
	}
	wi.Figure = spec.ID
	wi.System = system
	wi.Frames = wired.WireFrames
	wi.SizeDrift = wired.WireDrift
	wi.IdenticalToPlain = plain.Summary() == wired.Summary() &&
		plain.Breakdown(1) == wired.Breakdown(1)
	return wi, nil
}

// measureDist times the distributed backend's transport: a two-node
// pingpong session where every round trip is two frames over localhost TCP.
// The preferred mode spawns real premad processes (full process isolation);
// when no premad binary can be resolved the probe degrades to two in-process
// nodes joined over the same sockets, which measures the identical wire path
// minus the scheduler isolation — and records which mode ran.
func measureDist(rounds int, premad string, engAMNs float64) (*DistInfo, error) {
	spec := bench.NewDistSpec("pingpong", bench.Workload{
		Procs: 2, Units: rounds, UnitBytes: 8, Seed: 7,
	})
	mode := "spawn"
	res, err := bench.RunDist(spec, bench.DistOptions{
		Nodes: 2, Listen: "127.0.0.1:0", Premad: premad,
	})
	if err != nil && strings.Contains(err.Error(), "premad binary not found") {
		mode = "in-process"
		res, err = runDistInProcess(spec)
	}
	if err != nil {
		return nil, fmt.Errorf("dist probe: %w", err)
	}
	di := &DistInfo{
		Nodes:      2,
		Mode:       mode,
		Rounds:     res.Counters["pingpong_rounds"],
		WireFrames: res.WireFrames,
	}
	if total := res.Counters["pingpong_ns_total"]; di.Rounds > 0 {
		di.RoundTripNs = float64(total) / float64(di.Rounds)
		di.AMLatencyNs = di.RoundTripNs / 2
	}
	if engAMNs > 0 {
		di.VsSimAMX = di.RoundTripNs / engAMNs
	}
	return di, nil
}

// runDistInProcess hosts both session nodes in this process: grab a free
// port, join two nodes against it, and run the coordinator in attach mode.
// The frames still cross real localhost sockets.
func runDistInProcess(spec bench.DistSpec) (*bench.Result, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := ln.Addr().String()
	ln.Close()
	const nodes = 2
	errc := make(chan error, nodes)
	for i := 0; i < nodes; i++ {
		go func(i int) {
			n, err := dist.Join(dist.NodeConfig{Coord: addr, Node: i})
			if err != nil {
				errc <- err
				return
			}
			defer n.Close()
			errc <- bench.RunDistNode(n)
		}(i)
	}
	res, err := bench.RunDist(spec, bench.DistOptions{Nodes: nodes, Listen: addr, Attach: true})
	for i := 0; i < nodes; i++ {
		if nerr := <-errc; nerr != nil && err == nil {
			err = nerr
		}
	}
	return res, err
}

// measureScale runs the scale-push workload across the shard axis.
func measureScale(procs, objects int) (*ScaleInfo, error) {
	sc := &ScaleInfo{
		Procs:          procs,
		ObjectsPerProc: objects,
		Objects:        procs * objects,
		MaxObjects:     procs * objects,
		Identical:      true,
	}
	fmt.Printf("perfbench: scale push (%d procs x %d objects/proc = %d objects)...\n",
		procs, objects, sc.Objects)
	var serialWall, serialMakespan float64
	for _, s := range shardCounts {
		e, wall, err := scaleRun(procs, objects, s)
		if err != nil {
			return nil, fmt.Errorf("scale shards=%d: %w", s, err)
		}
		p := point(e, s, wall)
		if s == 1 {
			serialWall, serialMakespan = p.WallS, p.MakespanS
			p.Speedup = 1
		} else {
			if p.WallS > 0 {
				p.Speedup = serialWall / p.WallS
			}
			if p.MakespanS != serialMakespan {
				sc.Identical = false
			}
			switch s {
			case 2:
				sc.SpeedupAtS2 = p.Speedup
			case 4:
				sc.SpeedupAtS4 = p.Speedup
			case 8:
				sc.SpeedupAtS8 = p.Speedup
			}
		}
		sc.Points = append(sc.Points, p)
	}
	return sc, nil
}
