// Command perfbench measures the simulator's host performance and the sweep
// runner's parallel speedup, and writes the numbers to a JSON file (the
// repository's BENCH trajectory: BENCH_PR2.json at the repo root).
//
// Usage:
//
//	perfbench [-out BENCH_PR2.json] [-procs 128] [-units-per-proc 128] \
//	          [-jobs J] [-events 500000] [-skip-sweep]
//
// It reports two layers, matching the two levels of the performance work:
//
//   - engine: microbenchmarks of the discrete-event core — ns/event,
//     allocs/event and events/sec for the Advance hot path, plus the
//     simulated active-message round trip;
//   - sweep: wall-clock time of the paper's 4-figure × 6-system evaluation
//     campaign (24 independent simulations) run serially and with -jobs
//     workers, with a byte-identity cross-check between the two.
//
// The default scale (-procs 128 -units-per-proc 128) is the paper's; use a
// smaller scale for a quick look. Expect the full-scale run to take several
// minutes per sweep pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"prema/internal/bench"
	"prema/internal/dmcs"
	"prema/internal/sim"
	"prema/internal/sweep"
)

// Report is the schema of the emitted JSON.
type Report struct {
	Bench string     `json:"bench"`
	Host  HostInfo   `json:"host"`
	Eng   EngineInfo `json:"engine"`
	Sweep *SweepInfo `json:"sweep,omitempty"`
}

// HostInfo records the measurement platform.
type HostInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// EngineInfo holds the hot-path microbenchmark results. Alloc counts are
// steady-state (measured after a warm-up that fills the event free list),
// so they can be fractional and should be ~0 after the PR2 optimizations.
type EngineInfo struct {
	NsPerEvent        float64 `json:"ns_per_event"`
	AllocsPerEvent    float64 `json:"allocs_per_event"`
	BytesPerEvent     float64 `json:"bytes_per_event"`
	EventsPerSec      float64 `json:"events_per_sec"`
	AMRoundTripNs     float64 `json:"am_roundtrip_ns"`
	AMRoundTripAllocs float64 `json:"am_roundtrip_allocs"`
}

// SweepInfo holds the serial vs parallel campaign timing.
type SweepInfo struct {
	Figures          []int    `json:"figures"`
	Systems          []string `json:"systems"`
	Simulations      int      `json:"simulations"`
	Procs            int      `json:"procs"`
	UnitsPerProc     int      `json:"units_per_proc"`
	Jobs             int      `json:"jobs"`
	SerialWallS      float64  `json:"serial_wall_s"`
	ParallelWallS    float64  `json:"parallel_wall_s"`
	Speedup          float64  `json:"speedup"`
	OutputsIdentical bool     `json:"outputs_identical"`
}

func main() {
	out := flag.String("out", "BENCH_PR2.json", "output JSON path")
	procs := flag.Int("procs", 128, "simulated processors for the sweep timing")
	upp := flag.Int("units-per-proc", 128, "work units per processor for the sweep timing")
	jobs := flag.Int("jobs", sweep.DefaultJobs(), "parallel sweep worker count")
	events := flag.Int("events", 500_000, "microbenchmark event count")
	skipSweep := flag.Bool("skip-sweep", false, "measure only the engine microbenchmarks")
	flag.Parse()

	if *procs < 1 || *upp < 1 || *jobs < 1 || *events < 1 {
		fmt.Fprintln(os.Stderr, "perfbench: -procs, -units-per-proc, -jobs and -events must be positive")
		os.Exit(2)
	}

	rep := Report{
		Bench: "PR2",
		Host: HostInfo{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
	}

	fmt.Printf("perfbench: engine microbenchmarks (%d events)...\n", *events)
	rep.Eng = measureEngine(*events)
	fmt.Printf("  advance:  %8.1f ns/event  %.4f allocs/event  %.1f B/event  %.2fM events/s\n",
		rep.Eng.NsPerEvent, rep.Eng.AllocsPerEvent, rep.Eng.BytesPerEvent, rep.Eng.EventsPerSec/1e6)
	fmt.Printf("  AM trip:  %8.1f ns/msg    %.4f allocs/msg\n", rep.Eng.AMRoundTripNs, rep.Eng.AMRoundTripAllocs)

	if !*skipSweep {
		info, err := measureSweep(*procs, *upp, *jobs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		rep.Sweep = info
		fmt.Printf("  sweep:    serial %.1fs  parallel(jobs=%d) %.1fs  speedup %.2fx  identical=%v\n",
			info.SerialWallS, info.Jobs, info.ParallelWallS, info.Speedup, info.OutputsIdentical)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
	fmt.Printf("perfbench: wrote %s\n", *out)
}

// probe is one steady-state measurement window: a warm-up phase (filling the
// event free list and runtime caches), then n operations bracketed by
// ReadMemStats and a wall clock.
type probe struct {
	n      int
	dur    time.Duration
	allocs uint64
	bytes  uint64
}

func (pr *probe) begin() (runtime.MemStats, time.Time) {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m, time.Now()
}

func (pr *probe) end(m0 runtime.MemStats, t0 time.Time) {
	pr.dur = time.Since(t0)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	pr.allocs = m1.Mallocs - m0.Mallocs
	pr.bytes = m1.TotalAlloc - m0.TotalAlloc
}

// measureEngine runs the two hot-path microbenchmarks: the Advance event
// loop (one typed wake event per op) and the dmcs active-message round trip
// (two sends, two deliveries, two polls per op).
func measureEngine(events int) EngineInfo {
	const warm = 10_000
	adv := probe{n: events}
	{
		e := sim.NewEngine(sim.Config{Seed: 1})
		e.Spawn("p", func(p *sim.Proc) {
			for i := 0; i < warm; i++ {
				p.Advance(sim.Microsecond, sim.CatCompute)
			}
			m0, t0 := adv.begin()
			for i := 0; i < adv.n; i++ {
				p.Advance(sim.Microsecond, sim.CatCompute)
			}
			adv.end(m0, t0)
		})
		if err := e.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "perfbench: advance probe:", err)
			os.Exit(1)
		}
	}
	am := probe{n: events / 4}
	{
		e := sim.NewEngine(sim.Config{Seed: 1})
		rounds := warm + am.n
		e.Spawn("pong", func(p *sim.Proc) {
			c := dmcs.New(p)
			var h dmcs.HandlerID
			h = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
				if data.(int) > 0 {
					c.Send(src, h, data.(int)-1, 8)
				}
			})
			for i := 0; i < rounds; i++ {
				c.WaitPoll(sim.CatIdle)
			}
		})
		e.Spawn("ping", func(p *sim.Proc) {
			c := dmcs.New(p)
			var h dmcs.HandlerID
			h = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
				if data.(int) > 0 {
					c.Send(src, h, data.(int)-1, 8)
				}
			})
			c.Send(0, h, 2*rounds, 8)
			for i := 0; i < warm; i++ {
				c.WaitPoll(sim.CatIdle)
			}
			m0, t0 := am.begin()
			for i := 0; i < am.n; i++ {
				c.WaitPoll(sim.CatIdle)
			}
			am.end(m0, t0)
		})
		if err := e.Run(); err != nil && err != sim.ErrDeadlock {
			fmt.Fprintln(os.Stderr, "perfbench: AM probe:", err) // tail messages may strand one poller
		}
	}
	info := EngineInfo{
		NsPerEvent:        float64(adv.dur.Nanoseconds()) / float64(adv.n),
		AllocsPerEvent:    float64(adv.allocs) / float64(adv.n),
		BytesPerEvent:     float64(adv.bytes) / float64(adv.n),
		AMRoundTripNs:     float64(am.dur.Nanoseconds()) / float64(am.n),
		AMRoundTripAllocs: float64(am.allocs) / float64(am.n),
	}
	if info.NsPerEvent > 0 {
		info.EventsPerSec = 1e9 / info.NsPerEvent
	}
	return info
}

// measureSweep times the full evaluation campaign serially and in parallel
// and cross-checks that both produce identical reports.
func measureSweep(procs, upp, jobs int) (*SweepInfo, error) {
	specs := bench.Figures()
	info := &SweepInfo{
		Systems:      bench.SystemNames,
		Simulations:  len(specs) * len(bench.SystemNames),
		Procs:        procs,
		UnitsPerProc: upp,
		Jobs:         jobs,
	}
	for _, s := range specs {
		info.Figures = append(info.Figures, s.ID)
	}

	fmt.Printf("perfbench: serial sweep (%d sims at %d procs x %d units/proc)...\n",
		info.Simulations, procs, upp)
	t0 := time.Now()
	serial, err := bench.RunFigures(specs, procs, upp, 1)
	if err != nil {
		return nil, err
	}
	info.SerialWallS = time.Since(t0).Seconds()
	fmt.Printf("  serial: %.1fs\n", info.SerialWallS)

	fmt.Printf("perfbench: parallel sweep (jobs=%d)...\n", jobs)
	t1 := time.Now()
	parallel, err := bench.RunFigures(specs, procs, upp, jobs)
	if err != nil {
		return nil, err
	}
	info.ParallelWallS = time.Since(t1).Seconds()
	if info.ParallelWallS > 0 {
		info.Speedup = info.SerialWallS / info.ParallelWallS
	}

	info.OutputsIdentical = true
	for i := range serial {
		if serial[i].Report(0) != parallel[i].Report(0) {
			info.OutputsIdentical = false
		}
	}
	return info, nil
}
