// Command premabench runs one configuration of the paper's synthetic
// microbenchmark (§5) and prints the per-processor time breakdown.
//
// Usage:
//
//	premabench -system prema-implicit -imbalance 0.5 -ratio 2.0 \
//	           [-procs 128] [-units-per-proc 128] [-stride 8] [-hints mean] \
//	           [-backend sim|real] [-timescale 1e-3] [-spin]
//
// Systems: none, prema-explicit, prema-implicit, parmetis, charm,
// charm-sync4 — plus prema-diffusion and prema-multilist for the policy
// suite beyond the paper's featured work stealing.
//
// -backend selects the execution substrate: "sim" (default) runs the
// deterministic discrete-event simulator; "real" runs the PREMA systems with
// genuine parallelism, one goroutine per processor, burning scaled
// wall-clock (-timescale wall seconds per virtual second; -spin busy-waits
// instead of sleeping). The baseline system models (parmetis, charm*) are
// simulator-only.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prema/internal/bench"
	"prema/internal/rtm"
	"prema/internal/substrate"
)

func main() {
	system := flag.String("system", "prema-implicit", "system configuration to run")
	imb := flag.Float64("imbalance", 0.5, "initial imbalance percentage (fraction of heavy units)")
	ratio := flag.Float64("ratio", 2.0, "heavy/light weight ratio")
	procs := flag.Int("procs", 128, "simulated processors")
	upp := flag.Int("units-per-proc", 128, "work units per processor")
	stride := flag.Int("stride", 8, "breakdown sampling stride (0 = summary only)")
	hints := flag.String("hints", "mean", "weight hints given to balancers: mean | accurate")
	backend := flag.String("backend", "sim", "execution substrate: sim (deterministic) | real (goroutines)")
	timescale := flag.Float64("timescale", 1e-3, "real backend: wall seconds per virtual second")
	spin := flag.Bool("spin", false, "real backend: busy-wait instead of sleeping")
	flag.Parse()

	w := bench.PaperWorkload(bench.FigureSpec{ID: 0, Imbalance: *imb, Ratio: *ratio}, *procs, *upp)
	if *hints == "accurate" {
		w.Hints = bench.HintAccurate
	}
	var (
		r   *bench.Result
		err error
	)
	switch *backend {
	case "sim":
		switch *system {
		case "prema-diffusion", "prema-multilist", "prema-worksteal":
			r, err = bench.RunPremaPolicy(w, (*system)[len("prema-"):])
		default:
			r, err = bench.RunSystem(*system, w)
		}
	case "real":
		if !strings.HasPrefix(*system, "prema") && *system != "none" {
			fmt.Fprintf(os.Stderr, "system %q models a third-party runtime and is simulator-only; use -backend=sim\n", *system)
			os.Exit(2)
		}
		cfg := rtm.DefaultConfig()
		cfg.Seed = w.Seed
		cfg.TimeScale = *timescale
		cfg.Spin = *spin
		var m substrate.Machine = rtm.New(cfg)
		switch *system {
		case "prema-diffusion", "prema-multilist", "prema-worksteal":
			r, err = bench.RunPremaPolicyOn(m, w, (*system)[len("prema-"):])
		default:
			r, err = bench.RunSystemOn(*system, m, w)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown backend %q (want sim or real)\n", *backend)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(r.Summary())
	if *stride > 0 {
		fmt.Println()
		fmt.Println(r.Breakdown(*stride))
	}
	if len(r.Counters) > 0 {
		fmt.Printf("counters: %v\n", r.Counters)
	}
}
