// Command premabench runs one configuration of the paper's synthetic
// microbenchmark (§5) and prints the per-processor time breakdown.
//
// Usage:
//
//	premabench -system prema-implicit -imbalance 0.5 -ratio 2.0 \
//	           [-procs 128] [-units-per-proc 128] [-stride 8] [-hints mean]
//
// Systems: none, prema-explicit, prema-implicit, parmetis, charm,
// charm-sync4 — plus prema-diffusion and prema-multilist for the policy
// suite beyond the paper's featured work stealing.
package main

import (
	"flag"
	"fmt"
	"os"

	"prema/internal/bench"
)

func main() {
	system := flag.String("system", "prema-implicit", "system configuration to run")
	imb := flag.Float64("imbalance", 0.5, "initial imbalance percentage (fraction of heavy units)")
	ratio := flag.Float64("ratio", 2.0, "heavy/light weight ratio")
	procs := flag.Int("procs", 128, "simulated processors")
	upp := flag.Int("units-per-proc", 128, "work units per processor")
	stride := flag.Int("stride", 8, "breakdown sampling stride (0 = summary only)")
	hints := flag.String("hints", "mean", "weight hints given to balancers: mean | accurate")
	flag.Parse()

	w := bench.PaperWorkload(bench.FigureSpec{ID: 0, Imbalance: *imb, Ratio: *ratio}, *procs, *upp)
	if *hints == "accurate" {
		w.Hints = bench.HintAccurate
	}
	var (
		r   *bench.Result
		err error
	)
	switch *system {
	case "prema-diffusion", "prema-multilist", "prema-worksteal":
		r, err = bench.RunPremaPolicy(w, (*system)[len("prema-"):])
	default:
		r, err = bench.RunSystem(*system, w)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(r.Summary())
	if *stride > 0 {
		fmt.Println()
		fmt.Println(r.Breakdown(*stride))
	}
	if len(r.Counters) > 0 {
		fmt.Printf("counters: %v\n", r.Counters)
	}
}
