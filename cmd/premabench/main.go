// Command premabench runs configurations of the paper's synthetic
// microbenchmark (§5) and prints the per-processor time breakdowns.
//
// Usage:
//
//	premabench -system prema-implicit -imbalance 0.5 -ratio 2.0 \
//	           [-procs 128] [-units-per-proc 128] [-stride 8] [-hints mean] \
//	           [-jobs J] [-shards S] [-partition roundrobin|blocked|loaded] \
//	           [-backend sim|real|dist] [-timescale 1e-3] [-wire] \
//	           [-nodes N -dist-listen HOST:PORT] [-premad PATH] [-dist-attach] \
//	           [-spin] [-fault-plan PLAN] [-fault-seed N] [-reliable] \
//	           [-recover] [-checkpoint-interval 1s] [-lease-timeout 500ms] \
//	           [-trace trace.json] [-metrics metrics.txt] [-trace-ring N]
//
// -trace records the run's event stream (internal/trace) and writes it as
// Chrome trace_event JSON, loadable in Perfetto (https://ui.perfetto.dev) for
// per-processor compute/idle/messaging timelines with migration arrows;
// -metrics writes the aggregated counters/histograms (text, or JSON when the
// file ends in .json). Tracing is observational: it charges no substrate
// time, so a traced simulator run reports the same makespan and accounts as
// an untraced one. Both flags apply to the PREMA configurations only. In
// multi-system mode the system name is inserted before the file extension.
//
// -fault-plan injects faults (message drop, duplication, delay, reordering,
// processor stalls and crashes — see internal/faulty for the syntax) at the
// substrate seam, and -reliable switches DMCS into reliable-delivery mode so
// the run survives them. Both apply to the PREMA configurations only; the
// third-party baseline models are cost models without a real transport. For
// dedicated chaos sweeps over the paper figures see cmd/chaosbench.
//
// -wire routes every message of the PREMA configurations through the binary
// wire codec (internal/wire): each Send encodes the message into a
// self-delimiting frame and the receiver gets a freshly decoded copy, proving
// no layer aliases sender memory. The codec charges no substrate time, so a
// -wire run is byte-identical to a plain one; the -metrics file additionally
// reports wire_size_drift_total (frames whose encoding exceeded the modeled
// message size — expected 0). Like -trace, -wire needs a real transport and
// rejects the baseline cost models.
//
// -recover arms the crash-recovery subsystem (periodic object checkpoints,
// heartbeat failure detection, directory repair, orphan re-homing) so
// fail-stop clauses like "crash:3@35s" are survivable; it implies -reliable
// and a serial simulator (-shards=1). -checkpoint-interval and -lease-timeout
// tune its timers in virtual time. Without a crash in the plan, -recover
// changes nothing: checkpoint costs stay off the ledgers until a crash
// verdict fires, so the run is byte-identical to one without the flag.
//
// Systems: none, prema-explicit, prema-implicit, parmetis, charm,
// charm-sync4 — plus prema-diffusion and prema-multilist for the policy
// suite beyond the paper's featured work stealing.
//
// -system also accepts a comma-separated list (multi-system mode): the named
// configurations all run on the same workload, up to -jobs simulations in
// flight, and the summaries print in the order given. Simulations are
// independent, so the output is identical for any -jobs value. -shards
// additionally parallelizes each simulation's event loop (simulator only;
// also output-identical) and -partition picks the processor-to-shard
// placement strategy; the two parallelism levels multiply, so the -jobs
// default of 0 means "auto": one worker per CPU divided by -shards.
//
// -backend selects the execution substrate: "sim" (default) runs the
// deterministic discrete-event simulator; "real" runs the PREMA systems with
// genuine parallelism, one goroutine per processor, burning scaled
// wall-clock (-timescale wall seconds per virtual second; -spin busy-waits
// instead of sleeping); "dist" runs them across separate OS processes — a
// coordinator in this command plus -nodes premad daemons (spawned
// automatically, or externally started with -dist-attach) connected by a
// TCP mesh, each hosting a contiguous processor range. -nodes and
// -dist-listen are required together with dist; -premad points at the node
// daemon binary when it is not next to this executable or on PATH. The
// baseline system models (parmetis, charm*) are simulator-only, and
// multi-system mode is too: concurrent wall-clock runs would distort each
// other's timing. On dist, -wire is redundant (remote messages are already
// serialized), -recover is unsupported, and -trace makes each node write
// its own timeline as FILE.nodeN.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prema/internal/bench"
	"prema/internal/dmcs"
	"prema/internal/faulty"
	"prema/internal/rtm"
	"prema/internal/substrate"
	"prema/internal/sweep"
	"prema/internal/trace"
	"prema/internal/wire"
)

func main() {
	system := flag.String("system", "prema-implicit", "system configuration(s) to run, comma-separated")
	imb := flag.Float64("imbalance", 0.5, "initial imbalance percentage (fraction of heavy units)")
	ratio := flag.Float64("ratio", 2.0, "heavy/light weight ratio")
	procs := flag.Int("procs", 128, "simulated processors")
	upp := flag.Int("units-per-proc", 128, "work units per processor")
	stride := flag.Int("stride", 8, "breakdown sampling stride (0 = summary only)")
	hints := flag.String("hints", "mean", "weight hints given to balancers: mean | accurate")
	jobs := flag.Int("jobs", 0, "multi-system mode: max simulations in flight (0 = auto: one per CPU divided by -shards)")
	shards := flag.Int("shards", 1, "simulator backend: parallel event-loop shards per simulation (output is identical for any value)")
	partition := flag.String("partition", "roundrobin", "simulator backend: processor-to-shard placement strategy: roundrobin, blocked, or loaded (output is identical for any value)")
	backend := flag.String("backend", "sim", "execution substrate: sim (deterministic) | real (goroutines) | dist (node processes over TCP)")
	nodes := flag.Int("nodes", 0, "dist backend: node process count (required with -backend=dist)")
	distListen := flag.String("dist-listen", "", "dist backend: coordinator listen address, host:port (required with -backend=dist; port 0 picks a free one)")
	premadPath := flag.String("premad", "", "dist backend: premad binary to spawn (default: next to this executable, then PATH)")
	distAttach := flag.Bool("dist-attach", false, "dist backend: do not spawn node daemons; externally started premads dial the coordinator")
	wireOn := flag.Bool("wire", false, "run behind the serialization loopback (wire codec; PREMA systems only; output is identical)")
	timescale := flag.Float64("timescale", 1e-3, "real backend: wall seconds per virtual second")
	spin := flag.Bool("spin", false, "real backend: busy-wait instead of sleeping")
	planS := flag.String("fault-plan", "", "fault plan injected at the substrate seam (internal/faulty syntax; PREMA systems only)")
	faultSeed := flag.Int64("fault-seed", 1, "fault injector seed")
	reliable := flag.Bool("reliable", false, "switch DMCS into reliable-delivery mode (PREMA systems only)")
	recoverOn := flag.Bool("recover", false, "arm the crash-recovery subsystem so crash/recover plan clauses are survivable (implies -reliable; PREMA systems only)")
	ckptInterval := flag.Duration("checkpoint-interval", 0, "recovery: periodic object-checkpoint interval in virtual time (0 = default 1s)")
	leaseTimeout := flag.Duration("lease-timeout", 0, "recovery: heartbeat lease timeout in virtual time (0 = default: 500ms on sim, 250ms of wall clock on real)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON timeline to FILE (PREMA systems only; multi-system mode suffixes the system name)")
	metricsOut := flag.String("metrics", "", "write aggregated trace metrics to FILE (.json = JSON, else text; PREMA systems only)")
	traceRing := flag.Int("trace-ring", trace.DefaultRingCap, "per-processor trace ring capacity in events (rounded up to a power of two)")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "premabench: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	if *procs < 1 || *upp < 1 {
		fmt.Fprintf(os.Stderr, "premabench: -procs and -units-per-proc must be positive (got %d, %d)\n", *procs, *upp)
		os.Exit(2)
	}
	if *stride < 0 {
		fmt.Fprintf(os.Stderr, "premabench: -stride must be >= 0 (got %d)\n", *stride)
		os.Exit(2)
	}
	if *jobs < 0 {
		fmt.Fprintf(os.Stderr, "premabench: -jobs must be >= 0 (got %d)\n", *jobs)
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "premabench: -shards must be >= 1 (got %d)\n", *shards)
		os.Exit(2)
	}
	if *shards > 1 && *backend != "sim" {
		fmt.Fprintf(os.Stderr, "premabench: -shards applies to the simulator backend only; use -backend=sim\n")
		os.Exit(2)
	}
	isDist := *backend == "dist"
	if isDist {
		if *nodes < 1 || *distListen == "" {
			fmt.Fprintln(os.Stderr, "premabench: -backend=dist requires -nodes and -dist-listen together")
			os.Exit(2)
		}
		if *nodes > *procs {
			fmt.Fprintf(os.Stderr, "premabench: -nodes %d exceeds -procs %d (every node hosts at least one processor)\n", *nodes, *procs)
			os.Exit(2)
		}
		if *partition != "roundrobin" {
			fmt.Fprintln(os.Stderr, "premabench: -partition applies to the simulator backend only; use -backend=sim")
			os.Exit(2)
		}
	} else if *nodes != 0 || *distListen != "" || *premadPath != "" || *distAttach {
		fmt.Fprintln(os.Stderr, "premabench: -nodes, -dist-listen, -premad, and -dist-attach apply to the distributed backend only; use -backend=dist")
		os.Exit(2)
	}
	if !bench.ValidPartition(*partition) {
		fmt.Fprintf(os.Stderr, "premabench: -partition must be one of %v (got %q)\n", bench.PartitionStrategies, *partition)
		os.Exit(2)
	}
	if *jobs < 1 {
		*jobs = sweep.JobsFor(*shards)
	}
	if *timescale <= 0 {
		fmt.Fprintf(os.Stderr, "premabench: -timescale must be positive (got %g)\n", *timescale)
		os.Exit(2)
	}
	plan, err := faulty.ParsePlan(*planS)
	if err != nil {
		fmt.Fprintln(os.Stderr, "premabench:", err)
		os.Exit(2)
	}
	if *ckptInterval < 0 || *leaseTimeout < 0 {
		fmt.Fprintf(os.Stderr, "premabench: -checkpoint-interval and -lease-timeout must be >= 0 (got %v, %v)\n", *ckptInterval, *leaseTimeout)
		os.Exit(2)
	}
	if (len(plan.Crashes) > 0 || len(plan.Recovers) > 0) && !*recoverOn {
		fmt.Fprintf(os.Stderr, "premabench: the fault plan schedules a fail-stop; add -recover to make it survivable\n")
		os.Exit(2)
	}
	if *recoverOn {
		if *shards > 1 {
			fmt.Fprintf(os.Stderr, "premabench: -recover requires a serial simulator; use -shards=1\n")
			os.Exit(2)
		}
		for _, c := range plan.Crashes {
			if c.Proc == 0 {
				fmt.Fprintf(os.Stderr, "premabench: cannot crash processor 0: it is the head node and owns the completion counter\n")
				os.Exit(2)
			}
			if c.Proc >= *procs {
				fmt.Fprintf(os.Stderr, "premabench: crash targets processor %d but the machine has only %d (0..%d)\n", c.Proc, *procs, *procs-1)
				os.Exit(2)
			}
		}
	}
	w := bench.PaperWorkload(bench.FigureSpec{ID: 0, Imbalance: *imb, Ratio: *ratio}, *procs, *upp)
	w.Shards = *shards
	w.Partition = *partition
	switch *hints {
	case "mean":
		w.Hints = bench.HintMean
	case "accurate":
		w.Hints = bench.HintAccurate
	default:
		fmt.Fprintf(os.Stderr, "premabench: unknown -hints %q (want mean or accurate)\n", *hints)
		os.Exit(2)
	}
	systems := strings.Split(*system, ",")
	for i, s := range systems {
		systems[i] = strings.TrimSpace(s)
	}
	if isDist {
		if len(systems) > 1 {
			fmt.Fprintln(os.Stderr, "premabench: multi-system mode is simulator-only; use -backend=sim")
			os.Exit(2)
		}
		if !bench.WiredSystem(systems[0]) {
			fmt.Fprintf(os.Stderr, "premabench: system %q is a cost model without a transport and is simulator-only; use -backend=sim\n", systems[0])
			os.Exit(2)
		}
		if *wireOn {
			fmt.Fprintln(os.Stderr, "premabench: -wire applies to the in-process backends; the distributed backend already serializes every remote message")
			os.Exit(2)
		}
		if *recoverOn {
			fmt.Fprintln(os.Stderr, "premabench: -recover (fail-stop crash recovery) is not supported on the distributed backend")
			os.Exit(2)
		}
		if *metricsOut != "" {
			fmt.Fprintln(os.Stderr, "premabench: -metrics applies to the in-process backends; with -backend=dist use -trace, which each node writes as FILE.nodeN")
			os.Exit(2)
		}
	}
	if *wireOn {
		for _, s := range systems {
			if !bench.WiredSystem(s) {
				fmt.Fprintf(os.Stderr, "premabench: system %q is a cost model without a transport; -wire needs a PREMA configuration\n", s)
				os.Exit(2)
			}
		}
		w.Wire = true
	}

	tracing := *traceOut != "" || *metricsOut != ""
	var cols []*trace.Collector
	if tracing {
		if *traceRing < 1 {
			fmt.Fprintf(os.Stderr, "premabench: -trace-ring must be >= 1 (got %d)\n", *traceRing)
			os.Exit(2)
		}
		for _, s := range systems {
			if !bench.TracedSystem(s) {
				fmt.Fprintf(os.Stderr, "premabench: system %q is a cost model without a transport; -trace/-metrics need a PREMA configuration\n", s)
				os.Exit(2)
			}
		}
	}
	if tracing && !isDist {
		// On the distributed backend the nodes collect and write their own
		// timelines; the coordinator holds no collector.
		cols = make([]*trace.Collector, len(systems))
		for i := range cols {
			cols[i] = trace.NewCollector(*traceRing)
		}
	}

	chaos := plan.Active() || *reliable || *recoverOn
	var results []*bench.Result
	switch {
	case isDist:
		spec := bench.NewDistSpec(systems[0], w)
		spec.Reliable = *reliable
		spec.FaultPlan = *planS
		spec.FaultSeed = *faultSeed
		spec.TimeScale = *timescale
		spec.Spin = *spin
		if *traceOut != "" {
			spec.TracePath = *traceOut
			spec.TraceRing = *traceRing
		}
		var r *bench.Result
		r, err = bench.RunDist(spec, bench.DistOptions{
			Nodes:  *nodes,
			Listen: *distListen,
			Premad: *premadPath,
			Attach: *distAttach,
		})
		results = []*bench.Result{r}
	case chaos:
		// Fault injection and reliable delivery run through the chaos
		// driver: only the PREMA configurations have a real transport to
		// fault (bench.RunChaos rejects the baseline cost models).
		if *backend == "real" && len(systems) > 1 {
			fmt.Fprintln(os.Stderr, "premabench: multi-system mode is simulator-only; use -backend=sim")
			os.Exit(2)
		}
		cs := bench.ChaosSpec{
			Plan:      plan,
			FaultSeed: *faultSeed,
			Backend:   *backend,
			TimeScale: *timescale,
			Spin:      *spin,
		}
		if *reliable || *recoverOn {
			cs.Rel = dmcs.DefaultRelConfig()
		}
		if *recoverOn {
			cs.Recover = true
			cs.CheckpointInterval = substrate.FromDuration(*ckptInterval)
			cs.LeaseTimeout = substrate.FromDuration(*leaseTimeout)
		}
		results, err = sweep.Map(*jobs, len(systems), func(i int) (*bench.Result, error) {
			cs := cs
			cs.System = systems[i]
			if tracing {
				cs.Trace = cols[i]
			}
			r, _, err := bench.RunChaos(w, cs)
			return r, err
		})
	case *backend == "sim":
		results, err = sweep.Map(*jobs, len(systems), func(i int) (*bench.Result, error) {
			if tracing {
				return bench.RunSystemTraced(systems[i], w, cols[i])
			}
			return runSim(systems[i], w)
		})
	case *backend == "real":
		if len(systems) > 1 {
			fmt.Fprintln(os.Stderr, "premabench: multi-system mode is simulator-only; use -backend=sim")
			os.Exit(2)
		}
		var col *trace.Collector
		if tracing {
			col = cols[0]
		}
		var r *bench.Result
		r, err = runReal(systems[0], w, *timescale, *spin, *wireOn, col)
		results = []*bench.Result{r}
	default:
		fmt.Fprintf(os.Stderr, "premabench: unknown backend %q (want sim or real)\n", *backend)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, r := range results {
		fmt.Println(r.Summary())
	}
	for _, r := range results {
		if *stride > 0 {
			fmt.Println()
			fmt.Println(r.Breakdown(*stride))
		}
		if len(r.Counters) > 0 {
			fmt.Printf("counters (%s): %v\n", r.System, r.Counters)
		}
	}
	if tracing && !isDist {
		for i, col := range cols {
			if err := writeTrace(col, results[i], systems[i], len(systems) > 1, *wireOn, *traceOut, *metricsOut); err != nil {
				fmt.Fprintln(os.Stderr, "premabench:", err)
				os.Exit(1)
			}
		}
	}
}

// writeTrace exports one run's collector to the requested trace and metrics
// files; multi-system mode inserts the system name before the extension. When
// the wire loopback is active the metrics registry additionally reports the
// codec's size audit: wire_frames_total (messages encoded) and
// wire_size_drift_total (frames whose encoding exceeded the modeled
// Msg.Size — expected 0 on every shipped scenario).
func writeTrace(col *trace.Collector, r *bench.Result, system string, multi, wireOn bool, traceOut, metricsOut string) error {
	if traceOut != "" {
		path := traceOut
		if multi {
			path = trace.SuffixPath(path, system)
		}
		if err := col.WriteChromeFile(path); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d events, %d dropped)\n", path, col.Total(), col.Dropped())
	}
	if metricsOut != "" {
		path := metricsOut
		if multi {
			path = trace.SuffixPath(path, system)
		}
		reg := trace.Summarize(col, r.Makespan)
		if wireOn {
			reg.Counters["wire_frames_total"] = int64(r.WireFrames)
			reg.Counters["wire_size_drift_total"] = int64(r.WireDrift)
		}
		if err := reg.WriteFile(path); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

// runSim runs one system configuration on the deterministic simulator.
func runSim(system string, w bench.Workload) (*bench.Result, error) {
	switch system {
	case "prema-diffusion", "prema-multilist", "prema-worksteal":
		return bench.RunPremaPolicy(w, system[len("prema-"):])
	default:
		return bench.RunSystem(system, w)
	}
}

// runReal runs one PREMA system configuration on the real-concurrency
// backend, with event tracing attached when col is non-nil and the
// serialization loopback interposed when wireOn is set (wire wraps the raw
// backend so the tracer observes decoded messages).
func runReal(system string, w bench.Workload, timescale float64, spin, wireOn bool, col *trace.Collector) (*bench.Result, error) {
	if !strings.HasPrefix(system, "prema") && system != "none" {
		fmt.Fprintf(os.Stderr, "system %q models a third-party runtime and is simulator-only; use -backend=sim\n", system)
		os.Exit(2)
	}
	cfg := rtm.DefaultConfig()
	cfg.Seed = w.Seed
	cfg.TimeScale = timescale
	cfg.Spin = spin
	var m substrate.Machine = rtm.New(cfg)
	if wireOn {
		m = wire.Wrap(m)
	}
	if col != nil {
		m = trace.Wrap(m, col)
	}
	switch system {
	case "prema-diffusion", "prema-multilist", "prema-worksteal":
		return bench.RunPremaPolicyOn(m, w, system[len("prema-"):])
	default:
		return bench.RunSystemOn(system, m, w)
	}
}
