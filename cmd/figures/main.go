// Command figures regenerates the paper's benchmark figures (3-6) and the
// derived scalar claims of §5 on the simulated 128-processor cluster.
//
// Usage:
//
//	figures [-fig N] [-procs P] [-units-per-proc U] [-stride S] [-summary]
//
// With no -fig, all four figures run. -stride 0 suppresses the per-processor
// breakdown tables (the summary lines always print). -fig 1 prints the
// paper's Figure 1 taxonomy table.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"prema/internal/bench"
)

const taxonomy = `Figure 1 — Using synchronization as a criterion for system classification

  Synchronization model   Initiation             Dissemination  Systems
  ----------------------  ---------------------  -------------  -----------------------------------------
  (loosely) synchronous   stop-and-repartition   explicit       Zoltan, DRAMA, METIS, ParMETIS
  asynchronous            poll-driven            explicit       PREMA + explicit polling, Charm++
  asynchronous            interrupt-driven       implicit       PREMA + interrupts (this paper's approach)
`

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (3-6; 1 prints the taxonomy; 0 = all benchmarks)")
	procs := flag.Int("procs", 128, "simulated processors")
	upp := flag.Int("units-per-proc", 128, "work units per processor")
	stride := flag.Int("stride", 8, "per-processor breakdown sampling stride (0 = summaries only)")
	csvDir := flag.String("csv", "", "directory to write per-system breakdown CSVs into (plots)")
	flag.Parse()

	if *fig == 1 {
		fmt.Print(taxonomy)
		return
	}
	var specs []bench.FigureSpec
	if *fig == 0 {
		specs = bench.Figures()
	} else {
		s, err := bench.FigureByID(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		specs = []bench.FigureSpec{s}
	}
	for _, spec := range specs {
		fr, err := bench.RunFigure(spec, *procs, *upp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(fr.Report(*stride))
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, fr); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}

// writeCSVs dumps one breakdown CSV per system of the figure.
func writeCSVs(dir string, fr *bench.FigureRun) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range fr.Results {
		path := filepath.Join(dir, fmt.Sprintf("fig%d_%s.csv", fr.Spec.ID, r.System))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := r.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}
