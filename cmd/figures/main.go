// Command figures regenerates the paper's benchmark figures (3-6) and the
// derived scalar claims of §5 on the simulated 128-processor cluster.
//
// Usage:
//
//	figures [-fig N] [-procs P] [-units-per-proc U] [-stride S] [-jobs J] \
//	        [-shards S] [-partition roundrobin|blocked|loaded] [-wire] \
//	        [-backend sim|dist] [-nodes N -dist-listen HOST:PORT] \
//	        [-csv DIR] [-trace trace.json] [-metrics metrics.txt]
//
// -trace and -metrics re-run the PREMA systems of each selected figure with
// the internal/trace recorder attached (observational — same makespans as
// the main sweep) and write one Perfetto-loadable Chrome trace / metrics
// rendering per (figure, system), suffixing figN.system before the file
// extension.
//
// With no -fig, all four figures run. -stride 0 suppresses the per-processor
// breakdown tables (the summary lines always print). -fig 1 prints the
// paper's Figure 1 taxonomy table.
//
// The 24 simulations of the full sweep are independent; -jobs fans them out
// across cores, and -shards additionally parallelizes each simulation's
// event loop. The two levels multiply (jobs × shards goroutines contend for
// CPUs), so the -jobs default of 0 means "auto": one worker per CPU divided
// by -shards. -wire routes every PREMA-system message through the binary
// wire codec (encode at Send, deliver a decoded copy; the baseline cost
// models have no transport and run as usual). Output is byte-identical for
// any -jobs, -shards, and -wire values.
//
// -backend=dist replays one figure's PREMA systems (none, prema-explicit,
// prema-implicit) on the distributed backend: a coordinator in this process
// plus -nodes premad daemons over localhost TCP, one session per system.
// Makespans are wall-clock under -timescale and not comparable to the
// simulator's; the counter and residency columns are. The baseline cost
// models (parmetis, charm) have no transport and are skipped.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"prema/internal/bench"
	"prema/internal/sweep"
	"prema/internal/trace"
)

const taxonomy = `Figure 1 — Using synchronization as a criterion for system classification

  Synchronization model   Initiation             Dissemination  Systems
  ----------------------  ---------------------  -------------  -----------------------------------------
  (loosely) synchronous   stop-and-repartition   explicit       Zoltan, DRAMA, METIS, ParMETIS
  asynchronous            poll-driven            explicit       PREMA + explicit polling, Charm++
  asynchronous            interrupt-driven       implicit       PREMA + interrupts (this paper's approach)
`

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (3-6; 1 prints the taxonomy; 0 = all benchmarks)")
	procs := flag.Int("procs", 128, "simulated processors")
	upp := flag.Int("units-per-proc", 128, "work units per processor")
	stride := flag.Int("stride", 8, "per-processor breakdown sampling stride (0 = summaries only)")
	jobs := flag.Int("jobs", 0, "max simulations in flight (0 = auto: one per CPU divided by -shards; 1 = serial)")
	shards := flag.Int("shards", 1, "parallel event-loop shards per simulation (1 = serial engine; output is identical for any value)")
	partition := flag.String("partition", "roundrobin", "processor-to-shard placement strategy: roundrobin, blocked, or loaded (output is identical for any value)")
	wireOn := flag.Bool("wire", false, "run the PREMA systems behind the serialization loopback (wire codec; output is identical)")
	backend := flag.String("backend", "sim", "execution substrate: sim (deterministic) | dist (node processes over TCP; PREMA systems of one -fig)")
	nodes := flag.Int("nodes", 0, "dist backend: node process count (required with -backend=dist)")
	distListen := flag.String("dist-listen", "", "dist backend: coordinator listen address, host:port (required with -backend=dist; port 0 picks a free one)")
	premadPath := flag.String("premad", "", "dist backend: premad binary to spawn (default: next to this executable, then PATH)")
	distAttach := flag.Bool("dist-attach", false, "dist backend: do not spawn node daemons; externally started premads dial the coordinator (one session per system)")
	timescale := flag.Float64("timescale", 1e-3, "dist backend: wall seconds per virtual second")
	csvDir := flag.String("csv", "", "directory to write per-system breakdown CSVs into (plots)")
	traceOut := flag.String("trace", "", "record the PREMA systems and write Chrome trace JSON per figure+system (base path; figN.system is inserted before the extension)")
	metricsOut := flag.String("metrics", "", "write aggregated trace metrics per figure+system (base path, same suffixing; .json = JSON)")
	traceRing := flag.Int("trace-ring", trace.DefaultRingCap, "per-processor trace ring capacity in events (rounded up to a power of two)")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "figures: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	if *procs < 1 || *upp < 1 {
		fmt.Fprintf(os.Stderr, "figures: -procs and -units-per-proc must be positive (got %d, %d)\n", *procs, *upp)
		os.Exit(2)
	}
	if *stride < 0 {
		fmt.Fprintf(os.Stderr, "figures: -stride must be >= 0 (got %d)\n", *stride)
		os.Exit(2)
	}
	if *jobs < 0 {
		fmt.Fprintf(os.Stderr, "figures: -jobs must be >= 0 (got %d)\n", *jobs)
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "figures: -shards must be >= 1 (got %d)\n", *shards)
		os.Exit(2)
	}
	if !bench.ValidPartition(*partition) {
		fmt.Fprintf(os.Stderr, "figures: -partition must be one of %v (got %q)\n", bench.PartitionStrategies, *partition)
		os.Exit(2)
	}
	if *backend != "sim" && *backend != "dist" {
		fmt.Fprintf(os.Stderr, "figures: unknown backend %q (want sim or dist)\n", *backend)
		os.Exit(2)
	}
	isDist := *backend == "dist"
	if isDist {
		if *nodes < 1 || *distListen == "" {
			fmt.Fprintln(os.Stderr, "figures: -backend=dist requires -nodes and -dist-listen together")
			os.Exit(2)
		}
		if *nodes > *procs {
			fmt.Fprintf(os.Stderr, "figures: -nodes %d exceeds -procs %d (every node hosts at least one processor)\n", *nodes, *procs)
			os.Exit(2)
		}
		if *fig < 3 || *fig > 6 {
			fmt.Fprintln(os.Stderr, "figures: -backend=dist runs one figure's PREMA systems; pick it with -fig 3..6")
			os.Exit(2)
		}
		if *timescale <= 0 {
			fmt.Fprintf(os.Stderr, "figures: -timescale must be positive (got %g)\n", *timescale)
			os.Exit(2)
		}
		if *shards > 1 || *partition != "roundrobin" {
			fmt.Fprintln(os.Stderr, "figures: -shards and -partition apply to the simulator backend only; use -backend=sim")
			os.Exit(2)
		}
		if *wireOn {
			fmt.Fprintln(os.Stderr, "figures: -wire applies to the simulator backend; the distributed backend already serializes every remote message")
			os.Exit(2)
		}
		if *traceOut != "" || *metricsOut != "" {
			fmt.Fprintln(os.Stderr, "figures: -trace and -metrics apply to the simulator backend; use premabench -backend=dist -trace for per-node timelines")
			os.Exit(2)
		}
	} else if *nodes != 0 || *distListen != "" || *premadPath != "" || *distAttach {
		fmt.Fprintln(os.Stderr, "figures: -nodes, -dist-listen, -premad, and -dist-attach apply to the distributed backend only; use -backend=dist")
		os.Exit(2)
	}
	if *fig == 1 {
		fmt.Print(taxonomy)
		return
	}
	if isDist {
		if err := runDistFigure(*fig, *procs, *upp, *stride, *timescale, *csvDir, bench.DistOptions{
			Nodes: *nodes, Listen: *distListen, Premad: *premadPath, Attach: *distAttach,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		return
	}
	var specs []bench.FigureSpec
	if *fig == 0 {
		specs = bench.Figures()
	} else {
		s, err := bench.FigureByID(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		specs = []bench.FigureSpec{s}
	}
	runs, err := bench.RunFigures(specs, *procs, *upp, *jobs, *shards, *partition, *wireOn)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, fr := range runs {
		fmt.Println(fr.Report(*stride))
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, fr); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if *traceOut != "" || *metricsOut != "" {
		if *traceRing < 1 {
			fmt.Fprintf(os.Stderr, "figures: -trace-ring must be >= 1 (got %d)\n", *traceRing)
			os.Exit(2)
		}
		if err := writeTraces(specs, *procs, *upp, *jobs, *shards, *traceRing, *partition, *wireOn, *traceOut, *metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// tracedSystems are the figure configurations that run a real transport and
// can therefore record a trace — or run distributed (the baseline cost
// models can do neither).
var tracedSystems = []string{"none", "prema-explicit", "prema-implicit"}

// runDistFigure runs one figure's transport-backed systems as full
// multi-process sessions, one after another (concurrent sessions would
// distort each other's wall-clock), and prints the same summary/breakdown
// shape as the simulator sweep. The makespans are wall-clock-derived and not
// comparable to the simulator's; the counters and residency are.
func runDistFigure(fig, procs, upp, stride int, timescale float64, csvDir string, opt bench.DistOptions) error {
	spec, err := bench.FigureByID(fig)
	if err != nil {
		return err
	}
	w := bench.PaperWorkload(spec, procs, upp)
	fmt.Printf("=== Figure %d (distributed backend): imbalance %.0f%%, heavy = %.1fx light (procs=%d, units=%d, nodes=%d) ===\n",
		spec.ID, spec.Imbalance*100, spec.Ratio, w.Procs, w.Units, opt.Nodes)
	var results []*bench.Result
	for _, name := range tracedSystems {
		ds := bench.NewDistSpec(name, w)
		ds.TimeScale = timescale
		r, err := bench.RunDist(ds, opt)
		if err != nil {
			return err
		}
		fmt.Println("  " + r.Summary())
		results = append(results, r)
	}
	if stride > 0 {
		fmt.Println("\nPer-processor breakdowns:")
		for _, r := range results {
			fmt.Println(r.Breakdown(stride))
		}
	}
	if csvDir != "" {
		return writeResultCSVs(csvDir, spec.ID, results)
	}
	return nil
}

// writeTraces re-runs the PREMA systems of each figure with event tracing
// attached and exports one trace/metrics file per (figure, system). Tracing
// is observational, so these runs report the same makespans as the untraced
// sweep above.
func writeTraces(specs []bench.FigureSpec, procs, upp, jobs, shards, ring int, partition string, wireOn bool, traceOut, metricsOut string) error {
	type job struct {
		spec bench.FigureSpec
		name string
	}
	var js []job
	for _, spec := range specs {
		for _, name := range tracedSystems {
			js = append(js, job{spec, name})
		}
	}
	type traced struct {
		col *trace.Collector
		res *bench.Result
	}
	if jobs < 1 {
		jobs = sweep.JobsFor(shards)
	}
	outs, err := sweep.Map(jobs, len(js), func(i int) (traced, error) {
		col := trace.NewCollector(ring)
		w := bench.PaperWorkload(js[i].spec, procs, upp)
		w.Shards = shards
		w.Partition = partition
		w.Wire = wireOn
		r, err := bench.RunSystemTraced(js[i].name, w, col)
		return traced{col, r}, err
	})
	if err != nil {
		return err
	}
	for i, t := range outs {
		suffix := fmt.Sprintf("fig%d.%s", js[i].spec.ID, js[i].name)
		if traceOut != "" {
			path := trace.SuffixPath(traceOut, suffix)
			if err := t.col.WriteChromeFile(path); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d events, %d dropped)\n", path, t.col.Total(), t.col.Dropped())
		}
		if metricsOut != "" {
			path := trace.SuffixPath(metricsOut, suffix)
			if err := trace.Summarize(t.col, t.res.Makespan).WriteFile(path); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	return nil
}

// writeCSVs dumps one breakdown CSV per system of the figure.
func writeCSVs(dir string, fr *bench.FigureRun) error {
	return writeResultCSVs(dir, fr.Spec.ID, fr.Results)
}

func writeResultCSVs(dir string, figID int, results []*bench.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range results {
		path := filepath.Join(dir, fmt.Sprintf("fig%d_%s.csv", figID, r.System))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := r.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}
